# Convenience targets; everything is plain `go` underneath.

GO ?= go
FUZZTIME ?= 10s
BENCHTIME ?= 1x

.PHONY: all test race fuzz vet bench bench-diff experiments chaos govern domains heal observe revive examples cover clean

all: test

test:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test ./...

# The experiment harnesses fan replications out across goroutines
# (internal/runner); the race detector is part of the default verify
# path so a data race in that layer can never land silently.
race:
	$(GO) test -race ./...

# Short fuzz smoke over the committed corpus (internal/core/testdata/fuzz).
# `go test` only fuzzes one target per invocation, so run them in turn.
fuzz:
	$(GO) test ./internal/core -run='^$$' -fuzz=FuzzSchedulerInvariants -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core -run='^$$' -fuzz=FuzzDeterminism -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core -run='^$$' -fuzz=FuzzChaosInvariants -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core -run='^$$' -fuzz=FuzzGovernorInvariants -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core -run='^$$' -fuzz=FuzzDomainInvariants -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core -run='^$$' -fuzz=FuzzRecoveryInvariants -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/telemetry/blame -run='^$$' -fuzz=FuzzBlameInvariants -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/persist -run='^$$' -fuzz=FuzzJournalDecode -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/persist -run='^$$' -fuzz=FuzzSnapshotRoundTrip -fuzztime=$(FUZZTIME)

# Full benchmark sweep, converted by scripts/benchjson into the
# machine-readable BENCH_10.json artifact (and schema-checked). Raise
# BENCHTIME (e.g. BENCHTIME=1s) for stable numbers; the default 1x
# keeps the target fast enough for CI.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) ./... > /tmp/rda-bench.txt
	cat /tmp/rda-bench.txt
	$(GO) run ./scripts/benchjson -o BENCH_10.json < /tmp/rda-bench.txt
	$(GO) run ./scripts/benchjson -check BENCH_10.json

# Regression gate: rerun the sweep and compare ns/op against the
# committed BENCH_8.json baseline; exits non-zero past a 10% slowdown
# on any shared benchmark. 1x benchtime numbers are noisy — use
# BENCHTIME=1s before trusting a failure.
bench-diff: bench
	$(GO) run ./scripts/benchjson -diff BENCH_8.json BENCH_10.json

experiments:
	$(GO) run ./cmd/experiments -all

# E4: fault-injected admission (quick, shape-preserving scale).
chaos:
	$(GO) run ./cmd/experiments -experiment e4 -scale 0.2

# E5: adaptive admission governor vs static policies under overload.
govern:
	$(GO) run ./cmd/experiments -experiment e5 -scale 0.2

# E6: multi-domain demand-aware placement vs one global domain.
domains:
	$(GO) run ./cmd/experiments -experiment e6 -scale 0.2

# E7: domain failure injection — governed evacuation vs stall/drop.
heal:
	$(GO) run ./cmd/experiments -experiment e7 -scale 0.2

# E8: causal wait attribution — blame matrix, critical path, SLO burn
# rate — plus one self-contained HTML report per policy, validated.
observe:
	$(GO) run ./cmd/experiments -experiment e8 -scale 0.2 -obs-dir /tmp/rda-obs
	$(GO) run ./scripts/jsoncheck /tmp/rda-obs/*.html

# E9: crash-restart revival — kill, restore from journal+snapshot,
# resume byte-identical to the unkilled run.
revive:
	$(GO) run ./cmd/experiments -experiment e9 -scale 0.2

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/blasmix
	$(GO) run ./examples/splash
	$(GO) run ./examples/profiler
	$(GO) run ./examples/partition

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
