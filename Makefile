# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all test vet bench experiments examples cover clean

all: test

test:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

experiments:
	$(GO) run ./cmd/experiments -all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/blasmix
	$(GO) run ./examples/splash
	$(GO) run ./examples/profiler
	$(GO) run ./examples/partition

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
