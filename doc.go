// Package rdasched is a reproduction of "Improving Resource Utilization
// through Demand Aware Process Scheduling" (Nesterenko, Yi, Rao — ICPP
// 2018) as a Go library: a progress-period API, a demand-aware scheduling
// extension over a simulated Linux-default scheduler, a trace-driven
// profiler that discovers progress periods, and harnesses that regenerate
// every table and figure of the paper's evaluation.
//
// See README.md for the tour, DESIGN.md for the system inventory and the
// simulation substitutions, and EXPERIMENTS.md for paper-vs-measured
// results. The implementation lives under internal/; the runnable
// surfaces are cmd/rdasched, cmd/ppprof, cmd/experiments, and the
// examples/ programs.
package rdasched
