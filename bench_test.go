package rdasched_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benchmarks for the design choices DESIGN.md calls out. Each
// evaluation benchmark runs its experiment at a reduced (shape-
// preserving) scale per iteration and reports the figure's headline
// quantity as a custom metric, so `go test -bench=.` both exercises the
// full pipeline and prints the reproduced numbers. cmd/experiments -all
// regenerates the full-scale versions recorded in EXPERIMENTS.md.

import (
	"fmt"
	"runtime"
	"testing"

	"rdasched/internal/core"
	"rdasched/internal/experiments"
	"rdasched/internal/machine"
	"rdasched/internal/perf"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
	"rdasched/internal/telemetry/blame"
	"rdasched/internal/workloads"
)

// benchJobs is the worker count the evaluation benchmarks run with. The
// experiment output is bit-identical for any value (see
// internal/runner); parallelism only changes wall-clock time.
var benchJobs = runtime.GOMAXPROCS(0)

func benchOpts() experiments.Options {
	o := experiments.Defaults()
	o.Repetitions = 1
	o.JitterFrac = 0
	o.Scale = 0.1
	o.Jobs = benchJobs
	return o
}

func BenchmarkTable1MachineModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1().Rows() == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range workloads.Table2() {
			if err := w.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// comparisonBench runs the Figures 7–10 sweep and reports one metric.
func comparisonBench(b *testing.B, metric func(perf.Metrics) float64, unit string) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunPolicyComparison(workloads.Table2(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		// Headline: strict vs default, averaged over workloads.
		var strictSum, defSum float64
		for _, r := range rows {
			switch r.Policy {
			case "strict":
				strictSum += metric(r.Mean)
			case "default":
				defSum += metric(r.Mean)
			}
		}
		last = strictSum / defSum
	}
	b.ReportMetric(last, unit)
}

func BenchmarkFig7SystemEnergy(b *testing.B) {
	comparisonBench(b, func(m perf.Metrics) float64 { return m.SystemJ }, "strict/default-J")
}

func BenchmarkFig8DRAMEnergy(b *testing.B) {
	comparisonBench(b, func(m perf.Metrics) float64 { return m.DRAMJ }, "strict/default-dramJ")
}

func BenchmarkFig9GFLOPS(b *testing.B) {
	comparisonBench(b, func(m perf.Metrics) float64 { return m.GFLOPS }, "strict/default-gflops")
}

func BenchmarkFig10Efficiency(b *testing.B) {
	comparisonBench(b, func(m perf.Metrics) float64 { return m.GFLOPSPerWatt }, "strict/default-gfpw")
}

func BenchmarkFig11Granularity(b *testing.B) {
	var inner float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunGranularity(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			if p.Label == "inner" {
				inner = p.Overhead
			}
		}
	}
	b.ReportMetric(inner*100, "inner-overhead-%")
}

func BenchmarkFig12WSSPrediction(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunWSSPrediction(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		acc = 0
		for _, s := range res.Series {
			acc += s.Accuracy
		}
		acc /= float64(len(res.Series))
	}
	b.ReportMetric(acc*100, "mean-accuracy-%")
}

func BenchmarkFig13Interference(b *testing.B) {
	var cliff float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunInterference(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var g6, g12 float64
		for _, p := range res.Points {
			if p.Molecules == 8000 && p.Instances == 6 {
				g6 = p.GFLOPS
			}
			if p.Molecules == 8000 && p.Instances == 12 {
				g12 = p.GFLOPS
			}
		}
		cliff = g12 / g6
	}
	b.ReportMetric(cliff, "8000mol-12/6-scaling")
}

// BenchmarkExperimentsParallel contrasts Jobs=1 with Jobs=GOMAXPROCS on
// a scaled-down policy comparison (4 repetitions with jitter, like the
// paper's measurement protocol, so there are 24 replications to fan
// out). The two sub-benchmarks compute identical tables — compare their
// ns/op to read the parallel speedup on a multi-core host.
func BenchmarkExperimentsParallel(b *testing.B) {
	ws := []proc.Workload{workloads.BLAS3(), workloads.WaterNsq()}
	for _, jobs := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			o := experiments.Defaults()
			o.Scale = 0.1
			o.Jobs = jobs
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunPolicyComparison(ws, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6DomainSpeedup runs the multi-domain sweep and reports the
// headline: the skewed workload's makespan speedup at two domains over
// the single global domain.
func BenchmarkE6DomainSpeedup(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDomains(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var one, two float64
		for _, row := range res.Rows {
			if row.Workload == "domain-skewed" {
				switch row.Domains {
				case 1:
					one = row.Mean.ElapsedSec
				case 2:
					two = row.Mean.ElapsedSec
				}
			}
		}
		speedup = one / two
	}
	b.ReportMetric(speedup, "skewed-2dom-speedup")
}

// BenchmarkDomainPlacement measures the placer's hot path: a stream of
// small declared periods fanned across four domains, reporting the
// placement decisions made per wall-clock second of benchmarking.
func BenchmarkDomainPlacement(b *testing.B) {
	w := proc.ScaleInstr(workloads.StreamingMix(pp.MB(0.5)), 0.05)
	rc := perf.RunConfig{
		Machine: machine.DefaultConfig(), Policy: core.StrictPolicy{},
		Domains: 4,
	}
	var placements float64
	for i := 0; i < b.N; i++ {
		m, _, err := perf.Run(w, rc)
		if err != nil {
			b.Fatal(err)
		}
		placements = m.DomainPlacements
	}
	b.ReportMetric(placements, "placements/run")
}

// BenchmarkDomainShardingOverhead contrasts the unsharded scheduler
// (Domains=0, the seed hot path), the single-domain facade (Domains=1,
// pure delegation — its ns/op reads the facade's overhead), and a
// four-way split. The measured metrics are identical for 0 and 1 by the
// differential suite; only the time differs.
func BenchmarkDomainShardingOverhead(b *testing.B) {
	w := proc.ScaleInstr(workloads.StreamingMix(pp.MB(0.5)), 0.1)
	for _, n := range []int{0, 1, 4} {
		b.Run(fmt.Sprintf("domains=%d", n), func(b *testing.B) {
			rc := perf.RunConfig{
				Machine: machine.DefaultConfig(), Policy: core.StrictPolicy{},
				Domains: n,
			}
			for i := 0; i < b.N; i++ {
				if _, _, err := perf.Run(w, rc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations (design choices from DESIGN.md §5) ---

func ablationRun(b *testing.B, cfg machine.Config, policy core.Policy) perf.Metrics {
	b.Helper()
	w := proc.ScaleInstr(workloads.WaterNsq(), 0.1)
	m, _, err := perf.Run(w, perf.RunConfig{Machine: cfg, Policy: policy})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkAblationResidencyExponent contrasts the LRU-cliff model
// (exponent 2) with linear sharing (exponent 1): the cliff is what makes
// unmanaged co-scheduling expensive.
func BenchmarkAblationResidencyExponent(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		linear := machine.DefaultConfig()
		linear.ResidencyExponent = 1
		cliff := machine.DefaultConfig()
		ratio = ablationRun(b, linear, nil).GFLOPS / ablationRun(b, cliff, nil).GFLOPS
	}
	b.ReportMetric(ratio, "linear/cliff-default-gflops")
}

// BenchmarkAblationWakeRefill measures what ignoring pause/resume cache
// refill would claim for the strict policy.
func BenchmarkAblationWakeRefill(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		free := machine.DefaultConfig()
		free.WakeRefillFactor = 0
		real := machine.DefaultConfig()
		ratio = ablationRun(b, free, core.StrictPolicy{}).SystemJ /
			ablationRun(b, real, core.StrictPolicy{}).SystemJ
	}
	b.ReportMetric(ratio, "norefill/refill-strictJ")
}

// BenchmarkAblationOversubscriptionFactor sweeps the compromise policy's
// factor (the paper fixes x = 2) on water_nsquared.
func BenchmarkAblationOversubscriptionFactor(b *testing.B) {
	var best float64
	var bestX float64
	for i := 0; i < b.N; i++ {
		best, bestX = 0, 0
		for _, x := range []float64{1.25, 1.5, 2, 3, 4} {
			m := ablationRun(b, machine.DefaultConfig(), core.CompromisePolicy{Factor: x})
			if m.GFLOPSPerWatt > best {
				best, bestX = m.GFLOPSPerWatt, x
			}
		}
	}
	b.ReportMetric(bestX, "best-factor")
}

// BenchmarkAblationTaskPoolParking compares §3.4's whole-pool parking
// against naive per-thread blocking on the task-pool workload.
func BenchmarkAblationTaskPoolParking(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		pooled := proc.ScaleInstr(workloads.Volrend(), 0.1)
		naive := proc.ScaleInstr(workloads.Volrend(), 0.1)
		for i := range naive.Procs {
			naive.Procs[i].TaskPool = false
		}
		mp, _, err := perf.Run(pooled, perf.RunConfig{Machine: machine.DefaultConfig(), Policy: core.StrictPolicy{}})
		if err != nil {
			b.Fatal(err)
		}
		mn, _, err := perf.Run(naive, perf.RunConfig{Machine: machine.DefaultConfig(), Policy: core.StrictPolicy{}})
		if err != nil {
			b.Fatal(err)
		}
		ratio = mp.GFLOPS / mn.GFLOPS
	}
	b.ReportMetric(ratio, "pooled/naive-gflops")
}

// BenchmarkTelemetryOverhead contrasts the same E1-sized strict run with
// telemetry disabled (the default: the decision path early-returns
// before building an event) and fully enabled (metrics registry plus
// span collector). Compare the sub-benchmarks' ns/op to read the cost of
// observation; the measured numbers themselves are identical either way.
func BenchmarkTelemetryOverhead(b *testing.B) {
	w := proc.ScaleInstr(workloads.StreamingMix(pp.MB(0.5)), 0.1)
	configs := []struct {
		name string
		rc   perf.RunConfig
	}{
		{"disabled", perf.RunConfig{}},
		{"enabled", perf.RunConfig{Telemetry: true, Trace: true}},
		{"blame", perf.RunConfig{Telemetry: true, Trace: true, Blame: true}},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			rc := c.rc
			rc.Machine = machine.DefaultConfig()
			rc.Policy = core.StrictPolicy{}
			for i := 0; i < b.N; i++ {
				if _, _, err := perf.Run(w, rc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBlameAttribution measures the wait-attribution engine on the
// E8 skewed workload: the full contended run with the blame collector
// and SLO monitor attached, reporting how many picoseconds of wait each
// iteration attributed. The conservation check runs every iteration, so
// this doubles as a hot-loop validation of the invariant.
func BenchmarkBlameAttribution(b *testing.B) {
	slo := blame.DefaultSLOConfig()
	w := proc.ScaleInstr(experiments.ObserveSkewed(), 0.1)
	rc := perf.RunConfig{
		Machine: machine.DefaultConfig(), Policy: core.StrictPolicy{},
		Blame: true, SLO: &slo,
	}
	var attributed float64
	for i := 0; i < b.N; i++ {
		m, _, err := perf.Run(w, rc)
		if err != nil {
			b.Fatal(err)
		}
		if m.Blame == nil {
			b.Fatal("no blame report")
		}
		if err := m.Blame.Check(); err != nil {
			b.Fatal(err)
		}
		attributed = float64(m.Blame.TotalBlamed)
	}
	b.ReportMetric(attributed, "blamed-ps/run")
}
