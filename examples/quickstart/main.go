// Quickstart: the paper's Figure 4 scenario end to end.
//
// A process wraps its DGEMM kernel in one progress period — declaring
// "I need 6.3 MB of last-level cache and I will reuse it heavily" — and
// the demand-aware scheduler decides at pp_begin whether it may run.
// This example (1) runs a real blocked DGEMM from the internal/blas
// library, numerically checked against the naive reference, and (2)
// schedules twelve such processes on the simulated 12-core E5-2420 under
// the Linux-default and RDA:Strict policies, showing the energy and
// performance difference that admission control buys.
package main

import (
	"fmt"
	"log"

	"rdasched/internal/blas"
	"rdasched/internal/core"
	"rdasched/internal/machine"
	"rdasched/internal/perf"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
)

func main() {
	// --- Part 1: the kernel itself (line 7 of Figure 4). ---
	const n = 256
	a := blas.NewRandomMatrix(n, n, 1)
	b := blas.NewRandomMatrix(n, n, 2)
	c := blas.NewMatrix(n, n)
	ref := blas.NewMatrix(n, n)
	blas.DgemmBlocked(1, a, b, 0, c, 64)
	blas.Dgemm(1, a, b, 0, ref)
	if !c.Equal(ref, 1e-9) {
		log.Fatal("blocked dgemm diverged from reference")
	}
	fmt.Printf("dgemm %dx%d: %.0f flops, blocked result matches reference\n\n",
		n, n, blas.Level3Flops("dgemm", n))

	// --- Part 2: scheduling it (lines 6 and 8 of Figure 4). ---
	// The paper's sample declares pp_begin(RESOURCE_LLC, MB(6.3),
	// REUSE_HIGH) for an unblocked 512³ dgemm (three 512×512 matrices =
	// 6.3 MB). Its evaluated kernels are loop-blocked so each working set
	// fits comfortably in the LLC — a blocked dgemm holds 2.4 MB of
	// panels resident (Table 2) — which is what lets the strict policy
	// keep several admitted at once instead of starving cores.
	kernel := proc.Phase{
		Name:             "dgemm",
		Instr:            2 * blas.Level3Flops("dgemm", 512),
		WSS:              pp.MB(2.4),
		Reuse:            pp.ReuseHigh,
		AccessesPerInstr: 0.3,
		PrivateHitFrac:   0.85,
		StreamFrac:       0.05,
		FlopsPerInstr:    0.5,
		Declared:         true, // the pp_begin/pp_end bracket
	}
	spec := proc.Spec{Name: "dgemm-app", Threads: 1, Program: proc.Program{kernel}}
	workload := proc.Workload{Name: "quickstart", Procs: proc.Replicate(spec, 24)}

	// Twenty-four 2.4 MB working sets want 57.6 MB of a 15 MB LLC: the
	// default scheduler lets them thrash, the strict policy admits six at
	// a time and keeps their panels resident.
	run := func(policy core.Policy, label string) perf.Metrics {
		m, _, err := perf.Run(workload, perf.RunConfig{
			Machine: machine.DefaultConfig(),
			Policy:  policy,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %7.1f J system  %6.1f J DRAM  %6.3f GFLOPS  %7.4f GFLOPS/W\n",
			label, m.SystemJ, m.DRAMJ, m.GFLOPS, m.GFLOPSPerWatt)
		return m
	}
	def := run(nil, "default")
	strict := run(core.StrictPolicy{}, "RDA:strict")

	fmt.Printf("\nRDA:strict vs default: %.0f%% less system energy, %.2fx the energy efficiency\n",
		(1-strict.SystemJ/def.SystemJ)*100, strict.GFLOPSPerWatt/def.GFLOPSPerWatt)
}
