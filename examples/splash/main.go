// splash runs a multi-threaded SPLASH-2-style application — raytrace:
// 48 processes × 4 threads, two 5 MB high-reuse progress periods per
// step, barriers between steps, and a task-pool runtime — under the
// demand-aware scheduler. It demonstrates the §3.4 machinery that plain
// single-threaded workloads never exercise:
//
//   - per-process periods: the four threads of a process share one
//     declared working set, counted once by the resource monitor;
//   - barriers sit outside the periods (blocking synchronization inside
//     a period could deadlock the waitlist, so the paper forbids it);
//   - task-pool parking: when one pool member is denied, the whole pool
//     waits until the demand fits.
package main

import (
	"fmt"
	"log"

	"rdasched/internal/core"
	"rdasched/internal/machine"
	"rdasched/internal/perf"
	"rdasched/internal/pp"
	"rdasched/internal/report"
	"rdasched/internal/workloads"
)

func main() {
	w := workloads.Raytrace()
	fmt.Printf("raytrace: %d processes × %d threads, %d declared periods per thread\n\n",
		len(w.Procs), w.Procs[0].Threads, w.Procs[0].Program.DeclaredCount())

	t := report.NewTable("raytrace under the three policies",
		"policy", "system J", "DRAM J", "GFLOPS", "seconds", "pauses", "wakeups")
	for _, p := range []struct {
		name   string
		policy core.Policy
	}{
		{"default", nil},
		{"strict", core.StrictPolicy{}},
		{"compromise", core.NewCompromise()},
	} {
		m, _, err := perf.Run(w, perf.RunConfig{
			Machine: machine.DefaultConfig(),
			Policy:  p.policy,
		})
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(p.name,
			fmt.Sprintf("%.1f", m.SystemJ),
			fmt.Sprintf("%.1f", m.DRAMJ),
			fmt.Sprintf("%.3f", m.GFLOPS),
			fmt.Sprintf("%.2f", m.ElapsedSec),
			fmt.Sprintf("%d", m.Blocks),
			fmt.Sprintf("%d", m.Wakeups))
	}
	fmt.Print(t.String())

	// Peek inside the scheduler on a strict run: build the pieces by hand
	// instead of going through perf, to show the wiring.
	cfg := machine.DefaultConfig()
	sched := core.New(core.StrictPolicy{}, cfg.LLCCapacity)
	m := machine.New(cfg, sched)
	sched.SetWaker(m)
	if err := m.AddWorkload(w); err != nil {
		log.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		log.Fatal(err)
	}
	st := sched.Stats()
	fmt.Printf("\nstrict-run scheduler internals: %d periods opened, %d denied at entry, "+
		"%d admitted by the empty-load safeguard\n", st.Begins, st.Denied, st.Safegrds)
	fmt.Printf("peak LLC load registered: %v of %v capacity\n",
		sched.Resources().Peak(pp.ResourceLLC), sched.Resources().Capacity(pp.ResourceLLC))
}
