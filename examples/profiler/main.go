// profiler closes the paper's full loop at example scale:
//
//  1. profile an application's address trace in fixed instruction
//     windows (§2.4 — the PIN stand-in),
//  2. detect its progress periods as runs of similar windows and map
//     them to outermost loops,
//  3. take the measured demands and declare them to the RDA scheduler,
//  4. run twelve instances of the *instrumented* application and compare
//     against the unmodified binary on the default scheduler.
//
// This is exactly the workflow the paper proposes for adopting progress
// periods in existing code: profile once, insert two API calls per hot
// loop, let the OS do the rest.
package main

import (
	"fmt"
	"log"

	"rdasched/internal/core"
	"rdasched/internal/machine"
	"rdasched/internal/perf"
	"rdasched/internal/proc"
	"rdasched/internal/profiler"
	"rdasched/internal/workloads"
)

func main() {
	// Step 1+2: profile water_nsquared at its default input.
	const molecules = 8000
	stream, bin := workloads.WaterNsqTrace(molecules, 7)
	periods, err := profiler.Profile(stream, workloads.Fig12ProfilerConfig(), bin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled water_nsquared at %d molecules: %d progress periods\n", molecules, len(periods))
	for i, p := range periods {
		loop := "?"
		if p.LoopID >= 0 {
			loop = bin.Name(p.LoopID)
		}
		fmt.Printf("  PP%d in loop %-8s  demand: %v (measured reuse ratio %.1f)\n",
			i+1, loop, p.Demand(), p.ReuseRatio)
	}

	// Step 3: build the instrumented application from the measurements.
	// Each detected period becomes a declared phase with the *measured*
	// working set and reuse level — not the ground truth the trace was
	// generated from.
	var prog proc.Program
	for i, p := range periods {
		d := p.Demand()
		prog = append(prog, proc.Phase{
			Name:             fmt.Sprintf("pp%d", i+1),
			Instr:            float64(p.Instr()),
			WSS:              d.WorkingSet,
			Reuse:            d.Reuse,
			AccessesPerInstr: 0.35,
			PrivateHitFrac:   0.75,
			StreamFrac:       0.1,
			FlopsPerInstr:    0.35,
			Declared:         true,
		})
	}
	spec := proc.Spec{Name: "wnsq-instrumented", Threads: 1, Program: prog}
	w := proc.Workload{Name: "wnsq-x12", Procs: proc.Replicate(spec, 12)}

	// Step 4: measure instrumented-under-strict vs plain-under-default.
	strict, _, err := perf.Run(w, perf.RunConfig{
		Machine: machine.DefaultConfig(), Policy: core.StrictPolicy{},
	})
	if err != nil {
		log.Fatal(err)
	}
	plain, _, err := perf.Run(w, perf.RunConfig{
		Machine: machine.DefaultConfig(), Policy: nil,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n12 instances, default scheduler : %7.1f J, %.3f GFLOPS\n", plain.SystemJ, plain.GFLOPS)
	fmt.Printf("12 instances, profiled + strict : %7.1f J, %.3f GFLOPS\n", strict.SystemJ, strict.GFLOPS)
	fmt.Printf("\nprofile-guided scheduling: %.0f%% energy saved at %.2fx the performance "+
		"(%.2fx the energy efficiency) — with demands the profiler measured, not hand-tuned ones.\n",
		(1-strict.SystemJ/plain.SystemJ)*100, strict.GFLOPS/plain.GFLOPS,
		strict.GFLOPSPerWatt/plain.GFLOPSPerWatt)
}
