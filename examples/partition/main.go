// partition demonstrates the paper's first future-work extension (§6):
// cache partitioning for streaming applications whose working sets exceed
// the last-level cache.
//
// Six streamers with 24 MB working sets share the machine with sixteen
// blocked dgemms. Unpartitioned, a 24 MB demand can only be admitted by
// the empty-load safeguard — and then nothing else fits, so the strict
// policy degenerates to near-serial execution. Fenced into 0.5 MB
// partitions ("it would fetch most data from main memory regardless"),
// the streamers are charged half a megabyte each, physically confined to
// it, and the whole mix runs concurrently with the dgemms' panels
// resident.
package main

import (
	"fmt"
	"log"

	"rdasched/internal/core"
	"rdasched/internal/machine"
	"rdasched/internal/perf"
	"rdasched/internal/pp"
	"rdasched/internal/report"
	"rdasched/internal/workloads"
)

func main() {
	t := report.NewTable("6 × 24 MB streamers + 16 × 2.4 MB dgemms, strict policy",
		"variant", "system J", "GFLOPS", "GFLOPS/W", "avg busy cores")
	var rows []perf.Metrics
	for _, v := range []struct {
		name      string
		partition pp.Bytes
	}{
		{"unpartitioned", 0},
		{"0.5 MB partitions", pp.MB(0.5)},
	} {
		w := workloads.StreamingMix(v.partition)
		m, _, err := perf.Run(w, perf.RunConfig{
			Machine: machine.DefaultConfig(),
			Policy:  core.StrictPolicy{},
		})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, m)
		t.AddRow(v.name,
			fmt.Sprintf("%.1f", m.SystemJ),
			fmt.Sprintf("%.3f", m.GFLOPS),
			fmt.Sprintf("%.4f", m.GFLOPSPerWatt),
			fmt.Sprintf("%.1f", m.AvgBusyCores))
	}
	fmt.Print(t.String())
	fmt.Printf("\npartitioning the streamers: %.1fx the throughput, %.0f%% less energy — "+
		"because the streamers never benefited from the cache they were hogging.\n",
		rows[1].GFLOPS/rows[0].GFLOPS, (1-rows[1].SystemJ/rows[0].SystemJ)*100)
}
