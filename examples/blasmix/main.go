// blasmix reproduces the paper's motivating multiprogramming scenario:
// 96 level-3 BLAS kernels (dgemm, dsyrk, dtrmm, dtrsm — Table 2's BLAS-3
// workload) competing for one 15 MB last-level cache on 12 cores, under
// all three scheduling configurations. High data reuse is exactly where
// demand-aware scheduling pays off: the strict policy minimizes DRAM
// energy, the compromise policy trades some of that for concurrency and
// wins raw GFLOPS — the Figure 7–10 story at example scale.
package main

import (
	"fmt"
	"log"

	"rdasched/internal/experiments"
	"rdasched/internal/proc"
	"rdasched/internal/report"
	"rdasched/internal/workloads"
)

func main() {
	opt := experiments.Defaults()
	opt.Repetitions = 1
	opt.JitterFrac = 0
	opt.Scale = 0.25 // shorten phases for example runtime; contention is unchanged

	rows, err := experiments.RunPolicyComparison(
		[]proc.Workload{workloads.BLAS3()}, opt)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("BLAS-3: 96 level-3 kernels, 12 cores, 15 MB shared LLC",
		"policy", "system J", "DRAM J", "GFLOPS", "GFLOPS/W", "avg busy cores")
	var def, strict experiments.PolicyRow
	for _, r := range rows {
		t.AddRow(r.Policy,
			fmt.Sprintf("%.1f", r.Mean.SystemJ),
			fmt.Sprintf("%.1f", r.Mean.DRAMJ),
			fmt.Sprintf("%.3f", r.Mean.GFLOPS),
			fmt.Sprintf("%.4f", r.Mean.GFLOPSPerWatt),
			fmt.Sprintf("%.1f", r.Mean.AvgBusyCores))
		switch r.Policy {
		case "default":
			def = r
		case "strict":
			strict = r
		}
	}
	fmt.Print(t.String())

	fmt.Println()
	labels := make([]string, 0, len(rows))
	joules := make([]float64, 0, len(rows))
	for _, r := range rows {
		labels = append(labels, r.Policy)
		joules = append(joules, r.Mean.SystemJ)
	}
	fmt.Print(report.Bars("system energy (J)", labels, joules, 40))

	fmt.Printf("\nstrict saves %.0f%% system energy over the default scheduler; "+
		"its admission control paused threads %d times.\n",
		(1-strict.Mean.SystemJ/def.Mean.SystemJ)*100, strict.Mean.Blocks)
}
