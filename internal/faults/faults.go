// Package faults injects deterministic, seeded misbehavior into
// workloads. The paper's Algorithm 1 assumes cooperative applications
// that declare honest demands and always pair pp_begin with pp_end; a
// production admission service gets clients that lie, leak, and crash. A
// Plan perturbs a workload with the five failure modes the chaos
// experiments (E4) sweep:
//
//   - demand misdeclaration: the declared working set is the physical
//     one scaled by a random factor (over- or under-declaration);
//   - unsatisfiable demands: the declared working set exceeds the policy
//     limit, so the period can never be admitted alongside other load;
//   - leaked periods: a declared phase whose pp_end is never called;
//   - crashes: every thread of a process dies partway through a declared
//     phase, inside the progress period;
//   - arrival bursts: processes arrive in staggered waves instead of all
//     at t=0, so admission pressure comes in spikes.
//
// Apply is a pure function of (plan, workload, seed): the same inputs
// produce the same faulted workload on any machine, which keeps chaos
// experiments bit-reproducible under the parallel runner.
package faults

import (
	"math"

	"rdasched/internal/pp"
	"rdasched/internal/proc"
	"rdasched/internal/runner"
	"rdasched/internal/sim"
)

// Plan describes a fault mix. Rates are per-candidate probabilities in
// [0, 1]; the zero value injects nothing.
type Plan struct {
	// MisdeclareRate is the fraction of declared phases whose declared
	// working set lies: physical WSS scaled by a factor drawn
	// log-uniformly from [1/MisdeclareMax, MisdeclareMax].
	MisdeclareRate float64
	// MisdeclareMax bounds the misdeclaration factor (default 4).
	MisdeclareMax float64
	// LeakRate is the fraction of declared phases that never call
	// pp_end, leaving their demand registered until a lease reclaims it.
	LeakRate float64
	// CrashRate is the per-declared-phase probability that the process
	// dies partway through that phase (at most one crash per process;
	// later phases never run).
	CrashRate float64
	// OversizeRate is the fraction of declared phases that declare an
	// unsatisfiable demand: 2.5–3.5x Capacity, above both the strict
	// limit and the paper's compromise limit (x = 2).
	OversizeRate float64
	// Capacity is the reference capacity for OversizeRate (the machine's
	// LLC size); zero disables oversize injection.
	Capacity pp.Bytes
	// BurstWaves, when > 1, staggers process arrivals into that many
	// waves: process i joins wave i mod BurstWaves and spins through
	// WaveSpacingInstr undeclared instructions per wave index before its
	// real program starts.
	BurstWaves int
	// WaveSpacingInstr is the spin length separating waves.
	WaveSpacingInstr float64

	// DomainFaults are domain-level faults scheduled on the virtual
	// clock (shard capacity loss, crashes, ledger corruption). Unlike
	// the per-process modes above they do not transform the workload —
	// the harness arms them on the run's event engine against the
	// DomainSet (see internal/perf).
	DomainFaults []DomainFault

	// KillAt, when positive, kills the whole scheduler process at that
	// virtual time: the run's event engine halts mid-schedule, exactly as
	// if the host died. It is a run-level fault like DomainFaults — armed
	// by the harness, not a workload transform — and deliberately not
	// part of Enabled(): a kill does not perturb the workload, it
	// truncates the run (the crash-restart experiment, E9, restores and
	// resumes it).
	KillAt sim.Duration
}

// DomainFaultKind classifies a scheduled domain-level fault.
type DomainFaultKind int

const (
	// DomainCapacityLoss removes Frac of the target shard's baseline
	// LLC share at time At.
	DomainCapacityLoss DomainFaultKind = iota
	// DomainCrash takes the target shard fully offline at time At,
	// triggering the configured recovery mode.
	DomainCrash
	// DomainLedgerSkew corrupts the target shard's LLC load table by
	// Skew bytes at time At (repaired by the invariant auditor).
	DomainLedgerSkew
)

func (k DomainFaultKind) String() string {
	switch k {
	case DomainCapacityLoss:
		return "capacity-loss"
	case DomainCrash:
		return "crash"
	case DomainLedgerSkew:
		return "ledger-skew"
	default:
		return "unknown"
	}
}

// DomainFault is one scheduled domain-level fault.
type DomainFault struct {
	Kind   DomainFaultKind
	Domain int          // target shard index
	At     sim.Duration // virtual time from run start
	Frac   float64      // DomainCapacityLoss: fraction of the baseline share lost
	Skew   pp.Bytes     // DomainLedgerSkew: signed ledger offset
	// Heal, when positive, schedules RecoverDomain at At+Heal for
	// capacity-loss and crash faults (zero = the fault is permanent).
	Heal sim.Duration
}

// DomainPlan returns a seeded schedule of domain faults for a set of n
// domains: one crash of a seed-chosen shard at crashAt (healing after
// heal, if positive) plus one positive ledger skew on a different shard
// at half the crash time. n < 2 returns nothing — there is no shard to
// evacuate to.
func DomainPlan(seed uint64, n int, crashAt, heal sim.Duration, skew pp.Bytes) []DomainFault {
	if n < 2 || crashAt <= 0 {
		return nil
	}
	rng := sim.NewRNG(runner.Seed(seed, 0x0d0f))
	crashed := int(rng.Uint64() % uint64(n))
	skewed := (crashed + 1 + int(rng.Uint64()%uint64(n-1))) % n
	return []DomainFault{
		{Kind: DomainLedgerSkew, Domain: skewed, At: crashAt / 2, Skew: skew},
		{Kind: DomainCrash, Domain: crashed, At: crashAt, Heal: heal},
	}
}

// Uniform returns a plan injecting every failure mode at the same rate
// against the given capacity, with default factor bounds and a two-wave
// arrival burst.
func Uniform(rate float64, capacity pp.Bytes) Plan {
	return Plan{
		MisdeclareRate:   rate,
		MisdeclareMax:    4,
		LeakRate:         rate,
		CrashRate:        rate,
		OversizeRate:     rate / 2,
		Capacity:         capacity,
		BurstWaves:       2,
		WaveSpacingInstr: 5e6,
	}
}

// Enabled reports whether the plan injects anything.
func (p Plan) Enabled() bool {
	return p.MisdeclareRate > 0 || p.LeakRate > 0 || p.CrashRate > 0 ||
		(p.OversizeRate > 0 && p.Capacity > 0) || (p.BurstWaves > 1 && p.WaveSpacingInstr > 0)
}

// Apply returns a fault-injected deep copy of w. Each process draws its
// faults from an RNG derived from (seed, process index) alone, so the
// result is independent of evaluation order and identical across reruns.
func (p Plan) Apply(w proc.Workload, seed uint64) proc.Workload {
	if !p.Enabled() {
		return w
	}
	out := proc.Workload{Name: w.Name, Procs: make([]proc.Spec, 0, len(w.Procs))}
	for i, s := range w.Procs {
		out.Procs = append(out.Procs, p.applyProc(s, i, sim.NewRNG(runner.Seed(seed, uint64(i)))))
	}
	return out
}

func (p Plan) applyProc(s proc.Spec, idx int, rng *sim.RNG) proc.Spec {
	c := s.Clone()
	crashed := false
	for j := range c.Program {
		ph := &c.Program[j]
		if !ph.Declared {
			continue
		}
		if p.OversizeRate > 0 && p.Capacity > 0 && rng.Float64() < p.OversizeRate {
			ph.DeclaredWSS = pp.Bytes((2.5 + rng.Float64()) * float64(p.Capacity))
		} else if p.MisdeclareRate > 0 && rng.Float64() < p.MisdeclareRate {
			ph.DeclaredWSS = misdeclare(ph.OccupancyBytes(), p.misdeclareMax(), rng)
		}
		if p.LeakRate > 0 && rng.Float64() < p.LeakRate {
			ph.LeakEnd = true
		}
		if !crashed && p.CrashRate > 0 && rng.Float64() < p.CrashRate {
			ph.CrashFrac = 0.25 + 0.7*rng.Float64()
			crashed = true
		}
	}
	if wave := p.wave(idx); wave > 0 {
		arrive := proc.Phase{
			Name:  "arrive",
			Instr: float64(wave) * p.WaveSpacingInstr,
			Reuse: pp.ReuseLow,
		}
		c.Program = append(proc.Program{arrive}, c.Program...)
	}
	return c
}

func (p Plan) misdeclareMax() float64 {
	if p.MisdeclareMax > 1 {
		return p.MisdeclareMax
	}
	return 4
}

func (p Plan) wave(procIdx int) int {
	if p.BurstWaves <= 1 || p.WaveSpacingInstr <= 0 {
		return 0
	}
	return procIdx % p.BurstWaves
}

// misdeclare scales ws by a factor drawn log-uniformly from [1/max, max],
// clamped below at one page so the lie stays a valid demand.
func misdeclare(ws pp.Bytes, max float64, rng *sim.RNG) pp.Bytes {
	f := math.Pow(max, 2*rng.Float64()-1)
	lied := pp.Bytes(float64(ws) * f)
	if lied < 4*pp.KiB {
		lied = 4 * pp.KiB
	}
	return lied
}
