package faults

import (
	"reflect"
	"testing"

	"rdasched/internal/pp"
	"rdasched/internal/proc"
	"rdasched/internal/workloads"
)

func testWorkload() proc.Workload {
	base := proc.Spec{
		Name:    "w",
		Threads: 2,
		Program: proc.Program{
			{Name: "init", Instr: 1e6, WSS: pp.KB(64), Reuse: pp.ReuseLow},
			{Name: "kernel", Instr: 1e7, WSS: pp.MB(4), Reuse: pp.ReuseHigh, Declared: true},
			{Name: "kernel2", Instr: 1e7, WSS: pp.MB(2), Reuse: pp.ReuseMed, Declared: true},
		},
	}
	return proc.Workload{Name: "test", Procs: proc.Replicate(base, 16)}
}

func TestZeroPlanIsIdentity(t *testing.T) {
	w := testWorkload()
	var p Plan
	if p.Enabled() {
		t.Fatal("zero plan reports enabled")
	}
	got := p.Apply(w, 42)
	if !reflect.DeepEqual(got, w) {
		t.Fatal("zero plan mutated the workload")
	}
}

func TestApplyDeterministic(t *testing.T) {
	w := testWorkload()
	p := Uniform(0.5, pp.MB(15))
	a := p.Apply(w, 7)
	b := p.Apply(w, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (plan, workload, seed) produced different faults")
	}
	c := p.Apply(w, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical faults (suspicious)")
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	w := testWorkload()
	before := proc.Workload{Name: w.Name, Procs: append([]proc.Spec(nil), w.Procs...)}
	for i := range before.Procs {
		before.Procs[i] = w.Procs[i].Clone()
	}
	Uniform(1, pp.MB(15)).Apply(w, 3)
	if !reflect.DeepEqual(w, before) {
		t.Fatal("Apply mutated its input workload")
	}
}

func TestApplyOutputValidates(t *testing.T) {
	for _, rate := range []float64{0.05, 0.3, 1} {
		got := Uniform(rate, pp.MB(15)).Apply(testWorkload(), 99)
		if err := got.Validate(); err != nil {
			t.Fatalf("rate %v: faulted workload invalid: %v", rate, err)
		}
	}
}

func TestFullRatePlantsEveryFault(t *testing.T) {
	w := testWorkload()
	p := Plan{
		MisdeclareRate: 1, MisdeclareMax: 4,
		LeakRate: 1, CrashRate: 1,
		BurstWaves: 2, WaveSpacingInstr: 1e6,
	}
	got := p.Apply(w, 1)
	for i, s := range got.Procs {
		crashes := 0
		for j := range s.Program {
			ph := &s.Program[j]
			if !ph.Declared {
				continue
			}
			if ph.DeclaredWSS <= 0 {
				t.Fatalf("proc %d phase %d: rate-1 misdeclaration missing", i, j)
			}
			if !ph.LeakEnd {
				t.Fatalf("proc %d phase %d: rate-1 leak missing", i, j)
			}
			if ph.CrashFrac > 0 {
				crashes++
			}
		}
		if crashes != 1 {
			t.Fatalf("proc %d: %d crash phases, want exactly one per process", i, crashes)
		}
		wantWave := i % 2
		if wantWave > 0 {
			if s.Program[0].Name != "arrive" || s.Program[0].Declared {
				t.Fatalf("proc %d: missing undeclared arrival phase", i)
			}
		} else if s.Program[0].Name == "arrive" {
			t.Fatalf("proc %d: wave-0 process got an arrival phase", i)
		}
	}
}

func TestOversizeExceedsCompromiseLimit(t *testing.T) {
	capacity := pp.MB(15)
	p := Plan{OversizeRate: 1, Capacity: capacity}
	got := p.Apply(testWorkload(), 5)
	for i, s := range got.Procs {
		for j := range s.Program {
			ph := &s.Program[j]
			if !ph.Declared {
				continue
			}
			if ph.DeclaredWSS <= 2*capacity {
				t.Fatalf("proc %d phase %d: oversize %v not beyond the compromise limit %v",
					i, j, ph.DeclaredWSS, 2*capacity)
			}
		}
	}
}

func TestMisdeclareBounded(t *testing.T) {
	p := Plan{MisdeclareRate: 1, MisdeclareMax: 4}
	got := p.Apply(testWorkload(), 11)
	for i, s := range got.Procs {
		for j := range s.Program {
			ph := &s.Program[j]
			if !ph.Declared {
				continue
			}
			phys := float64(ph.OccupancyBytes())
			lied := float64(ph.DeclaredWSS)
			if lied < phys/4-1 || lied > phys*4+1 {
				t.Fatalf("proc %d phase %d: factor %v outside [1/4, 4]", i, j, lied/phys)
			}
		}
	}
}

func TestApplyOnPaperWorkload(t *testing.T) {
	// The E4 harness feeds real paper workloads through Apply; make sure
	// the combination stays valid at every swept rate.
	w := workloads.BLAS3()
	for _, rate := range []float64{0, 0.05, 0.15, 0.3} {
		got := Uniform(rate, pp.MB(15)).Apply(w, 1234)
		if err := got.Validate(); err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
	}
}
