package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		got, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map[int](4, 0, func(int) (int, error) { t.Fatal("called"); return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty map: %v, %v", got, err)
	}
}

func TestMapDefaultsWorkers(t *testing.T) {
	if _, err := Map(0, 8, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := Map(-3, 8, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int64
	_, err := Map(3, 64, func(i int) (int, error) {
		c := cur.Add(1)
		defer cur.Add(-1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d exceeds 3 workers", p)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	sentinel := errors.New("boom")
	// Every odd job fails; the error must be job 1's regardless of
	// completion order.
	for _, workers := range []int{1, 8} {
		_, err := Map(workers, 32, func(i int) (int, error) {
			if i%2 == 1 {
				return 0, fmt.Errorf("cell %d: %w", i, sentinel)
			}
			return i, nil
		})
		if err == nil || !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		want := "job 1:"
		if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
			t.Fatalf("workers=%d: err %q does not lead with lowest-index job", workers, got)
		}
	}
}

func TestMapAllJobsRunDespiteFailure(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(4, 20, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("early failure")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n != 20 {
		t.Fatalf("ran %d of 20 jobs; failure must not cancel siblings", n)
	}
}

func TestMapCapturesPanics(t *testing.T) {
	got, err := Map(4, 10, func(i int) (string, error) {
		if i == 7 {
			panic("replication crashed")
		}
		return fmt.Sprint(i), nil
	})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T is not a *PanicError", err)
	}
	if pe.Index != 7 || pe.Value != "replication crashed" || len(pe.Stack) == 0 {
		t.Fatalf("panic error incomplete: %+v", pe)
	}
	// Healthy siblings still produced results.
	if got[6] != "6" || got[8] != "8" {
		t.Fatalf("sibling results lost: %q", got)
	}
}

func TestSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[uint64]uint64{}
	for base := uint64(0); base < 4; base++ {
		for idx := uint64(0); idx < 1000; idx++ {
			s := Seed(base, idx)
			if s != Seed(base, idx) {
				t.Fatal("Seed not deterministic")
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("Seed collision: %d appears at %d and base=%d idx=%d", s, prev, base, idx)
			}
			seen[s] = base*1000 + idx
		}
	}
}

func TestSeedIndependentOfWorkerCount(t *testing.T) {
	run := func(workers int) []uint64 {
		out, err := Map(workers, 50, func(i int) (uint64, error) {
			return Seed(99, uint64(i)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(1), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed %d differs across worker counts", i)
		}
	}
}
