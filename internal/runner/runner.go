// Package runner is the parallel execution layer for independent
// simulation replications. Every evaluation harness in
// internal/experiments decomposes into jobs — one (sweep-point, policy,
// repetition) cell each — that share no state: a job builds its own
// engine, machine, and RNG from its parameters alone. runner fans such
// jobs out across a bounded worker pool while guaranteeing that the
// observable result is a pure function of the job list, never of the
// worker count or completion order:
//
//   - results are collected by job index, not completion order;
//   - per-job randomness derives from a base seed and the job's stable
//     index via SplitMix64 (Seed), never from a shared stream;
//   - on multiple failures the error of the lowest-index job is
//     returned, so even the failure mode is deterministic;
//   - a panicking job is captured and converted into a labeled
//     *PanicError instead of killing the whole run.
//
// Together these make experiment output bit-identical for any worker
// count, including 1 — the reproducibility contract internal/sim was
// built to provide, preserved under parallelism.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Seed derives the seed for job index from a base seed by running one
// SplitMix64 step over their combination. Derived seeds depend only on
// (base, index), so a job's random stream is identical no matter which
// worker runs it or when; distinct indices yield statistically
// independent streams (SplitMix64 is a bijective mixer, so distinct
// inputs never collide).
func Seed(base, index uint64) uint64 {
	z := base + (index+1)*0x9e3779b97f4a7c15 // golden-ratio increment, offset so index 0 still mixes
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// PanicError labels a panic that escaped a job, with the stack captured
// at the point of the panic.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("job %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Map runs fn(0) … fn(n-1) on up to workers goroutines and returns the
// results ordered by job index. workers <= 0 selects
// runtime.GOMAXPROCS(0). Every job runs to completion even if another
// job fails — partial cancellation would make the set of completed jobs
// depend on timing — and the returned error is that of the
// lowest-index failed job, wrapped with its index. A job that panics
// contributes a *PanicError instead of unwinding Map's caller.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	if workers == 1 {
		// Inline fast path: no goroutines, same observable behavior.
		for i := 0; i < n; i++ {
			errs[i] = runJob(i, fn, &results[i])
		}
		return results, firstError(errs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = runJob(i, fn, &results[i])
			}
		}()
	}
	wg.Wait()
	return results, firstError(errs)
}

func runJob[T any](i int, fn func(int) (T, error), out *T) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	v, err := fn(i)
	if err != nil {
		return fmt.Errorf("job %d: %w", i, err)
	}
	*out = v
	return nil
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
