// Package version derives a human-readable build identity from the
// information the Go toolchain embeds in every binary, so the CLIs can
// answer -version (and stamp report headers) without a hand-maintained
// constant or linker flags.
package version

import (
	"fmt"
	"runtime/debug"
)

// String returns "rdasched <module version> (<vcs revision>[, dirty])".
// Fields the build did not record (a plain `go build` outside a VCS
// checkout, a test binary) degrade to "devel".
func String() string {
	mod, rev, dirty := "devel", "", false
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			mod = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	out := "rdasched " + mod
	if rev != "" {
		out += fmt.Sprintf(" (%s", rev)
		if dirty {
			out += ", dirty"
		}
		out += ")"
	}
	return out
}
