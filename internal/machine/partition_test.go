package machine

import (
	"testing"

	"rdasched/internal/pp"
	"rdasched/internal/proc"
)

func TestPartitionCapsPressure(t *testing.T) {
	// A 24 MB streamer fenced to 0.5 MB must not evict a co-running
	// high-reuse phase: the dgemm's runtime should match running alone.
	cfg := testConfig()
	dgemm := simplePhase(1e8, pp.MB(2.4), pp.ReuseHigh)

	alone := New(cfg, nil)
	if _, err := alone.AddProcess(singleProc("d", dgemm)); err != nil {
		t.Fatal(err)
	}
	resAlone := mustRun(t, alone)

	stream := proc.Phase{
		Name: "s", Instr: 1e8, WSS: pp.MB(24), Reuse: pp.ReuseLow,
		AccessesPerInstr: 0.01, PrivateHitFrac: 0.9, StreamFrac: 1,
		FlopsPerInstr: 0, CachePartition: pp.MB(0.5),
	}
	mixed := New(cfg, nil)
	if _, err := mixed.AddProcess(singleProc("d", dgemm)); err != nil {
		t.Fatal(err)
	}
	if _, err := mixed.AddProcess(singleProc("s", stream)); err != nil {
		t.Fatal(err)
	}
	resMixed := mustRun(t, mixed)

	// The dgemm finishes at the same time in both runs (2.9 MB of
	// pressure total — no contention).
	dAlone := resAlone.Procs[0].Finish
	dMixed := resMixed.Procs[0].Finish
	ratio := float64(dMixed) / float64(dAlone)
	if ratio > 1.01 {
		t.Fatalf("partitioned streamer slowed the dgemm %.3fx", ratio)
	}

	// Without the partition, the same streamer thrashes the dgemm.
	stream.CachePartition = 0
	open := New(cfg, nil)
	if _, err := open.AddProcess(singleProc("d", dgemm)); err != nil {
		t.Fatal(err)
	}
	if _, err := open.AddProcess(singleProc("s", stream)); err != nil {
		t.Fatal(err)
	}
	resOpen := mustRun(t, open)
	if float64(resOpen.Procs[0].Finish) < 1.2*float64(dAlone) {
		t.Fatalf("unpartitioned streamer did not thrash the dgemm (%.3fx)",
			float64(resOpen.Procs[0].Finish)/float64(dAlone))
	}
}

func TestPartitionCapsOwnResidency(t *testing.T) {
	// A high-reuse phase fenced below its working set loses hit rate even
	// when the cache is otherwise empty: partition/WSS bounds residency.
	cfg := testConfig()
	free := simplePhase(1e8, pp.MB(4), pp.ReuseHigh)
	fenced := free
	fenced.CachePartition = pp.MB(1)

	mf := New(cfg, nil)
	if _, err := mf.AddProcess(singleProc("free", free)); err != nil {
		t.Fatal(err)
	}
	resFree := mustRun(t, mf)

	mp := New(cfg, nil)
	if _, err := mp.AddProcess(singleProc("fenced", fenced)); err != nil {
		t.Fatal(err)
	}
	resFenced := mustRun(t, mp)

	if resFenced.Elapsed <= resFree.Elapsed {
		t.Fatal("fencing a reuse-heavy phase cost nothing")
	}
	if resFenced.Counters.DRAMAccesses <= resFree.Counters.DRAMAccesses {
		t.Fatal("fencing did not increase DRAM traffic")
	}
}

func TestOccupancyBytes(t *testing.T) {
	ph := proc.Phase{WSS: pp.MB(24), CachePartition: pp.MB(0.5)}
	if got := ph.OccupancyBytes(); got != pp.MB(0.5) {
		t.Fatalf("occupancy = %v", got)
	}
	ph.CachePartition = pp.MB(30) // larger than WSS: WSS wins
	if got := ph.OccupancyBytes(); got != pp.MB(24) {
		t.Fatalf("occupancy = %v", got)
	}
	ph.CachePartition = 0
	if got := ph.OccupancyBytes(); got != pp.MB(24) {
		t.Fatalf("occupancy = %v", got)
	}
}
