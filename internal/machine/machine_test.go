package machine

import (
	"math"
	"strings"
	"testing"

	"rdasched/internal/pp"
	"rdasched/internal/proc"
	"rdasched/internal/sim"
)

// testConfig returns a deterministic small-overhead config for unit tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.WakeLatency = 0
	cfg.OverheadAPIInstr = 0
	cfg.OverheadKernelInstr = 0
	cfg.WakeRefillFactor = 0
	return cfg
}

func simplePhase(instr float64, wss pp.Bytes, reuse pp.Reuse) proc.Phase {
	return proc.Phase{
		Name:             "k",
		Instr:            instr,
		WSS:              wss,
		Reuse:            reuse,
		AccessesPerInstr: 0.3,
		PrivateHitFrac:   0.8,
		FlopsPerInstr:    0.5,
	}
}

func singleProc(name string, phases ...proc.Phase) proc.Spec {
	return proc.Spec{Name: name, Threads: 1, Program: phases}
}

func mustRun(t *testing.T, m *Machine) *Result {
	t.Helper()
	res, err := m.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	muts := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.FreqHz = -1 },
		func(c *Config) { c.LLCCapacity = 0 },
		func(c *Config) { c.MemBandwidth = 0 },
		func(c *Config) { c.LineSize = 0 },
		func(c *Config) { c.BaseCPI = 0 },
		func(c *Config) { c.MLPOverlap = 1.0 },
		func(c *Config) { c.HMax[1] = 1.5 },
		func(c *Config) { c.OverheadKernelFrac = -1 },
		func(c *Config) { c.WakeLatency = -1 },
		func(c *Config) { c.MaxSimTime = 0 },
		func(c *Config) { c.Energy.StaticPkgWatts = -1 },
	}
	for i, mu := range muts {
		c := DefaultConfig()
		mu(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestBoundaryOverheadCurve(t *testing.T) {
	cfg := DefaultConfig()
	// Long period: full kernel cost.
	long := cfg.boundaryOverhead(268e6)
	if long != cfg.OverheadAPIInstr+cfg.OverheadKernelInstr {
		t.Fatalf("long overhead = %v", long)
	}
	// Short period: fast path, capped by frac·instr.
	short := cfg.boundaryOverhead(1000)
	if short != cfg.OverheadAPIInstr+cfg.OverheadKernelFrac*1000 {
		t.Fatalf("short overhead = %v", short)
	}
}

func TestSingleThreadTiming(t *testing.T) {
	cfg := testConfig()
	m := New(cfg, nil)
	const instr = 1e9
	ph := simplePhase(instr, pp.MB(1), pp.ReuseHigh)
	if _, err := m.AddProcess(singleProc("p", ph)); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, m)

	// Expected: working set fits (residency 1), so CPI is the closed form.
	h := (1 - ph.StreamFrac) * cfg.HMax[pp.ReuseHigh]
	llcFrac := ph.AccessesPerInstr * (1 - ph.PrivateHitFrac)
	cpi := cfg.BaseCPI + ph.AccessesPerInstr*ph.PrivateHitFrac*cfg.PrivateHitCycles +
		llcFrac*(1-cfg.MLPOverlap)*(h*cfg.LLCHitCycles+(1-h)*cfg.DRAMCycles)
	wantSecs := instr * cpi / cfg.FreqHz
	got := res.Elapsed.Seconds()
	if math.Abs(got-wantSecs)/wantSecs > 1e-6 {
		t.Fatalf("elapsed = %vs, want %vs", got, wantSecs)
	}
	if math.Abs(res.Counters.Instructions-instr) > 1 {
		t.Fatalf("instructions = %v, want %v", res.Counters.Instructions, instr)
	}
	if math.Abs(res.Counters.Flops-instr*0.5) > 1 {
		t.Fatalf("flops = %v", res.Counters.Flops)
	}
}

func TestLLCAndDRAMAccounting(t *testing.T) {
	cfg := testConfig()
	m := New(cfg, nil)
	ph := simplePhase(1e8, pp.MB(1), pp.ReuseHigh)
	if _, err := m.AddProcess(singleProc("p", ph)); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, m)
	wantLLC := 1e8 * ph.AccessesPerInstr * (1 - ph.PrivateHitFrac)
	if math.Abs(res.Counters.LLCAccesses-wantLLC)/wantLLC > 1e-6 {
		t.Fatalf("llc = %v, want %v", res.Counters.LLCAccesses, wantLLC)
	}
	h := cfg.HMax[pp.ReuseHigh]
	wantDRAM := wantLLC * (1 - h)
	if math.Abs(res.Counters.DRAMAccesses-wantDRAM)/wantDRAM > 1e-6 {
		t.Fatalf("dram = %v, want %v", res.Counters.DRAMAccesses, wantDRAM)
	}
	if res.SystemJ <= 0 || res.DRAMJ <= 0 || res.PackageJ <= 0 {
		t.Fatal("energy not accumulated")
	}
	if math.Abs(res.SystemJ-(res.PackageJ+res.DRAMJ)) > 1e-9 {
		t.Fatal("system != package + dram")
	}
}

func TestContentionSlowsHighReuseCoRunners(t *testing.T) {
	// 12 co-runners whose combined working sets blow the LLC must run
	// longer than 12 whose sets fit, at equal instruction counts.
	run := func(wss pp.Bytes) sim.Duration {
		m := New(testConfig(), nil)
		for i := 0; i < 12; i++ {
			if _, err := m.AddProcess(singleProc("p", simplePhase(1e8, wss, pp.ReuseHigh))); err != nil {
				t.Fatal(err)
			}
		}
		return mustRun(t, m).Elapsed
	}
	fits := run(pp.MB(1))    // 12 MB total < 15 MB
	thrash := run(pp.MB(10)) // 120 MB total ≫ 15 MB
	if float64(thrash) < 1.5*float64(fits) {
		t.Fatalf("thrashing run (%v) not ≫ fitting run (%v)", thrash, fits)
	}
}

func TestStreamingInsensitiveToContention(t *testing.T) {
	// With StreamFrac 1 residency is irrelevant: heavy co-runners change
	// runtime only via the bandwidth roofline, so use a tiny access rate
	// and verify equal runtimes.
	mk := func(wss pp.Bytes) proc.Phase {
		ph := simplePhase(1e8, wss, pp.ReuseLow)
		ph.StreamFrac = 1
		ph.AccessesPerInstr = 0.01
		return ph
	}
	run := func(wss pp.Bytes) sim.Duration {
		m := New(testConfig(), nil)
		for i := 0; i < 12; i++ {
			if _, err := m.AddProcess(singleProc("p", mk(wss))); err != nil {
				t.Fatal(err)
			}
		}
		return mustRun(t, m).Elapsed
	}
	small, large := run(pp.MB(1)), run(pp.MB(10))
	if math.Abs(float64(small)-float64(large))/float64(small) > 1e-9 {
		t.Fatalf("streaming runtime depends on residency: %v vs %v", small, large)
	}
}

func TestProcessorSharingBeyondCores(t *testing.T) {
	// 24 identical single-thread procs on 12 cores take ~2x as long as 12,
	// when cache effects are excluded (tiny working sets).
	run := func(n int) sim.Duration {
		m := New(testConfig(), nil)
		for i := 0; i < n; i++ {
			if _, err := m.AddProcess(singleProc("p", simplePhase(1e8, pp.KB(64), pp.ReuseHigh))); err != nil {
				t.Fatal(err)
			}
		}
		return mustRun(t, m).Elapsed
	}
	t12, t24 := run(12), run(24)
	ratio := float64(t24) / float64(t12)
	if ratio < 1.99 || ratio > 2.01 {
		t.Fatalf("24-proc/12-proc time ratio = %v, want ~2", ratio)
	}
}

func TestBandwidthRoofline(t *testing.T) {
	// A pure-streaming phase with enormous access rate must be capped at
	// the configured bandwidth.
	cfg := testConfig()
	cfg.MemBandwidth = 1e9 // 1 GB/s to make the cap bite hard
	m := New(cfg, nil)
	ph := simplePhase(1e8, pp.MB(1), pp.ReuseLow)
	ph.StreamFrac = 1
	ph.PrivateHitFrac = 0
	ph.AccessesPerInstr = 0.5
	for i := 0; i < 12; i++ {
		if _, err := m.AddProcess(singleProc("p", ph)); err != nil {
			t.Fatal(err)
		}
	}
	res := mustRun(t, m)
	bytesMoved := res.Counters.DRAMAccesses * float64(cfg.LineSize)
	gbps := bytesMoved / res.Elapsed.Seconds()
	if gbps > cfg.MemBandwidth*1.01 {
		t.Fatalf("sustained %v B/s exceeds roofline %v", gbps, cfg.MemBandwidth)
	}
	if gbps < cfg.MemBandwidth*0.9 {
		t.Fatalf("sustained %v B/s far below roofline %v (cap not binding?)", gbps, cfg.MemBandwidth)
	}
}

func TestMultiPhaseSequencing(t *testing.T) {
	m := New(testConfig(), nil)
	a := simplePhase(1e7, pp.MB(1), pp.ReuseHigh)
	a.Name, a.FlopsPerInstr = "a", 1
	b := simplePhase(2e7, pp.MB(2), pp.ReuseLow)
	b.Name, b.FlopsPerInstr = "b", 0
	if _, err := m.AddProcess(singleProc("p", a, b)); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, m)
	if math.Abs(res.Counters.Instructions-3e7) > 1 {
		t.Fatalf("instructions = %v, want 3e7", res.Counters.Instructions)
	}
	if math.Abs(res.Counters.Flops-1e7) > 1 {
		t.Fatalf("flops = %v, want 1e7 (only phase a)", res.Counters.Flops)
	}
}

func TestBarrierSynchronizesThreads(t *testing.T) {
	// Two threads, first phase barrier'd. Give the machine 1 core so the
	// threads serialize: without the barrier thread 0 would finish phase 2
	// before thread 1 finishes phase 1. With the barrier both must arrive
	// before either proceeds.
	cfg := testConfig()
	cfg.Cores = 1
	m := New(cfg, nil)
	ph1 := simplePhase(1e7, pp.KB(64), pp.ReuseHigh)
	ph1.BarrierAfter = true
	ph2 := simplePhase(1e7, pp.KB(64), pp.ReuseHigh)
	spec := proc.Spec{Name: "mt", Threads: 2, Program: proc.Program{ph1, ph2}}
	if _, err := m.AddProcess(spec); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, m)
	if res.Counters.Barriers != 1 {
		t.Fatalf("barriers = %d, want 1", res.Counters.Barriers)
	}
	if math.Abs(res.Counters.Instructions-4e7) > 1 {
		t.Fatalf("instructions = %v", res.Counters.Instructions)
	}
}

// blockFirstGate denies the first EnterPhase it sees, then admits
// everything; it releases the blocked thread when any other thread exits
// a phase.
type blockFirstGate struct {
	m       *Machine
	blocked *Thread
	denied  bool
	enters  int
	exits   int
}

func (g *blockFirstGate) EnterPhase(t *Thread, idx int, ph *proc.Phase) bool {
	g.enters++
	if !g.denied {
		g.denied = true
		g.blocked = t
		return false
	}
	return true
}

func (g *blockFirstGate) ExitPhase(t *Thread, idx int, ph *proc.Phase) {
	g.exits++
	if g.blocked != nil {
		b := g.blocked
		g.blocked = nil
		g.m.Unblock(b)
	}
}

func TestGateBlockAndUnblock(t *testing.T) {
	g := &blockFirstGate{}
	m := New(testConfig(), g)
	g.m = m
	ph := simplePhase(1e7, pp.MB(1), pp.ReuseHigh)
	ph.Declared = true
	for i := 0; i < 2; i++ {
		if _, err := m.AddProcess(singleProc("p", ph)); err != nil {
			t.Fatal(err)
		}
	}
	res := mustRun(t, m)
	if g.enters != 2 || g.exits != 2 {
		t.Fatalf("gate saw %d enters, %d exits; want 2, 2", g.enters, g.exits)
	}
	if res.Counters.PPBlocks != 1 || res.Counters.Wakeups != 1 {
		t.Fatalf("blocks=%d wakeups=%d, want 1,1", res.Counters.PPBlocks, res.Counters.Wakeups)
	}
	// Thread 1 could only run after thread 0 finished: serial time.
	if math.Abs(res.Counters.Instructions-2e7) > 1 {
		t.Fatalf("instructions = %v", res.Counters.Instructions)
	}
}

func TestGateWithWakeLatency(t *testing.T) {
	g := &blockFirstGate{}
	cfg := testConfig()
	cfg.WakeLatency = 100 * sim.Microsecond
	m := New(cfg, g)
	g.m = m
	ph := simplePhase(1e7, pp.MB(1), pp.ReuseHigh)
	ph.Declared = true
	for i := 0; i < 2; i++ {
		if _, err := m.AddProcess(singleProc("p", ph)); err != nil {
			t.Fatal(err)
		}
	}
	res := mustRun(t, m)
	if res.Counters.Wakeups != 1 {
		t.Fatalf("wakeups = %d", res.Counters.Wakeups)
	}
	// The serial run plus one wake latency.
	single := func() sim.Duration {
		m := New(testConfig(), nil)
		p := ph
		p.Declared = false
		if _, err := m.AddProcess(singleProc("p", p)); err != nil {
			t.Fatal(err)
		}
		return mustRun(t, m).Elapsed
	}()
	want := 2*single + 100*sim.Microsecond
	got := res.Elapsed
	if math.Abs(float64(got-want))/float64(want) > 0.01 {
		t.Fatalf("elapsed = %v, want ~%v", got, want)
	}
}

// denyForeverGate blocks every declared phase and never wakes anything.
type denyForeverGate struct{}

func (denyForeverGate) EnterPhase(*Thread, int, *proc.Phase) bool { return false }
func (denyForeverGate) ExitPhase(*Thread, int, *proc.Phase)       {}

func TestStallDetection(t *testing.T) {
	m := New(testConfig(), denyForeverGate{})
	ph := simplePhase(1e6, pp.MB(1), pp.ReuseHigh)
	ph.Declared = true
	if _, err := m.AddProcess(singleProc("p", ph)); err != nil {
		t.Fatal(err)
	}
	_, err := m.Run()
	if err == nil {
		t.Fatal("stalled run returned no error")
	}
	if !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestDeclaredOverheadCharged(t *testing.T) {
	cfg := DefaultConfig() // real overhead constants
	cfg.WakeLatency = 0
	base := simplePhase(1e6, pp.MB(1), pp.ReuseHigh)

	run := func(declared bool) *Result {
		m := New(cfg, nil)
		ph := base
		ph.Declared = declared
		if _, err := m.AddProcess(singleProc("p", ph)); err != nil {
			t.Fatal(err)
		}
		return mustRun(t, m)
	}
	plain, declared := run(false), run(true)
	// Overhead is stall: same instructions and flops, more wall time.
	if math.Abs(declared.Counters.Instructions-plain.Counters.Instructions) > 1 {
		t.Fatal("overhead counted as instructions")
	}
	if math.Abs(declared.Counters.Flops-plain.Counters.Flops) > 1 {
		t.Fatal("overhead fabricated flops")
	}
	wantExtra := cfg.boundaryOverhead(1e6)
	// With one thread the stall drains at freq/CPI; CPI ≥ BaseCPI, so the
	// extra time is at least wantExtra·BaseCPI/freq.
	extra := (declared.Elapsed - plain.Elapsed).Seconds()
	if extra < wantExtra*cfg.BaseCPI/cfg.FreqHz*0.9 {
		t.Fatalf("overhead wall cost %v below minimum", extra)
	}
	if declared.GFLOPS() >= plain.GFLOPS() {
		t.Fatal("declared run not slower in GFLOPS")
	}
}

func TestWakeRefillCharged(t *testing.T) {
	// A woken thread pays a cold-cache refill: compare instruction and
	// DRAM-access totals with the refill on and off.
	run := func(factor float64) *Result {
		cfg := testConfig()
		cfg.WakeRefillFactor = factor
		g := &blockFirstGate{}
		m := New(cfg, g)
		g.m = m
		ph := simplePhase(1e7, pp.MB(1), pp.ReuseHigh)
		ph.Declared = true
		for i := 0; i < 2; i++ {
			if _, err := m.AddProcess(singleProc("p", ph)); err != nil {
				t.Fatal(err)
			}
		}
		return mustRun(t, m)
	}
	off, on := run(0), run(1)
	lines := float64(pp.MB(1)) / 64
	// The stall yields no instructions or flops — only the refill's DRAM
	// line fetches and wall time.
	if math.Abs(on.Counters.Instructions-off.Counters.Instructions) > 1 {
		t.Fatalf("refill changed instruction count: %v vs %v",
			on.Counters.Instructions, off.Counters.Instructions)
	}
	if math.Abs(on.Counters.Flops-off.Counters.Flops) > 1 {
		t.Fatal("refill generated flops")
	}
	if extra := on.Counters.DRAMAccesses - off.Counters.DRAMAccesses; math.Abs(extra-lines) > 1 {
		t.Fatalf("refill DRAM accesses = %v, want %v", extra, lines)
	}
	if on.Elapsed <= off.Elapsed {
		t.Fatal("refill did not cost time")
	}
	cfg := testConfig()
	wantStall := lines * cfg.DRAMCycles * (1 - cfg.MLPOverlap) / cfg.BaseCPI // instr-equivalents
	// Rough wall-time check: the stall drains at the thread's rate; with
	// one runnable thread the extra time is at least stall·CPI/freq.
	minExtra := wantStall * cfg.BaseCPI / cfg.FreqHz
	if got := (on.Elapsed - off.Elapsed).Seconds(); got < minExtra*0.9 {
		t.Fatalf("refill wall cost %v below minimum %v", got, minExtra)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		m := New(testConfig(), nil)
		for i := 0; i < 30; i++ {
			wss := pp.MB(float64(i%5) + 0.5)
			if _, err := m.AddProcess(singleProc("p", simplePhase(1e7+float64(i)*1e5, wss, pp.Reuse(i%3)))); err != nil {
				t.Fatal(err)
			}
		}
		return mustRun(t, m)
	}
	a, b := run(), run()
	if a.Elapsed != b.Elapsed || a.Counters != b.Counters || a.SystemJ != b.SystemJ {
		t.Fatalf("runs diverged: %+v vs %+v", a, b)
	}
}

func TestRunTwiceFails(t *testing.T) {
	m := New(testConfig(), nil)
	if _, err := m.AddProcess(singleProc("p", simplePhase(1e6, pp.MB(1), pp.ReuseHigh))); err != nil {
		t.Fatal(err)
	}
	mustRun(t, m)
	if _, err := m.Run(); err == nil {
		t.Fatal("second Run succeeded")
	}
	if _, err := m.AddProcess(singleProc("q", simplePhase(1e6, pp.MB(1), pp.ReuseHigh))); err == nil {
		t.Fatal("AddProcess after Run succeeded")
	}
}

func TestEmptyMachineFails(t *testing.T) {
	m := New(testConfig(), nil)
	if _, err := m.Run(); err == nil {
		t.Fatal("empty run succeeded")
	}
}

func TestAddWorkload(t *testing.T) {
	m := New(testConfig(), nil)
	w := proc.Workload{Name: "w", Procs: proc.Replicate(singleProc("x", simplePhase(1e6, pp.MB(1), pp.ReuseLow)), 5)}
	if err := m.AddWorkload(w); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, m)
	if len(res.Procs) != 5 {
		t.Fatalf("procs = %d", len(res.Procs))
	}
	for _, pr := range res.Procs {
		if pr.Finish <= 0 {
			t.Fatalf("process %s has no finish time", pr.Name)
		}
	}
}

func TestResultMetrics(t *testing.T) {
	m := New(testConfig(), nil)
	if _, err := m.AddProcess(singleProc("p", simplePhase(1e8, pp.MB(1), pp.ReuseHigh))); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, m)
	if res.GFLOPS() <= 0 {
		t.Fatal("GFLOPS not positive")
	}
	if res.GFLOPSPerWatt() <= 0 {
		t.Fatal("GFLOPS/W not positive")
	}
	// Cross-check: GFLOPS = flops/s/1e9.
	want := res.Counters.Flops / res.Elapsed.Seconds() / 1e9
	if math.Abs(res.GFLOPS()-want) > 1e-12 {
		t.Fatal("GFLOPS formula inconsistent")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Ready: "ready", Blocked: "blocked", Waking: "waking",
		BarrierWait: "barrier", Done: "done", State(9): "State(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestContentionGroupsSharedWSS(t *testing.T) {
	// Threads of one process share the working set: a 4-thread process
	// with a 10 MB phase must NOT register 40 MB of pressure. Verify via
	// runtime: it should match a single-thread process with the same WSS
	// running with residency 1 (both fit in 15 MB LLC).
	cfg := testConfig()
	multi := New(cfg, nil)
	ph := simplePhase(1e8, pp.MB(10), pp.ReuseHigh)
	if _, err := multi.AddProcess(proc.Spec{Name: "mt", Threads: 4, Program: proc.Program{ph}}); err != nil {
		t.Fatal(err)
	}
	resM := mustRun(t, multi)

	single := New(cfg, nil)
	if _, err := single.AddProcess(singleProc("st", ph)); err != nil {
		t.Fatal(err)
	}
	resS := mustRun(t, single)

	// 4 threads with the shared set fit fully resident: same per-thread
	// CPI, so the multi run takes the same wall time (4 cores in use).
	if math.Abs(float64(resM.Elapsed)-float64(resS.Elapsed))/float64(resS.Elapsed) > 1e-9 {
		t.Fatalf("shared-WSS grouping broken: multi %v vs single %v", resM.Elapsed, resS.Elapsed)
	}
}

func BenchmarkMachineRun96Procs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := New(testConfig(), nil)
		for j := 0; j < 96; j++ {
			if _, err := m.AddProcess(singleProc("p", simplePhase(1e7, pp.MB(2), pp.ReuseHigh))); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTimelineSampling(t *testing.T) {
	cfg := testConfig()
	m := New(cfg, nil)
	m.EnableTimeline(sim.Millisecond)
	// Staggered lengths so completions spread over time (identical procs
	// would finish in one event and leave a single scheduling point).
	for i := 0; i < 24; i++ {
		if _, err := m.AddProcess(singleProc("p", simplePhase(1e8+float64(i)*2e7, pp.MB(2), pp.ReuseHigh))); err != nil {
			t.Fatal(err)
		}
	}
	res := mustRun(t, m)
	if len(res.Timeline) < 2 {
		t.Fatalf("timeline has %d samples", len(res.Timeline))
	}
	for i, s := range res.Timeline {
		if s.BusyCores < 0 || s.BusyCores > float64(cfg.Cores) {
			t.Fatalf("sample %d busy = %v", i, s.BusyCores)
		}
		if s.PressureBytes <= 0 {
			t.Fatalf("sample %d pressure = %v", i, s.PressureBytes)
		}
		if i > 0 && s.At < res.Timeline[i-1].At {
			t.Fatal("timeline not monotone")
		}
	}
	// Disabled by default.
	m2 := New(cfg, nil)
	if _, err := m2.AddProcess(singleProc("p", simplePhase(1e6, pp.MB(1), pp.ReuseLow))); err != nil {
		t.Fatal(err)
	}
	res2 := mustRun(t, m2)
	if len(res2.Timeline) != 0 {
		t.Fatal("timeline recorded without EnableTimeline")
	}
}
