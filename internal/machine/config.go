// Package machine implements the analytic performance and energy model of
// the Table 1 test machine: 12 cores behind private L1/L2 caches and one
// shared 15360 KiB last-level cache. It executes proc.Workload phase
// descriptions under a fluid processor-sharing approximation of the Linux
// default scheduler, with an optional Gate through which the demand-aware
// extension (internal/core) pauses and resumes threads at progress-period
// boundaries.
//
// # Contention model
//
// The scheduling effects the paper measures all flow from last-level
// cache capacity contention, so that is what the model resolves. At any
// instant the *active set* is the set of ready threads, grouped by
// (process, phase): each group's working set competes for LLC residency
// once (threads of one process share their data). With total pressure P
// and capacity C, every working set keeps residency fraction
// r = min(1, C/P) — the steady state of LRU sharing among symmetric
// co-runners, and exactly the reload effect of Figure 1: a time-sliced
// co-runner evicts its peers whether or not it is on a core *right now*,
// because the default scheduler rotates all ready threads through the
// cores faster than the LLC turns over.
//
// Per-thread cycles-per-instruction then follows a standard memory-level
// breakdown, and a shared memory-bandwidth roofline caps aggregate miss
// traffic. Energy integrates the internal/energy RAPL model over the run.
package machine

import (
	"fmt"

	"rdasched/internal/energy"
	"rdasched/internal/pp"
	"rdasched/internal/sim"
)

// Config collects every constant of the machine model. The zero value is
// not usable; start from DefaultConfig.
type Config struct {
	// Cores is the number of physical cores (Table 1: 12).
	Cores int
	// FreqHz is the core clock (Table 1: 1.9 GHz).
	FreqHz float64
	// LLCCapacity is the shared cache size (Table 1: 15360 KiB).
	LLCCapacity pp.Bytes
	// MemBandwidth is the sustainable DRAM bandwidth in bytes/second
	// shared by all cores. 3-channel DDR3-1333 peaks at 32 GB/s on paper;
	// a 1.9 GHz E5-2420 sustains far less under random-miss traffic —
	// 14 GB/s reproduces the memory-bound plateau of Figure 13.
	MemBandwidth float64
	// LineSize is the transfer granularity to DRAM.
	LineSize pp.Bytes

	// BaseCPI is cycles/instruction with a perfect memory system.
	BaseCPI float64
	// PrivateHitCycles is the average extra cycles of an access served by
	// the private L1/L2 (mostly pipelined, hence small).
	PrivateHitCycles float64
	// LLCHitCycles / DRAMCycles are access latencies in core cycles.
	LLCHitCycles float64
	DRAMCycles   float64
	// MLPOverlap is the fraction of miss latency hidden by memory-level
	// parallelism and out-of-order execution; only (1-MLPOverlap) of the
	// latency is exposed as CPI.
	MLPOverlap float64
	// HMax is the maximum LLC hit rate of resident-set accesses, indexed
	// by pp.Reuse level: how often a fully resident working set is
	// re-referenced before eviction would matter.
	HMax [3]float64
	// ResidencyExponent sharpens the over-capacity cliff: the effective
	// hit scaling is residency^exponent. Linear sharing (exponent 1)
	// underestimates how brutally LRU fails once co-runners cycle through
	// more data than the cache holds — in the cyclic worst case the hit
	// rate collapses toward zero rather than degrading proportionally.
	// The default of 2 reproduces the measured collapse in the paper's
	// Figure 13 without making partial oversubscription (compromise
	// policy) hopeless.
	ResidencyExponent float64

	// OverheadAPIInstr is the instruction cost of one pp_begin or pp_end
	// call (user→kernel communication).
	OverheadAPIInstr float64
	// OverheadKernelInstr bounds the kernel-side arbitration cost of a
	// period boundary (predicate evaluation, wait-queue traffic, context
	// switch); short periods hit a fast path, modeled by charging
	// min(OverheadKernelInstr, OverheadKernelFrac·periodInstr).
	OverheadKernelInstr float64
	OverheadKernelFrac  float64
	// WakeLatency is the delay between a progress period releasing
	// resources and a waitlisted thread actually running again (wake IPI
	// + scheduling delay).
	WakeLatency sim.Duration
	// WakeRefillFactor scales the cold-cache refill a thread pays when it
	// resumes after being paused: while it waited, co-runners evicted its
	// working set, so on wake it re-fetches WSS/LineSize lines from DRAM.
	// 1 charges the full refill, 0 disables it. This is the flip side of
	// the benefit RDA trades for — pausing is not free, which is exactly
	// why the paper's low-reuse workloads end up slightly worse under RDA
	// than under the default policy.
	WakeRefillFactor float64

	// Energy holds the RAPL-style power/energy constants.
	Energy energy.Model

	// MaxSimTime aborts runs that exceed this much virtual time; it is a
	// guard against accidental livelock in experiments, not a scheduler
	// feature.
	MaxSimTime sim.Duration

	// Seed drives any stochastic elements of workload behaviour.
	Seed uint64
}

// DefaultConfig returns the Table 1 machine with calibrated model
// constants (see DESIGN.md §5 for the calibration notes).
func DefaultConfig() Config {
	return Config{
		Cores:        12,
		FreqHz:       1.9e9,
		LLCCapacity:  15360 * pp.KiB,
		MemBandwidth: 14e9,
		LineSize:     64,

		BaseCPI:           1.0,
		PrivateHitCycles:  0.5,
		LLCHitCycles:      30,
		DRAMCycles:        180,
		MLPOverlap:        0.6,
		HMax:              [3]float64{0.15, 0.75, 0.95},
		ResidencyExponent: 2.0,

		OverheadAPIInstr:    2400,
		OverheadKernelInstr: 245_000,
		OverheadKernelFrac:  0.25,
		WakeLatency:         30 * sim.Microsecond,
		WakeRefillFactor:    1.0,

		Energy: energy.Default(),

		MaxSimTime: 4 * 3600 * sim.Second,
		Seed:       1,
	}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("machine: %d cores", c.Cores)
	case c.FreqHz <= 0:
		return fmt.Errorf("machine: frequency %v", c.FreqHz)
	case c.LLCCapacity <= 0:
		return fmt.Errorf("machine: LLC capacity %v", c.LLCCapacity)
	case c.MemBandwidth <= 0:
		return fmt.Errorf("machine: bandwidth %v", c.MemBandwidth)
	case c.LineSize <= 0:
		return fmt.Errorf("machine: line size %v", c.LineSize)
	case c.BaseCPI <= 0:
		return fmt.Errorf("machine: base CPI %v", c.BaseCPI)
	case c.MLPOverlap < 0 || c.MLPOverlap >= 1:
		return fmt.Errorf("machine: MLP overlap %v outside [0,1)", c.MLPOverlap)
	case c.MaxSimTime <= 0:
		return fmt.Errorf("machine: max sim time %v", c.MaxSimTime)
	}
	for i, h := range c.HMax {
		if h < 0 || h > 1 {
			return fmt.Errorf("machine: HMax[%d] = %v outside [0,1]", i, h)
		}
	}
	if c.ResidencyExponent < 1 {
		return fmt.Errorf("machine: residency exponent %v below 1", c.ResidencyExponent)
	}
	if c.OverheadKernelFrac < 0 || c.OverheadAPIInstr < 0 || c.OverheadKernelInstr < 0 {
		return fmt.Errorf("machine: negative overhead constants")
	}
	if c.WakeLatency < 0 {
		return fmt.Errorf("machine: negative wake latency")
	}
	if c.WakeRefillFactor < 0 || c.WakeRefillFactor > 1 {
		return fmt.Errorf("machine: wake refill factor %v outside [0,1]", c.WakeRefillFactor)
	}
	return c.Energy.Validate()
}

// boundaryOverhead returns the extra instructions charged to a declared
// phase of the given length for its begin/end API calls plus kernel
// arbitration (see DESIGN.md §5; reproduces the Figure 11 curve).
func (c Config) boundaryOverhead(phaseInstr float64) float64 {
	kernel := c.OverheadKernelInstr
	if cap := c.OverheadKernelFrac * phaseInstr; cap < kernel {
		kernel = cap
	}
	return c.OverheadAPIInstr + kernel
}
