package machine

import (
	"errors"
	"fmt"
	"math"

	"rdasched/internal/energy"
	"rdasched/internal/proc"
	"rdasched/internal/sim"
)

// ErrHalted is returned by Run/Resume when the simulation was stopped by
// sim.Engine.Halt before every process completed (the crash-restart
// machinery's process-death fault). The machine's state is intact: the
// run can continue via Resume, typically after a restored gate has been
// swapped in with SetGate.
var ErrHalted = errors.New("machine: halted")

// State is a thread's scheduling state.
type State int

const (
	// Ready threads are runnable and share the cores.
	Ready State = iota
	// Blocked threads were paused by the Gate at a period boundary.
	Blocked
	// Waking threads have been released but are still inside the wake
	// latency window.
	Waking
	// BarrierWait threads finished a BarrierAfter phase and wait for
	// their siblings.
	BarrierWait
	// Done threads finished their program.
	Done
)

func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Blocked:
		return "blocked"
	case Waking:
		return "waking"
	case BarrierWait:
		return "barrier"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Thread is the runtime state of one simulated thread.
type Thread struct {
	id        int
	proc      *Process
	idxInProc int
	phase     int
	remaining float64 // instructions left in current phase (incl. overhead)
	penalty   float64 // stall instruction-equivalents (wake refill); drains
	// before remaining and yields no flops or memory traffic — the
	// traffic was already counted when the penalty was charged.
	state State
	// crashing marks a thread whose current phase was truncated by
	// CrashFrac: when the truncated run completes, the thread dies instead
	// of retiring the phase.
	crashing bool

	// Cached per-interval model outputs (valid between reschedules).
	rate          float64 // instructions/second
	share         float64 // core share in [0,1] (weighted fair)
	llcPerInstr   float64
	dramPerInstr  float64
	flopsPerInstr float64

	instructions float64
	flops        float64
}

// ID returns the machine-wide thread id.
func (t *Thread) ID() int { return t.id }

// Process returns the owning process.
func (t *Thread) Process() *Process { return t.proc }

// PhaseIndex returns the index of the thread's current phase.
func (t *Thread) PhaseIndex() int { return t.phase }

// State returns the scheduling state.
func (t *Thread) State() State { return t.state }

// CurrentPhase returns the phase the thread is in, or nil when done.
func (t *Thread) CurrentPhase() *proc.Phase {
	if t.phase >= len(t.proc.spec.Program) {
		return nil
	}
	return &t.proc.spec.Program[t.phase]
}

// Process is the runtime state of one simulated process.
type Process struct {
	id       int
	spec     proc.Spec
	threads  []*Thread
	barriers map[int]int // phase index → arrivals
	done     int
	crashed  int // threads that died mid-phase (fault injection)
	finish   sim.Time
}

// ID returns the machine-wide process id.
func (p *Process) ID() int { return p.id }

// Name returns the spec name.
func (p *Process) Name() string { return p.spec.Name }

// Spec returns the process description.
func (p *Process) Spec() proc.Spec { return p.spec }

// NumThreads returns the thread count.
func (p *Process) NumThreads() int { return len(p.threads) }

// Finished reports whether all threads completed, and when.
func (p *Process) Finished() (sim.Time, bool) {
	return p.finish, p.done == len(p.threads)
}

// Gate is the hook through which a scheduling extension intercepts
// declared phases (progress periods). EnterPhase returning false pauses
// the thread; the gate must later call Machine.Unblock to resume it.
// Undeclared phases never reach the gate — the paper's extension "ignores
// processes that have not provided progress period information".
type Gate interface {
	EnterPhase(t *Thread, phaseIdx int, ph *proc.Phase) bool
	ExitPhase(t *Thread, phaseIdx int, ph *proc.Phase)
}

// Counters aggregates machine-wide activity.
type Counters struct {
	Instructions float64
	Flops        float64
	LLCAccesses  float64
	DRAMAccesses float64
	PPBlocks     uint64 // gate denials
	Wakeups      uint64 // gate releases
	Barriers     uint64 // barrier rendezvous completed
	Crashes      uint64 // threads that died mid-phase (fault injection)
	LeakedEnds   uint64 // declared phases retired without a pp_end (fault injection)
}

// Sample is one point of the run's utilization timeline.
type Sample struct {
	At        sim.Time
	BusyCores float64
	// PressureBytes is the LLC pressure of the active set at the sample.
	PressureBytes float64
}

// Result summarizes one run.
type Result struct {
	Elapsed      sim.Duration
	Counters     Counters
	PackageJ     float64
	DRAMJ        float64
	SystemJ      float64
	AvgBusyCores float64
	Procs        []ProcResult
	// Timeline holds utilization samples taken at scheduling points, at
	// most one per TimelineInterval (empty when sampling is disabled).
	Timeline []Sample
}

// ProcResult is one process's completion record.
type ProcResult struct {
	Name         string
	Finish       sim.Duration
	Instructions float64
	Flops        float64
}

// GFLOPS returns billions of floating-point operations per wall second.
func (r *Result) GFLOPS() float64 {
	s := r.Elapsed.Seconds()
	if s == 0 {
		return 0
	}
	return r.Counters.Flops / s / 1e9
}

// GFLOPSPerWatt returns total GFLOP divided by system Joules — the
// paper's Figure 10 metric (work per energy).
func (r *Result) GFLOPSPerWatt() float64 {
	if r.SystemJ == 0 {
		return 0
	}
	return r.Counters.Flops / 1e9 / r.SystemJ
}

// Machine simulates one run of a set of processes. A Machine is single
// use: construct, add processes, Run once.
type Machine struct {
	cfg   Config
	eng   *sim.Engine
	meter *energy.Meter
	gate  Gate

	procs   []*Process
	threads []*Thread

	lastUpdate  sim.Time
	pending     *sim.Event
	busyCores   float64
	timeline    []Sample
	lastSample  sim.Time
	sampleEvery sim.Duration
	inEvent     bool
	dirty       bool
	ran         bool
	doneProcs   int
	counters    Counters
	llcCarry    float64
	dramCarry   float64
	err         error
}

// New builds a machine; it panics on an invalid config (programming
// error) and accepts a nil gate (default scheduling only).
func New(cfg Config, gate Gate) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Machine{
		cfg:   cfg,
		eng:   sim.NewEngine(cfg.Seed),
		meter: energy.NewMeter(cfg.Energy),
		gate:  gate,
	}
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Now returns the current virtual time.
func (m *Machine) Now() sim.Time { return m.eng.Now() }

// Engine exposes the event engine (used by gates that need timers).
func (m *Machine) Engine() *sim.Engine { return m.eng }

// EnableTimeline records a utilization sample at scheduling points, at
// most one per interval. Call before Run.
func (m *Machine) EnableTimeline(interval sim.Duration) {
	if interval <= 0 {
		interval = 10 * sim.Millisecond
	}
	m.sampleEvery = interval
}

// AddProcess instantiates spec. It returns an error after Run has started
// or for invalid specs.
func (m *Machine) AddProcess(spec proc.Spec) (*Process, error) {
	if m.ran {
		return nil, fmt.Errorf("machine: AddProcess after Run")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := &Process{id: len(m.procs), spec: spec, barriers: make(map[int]int)}
	for i := 0; i < spec.Threads; i++ {
		t := &Thread{id: len(m.threads), proc: p, idxInProc: i}
		p.threads = append(p.threads, t)
		m.threads = append(m.threads, t)
	}
	m.procs = append(m.procs, p)
	return p, nil
}

// AddWorkload instantiates every spec in w.
func (m *Machine) AddWorkload(w proc.Workload) error {
	if err := w.Validate(); err != nil {
		return err
	}
	for _, s := range w.Procs {
		if _, err := m.AddProcess(s); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the simulation to completion and returns the result. When
// the engine is halted mid-run (crash-restart fault injection) it returns
// ErrHalted; the machine stays live and Resume continues the run.
func (m *Machine) Run() (*Result, error) {
	if m.ran {
		return nil, fmt.Errorf("machine: Run called twice")
	}
	m.ran = true
	if len(m.procs) == 0 {
		return nil, fmt.Errorf("machine: no processes")
	}
	// Launch every thread through phase 0 (gate admission in thread order,
	// like processes starting one after another at t=0).
	for _, t := range m.threads {
		m.startPhase(t, 0)
	}
	m.reschedule()
	return m.drive()
}

// Resume continues a run that Run (or a previous Resume) left with
// ErrHalted. The caller must first clear the engine halt (sim.Engine
// Resume); typically a restored gate has been installed with SetGate so
// the remainder of the schedule is driven by the revived scheduler.
func (m *Machine) Resume() (*Result, error) {
	if !m.ran {
		return nil, fmt.Errorf("machine: Resume before Run")
	}
	if m.err != nil {
		return nil, fmt.Errorf("machine: Resume after failed run: %w", m.err)
	}
	if m.eng.Halted() {
		return nil, fmt.Errorf("machine: Resume with the engine still halted")
	}
	return m.drive()
}

// drive steps the engine until every process completes, a stall or
// MaxSimTime error occurs, or the engine is halted. A halt is NOT stored
// in m.err — it is a resumable condition, not a failed run.
func (m *Machine) drive() (*Result, error) {
	deadline := sim.Time(0).Add(m.cfg.MaxSimTime)
	for m.doneProcs < len(m.procs) && m.err == nil {
		if !m.eng.Step() {
			if m.eng.Halted() {
				return nil, ErrHalted
			}
			m.err = m.stallError()
			break
		}
		if m.eng.Now() > deadline {
			m.err = fmt.Errorf("machine: exceeded MaxSimTime %v (livelock?)", m.cfg.MaxSimTime)
			break
		}
	}
	if m.err != nil {
		return nil, m.err
	}
	res := &Result{
		Elapsed:      m.eng.Now().DurationSince(0),
		Counters:     m.counters,
		PackageJ:     m.meter.PackageJoules(),
		DRAMJ:        m.meter.DRAMJoules(),
		SystemJ:      m.meter.SystemJoules(),
		AvgBusyCores: m.meter.AvgBusyCores(),
		Timeline:     m.timeline,
	}
	for _, p := range m.procs {
		pr := ProcResult{Name: p.spec.Name, Finish: p.finish.DurationSince(0)}
		for _, t := range p.threads {
			pr.Instructions += t.instructions
			pr.Flops += t.flops
		}
		res.Procs = append(res.Procs, pr)
	}
	return res, nil
}

// SetGate replaces the admission gate mid-run. It exists for the restore
// path: after a halt, a scheduler rebuilt from a checkpoint takes over
// from the one that "died". The caller is responsible for the old gate's
// pending timers — a detached gate must never touch the machine again.
func (m *Machine) SetGate(g Gate) { m.gate = g }

// ThreadByID returns the thread with the given machine-wide id, or nil
// when no such thread exists. IDs are dense slice indexes assigned in
// AddProcess order, so restored checkpoints can re-link waiter lists.
func (m *Machine) ThreadByID(id int) *Thread {
	if id < 0 || id >= len(m.threads) {
		return nil
	}
	return m.threads[id]
}

func (m *Machine) stallError() error {
	blocked, waiting := 0, 0
	for _, t := range m.threads {
		switch t.state {
		case Blocked:
			blocked++
		case BarrierWait:
			waiting++
		}
	}
	return fmt.Errorf("machine: stalled at %v with %d/%d processes done (%d blocked, %d at barriers): "+
		"a progress period was never released — check the gate's policy for starvation",
		m.eng.Now(), m.doneProcs, len(m.procs), blocked, waiting)
}

// Unblock releases a thread the gate paused. It may be called
// synchronously from within ExitPhase or later from a timer.
func (m *Machine) Unblock(t *Thread) {
	if t.state != Blocked {
		panic(fmt.Sprintf("machine: Unblock of %s thread %d", t.state, t.id))
	}
	m.counters.Wakeups++
	wake := func() {
		m.chargeWakeRefill(t)
		t.state = Ready
	}
	if m.cfg.WakeLatency <= 0 {
		m.mutate(wake)
		return
	}
	t.state = Waking
	m.eng.After(m.cfg.WakeLatency, func() {
		m.mutate(wake)
	})
}

// chargeWakeRefill bills the cold-cache restart of a resumed thread: the
// working set it is about to use was evicted while it waited, so
// WSS/LineSize lines stream back in from DRAM. The stall is charged as
// instruction-equivalents at base CPI (an approximation — refill overlaps
// poorly with execution, which is why only the exposed latency fraction
// is charged), and the line fetches are counted as LLC + DRAM traffic.
func (m *Machine) chargeWakeRefill(t *Thread) {
	if m.cfg.WakeRefillFactor <= 0 {
		return
	}
	ph := t.CurrentPhase()
	if ph == nil {
		return
	}
	lines := m.cfg.WakeRefillFactor * float64(ph.OccupancyBytes()) / float64(m.cfg.LineSize)
	exposed := m.cfg.DRAMCycles * (1 - m.cfg.MLPOverlap)
	t.penalty += lines * exposed / m.cfg.BaseCPI
	m.accumulate(lines, lines)
}

// mutate applies a state change with correct advance/reschedule framing:
// inside an event the reschedule is deferred to the event's end; outside
// (timer callbacks) it happens immediately.
func (m *Machine) mutate(fn func()) {
	if m.inEvent {
		fn()
		m.dirty = true
		return
	}
	m.advance()
	fn()
	m.reschedule()
}

// advance integrates thread progress, counters, and energy from the last
// update point to now, using the rates cached by the last reschedule.
func (m *Machine) advance() {
	now := m.eng.Now()
	dt := now.DurationSince(m.lastUpdate)
	if dt <= 0 {
		m.lastUpdate = now
		return
	}
	secs := dt.Seconds()
	var llc, dram float64
	for _, t := range m.threads {
		if t.state != Ready {
			continue
		}
		done := t.rate * secs
		if done > t.remaining+t.penalty+1 {
			done = t.remaining + t.penalty + 1 // clamp numerical overshoot
		}
		if t.penalty > 0 {
			p := done
			if p > t.penalty {
				p = t.penalty
			}
			t.penalty -= p
			done -= p
		}
		t.remaining -= done
		t.instructions += done
		t.flops += done * t.flopsPerInstr
		m.counters.Instructions += done
		m.counters.Flops += done * t.flopsPerInstr
		llc += done * t.llcPerInstr
		dram += done * t.dramPerInstr
	}
	m.accumulate(llc, dram)
	m.meter.AdvanceTime(dt, m.busyCores)
	m.lastUpdate = now
}

// accumulate moves float access counts into the meter with carry so that
// rounding never loses events.
func (m *Machine) accumulate(llc, dram float64) {
	m.counters.LLCAccesses += llc
	m.counters.DRAMAccesses += dram
	m.llcCarry += llc
	m.dramCarry += dram
	if n := uint64(m.llcCarry); n > 0 {
		m.meter.CountLLC(n)
		m.llcCarry -= float64(n)
	}
	if n := uint64(m.dramCarry); n > 0 {
		m.meter.CountDRAM(n)
		m.dramCarry -= float64(n)
	}
}

// completionEpsilon is the slack (in instructions) below which a phase
// counts as finished; it absorbs picosecond event rounding.
const completionEpsilon = 0.05

// computeShares assigns each ready thread its weighted fair core share
// (CFS semantics in the fluid limit) by water-filling: no thread may use
// more than one core, and leftover capacity from capped threads is
// redistributed to the rest in proportion to their weights. It returns
// the total busy-core count (Σ shares). With uniform weights this
// reduces to share = min(1, cores/ready).
func (m *Machine) computeShares() float64 {
	var unsat []*Thread
	for _, t := range m.threads {
		if t.state == Ready {
			t.share = 0
			unsat = append(unsat, t)
		}
	}
	capacity := float64(m.cfg.Cores)
	total := 0.0
	for len(unsat) > 0 && capacity > 1e-12 {
		var sumW float64
		for _, t := range unsat {
			sumW += t.proc.spec.EffectiveWeight()
		}
		next := unsat[:0]
		capped := false
		for _, t := range unsat {
			w := t.proc.spec.EffectiveWeight()
			if capacity*w/sumW >= 1 {
				t.share = 1
				capped = true
			} else {
				next = append(next, t)
			}
		}
		if capped {
			// Recompute remaining capacity and iterate.
			used := 0.0
			for _, t := range m.threads {
				if t.state == Ready && t.share == 1 {
					used++
				}
			}
			capacity = float64(m.cfg.Cores) - used
			unsat = next
			continue
		}
		for _, t := range unsat {
			w := t.proc.spec.EffectiveWeight()
			t.share = capacity * w / sumW
		}
		unsat = nil
	}
	for _, t := range m.threads {
		if t.state == Ready {
			total += t.share
		}
	}
	// Clamp float accumulation noise: Σ shares can exceed the core count
	// by an ulp after water-filling.
	if max := float64(m.cfg.Cores); total > max {
		total = max
	}
	return total
}

// reschedule recomputes contention, rates, and the next completion event.
func (m *Machine) reschedule() {
	if m.pending != nil {
		m.eng.Cancel(m.pending)
		m.pending = nil
	}
	ready := 0
	for _, t := range m.threads {
		if t.state == Ready {
			ready++
		}
	}
	if ready == 0 {
		return // threads are blocked/waking/done; timers or the gate move things along
	}

	ctn := m.contention()
	m.busyCores = m.computeShares()
	if m.sampleEvery > 0 && (len(m.timeline) == 0 || m.eng.Now() >= m.lastSample.Add(m.sampleEvery)) {
		m.timeline = append(m.timeline, Sample{
			At: m.eng.Now(), BusyCores: m.busyCores,
			PressureBytes: float64(ctn.PressureBytes),
		})
		m.lastSample = m.eng.Now()
	}

	// Unconstrained rates, then a shared-bandwidth roofline.
	var traffic float64 // bytes/sec of DRAM transfers
	for _, t := range m.threads {
		if t.state != Ready {
			continue
		}
		ph := t.CurrentPhase()
		perf := m.phasePerf(ph, ctn)
		t.llcPerInstr = perf.llcPerInstr
		t.dramPerInstr = perf.dramPerInstr
		t.flopsPerInstr = ph.FlopsPerInstr
		t.rate = t.share * m.cfg.FreqHz / perf.cpi
		traffic += t.rate * t.dramPerInstr * float64(m.cfg.LineSize)
	}
	if traffic > m.cfg.MemBandwidth {
		scale := m.cfg.MemBandwidth / traffic
		for _, t := range m.threads {
			if t.state == Ready {
				t.rate *= scale
			}
		}
	}

	// Next completion.
	next := math.Inf(1)
	for _, t := range m.threads {
		if t.state != Ready {
			continue
		}
		dt := (t.remaining + t.penalty) / t.rate
		if dt < next {
			next = dt
		}
	}
	if math.IsInf(next, 1) {
		return
	}
	d := sim.Duration(math.Ceil(next * 1e12))
	if d < 1 {
		d = 1
	}
	m.pending = m.eng.After(d, m.onCompletion)
}

// onCompletion advances time and retires every phase that has finished.
func (m *Machine) onCompletion() {
	m.pending = nil
	m.advance()
	m.inEvent = true
	m.dirty = false
	for _, t := range m.threads {
		if t.state == Ready && t.remaining+t.penalty <= completionEpsilon {
			m.finishPhase(t)
		}
	}
	m.inEvent = false
	m.reschedule()
}

// finishPhase retires t's current phase: gate exit, barrier rendezvous,
// next phase entry. A crashing thread dies instead: no pp_end reaches the
// gate, no barrier is joined, and the rest of its program never runs.
func (m *Machine) finishPhase(t *Thread) {
	ph := t.CurrentPhase()
	idx := t.phase
	if t.crashing {
		m.crashThread(t)
		return
	}
	if ph.Declared && m.gate != nil {
		if ph.LeakEnd {
			m.counters.LeakedEnds++
		} else {
			m.gate.ExitPhase(t, idx, ph)
		}
	}
	if ph.BarrierAfter && t.proc.spec.Threads > 1 {
		p := t.proc
		p.barriers[idx]++
		if p.barriers[idx] < len(p.threads)-p.crashed {
			t.state = BarrierWait
			return
		}
		m.completeBarrier(p, idx, t)
	}
	t.phase++
	m.startPhase(t, t.phase)
}

// completeBarrier releases every sibling waiting at barrier idx. The
// arriving thread (nil when a crash shrank the rendezvous target) advances
// itself in finishPhase.
func (m *Machine) completeBarrier(p *Process, idx int, arriving *Thread) {
	delete(p.barriers, idx)
	m.counters.Barriers++
	for _, sib := range p.threads {
		if sib != arriving && sib.state == BarrierWait && sib.phase == idx {
			sib.phase++
			m.startPhase(sib, sib.phase)
		}
	}
}

// crashThread kills t mid-period: the thread counts as finished for
// process completion, its open progress period never sees a pp_end (the
// scheduler's lease watchdog reclaims the load), and every pending
// barrier of its process re-evaluates against the shrunken rendezvous
// target so surviving siblings are not deadlocked by a dead peer.
func (m *Machine) crashThread(t *Thread) {
	t.state = Done
	t.crashing = false
	m.counters.Crashes++
	p := t.proc
	p.crashed++
	p.done++
	if p.done == len(p.threads) {
		p.finish = m.eng.Now()
		m.doneProcs++
	}
	for idx := 0; idx < len(p.spec.Program); idx++ {
		if n, ok := p.barriers[idx]; ok && n > 0 && n >= len(p.threads)-p.crashed {
			m.completeBarrier(p, idx, nil)
		}
	}
}

// startPhase moves t into phase i, charging boundary overhead and asking
// the gate for admission when the phase is declared.
func (m *Machine) startPhase(t *Thread, i int) {
	prog := t.proc.spec.Program
	if i >= len(prog) {
		t.state = Done
		p := t.proc
		p.done++
		if p.done == len(p.threads) {
			p.finish = m.eng.Now()
			m.doneProcs++
		}
		return
	}
	ph := &prog[i]
	t.remaining = ph.Instr
	if ph.CrashFrac > 0 {
		// Fault injection: the thread dies after this fraction of the
		// phase. Truncate the run; finishPhase turns completion into death.
		t.remaining = ph.Instr * ph.CrashFrac
		t.crashing = true
	}
	if ph.Declared {
		// The pp_begin/pp_end cost is stall, not useful work: charge it
		// as zero-yield penalty so it consumes time without fabricating
		// flops or memory traffic.
		t.penalty += m.cfg.boundaryOverhead(ph.Instr)
		if m.gate != nil && !m.gate.EnterPhase(t, i, ph) {
			t.state = Blocked
			m.counters.PPBlocks++
			return
		}
	}
	t.state = Ready
}
