package machine

import (
	"math"
	"testing"

	"rdasched/internal/pp"
	"rdasched/internal/proc"
)

func weightedSpec(name string, weight float64, instr float64) proc.Spec {
	return proc.Spec{
		Name: name, Threads: 1, Weight: weight,
		Program: proc.Program{simplePhase(instr, pp.KB(64), pp.ReuseHigh)},
	}
}

func TestWeightedSharesUnderContention(t *testing.T) {
	// One core, two threads with weights 2:1 and equal work: the heavy
	// thread finishes first, and while both run it progresses 2x as fast.
	cfg := testConfig()
	cfg.Cores = 1
	m := New(cfg, nil)
	if _, err := m.AddProcess(weightedSpec("heavy", 2, 1e8)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(weightedSpec("light", 1, 1e8)); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, m)
	heavy, light := res.Procs[0], res.Procs[1]
	if heavy.Finish >= light.Finish {
		t.Fatalf("heavy (w=2) finished at %v, light at %v", heavy.Finish, light.Finish)
	}
	// While both run, heavy gets 2/3 of the core: it finishes its 1e8
	// instructions when light has done 5e7; light then runs alone. So
	// heavy finishes at 1.5x the solo time, light at 2x.
	ratio := float64(light.Finish) / float64(heavy.Finish)
	if math.Abs(ratio-4.0/3.0) > 0.01 {
		t.Fatalf("finish ratio = %v, want 4/3", ratio)
	}
}

func TestWeightsIrrelevantWithoutContention(t *testing.T) {
	// Two threads, twelve cores: both get a full core regardless of
	// weight.
	cfg := testConfig()
	m := New(cfg, nil)
	if _, err := m.AddProcess(weightedSpec("heavy", 8, 1e8)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(weightedSpec("light", 1, 1e8)); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, m)
	if res.Procs[0].Finish != res.Procs[1].Finish {
		t.Fatalf("uncontended weighted threads diverged: %v vs %v",
			res.Procs[0].Finish, res.Procs[1].Finish)
	}
	if math.Abs(res.AvgBusyCores-2) > 1e-9 {
		t.Fatalf("busy cores = %v, want 2", res.AvgBusyCores)
	}
}

func TestWaterFillingCapsHeavyThreads(t *testing.T) {
	// Two cores, three threads with weights 10, 1, 1: the heavy thread is
	// capped at one full core and the remaining core splits evenly.
	cfg := testConfig()
	cfg.Cores = 2
	m := New(cfg, nil)
	if _, err := m.AddProcess(weightedSpec("heavy", 10, 2e8)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := m.AddProcess(weightedSpec("light", 1, 1e8)); err != nil {
			t.Fatal(err)
		}
	}
	res := mustRun(t, m)
	// heavy: 2e8 at share 1; lights: 1e8 at share 0.5 → all three finish
	// simultaneously (2e8 worth of single-core time).
	h, l1, l2 := res.Procs[0].Finish, res.Procs[1].Finish, res.Procs[2].Finish
	if math.Abs(float64(h-l1))/float64(h) > 1e-9 || math.Abs(float64(h-l2))/float64(h) > 1e-9 {
		t.Fatalf("finishes diverged: %v %v %v", h, l1, l2)
	}
}

func TestNegativeWeightRejected(t *testing.T) {
	m := New(testConfig(), nil)
	s := weightedSpec("bad", -1, 1e6)
	if _, err := m.AddProcess(s); err == nil {
		t.Fatal("negative weight accepted")
	}
}
