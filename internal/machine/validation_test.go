package machine

// Trace-driven validation of the analytic contention model: co-running
// working sets are replayed through the real set-associative LRU
// hierarchy (internal/cache) and the measured shared-cache hit rates are
// compared against the model's residency assumptions.
//
// The analytic model claims h ∝ r^γ with r = C/ΣW and γ = 2. The two
// classic access-pattern extremes bracket that choice:
//
//   - uniform random accesses within each working set degrade *linearly*
//     (each thread keeps C/ΣW of its set resident and hits with exactly
//     that probability) — γ = 1;
//   - cyclic sequential sweeps collapse to ~zero hits the moment ΣW
//     exceeds C (LRU's pathological case) — γ → ∞.
//
// Real phases mix both behaviours; γ = 2 sits between the brackets. The
// tests below verify each bracket empirically on the simulated hardware.

import (
	"testing"

	"rdasched/internal/cache"
	"rdasched/internal/pp"
	"rdasched/internal/sim"
)

// replayCoRun interleaves per-thread access streams through a shared LLC
// (one private L1/L2 per thread) in round-robin bursts, returning the
// steady-state LLC hit rate measured after a warm-up pass.
func replayCoRun(t *testing.T, threads int, wss pp.Bytes, pattern string, sweeps int) float64 {
	t.Helper()
	cfg := cache.E5_2420()
	if threads > cfg.Cores {
		t.Fatalf("replay with %d threads exceeds %d cores", threads, cfg.Cores)
	}
	h := cache.NewHierarchy(cfg)
	rng := sim.NewRNG(42)

	// Per-thread positional state for the cyclic pattern.
	pos := make([]uint64, threads)
	next := func(i int) uint64 {
		base := uint64(i) << 30
		switch pattern {
		case "random":
			return base + (rng.Uint64n(uint64(wss)) &^ 63)
		case "cyclic":
			a := base + pos[i]
			pos[i] = (pos[i] + 64) % uint64(wss)
			return a
		default:
			t.Fatalf("unknown pattern %q", pattern)
			return 0
		}
	}

	// Access counts scale with the working set so that warm-up actually
	// fills it: `sweeps` passes of wss/64 accesses per thread.
	perThread := sweeps * int(wss/64)
	const burst = 512 // accesses per scheduling burst, round-robin
	run := func(n int, count bool) (hits, llcAccesses uint64) {
		for done := 0; done < n; done += burst {
			for i := 0; i < threads; i++ {
				for k := 0; k < burst; k++ {
					lvl, _ := h.Access(i, next(i))
					if !count {
						continue
					}
					switch lvl {
					case cache.LLC:
						hits++
						llcAccesses++
					case cache.Memory:
						llcAccesses++
					}
				}
			}
		}
		return
	}
	run(perThread, false) // warm up
	hits, total := run(perThread, true)
	if total == 0 {
		t.Fatal("no LLC-level accesses measured")
	}
	return float64(hits) / float64(total)
}

func TestRandomAccessDegradesLinearly(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// 12 × 2 MB = 24 MB on a 15 MB LLC: r = 0.64. Uniform random access
	// should measure an LLC hit rate near r (the linear bracket).
	const threads = 12
	wss := pp.MB(2)
	r := float64(15360*pp.KiB) / float64(pp.Bytes(threads)*wss)
	got := replayCoRun(t, threads, wss, "random", 6)
	if got < r*0.75 || got > r*1.2 {
		t.Fatalf("random-access hit rate %.3f, want ≈ r = %.3f (linear degradation)", got, r)
	}
}

func TestCyclicSweepCollapsesSuperLinearly(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Same pressure, cyclic sweeps: LRU thrashes and the hit rate falls
	// far below the linear prediction — the bracket that justifies γ > 1.
	const threads = 12
	wss := pp.MB(2)
	r := float64(15360*pp.KiB) / float64(pp.Bytes(threads)*wss)
	got := replayCoRun(t, threads, wss, "cyclic", 6)
	if got > r/2 {
		t.Fatalf("cyclic hit rate %.3f not ≪ linear r = %.3f", got, r)
	}
	// And the model's γ=2 prediction lies between the brackets.
	model := r * r
	if !(got <= model*1.5 && model <= r) {
		t.Fatalf("γ=2 model %.3f not bracketed by cyclic %.3f and linear %.3f", model, got, r)
	}
}

func TestFittingSetsStayResident(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// 4 × 2 MB = 8 MB fits in 15 MB: both patterns must hit nearly
	// always once warm.
	for _, pattern := range []string{"random", "cyclic"} {
		got := replayCoRun(t, 4, pp.MB(2), pattern, 6)
		if got < 0.95 {
			t.Fatalf("%s hit rate %.3f for fitting sets, want ≈1", pattern, got)
		}
	}
}

func TestHitRateMonotoneInPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Increasing co-runner count must not increase anyone's hit rate.
	prev := 1.1
	for _, threads := range []int{4, 8, 12} {
		got := replayCoRun(t, threads, pp.MB(2), "random", 5)
		if got > prev+0.02 {
			t.Fatalf("hit rate rose from %.3f to %.3f when adding co-runners", prev, got)
		}
		prev = got
	}
}
