package machine

import (
	"math"

	"rdasched/internal/pp"
	"rdasched/internal/proc"
)

// contentionState captures the shared-cache situation at one instant.
type contentionState struct {
	// PressureBytes is the total working-set demand of the active set:
	// one contribution per (process, phase) group of ready threads,
	// because threads of a process share their phase's data.
	PressureBytes pp.Bytes
	// Residency is min(1, capacity/pressure): the fraction of each
	// working set that stays resident under symmetric LRU sharing.
	Residency float64
	// Groups is the number of distinct (process, phase) groups.
	Groups int
}

// contention computes the current LLC pressure from all Ready threads.
func (m *Machine) contention() contentionState {
	type key struct{ proc, phase int }
	seen := make(map[key]struct{}, len(m.procs))
	var pressure pp.Bytes
	for _, t := range m.threads {
		if t.state != Ready {
			continue
		}
		k := key{t.proc.id, t.phase}
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		// Partitioned phases press on the shared pool only up to their
		// partition (§6 extension: a fenced streaming app cannot evict
		// its neighbours beyond its allotment).
		pressure += t.CurrentPhase().OccupancyBytes()
	}
	st := contentionState{PressureBytes: pressure, Groups: len(seen), Residency: 1}
	if pressure > m.cfg.LLCCapacity {
		st.Residency = float64(m.cfg.LLCCapacity) / float64(pressure)
	}
	return st
}

// phasePerf is the per-instruction performance decomposition of one phase
// under a given contention state.
type perfParams struct {
	cpi          float64
	llcPerInstr  float64 // accesses reaching the shared LLC per instruction
	dramPerInstr float64 // accesses continuing to DRAM per instruction
	llcHitRate   float64
}

// phasePerf evaluates the CPI model of DESIGN.md §5:
//
//	CPI = base
//	    + api·p_priv·c_priv
//	    + api·(1-p_priv)·(1-MLP)·(h·c_llc + (1-h)·c_dram)
//
// where h = (1-StreamFrac)·HMax(reuse)·residency^γ: streaming accesses
// never hit the LLC; resident-set accesses hit in proportion to how much
// of the working set survives contention, sharpened by the LRU
// over-capacity cliff (γ = Config.ResidencyExponent).
func (m *Machine) phasePerf(ph *proc.Phase, ctn contentionState) perfParams {
	api := ph.AccessesPerInstr
	llcPerInstr := api * (1 - ph.PrivateHitFrac)
	// A partitioned phase keeps at most partition/WSS of its set
	// resident, however empty the shared pool is.
	resid := math.Pow(ctn.Residency, m.cfg.ResidencyExponent)
	if ph.CachePartition > 0 && ph.WSS > 0 {
		if own := float64(ph.OccupancyBytes()) / float64(ph.WSS); own < resid {
			resid = own
		}
	}
	h := (1 - ph.StreamFrac) * m.cfg.HMax[ph.Reuse] * resid
	exposed := 1 - m.cfg.MLPOverlap
	cpi := m.cfg.BaseCPI +
		api*ph.PrivateHitFrac*m.cfg.PrivateHitCycles +
		llcPerInstr*exposed*(h*m.cfg.LLCHitCycles+(1-h)*m.cfg.DRAMCycles)
	return perfParams{
		cpi:          cpi,
		llcPerInstr:  llcPerInstr,
		dramPerInstr: llcPerInstr * (1 - h),
		llcHitRate:   h,
	}
}
