package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-long-name", "22222")
	out := tb.String()
	if !strings.Contains(out, "Title") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns aligned: every data line has the value column at the same
	// offset.
	if idx1, idx2 := strings.Index(lines[3], "1"), strings.Index(lines[4], "22222"); idx1 != idx2 {
		t.Fatalf("columns misaligned:\n%s", out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
}

func TestTablePadsShortRows(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("x")
	out := tb.String()
	if !strings.Contains(out, "x") {
		t.Fatal("row lost")
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRowf("x", 3.14159265, 42)
	out := tb.String()
	if !strings.Contains(out, "3.142") || !strings.Contains(out, "42") {
		t.Fatalf("formatted row wrong:\n%s", out)
	}
}

func TestMarkdown(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.AddRow("1", "2")
	md := tb.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| 1 | 2 |") {
		t.Fatalf("markdown wrong:\n%s", md)
	}
	if !strings.Contains(md, "**T**") {
		t.Fatal("missing title")
	}
}

func TestBars(t *testing.T) {
	out := Bars("chart", []string{"a", "bb"}, []float64{1, 2}, 10)
	if !strings.Contains(out, "chart") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The max bar spans the full width, the half bar half of it.
	if strings.Count(lines[2], "#") != 10 {
		t.Fatalf("max bar width wrong: %q", lines[2])
	}
	if strings.Count(lines[1], "#") != 5 {
		t.Fatalf("half bar width wrong: %q", lines[1])
	}
}

func TestBarsZeroAndDefaults(t *testing.T) {
	out := Bars("", []string{"z"}, []float64{0}, 0)
	if strings.Count(out, "#") != 0 {
		t.Fatal("zero value drew a bar")
	}
}
