// Package report renders experiment results as aligned plain-text tables
// and simple horizontal bar charts — the textual equivalent of the
// paper's figures, suitable for terminals and EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each value is rendered with
// %v for strings and ints, %.4g for floats.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.4g", v))
		case float32:
			row = append(row, fmt.Sprintf("%.4g", v))
		default:
			row = append(row, fmt.Sprintf("%v", c))
		}
	}
	t.AddRow(row...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// Bars renders a labeled horizontal bar chart of non-negative values,
// scaled so the largest bar spans `width` characters.
func Bars(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if i < len(labels) && len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		n := 0
		if maxV > 0 && v > 0 {
			n = int(v / maxV * float64(width))
		}
		fmt.Fprintf(&b, "%-*s %8.3g |%s\n", maxL, label, v, strings.Repeat("#", n))
	}
	return b.String()
}
