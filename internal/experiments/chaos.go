package experiments

import (
	"fmt"

	"rdasched/internal/core"
	"rdasched/internal/faults"
	"rdasched/internal/perf"
	"rdasched/internal/proc"
	"rdasched/internal/report"
	"rdasched/internal/sim"
	"rdasched/internal/telemetry"
	"rdasched/internal/workloads"
)

// E4 — chaos: graceful degradation under misbehaving workloads. The
// paper's evaluation assumes every application is cooperative; this
// harness measures what the admission layer does when they are not. A
// uniform fault plan (internal/faults) perturbs the BLAS-3 workload at a
// swept rate — demands misdeclared or unsatisfiable, pp_ends leaked,
// processes crashing mid-period, arrivals bursting in waves — and each
// policy runs with the lease watchdog and bounded waiting enabled. The
// table reports how throughput and utilization degrade with the fault
// rate and how much work the robustness layer did: leases reclaimed,
// fallback (deadline) admissions, rejected demands, and the longest any
// period waited.

// ChaosRates is the swept per-candidate fault rate.
var ChaosRates = []float64{0, 0.05, 0.15, 0.3}

// ChaosRow is one (configuration, fault rate) measurement. Governed
// marks the governor row; its Mean carries the governor transition
// counts alongside the robustness counters.
type ChaosRow struct {
	Policy   string
	Rate     float64
	Governed bool
	Mean     perf.Metrics
	StdDev   perf.Metrics
}

// ChaosResult is the E4 dataset.
type ChaosResult struct {
	Workload string
	Rows     []ChaosRow
	// Telemetry merges every cell's metrics registry in cell order: the
	// robustness counters the table derives from core.Stats
	// (rda_leases_reclaimed_total, rda_fallback_admissions_total,
	// rda_demands_rejected_total, …) are also exported here, per run,
	// for the Prometheus/JSON encoders.
	Telemetry *telemetry.Registry
}

// chaosTimeouts derives the lease and admission deadline from the
// workload: the longest declared phase at the nominal clock rate, with
// headroom for memory stalls and time-sharing, so legitimate periods
// normally finish within their lease while leaks are still reclaimed
// within a fraction of the run.
func chaosTimeouts(w proc.Workload) (lease, deadline sim.Duration) {
	var maxInstr float64
	for _, s := range w.Procs {
		for _, ph := range s.Program {
			if ph.Declared && ph.Instr > maxInstr {
				maxInstr = ph.Instr
			}
		}
	}
	// Seconds at 1 IPC on the Table 1 clock, then headroom for memory
	// stalls (CPI well above 1 when the LLC is contended) and for
	// time-sharing 96 processes over 12 cores. The multipliers are tuned
	// so a clean (rate-0) run shows no reclaims and no fallbacks: every
	// reclaim or fallback in the table is then attributable to a fault.
	ideal := maxInstr / 1.9e9
	return sim.FromSeconds(ideal * 96), sim.FromSeconds(ideal * 64)
}

// chaosConfig is one compared admission configuration in the E4 table.
type chaosConfig struct {
	Name     string
	Policy   core.Policy
	Governed bool
}

// chaosConfigs returns every static policy, then Strict under the
// adaptive governor (sized like E5's), so the degradation table shows
// the governor's transition counts next to the static policies'
// failure modes.
func chaosConfigs() []chaosConfig {
	var out []chaosConfig
	for _, p := range Policies() {
		out = append(out, chaosConfig{p.Name, p.Policy, false})
	}
	return append(out, chaosConfig{"governor", core.StrictPolicy{}, true})
}

// RunChaos measures the BLAS-3 workload under every configuration at
// every fault rate. Rate 0 is the clean baseline each configuration's
// slowdown is computed against. All (config, rate, repetition)
// replications run concurrently on opt.Jobs workers; the fault pattern
// of each replication derives from the experiment seed and its job
// index, so the table is bit-identical for every worker count.
func RunChaos(opt Options) (*ChaosResult, error) {
	opt = opt.normalized()
	// The chaos harness always runs instrumented: its whole point is the
	// robustness layer's activity, so the counters flow through the
	// telemetry registry as well as the core.Stats floats in the table.
	opt.Telemetry = true
	w := scaleWorkload(workloads.BLAS3(), opt.Scale)
	lease, deadline := chaosTimeouts(w)
	gcfg := overloadGovernor(deadline)
	cfgs := chaosConfigs()
	var cells []cell
	for _, c := range cfgs {
		for _, rate := range ChaosRates {
			rc := perf.RunConfig{
				Machine:       opt.Machine,
				Policy:        c.Policy,
				Repetitions:   opt.Repetitions,
				JitterFrac:    opt.JitterFrac,
				Lease:         lease,
				AdmitDeadline: deadline,
			}
			if c.Governed {
				g := gcfg
				rc.Governor = &g
			}
			if rate > 0 {
				plan := faults.Uniform(rate, opt.Machine.LLCCapacity)
				rc.Faults = &plan
			}
			cells = append(cells, cell{
				label: fmt.Sprintf("chaos %s rate %.2f", c.Name, rate),
				w:     w,
				rc:    rc,
			})
		}
	}
	ms, err := measure(cells, opt)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	res := &ChaosResult{Workload: w.Name, Telemetry: telemetry.NewRegistry()}
	i := 0
	for _, c := range cfgs {
		for _, rate := range ChaosRates {
			res.Rows = append(res.Rows, ChaosRow{Policy: c.Name, Rate: rate,
				Governed: c.Governed, Mean: ms[i].Mean, StdDev: ms[i].StdDev})
			res.Telemetry.Merge(ms[i].Mean.Telemetry)
			i++
		}
	}
	return res, nil
}

// Table renders the E4 degradation table.
func (r *ChaosResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("E4: graceful degradation under injected faults (%s)", r.Workload),
		"policy", "fault rate", "elapsed s", "slowdown", "GFLOPS", "busy cores",
		"reclaimed", "fallbacks", "rejected", "max wait s", "gov events")
	baseline := map[string]float64{}
	for _, row := range r.Rows {
		if row.Rate == 0 {
			baseline[row.Policy] = row.Mean.ElapsedSec
		}
	}
	for _, row := range r.Rows {
		slowdown := "-"
		if b := baseline[row.Policy]; b > 0 {
			slowdown = fmt.Sprintf("%.2fx", row.Mean.ElapsedSec/b)
		}
		gov := "-"
		if row.Governed {
			gov = fmt.Sprintf("%.1f", row.Mean.GovernorDegradations+
				row.Mean.GovernorQuarantines+row.Mean.GovernorReservations)
		}
		t.AddRow(row.Policy,
			fmt.Sprintf("%.0f%%", row.Rate*100),
			fmt.Sprintf("%.3f", row.Mean.ElapsedSec),
			slowdown,
			fmt.Sprintf("%.2f", row.Mean.GFLOPS),
			fmt.Sprintf("%.2f", row.Mean.AvgBusyCores),
			fmt.Sprintf("%.1f", row.Mean.ReclaimedLeases),
			fmt.Sprintf("%.1f", row.Mean.FallbackAdmissions),
			fmt.Sprintf("%.1f", row.Mean.RejectedDemands),
			fmt.Sprintf("%.4f", row.Mean.MaxWaitSec),
			gov)
	}
	return t
}
