package experiments

import (
	"testing"

	"rdasched/internal/core"
)

// TestE5Overload runs the E5 harness once at the golden settings (fixed
// seed, no jitter) and checks everything the run must guarantee: the
// pinned table rendering, the acceptance inequalities the governor
// exists to satisfy, hands-off behavior on clean runs, and the governor
// counters reaching the merged telemetry registry.
func TestE5Overload(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := Defaults()
	opt.Repetitions = 1
	opt.JitterFrac = 0
	opt.Scale = 0.1
	res, err := RunOverload(opt)
	if err != nil {
		t.Fatal(err)
	}
	row := func(config string, rate float64, bursts int) OverloadRow {
		for _, r := range res.Rows {
			if r.Config == config && r.Rate == rate && r.Bursts == bursts {
				return r
			}
		}
		t.Fatalf("no row for %s rate %v bursts %d", config, rate, bursts)
		return OverloadRow{}
	}

	t.Run("golden", func(t *testing.T) {
		checkGolden(t, "e5", res.Table())
	})

	// The headline claim: at the hardest cell the governed Strict beats
	// static Strict on makespan (no parking until the fallback deadline)
	// AND static Compromise on the DRAM-access thrash proxy (no blanket
	// over-admission) — the two failure modes E4 demonstrates.
	t.Run("acceptance", func(t *testing.T) {
		rate := OverloadRates[len(OverloadRates)-1]
		bursts := OverloadBursts[len(OverloadBursts)-1]
		strict := row("strict", rate, bursts)
		comp := row("compromise", rate, bursts)
		gov := row("governor", rate, bursts)
		if gov.Mean.ElapsedSec > strict.Mean.ElapsedSec {
			t.Errorf("governor elapsed %.3fs > strict %.3fs at rate %v bursts %d",
				gov.Mean.ElapsedSec, strict.Mean.ElapsedSec, rate, bursts)
		}
		if gov.Mean.DRAMAccesses > comp.Mean.DRAMAccesses {
			t.Errorf("governor DRAM accesses %.3g > compromise %.3g at rate %v bursts %d",
				gov.Mean.DRAMAccesses, comp.Mean.DRAMAccesses, rate, bursts)
		}
		if gov.Interventions() == 0 {
			t.Error("governor made no interventions at the hardest cell")
		}
	})

	// On clean runs the governor must keep its hands off: no ladder
	// steps, no quarantines, and metrics identical to ungoverned Strict.
	t.Run("clean-hands-off", func(t *testing.T) {
		for _, bursts := range OverloadBursts {
			strict := row("strict", 0, bursts)
			gov := row("governor", 0, bursts)
			if gov.Interventions() != 0 {
				t.Errorf("governor intervened %.0f times on a clean run (bursts %d)",
					gov.Interventions(), bursts)
			}
			if gov.Mean.ElapsedSec != strict.Mean.ElapsedSec || gov.Mean.DRAMAccesses != strict.Mean.DRAMAccesses {
				t.Errorf("clean governed run diverged from strict (bursts %d): %.6fs/%.6g vs %.6fs/%.6g",
					bursts, gov.Mean.ElapsedSec, gov.Mean.DRAMAccesses,
					strict.Mean.ElapsedSec, strict.Mean.DRAMAccesses)
			}
		}
	})

	t.Run("telemetry", func(t *testing.T) {
		for _, name := range []string{
			core.MetricGovernorDegradations,
			core.MetricGovernorQuarantines,
			core.MetricGovernorTightened,
		} {
			if v := res.Telemetry.Counter(name).Value(); v == 0 {
				t.Errorf("merged registry: %s = 0, want > 0", name)
			}
		}
	})
}
