package experiments

import (
	"fmt"
	"sort"
	"strings"

	"rdasched/internal/machine"
	"rdasched/internal/pp"
	"rdasched/internal/report"
	"rdasched/internal/workloads"
)

// Table1 renders the machine configuration (the paper's Table 1) from
// the model's defaults.
func Table1() *report.Table {
	cfg := machine.DefaultConfig()
	t := report.NewTable("Table 1: machine configuration (modeled)", "component", "value")
	t.AddRow("CPU", fmt.Sprintf("Intel(R) Xeon(R) E5-2420 class, %.2f GHz, %d cores",
		cfg.FreqHz/1e9, cfg.Cores))
	t.AddRow("L1-Data", "32 KBytes (private, modeled in trace mode)")
	t.AddRow("L1-Instruction", "32 KBytes")
	t.AddRow("L2-Private", "256 KBytes")
	t.AddRow("L3-Shared", fmt.Sprintf("%d KBytes", int64(cfg.LLCCapacity)/1024))
	t.AddRow("Main Memory", fmt.Sprintf("16 GiB, %.0f GB/s sustained", cfg.MemBandwidth/1e9))
	t.AddRow("Operating System", "simulated CFS-like fair scheduler (Linux 4.6.0 stand-in)")
	return t
}

// Table2Report renders the workload inventory (the paper's Table 2) from
// the live workload definitions, so the table can never drift from the
// code.
func Table2Report() *report.Table {
	t := report.NewTable("Table 2: workloads",
		"workload", "#proc", "#threads/proc", "work-set sizes (MB)", "data reuses")
	for _, w := range workloads.Table2() {
		spec := w.Procs[0]
		// Collect the distinct declared working sets and reuse levels, in
		// program order, across the workload's kernels.
		var sizes []string
		var reuses []string
		seen := map[string]bool{}
		for _, s := range w.Procs {
			for _, ph := range s.Program {
				if !ph.Declared {
					continue
				}
				key := fmt.Sprintf("%.2g", ph.WSS.MiBf())
				if seen[key] {
					continue
				}
				seen[key] = true
				sizes = append(sizes, key)
				reuses = append(reuses, ph.Reuse.String())
			}
		}
		sort.Strings(sizes)
		t.AddRow(w.Name,
			fmt.Sprintf("%d", len(w.Procs)),
			fmt.Sprintf("%d", spec.Threads),
			strings.Join(sizes, ", "),
			strings.Join(dedup(reuses), ", "))
	}
	return t
}

func dedup(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// LLCCapacityMB is a convenience for reports.
func LLCCapacityMB() float64 {
	return pp.Bytes(machine.DefaultConfig().LLCCapacity).MiBf()
}
