package experiments

import (
	"strings"
	"testing"

	"rdasched/internal/proc"
	"rdasched/internal/workloads"
)

// fastOpts shrinks workloads so the whole evaluation suite runs in
// test-friendly time while preserving contention shapes.
func fastOpts() Options {
	o := Defaults()
	o.Repetitions = 1
	o.JitterFrac = 0
	o.Scale = 0.25
	return o
}

func TestRunPolicyComparisonShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ws := []proc.Workload{workloads.BLAS3(), workloads.WaterNsq()}
	rows, err := RunPolicyComparison(ws, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 2 workloads × 3 policies", len(rows))
	}
	get := func(w, p string) PolicyRow {
		for _, r := range rows {
			if r.Workload == w && r.Policy == p {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", w, p)
		return PolicyRow{}
	}
	// The headline shapes: for high-reuse workloads RDA strict beats the
	// default on system energy and DRAM energy.
	for _, w := range []string{"BLAS-3", "water_nsq"} {
		def, st := get(w, "default"), get(w, "strict")
		if st.Mean.SystemJ >= def.Mean.SystemJ {
			t.Errorf("%s: strict system energy %.1f not below default %.1f",
				w, st.Mean.SystemJ, def.Mean.SystemJ)
		}
		if st.Mean.DRAMJ >= def.Mean.DRAMJ {
			t.Errorf("%s: strict DRAM energy %.1f not below default %.1f",
				w, st.Mean.DRAMJ, def.Mean.DRAMJ)
		}
		if st.Mean.GFLOPSPerWatt <= def.Mean.GFLOPSPerWatt {
			t.Errorf("%s: strict efficiency %.4f not above default %.4f",
				w, st.Mean.GFLOPSPerWatt, def.Mean.GFLOPSPerWatt)
		}
	}
}

func TestFigureTables(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := RunPolicyComparison([]proc.Workload{workloads.WaterNsq()}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []int{7, 8, 9, 10} {
		tbl, err := FigureTable(fig, rows)
		if err != nil {
			t.Fatalf("figure %d: %v", fig, err)
		}
		if tbl.Rows() != 1 {
			t.Fatalf("figure %d rows = %d", fig, tbl.Rows())
		}
		if !strings.Contains(tbl.String(), "water_nsq") {
			t.Fatalf("figure %d missing workload row", fig)
		}
	}
	if _, err := FigureTable(11, rows); err == nil {
		t.Fatal("figure 11 accepted as policy comparison")
	}
}

func TestRunGranularityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := fastOpts()
	opt.Scale = 1 // granularity uses a single process; full size is fine
	res, err := RunGranularity(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Overhead must be ~0 for outer and grow monotonically with period
	// count — the Figure 11 shape.
	byLabel := map[string]GranularityPoint{}
	for _, p := range res.Points {
		byLabel[p.Label] = p
	}
	if o := byLabel["outer"].Overhead; o > 0.01 {
		t.Errorf("outer overhead = %.3f, want ~0", o)
	}
	if m := byLabel["middle"].Overhead; m < 0.10 || m > 0.30 {
		t.Errorf("middle overhead = %.3f, want ~0.19 (paper)", m)
	}
	if i := byLabel["inner"].Overhead; i < 0.45 || i > 0.75 {
		t.Errorf("inner overhead = %.3f, want ~0.59 (paper)", i)
	}
	if byLabel["middle"].Overhead <= byLabel["outer"].Overhead ||
		byLabel["inner"].Overhead <= byLabel["middle"].Overhead {
		t.Error("overhead not monotone in period count")
	}
	if res.Table().Rows() != 4 {
		t.Error("table rows wrong")
	}
}

func TestRunWSSPredictionAccuracyBand(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunWSSPrediction(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("series = %d, want 4 (Wnsq PP1/PP2, Ocp PP1/PP2)", len(res.Series))
	}
	for _, s := range res.Series {
		// The paper reports 80–95%; allow a modest band around it.
		if s.Accuracy < 0.75 || s.Accuracy > 0.97 {
			t.Errorf("%s PP%d accuracy %.2f outside the expected band", s.App, s.Period, s.Accuracy)
		}
		// Measured growth must be monotone.
		for i := 1; i < len(s.Measured); i++ {
			if s.Measured[i] <= s.Measured[i-1] {
				t.Errorf("%s PP%d not monotone at input %d", s.App, s.Period, i)
			}
		}
		if s.Loop == "" {
			t.Errorf("%s PP%d not attributed to a loop", s.App, s.Period)
		}
	}
	if res.Table().Rows() != 4 {
		t.Error("table rows wrong")
	}
}

func TestRunInterferenceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunInterference(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 12 {
		t.Fatalf("points = %d, want 4 inputs × 3 levels", len(res.Points))
	}
	get := func(mol, inst int) float64 {
		for _, p := range res.Points {
			if p.Molecules == mol && p.Instances == inst {
				return p.GFLOPS
			}
		}
		t.Fatalf("missing point %d×%d", mol, inst)
		return 0
	}
	// Small inputs scale almost linearly 1→6→12.
	for _, mol := range []int{512, 3375} {
		if r := get(mol, 6) / get(mol, 1); r < 4.5 {
			t.Errorf("%d molecules: 6-instance scaling %.2fx too low", mol, r)
		}
		if r := get(mol, 12) / get(mol, 6); r < 1.7 {
			t.Errorf("%d molecules: 12/6 scaling %.2fx, want near-linear", mol, r)
		}
	}
	// 8000: scales to 6, collapses at 12 (the paper's 33 → 20 drop).
	if r := get(8000, 6) / get(8000, 1); r < 4.5 {
		t.Errorf("8000: 6-instance scaling %.2fx too low", r)
	}
	r12 := get(8000, 12) / get(8000, 6)
	if r12 > 1.35 {
		t.Errorf("8000: 12/6 scaling %.2fx shows no interference collapse", r12)
	}
	// 32768: memory bound — 12 instances buy far less than the ideal 2x.
	// (The paper measures full flatness; our latency-exposed model still
	// grants a modest gain. EXPERIMENTS.md discusses the gap.)
	if r := get(32768, 12) / get(32768, 6); r > 1.55 {
		t.Errorf("32768: 12/6 scaling %.2fx, want ≲1.55 (memory bound)", r)
	}
	// Interference also grows with data size at fixed concurrency.
	if get(32768, 6) >= get(8000, 6) {
		t.Error("32768 at 6 instances not slower than 8000 at 6")
	}
	if res.Table().Rows() != 4 {
		t.Error("table rows wrong")
	}
}

func TestTable1And2Render(t *testing.T) {
	t1 := Table1()
	if t1.Rows() < 6 || !strings.Contains(t1.String(), "15360") {
		t.Fatalf("table 1 wrong:\n%s", t1.String())
	}
	t2 := Table2Report()
	if t2.Rows() != 8 {
		t.Fatalf("table 2 rows = %d", t2.Rows())
	}
	for _, name := range workloads.Names() {
		if !strings.Contains(t2.String(), name) {
			t.Fatalf("table 2 missing %s", name)
		}
	}
	if LLCCapacityMB() != 15 {
		t.Fatalf("LLC capacity = %v MB", LLCCapacityMB())
	}
}

func TestScaleWorkload(t *testing.T) {
	w := workloads.BLAS1()
	s := scaleWorkload(w, 0.25)
	if len(s.Procs) != len(w.Procs) {
		t.Fatalf("scaling changed process count: %d vs %d (contention must be preserved)",
			len(s.Procs), len(w.Procs))
	}
	if s.Procs[0].Program[0].Instr >= w.Procs[0].Program[0].Instr {
		t.Fatal("instructions not scaled")
	}
	// Scale 1 returns the workload unchanged.
	if got := scaleWorkload(w, 1); len(got.Procs) != len(w.Procs) {
		t.Fatal("scale 1 changed the workload")
	}
}

func TestOptionsNormalization(t *testing.T) {
	var o Options
	n := o.normalized()
	if n.Machine.Cores == 0 || n.Repetitions != 1 || n.Scale != 1 {
		t.Fatalf("normalized = %+v", n)
	}
}
