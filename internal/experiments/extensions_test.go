package experiments

import (
	"testing"

	"rdasched/internal/perf"
)

func TestPartitioningExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunPartitioning(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	base, part := res.Rows[0].Mean, res.Rows[1].Mean
	// The §6 claim: fencing over-LLC streamers into a small partition
	// lets the mix run concurrently instead of serializing behind
	// safeguard-admitted 24 MB demands.
	if part.GFLOPS < 2*base.GFLOPS {
		t.Errorf("partitioning speedup %.2fx, want ≥2x (%.3f vs %.3f GFLOPS)",
			part.GFLOPS/base.GFLOPS, part.GFLOPS, base.GFLOPS)
	}
	if part.SystemJ >= base.SystemJ {
		t.Errorf("partitioning did not save energy: %.1f vs %.1f J", part.SystemJ, base.SystemJ)
	}
	if part.AvgBusyCores <= base.AvgBusyCores {
		t.Error("partitioning did not raise concurrency")
	}
	if res.Table().Rows() != 2 {
		t.Error("table wrong")
	}
}

func TestReserveExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunReserve(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	base, rsv := res.Rows[0].Mean, res.Rows[1].Mean
	// The reservation mechanically reduces admitted concurrency...
	if rsv.AvgBusyCores >= base.AvgBusyCores {
		t.Errorf("reserve did not reduce concurrency: %.1f vs %.1f busy",
			rsv.AvgBusyCores, base.AvgBusyCores)
	}
	// ...in exchange for at most a modest efficiency change either way —
	// the honest finding E2 records (reservation alone is not the fix;
	// partitioning the unmanaged load is).
	ratio := rsv.GFLOPSPerWatt / base.GFLOPSPerWatt
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("reserve efficiency ratio %.2f implausible", ratio)
	}
	if res.Table().Rows() != 2 {
		t.Error("table wrong")
	}
}

func TestCalibrationBracketsModel(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunCalibration(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 8 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Residency >= 1 {
			// Fitting sets: both patterns hit nearly always.
			if p.HitRate < 0.95 {
				t.Errorf("%d×%v %s: hit %.3f for fitting sets", p.Threads, p.WSS, p.Pattern, p.HitRate)
			}
			continue
		}
		switch p.Pattern {
		case "random":
			// The linear bracket: measured ≈ r, and above the γ=2 model.
			if p.HitRate < p.ModelHit*0.9 {
				t.Errorf("%d×%v random: hit %.3f below model %.3f — γ too small", p.Threads, p.WSS, p.HitRate, p.ModelHit)
			}
			if p.HitRate > p.Residency*1.2 {
				t.Errorf("%d×%v random: hit %.3f above linear r %.3f", p.Threads, p.WSS, p.HitRate, p.Residency)
			}
		case "cyclic":
			// The collapse bracket: measured far below the model.
			if p.HitRate > p.ModelHit {
				t.Errorf("%d×%v cyclic: hit %.3f above model %.3f — γ too large", p.Threads, p.WSS, p.HitRate, p.ModelHit)
			}
		}
	}
}

func TestFactorSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunFactorSweep(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2*len(FactorSweepValues) {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Monotone trade: raising the factor must not decrease concurrency's
	// share of the machine (GFLOPS non-decreasing from x=1 to the best
	// throughput factor would be too strong; instead assert the two
	// endpoints behave as strict-like and default-like).
	get := func(w string, x float64) perf.Metrics {
		for _, p := range res.Points {
			if p.Workload == w && p.Factor == x {
				return p.Mean
			}
		}
		t.Fatalf("missing point %s/%v", w, x)
		return perf.Metrics{}
	}
	for _, w := range []string{"BLAS-3", "water_nsq"} {
		tight, loose := get(w, 1.0), get(w, 4.0)
		if loose.DRAMAccesses <= tight.DRAMAccesses {
			t.Errorf("%s: higher factor did not increase DRAM traffic", w)
		}
		if f, _ := res.Best(w); f < 1 || f > 4 {
			t.Errorf("%s: best factor %v outside sweep", w, f)
		}
	}
	if res.Table().Rows() != 10 {
		t.Error("table wrong")
	}
}

func TestBandwidthExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunBandwidth(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	llcOnly, withBW := res.Rows[0].Mean, res.Rows[1].Mean
	// Declaring bandwidth demands trades concurrency the roofline cannot
	// serve for core power: fewer busy cores, less system energy, higher
	// efficiency, at a bounded throughput cost.
	if withBW.AvgBusyCores >= llcOnly.AvgBusyCores {
		t.Errorf("BW admission did not reduce concurrency: %.1f vs %.1f",
			withBW.AvgBusyCores, llcOnly.AvgBusyCores)
	}
	if withBW.SystemJ >= llcOnly.SystemJ {
		t.Errorf("BW admission did not save energy: %.1f vs %.1f J",
			withBW.SystemJ, llcOnly.SystemJ)
	}
	if withBW.GFLOPSPerWatt <= llcOnly.GFLOPSPerWatt {
		t.Errorf("BW admission did not raise efficiency: %.4f vs %.4f",
			withBW.GFLOPSPerWatt, llcOnly.GFLOPSPerWatt)
	}
	if r := withBW.GFLOPS / llcOnly.GFLOPS; r < 0.7 || r > 1.05 {
		t.Errorf("BW admission throughput ratio %.2f outside the expected trade band", r)
	}
}
