package experiments

import (
	"fmt"

	"rdasched/internal/core"
	"rdasched/internal/faults"
	"rdasched/internal/perf"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
	"rdasched/internal/report"
	"rdasched/internal/sim"
	"rdasched/internal/telemetry"
)

// E7 — domain failure injection and self-healing recovery. E6 made the
// admission budget shardable; this harness makes a shard fail mid-run
// and compares what the recovery layer does about it. A seeded fault
// plan (faults.DomainPlan) corrupts one shard's ledger, then crashes
// another shard outright, healing it later; the sweep crosses the
// crash time (as a fraction of the estimated makespan) and the domain
// count against the three recovery modes:
//
//   - evacuate: the crashed shard's periods migrate wholesale to the
//     best-fit survivor — actives with their charges and remaining
//     lease, waiters with their wait clocks and re-armed deadlines —
//     and the survivors absorb the dead shard's capacity share until
//     reintegration. Stranded waiters retry on exponential backoff and
//     fall back to the governor's admission ladder.
//   - stall: the shard is quarantined and nothing moves. Its backlog
//     sits until the shard heals or the fallback deadline fires — the
//     "do nothing" baseline.
//   - drop: every period registered on the dead shard is degraded to
//     untracked admission. Nothing waits, but the abandoned demand
//     tracking lets working sets pile onto the physical LLC — the
//     "give up on admission control" baseline.
//
// The claim the golden pins: governed evacuation beats both baselines
// on elapsed time AND DRAM energy — stall loses time waiting out the
// quarantine, drop loses energy (and time) to the contention it stopped
// controlling — and the invariant auditor repairs every injected
// corruption in every cell.

// HealDomainCounts is the swept number of LLC admission domains.
var HealDomainCounts = []int{2, 4}

// HealFailFracs sweeps when the crash lands, as a fraction of the
// workload's estimated makespan.
var HealFailFracs = []float64{0.25, 0.5}

// healModes are the compared recovery strategies, evacuate first (the
// baselines' rows are compared against it).
var healModes = []core.RecoveryMode{core.RecoverEvacuate, core.RecoverStall, core.RecoverDrop}

// healSpec is one heal-mix process: a streaming init, one declared
// pointer-chasing period, a tiny fini. The work phase is deliberately
// LLC-bound — one access per instruction, half of them reaching the
// shared cache — so the resident-vs-thrashing CPI gap is wide (~8.75 vs
// ~37 on the Table 1 model). That gap is what the E7 comparison
// measures: a recovery mode that keeps working sets resident outruns
// one that floods the cache, no matter how many extra co-runners the
// flood buys.
func healSpec(name string, wss pp.Bytes, instr float64) proc.Spec {
	setup := proc.Phase{
		Name: name + "-init", Instr: instr * 0.01, WSS: wss, Reuse: pp.ReuseLow,
		AccessesPerInstr: 0.4, PrivateHitFrac: 0.9, StreamFrac: 1.0,
	}
	work := proc.Phase{
		Name: name, Instr: instr, WSS: wss, Reuse: pp.ReuseHigh,
		AccessesPerInstr: 1.0, PrivateHitFrac: 0.5, StreamFrac: 0,
		FlopsPerInstr: 0.1, Declared: true,
	}
	fini := proc.Phase{
		Name: name + "-fini", Instr: instr * 0.005, WSS: pp.KB(64), Reuse: pp.ReuseLow,
		AccessesPerInstr: 0.2, PrivateHitFrac: 0.95, StreamFrac: 1.0,
	}
	return proc.Spec{Name: name, Threads: 1, Program: proc.Program{setup, work, fini}}
}

// healWSS sizes each working set so exactly four tracked periods fill
// the physical LLC (4 × 3840 KiB = 15360 KiB): at 2 domains each shard
// admits two, at 4 domains each shard admits one, and in both splits
// the admitted set stays fully resident. Any recovery mode that lets a
// fifth (or eighth) working set pile on pays the residency^2 cliff.
var healWSS = pp.KB(3840)

// HealWorkload builds the E7 mix: twelve single-period processes (one
// per Table 1 core) each declaring a quarter of the LLC. Admission, not
// core count, bounds concurrency at four, so every shard carries a
// backlog for a mid-run crash to strand, move, or drop.
func HealWorkload() proc.Workload {
	w := proc.Workload{Name: "heal-mix"}
	for i := 0; i < 12; i++ {
		w.Procs = append(w.Procs,
			healSpec(fmt.Sprintf("job-%d", i), healWSS, 4e8))
	}
	return w
}

// healCPI is the resident-set CPI of the heal-mix work phase under the
// Table 1 model: BaseCPI 1 + 0.25 private-hit cycles + 7.5 exposed LLC
// cycles. It only anchors the injected fault times to real fractions of
// the run; it need not be exact, just the right order.
const healCPI = 8.75

// healMakespan estimates the workload's makespan on an n-domain split
// of the given LLC. Concurrency is admission-limited: each shard of
// capacity C/n co-admits floor((C/n)/WSS) periods, so the declared
// instructions retire on that many cores at healCPI.
func healMakespan(w proc.Workload, llc pp.Bytes, n int) sim.Duration {
	var instr float64
	var wss pp.Bytes
	for _, s := range w.Procs {
		for _, ph := range s.Program {
			if ph.Declared {
				instr += ph.Instr
				if ph.WSS > wss {
					wss = ph.WSS
				}
			}
		}
	}
	conc := 1
	if wss > 0 {
		if fit := int(llc / pp.Bytes(n) / wss); fit >= 1 {
			conc = fit * n
		}
	}
	return sim.FromSeconds(instr * healCPI / 1.9e9 / float64(conc))
}

// HealRow is one (mode, domains, fail fraction) measurement.
type HealRow struct {
	Mode     core.RecoveryMode
	Domains  int
	FailFrac float64
	Mean     perf.Metrics
	StdDev   perf.Metrics
}

// HealResult is the E7 dataset.
type HealResult struct {
	Workload string
	Rows     []HealRow
	// Telemetry merges every cell's registry in cell order; the
	// rda_recovery_* family appears here.
	Telemetry *telemetry.Registry
}

// RunHeal measures the heal-mix under every recovery mode at every
// (domains, fail time) sweep point. Every cell shares the same seeded
// fault plan shape — one ledger corruption at half the crash time, one
// crash healing after twice its onset — so the rows differ only in what
// the recovery layer did about the same disaster. Replications run
// concurrently on opt.Jobs workers; faults ride the virtual clock, so
// the table is bit-identical for every worker count.
func RunHeal(opt Options) (*HealResult, error) {
	opt = opt.normalized()
	// Always instrumented, like E4–E6: the recovery counters flow through
	// the telemetry registry as well as the table.
	opt.Telemetry = true
	w := scaleWorkload(HealWorkload(), opt.Scale)
	lease, deadline := chaosTimeouts(w)
	gcfg := overloadGovernor(deadline)
	var cells []cell
	for _, n := range HealDomainCounts {
		makespan := healMakespan(w, opt.Machine.LLCCapacity, n)
		for _, frac := range HealFailFracs {
			crashAt := sim.Duration(float64(makespan) * frac)
			plan := faults.Plan{DomainFaults: faults.DomainPlan(
				opt.Seed, n, crashAt, 2*crashAt, pp.MB(2))}
			for _, mode := range healModes {
				rcfg := core.DefaultRecoveryConfig()
				rcfg.Mode = mode
				// Retry on the workload's timescale: first re-probe after
				// ~1/64 of the estimated makespan, doubling four times.
				rcfg.RetryBase = makespan / 64
				rcfg.AuditInterval = makespan / 16
				g := gcfg
				cells = append(cells, cell{
					label: fmt.Sprintf("heal %s n %d fail %.2f", mode, n, frac),
					w:     w,
					rc: perf.RunConfig{
						Machine:       opt.Machine,
						Policy:        core.StrictPolicy{},
						Repetitions:   opt.Repetitions,
						JitterFrac:    opt.JitterFrac,
						Lease:         lease,
						AdmitDeadline: deadline,
						Governor:      &g,
						Domains:       n,
						StealAge:      domainStealAge(w),
						Recovery:      &rcfg,
						Faults:        &plan,
					},
				})
			}
		}
	}
	ms, err := measure(cells, opt)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	res := &HealResult{Workload: w.Name, Telemetry: telemetry.NewRegistry()}
	i := 0
	for _, n := range HealDomainCounts {
		for _, frac := range HealFailFracs {
			for _, mode := range healModes {
				res.Rows = append(res.Rows, HealRow{Mode: mode, Domains: n, FailFrac: frac,
					Mean: ms[i].Mean, StdDev: ms[i].StdDev})
				res.Telemetry.Merge(ms[i].Mean.Telemetry)
				i++
			}
		}
	}
	return res, nil
}

// Table renders the E7 recovery table. The "vs stall"/"vs drop" columns
// are the evacuate row's wins: baseline elapsed over evacuate elapsed,
// so >1.00x means evacuation beat that baseline.
func (r *HealResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("E7: shard failure recovery — evacuation vs stall/drop baselines (%s)", r.Workload),
		"mode", "domains", "fail at", "elapsed s", "vs evac", "DRAM J",
		"evacuations", "retries", "audit repairs", "healed", "dropped", "max wait s")
	evac := map[string]float64{}
	key := func(row HealRow) string { return fmt.Sprintf("%d/%.2f", row.Domains, row.FailFrac) }
	for _, row := range r.Rows {
		if row.Mode == core.RecoverEvacuate {
			evac[key(row)] = row.Mean.ElapsedSec
		}
	}
	for _, row := range r.Rows {
		ratio := "-"
		if e := evac[key(row)]; row.Mode != core.RecoverEvacuate && e > 0 {
			ratio = fmt.Sprintf("%.2fx", row.Mean.ElapsedSec/e)
		}
		t.AddRow(row.Mode.String(),
			fmt.Sprintf("%d", row.Domains),
			fmt.Sprintf("%.0f%%", row.FailFrac*100),
			fmt.Sprintf("%.3f", row.Mean.ElapsedSec),
			ratio,
			fmt.Sprintf("%.2f", row.Mean.DRAMJ),
			fmt.Sprintf("%.1f", row.Mean.Evacuations),
			fmt.Sprintf("%.1f", row.Mean.EvacRetries),
			fmt.Sprintf("%.1f", row.Mean.AuditRepairs),
			fmt.Sprintf("%.1f", row.Mean.DomainRecoveries),
			fmt.Sprintf("%.1f", row.Mean.DroppedPeriods),
			fmt.Sprintf("%.4f", row.Mean.MaxWaitSec))
	}
	return t
}
