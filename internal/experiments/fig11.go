package experiments

import (
	"fmt"

	"rdasched/internal/core"
	"rdasched/internal/perf"
	"rdasched/internal/report"
	"rdasched/internal/workloads"
)

// GranularityPoint is one bar of Figure 11: dgemm split into a number of
// progress periods (0 = uninstrumented baseline).
type GranularityPoint struct {
	Periods  int
	Label    string
	GFLOPS   float64
	Overhead float64 // fractional slowdown vs the uninstrumented run
}

// GranularityResult is the Figure 11 dataset.
type GranularityResult struct {
	Points []GranularityPoint
}

// Fig11Granularities are the paper's decompositions of the 512³ dgemm:
// no tracking, the whole kernel (outer loop), one period per middle-loop
// iteration (512), and one per innermost iteration (512² = 262144).
var Fig11Granularities = []struct {
	Periods int
	Label   string
}{
	{0, "none"},
	{1, "outer"},
	{512, "middle"},
	{512 * 512, "inner"},
}

// RunGranularity reproduces Figure 11: a single dgemm instance is run
// alone under the strict policy at each progress-tracking granularity,
// and the attained GFLOPS are compared against the untracked run. The
// four granularities run concurrently on opt.Jobs workers.
func RunGranularity(opt Options) (*GranularityResult, error) {
	opt = opt.normalized()
	var cells []cell
	for _, g := range Fig11Granularities {
		periods := g.Periods
		if opt.Scale < 1 && periods > 1 {
			periods = int(float64(periods) * opt.Scale)
			if periods < 1 {
				periods = 1
			}
		}
		w, err := workloads.DgemmGranularity(periods)
		if err != nil {
			return nil, err
		}
		// Single repetition without jitter: the figure compares the same
		// kernel against itself, so run-to-run noise would only blur the
		// overhead measurement.
		cells = append(cells, cell{
			label: fmt.Sprintf("granularity %d", g.Periods),
			w:     w,
			rc: perf.RunConfig{
				Machine: opt.Machine,
				Policy:  core.StrictPolicy{},
			},
		})
	}
	ms, err := measure(cells, opt)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	res := &GranularityResult{}
	var baseline float64
	for i, g := range Fig11Granularities {
		p := GranularityPoint{Periods: g.Periods, Label: g.Label, GFLOPS: ms[i].Mean.GFLOPS}
		if g.Periods == 0 {
			baseline = p.GFLOPS
		}
		if baseline > 0 {
			p.Overhead = 1 - p.GFLOPS/baseline
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// Table renders the Figure 11 dataset.
func (r *GranularityResult) Table() *report.Table {
	t := report.NewTable("Figure 11: dgemm progress-tracking overhead by granularity",
		"granularity", "periods", "GFLOPS", "overhead")
	for _, p := range r.Points {
		t.AddRow(p.Label, fmt.Sprintf("%d", p.Periods),
			fmt.Sprintf("%.3f", p.GFLOPS), fmt.Sprintf("%.1f%%", p.Overhead*100))
	}
	return t
}
