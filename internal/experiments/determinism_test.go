package experiments

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"rdasched/internal/proc"
	"rdasched/internal/workloads"
)

// The parallel runner's contract: experiment output is bit-identical
// for every worker count, including 1, because each replication derives
// its randomness from the experiment seed and its stable job index —
// never from execution order. This test runs every ported harness at
// Jobs = 1, 4, and GOMAXPROCS with the same seed and asserts the
// rendered report.Table output matches byte for byte.

// determinismOpts uses multiple repetitions WITH jitter so the per-job
// seed derivation is actually exercised: if any replication's random
// stream leaked across jobs, the jittered phase lengths would differ
// between worker counts and the tables would diverge.
func determinismOpts(jobs int) Options {
	o := Defaults()
	o.Repetitions = 2
	o.JitterFrac = 0.02
	o.Scale = 0.1
	o.Seed = 7
	o.Jobs = jobs
	return o
}

func jobCounts() []int {
	counts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// assertIdenticalAcrossJobs renders a harness's tables at each worker
// count and compares against the Jobs=1 reference.
func assertIdenticalAcrossJobs(t *testing.T, name string, render func(opt Options) ([]string, error)) {
	t.Helper()
	var ref []string
	for i, jobs := range jobCounts() {
		got, err := render(determinismOpts(jobs))
		if err != nil {
			t.Fatalf("%s at Jobs=%d: %v", name, jobs, err)
		}
		if i == 0 {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("%s: %d tables at Jobs=%d vs %d at Jobs=1", name, len(got), jobs, len(ref))
		}
		for k := range got {
			if got[k] != ref[k] {
				t.Errorf("%s table %d differs between Jobs=1 and Jobs=%d:\n--- Jobs=1 ---\n%s\n--- Jobs=%d ---\n%s",
					name, k, jobs, ref[k], jobs, got[k])
			}
		}
	}
}

func TestDeterminismPolicyComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ws := []proc.Workload{workloads.BLAS3(), workloads.WaterNsq()}
	assertIdenticalAcrossJobs(t, "policy comparison", func(opt Options) ([]string, error) {
		rows, err := RunPolicyComparison(ws, opt)
		if err != nil {
			return nil, err
		}
		var out []string
		for _, fig := range []int{7, 8, 9, 10} {
			tbl, err := FigureTable(fig, rows)
			if err != nil {
				return nil, err
			}
			out = append(out, tbl.String())
		}
		return out, nil
	})
}

func TestDeterminismFactorSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	assertIdenticalAcrossJobs(t, "factor sweep", func(opt Options) ([]string, error) {
		res, err := RunFactorSweep(opt)
		if err != nil {
			return nil, err
		}
		return []string{res.Table().String()}, nil
	})
}

func TestDeterminismGranularity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	assertIdenticalAcrossJobs(t, "granularity", func(opt Options) ([]string, error) {
		res, err := RunGranularity(opt)
		if err != nil {
			return nil, err
		}
		return []string{res.Table().String()}, nil
	})
}

func TestDeterminismWSSPrediction(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	assertIdenticalAcrossJobs(t, "WSS prediction", func(opt Options) ([]string, error) {
		res, err := RunWSSPrediction(opt)
		if err != nil {
			return nil, err
		}
		return []string{res.Table().String()}, nil
	})
}

func TestDeterminismInterference(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	assertIdenticalAcrossJobs(t, "interference", func(opt Options) ([]string, error) {
		res, err := RunInterference(opt)
		if err != nil {
			return nil, err
		}
		return []string{res.Table().String()}, nil
	})
}

func TestDeterminismCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	assertIdenticalAcrossJobs(t, "calibration", func(opt Options) ([]string, error) {
		res, err := RunCalibration(opt)
		if err != nil {
			return nil, err
		}
		return []string{res.Table().String()}, nil
	})
}

func TestDeterminismExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, ext := range []struct {
		name string
		run  func(Options) (*ExtensionResult, error)
	}{
		{"partitioning", RunPartitioning},
		{"reserve", RunReserve},
		{"bandwidth", RunBandwidth},
	} {
		assertIdenticalAcrossJobs(t, ext.name, func(opt Options) ([]string, error) {
			res, err := ext.run(opt)
			if err != nil {
				return nil, err
			}
			return []string{res.Table().String()}, nil
		})
	}
}

// TestDeterminismChaos covers the E4 harness: fault injection draws
// per-replication fault patterns from the seed and job index, so the
// chaos table, too, must be byte-identical for every worker count.
func TestDeterminismChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	assertIdenticalAcrossJobs(t, "chaos", func(opt Options) ([]string, error) {
		res, err := RunChaos(opt)
		if err != nil {
			return nil, err
		}
		return []string{res.Table().String()}, nil
	})
}

// TestDeterminismStdDevAcrossJobs checks the raw aggregates, not just
// the (rounded) rendered tables: mean and standard deviation of every
// metric must be exactly equal across worker counts.
func TestDeterminismStdDevAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ws := []proc.Workload{workloads.WaterNsq()}
	var ref []PolicyRow
	for i, jobs := range jobCounts() {
		rows, err := RunPolicyComparison(ws, determinismOpts(jobs))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = rows
			continue
		}
		for k := range rows {
			if !reflect.DeepEqual(rows[k], ref[k]) {
				t.Errorf("row %d differs at Jobs=%d:\n%+v\nvs Jobs=1:\n%+v", k, jobs, rows[k], ref[k])
			}
		}
	}
}

// TestDeterminismWaitProfile covers the telemetry-backed harness: both
// the rendered quantile table and the merged registry's Prometheus
// exposition must be byte-identical for every worker count.
func TestDeterminismWaitProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	assertIdenticalAcrossJobs(t, "waits", func(opt Options) ([]string, error) {
		res, err := RunWaitProfile(opt)
		if err != nil {
			return nil, err
		}
		var b bytes.Buffer
		if err := res.Merged.WritePrometheus(&b); err != nil {
			return nil, err
		}
		return []string{res.Table().String(), b.String()}, nil
	})
}

// TestDeterminismOverload covers the E5 harness: governor ladder steps,
// tightened leases, quarantine trips, and aged reservations all ride
// the virtual clock and the scheduler's own decision path, so the
// overload table and its merged registry must be byte-identical for
// every worker count.
func TestDeterminismOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	assertIdenticalAcrossJobs(t, "overload", func(opt Options) ([]string, error) {
		res, err := RunOverload(opt)
		if err != nil {
			return nil, err
		}
		var b bytes.Buffer
		if err := res.Telemetry.WritePrometheus(&b); err != nil {
			return nil, err
		}
		return []string{res.Table().String(), b.String()}, nil
	})
}
