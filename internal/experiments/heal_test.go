package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rdasched/internal/core"
)

// e7Opts is the pinned E7 configuration shared by the golden and the
// recovery assertions: one repetition, no jitter, a tenth scale — fully
// deterministic, like the E4 and E6 goldens.
func e7Opts() Options {
	opt := Defaults()
	opt.Repetitions = 1
	opt.JitterFrac = 0
	opt.Scale = 0.1
	return opt
}

// TestGoldenE7 pins the recovery table at a fixed seed: the fault plan,
// the evacuation, the backoff retries, and the auditor all ride the
// virtual clock, so the full sweep is reproducible byte for byte.
func TestGoldenE7(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunHeal(e7Opts())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "e7", res.Table())
}

// TestHealRecoveryWins asserts the experiment's headline claim
// directly, independent of table formatting: in every (domains, fail
// time) cell, governed evacuation beats the stall baseline AND the drop
// baseline on elapsed time AND DRAM energy, and the invariant auditor
// repaired the injected ledger corruption in every single run.
func TestHealRecoveryWins(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunHeal(e7Opts())
	if err != nil {
		t.Fatal(err)
	}
	type cellKey struct {
		n    int
		frac float64
	}
	byMode := map[cellKey]map[core.RecoveryMode]HealRow{}
	for _, row := range res.Rows {
		k := cellKey{row.Domains, row.FailFrac}
		if byMode[k] == nil {
			byMode[k] = map[core.RecoveryMode]HealRow{}
		}
		byMode[k][row.Mode] = row

		// Every run carries exactly the injected faults: one crash, one
		// ledger corruption, repaired by the auditor.
		if row.Mean.AuditRepairs < 1 {
			t.Errorf("%s n=%d fail=%.2f: audit repairs %.1f, want >= 1 (the injected corruption must be repaired)",
				row.Mode, row.Domains, row.FailFrac, row.Mean.AuditRepairs)
		}
		// The early-failure cells heal within the run (the plan recovers
		// the shard at 3x the crash time); the late-failure cells end
		// still quarantined — evacuation must win either way.
		if row.FailFrac <= 0.25 && row.Mean.DomainRecoveries < 1 {
			t.Errorf("%s n=%d fail=%.2f: domain recoveries %.1f, want >= 1 (heal lands mid-run)",
				row.Mode, row.Domains, row.FailFrac, row.Mean.DomainRecoveries)
		}
	}
	for k, rows := range byMode {
		evac, stall, drop := rows[core.RecoverEvacuate], rows[core.RecoverStall], rows[core.RecoverDrop]
		if evac.Mean.ElapsedSec >= stall.Mean.ElapsedSec {
			t.Errorf("n=%d fail=%.2f: evacuate elapsed %.4fs, want < stall %.4fs",
				k.n, k.frac, evac.Mean.ElapsedSec, stall.Mean.ElapsedSec)
		}
		if evac.Mean.ElapsedSec >= drop.Mean.ElapsedSec {
			t.Errorf("n=%d fail=%.2f: evacuate elapsed %.4fs, want < drop %.4fs",
				k.n, k.frac, evac.Mean.ElapsedSec, drop.Mean.ElapsedSec)
		}
		if evac.Mean.DRAMJ >= stall.Mean.DRAMJ {
			t.Errorf("n=%d fail=%.2f: evacuate DRAM %.2fJ, want < stall %.2fJ",
				k.n, k.frac, evac.Mean.DRAMJ, stall.Mean.DRAMJ)
		}
		if evac.Mean.DRAMJ >= drop.Mean.DRAMJ {
			t.Errorf("n=%d fail=%.2f: evacuate DRAM %.2fJ, want < drop %.2fJ",
				k.n, k.frac, evac.Mean.DRAMJ, drop.Mean.DRAMJ)
		}
		// Only evacuation moves periods; only drop degrades them.
		if evac.Mean.Evacuations < 1 {
			t.Errorf("n=%d fail=%.2f: evacuate moved %.1f periods, want >= 1", k.n, k.frac, evac.Mean.Evacuations)
		}
		if drop.Mean.DroppedPeriods < 1 {
			t.Errorf("n=%d fail=%.2f: drop degraded %.1f periods, want >= 1", k.n, k.frac, drop.Mean.DroppedPeriods)
		}
		if stall.Mean.Evacuations != 0 || stall.Mean.DroppedPeriods != 0 {
			t.Errorf("n=%d fail=%.2f: stall moved %.1f / dropped %.1f, want 0/0",
				k.n, k.frac, stall.Mean.Evacuations, stall.Mean.DroppedPeriods)
		}
	}
	// The merged registry carries the rda_recovery_* family (Prometheus
	// surface of the same counters the table prints).
	if v := res.Telemetry.Counter(core.MetricRecoveryFailures).Value(); v == 0 {
		t.Error("merged telemetry: no rda_recovery_domain_failures_total despite injected crashes")
	}
	if v := res.Telemetry.Counter(core.MetricRecoveryEvacuations).Value(); v == 0 {
		t.Error("merged telemetry: no rda_recovery_evacuations_total despite evacuation cells")
	}
}

// TestDeterminismHeal covers the E7 harness: the fault plan, evacuation
// targets, retry backoff, and auditor ticks all ride the virtual clock,
// so the recovery table and its merged registry must be byte-identical
// for every worker count.
func TestDeterminismHeal(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	assertIdenticalAcrossJobs(t, "heal", func(opt Options) ([]string, error) {
		res, err := RunHeal(opt)
		if err != nil {
			return nil, err
		}
		var b bytes.Buffer
		if err := res.Telemetry.WritePrometheus(&b); err != nil {
			return nil, err
		}
		return []string{res.Table().String(), b.String()}, nil
	})
}

// TestHealTraceFiles checks the E7 Perfetto surface: one valid JSON
// trace per cell, byte-identical across worker counts, with the
// domain-fail and recovery marks present in the evacuate cells.
func TestHealTraceFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	render := func(jobs int) map[string][]byte {
		dir := t.TempDir()
		opt := e7Opts()
		opt.Jobs = jobs
		opt.TraceDir = dir
		if _, err := RunHeal(opt); err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string][]byte{}
		for _, e := range entries {
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			out[e.Name()] = b
		}
		return out
	}
	serial := render(1)
	want := len(HealDomainCounts) * len(HealFailFracs) * len(healModes)
	if len(serial) != want {
		t.Fatalf("trace files = %d, want one per cell (%d)", len(serial), want)
	}
	sawFail, sawEvac := false, false
	for name, b := range serial {
		if !json.Valid(b) {
			t.Fatalf("%s is not valid JSON", name)
		}
		if bytes.Contains(b, []byte("domain-fail")) {
			sawFail = true
		}
		if strings.Contains(name, "evacuate") && bytes.Contains(b, []byte("evacuate")) {
			sawEvac = true
		}
	}
	if !sawFail {
		t.Error("no trace carries a domain-fail mark despite injected crashes")
	}
	if !sawEvac {
		t.Error("no evacuate-cell trace carries an evacuation event")
	}
	parallel := render(4)
	for name, b := range serial {
		if !bytes.Equal(b, parallel[name]) {
			t.Fatalf("trace %s differs between Jobs=1 and Jobs=4", name)
		}
	}
}
