package experiments

import (
	"testing"
)

// e9Opts is the pinned E9 configuration shared by the golden and the
// determinism assertions: one repetition, no jitter, a tenth scale —
// fully deterministic, like the E4–E7 goldens.
func e9Opts() Options {
	opt := Defaults()
	opt.Repetitions = 1
	opt.JitterFrac = 0
	opt.Scale = 0.1
	return opt
}

// TestGoldenE9 pins the revival table at a fixed seed: kill times,
// journal record counts, snapshot anchors, replay lengths, and both
// makespans are all functions of the virtual clock alone.
func TestGoldenE9(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunRevive(e9Opts())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "e9", res.Table())
}

// TestReviveDeterministicResume asserts the experiment's claim directly,
// independent of table formatting: in every cell the revived run's
// final metrics are byte-identical to the unkilled baseline's, the
// revival actually leaned on the checkpoint (records journaled, a
// mid-run snapshot cut, a suffix replayed), and a clean kill never
// reports a torn journal.
func TestReviveDeterministicResume(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunRevive(e9Opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(revivePolicies)*len(ReviveDomainCounts)*len(ReviveKillFracs) {
		t.Fatalf("have %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		tag := func() string {
			return row.Policy + "/" + string(rune('0'+row.Domains))
		}
		if !row.Identical {
			t.Errorf("%s kill %.2f: revived run diverged from the unkilled baseline", tag(), row.KillFrac)
		}
		if row.Records == 0 {
			t.Errorf("%s kill %.2f: killed run journaled nothing", tag(), row.KillFrac)
		}
		if row.Snapshots < 2 {
			t.Errorf("%s kill %.2f: %d snapshots, want the attach snapshot plus at least one periodic cut",
				tag(), row.KillFrac, row.Snapshots)
		}
		if row.SnapshotSeq == 0 {
			t.Errorf("%s kill %.2f: restore anchored on the attach snapshot; no periodic snapshot landed before the kill",
				tag(), row.KillFrac)
		}
		if row.Truncated {
			t.Errorf("%s kill %.2f: clean kill reported a torn journal", tag(), row.KillFrac)
		}
		if row.BaselineSec <= 0 || row.RevivedSec != row.BaselineSec {
			t.Errorf("%s kill %.2f: makespans %.6f vs %.6f", tag(), row.KillFrac, row.BaselineSec, row.RevivedSec)
		}
	}
	// The persist telemetry family must flow through the merged registry:
	// every cell replayed a journal suffix and restored a sequence.
	if v := res.Telemetry.Counter("rda_persist_replayed_total").Value(); v == 0 {
		t.Error("merged telemetry has no replayed records")
	}
	if v := res.Telemetry.Gauge("rda_persist_restore_seq").Value(); v == 0 {
		t.Error("merged telemetry has no restore sequence")
	}
}
