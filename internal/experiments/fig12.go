package experiments

import (
	"fmt"
	"sort"

	"rdasched/internal/memtrace"
	"rdasched/internal/pp"
	"rdasched/internal/profiler"
	"rdasched/internal/regress"
	"rdasched/internal/report"
	"rdasched/internal/runner"
	"rdasched/internal/workloads"
)

// WSSSeries is the measured working-set growth of one progress period
// across the four profiled input sizes, with the log-regression
// prediction of the held-out fourth point (§4.4, Figure 12).
type WSSSeries struct {
	App      string
	Period   int
	Loop     string
	Inputs   []int
	Measured []pp.Bytes
	Fit      regress.Log
	// Predicted is the fit's estimate of the fourth input's WSS; the fit
	// uses only the first three.
	Predicted pp.Bytes
	Accuracy  float64
}

// WSSPredictionResult is the Figure 12 dataset: four series (Wnsq PP1,
// Wnsq PP2, Ocp PP1, Ocp PP2).
type WSSPredictionResult struct {
	Series []WSSSeries
}

// RunWSSPrediction profiles water_nsquared and ocean_cp at their four
// input scales, extracts the top-two progress periods of each via the
// §2.4 profiler, fits y = A + B·ln(x) on the first three measured
// working-set sizes, and scores the prediction of the fourth. Each
// (application, input) profiling run is an independent job on opt.Jobs
// workers; the trace seed is a function of the experiment seed alone,
// so the profile a job yields does not depend on which worker runs it.
func RunWSSPrediction(opt Options) (*WSSPredictionResult, error) {
	opt = opt.normalized()
	cfg := workloads.Fig12ProfilerConfig()
	res := &WSSPredictionResult{}

	apps := []struct {
		name   string
		inputs []int
		trace  func(input int, seed uint64) (*memtrace.PhasedStream, *profiler.Binary)
	}{
		{"water_nsq", workloads.WaterNsqInputs, workloads.WaterNsqTrace},
		{"ocean_cp", workloads.OceanInputs, workloads.OceanTrace},
	}

	// One job per (app, input) pair, flattened app-major.
	type jobRef struct{ app, input int }
	type profile struct {
		wss   [2]pp.Bytes
		loops [2]string
	}
	var jobs []jobRef
	for a, app := range apps {
		for i := range app.inputs {
			jobs = append(jobs, jobRef{a, i})
		}
	}
	profiles, err := runner.Map(opt.Jobs, len(jobs), func(j int) (profile, error) {
		app := apps[jobs[j].app]
		input := app.inputs[jobs[j].input]
		stream, bin := app.trace(input, opt.Seed)
		periods, err := profiler.Profile(stream, cfg, bin)
		if err != nil {
			return profile{}, fmt.Errorf("profiling %s@%d: %w", app.name, input, err)
		}
		top := topPeriods(periods, 2)
		if len(top) != 2 {
			return profile{}, fmt.Errorf("%s@%d: found %d major periods, want 2",
				app.name, input, len(top))
		}
		// Order by appearance (PP1 before PP2).
		sort.Slice(top, func(i, j int) bool { return top[i].FirstWindow < top[j].FirstWindow })
		var p profile
		for k := 0; k < 2; k++ {
			p.wss[k] = top[k].WSS
			if bin != nil && top[k].LoopID >= 0 {
				p.loops[k] = bin.Name(top[k].LoopID)
			}
		}
		return p, nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}

	next := 0
	for _, app := range apps {
		// measured[periodIdx][inputIdx]
		measured := [2][]pp.Bytes{}
		loops := [2]string{}
		for range app.inputs {
			p := profiles[next]
			next++
			for k := 0; k < 2; k++ {
				measured[k] = append(measured[k], p.wss[k])
				if p.loops[k] != "" {
					loops[k] = p.loops[k]
				}
			}
		}
		for k := 0; k < 2; k++ {
			s, err := buildSeries(app.name, k+1, loops[k], app.inputs, measured[k])
			if err != nil {
				return nil, err
			}
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}

// topPeriods returns the n periods with the largest working sets.
func topPeriods(periods []profiler.Period, n int) []profiler.Period {
	sorted := append([]profiler.Period(nil), periods...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].WSS > sorted[j].WSS })
	if len(sorted) > n {
		sorted = sorted[:n]
	}
	return sorted
}

func buildSeries(app string, period int, loop string, inputs []int, measured []pp.Bytes) (WSSSeries, error) {
	if len(inputs) < 4 || len(measured) < 4 {
		return WSSSeries{}, fmt.Errorf("experiments: need 4 inputs for %s PP%d", app, period)
	}
	xs := make([]float64, 3)
	ys := make([]float64, 3)
	for i := 0; i < 3; i++ {
		xs[i] = float64(inputs[i])
		ys[i] = measured[i].MiBf()
	}
	fit, err := regress.FitLog(xs, ys)
	if err != nil {
		return WSSSeries{}, fmt.Errorf("experiments: fitting %s PP%d: %w", app, period, err)
	}
	predicted := pp.MB(fit.Predict(float64(inputs[3])))
	return WSSSeries{
		App: app, Period: period, Loop: loop,
		Inputs: inputs, Measured: measured,
		Fit: fit, Predicted: predicted,
		Accuracy: regress.Accuracy(float64(predicted), float64(measured[3])),
	}, nil
}

// Table renders the Figure 12 dataset.
func (r *WSSPredictionResult) Table() *report.Table {
	t := report.NewTable("Figure 12: working-set growth vs input size, log-regression prediction of the 4th input",
		"series", "loop", "1x", "2x", "4x", "8x measured", "8x predicted", "accuracy")
	for _, s := range r.Series {
		t.AddRow(
			fmt.Sprintf("%s PP%d", s.App, s.Period), s.Loop,
			fmt.Sprintf("%.2f", s.Measured[0].MiBf()),
			fmt.Sprintf("%.2f", s.Measured[1].MiBf()),
			fmt.Sprintf("%.2f", s.Measured[2].MiBf()),
			fmt.Sprintf("%.2f", s.Measured[3].MiBf()),
			fmt.Sprintf("%.2f", s.Predicted.MiBf()),
			fmt.Sprintf("%.0f%%", s.Accuracy*100),
		)
	}
	return t
}
