package experiments

import (
	"fmt"
	"math"

	"rdasched/internal/cache"
	"rdasched/internal/pp"
	"rdasched/internal/report"
	"rdasched/internal/runner"
	"rdasched/internal/sim"
)

// Calibration: the contention model's residency exponent γ is justified
// empirically by replaying co-running working sets through the real
// set-associative LRU hierarchy (internal/cache) and measuring the
// shared-cache hit rate as a function of pressure. Uniform random access
// degrades linearly (γ = 1); cyclic sweeps collapse (γ → ∞); the model's
// γ = 2 sits between. RunCalibration produces that curve as a table.

// CalibrationPoint is one measured (pressure, pattern) cell.
type CalibrationPoint struct {
	Threads   int
	WSS       pp.Bytes
	Residency float64 // r = C / ΣW (1 if it fits)
	Pattern   string
	HitRate   float64
	ModelHit  float64 // r^γ with the default exponent
}

// CalibrationResult is the measured curve.
type CalibrationResult struct {
	Gamma  float64
	Points []CalibrationPoint
}

// RunCalibration replays random and cyclic co-run patterns at several
// pressure levels through the Table 1 cache hierarchy. Each (pressure,
// pattern) replay builds a private hierarchy and RNG, so the replays
// run concurrently on opt.Jobs workers.
func RunCalibration(opt Options) (*CalibrationResult, error) {
	opt = opt.normalized()
	gamma := opt.Machine.ResidencyExponent
	res := &CalibrationResult{Gamma: gamma}
	hc := cache.E5_2420()
	capacity := hc.LLC.Size

	sweeps := 5
	if opt.Scale < 1 {
		sweeps = 3
	}

	var points []CalibrationPoint
	for _, tc := range []struct {
		threads int
		wss     pp.Bytes
	}{
		{4, pp.MB(2)},  // 8 MB: fits
		{8, pp.MB(2)},  // 16 MB: marginal
		{12, pp.MB(2)}, // 24 MB: 1.6x over
		{12, pp.MB(4)}, // 48 MB: 3.2x over
	} {
		r := 1.0
		total := pp.Bytes(tc.threads) * tc.wss
		if total > capacity {
			r = float64(capacity) / float64(total)
		}
		for _, pattern := range []string{"random", "cyclic"} {
			points = append(points, CalibrationPoint{
				Threads: tc.threads, WSS: tc.wss, Residency: r,
				Pattern: pattern, ModelHit: math.Pow(r, gamma),
			})
		}
	}
	hits, err := runner.Map(opt.Jobs, len(points), func(i int) (float64, error) {
		p := points[i]
		return replayPattern(hc, p.Threads, p.WSS, p.Pattern, sweeps, opt.Seed)
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	for i := range points {
		points[i].HitRate = hits[i]
	}
	res.Points = points
	return res, nil
}

// replayPattern interleaves per-thread access streams (one private
// L1/L2 each, shared LLC) in round-robin bursts and returns the measured
// steady-state LLC hit rate.
func replayPattern(hc cache.HierarchyConfig, threads int, wss pp.Bytes, pattern string, sweeps int, seed uint64) (float64, error) {
	if threads > hc.Cores {
		return 0, fmt.Errorf("experiments: calibration with %d threads exceeds %d cores", threads, hc.Cores)
	}
	h := cache.NewHierarchy(hc)
	rng := sim.NewRNG(seed + 0xca11b)
	pos := make([]uint64, threads)
	next := func(i int) uint64 {
		base := uint64(i) << 30
		if pattern == "random" {
			return base + (rng.Uint64n(uint64(wss)) &^ 63)
		}
		a := base + pos[i]
		pos[i] = (pos[i] + 64) % uint64(wss)
		return a
	}
	perThread := sweeps * int(wss/64)
	const burst = 512
	run := func(count bool) (hits, total uint64) {
		for done := 0; done < perThread; done += burst {
			for i := 0; i < threads; i++ {
				for k := 0; k < burst; k++ {
					lvl, _ := h.Access(i, next(i))
					if !count {
						continue
					}
					if lvl == cache.LLC {
						hits++
						total++
					} else if lvl == cache.Memory {
						total++
					}
				}
			}
		}
		return
	}
	run(false) // warm
	hits, total := run(true)
	if total == 0 {
		return 0, fmt.Errorf("experiments: calibration measured no LLC traffic")
	}
	return float64(hits) / float64(total), nil
}

// Table renders the calibration curve.
func (r *CalibrationResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Calibration: measured LLC hit rate vs residency (model: r^%.1f)", r.Gamma),
		"threads × wss", "residency r", "pattern", "measured hit", "model r^γ")
	for _, p := range r.Points {
		t.AddRow(
			fmt.Sprintf("%d × %s", p.Threads, p.WSS),
			fmt.Sprintf("%.3f", p.Residency),
			p.Pattern,
			fmt.Sprintf("%.3f", p.HitRate),
			fmt.Sprintf("%.3f", p.ModelHit))
	}
	return t
}
