package experiments

import (
	"fmt"
	"testing"

	"rdasched/internal/core"
	"rdasched/internal/qsim"
	"rdasched/internal/telemetry"
	"rdasched/internal/telemetry/blame"
)

// TestMetricFamiliesLint registers every metric family the repo
// publishes — scheduler, governor, domain, recovery, quantum simulator,
// blame, and SLO — with the instrument kind its publisher uses, and
// lints the result against the Prometheus exposition conventions. A new
// family with a malformed or suffix-violating name fails here before it
// ever reaches an exposition.
func TestMetricFamiliesLint(t *testing.T) {
	reg := telemetry.NewRegistry()
	for _, name := range []string{
		core.MetricBegins, core.MetricEnds, core.MetricAdmitted,
		core.MetricDenied, core.MetricWoken, core.MetricSafeguards,
		core.MetricReclaimed, core.MetricReclaimedBytes, core.MetricFallbacks,
		core.MetricRejected, core.MetricLateEnds,
		core.MetricGovernorDegradations, core.MetricGovernorRecoveries,
		core.MetricGovernorStrikes, core.MetricGovernorQuarantines,
		core.MetricGovernorQuarantinedAdmits, core.MetricGovernorProbes,
		core.MetricGovernorRestores, core.MetricGovernorReservations,
		core.MetricGovernorAgedWakes, core.MetricGovernorTightened,
		core.MetricDomainPlacements, core.MetricDomainSteals,
		core.MetricRecoveryFailures, core.MetricRecoveryCorruptions,
		core.MetricRecoveryEvacuations, core.MetricRecoveryRetries,
		core.MetricRecoveryForcedMoves, core.MetricRecoveryLadderFalls,
		core.MetricRecoveryDropped, core.MetricRecoveryAuditRuns,
		core.MetricRecoveryAuditRepairs, core.MetricRecoveryReintegrations,
		qsim.MetricCtxSwitches, qsim.MetricReloadLines,
		qsim.MetricParked, qsim.MetricWoken,
		blame.MetricBlamePeriods, blame.MetricBlameDenies,
		blame.MetricSLOAdmissions, blame.MetricSLOBreaches, blame.MetricSLOAlerts,
	} {
		reg.Counter(name)
	}
	for _, name := range []string{
		core.MetricMaxWaitSeconds, core.MetricActivePeriods, core.MetricLLCLoadBytes,
		core.MetricGovernorLevel,
	} {
		reg.Gauge(name)
	}
	for _, name := range []string{
		core.MetricWaitSeconds, core.MetricPeriodSeconds,
		core.MetricOccupancyBytes, core.MetricWaitlistDepth,
		core.MetricRecoverySeconds,
		qsim.MetricWaitSeconds, qsim.MetricOccupancy, qsim.MetricWaitlistDepth,
		blame.MetricBlameBlocked, blame.MetricBlameUnattributed,
	} {
		reg.Histogram(name)
	}
	// Index-suffixed families, exactly as their publishers derive them
	// (DomainSet.PublishStats, SLOResult.Publish).
	for i := 0; i < 3; i++ {
		suffix := fmt.Sprintf("_%d", i)
		reg.Gauge(core.MetricDomainLoadBytes + suffix)
		reg.Gauge(core.MetricDomainPeakBytes + suffix)
		reg.Gauge(core.MetricDomainWaitlist + suffix)
		reg.Counter(core.MetricDomainAdmitted + suffix + "_total")
		reg.Gauge(fmt.Sprintf("%s%d", blame.MetricSLOBurnPrefix, i))
	}
	for _, err := range reg.Lint() {
		t.Error(err)
	}
}
