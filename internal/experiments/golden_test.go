package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"rdasched/internal/report"
)

// Golden-file tests pin the rendered report.Table output for Table 1,
// Table 2, and one figure table, so pure formatting drift (column
// widths, separators, headers) is caught separately from numeric drift
// in the model. Regenerate with:
//
//	go test ./internal/experiments -run TestGolden -update

var update = flag.Bool("update", false, "rewrite testdata/*.golden files")

func checkGolden(t *testing.T, name string, tbl *report.Table) {
	t.Helper()
	got := tbl.String()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s rendering drifted from %s (run with -update if intended):\n--- got ---\n%s\n--- want ---\n%s",
			name, path, got, want)
	}
}

func TestGoldenTable1(t *testing.T) {
	checkGolden(t, "table1", Table1())
}

func TestGoldenTable2(t *testing.T) {
	checkGolden(t, "table2", Table2Report())
}

// TestGoldenFig11 pins a figure table produced by an actual simulation:
// the granularity harness at a fixed seed with no jitter is fully
// deterministic, so the golden file covers both the renderer and the
// numeric pipeline end to end.
func TestGoldenFig11(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := Defaults()
	opt.Repetitions = 1
	opt.JitterFrac = 0
	opt.Scale = 0.25
	res, err := RunGranularity(opt)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig11", res.Table())
}

// TestGoldenE4 pins the chaos table at a fixed seed: fault injection,
// lease reclamation, and fallback admission are all deterministic, so
// the full degradation table is reproducible byte for byte.
func TestGoldenE4(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := Defaults()
	opt.Repetitions = 1
	opt.JitterFrac = 0
	opt.Scale = 0.1
	res, err := RunChaos(opt)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "e4", res.Table())
}
