package experiments

import (
	"fmt"

	"rdasched/internal/perf"
	"rdasched/internal/report"
	"rdasched/internal/workloads"
)

// InterferencePoint is one cell of Figure 13: water_nsquared's longest
// progress period run at a molecule count and a concurrency level.
type InterferencePoint struct {
	Molecules int
	Instances int
	GFLOPS    float64
}

// InterferenceResult is the Figure 13 dataset.
type InterferenceResult struct {
	Points []InterferencePoint
}

// RunInterference reproduces Figure 13: the largest water_nsquared
// progress period at inputs {512, 3375, 8000, 32768} molecules and
// {1, 6, 12} concurrent instances, run under the *default* policy — the
// experiment quantifies the LLC interference that unmanaged concurrency
// causes ("the amount of slowdown ... due to LLC interference from
// increased data size and concurrent processes running"), which is the
// evidence that co-scheduling water_nsquared in groups of six beats
// running all twelve together. The aggregate GFLOPS shows where
// interference bends the scaling curve.
func RunInterference(opt Options) (*InterferenceResult, error) {
	opt = opt.normalized()
	var cells []cell
	for _, mol := range workloads.Fig13Inputs {
		for _, inst := range workloads.Fig13Instances {
			w, err := workloads.WaterNsqLargestPP(mol, inst)
			if err != nil {
				return nil, err
			}
			// Shorten periods for scaled runs; instance counts and
			// working sets (the interference variables) are preserved.
			w = scaleWorkload(w, maxf(opt.Scale, 0.05))
			cells = append(cells, cell{
				label: fmt.Sprintf("fig13 %d×%d", mol, inst),
				w:     w,
				rc: perf.RunConfig{
					Machine:     opt.Machine,
					Policy:      nil,
					Repetitions: opt.Repetitions,
					JitterFrac:  opt.JitterFrac,
				},
			})
		}
	}
	ms, err := measure(cells, opt)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	res := &InterferenceResult{}
	i := 0
	for _, mol := range workloads.Fig13Inputs {
		for _, inst := range workloads.Fig13Instances {
			res.Points = append(res.Points, InterferencePoint{
				Molecules: mol, Instances: inst, GFLOPS: ms[i].Mean.GFLOPS,
			})
			i++
		}
	}
	return res, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Table renders the Figure 13 dataset: one row per input size, one
// column per concurrency level, plus the 6→12 scaling ratio that shows
// the interference collapse.
func (r *InterferenceResult) Table() *report.Table {
	t := report.NewTable("Figure 13: LLC interference on water_nsquared's largest period (GFLOPS)",
		"molecules", "1 inst", "6 inst", "12 inst", "12/6 scaling")
	byMol := map[int]map[int]float64{}
	var order []int
	for _, p := range r.Points {
		if byMol[p.Molecules] == nil {
			byMol[p.Molecules] = map[int]float64{}
			order = append(order, p.Molecules)
		}
		byMol[p.Molecules][p.Instances] = p.GFLOPS
	}
	for _, mol := range order {
		m := byMol[mol]
		scaling := "-"
		if m[6] > 0 {
			scaling = fmt.Sprintf("%.2fx", m[12]/m[6])
		}
		t.AddRow(fmt.Sprintf("%d", mol),
			fmt.Sprintf("%.2f", m[1]), fmt.Sprintf("%.2f", m[6]),
			fmt.Sprintf("%.2f", m[12]), scaling)
	}
	return t
}
