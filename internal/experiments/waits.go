package experiments

import (
	"fmt"

	"rdasched/internal/core"
	"rdasched/internal/perf"
	"rdasched/internal/proc"
	"rdasched/internal/report"
	"rdasched/internal/telemetry"
	"rdasched/internal/workloads"
)

// Wait profile: where the paper's tables report end-to-end outcomes
// (energy, GFLOPS, makespan), this harness profiles the admission layer
// itself through the telemetry registry — how long denied periods sit on
// the waitlist (p50/p95/p99/max), how full the cache is kept, and how
// deep the waitlist grows — for the contended BLAS groups under each
// admission policy. The quantiles come from log-bucketed histograms, so
// a reported value is the upper bound of the power-of-two bucket holding
// that rank (clamped to the observed maximum).

// WaitRow is one (workload, policy) wait profile.
type WaitRow struct {
	Workload string
	Policy   string
	// Telemetry is the registry merged across the cell's repetitions.
	Telemetry *telemetry.Registry
}

// WaitProfileResult is the wait-profile dataset.
type WaitProfileResult struct {
	Rows []WaitRow
	// Merged is every row's registry merged, in row order.
	Merged *telemetry.Registry
}

// RunWaitProfile measures the BLAS-2 and BLAS-3 workloads under the two
// RDA policies with the telemetry registry attached. The Linux-default
// baseline is omitted: it strips the declarations, so it has no
// admission path to profile.
func RunWaitProfile(opt Options) (*WaitProfileResult, error) {
	opt = opt.normalized()
	opt.Telemetry = true
	ws := []struct {
		name string
		w    func() proc.Workload
	}{
		{"BLAS-2", workloads.BLAS2},
		{"BLAS-3", workloads.BLAS3},
	}
	policies := []struct {
		name string
		pol  core.Policy
	}{
		{"strict", core.StrictPolicy{}},
		{"compromise", core.NewCompromise()},
	}
	var cells []cell
	for _, wk := range ws {
		for _, p := range policies {
			cells = append(cells, cell{
				label: fmt.Sprintf("waits %s under %s", wk.name, p.name),
				w:     scaleWorkload(wk.w(), opt.Scale),
				rc: perf.RunConfig{
					Machine:     opt.Machine,
					Policy:      p.pol,
					Repetitions: opt.Repetitions,
					JitterFrac:  opt.JitterFrac,
				},
			})
		}
	}
	ms, err := measure(cells, opt)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	res := &WaitProfileResult{Merged: telemetry.NewRegistry()}
	i := 0
	for _, wk := range ws {
		for _, p := range policies {
			reg := ms[i].Mean.Telemetry
			res.Rows = append(res.Rows, WaitRow{Workload: wk.name, Policy: p.name, Telemetry: reg})
			res.Merged.Merge(reg)
			i++
		}
	}
	return res, nil
}

// Table renders the wait profile with the histogram quantile columns.
func (r *WaitProfileResult) Table() *report.Table {
	t := report.NewTable(
		"Wait profile: admission-layer latency under contention (telemetry histograms)",
		"workload", "policy", "admits", "wakes",
		"p50 wait ms", "p95 wait ms", "p99 wait ms", "max wait ms",
		"mean occ MB", "max depth")
	ms := func(sec float64) string { return fmt.Sprintf("%.4g", sec*1e3) }
	mb := func(b float64) string { return fmt.Sprintf("%.2f", b/(1<<20)) }
	for _, row := range r.Rows {
		reg := row.Telemetry
		waits := reg.Histogram(core.MetricWaitSeconds)
		occ := reg.Histogram(core.MetricOccupancyBytes)
		depth := reg.Histogram(core.MetricWaitlistDepth)
		t.AddRow(row.Workload, row.Policy,
			fmt.Sprintf("%d", reg.Counter(core.MetricAdmitted).Value()),
			fmt.Sprintf("%d", reg.Counter(core.MetricWoken).Value()),
			ms(waits.Quantile(0.50)), ms(waits.Quantile(0.95)),
			ms(waits.Quantile(0.99)), ms(waits.Max()),
			mb(occ.Mean()),
			fmt.Sprintf("%.0f", depth.Max()))
	}
	return t
}
