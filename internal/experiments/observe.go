package experiments

import (
	"fmt"

	"rdasched/internal/core"
	"rdasched/internal/perf"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
	"rdasched/internal/report"
	"rdasched/internal/telemetry"
	"rdasched/internal/telemetry/blame"
)

// E8 — causal wait attribution: who made each period wait, and for how
// long. The harness runs one deliberately skewed workload — two cache
// hogs that can never be co-admitted under Strict plus a crowd of small
// periods riding the leftover capacity — with the blame collector and
// the SLO monitor attached, and renders the interference matrix, the
// critical-path decomposition, and the burn-rate evaluation as one
// table. Everything derives from the virtual clock, so the table is
// bit-identical for every -jobs value; e8.golden pins it.

// ObserveSkewed is the E8 workload: two 9 MiB hogs (60% of the 15 MiB
// LLC — mutually exclusive under Strict) and six 2 MiB small periods.
// Every wait has an unambiguous cause, which is exactly what an
// attribution engine should be pinned against.
func ObserveSkewed() proc.Workload {
	w := proc.Workload{Name: "observe-skewed"}
	for i := 0; i < 2; i++ {
		w.Procs = append(w.Procs,
			domainSpec(fmt.Sprintf("hog-%d", i), pp.KB(9216), 3e9, pp.ReuseHigh))
	}
	for i := 0; i < 6; i++ {
		w.Procs = append(w.Procs,
			domainSpec(fmt.Sprintf("small-%d", i), pp.KB(2048), 6e8, pp.ReuseMed))
	}
	return w
}

// ObservePolicies are the admission configurations E8 compares: the
// paper's two RDA policies (the Linux default never denies, so there
// is nothing to attribute).
func ObservePolicies() []struct {
	Name   string
	Policy core.Policy
} {
	return []struct {
		Name   string
		Policy core.Policy
	}{
		{"strict", core.StrictPolicy{}},
		{"compromise", core.NewCompromise()},
	}
}

// ObserveRow is one policy's attribution measurement.
type ObserveRow struct {
	Policy string
	Mean   perf.Metrics
	StdDev perf.Metrics
	Blame  *blame.Report
	SLO    *blame.SLOResult
}

// ObserveResult is the E8 dataset.
type ObserveResult struct {
	Workload string
	Rows     []ObserveRow
	// Telemetry merges every cell's registry in cell order; the
	// rda_blame_* and rda_slo_* families land here.
	Telemetry *telemetry.Registry
}

// RunObserve measures the skewed workload under both RDA policies with
// blame attribution and the default SLO objective attached.
func RunObserve(opt Options) (*ObserveResult, error) {
	opt = opt.normalized()
	opt.Telemetry = true
	w := scaleWorkload(ObserveSkewed(), opt.Scale)
	var cells []cell
	for _, p := range ObservePolicies() {
		cells = append(cells, cell{
			label: fmt.Sprintf("observe %s %s", w.Name, p.Name),
			w:     w,
			rc: perf.RunConfig{
				Machine:     opt.Machine,
				Policy:      p.Policy,
				Repetitions: opt.Repetitions,
				JitterFrac:  opt.JitterFrac,
				Blame:       true,
				SLO:         opt.sloConfig(),
			},
		})
	}
	ms, err := measure(cells, opt)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	res := &ObserveResult{Workload: w.Name, Telemetry: telemetry.NewRegistry()}
	for i, p := range ObservePolicies() {
		rpt := ms[i].Mean.Blame
		if rpt == nil {
			rpt = &blame.Report{}
		}
		if err := rpt.Check(); err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", cells[i].label, err)
		}
		res.Rows = append(res.Rows, ObserveRow{Policy: p.Name,
			Mean: ms[i].Mean, StdDev: ms[i].StdDev,
			Blame: rpt, SLO: ms[i].Mean.SLO})
		res.Telemetry.Merge(ms[i].Mean.Telemetry)
	}
	return res, nil
}

// Meta labels the E8 HTML report for a given row.
func (r *ObserveResult) Meta(row ObserveRow) blame.ReportMeta {
	meta := blame.ReportMeta{Workload: r.Workload, Policy: row.Policy}
	for _, s := range ObserveSkewed().Procs {
		meta.Procs = append(meta.Procs, s.Name)
	}
	return meta
}

// Table renders the E8 attribution table: per policy, the interference
// matrix cell by cell (blocker process → waiting process), then the
// conservation totals, the critical-path split, and the SLO verdict.
// Shares are of the policy's total wait; path rows are of makespan.
func (r *ObserveResult) Table() *report.Table {
	t := report.NewTable(
		"E8: causal wait attribution — skewed hogs under admission control",
		"policy", "entry", "seconds", "share")
	procs := ObserveSkewed().Procs
	name := func(i int) string {
		if i >= 0 && i < len(procs) {
			return fmt.Sprintf("%s#%d", procs[i].Name, i)
		}
		return fmt.Sprintf("proc%d", i)
	}
	for _, row := range r.Rows {
		b := row.Blame
		waitShare := func(d float64) string {
			if b.TotalWait == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f%%", 100*d/float64(b.TotalWait))
		}
		for _, c := range b.Matrix {
			t.AddRow(row.Policy,
				fmt.Sprintf("%s blocks %s", name(c.BlockerProc), name(c.WaiterProc)),
				fmt.Sprintf("%.6f", c.Blamed.Seconds()), waitShare(float64(c.Blamed)))
		}
		t.AddRow(row.Policy, fmt.Sprintf("total wait (%d denies)", b.Denies),
			fmt.Sprintf("%.6f", b.TotalWait.Seconds()), waitShare(float64(b.TotalWait)))
		t.AddRow(row.Policy, "blamed",
			fmt.Sprintf("%.6f", b.TotalBlamed.Seconds()), waitShare(float64(b.TotalBlamed)))
		t.AddRow(row.Policy, "unattributed",
			fmt.Sprintf("%.6f", b.TotalUnattributed.Seconds()), waitShare(float64(b.TotalUnattributed)))
		mkShare := func(d float64) string {
			if b.Path.Makespan == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f%%", 100*d/float64(b.Path.Makespan))
		}
		t.AddRow(row.Policy, "path run",
			fmt.Sprintf("%.6f", b.Path.Run.Seconds()), mkShare(float64(b.Path.Run)))
		t.AddRow(row.Policy, "path wait (blamed)",
			fmt.Sprintf("%.6f", b.Path.WaitBlamed.Seconds()), mkShare(float64(b.Path.WaitBlamed)))
		t.AddRow(row.Policy, "path wait (unattributed)",
			fmt.Sprintf("%.6f", b.Path.WaitUnattributed.Seconds()), mkShare(float64(b.Path.WaitUnattributed)))
		t.AddRow(row.Policy, "path idle",
			fmt.Sprintf("%.6f", b.Path.Idle.Seconds()), mkShare(float64(b.Path.Idle)))
		if row.SLO != nil {
			t.AddRow(row.Policy,
				fmt.Sprintf("SLO breaches (of %d admissions)", row.SLO.Admissions),
				fmt.Sprintf("%d", row.SLO.Breaches),
				fmt.Sprintf("alerts %d", row.SLO.Alerts))
		}
	}
	return t
}
