package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"

	"rdasched/internal/core"
	"rdasched/internal/faults"
	"rdasched/internal/machine"
	"rdasched/internal/perf"
	"rdasched/internal/persist"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
	"rdasched/internal/report"
	"rdasched/internal/runner"
	"rdasched/internal/sim"
	"rdasched/internal/telemetry"
)

// E9 — crash-restart revival. The persist layer (admission journal +
// state snapshots, internal/persist) claims that a run killed
// mid-schedule can be restored and resumed such that the remainder of
// the schedule is byte-identical to a run that was never killed. This
// harness kills the process at K points of the virtual schedule, under
// both admission policies, sharded and not, and pins exactly that:
//
//	for every cell:  metrics(baseline)  ==  metrics(kill; restore; resume)
//
// compared through the canonical JSON encoding of the final metrics —
// the same representation the other goldens rest on. Each cell runs
// three times: the uninterrupted baseline; the killed run, which halts
// at the armed process death (machine.ErrHalted) leaving only the
// checkpoint directory behind; and the revival run, which loads the
// last valid snapshot, replays the journal suffix, verifies the
// restored state byte-for-byte against the deterministically
// re-executed prefix, and hands the machine to a gate built purely
// from disk. The "identical" column is the experiment's verdict; the
// journal/snapshot/replay columns are the provenance the rda_persist_*
// telemetry family reports.

// ReviveKillFracs sweeps when the process dies, as a fraction of the
// cell's measured baseline makespan: early (the admission pile-up is
// at its deepest) and late (waitlists partly drained, leases mid-term).
var ReviveKillFracs = []float64{0.25, 0.6}

// ReviveDomainCounts sweeps the sharding: a single-domain set and a
// four-way split with cross-domain steals live at the kill point.
var ReviveDomainCounts = []int{1, 4}

// revivePolicies are the admission policies the revival must survive.
var revivePolicies = []struct {
	Name   string
	Policy core.Policy
}{
	{"strict", core.StrictPolicy{}},
	{"compromise", core.NewCompromise()},
}

// reviveSpec is a heal-mix process behind a streaming arrival ramp: the
// ramp delays the declared period's begin without touching the LLC, so
// successive processes arrive at the gate spread across the run rather
// than in one burst at t=0.
func reviveSpec(name string, wss pp.Bytes, instr, ramp float64) proc.Spec {
	s := healSpec(name, wss, instr)
	if ramp > 0 {
		arrive := proc.Phase{
			Name: name + "-arrive", Instr: ramp, WSS: pp.KB(64), Reuse: pp.ReuseLow,
			AccessesPerInstr: 0.2, PrivateHitFrac: 0.95, StreamFrac: 1.0,
		}
		s.Program = append(proc.Program{arrive}, s.Program...)
	}
	return s
}

// ReviveWorkload builds the E9 mix: twelve single-thread processes each
// declaring a quarter of the LLC, with staggered arrivals and lengths
// so begins, period ends, waitlist wakes, and the journal records they
// cut spread across the whole run — every kill fraction lands on a live
// mix of admitted periods, armed leases, and ticketed waiters, and
// under every policy some records land between any snapshot cadence
// boundary and the kill.
func ReviveWorkload() proc.Workload {
	w := proc.Workload{Name: "revive-mix"}
	for i := 0; i < 12; i++ {
		w.Procs = append(w.Procs, reviveSpec(fmt.Sprintf("job-%d", i),
			healWSS, 4e8*(1+0.15*float64(i)), 8e7*float64(i)))
	}
	return w
}

// ReviveRow is one (policy, domains, kill fraction) revival.
type ReviveRow struct {
	Policy   string
	Domains  int
	KillFrac float64

	KillAtSec   float64 // virtual time the death was armed at
	BaselineSec float64 // uninterrupted makespan
	RevivedSec  float64 // kill+restore+resume makespan
	Identical   bool    // canonical metrics JSON equal, the E9 verdict

	Records     uint64 // journal records the killed run wrote
	Snapshots   int    // snapshot files in the checkpoint directory
	SnapshotSeq uint64 // journal anchor of the snapshot restore chose
	Replayed    int    // journal records applied on top of it
	Truncated   bool   // journal ended torn (never, for a clean kill)

	Baseline perf.Metrics
	Revived  perf.Metrics
}

// ReviveResult is the E9 dataset.
type ReviveResult struct {
	Workload string
	Rows     []ReviveRow
	// Telemetry merges every revival run's registry in cell order; the
	// rda_persist_* family appears here.
	Telemetry *telemetry.Registry
}

// reviveCell is one sweep point.
type reviveCell struct {
	policy  string
	pol     core.Policy
	domains int
	frac    float64
}

// RunRevive measures every cell of the crash-restart sweep. Cells run
// concurrently on opt.Jobs workers; within a cell the baseline, killed,
// and revival runs are strictly ordered (the kill time derives from the
// baseline makespan, the revival from the killed run's checkpoint).
// Repetitions are forced to one — a checkpoint belongs to a single
// repetition — so the table is fully deterministic at a fixed seed.
func RunRevive(opt Options) (*ReviveResult, error) {
	opt = opt.normalized()
	opt.Telemetry = true
	w := scaleWorkload(ReviveWorkload(), opt.Scale)
	lease, deadline := chaosTimeouts(w)
	var cells []reviveCell
	for _, p := range revivePolicies {
		for _, n := range ReviveDomainCounts {
			for _, frac := range ReviveKillFracs {
				cells = append(cells, reviveCell{policy: p.Name, pol: p.Policy, domains: n, frac: frac})
			}
		}
	}
	rows, err := runner.Map(opt.Jobs, len(cells), func(i int) (ReviveRow, error) {
		row, err := runRevival(cells[i], w, opt, lease, deadline, runner.Seed(opt.Seed, uint64(i)))
		if err != nil {
			return ReviveRow{}, fmt.Errorf("%s n %d kill %.2f: %w", cells[i].policy, cells[i].domains, cells[i].frac, err)
		}
		return row, nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	res := &ReviveResult{Workload: w.Name, Rows: rows, Telemetry: telemetry.NewRegistry()}
	for i := range rows {
		res.Telemetry.Merge(rows[i].Revived.Telemetry)
	}
	return res, nil
}

// runRevival executes one cell's three-run protocol.
func runRevival(c reviveCell, w proc.Workload, opt Options, lease, deadline sim.Duration, seed uint64) (ReviveRow, error) {
	rc := perf.RunConfig{
		Machine:       opt.Machine,
		Policy:        c.pol,
		Repetitions:   1,
		JitterFrac:    opt.JitterFrac,
		Seed:          seed,
		Lease:         lease,
		AdmitDeadline: deadline,
		Domains:       c.domains,
		StealAge:      domainStealAge(w),
		Telemetry:     true,
	}
	base, err := perf.Sample(w, rc, 0)
	if err != nil {
		return ReviveRow{}, fmt.Errorf("baseline: %w", err)
	}
	killAt := sim.FromSeconds(base.ElapsedSec * c.frac)

	dir, err := os.MkdirTemp("", "rda-e9-")
	if err != nil {
		return ReviveRow{}, err
	}
	defer os.RemoveAll(dir)

	krc := rc
	krc.Faults = &faults.Plan{KillAt: killAt}
	krc.Checkpoint = &persist.Config{Dir: dir, Every: killAt / 8}
	if _, err := perf.Sample(w, krc, 0); !errors.Is(err, machine.ErrHalted) {
		return ReviveRow{}, fmt.Errorf("killed run returned %v, want machine.ErrHalted", err)
	}

	res, err := persist.Restore(dir)
	if err != nil {
		return ReviveRow{}, fmt.Errorf("restore: %w", err)
	}
	rrc := rc
	rrc.Restore = res
	revived, err := perf.Sample(w, rrc, 0)
	if err != nil {
		return ReviveRow{}, fmt.Errorf("revival: %w", err)
	}

	bb, err := json.Marshal(base)
	if err != nil {
		return ReviveRow{}, err
	}
	rb, err := json.Marshal(revived)
	if err != nil {
		return ReviveRow{}, err
	}
	snaps, err := countSnapshots(dir)
	if err != nil {
		return ReviveRow{}, err
	}
	return ReviveRow{
		Policy:   c.policy,
		Domains:  c.domains,
		KillFrac: c.frac,

		KillAtSec:   killAt.Seconds(),
		BaselineSec: base.ElapsedSec,
		RevivedSec:  revived.ElapsedSec,
		Identical:   string(bb) == string(rb),

		Records:     res.Seq,
		Snapshots:   snaps,
		SnapshotSeq: res.SnapshotSeq,
		Replayed:    res.Replayed,
		Truncated:   res.Truncated,

		Baseline: base,
		Revived:  revived,
	}, nil
}

// countSnapshots counts the committed snapshot files under dir.
func countSnapshots(dir string) (int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".json") {
			n++
		}
	}
	return n, nil
}

// Table renders the E9 revival table. Per-resource load ledgers,
// waitlists, and lease expiries all feed the "identical" verdict
// through the metrics encoding; the provenance columns show how much of
// the revived state came from disk.
func (r *ReviveResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("E9: crash-restart revival — journal+snapshot restore vs unkilled run (%s)", r.Workload),
		"policy", "domains", "kill at", "baseline s", "revived s", "identical",
		"records", "snapshots", "snap seq", "replayed", "max wait s")
	for _, row := range r.Rows {
		verdict := "yes"
		if !row.Identical {
			verdict = "DIVERGED"
		}
		if row.Truncated {
			verdict += " (torn)"
		}
		t.AddRow(row.Policy,
			fmt.Sprintf("%d", row.Domains),
			fmt.Sprintf("%.0f%%", row.KillFrac*100),
			fmt.Sprintf("%.3f", row.BaselineSec),
			fmt.Sprintf("%.3f", row.RevivedSec),
			verdict,
			fmt.Sprintf("%d", row.Records),
			fmt.Sprintf("%d", row.Snapshots),
			fmt.Sprintf("%d", row.SnapshotSeq),
			fmt.Sprintf("%d", row.Replayed),
			fmt.Sprintf("%.4f", row.Revived.MaxWaitSec))
	}
	return t
}
