package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func observeOpts() Options {
	opt := Defaults()
	opt.Repetitions = 1
	opt.JitterFrac = 0
	opt.Scale = 0.1
	return opt
}

// TestObserveConservation: the E8 harness's blame reports satisfy the
// exact conservation invariant and actually attribute something — the
// skewed workload guarantees contention under both policies.
func TestObserveConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunObserve(observeOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if err := row.Blame.Check(); err != nil {
			t.Errorf("%s: %v", row.Policy, err)
		}
		if row.Policy == "strict" {
			if row.Blame.Denies == 0 || row.Blame.TotalBlamed == 0 {
				t.Errorf("strict run saw no attributable contention: %+v", row.Blame)
			}
			if len(row.Blame.Matrix) == 0 {
				t.Error("strict run produced an empty interference matrix")
			}
		}
		if row.SLO == nil || row.SLO.Admissions == 0 {
			t.Errorf("%s: SLO monitor recorded no admissions", row.Policy)
		}
	}
	// The rda_blame_* and rda_slo_* families must reach the merged
	// registry.
	var sb strings.Builder
	if err := res.Telemetry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"rda_blame_periods_total", "rda_blame_denies_total",
		"rda_blame_blocked_seconds", "rda_slo_admissions_total", "rda_slo_breaches_total"} {
		if !strings.Contains(sb.String(), fam) {
			t.Errorf("merged registry missing family %s", fam)
		}
	}
	// Every family a real run publishes must satisfy the exposition
	// conventions (see telemetry.Lint).
	for _, err := range res.Telemetry.Lint() {
		t.Error(err)
	}
}

// TestGoldenE8 pins the rendered blame matrix, conservation totals,
// path split, and SLO verdict at a fixed seed.
func TestGoldenE8(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunObserve(observeOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "e8", res.Table())
}

// TestDeterminismObserve: the E8 table is byte-identical for every
// worker count — the acceptance criterion behind "e8.golden identical
// across -jobs 1 and -jobs 4".
func TestDeterminismObserve(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	assertIdenticalAcrossJobs(t, "observe", func(opt Options) ([]string, error) {
		res, err := RunObserve(opt)
		if err != nil {
			return nil, err
		}
		return []string{res.Table().String()}, nil
	})
}

var obsPayloadRE = regexp.MustCompile(
	`(?s)<script type="application/json" id="rda-data">(.*?)</script>`)

// TestObsDirWritesReports: ObsDir produces one self-contained HTML
// report per cell whose embedded JSON parses, byte-identical across
// worker counts.
func TestObsDirWritesReports(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	render := func(jobs int) map[string][]byte {
		dir := t.TempDir()
		opt := observeOpts()
		opt.Jobs = jobs
		opt.ObsDir = dir
		if _, err := RunObserve(opt); err != nil {
			t.Fatal(err)
		}
		files, err := filepath.Glob(filepath.Join(dir, "*.html"))
		if err != nil {
			t.Fatal(err)
		}
		out := map[string][]byte{}
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			out[filepath.Base(f)] = data
		}
		return out
	}
	ref := render(1)
	if len(ref) != len(ObservePolicies()) {
		t.Fatalf("got %d reports, want one per policy (%d)", len(ref), len(ObservePolicies()))
	}
	for name, doc := range ref {
		m := obsPayloadRE.FindSubmatch(doc)
		if m == nil {
			t.Fatalf("%s: no embedded rda-data payload", name)
		}
		var payload map[string]any
		if err := json.Unmarshal(m[1], &payload); err != nil {
			t.Fatalf("%s: embedded payload does not parse: %v", name, err)
		}
	}
	for name, doc := range render(4) {
		if !bytes.Equal(doc, ref[name]) {
			t.Errorf("%s differs between Jobs=1 and Jobs=4", name)
		}
	}
}
