package experiments

import (
	"fmt"

	"rdasched/internal/core"
	"rdasched/internal/faults"
	"rdasched/internal/perf"
	"rdasched/internal/report"
	"rdasched/internal/sim"
	"rdasched/internal/telemetry"
	"rdasched/internal/workloads"
)

// E5 — overload: the adaptive admission governor against static
// policies. E4 shows the static predicates' failure modes under faults:
// Strict parks periods until the fallback deadline (long makespans),
// Compromise over-admits under misdeclared demands (thrashing). This
// harness sweeps fault rate × arrival-burst intensity over the BLAS-3
// workload and compares three admission configurations — RDA:Strict,
// RDA:Compromise, and Strict governed by the adaptive admission governor
// (overload-aware policy degradation, misdeclaration quarantine,
// waitlist aging) — reporting makespan, the DRAM-access thrash proxy,
// the robustness layer's activity, and how often the governor
// intervened.

// OverloadRates is the swept per-candidate fault rate.
var OverloadRates = []float64{0, 0.15, 0.3}

// OverloadBursts is the swept arrival-burst intensity (wave count; 1 =
// all processes arrive at t=0).
var OverloadBursts = []int{1, 3, 6}

// OverloadConfig is one compared admission configuration.
type OverloadConfig struct {
	Name     string
	Policy   core.Policy
	Governed bool
}

// OverloadConfigs returns the compared configurations in table order:
// the two static predicates, then Strict under the governor.
func OverloadConfigs() []OverloadConfig {
	return []OverloadConfig{
		{"strict", core.StrictPolicy{}, false},
		{"compromise", core.NewCompromise(), false},
		{"governor", core.StrictPolicy{}, true},
	}
}

// OverloadRow is one (config, fault rate, burst) measurement.
type OverloadRow struct {
	Config string
	Rate   float64
	Bursts int
	Mean   perf.Metrics
	StdDev perf.Metrics
}

// OverloadResult is the E5 dataset.
type OverloadResult struct {
	Workload string
	Rows     []OverloadRow
	// Telemetry merges every cell's metrics registry in cell order; the
	// rda_governor_* counters appear here alongside the robustness
	// counters.
	Telemetry *telemetry.Registry
}

// overloadGovernor sizes the governor's virtual-clock windows from the
// same workload-derived timescale the lease and admission deadline use,
// so the harness behaves identically at every -scale: pressure must
// persist for a fraction of the deadline before the ladder steps, and
// probation is long enough to cover several periods of the offender.
func overloadGovernor(deadline sim.Duration) core.GovernorConfig {
	cfg := core.DefaultGovernorConfig()
	// A deep waitlist is normal for Strict on this workload (96 processes
	// over 12 cores) — depth alone must not trip the ladder, or the
	// governor would forfeit Strict's cache efficiency on clean runs. The
	// load-bearing overload signals are the robustness layer working hard
	// (fallbacks/reclaims, zero on clean runs by the timeout derivation
	// above) and a stalled waitlist head approaching the fallback
	// deadline. The ladder is capped at Degraded: under leaked
	// registrations the cure is the tightened lease reclaiming them, not
	// shedding admission control entirely — Shedding floods all ~96
	// processes into the cache at once and the whole tail of the run
	// executes at worst-case miss rates.
	cfg.DegradeDepth = 1 << 20
	cfg.ShedDepth = 1 << 20
	cfg.Window = deadline / 2
	cfg.WaitHigh = deadline * 3 / 8
	cfg.HotEvents = 8
	cfg.DegradeHold = deadline / 16
	cfg.RecoverHold = deadline / 16
	cfg.LeaseTighten = 6
	// One strike: every BLAS-3 process declares a single period, so a
	// multi-strike breaker could never trip here — and quarantining the
	// first unambiguous lie keeps the liar's phantom demand out of the
	// load table, which is most of the breaker's value on this workload.
	// (The multi-period trip → probation → probe → restore lifecycle is
	// exercised by the core quarantine tests.)
	cfg.Strikes = 1
	cfg.Probation = deadline / 2
	cfg.AgeThreshold = (deadline / 2).Seconds()
	return cfg
}

// RunOverload measures the BLAS-3 workload under every configuration at
// every fault rate × burst intensity. The (config, rate, burst,
// repetition) replications run concurrently on opt.Jobs workers; every
// replication's faults derive from the experiment seed and its job
// index, so the table is bit-identical for every worker count.
func RunOverload(opt Options) (*OverloadResult, error) {
	opt = opt.normalized()
	// Like E4, the harness always runs instrumented: the governor and
	// robustness counters flow through the telemetry registry as well as
	// the table.
	opt.Telemetry = true
	w := scaleWorkload(workloads.BLAS3(), opt.Scale)
	lease, deadline := chaosTimeouts(w)
	gcfg := overloadGovernor(deadline)
	var cells []cell
	for _, c := range OverloadConfigs() {
		for _, rate := range OverloadRates {
			for _, waves := range OverloadBursts {
				rc := perf.RunConfig{
					Machine:       opt.Machine,
					Policy:        c.Policy,
					Repetitions:   opt.Repetitions,
					JitterFrac:    opt.JitterFrac,
					Lease:         lease,
					AdmitDeadline: deadline,
				}
				if c.Governed {
					g := gcfg
					rc.Governor = &g
				}
				plan := faults.Uniform(rate, opt.Machine.LLCCapacity)
				plan.BurstWaves = waves
				if plan.Enabled() {
					rc.Faults = &plan
				}
				cells = append(cells, cell{
					label: fmt.Sprintf("overload %s rate %.2f bursts %d", c.Name, rate, waves),
					w:     w,
					rc:    rc,
				})
			}
		}
	}
	ms, err := measure(cells, opt)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	res := &OverloadResult{Workload: w.Name, Telemetry: telemetry.NewRegistry()}
	i := 0
	for _, c := range OverloadConfigs() {
		for _, rate := range OverloadRates {
			for _, waves := range OverloadBursts {
				res.Rows = append(res.Rows, OverloadRow{Config: c.Name, Rate: rate, Bursts: waves,
					Mean: ms[i].Mean, StdDev: ms[i].StdDev})
				res.Telemetry.Merge(ms[i].Mean.Telemetry)
				i++
			}
		}
	}
	return res, nil
}

// Interventions is the row's total governor activity: ladder steps plus
// breaker trips plus aged-waiter reservations.
func (r OverloadRow) Interventions() float64 {
	return r.Mean.GovernorDegradations + r.Mean.GovernorQuarantines + r.Mean.GovernorReservations
}

// Table renders the E5 overload table.
func (r *OverloadResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("E5: adaptive governor vs static policies under overload (%s)", r.Workload),
		"config", "fault rate", "bursts", "elapsed s", "slowdown", "GFLOPS",
		"DRAM accesses", "fallbacks", "reclaimed", "max wait s", "gov events")
	baseline := map[string]float64{}
	for _, row := range r.Rows {
		if row.Rate == 0 && row.Bursts == 1 {
			baseline[row.Config] = row.Mean.ElapsedSec
		}
	}
	for _, row := range r.Rows {
		slowdown := "-"
		if b := baseline[row.Config]; b > 0 {
			slowdown = fmt.Sprintf("%.2fx", row.Mean.ElapsedSec/b)
		}
		gov := "-"
		if row.Config == "governor" {
			gov = fmt.Sprintf("%.1f", row.Interventions())
		}
		t.AddRow(row.Config,
			fmt.Sprintf("%.0f%%", row.Rate*100),
			fmt.Sprintf("%d", row.Bursts),
			fmt.Sprintf("%.3f", row.Mean.ElapsedSec),
			slowdown,
			fmt.Sprintf("%.2f", row.Mean.GFLOPS),
			fmt.Sprintf("%.3g", row.Mean.DRAMAccesses),
			fmt.Sprintf("%.1f", row.Mean.FallbackAdmissions),
			fmt.Sprintf("%.1f", row.Mean.ReclaimedLeases),
			fmt.Sprintf("%.4f", row.Mean.MaxWaitSec),
			gov)
	}
	return t
}
