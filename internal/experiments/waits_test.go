package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rdasched/internal/core"
)

func quickOpts() Options {
	opt := Defaults()
	opt.Scale = 0.05
	opt.Repetitions = 2
	opt.Seed = 3
	return opt
}

func TestWaitProfile(t *testing.T) {
	res, err := RunWaitProfile(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (2 workloads × 2 policies)", len(res.Rows))
	}
	for _, row := range res.Rows {
		reg := row.Telemetry
		if reg == nil {
			t.Fatalf("%s/%s: no registry", row.Workload, row.Policy)
		}
		admits := reg.Counter(core.MetricAdmitted).Value()
		if admits == 0 {
			t.Fatalf("%s/%s: no admissions", row.Workload, row.Policy)
		}
		waits := reg.Histogram(core.MetricWaitSeconds)
		if waits.Count() != admits {
			t.Fatalf("%s/%s: wait histogram count %d != admits %d",
				row.Workload, row.Policy, waits.Count(), admits)
		}
		// The BLAS groups oversubscribe the LLC under both policies, so
		// the tail quantiles must show real waiting and be ordered.
		p50, p95, p99 := waits.Quantile(0.50), waits.Quantile(0.95), waits.Quantile(0.99)
		if p95 <= 0 {
			t.Fatalf("%s/%s: p95 wait is zero under an over-capacity mix", row.Workload, row.Policy)
		}
		if p50 > p95 || p95 > p99 || p99 > waits.Max() {
			t.Fatalf("%s/%s: quantiles out of order: p50=%v p95=%v p99=%v max=%v",
				row.Workload, row.Policy, p50, p95, p99, waits.Max())
		}
	}
	tbl := res.Table().String()
	for _, col := range []string{"p50 wait ms", "p95 wait ms", "p99 wait ms"} {
		if !strings.Contains(tbl, col) {
			t.Fatalf("table missing column %q:\n%s", col, tbl)
		}
	}
	// The merged registry sums the rows.
	var sum uint64
	for _, row := range res.Rows {
		sum += row.Telemetry.Counter(core.MetricAdmitted).Value()
	}
	if got := res.Merged.Counter(core.MetricAdmitted).Value(); got != sum {
		t.Fatalf("merged admits %d != row sum %d", got, sum)
	}
}

// TestChaosTelemetryMatchesStats checks satellite routing: the E4
// robustness counters published into the registry must agree with the
// per-row Stats-derived floats the table is built from.
func TestChaosTelemetryMatchesStats(t *testing.T) {
	opt := quickOpts()
	opt.Repetitions = 1
	res, err := RunChaos(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil {
		t.Fatal("chaos run carried no registry")
	}
	var reclaims, fallbacks, rejects float64
	for _, row := range res.Rows {
		reclaims += row.Mean.ReclaimedLeases
		fallbacks += row.Mean.FallbackAdmissions
		rejects += row.Mean.RejectedDemands
	}
	check := func(name string, want float64) {
		t.Helper()
		if got := float64(res.Telemetry.Counter(name).Value()); got != want {
			t.Errorf("%s = %v, registry disagrees with Stats sum %v", name, got, want)
		}
	}
	check(core.MetricReclaimed, reclaims)
	check(core.MetricFallbacks, fallbacks)
	check(core.MetricRejected, rejects)
	if res.Telemetry.Counter(core.MetricReclaimed).Value()+
		res.Telemetry.Counter(core.MetricFallbacks).Value() == 0 {
		t.Error("fault injection exercised no robustness path at all")
	}
}

// TestTraceDirWritesPerCellFiles checks Options.TraceDir: one valid,
// Jobs-independent Chrome trace file per measured cell.
func TestTraceDirWritesPerCellFiles(t *testing.T) {
	render := func(jobs int) map[string][]byte {
		dir := t.TempDir()
		opt := quickOpts()
		opt.Repetitions = 1
		opt.Jobs = jobs
		opt.TraceDir = dir
		if _, err := RunPartitioning(opt); err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string][]byte{}
		for _, e := range entries {
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			out[e.Name()] = b
		}
		return out
	}
	serial := render(1)
	if len(serial) != 2 {
		t.Fatalf("trace files = %d, want one per E1 variant: %v", len(serial), serial)
	}
	for name, b := range serial {
		if !strings.HasSuffix(name, ".json") {
			t.Fatalf("unexpected trace file name %q", name)
		}
		if !bytes.Contains(b, []byte(`"traceEvents"`)) {
			t.Fatalf("%s is not a trace document", name)
		}
	}
	parallel := render(4)
	for name, b := range serial {
		if !bytes.Equal(b, parallel[name]) {
			t.Fatalf("trace %s differs between Jobs=1 and Jobs=4", name)
		}
	}
}

func TestTraceFileName(t *testing.T) {
	for in, want := range map[string]string{
		"E1 0.5MB partition":        "e1-0.5mb-partition.json",
		"waits BLAS-3 under strict": "waits-blas-3-under-strict.json",
		"chaos strict rate 0.15":    "chaos-strict-rate-0.15.json",
	} {
		if got := traceFileName(in); got != want {
			t.Errorf("traceFileName(%q) = %q, want %q", in, got, want)
		}
	}
}
