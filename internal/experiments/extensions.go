package experiments

import (
	"fmt"

	"rdasched/internal/core"
	"rdasched/internal/perf"
	"rdasched/internal/pp"
	"rdasched/internal/report"
	"rdasched/internal/workloads"
)

// Extension experiments: the paper's §6 future work, implemented and
// measured. E1 evaluates cache partitioning for streaming applications
// whose working sets exceed the LLC; E2 evaluates reserving capacity for
// LLC-intensive applications that declare no progress periods.

// ExtensionRow is one measured variant of an extension experiment.
type ExtensionRow struct {
	Variant string
	Mean    perf.Metrics
}

// ExtensionResult is an extension experiment's dataset.
type ExtensionResult struct {
	Name string
	Rows []ExtensionRow
}

// Table renders the result.
func (r *ExtensionResult) Table() *report.Table {
	t := report.NewTable(r.Name,
		"variant", "system J", "DRAM J", "GFLOPS", "GFLOPS/W", "seconds", "busy")
	for _, row := range r.Rows {
		t.AddRow(row.Variant,
			fmt.Sprintf("%.1f", row.Mean.SystemJ),
			fmt.Sprintf("%.1f", row.Mean.DRAMJ),
			fmt.Sprintf("%.3f", row.Mean.GFLOPS),
			fmt.Sprintf("%.4f", row.Mean.GFLOPSPerWatt),
			fmt.Sprintf("%.2f", row.Mean.ElapsedSec),
			fmt.Sprintf("%.1f", row.Mean.AvgBusyCores))
	}
	return t
}

// RunPartitioning measures E1: six 24 MB streaming processes plus sixteen
// 2.4 MB dgemms under the strict policy, with and without fencing the
// streamers into 0.5 MB cache partitions. Without partitions a 24 MB
// demand only ever enters through the empty-load safeguard and then
// starves everything else; with partitions the streamers are charged (and
// physically confined to) half a megabyte each and the mix runs
// concurrently — the paper's §6 rationale: "it would fetch most data from
// main memory regardless".
func RunPartitioning(opt Options) (*ExtensionResult, error) {
	opt = opt.normalized()
	res := &ExtensionResult{Name: "Extension E1: cache partitioning for over-LLC streaming apps (strict policy)"}
	variants := []struct {
		name      string
		partition pp.Bytes
	}{
		{"unpartitioned", 0},
		{"0.5MB partition", pp.MB(0.5)},
	}
	var cells []cell
	for _, v := range variants {
		cells = append(cells, cell{
			label: fmt.Sprintf("E1 %s", v.name),
			w:     scaleWorkload(workloads.StreamingMix(v.partition), opt.Scale),
			rc: perf.RunConfig{
				Machine:     opt.Machine,
				Policy:      core.StrictPolicy{},
				Repetitions: opt.Repetitions,
				JitterFrac:  opt.JitterFrac,
			},
		})
	}
	ms, err := measure(cells, opt)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	for i, v := range variants {
		res.Rows = append(res.Rows, ExtensionRow{Variant: v.name, Mean: ms[i].Mean})
	}
	return res, nil
}

// RunReserve measures E2: twenty-four instrumented dgemms co-running with
// two uninstrumented LLC hogs the resource monitor cannot see, with and
// without reserving part of the LLC for the unmanaged load. The
// reservation stops the predicate from admitting periods against cache
// the hogs already occupy; whether that pays depends on how much
// concurrency it costs — the table reports the measured trade.
func RunReserve(opt Options) (*ExtensionResult, error) {
	opt = opt.normalized()
	res := &ExtensionResult{Name: "Extension E2: reserving LLC for unmanaged co-runners (strict policy)"}
	variants := []struct {
		name    string
		reserve pp.Bytes
	}{
		{"no reserve", 0},
		{"5MB reserve", pp.MB(5)},
	}
	w := scaleWorkload(workloads.UnmanagedMix(), opt.Scale)
	var cells []cell
	for _, v := range variants {
		cells = append(cells, cell{
			label: fmt.Sprintf("E2 %s", v.name),
			w:     w,
			rc: perf.RunConfig{
				Machine:     opt.Machine,
				Policy:      core.StrictPolicy{},
				Reserve:     v.reserve,
				Repetitions: opt.Repetitions,
				JitterFrac:  opt.JitterFrac,
			},
		})
	}
	ms, err := measure(cells, opt)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	for i, v := range variants {
		res.Rows = append(res.Rows, ExtensionRow{Variant: v.name, Mean: ms[i].Mean})
	}
	return res, nil
}

// RunBandwidth measures E3: twenty-four pure streamers under the strict
// policy, with and without declaring their DRAM bandwidth demands as a
// second tracked resource. Without the declarations every streamer is
// admitted (0.6 MB LLC demands are trivially satisfiable) and twelve
// cores burn power waiting on a saturated memory bus; with them, the
// predicate caps concurrency at the roofline.
func RunBandwidth(opt Options) (*ExtensionResult, error) {
	opt = opt.normalized()
	res := &ExtensionResult{Name: "Extension E3: bandwidth-aware admission for streaming mixes (strict policy)"}
	variants := []struct {
		name    string
		declare bool
	}{
		{"LLC demands only", false},
		{"LLC + bandwidth demands", true},
	}
	var cells []cell
	for _, v := range variants {
		cells = append(cells, cell{
			label: fmt.Sprintf("E3 %s", v.name),
			w:     scaleWorkload(workloads.BandwidthMix(v.declare), opt.Scale),
			rc: perf.RunConfig{
				Machine:     opt.Machine,
				Policy:      core.StrictPolicy{},
				Repetitions: opt.Repetitions,
				JitterFrac:  opt.JitterFrac,
			},
		})
	}
	ms, err := measure(cells, opt)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	for i, v := range variants {
		res.Rows = append(res.Rows, ExtensionRow{Variant: v.name, Mean: ms[i].Mean})
	}
	return res, nil
}
