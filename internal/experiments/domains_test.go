package experiments

import (
	"bytes"
	"testing"
)

// e6Opts is the pinned E6 configuration shared by the golden and the
// makespan assertion: one repetition, no jitter, a tenth scale — fully
// deterministic, like the E4 golden.
func e6Opts() Options {
	opt := Defaults()
	opt.Repetitions = 1
	opt.JitterFrac = 0
	opt.Scale = 0.1
	return opt
}

// TestGoldenE6 pins the domain table at a fixed seed: placement and
// steal decisions ride the virtual clock, so the full sweep is
// reproducible byte for byte.
func TestGoldenE6(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunDomains(e6Opts())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "e6", res.Table())
}

// TestDomainsSkewedSpeedup asserts the experiment's headline claim
// directly, independent of table formatting: on the skewed workload,
// every multi-domain configuration beats the single global domain on
// makespan, and the uniform control stays within a modest band of it
// (sharding must not wreck the no-skew case).
func TestDomainsSkewedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunDomains(e6Opts())
	if err != nil {
		t.Fatal(err)
	}
	elapsed := map[string]map[int]float64{}
	for _, row := range res.Rows {
		if elapsed[row.Workload] == nil {
			elapsed[row.Workload] = map[int]float64{}
		}
		elapsed[row.Workload][row.Domains] = row.Mean.ElapsedSec
		if row.Domains == 1 {
			if row.Mean.DomainPlacements != 0 || row.Mean.DomainSteals != 0 {
				t.Errorf("%s at 1 domain: placements %.0f steals %.0f, want 0/0 (single-domain sets make no decisions)",
					row.Workload, row.Mean.DomainPlacements, row.Mean.DomainSteals)
			}
		}
	}
	skew := elapsed["domain-skewed"]
	for _, n := range DomainCounts[1:] {
		if skew[n] >= skew[1] {
			t.Errorf("skewed workload at %d domains: elapsed %.4fs, want < single-domain %.4fs",
				n, skew[n], skew[1])
		}
	}
	uni := elapsed["domain-uniform"]
	for _, n := range DomainCounts[1:] {
		if uni[n] > uni[1]*1.5 {
			t.Errorf("uniform workload at %d domains: elapsed %.4fs, want <= 1.5x single-domain %.4fs",
				n, uni[n], uni[1])
		}
	}
}

// TestDeterminismDomains covers the E6 harness: placement, steals, and
// the per-domain metric family must be byte-identical for every worker
// count.
func TestDeterminismDomains(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	assertIdenticalAcrossJobs(t, "domains", func(opt Options) ([]string, error) {
		res, err := RunDomains(opt)
		if err != nil {
			return nil, err
		}
		var b bytes.Buffer
		if err := res.Telemetry.WritePrometheus(&b); err != nil {
			return nil, err
		}
		return []string{res.Table().String(), b.String()}, nil
	})
}
