package experiments

import (
	"fmt"

	"rdasched/internal/core"
	"rdasched/internal/perf"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
	"rdasched/internal/report"
	"rdasched/internal/sim"
	"rdasched/internal/telemetry"
)

// E6 — multi-domain scheduling: the demand-aware placer and cross-domain
// steal against a single global admission domain. The paper's scheduler
// treats the LLC as one shared pool; real server parts split it into
// per-CCX/sub-NUMA slices. This harness sweeps the domain count over two
// synthetic workloads with opposite skew:
//
//   - uniform: every process declares the same mid-sized working set, so
//     any split of the machine admits the same mix and sharding can only
//     add capacity fragmentation;
//   - skewed: a few cache hogs — each declaring more than half the LLC —
//     plus a crowd of small periods. One global Strict domain serializes
//     the hogs (two never fit together), while split domains admit one
//     hog each through the empty-load safeguard, overlapping them; the
//     small periods ride the remaining capacity and migrate to whichever
//     domain drains first via the steal scan.
//
// The makespan gap on the skewed workload is the experiment's point: the
// demand-aware placement beats the single pool exactly when demand skew
// gives the placer something to exploit, and roughly breaks even when it
// does not.

// DomainCounts is the swept number of LLC admission domains.
var DomainCounts = []int{1, 2, 4}

// domainSpec builds one single-threaded process around one declared
// period, bracketed by undeclared setup/teardown like the BLAS kernels:
// blocked, cache-resident compute (high private-hit fraction, almost no
// streaming) so the declared working set is an honest demand.
func domainSpec(name string, wss pp.Bytes, instr float64, reuse pp.Reuse) proc.Spec {
	setup := proc.Phase{
		Name: name + "-init", Instr: instr * 0.01, WSS: wss, Reuse: pp.ReuseLow,
		AccessesPerInstr: 0.4, PrivateHitFrac: 0.9, StreamFrac: 1.0,
	}
	work := proc.Phase{
		Name: name, Instr: instr, WSS: wss, Reuse: reuse,
		AccessesPerInstr: 0.3, PrivateHitFrac: 0.85, StreamFrac: 0.05,
		FlopsPerInstr: 0.5, Declared: true,
	}
	fini := proc.Phase{
		Name: name + "-fini", Instr: instr * 0.005, WSS: pp.KB(64), Reuse: pp.ReuseLow,
		AccessesPerInstr: 0.2, PrivateHitFrac: 0.95, StreamFrac: 1.0,
	}
	return proc.Spec{Name: name, Threads: 1, Program: proc.Program{setup, work, fini}}
}

// DomainUniform is the no-skew control: twelve processes (one per Table 1
// core) each declaring an eighth of the LLC, so at every domain count the
// same number fit concurrently and placement has nothing to exploit.
func DomainUniform() proc.Workload {
	w := proc.Workload{Name: "domain-uniform"}
	for i := 0; i < 12; i++ {
		w.Procs = append(w.Procs,
			domainSpec(fmt.Sprintf("mid-%d", i), pp.KB(1920), 1.2e9, pp.ReuseHigh))
	}
	return w
}

// DomainSkewed is the skewed workload: four hogs each declaring 60% of
// the LLC (9 MiB of 15 MiB) and sixteen small periods at 1/16 of it. A
// single Strict domain can never co-admit two hogs; per-domain capacity
// splits make every hog oversized, so the empty-load safeguard admits one
// per drained domain and the hogs overlap.
func DomainSkewed() proc.Workload {
	w := proc.Workload{Name: "domain-skewed"}
	for i := 0; i < 4; i++ {
		w.Procs = append(w.Procs,
			domainSpec(fmt.Sprintf("hog-%d", i), pp.KB(9216), 3e9, pp.ReuseHigh))
	}
	for i := 0; i < 16; i++ {
		w.Procs = append(w.Procs,
			domainSpec(fmt.Sprintf("small-%d", i), pp.KB(960), 4.5e8, pp.ReuseMed))
	}
	return w
}

// domainStealAge derives the steal threshold from the workload's
// timescale, like chaosTimeouts does for the lease: a waiter ages once
// it has been parked for a small fraction of the longest declared phase,
// so the scan fires many times within a hog's runtime at every -scale.
func domainStealAge(w proc.Workload) sim.Duration {
	var maxInstr float64
	for _, s := range w.Procs {
		for _, ph := range s.Program {
			if ph.Declared && ph.Instr > maxInstr {
				maxInstr = ph.Instr
			}
		}
	}
	ideal := maxInstr / 1.9e9 // seconds at 1 IPC on the Table 1 clock
	return sim.FromSeconds(ideal / 16)
}

// DomainRow is one (workload, domain count) measurement.
type DomainRow struct {
	Workload string
	Domains  int
	Mean     perf.Metrics
	StdDev   perf.Metrics
}

// DomainResult is the E6 dataset.
type DomainResult struct {
	Rows []DomainRow
	// Telemetry merges every cell's registry in cell order; the
	// rda_domain_* family appears here for multi-domain cells.
	Telemetry *telemetry.Registry
}

// RunDomains measures both workloads at every domain count under
// RDA:Strict. The (workload, domains, repetition) replications run
// concurrently on opt.Jobs workers; placement and steal decisions ride
// the virtual clock, so the table is bit-identical for every worker
// count.
func RunDomains(opt Options) (*DomainResult, error) {
	opt = opt.normalized()
	// Always instrumented, like E4/E5: the per-domain load/steal counters
	// flow through the telemetry registry as well as the table.
	opt.Telemetry = true
	var cells []cell
	for _, base := range []proc.Workload{DomainUniform(), DomainSkewed()} {
		w := scaleWorkload(base, opt.Scale)
		age := domainStealAge(w)
		for _, n := range DomainCounts {
			cells = append(cells, cell{
				label: fmt.Sprintf("domains %s n %d", base.Name, n),
				w:     w,
				rc: perf.RunConfig{
					Machine:     opt.Machine,
					Policy:      core.StrictPolicy{},
					Repetitions: opt.Repetitions,
					JitterFrac:  opt.JitterFrac,
					Domains:     n,
					StealAge:    age,
				},
			})
		}
	}
	ms, err := measure(cells, opt)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	res := &DomainResult{Telemetry: telemetry.NewRegistry()}
	i := 0
	for _, name := range []string{"domain-uniform", "domain-skewed"} {
		for _, n := range DomainCounts {
			res.Rows = append(res.Rows, DomainRow{Workload: name, Domains: n,
				Mean: ms[i].Mean, StdDev: ms[i].StdDev})
			res.Telemetry.Merge(ms[i].Mean.Telemetry)
			i++
		}
	}
	return res, nil
}

// Table renders the E6 domain table. Speedup is against the same
// workload's single-domain row, so >1.00x means sharding won.
func (r *DomainResult) Table() *report.Table {
	t := report.NewTable(
		"E6: multi-domain demand-aware placement vs one global domain",
		"workload", "domains", "elapsed s", "speedup", "GFLOPS",
		"DRAM accesses", "placements", "steals", "max wait s")
	baseline := map[string]float64{}
	for _, row := range r.Rows {
		if row.Domains == 1 {
			baseline[row.Workload] = row.Mean.ElapsedSec
		}
	}
	for _, row := range r.Rows {
		speedup := "-"
		if b := baseline[row.Workload]; b > 0 && row.Mean.ElapsedSec > 0 {
			speedup = fmt.Sprintf("%.2fx", b/row.Mean.ElapsedSec)
		}
		t.AddRow(row.Workload,
			fmt.Sprintf("%d", row.Domains),
			fmt.Sprintf("%.3f", row.Mean.ElapsedSec),
			speedup,
			fmt.Sprintf("%.2f", row.Mean.GFLOPS),
			fmt.Sprintf("%.3g", row.Mean.DRAMAccesses),
			fmt.Sprintf("%.1f", row.Mean.DomainPlacements),
			fmt.Sprintf("%.1f", row.Mean.DomainSteals),
			fmt.Sprintf("%.4f", row.Mean.MaxWaitSec))
	}
	return t
}
