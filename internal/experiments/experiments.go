// Package experiments contains one harness per table and figure of the
// paper's evaluation (§4), built on the workload definitions, the
// machine model, the RDA scheduler, the profiler, and the regression
// toolkit. cmd/experiments and the repository benchmarks are thin
// wrappers around this package; EXPERIMENTS.md records the outputs next
// to the paper's numbers.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"rdasched/internal/core"
	"rdasched/internal/machine"
	"rdasched/internal/obsrv"
	"rdasched/internal/perf"
	"rdasched/internal/proc"
	"rdasched/internal/report"
	"rdasched/internal/runner"
	"rdasched/internal/telemetry/blame"
	"rdasched/internal/telemetry/trace"
)

// Options configures an experiment run.
type Options struct {
	// Machine is the hardware model; zero value selects Table 1.
	Machine machine.Config
	// Repetitions per measurement (the paper uses 4).
	Repetitions int
	// JitterFrac is the run-to-run variation (the paper observes ~2%).
	JitterFrac float64
	// Seed fixes all randomness.
	Seed uint64
	// Scale shrinks workloads for quick runs: process counts and phase
	// lengths are multiplied by Scale (0 or 1 = full size). Scaled runs
	// preserve shapes, not magnitudes; the committed EXPERIMENTS.md uses
	// full size.
	Scale float64
	// Jobs bounds how many replications run concurrently; 0 selects
	// runtime.GOMAXPROCS(0). Results are bit-identical for every value of
	// Jobs, including 1: each replication derives its randomness from
	// Seed and its stable job index (runner.Seed), never from execution
	// order, and results are collected by index.
	Jobs int
	// Telemetry attaches a metrics registry to every replication; cell
	// aggregates then carry a merged registry in Mean.Telemetry. Purely
	// observational — tables and goldens are unchanged.
	Telemetry bool
	// TraceDir, when non-empty, writes one Chrome trace-event JSON file
	// per cell (named after the cell label) into the directory, loadable
	// in Perfetto or chrome://tracing. Implies Telemetry. Files are
	// written in cell order with virtual-clock timestamps only, so a
	// trace is bit-identical for every Jobs value. With ObsDir also set,
	// traces additionally carry the SLO burn-rate counter tracks.
	TraceDir string
	// ObsDir, when non-empty, subscribes the causal wait-attribution
	// collector and an admission-latency SLO monitor to every scheduled
	// replication and writes one self-contained HTML observability
	// report per cell (interference heatmap, wait-blame top-K table,
	// burn-rate timeline) into the directory. Implies Telemetry; like
	// TraceDir, the reports ride the virtual clock only and are
	// bit-identical for every Jobs value.
	ObsDir string
	// SLO overrides the admission-latency objective ObsDir evaluates
	// (nil selects blame.DefaultSLOConfig).
	SLO *blame.SLOConfig
	// Governor, when non-nil and enabled, attaches the adaptive
	// admission governor to every scheduled cell (cells running the
	// Linux default policy have no scheduler and are unaffected). The
	// E5 overload sweep configures its own per-cell governors and
	// ignores this option.
	Governor *core.GovernorConfig
	// Obsrv, when non-nil, attaches the live introspection server to
	// every replication: scrape /metrics and /state while an E-series
	// sweep runs. Purely observational — results are bit-identical with
	// or without it. See perf.RunConfig.Obsrv.
	Obsrv *obsrv.Server
	// Pace throttles virtual time to Pace virtual seconds per wall
	// second in every replication (0 = unthrottled). Mostly useful with
	// Obsrv and Jobs=1 to watch a sweep live.
	Pace float64
}

// Defaults returns the paper's measurement setup: Table 1 machine, four
// repetitions, 2% jitter.
func Defaults() Options {
	return Options{
		Machine:     machine.DefaultConfig(),
		Repetitions: 4,
		JitterFrac:  0.02,
		Seed:        1,
	}
}

func (o Options) normalized() Options {
	if o.Machine.Cores == 0 {
		o.Machine = machine.DefaultConfig()
	}
	if o.Repetitions <= 0 {
		o.Repetitions = 1
	}
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	if o.Jobs <= 0 {
		o.Jobs = runtime.GOMAXPROCS(0)
	}
	return o
}

// cell is one measured configuration (a sweep point under a policy) in
// a harness's fixed enumeration order. The rc.Seed field is left zero:
// measure derives each replication's seed from the experiment seed and
// the replication's global job index.
type cell struct {
	label string
	w     proc.Workload
	rc    perf.RunConfig
}

// measured is a cell's aggregate over its repetitions.
type measured struct {
	Mean, StdDev perf.Metrics
}

// measure fans every repetition of every cell out across opt.Jobs
// workers and returns per-cell aggregates in cell order. Replications
// are flattened to a stable global job index (cells in order,
// repetitions within a cell), and job i runs with the derived seed
// runner.Seed(opt.Seed, i): the measurement each job produces is a pure
// function of its coordinates, so the worker count can never change the
// result — only how long it takes. A replication that panics surfaces
// as a labeled error; its siblings still complete.
func measure(cells []cell, opt Options) ([]measured, error) {
	var jobCell, jobRep []int
	for ci := range cells {
		for r := 0; r < cells[ci].rc.Reps(); r++ {
			jobCell = append(jobCell, ci)
			jobRep = append(jobRep, r)
		}
	}
	samples, err := runner.Map(opt.Jobs, len(jobCell), func(i int) (perf.Metrics, error) {
		c := cells[jobCell[i]]
		rc := c.rc
		rc.Seed = runner.Seed(opt.Seed, uint64(i))
		rc.Telemetry = rc.Telemetry || opt.Telemetry || opt.TraceDir != "" || opt.ObsDir != ""
		rc.Trace = rc.Trace || opt.TraceDir != ""
		if opt.ObsDir != "" && rc.Policy != nil {
			rc.Blame = true
			if rc.SLO == nil {
				rc.SLO = opt.sloConfig()
			}
		}
		if rc.Governor == nil && opt.Governor != nil && rc.Policy != nil {
			rc.Governor = opt.Governor
		}
		rc.Obsrv, rc.Pace = opt.Obsrv, opt.Pace
		m, err := perf.Sample(c.w, rc, 0)
		if err != nil {
			return perf.Metrics{}, fmt.Errorf("%s (rep %d): %w", c.label, jobRep[i], err)
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]measured, len(cells))
	idx := 0
	for ci := range cells {
		n := cells[ci].rc.Reps()
		mean, sd, err := perf.Aggregate(samples[idx : idx+n])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cells[ci].label, err)
		}
		out[ci] = measured{Mean: mean, StdDev: sd}
		idx += n
	}
	if opt.TraceDir != "" {
		if err := writeTraces(cells, out, opt.TraceDir); err != nil {
			return nil, err
		}
	}
	if opt.ObsDir != "" {
		if err := writeObsReports(cells, out, opt.ObsDir); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sloConfig returns the admission-latency objective ObsDir evaluates.
func (o Options) sloConfig() *blame.SLOConfig {
	if o.SLO != nil {
		cfg := *o.SLO
		return &cfg
	}
	cfg := blame.DefaultSLOConfig()
	return &cfg
}

// traceFileName derives a cell's trace file name from its label:
// lowercased, with every non-alphanumeric run collapsed to one dash.
func traceFileName(label string) string {
	var b strings.Builder
	dash := false
	for _, r := range strings.ToLower(label) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '.':
			if dash && b.Len() > 0 {
				b.WriteByte('-')
			}
			dash = false
			b.WriteRune(r)
		default:
			dash = true
		}
	}
	return b.String() + ".json"
}

// writeTraces exports one Chrome trace file per cell, in cell order.
// Cells that also carry an SLO evaluation (ObsDir runs) get the
// burn-rate counter tracks alongside the spans; without one the file
// is byte-identical to the historical WriteChrome output.
func writeTraces(cells []cell, ms []measured, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	for ci := range cells {
		path := filepath.Join(dir, traceFileName(cells[ci].label))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
		if slo := ms[ci].Mean.SLO; slo != nil {
			err = trace.WriteChromeWithCounters(f, ms[ci].Mean.Spans, slo.TraceCounters())
		} else {
			err = trace.WriteChrome(f, ms[ci].Mean.Spans)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("experiments: trace %s: %w", path, err)
		}
	}
	return nil
}

// obsMeta labels a cell's HTML report: the policy from the run config
// (nil is the Linux default, which has no scheduler and an empty
// report) and process names from the workload, in workload order —
// the decision stream's Proc is the workload process index.
func obsMeta(c cell) blame.ReportMeta {
	pol := "default"
	if c.rc.Policy != nil {
		pol = c.rc.Policy.Name()
	}
	meta := blame.ReportMeta{Workload: c.w.Name, Policy: pol}
	for _, s := range c.w.Procs {
		meta.Procs = append(meta.Procs, s.Name)
	}
	return meta
}

// writeObsReports exports one self-contained HTML observability report
// per cell, in cell order, named after the cell label.
func writeObsReports(cells []cell, ms []measured, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	for ci := range cells {
		rpt := ms[ci].Mean.Blame
		if rpt == nil {
			rpt = &blame.Report{}
		}
		name := strings.TrimSuffix(traceFileName(cells[ci].label), ".json") + ".html"
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
		err = blame.WriteHTML(f, obsMeta(cells[ci]), rpt, ms[ci].Mean.SLO)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("experiments: report %s: %w", path, err)
		}
	}
	return nil
}

// scaleWorkload shrinks a workload's per-phase instruction counts. The
// process count, thread counts, working sets, and phase structure are
// preserved — those define the contention the experiments measure;
// shorter phases only shorten virtual time.
func scaleWorkload(w proc.Workload, scale float64) proc.Workload {
	if scale >= 1 {
		return w
	}
	return proc.ScaleInstr(w, scale)
}

// Policies returns the three compared scheduling configurations in
// figure order: the Linux default, RDA:Strict, RDA:Compromise.
func Policies() []struct {
	Name   string
	Policy core.Policy
} {
	return []struct {
		Name   string
		Policy core.Policy
	}{
		{"default", nil},
		{"strict", core.StrictPolicy{}},
		{"compromise", core.NewCompromise()},
	}
}

// PolicyRow is one (workload, policy) measurement.
type PolicyRow struct {
	Workload string
	Policy   string
	Mean     perf.Metrics
	StdDev   perf.Metrics
}

// RunPolicyComparison measures the given workloads under all three
// policies — the data behind Figures 7, 8, 9, and 10. The (workload,
// policy, repetition) replications run concurrently on opt.Jobs
// workers.
func RunPolicyComparison(ws []proc.Workload, opt Options) ([]PolicyRow, error) {
	opt = opt.normalized()
	var cells []cell
	for _, w := range ws {
		sw := scaleWorkload(w, opt.Scale)
		for _, p := range Policies() {
			cells = append(cells, cell{
				label: fmt.Sprintf("%s under %s", w.Name, p.Name),
				w:     sw,
				rc: perf.RunConfig{
					Machine:     opt.Machine,
					Policy:      p.Policy,
					Repetitions: opt.Repetitions,
					JitterFrac:  opt.JitterFrac,
				},
			})
		}
	}
	ms, err := measure(cells, opt)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	rows := make([]PolicyRow, 0, len(cells))
	i := 0
	for _, w := range ws {
		for _, p := range Policies() {
			rows = append(rows, PolicyRow{Workload: w.Name, Policy: p.Name,
				Mean: ms[i].Mean, StdDev: ms[i].StdDev})
			i++
		}
	}
	return rows, nil
}

// metricOf extracts a named figure metric from a measurement.
func metricOf(m perf.Metrics, metric string) (float64, error) {
	switch metric {
	case "system-energy":
		return m.SystemJ, nil
	case "dram-energy":
		return m.DRAMJ, nil
	case "gflops":
		return m.GFLOPS, nil
	case "gflops-per-watt":
		return m.GFLOPSPerWatt, nil
	default:
		return 0, fmt.Errorf("experiments: unknown metric %q", metric)
	}
}

// figureSpec ties each policy-comparison figure to its metric.
var figureSpec = map[int]struct {
	Metric string
	Title  string
}{
	7:  {"system-energy", "Figure 7: system energy (J) — CPU + cache + DRAM"},
	8:  {"dram-energy", "Figure 8: DRAM-only energy (J)"},
	9:  {"gflops", "Figure 9: performance (GFLOPS)"},
	10: {"gflops-per-watt", "Figure 10: system energy efficiency (GFLOPS/Watt)"},
}

// FigureTable renders one of Figures 7–10 from comparison rows.
func FigureTable(fig int, rows []PolicyRow) (*report.Table, error) {
	spec, ok := figureSpec[fig]
	if !ok {
		return nil, fmt.Errorf("experiments: figure %d is not a policy-comparison figure", fig)
	}
	t := report.NewTable(spec.Title, "workload", "default", "strict", "compromise",
		"strict/default", "compromise/default")
	byWorkload := map[string]map[string]float64{}
	var order []string
	for _, r := range rows {
		if byWorkload[r.Workload] == nil {
			byWorkload[r.Workload] = map[string]float64{}
			order = append(order, r.Workload)
		}
		v, err := metricOf(r.Mean, spec.Metric)
		if err != nil {
			return nil, err
		}
		byWorkload[r.Workload][r.Policy] = v
	}
	for _, w := range order {
		m := byWorkload[w]
		ratio := func(p string) string {
			if m["default"] == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2fx", m[p]/m["default"])
		}
		t.AddRow(w,
			fmt.Sprintf("%.4g", m["default"]),
			fmt.Sprintf("%.4g", m["strict"]),
			fmt.Sprintf("%.4g", m["compromise"]),
			ratio("strict"), ratio("compromise"))
	}
	return t, nil
}
