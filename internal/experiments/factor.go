package experiments

import (
	"fmt"

	"rdasched/internal/core"
	"rdasched/internal/perf"
	"rdasched/internal/proc"
	"rdasched/internal/report"
	"rdasched/internal/workloads"
)

// Oversubscription-factor sweep: the paper fixes the compromise policy's
// factor at 2, "shown to be effective in attaining the best balance
// between energy efficiency and performance", without publishing the
// sweep. RunFactorSweep reproduces that tuning study across the
// high-reuse workloads where the choice matters.

// FactorPoint is one (workload, factor) measurement.
type FactorPoint struct {
	Workload string
	Factor   float64
	Mean     perf.Metrics
}

// FactorSweepResult is the sweep dataset.
type FactorSweepResult struct {
	Factors []float64
	Points  []FactorPoint
}

// FactorSweepValues are the swept oversubscription factors; 1.0 is
// equivalent to strict.
var FactorSweepValues = []float64{1.0, 1.5, 2.0, 3.0, 4.0}

// RunFactorSweep measures the compromise policy at each factor on the
// BLAS-3 and water_nsquared workloads, fanning the sweep cells out on
// opt.Jobs workers.
func RunFactorSweep(opt Options) (*FactorSweepResult, error) {
	opt = opt.normalized()
	res := &FactorSweepResult{Factors: FactorSweepValues}
	var cells []cell
	var names []string
	for _, w := range []proc.Workload{workloads.BLAS3(), workloads.WaterNsq()} {
		sw := scaleWorkload(w, opt.Scale)
		for _, x := range FactorSweepValues {
			names = append(names, w.Name)
			cells = append(cells, cell{
				label: fmt.Sprintf("factor sweep %s x=%v", w.Name, x),
				w:     sw,
				rc: perf.RunConfig{
					Machine:     opt.Machine,
					Policy:      core.CompromisePolicy{Factor: x},
					Repetitions: opt.Repetitions,
					JitterFrac:  opt.JitterFrac,
				},
			})
		}
	}
	ms, err := measure(cells, opt)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	for i, m := range ms {
		res.Points = append(res.Points, FactorPoint{
			Workload: names[i],
			Factor:   FactorSweepValues[i%len(FactorSweepValues)],
			Mean:     m.Mean,
		})
	}
	return res, nil
}

// Table renders the sweep.
func (r *FactorSweepResult) Table() *report.Table {
	t := report.NewTable("Oversubscription factor sweep (compromise policy; x=1 ≡ strict)",
		"workload", "factor", "system J", "GFLOPS", "GFLOPS/W")
	for _, p := range r.Points {
		t.AddRow(p.Workload,
			fmt.Sprintf("%.2f", p.Factor),
			fmt.Sprintf("%.1f", p.Mean.SystemJ),
			fmt.Sprintf("%.3f", p.Mean.GFLOPS),
			fmt.Sprintf("%.4f", p.Mean.GFLOPSPerWatt))
	}
	return t
}

// Best returns the factor with the highest efficiency for a workload.
func (r *FactorSweepResult) Best(workload string) (factor, gfpw float64) {
	for _, p := range r.Points {
		if p.Workload == workload && p.Mean.GFLOPSPerWatt > gfpw {
			factor, gfpw = p.Factor, p.Mean.GFLOPSPerWatt
		}
	}
	return
}
