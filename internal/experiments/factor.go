package experiments

import (
	"fmt"

	"rdasched/internal/core"
	"rdasched/internal/perf"
	"rdasched/internal/proc"
	"rdasched/internal/report"
	"rdasched/internal/workloads"
)

// Oversubscription-factor sweep: the paper fixes the compromise policy's
// factor at 2, "shown to be effective in attaining the best balance
// between energy efficiency and performance", without publishing the
// sweep. RunFactorSweep reproduces that tuning study across the
// high-reuse workloads where the choice matters.

// FactorPoint is one (workload, factor) measurement.
type FactorPoint struct {
	Workload string
	Factor   float64
	Mean     perf.Metrics
}

// FactorSweepResult is the sweep dataset.
type FactorSweepResult struct {
	Factors []float64
	Points  []FactorPoint
}

// FactorSweepValues are the swept oversubscription factors; 1.0 is
// equivalent to strict.
var FactorSweepValues = []float64{1.0, 1.5, 2.0, 3.0, 4.0}

// RunFactorSweep measures the compromise policy at each factor on the
// BLAS-3 and water_nsquared workloads.
func RunFactorSweep(opt Options) (*FactorSweepResult, error) {
	opt = opt.normalized()
	res := &FactorSweepResult{Factors: FactorSweepValues}
	for _, w := range []proc.Workload{workloads.BLAS3(), workloads.WaterNsq()} {
		sw := scaleWorkload(w, opt.Scale)
		for _, x := range FactorSweepValues {
			mean, _, err := perf.Run(sw, perf.RunConfig{
				Machine:     opt.Machine,
				Policy:      core.CompromisePolicy{Factor: x},
				Repetitions: opt.Repetitions,
				JitterFrac:  opt.JitterFrac,
				Seed:        opt.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: factor sweep %s x=%v: %w", w.Name, x, err)
			}
			res.Points = append(res.Points, FactorPoint{Workload: w.Name, Factor: x, Mean: mean})
		}
	}
	return res, nil
}

// Table renders the sweep.
func (r *FactorSweepResult) Table() *report.Table {
	t := report.NewTable("Oversubscription factor sweep (compromise policy; x=1 ≡ strict)",
		"workload", "factor", "system J", "GFLOPS", "GFLOPS/W")
	for _, p := range r.Points {
		t.AddRow(p.Workload,
			fmt.Sprintf("%.2f", p.Factor),
			fmt.Sprintf("%.1f", p.Mean.SystemJ),
			fmt.Sprintf("%.3f", p.Mean.GFLOPS),
			fmt.Sprintf("%.4f", p.Mean.GFLOPSPerWatt))
	}
	return t
}

// Best returns the factor with the highest efficiency for a workload.
func (r *FactorSweepResult) Best(workload string) (factor, gfpw float64) {
	for _, p := range r.Points {
		if p.Workload == workload && p.Mean.GFLOPSPerWatt > gfpw {
			factor, gfpw = p.Factor, p.Mean.GFLOPSPerWatt
		}
	}
	return
}
