package cache

import (
	"fmt"

	"rdasched/internal/pp"
)

// Level identifies a position in the cache hierarchy.
type Level int

const (
	L1 Level = iota
	L2
	LLC
	// Memory is the "miss everywhere" level returned by Hierarchy.Access.
	Memory
)

func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case LLC:
		return "LLC"
	case Memory:
		return "Memory"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// HierarchyConfig is the full machine cache geometry: private L1/L2 per
// core and one shared LLC. The defaults mirror Table 1 of the paper.
type HierarchyConfig struct {
	Cores      int
	L1         Config
	L2         Config
	LLC        Config
	MemLatency int // cycles to DRAM on a full miss
}

// E5_2420 returns the Table 1 machine cache geometry: per-core 32 KiB L1D
// and 256 KiB L2, and a 15360 KiB shared L3, 64-byte lines throughout.
func E5_2420() HierarchyConfig {
	return HierarchyConfig{
		Cores:      12,
		L1:         Config{Name: "L1D", Size: 32 * pp.KiB, LineSize: 64, Assoc: 8, Policy: LRU, LatencyCyc: 4},
		L2:         Config{Name: "L2", Size: 256 * pp.KiB, LineSize: 64, Assoc: 8, Policy: LRU, LatencyCyc: 12},
		LLC:        Config{Name: "LLC", Size: 15360 * pp.KiB, LineSize: 64, Assoc: 20, Policy: LRU, LatencyCyc: 30},
		MemLatency: 180,
	}
}

// Validate checks every level.
func (hc HierarchyConfig) Validate() error {
	if hc.Cores <= 0 {
		return fmt.Errorf("cache: hierarchy needs at least one core, got %d", hc.Cores)
	}
	for _, cfg := range []Config{hc.L1, hc.L2, hc.LLC} {
		if err := cfg.Validate(); err != nil {
			return err
		}
	}
	if hc.MemLatency <= 0 {
		return fmt.Errorf("cache: non-positive memory latency %d", hc.MemLatency)
	}
	return nil
}

// Hierarchy is a set of per-core private caches in front of a shared LLC.
// Access routing is inclusive and allocate-on-miss at every level, the
// standard approximation for Sandy Bridge-era Intel parts.
type Hierarchy struct {
	cfg HierarchyConfig
	l1  []*Cache
	l2  []*Cache
	llc *Cache
}

// NewHierarchy builds the hierarchy; it panics on invalid geometry.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Hierarchy{cfg: cfg, llc: New(cfg.LLC)}
	for i := 0; i < cfg.Cores; i++ {
		h.l1 = append(h.l1, New(cfg.L1))
		h.l2 = append(h.l2, New(cfg.L2))
	}
	return h
}

// Config returns the hierarchy geometry.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// Access sends one reference from core to addr and returns the level that
// served it plus the access latency in cycles.
func (h *Hierarchy) Access(core int, addr uint64) (Level, int) {
	if core < 0 || core >= h.cfg.Cores {
		panic(fmt.Sprintf("cache: access from core %d of %d", core, h.cfg.Cores))
	}
	if h.l1[core].Access(addr) {
		return L1, h.cfg.L1.LatencyCyc
	}
	if h.l2[core].Access(addr) {
		return L2, h.cfg.L2.LatencyCyc
	}
	if h.llc.Access(addr) {
		return LLC, h.cfg.LLC.LatencyCyc
	}
	return Memory, h.cfg.MemLatency
}

// LLCStats returns the shared-cache counters.
func (h *Hierarchy) LLCStats() Stats { return h.llc.Stats() }

// L1Stats returns one core's L1 counters.
func (h *Hierarchy) L1Stats(core int) Stats { return h.l1[core].Stats() }

// L2Stats returns one core's L2 counters.
func (h *Hierarchy) L2Stats(core int) Stats { return h.l2[core].Stats() }

// LLCOccupancy returns resident bytes in the shared cache.
func (h *Hierarchy) LLCOccupancy() pp.Bytes { return h.llc.OccupancyBytes() }

// ResetStats clears counters on every level.
func (h *Hierarchy) ResetStats() {
	h.llc.ResetStats()
	for i := range h.l1 {
		h.l1[i].ResetStats()
		h.l2[i].ResetStats()
	}
}

// Flush invalidates every level (e.g., between profiler windows when
// cold-start behaviour is wanted).
func (h *Hierarchy) Flush() {
	h.llc.Flush()
	for i := range h.l1 {
		h.l1[i].Flush()
		h.l2[i].Flush()
	}
}
