// Package cache implements a trace-driven, set-associative cache simulator
// with a configurable multi-level hierarchy (private L1/L2 per core plus a
// shared last-level cache). It substitutes for the real E5-2420 cache
// hierarchy the paper measured: the profiler replays load/store address
// streams through it to measure footprints, working sets, and reuse, and
// the validation suite uses it to sanity-check the analytic contention
// model in internal/machine.
package cache

import (
	"fmt"

	"rdasched/internal/pp"
)

// ReplacementPolicy selects the victim line within a set.
type ReplacementPolicy int

const (
	// LRU evicts the least recently used line (what the analytic model
	// assumes and what Intel's LLC approximates).
	LRU ReplacementPolicy = iota
	// FIFO evicts the oldest-filled line.
	FIFO
	// Random evicts a uniformly random line (needs an RNG; falls back to a
	// deterministic counter when none is supplied so results stay
	// reproducible).
	Random
)

func (p ReplacementPolicy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "Random"
	default:
		return fmt.Sprintf("ReplacementPolicy(%d)", int(p))
	}
}

// Config describes one cache level.
type Config struct {
	Name       string
	Size       pp.Bytes
	LineSize   pp.Bytes
	Assoc      int // ways per set
	Policy     ReplacementPolicy
	LatencyCyc int // access latency in core cycles (hit cost)
}

// Validate checks geometric consistency: sizes must be powers of two and
// divide evenly into sets.
func (c Config) Validate() error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry %+v", c.Name, c)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineSize)
	}
	lines := c.Size / c.LineSize
	if c.Size%c.LineSize != 0 || lines%pp.Bytes(c.Assoc) != 0 {
		return fmt.Errorf("cache %s: size %d / line %d / assoc %d does not form whole sets",
			c.Name, c.Size, c.LineSize, c.Assoc)
	}
	// Set counts need not be a power of two: the E5-2420's 15360 KiB
	// 20-way LLC has 12288 sets. Indexing uses modulo in that case.
	return nil
}

// Stats counts accesses for one cache level.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// HitRate returns hits/accesses, or 0 for an untouched cache.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	// stamp orders lines for LRU (last touch) or FIFO (fill time).
	stamp uint64
}

// Cache is a single set-associative cache level.
type Cache struct {
	cfg        Config
	sets       [][]line
	numSets    uint64
	lineShift  uint
	tick       uint64
	randState  uint64
	stats      Stats
	population int // valid lines
}

// New builds a cache from cfg. It panics on invalid geometry (construction
// with bad geometry is a programming error, not a runtime condition).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	lines := int64(cfg.Size / cfg.LineSize)
	numSets := lines / int64(cfg.Assoc)
	c := &Cache{
		cfg:       cfg,
		sets:      make([][]line, numSets),
		numSets:   uint64(numSets),
		randState: 0x2545f4914f6cdd1d,
	}
	backing := make([]line, lines)
	for i := range c.sets {
		c.sets[i], backing = backing[:cfg.Assoc:cfg.Assoc], backing[cfg.Assoc:]
	}
	for sz := cfg.LineSize; sz > 1; sz >>= 1 {
		c.lineShift++
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int { return c.population }

// OccupancyBytes returns the bytes currently resident.
func (c *Cache) OccupancyBytes() pp.Bytes {
	return pp.Bytes(c.population) * c.cfg.LineSize
}

// Lines returns the total line capacity.
func (c *Cache) Lines() int { return len(c.sets) * c.cfg.Assoc }

func (c *Cache) indexTag(addr uint64) (set uint64, tag uint64) {
	blk := addr >> c.lineShift
	return blk % c.numSets, blk / c.numSets
}

// Access touches addr, returning true on hit. On a miss the line is filled
// (allocate-on-miss for both loads and stores, matching an inclusive
// write-allocate hierarchy) and the victim, if any, is evicted.
func (c *Cache) Access(addr uint64) bool {
	hit, _ := c.AccessEvict(addr)
	return hit
}

// AccessEvict is Access but also reports the evicted line's address (line
// aligned) when an eviction happened. evictedOK is false on hits and on
// fills into invalid ways.
func (c *Cache) AccessEvict(addr uint64) (hit bool, evicted uint64) {
	c.tick++
	c.stats.Accesses++
	setIdx, tag := c.indexTag(addr)
	set := c.sets[setIdx]

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.stats.Hits++
			if c.cfg.Policy == LRU {
				set[i].stamp = c.tick
			}
			return true, 0
		}
	}
	c.stats.Misses++

	// Prefer an invalid way.
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		switch c.cfg.Policy {
		case LRU, FIFO:
			oldest := uint64(1<<64 - 1)
			for i := range set {
				if set[i].stamp < oldest {
					oldest = set[i].stamp
					victim = i
				}
			}
		case Random:
			c.randState ^= c.randState << 13
			c.randState ^= c.randState >> 7
			c.randState ^= c.randState << 17
			victim = int(c.randState % uint64(len(set)))
		}
		c.stats.Evictions++
		evLine := &set[victim]
		evictedAddr := c.reconstruct(setIdx, evLine.tag)
		evLine.tag = tag
		evLine.stamp = c.tick
		return false, evictedAddr
	}
	set[victim] = line{tag: tag, valid: true, stamp: c.tick}
	c.population++
	return false, 0
}

// Probe reports whether addr is resident without updating replacement
// state or statistics.
func (c *Cache) Probe(addr uint64) bool {
	setIdx, tag := c.indexTag(addr)
	for _, l := range c.sets[setIdx] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates all lines and (unlike ResetStats) counts nothing.
func (c *Cache) Flush() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{}
		}
	}
	c.population = 0
}

func (c *Cache) reconstruct(setIdx, tag uint64) uint64 {
	blk := tag*c.numSets + setIdx
	return blk << c.lineShift
}
