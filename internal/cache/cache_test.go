package cache

import (
	"testing"
	"testing/quick"

	"rdasched/internal/pp"
)

func smallCfg() Config {
	return Config{Name: "t", Size: 4 * pp.KiB, LineSize: 64, Assoc: 4, Policy: LRU, LatencyCyc: 1}
}

func TestConfigValidate(t *testing.T) {
	good := smallCfg()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bads := []Config{
		{Name: "zero", Size: 0, LineSize: 64, Assoc: 4},
		{Name: "line", Size: 4096, LineSize: 48, Assoc: 4},
		{Name: "assoc", Size: 4096, LineSize: 64, Assoc: 0},
		{Name: "sets", Size: 4096, LineSize: 64, Assoc: 3}, // 64 lines / 3 not whole
	}
	for _, b := range bads {
		if err := b.Validate(); err == nil {
			t.Errorf("config %q accepted", b.Name)
		}
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with bad geometry did not panic")
		}
	}()
	New(Config{Name: "bad", Size: 100, LineSize: 64, Assoc: 4})
}

func TestColdMissThenHit(t *testing.T) {
	c := New(smallCfg())
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1010) {
		t.Fatal("same-line access missed")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// One set: 256-byte cache, 64-byte lines, 4-way → 1 set.
	c := New(Config{Name: "oneset", Size: 256, LineSize: 64, Assoc: 4, Policy: LRU})
	// Fill ways with lines 0..3 (same set because only one set exists).
	for i := uint64(0); i < 4; i++ {
		c.Access(i * 64)
	}
	c.Access(0) // make line 0 most recent; line 1 now LRU
	hit, evicted := c.AccessEvict(4 * 64)
	if hit {
		t.Fatal("fifth distinct line hit")
	}
	if evicted != 64 {
		t.Fatalf("evicted %#x, want %#x (LRU line 1)", evicted, 64)
	}
	if !c.Probe(0) || c.Probe(64) {
		t.Fatal("LRU victim selection wrong")
	}
}

func TestFIFOEvictionOrder(t *testing.T) {
	c := New(Config{Name: "fifo", Size: 256, LineSize: 64, Assoc: 4, Policy: FIFO})
	for i := uint64(0); i < 4; i++ {
		c.Access(i * 64)
	}
	c.Access(0) // re-touch does NOT rescue line 0 under FIFO
	_, evicted := c.AccessEvict(4 * 64)
	if evicted != 0 {
		t.Fatalf("evicted %#x, want 0 (first-filled)", evicted)
	}
}

func TestRandomPolicyStaysInSet(t *testing.T) {
	c := New(Config{Name: "rnd", Size: 256, LineSize: 64, Assoc: 4, Policy: Random})
	for i := uint64(0); i < 64; i++ {
		c.Access(i * 64)
	}
	if c.Occupancy() != 4 {
		t.Fatalf("occupancy = %d, want 4 (capacity)", c.Occupancy())
	}
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := New(smallCfg())
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		return c.Occupancy() <= c.Lines() && c.OccupancyBytes() <= c.Config().Size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: an access is always a hit if the same line was touched within
// the last (assoc-1) distinct same-set lines under LRU.
func TestLRUReuseWithinAssocAlwaysHits(t *testing.T) {
	c := New(Config{Name: "oneset", Size: 256, LineSize: 64, Assoc: 4, Policy: LRU})
	c.Access(0)
	// Touch assoc-1 = 3 other lines, then line 0 must still be resident.
	c.Access(64)
	c.Access(128)
	c.Access(192)
	if !c.Access(0) {
		t.Fatal("line evicted within associativity window")
	}
}

func TestStatsConservation(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := New(smallCfg())
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses && s.Evictions <= s.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := New(smallCfg())
	c.Access(0)
	before := c.Stats()
	for i := 0; i < 100; i++ {
		c.Probe(0)
		c.Probe(1 << 20)
	}
	if c.Stats() != before {
		t.Fatal("Probe changed statistics")
	}
}

func TestFlush(t *testing.T) {
	c := New(smallCfg())
	for i := uint64(0); i < 32; i++ {
		c.Access(i * 64)
	}
	c.Flush()
	if c.Occupancy() != 0 {
		t.Fatalf("occupancy after flush = %d", c.Occupancy())
	}
	if c.Access(0) {
		t.Fatal("hit after flush")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	// Working set equal to capacity, touched twice round-robin: second
	// sweep must be all hits with LRU and a working set == one set's worth
	// per set (sequential lines map to distinct sets evenly).
	c := New(smallCfg()) // 4 KiB, 64 lines
	for pass := 0; pass < 3; pass++ {
		for i := uint64(0); i < 64; i++ {
			c.Access(i * 64)
		}
	}
	s := c.Stats()
	if s.Misses != 64 {
		t.Fatalf("misses = %d, want 64 (cold only)", s.Misses)
	}
}

func TestWorkingSetExceedsCapacityThrashesLRU(t *testing.T) {
	// Cyclic sweep over capacity+1 sets' worth of lines with LRU
	// produces no hits at all (the classic LRU worst case).
	c := New(Config{Name: "oneset", Size: 256, LineSize: 64, Assoc: 4, Policy: LRU})
	for pass := 0; pass < 4; pass++ {
		for i := uint64(0); i < 5; i++ {
			c.Access(i * 64)
		}
	}
	if got := c.Stats().Hits; got != 0 {
		t.Fatalf("hits = %d, want 0 for cyclic over-capacity sweep", got)
	}
}

func TestHierarchyRouting(t *testing.T) {
	h := NewHierarchy(E5_2420())
	lvl, lat := h.Access(0, 0x10000)
	if lvl != Memory || lat != 180 {
		t.Fatalf("cold access served by %v/%d, want Memory/180", lvl, lat)
	}
	lvl, lat = h.Access(0, 0x10000)
	if lvl != L1 || lat != 4 {
		t.Fatalf("warm access served by %v/%d, want L1/4", lvl, lat)
	}
	// A different core misses privately but hits the shared LLC.
	lvl, lat = h.Access(1, 0x10000)
	if lvl != LLC || lat != 30 {
		t.Fatalf("cross-core access served by %v/%d, want LLC/30", lvl, lat)
	}
}

func TestHierarchyValidate(t *testing.T) {
	cfg := E5_2420()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Table 1 geometry invalid: %v", err)
	}
	cfg.Cores = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero-core hierarchy accepted")
	}
	cfg = E5_2420()
	cfg.MemLatency = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero memory latency accepted")
	}
}

func TestHierarchyPanicsOnBadCore(t *testing.T) {
	h := NewHierarchy(E5_2420())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range core did not panic")
		}
	}()
	h.Access(99, 0)
}

func TestHierarchyFlushAndReset(t *testing.T) {
	h := NewHierarchy(E5_2420())
	for i := uint64(0); i < 1000; i++ {
		h.Access(int(i)%12, i*64)
	}
	h.ResetStats()
	if h.LLCStats().Accesses != 0 {
		t.Fatal("LLC stats not reset")
	}
	if h.LLCOccupancy() == 0 {
		t.Fatal("reset should not flush contents")
	}
	h.Flush()
	if h.LLCOccupancy() != 0 {
		t.Fatal("flush left contents resident")
	}
	if h.L1Stats(0).Accesses != 0 || h.L2Stats(0).Accesses != 0 {
		t.Fatal("per-core stats not reset")
	}
}

func TestLevelString(t *testing.T) {
	if L1.String() != "L1" || L2.String() != "L2" || LLC.String() != "LLC" || Memory.String() != "Memory" {
		t.Fatal("level strings wrong")
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" || Random.String() != "Random" {
		t.Fatal("policy strings wrong")
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := New(Config{Name: "llc", Size: 15360 * pp.KiB, LineSize: 64, Assoc: 20, Policy: LRU})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i) * 64 % (32 << 20))
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := NewHierarchy(E5_2420())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Access(i%12, uint64(i)*64%(32<<20))
	}
}
