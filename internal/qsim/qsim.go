// Package qsim is a discrete, quantum-stepped scheduler simulation used
// to validate the fluid processor-sharing approximation in
// internal/machine. Where the fluid model assumes every ready thread
// continuously receives core share min(1, cores/ready), qsim actually
// schedules: a CFS-style fair run queue (internal/sched) picks the
// minimum-vruntime threads each quantum, runs them on discrete cores,
// charges weighted runtime, and pays explicit cache-reload costs when a
// thread returns to a core after its working set was evicted — the
// literal Figure 1 effect.
//
// qsim also carries its own strict-admission implementation of the RDA
// predicate (Algorithm 1), independent of internal/core, so the paper's
// contribution — not just the default-scheduler baseline — is
// cross-validated between two separately written scheduler substrates.
// The cross-validation tests in this package keep the two models within
// tolerance on makespan and DRAM traffic.
package qsim

import (
	"fmt"
	"math"

	"rdasched/internal/energy"
	"rdasched/internal/machine"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
	"rdasched/internal/sched"
	"rdasched/internal/sim"
	"rdasched/internal/telemetry"
)

// Metric names exported to a Config.Metrics registry. The qsim names are
// deliberately distinct from the internal/core "rda_" family so a merged
// registry keeps the two scheduler substrates side by side.
const (
	MetricWaitSeconds   = "qsim_wait_seconds"           // park time per strict-admission denial
	MetricOccupancy     = "qsim_llc_occupancy_bytes"    // admitted load after each decision
	MetricWaitlistDepth = "qsim_waitlist_depth_threads" // parked threads after each decision
	MetricCtxSwitches   = "qsim_context_switches_total" // quantum switch-ins
	MetricReloadLines   = "qsim_reload_lines_total"     // DRAM lines moved by switch-in reloads
	MetricParked        = "qsim_threads_parked_total"   // strict-admission denials
	MetricWoken         = "qsim_threads_woken_total"    // FIFO wakes after capacity release
)

// Config parameterizes the discrete simulation. Machine supplies the
// hardware constants shared with the fluid model.
type Config struct {
	Machine machine.Config
	// Quantum is the scheduling slice (CFS targeted latency divided by
	// runnable count lands near a few ms; 3 ms is the default here).
	Quantum sim.Duration
	// CtxSwitchCost is the direct cost of one context switch (register
	// state, kernel path) charged per preemption.
	CtxSwitchCost sim.Duration
	// StrictAdmission enables qsim's independent implementation of the
	// RDA strict predicate: declared phases are admitted only while the
	// sum of admitted working sets fits the LLC; denied threads wait off
	// the run queue until a period releases capacity.
	StrictAdmission bool
	// Metrics, when non-nil, receives wait/occupancy/waitlist histograms
	// sampled on every admission decision plus context-switch and reload
	// counters (the qsim_* names above). Purely observational: recording
	// never changes a scheduling decision, and a nil registry costs
	// nothing.
	Metrics *telemetry.Registry
}

// DefaultConfig returns the Table 1 machine with a 3 ms quantum.
func DefaultConfig() Config {
	return Config{
		Machine:       machine.DefaultConfig(),
		Quantum:       3 * sim.Millisecond,
		CtxSwitchCost: 2 * sim.Microsecond,
	}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if c.Quantum <= 0 {
		return fmt.Errorf("qsim: non-positive quantum %v", c.Quantum)
	}
	if c.CtxSwitchCost < 0 {
		return fmt.Errorf("qsim: negative context-switch cost")
	}
	return nil
}

// Result summarizes one discrete run with the same quantities the fluid
// model reports.
type Result struct {
	Elapsed        sim.Duration
	Instructions   float64
	Flops          float64
	LLCAccesses    float64
	DRAMAccesses   float64
	SystemJ        float64
	DRAMJ          float64
	ContextSwitch  uint64
	ReloadAccesses float64 // DRAM lines moved by switch-in reloads alone
}

// GFLOPS returns the aggregate floating-point rate.
func (r *Result) GFLOPS() float64 {
	s := r.Elapsed.Seconds()
	if s == 0 {
		return 0
	}
	return r.Flops / s / 1e9
}

type qthread struct {
	id      int
	proc    int
	program proc.Program
	phase   int
	remain  float64
	ent     sched.Entity
	state   tstate
	// lastRun is the quantum index the thread last occupied a core.
	lastRun int64
	// resident says whether the thread's working set is still in the
	// LLC; evictAccum sums the working-set bytes other threads cycled
	// through the cache while this thread was off-core — once that
	// exceeds the cache's spare capacity, the set is gone (LRU).
	resident   bool
	evictAccum pp.Bytes
	// parkedAt is when strict admission last parked the thread, for the
	// wait-time histogram.
	parkedAt sim.Time
}

type tstate int

const (
	ready tstate = iota
	barrier
	waiting // denied by strict admission, parked off the run queue
	done
)

// Run executes the workload to completion under discrete CFS and returns
// the measurement. Declared flags are ignored (default scheduling).
func Run(w proc.Workload, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	mc := cfg.Machine
	meter := energy.NewMeter(mc.Energy)

	// Instantiate threads.
	var threads []*qthread
	procThreads := make([][]*qthread, len(w.Procs))
	barriers := make([]map[int]int, len(w.Procs))
	for pi, spec := range w.Procs {
		barriers[pi] = make(map[int]int)
		for i := 0; i < spec.Threads; i++ {
			t := &qthread{
				id: len(threads), proc: pi, program: spec.Program,
				remain: spec.Program[0].Instr,
				// Start warm, matching the fluid model's steady-state
				// accounting (neither model charges cold-start misses).
				resident: true,
			}
			t.ent.Weight = int(spec.EffectiveWeight() * float64(sched.NiceZeroWeight))
			threads = append(threads, t)
			procThreads[pi] = append(procThreads[pi], t)
		}
	}

	var rq sched.RunQueue[*qthread]
	var now sim.Time

	// Strict-admission state: per-(proc, phase) period refcounts and the
	// FIFO of denied threads (qsim's independent Algorithm 1).
	type pkey struct{ p, ph int }
	var admitted map[pkey]int
	var admittedLoad pp.Bytes
	var waitq sched.WaitQueue[*qthread]
	if cfg.StrictAdmission {
		admitted = make(map[pkey]int)
	}
	// Metric observation hooks; no-ops when no registry is attached.
	observeDecision := func() {}
	observeWait := func(d sim.Duration) {}
	if cfg.Metrics != nil {
		occHist := cfg.Metrics.Histogram(MetricOccupancy)
		depthHist := cfg.Metrics.Histogram(MetricWaitlistDepth)
		waitHist := cfg.Metrics.Histogram(MetricWaitSeconds)
		woken := cfg.Metrics.Counter(MetricWoken)
		observeDecision = func() {
			occHist.Observe(float64(admittedLoad))
			depthHist.Observe(float64(waitq.Len()))
		}
		observeWait = func(d sim.Duration) {
			waitHist.Observe(d.Seconds())
			woken.Inc()
		}
	}
	// tryAdmit applies the strict predicate to t's current phase; it
	// returns false after parking t on the wait queue.
	tryAdmit := func(t *qthread) bool {
		ph := &t.program[t.phase]
		if admitted == nil || !ph.Declared {
			return true
		}
		defer observeDecision()
		k := pkey{t.proc, t.phase}
		if admitted[k] > 0 {
			admitted[k]++
			return true
		}
		occ := ph.OccupancyBytes()
		if admittedLoad+occ <= mc.LLCCapacity || admittedLoad == 0 {
			admitted[k]++
			admittedLoad += occ
			return true
		}
		t.state = waiting
		t.parkedAt = now
		waitq.Enqueue(t)
		if cfg.Metrics != nil {
			cfg.Metrics.Counter(MetricParked).Inc()
		}
		return false
	}
	// release ends t's participation in its period, freeing capacity and
	// waking FIFO waiters that now fit.
	release := func(t *qthread, phase int) []*qthread {
		if admitted == nil || !t.program[phase].Declared {
			return nil
		}
		k := pkey{t.proc, phase}
		admitted[k]--
		if admitted[k] > 0 {
			return nil
		}
		delete(admitted, k)
		admittedLoad -= t.program[phase].OccupancyBytes()
		defer observeDecision()
		woken := waitq.WakeAll(func(w *qthread) bool {
			wph := &w.program[w.phase]
			wk := pkey{w.proc, w.phase}
			if admitted[wk] > 0 {
				admitted[wk]++
				return true
			}
			occ := wph.OccupancyBytes()
			if admittedLoad+occ <= mc.LLCCapacity || admittedLoad == 0 {
				admitted[wk]++
				admittedLoad += occ
				return true
			}
			return false
		})
		for _, w := range woken {
			observeWait(now.DurationSince(w.parkedAt))
		}
		return woken
	}

	for _, t := range threads {
		if tryAdmit(t) {
			rq.Enqueue(t, &t.ent)
		}
	}

	res := &Result{}
	remainingThreads := len(threads)
	quantum := cfg.Quantum
	qSecs := quantum.Seconds()
	var qIndex int64

	// advancePhase retires t's finished phase, handling barriers.
	var advancePhase func(t *qthread) []*qthread
	advancePhase = func(t *qthread) []*qthread {
		ph := &t.program[t.phase]
		var released []*qthread
		if ph.BarrierAfter && len(procThreads[t.proc]) > 1 {
			barriers[t.proc][t.phase]++
			if barriers[t.proc][t.phase] < len(procThreads[t.proc]) {
				t.state = barrier
				return nil
			}
			delete(barriers[t.proc], t.phase)
			for _, sib := range procThreads[t.proc] {
				if sib != t && sib.state == barrier && sib.phase == t.phase {
					sib.phase++
					if sib.phase >= len(sib.program) {
						sib.state = done
						remainingThreads--
					} else {
						sib.state = ready
						sib.remain = sib.program[sib.phase].Instr
						released = append(released, sib)
					}
				}
			}
		}
		t.phase++
		if t.phase >= len(t.program) {
			t.state = done
			remainingThreads--
			return released
		}
		t.remain = t.program[t.phase].Instr
		return released
	}

	deadline := sim.Time(0).Add(mc.MaxSimTime)
	for remainingThreads > 0 {
		if sim.Time(now) > deadline {
			return nil, fmt.Errorf("qsim: exceeded MaxSimTime at %v with %d threads left", now, remainingThreads)
		}
		// Pick up to cores threads for this quantum.
		var running []*qthread
		for len(running) < mc.Cores {
			t, _, ok := rq.PickNext()
			if !ok {
				break
			}
			running = append(running, t)
		}
		if len(running) == 0 {
			// Only barrier-parked threads remain runnable later — with
			// the whole process at a barrier this cannot happen (the last
			// arrival releases them synchronously), so this is a bug.
			return nil, fmt.Errorf("qsim: no runnable threads with %d unfinished", remainingThreads)
		}
		qIndex++

		// Contention: pressure from this quantum's co-runners, grouped by
		// (process, phase) as in the fluid model.
		type key struct{ p, ph int }
		groups := map[key]pp.Bytes{}
		for _, t := range running {
			k := key{t.proc, t.phase}
			if _, ok := groups[k]; !ok {
				groups[k] = t.program[t.phase].WSS
			}
		}
		var pressure pp.Bytes
		for _, wss := range groups {
			pressure += wss
		}
		residency := 1.0
		if pressure > mc.LLCCapacity {
			residency = float64(mc.LLCCapacity) / float64(pressure)
		}
		rEff := math.Pow(residency, mc.ResidencyExponent)

		// Execute the quantum.
		var llcAcc, dramAcc, busy float64
		for _, t := range running {
			ph := &t.program[t.phase]
			h := (1 - ph.StreamFrac) * mc.HMax[ph.Reuse] * rEff
			llcPerInstr := ph.AccessesPerInstr * (1 - ph.PrivateHitFrac)
			exposed := 1 - mc.MLPOverlap
			cpi := mc.BaseCPI +
				ph.AccessesPerInstr*ph.PrivateHitFrac*mc.PrivateHitCycles +
				llcPerInstr*exposed*(h*mc.LLCHitCycles+(1-h)*mc.DRAMCycles)

			avail := qSecs - cfg.CtxSwitchCost.Seconds()
			res.ContextSwitch++

			// Switch-in reload: while the thread was off-core, co-runners
			// cycled enough data through the LLC to evict its set, so it
			// streams back from DRAM — the literal Figure 1 reload.
			if !t.resident {
				lines := float64(ph.WSS) / float64(mc.LineSize)
				stallCycles := lines * exposed * mc.DRAMCycles
				stall := stallCycles / mc.FreqHz
				if stall > avail {
					stall = avail
					lines = stall * mc.FreqHz / (exposed * mc.DRAMCycles)
				}
				avail -= stall
				dramAcc += lines
				llcAcc += lines
				res.ReloadAccesses += lines
			}
			t.resident = true
			t.evictAccum = 0

			rate := mc.FreqHz / cpi
			did := rate * avail
			if did > t.remain {
				avail = t.remain / rate
				did = t.remain
			}
			t.remain -= did
			res.Instructions += did
			res.Flops += did * ph.FlopsPerInstr
			llcAcc += did * llcPerInstr
			dramAcc += did * llcPerInstr * (1 - h)
			busy++
			t.lastRun = qIndex

			rq.Charge(&t.ent, qSecs*1e9)
		}

		// Off-core threads watch the cache churn: once the data cycled by
		// the quanta they sat out exceeds the LLC's spare capacity beyond
		// their own set, LRU has evicted them.
		for _, t := range threads {
			if t.state != ready || t.lastRun == qIndex || !t.resident {
				continue
			}
			t.evictAccum += pressure
			if t.evictAccum+t.program[t.phase].WSS > mc.LLCCapacity {
				t.resident = false
			}
		}

		meter.AdvanceTime(quantum, busy)
		meter.CountLLC(uint64(llcAcc))
		meter.CountDRAM(uint64(dramAcc))
		res.LLCAccesses += llcAcc
		res.DRAMAccesses += dramAcc
		now = now.Add(quantum)

		// Retire phases and requeue.
		for _, t := range running {
			if t.state != ready {
				continue
			}
			if t.remain <= 0.5 {
				finished := t.phase
				released := advancePhase(t)
				for _, w := range release(t, finished) {
					w.state = ready
					rq.Enqueue(w, &w.ent)
				}
				for _, r := range released {
					if tryAdmit(r) {
						rq.Enqueue(r, &r.ent)
					}
				}
				if t.state == ready && !tryAdmit(t) {
					continue // parked on the wait queue
				}
			}
			if t.state == ready {
				rq.Enqueue(t, &t.ent)
			}
		}
	}

	res.Elapsed = now.DurationSince(0)
	res.SystemJ = meter.SystemJoules()
	res.DRAMJ = meter.DRAMJoules()
	if cfg.Metrics != nil {
		cfg.Metrics.Counter(MetricCtxSwitches).Add(res.ContextSwitch)
		cfg.Metrics.Counter(MetricReloadLines).Add(uint64(res.ReloadAccesses))
	}
	return res, nil
}
