package qsim

import (
	"math"
	"testing"

	"rdasched/internal/core"
	"rdasched/internal/machine"
	"rdasched/internal/perf"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
	"rdasched/internal/sim"
	"rdasched/internal/telemetry"
	"rdasched/internal/workloads"
)

func mkWorkload(n int, wss pp.Bytes, instr float64) proc.Workload {
	ph := proc.Phase{
		Name: "k", Instr: instr, WSS: wss, Reuse: pp.ReuseHigh,
		AccessesPerInstr: 0.3, PrivateHitFrac: 0.8, FlopsPerInstr: 0.5,
	}
	return proc.Workload{
		Name:  "q",
		Procs: proc.Replicate(proc.Spec{Name: "p", Threads: 1, Program: proc.Program{ph}}, n),
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	c := DefaultConfig()
	c.Quantum = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero quantum accepted")
	}
	c = DefaultConfig()
	c.CtxSwitchCost = -1
	if err := c.Validate(); err == nil {
		t.Fatal("negative switch cost accepted")
	}
	c = DefaultConfig()
	c.Machine.Cores = 0
	if err := c.Validate(); err == nil {
		t.Fatal("bad machine config accepted")
	}
}

func TestRunRejectsInvalidWorkload(t *testing.T) {
	if _, err := Run(proc.Workload{Name: "empty"}, DefaultConfig()); err == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestSingleThreadMatchesClosedForm(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CtxSwitchCost = 0
	w := mkWorkload(1, pp.MB(1), 1e9)
	res, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One thread, fits in cache: CPI as the fluid model computes it.
	ph := w.Procs[0].Program[0]
	h := (1 - ph.StreamFrac) * cfg.Machine.HMax[pp.ReuseHigh]
	llcPer := ph.AccessesPerInstr * (1 - ph.PrivateHitFrac)
	cpi := cfg.Machine.BaseCPI + ph.AccessesPerInstr*ph.PrivateHitFrac*cfg.Machine.PrivateHitCycles +
		llcPer*(1-cfg.Machine.MLPOverlap)*(h*cfg.Machine.LLCHitCycles+(1-h)*cfg.Machine.DRAMCycles)
	want := 1e9 * cpi / cfg.Machine.FreqHz
	got := res.Elapsed.Seconds()
	// Quantized runs round up to whole quanta.
	if got < want || got > want+2*cfg.Quantum.Seconds() {
		t.Fatalf("elapsed = %v, want %v (+≤2 quanta)", got, want)
	}
	if math.Abs(res.Instructions-1e9) > 1 {
		t.Fatalf("instructions = %v", res.Instructions)
	}
}

func TestFairnessAcrossThreads(t *testing.T) {
	// 24 identical threads on 12 cores: all finish within a few quanta of
	// one another, and total time is ~2x the 12-thread run.
	cfg := DefaultConfig()
	r24, err := Run(mkWorkload(24, pp.KB(64), 1e8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r12, err := Run(mkWorkload(12, pp.KB(64), 1e8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(r24.Elapsed) / float64(r12.Elapsed)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("24/12 time ratio = %v, want ~2", ratio)
	}
}

func TestContextSwitchesCounted(t *testing.T) {
	res, err := Run(mkWorkload(4, pp.KB(64), 1e8), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ContextSwitch == 0 {
		t.Fatal("no context switches recorded")
	}
}

func TestOverCapacityCausesReloads(t *testing.T) {
	// 24 × 2 MB on 15 MB with 12 cores: threads rotate and pay reloads.
	over, err := Run(mkWorkload(24, pp.MB(2), 5e7), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if over.ReloadAccesses == 0 {
		t.Fatal("no reload traffic despite over-capacity rotation")
	}
	// The same threads with tiny working sets rotate without reloads.
	under, err := Run(mkWorkload(24, pp.KB(64), 5e7), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if under.ReloadAccesses != 0 {
		t.Fatalf("reload traffic %v for fitting working sets", under.ReloadAccesses)
	}
}

func TestBarrierSemantics(t *testing.T) {
	ph1 := proc.Phase{Name: "a", Instr: 1e7, WSS: pp.KB(64), Reuse: pp.ReuseLow,
		AccessesPerInstr: 0.2, PrivateHitFrac: 0.9, FlopsPerInstr: 1, BarrierAfter: true}
	ph2 := ph1
	ph2.Name, ph2.BarrierAfter = "b", false
	w := proc.Workload{Name: "bar", Procs: []proc.Spec{
		{Name: "mt", Threads: 4, Program: proc.Program{ph1, ph2}},
	}}
	res, err := Run(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Instructions-8e7) > 1 {
		t.Fatalf("instructions = %v, want 8e7", res.Instructions)
	}
}

// TestCrossValidationAgainstFluidModel is the package's purpose: the
// discrete CFS simulation and the fluid processor-sharing model must
// agree within tolerance where the fluid approximation is designed to
// hold (fitting and moderately over-capacity mixes). In heavy thrash the
// discrete model pays full per-rotation reloads, which the fluid model's
// residency term only partially captures — there the assertion is
// one-sided: the fluid model must be *conservative* (never slower than
// discrete), so every RDA-vs-default gain it reports is a lower bound.
func TestCrossValidationAgainstFluidModel(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		wss    pp.Bytes
		lo, hi float64 // allowed discrete/fluid makespan band
	}{
		{"fits", 12, pp.MB(1), 0.9, 1.15},
		{"2x-over", 24, pp.MB(1.25), 0.55, 1.5},
		{"heavy-thrash", 24, pp.MB(4), 1.0, 8.0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := mkWorkload(c.n, c.wss, 5e7)

			fluidCfg := machine.DefaultConfig()
			fluid, _, err := perf.Run(w, perf.RunConfig{Machine: fluidCfg})
			if err != nil {
				t.Fatal(err)
			}
			disc, err := Run(w, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}

			tr := disc.Elapsed.Seconds() / fluid.ElapsedSec
			if tr < c.lo || tr > c.hi {
				t.Errorf("makespan ratio discrete/fluid = %.2f outside [%.2f, %.2f] (discrete %.3fs, fluid %.3fs)",
					tr, c.lo, c.hi, disc.Elapsed.Seconds(), fluid.ElapsedSec)
			}
			// Both models must agree on the *direction* of contention:
			// within each model, this workload's DRAM traffic per
			// instruction grows with working-set pressure (checked at the
			// suite level by the ordering across cases).
			if fluid.DRAMAccesses > 0 && disc.DRAMAccesses <= 0 {
				t.Error("discrete model lost DRAM traffic")
			}
		})
	}
}

// TestCrossValidationTable2Sample cross-validates one real Table 2
// workload end to end under default scheduling.
func TestCrossValidationTable2Sample(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w := proc.ScaleInstr(workloads.WaterNsq(), 0.25)
	fluid, _, err := perf.Run(w, perf.RunConfig{Machine: machine.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	disc, err := Run(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// water_nsq's 43 MB of ready working sets against 15 MB is the
	// heavy-thrash regime: the discrete model pays rotation reloads the
	// fluid model underestimates, so the fluid result is a conservative
	// bound rather than an exact match.
	tr := disc.Elapsed.Seconds() / fluid.ElapsedSec
	if tr < 0.9 || tr > 5.0 {
		t.Errorf("water_nsq makespan ratio discrete/fluid = %.2f", tr)
	}
	if g := disc.GFLOPS(); g <= 0 {
		t.Fatalf("GFLOPS = %v", g)
	}
}

func TestTimeoutGuard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machine.MaxSimTime = sim.Microsecond
	if _, err := Run(mkWorkload(2, pp.MB(1), 1e10), cfg); err == nil {
		t.Fatal("timeout not enforced")
	}
}

func BenchmarkQuantizedRun(b *testing.B) {
	w := mkWorkload(24, pp.MB(2), 1e7)
	for i := 0; i < b.N; i++ {
		if _, err := Run(w, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWeightedThreadsInDiscreteScheduler(t *testing.T) {
	// One core, two single-phase threads with weights 4:1 — the heavy
	// thread accumulates runtime ~4x faster, so it finishes well before
	// the light one despite equal work.
	cfg := DefaultConfig()
	cfg.Machine.Cores = 1
	mk := func(name string, weight float64) proc.Spec {
		return proc.Spec{
			Name: name, Threads: 1, Weight: weight,
			Program: proc.Program{{
				Name: "k", Instr: 5e7, WSS: pp.KB(64), Reuse: pp.ReuseHigh,
				AccessesPerInstr: 0.3, PrivateHitFrac: 0.8, FlopsPerInstr: 0.5,
			}},
		}
	}
	w := proc.Workload{Name: "wq", Procs: []proc.Spec{mk("heavy", 4), mk("light", 1)}}
	res, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both complete; the run simply must terminate with full work done.
	if math.Abs(res.Instructions-1e8) > 1 {
		t.Fatalf("instructions = %v", res.Instructions)
	}
}

// TestStrictAdmissionCrossValidation exercises qsim's independent
// implementation of the RDA strict predicate against the fluid
// machine+core stack: two separately written schedulers must agree on
// the contribution's effect, not just the baseline's.
func TestStrictAdmissionCrossValidation(t *testing.T) {
	mk := func(n int, wss pp.Bytes) proc.Workload {
		ph := proc.Phase{
			Name: "k", Instr: 5e7, WSS: wss, Reuse: pp.ReuseHigh,
			AccessesPerInstr: 0.3, PrivateHitFrac: 0.8, FlopsPerInstr: 0.5,
			Declared: true,
		}
		return proc.Workload{
			Name:  "q",
			Procs: proc.Replicate(proc.Spec{Name: "p", Threads: 1, Program: proc.Program{ph}}, n),
		}
	}
	w := mk(24, pp.MB(1.25))

	fluidCfg := machine.DefaultConfig()
	fluid, _, err := perf.Run(w, perf.RunConfig{Machine: fluidCfg, Policy: core.StrictPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	qcfg := DefaultConfig()
	qcfg.StrictAdmission = true
	disc, err := Run(w, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	// Under strict both substrates keep the admitted set under capacity,
	// so neither pays contention: makespans agree closely.
	tr := disc.Elapsed.Seconds() / fluid.ElapsedSec
	if tr < 0.85 || tr > 1.2 {
		t.Errorf("strict makespan ratio discrete/fluid = %.2f (discrete %.3fs, fluid %.3fs)",
			tr, disc.Elapsed.Seconds(), fluid.ElapsedSec)
	}
	// And within qsim itself, strict must beat default on DRAM traffic
	// for this over-capacity high-reuse mix — the paper's claim
	// reproduced on the second substrate.
	defRes, err := Run(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if disc.DRAMAccesses >= defRes.DRAMAccesses/2 {
		t.Errorf("qsim strict DRAM %.3g not ≪ qsim default %.3g",
			disc.DRAMAccesses, defRes.DRAMAccesses)
	}
	if disc.ReloadAccesses != 0 {
		t.Errorf("strict admission still paid %v rotation reloads", disc.ReloadAccesses)
	}
}

func TestStrictAdmissionMultiThreadedBarriers(t *testing.T) {
	// A 2-thread process with a declared phase and barriers around it
	// must complete under strict admission (siblings share the period).
	qcfg := DefaultConfig()
	qcfg.StrictAdmission = true
	mkPh := func(name string, declared, barrier bool) proc.Phase {
		return proc.Phase{
			Name: name, Instr: 1e7, WSS: pp.MB(4), Reuse: pp.ReuseHigh,
			AccessesPerInstr: 0.3, PrivateHitFrac: 0.8, FlopsPerInstr: 0.5,
			Declared: declared, BarrierAfter: barrier,
		}
	}
	spec := proc.Spec{Name: "mt", Threads: 2, Program: proc.Program{
		mkPh("init", false, true),
		mkPh("pp", true, false),
		mkPh("sync", false, true),
	}}
	w := proc.Workload{Name: "mtq", Procs: proc.Replicate(spec, 6)}
	res, err := Run(w, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 6.0 * 2 * 3e7
	if math.Abs(res.Instructions-want) > 1 {
		t.Fatalf("instructions = %v, want %v", res.Instructions, want)
	}
}

// TestMetricsRegistry attaches a telemetry registry to an over-capacity
// strict run and checks the sampled histograms and counters line up with
// the run's own accounting.
func TestMetricsRegistry(t *testing.T) {
	w := mkWorkload(24, pp.MB(1.25), 5e7)
	for i := range w.Procs {
		for j := range w.Procs[i].Program {
			w.Procs[i].Program[j].Declared = true
		}
	}
	cfg := DefaultConfig()
	cfg.StrictAdmission = true
	cfg.Metrics = telemetry.NewRegistry()
	res, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Metrics.Counter(MetricCtxSwitches).Value(); got != res.ContextSwitch {
		t.Fatalf("ctx switch counter %d != result %d", got, res.ContextSwitch)
	}
	parked := cfg.Metrics.Counter(MetricParked).Value()
	woken := cfg.Metrics.Counter(MetricWoken).Value()
	if parked == 0 {
		t.Fatal("24 × 1.25 MB on a 15 MB LLC parked nobody")
	}
	if woken != parked {
		t.Fatalf("woken %d != parked %d on a run-to-completion workload", woken, parked)
	}
	waits := cfg.Metrics.Histogram(MetricWaitSeconds)
	if waits.Count() != woken || waits.Max() <= 0 {
		t.Fatalf("wait histogram count %d max %v (woken %d)", waits.Count(), waits.Max(), woken)
	}
	occ := cfg.Metrics.Histogram(MetricOccupancy)
	if occ.Count() == 0 || occ.Max() > float64(cfg.Machine.LLCCapacity) {
		t.Fatalf("occupancy histogram count %d max %v exceeds capacity", occ.Count(), occ.Max())
	}
	if cfg.Metrics.Histogram(MetricWaitlistDepth).Max() <= 0 {
		t.Fatal("waitlist depth never positive despite parking")
	}

	// The registry is observational: the same run without one must
	// produce identical numbers.
	bare := cfg
	bare.Metrics = nil
	res2, err := Run(w, bare)
	if err != nil {
		t.Fatal(err)
	}
	if *res != *res2 {
		t.Fatalf("metrics attachment changed the result:\n%+v\n%+v", res, res2)
	}
}
