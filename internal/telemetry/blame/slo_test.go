package blame

import (
	"strings"
	"testing"

	"rdasched/internal/core"
	"rdasched/internal/pp"
	"rdasched/internal/sim"
	"rdasched/internal/telemetry"
)

func admission(at sim.Time, wait sim.Duration) core.Event {
	return core.Event{At: at, Kind: core.EventWake, ID: 1, Wait: wait,
		Demand: pp.Demand{WorkingSet: pp.MiB}}
}

func testCfg() SLOConfig {
	return SLOConfig{
		Objective: 10 * sim.Millisecond,
		Target:    0.5,
		Windows:   []sim.Duration{sim.Second},
		AlertBurn: 1.5,
	}
}

func TestSLOValidate(t *testing.T) {
	bad := []SLOConfig{
		{Objective: -1, Target: 0.5, Windows: []sim.Duration{1}, AlertBurn: 1},
		{Target: 0, Windows: []sim.Duration{1}, AlertBurn: 1},
		{Target: 1, Windows: []sim.Duration{1}, AlertBurn: 1},
		{Target: 0.5, AlertBurn: 1},
		{Target: 0.5, Windows: []sim.Duration{0}, AlertBurn: 1},
		{Target: 0.5, Windows: []sim.Duration{1}, AlertBurn: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated but should not: %+v", i, cfg)
		}
	}
	if err := DefaultSLOConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

// TestSLOBreachCounting: waits over the objective are breaches; burn
// is the bad fraction over the error budget.
func TestSLOBreachCounting(t *testing.T) {
	m, err := NewSLOMonitor(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	m.Record(admission(0, 0))
	m.Record(admission(sim.Time(sim.Millisecond), 20*sim.Millisecond))
	m.Record(core.Event{At: sim.Time(2 * sim.Millisecond), Kind: core.EventDeny}) // not an admission
	r := m.Result()
	if r.Admissions != 2 || r.Breaches != 1 {
		t.Fatalf("admissions %d breaches %d, want 2/1", r.Admissions, r.Breaches)
	}
	// bad frac 1/2 over budget 1/2 → burn 1.0
	if got := r.Samples[1].Burn[0]; got != 1.0 {
		t.Fatalf("burn %v, want 1.0", got)
	}
}

// TestSLOAlertEdgeTriggered: a sustained breach run fires one alert,
// recovery re-arms it, a second run fires again.
func TestSLOAlertEdgeTriggered(t *testing.T) {
	m, err := NewSLOMonitor(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// 100 ms spacing against the 1 s window: ten samples fill a window,
	// so good stretches actually evict the bad ones.
	at := sim.Time(0)
	step := func(wait sim.Duration, n int) {
		for i := 0; i < n; i++ {
			at += sim.Time(100 * sim.Millisecond)
			m.Record(admission(at, wait))
		}
	}
	step(20*sim.Millisecond, 5) // all bad: burn 2.0 ≥ 1.5 → alert
	step(0, 20)                 // bad samples age out → burn 0 → re-arm
	step(20*sim.Millisecond, 20)
	r := m.Result()
	if r.Alerts != 2 {
		t.Fatalf("alerts %d, want 2 (edge-triggered re-fire)", r.Alerts)
	}
	if r.MaxBurn[0] != 2.0 {
		t.Fatalf("max burn %v, want 2.0", r.MaxBurn[0])
	}
}

// TestSLOWindowEviction: samples older than the window stop counting.
func TestSLOWindowEviction(t *testing.T) {
	m, err := NewSLOMonitor(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	m.Record(admission(0, 20*sim.Millisecond))     // bad, burn 2.0
	m.Record(admission(sim.Time(5*sim.Second), 0)) // 5s later: old sample evicted
	r := m.Result()
	if got := r.Samples[1].Burn[0]; got != 0 {
		t.Fatalf("burn after eviction %v, want 0", got)
	}
}

// TestSLOMergeAndPublish: merged results add counts, max burns, and
// publish additive counter families.
func TestSLOMergeAndPublish(t *testing.T) {
	mk := func(wait sim.Duration) *SLOResult {
		m, err := NewSLOMonitor(testCfg())
		if err != nil {
			t.Fatal(err)
		}
		m.Record(admission(0, wait))
		return m.Result()
	}
	var agg SLOResult
	agg.Merge(mk(0))
	agg.Merge(mk(20 * sim.Millisecond))
	if agg.Admissions != 2 || agg.Breaches != 1 || agg.MaxBurn[0] != 2.0 {
		t.Fatalf("merged %+v", agg)
	}
	reg := telemetry.NewRegistry()
	agg.Publish(reg)
	if got := reg.Counter(MetricSLOAdmissions).Value(); got != 2 {
		t.Fatalf("published admissions %d, want 2", got)
	}
	if got := reg.Gauge(MetricSLOBurnPrefix + "0").Value(); got != 2.0 {
		t.Fatalf("published burn gauge %v, want 2.0", got)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{MetricSLOAdmissions, MetricSLOBreaches, MetricSLOAlerts} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestSLOTraceCounters: one counter sample per (admission, window),
// grouped by replication pid.
func TestSLOTraceCounters(t *testing.T) {
	m, err := NewSLOMonitor(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	m.Record(admission(0, 0))
	m.Record(admission(1, 20*sim.Millisecond))
	cs := m.Result().TraceCounters()
	if len(cs) != 2 {
		t.Fatalf("got %d counters, want 2", len(cs))
	}
	if cs[0].Name != "slo_burn_w0" || cs[1].Value != 1.0 {
		t.Fatalf("counters %+v", cs)
	}
}
