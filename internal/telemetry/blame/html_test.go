package blame

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strings"
	"testing"

	"rdasched/internal/sim"
)

var payloadRE = regexp.MustCompile(
	`(?s)<script type="application/json" id="rda-data">(.*?)</script>`)

// extractPayload pulls the embedded JSON out of a rendered report —
// the same extraction scripts/jsoncheck performs in CI.
func extractPayload(t *testing.T, doc string) []byte {
	t.Helper()
	m := payloadRE.FindStringSubmatch(doc)
	if m == nil {
		t.Fatal("report has no embedded rda-data payload")
	}
	return []byte(m[1])
}

func sampleReportAndSLO(t *testing.T) (*Report, *SLOResult) {
	t.Helper()
	r := runCollector(t, contendedWorkload())
	m, err := NewSLOMonitor(DefaultSLOConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.Record(admission(0, 0))
	m.Record(admission(sim.Time(sim.Second), 60*sim.Millisecond))
	return r, m.Result()
}

// TestWriteHTMLSelfContained: one file, parseable embedded JSON, no
// external fetches of any kind.
func TestWriteHTMLSelfContained(t *testing.T) {
	rpt, slo := sampleReportAndSLO(t)
	meta := ReportMeta{Workload: "contended", Policy: "strict",
		Procs: []string{"hog", "hog", "small", "small"}}
	var buf bytes.Buffer
	if err := WriteHTML(&buf, meta, rpt, slo); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	for _, external := range []string{"http://", "https://", "src=", "@import", "url("} {
		if strings.Contains(doc, external) {
			t.Errorf("report references external resource: %q", external)
		}
	}
	var payload htmlPayload
	if err := json.Unmarshal(extractPayload(t, doc), &payload); err != nil {
		t.Fatalf("embedded payload does not parse: %v", err)
	}
	if payload.Blame == nil || payload.Blame.TotalWait != rpt.TotalWait {
		t.Fatal("payload lost the blame report")
	}
	if err := payload.Blame.Check(); err != nil {
		t.Fatalf("payload violates conservation after round-trip: %v", err)
	}
	if payload.SLO == nil || payload.SLO.Admissions != slo.Admissions {
		t.Fatal("payload lost the SLO result")
	}
	for _, want := range []string{"Interference matrix", "Longest waits", "burn rate", "<svg", "<table>"} {
		if !strings.Contains(doc, want) {
			t.Errorf("report missing section %q", want)
		}
	}
}

// TestWriteHTMLDeterministic: identical inputs render byte-identical
// documents.
func TestWriteHTMLDeterministic(t *testing.T) {
	rpt, slo := sampleReportAndSLO(t)
	meta := ReportMeta{Workload: "contended", Policy: "strict"}
	var a, b bytes.Buffer
	if err := WriteHTML(&a, meta, rpt, slo); err != nil {
		t.Fatal(err)
	}
	if err := WriteHTML(&b, meta, rpt, slo); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("re-rendering the same report changed bytes")
	}
}

// TestWriteHTMLEscaping: hostile names cannot break out of the payload
// script block or the markup.
func TestWriteHTMLEscaping(t *testing.T) {
	rpt := &Report{}
	meta := ReportMeta{
		Workload: `</script><script>alert(1)</script>`,
		Policy:   `<b onmouseover="x()">`,
	}
	var buf bytes.Buffer
	if err := WriteHTML(&buf, meta, rpt, nil); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	if strings.Contains(doc, "<script>alert(1)") {
		t.Fatal("workload name escaped into live markup")
	}
	var payload htmlPayload
	if err := json.Unmarshal(extractPayload(t, doc), &payload); err != nil {
		t.Fatalf("payload with hostile names does not parse: %v", err)
	}
	if payload.Meta.Workload != meta.Workload {
		t.Fatal("escaping corrupted the payload round-trip")
	}
}

// TestWriteHTMLNilSLO: the report renders without an SLO section.
func TestWriteHTMLNilSLO(t *testing.T) {
	rpt := runCollector(t, contendedWorkload())
	var buf bytes.Buffer
	if err := WriteHTML(&buf, ReportMeta{Workload: "w", Policy: "p"}, rpt, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "SLO burn rate") {
		t.Fatal("nil SLO still rendered a burn section")
	}
}
