package blame

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"sort"
	"strings"

	"rdasched/internal/sim"
)

// Self-contained HTML observability report: one file, stdlib only, no
// external scripts, stylesheets, or fonts. The machine-readable payload
// is embedded as a <script type="application/json" id="rda-data">
// block (encoding/json escapes <, >, & by default, so the document
// cannot be broken by data), and the visuals — interference heatmap,
// wait-blame top-K table, burn-rate timeline, critical-path bar — are
// inline SVG rendered at write time. Nothing in the document derives
// from the wall clock, so a deterministic run writes a byte-identical
// report.

// ReportMeta labels an HTML report.
type ReportMeta struct {
	// Workload and Policy name the configuration.
	Workload string `json:"workload"`
	Policy   string `json:"policy"`
	// Procs maps process index to name (the decision stream's Proc is
	// the workload process index). Missing entries render as "proc N".
	Procs []string `json:"procs"`
}

func (m ReportMeta) procName(i int) string {
	if i >= 0 && i < len(m.Procs) {
		return fmt.Sprintf("%s#%d", m.Procs[i], i)
	}
	return fmt.Sprintf("proc %d", i)
}

// htmlPayload is the embedded JSON document.
type htmlPayload struct {
	Meta  ReportMeta `json:"meta"`
	Blame *Report    `json:"blame"`
	SLO   *SLOResult `json:"slo,omitempty"`
}

// WriteHTML writes the report (and, when non-nil, the SLO evaluation)
// as one self-contained HTML document.
func WriteHTML(w io.Writer, meta ReportMeta, rpt *Report, slo *SLOResult) error {
	if rpt == nil {
		return fmt.Errorf("blame: WriteHTML needs a report")
	}
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>wait-blame report · %s under %s</title>\n",
		html.EscapeString(meta.Workload), html.EscapeString(meta.Policy))
	b.WriteString("<style>\n" + reportCSS + "</style>\n</head>\n<body>\n")

	fmt.Fprintf(&b, "<h1>Causal wait-attribution report</h1>\n<p class=\"sub\">workload <b>%s</b> · policy <b>%s</b> · %d waitlisted periods · %d denies</p>\n",
		html.EscapeString(meta.Workload), html.EscapeString(meta.Policy),
		len(rpt.Periods), rpt.Denies)

	writeSummary(&b, rpt, slo)
	writePathBar(&b, rpt.Path)
	writeHeatmap(&b, meta, rpt)
	writeTopK(&b, meta, rpt, 10)
	if slo != nil {
		writeBurnTimeline(&b, slo)
	}

	// Machine-readable payload, last so readers see the visuals first.
	b.WriteString("<script type=\"application/json\" id=\"rda-data\">")
	data, err := json.Marshal(htmlPayload{Meta: meta, Blame: rpt, SLO: slo})
	if err != nil {
		return fmt.Errorf("blame: %w", err)
	}
	b.Write(data)
	b.WriteString("</script>\n</body>\n</html>\n")
	_, err = io.WriteString(w, b.String())
	return err
}

const reportCSS = `body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;max-width:60em;color:#222}
h1{font-size:1.4em}h2{font-size:1.1em;margin-top:2em}.sub{color:#666}
table{border-collapse:collapse;margin:1em 0}td,th{border:1px solid #ccc;padding:.3em .6em;text-align:right}
th{background:#f4f4f4}td:first-child,th:first-child{text-align:left}
.cards{display:flex;gap:1em;flex-wrap:wrap}.card{border:1px solid #ddd;border-radius:6px;padding:.6em 1em}
.card b{display:block;font-size:1.3em}svg{margin:.5em 0}
`

func secs(d sim.Duration) string { return fmt.Sprintf("%.6f s", d.Seconds()) }

func writeSummary(b *strings.Builder, rpt *Report, slo *SLOResult) {
	pct := func(part sim.Duration) string {
		if rpt.TotalWait == 0 {
			return "–"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(rpt.TotalWait))
	}
	b.WriteString("<div class=\"cards\">\n")
	fmt.Fprintf(b, "<div class=\"card\">total wait<b>%s</b></div>\n", secs(rpt.TotalWait))
	fmt.Fprintf(b, "<div class=\"card\">blamed<b>%s (%s)</b></div>\n", secs(rpt.TotalBlamed), pct(rpt.TotalBlamed))
	fmt.Fprintf(b, "<div class=\"card\">unattributed<b>%s (%s)</b></div>\n", secs(rpt.TotalUnattributed), pct(rpt.TotalUnattributed))
	if slo != nil {
		fmt.Fprintf(b, "<div class=\"card\">SLO admissions / breaches<b>%d / %d</b></div>\n", slo.Admissions, slo.Breaches)
		fmt.Fprintf(b, "<div class=\"card\">burn alerts<b>%d</b></div>\n", slo.Alerts)
	}
	b.WriteString("</div>\n")
}

// writePathBar renders the makespan decomposition as one stacked bar.
func writePathBar(b *strings.Builder, p Path) {
	if p.Makespan <= 0 {
		return
	}
	b.WriteString("<h2>Critical path: where the makespan went</h2>\n")
	const width, height = 720.0, 28.0
	type seg struct {
		name  string
		d     sim.Duration
		color string
	}
	segs := []seg{
		{"run", p.Run, "#4a90d9"},
		{"wait (blamed)", p.WaitBlamed, "#d95f4a"},
		{"wait (unattributed)", p.WaitUnattributed, "#e8b84a"},
		{"idle", p.Idle, "#cccccc"},
	}
	fmt.Fprintf(b, "<svg width=\"%.0f\" height=\"%.0f\" role=\"img\" aria-label=\"makespan decomposition\">\n", width, height)
	x := 0.0
	for _, s := range segs {
		w := width * float64(s.d) / float64(p.Makespan)
		if w > 0 {
			fmt.Fprintf(b, "<rect x=\"%.2f\" y=\"0\" width=\"%.2f\" height=\"%.0f\" fill=\"%s\"><title>%s: %s</title></rect>\n",
				x, w, height, s.color, s.name, secs(s.d))
		}
		x += w
	}
	b.WriteString("</svg>\n<p class=\"sub\">")
	for i, s := range segs {
		if i > 0 {
			b.WriteString(" · ")
		}
		fmt.Fprintf(b, "<span style=\"color:%s\">■</span> %s %s", s.color, s.name, secs(s.d))
	}
	b.WriteString("</p>\n")
}

// writeHeatmap renders the interference matrix as an SVG grid: rows are
// blockers, columns waiters, shade ∝ blamed share of the worst cell.
func writeHeatmap(b *strings.Builder, meta ReportMeta, rpt *Report) {
	b.WriteString("<h2>Interference matrix: who blocked whom</h2>\n")
	if len(rpt.Matrix) == 0 {
		b.WriteString("<p class=\"sub\">no blamed wait — nothing interfered.</p>\n")
		return
	}
	procSet := map[int]bool{}
	var max sim.Duration
	for _, c := range rpt.Matrix {
		procSet[c.BlockerProc], procSet[c.WaiterProc] = true, true
		if c.Blamed > max {
			max = c.Blamed
		}
	}
	procs := make([]int, 0, len(procSet))
	for p := range procSet {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	idx := map[int]int{}
	for i, p := range procs {
		idx[p] = i
	}
	cells := map[[2]int]sim.Duration{}
	for _, c := range rpt.Matrix {
		cells[[2]int{idx[c.BlockerProc], idx[c.WaiterProc]}] = c.Blamed
	}
	const cell, label = 34.0, 120.0
	w := label + cell*float64(len(procs)) + 8
	h := label + cell*float64(len(procs)) + 8
	fmt.Fprintf(b, "<svg width=\"%.0f\" height=\"%.0f\" role=\"img\" aria-label=\"interference heatmap\">\n", w, h)
	for i, p := range procs {
		// Column header (waiter), rotated; row label (blocker).
		fmt.Fprintf(b, "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" transform=\"rotate(-45 %.1f %.1f)\">%s</text>\n",
			label+cell*float64(i)+6, label-6, label+cell*float64(i)+6, label-6, html.EscapeString(meta.procName(p)))
		fmt.Fprintf(b, "<text x=\"4\" y=\"%.1f\" font-size=\"11\">%s</text>\n",
			label+cell*float64(i)+cell/2+4, html.EscapeString(meta.procName(p)))
	}
	for bi := range procs {
		for wi := range procs {
			v := cells[[2]int{bi, wi}]
			frac := 0.0
			if max > 0 {
				frac = float64(v) / float64(max)
			}
			fmt.Fprintf(b, "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.0f\" height=\"%.0f\" fill=\"rgba(178,34,34,%.3f)\" stroke=\"#ddd\"><title>%s → %s: %s</title></rect>\n",
				label+cell*float64(wi), label+cell*float64(bi), cell-2, cell-2, frac,
				html.EscapeString(meta.procName(procs[bi])),
				html.EscapeString(meta.procName(procs[wi])), secs(v))
		}
	}
	b.WriteString("</svg>\n<p class=\"sub\">rows block columns; shade ∝ blamed wait.</p>\n")
}

// writeTopK renders the k worst-waiting periods with their top blocker.
func writeTopK(b *strings.Builder, meta ReportMeta, rpt *Report, k int) {
	b.WriteString("<h2>Longest waits and their blockers</h2>\n")
	if len(rpt.Periods) == 0 {
		b.WriteString("<p class=\"sub\">no period was ever waitlisted.</p>\n")
		return
	}
	top := append([]PeriodBlame(nil), rpt.Periods...)
	sort.SliceStable(top, func(i, j int) bool { return top[i].Wait > top[j].Wait })
	if len(top) > k {
		top = top[:k]
	}
	b.WriteString("<table>\n<tr><th>period</th><th>rep</th><th>outcome</th><th>wait</th><th>blamed</th><th>unattributed</th><th>top blocker</th></tr>\n")
	for _, p := range top {
		topBlocker := "–"
		var best sim.Duration = -1
		for _, s := range p.Shares {
			if s.Blamed > best {
				best = s.Blamed
				topBlocker = fmt.Sprintf("%s (%s)", meta.procName(s.BlockerProc), secs(s.Blamed))
			}
		}
		fmt.Fprintf(b, "<tr><td>%s phase %d (id %d)</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
			html.EscapeString(meta.procName(p.Proc)), p.Phase, p.ID, p.Rep,
			html.EscapeString(p.Outcome), secs(p.Wait), secs(p.Blamed()),
			secs(p.Unattributed), html.EscapeString(topBlocker))
	}
	b.WriteString("</table>\n")
}

// writeBurnTimeline renders the burn-rate samples as one polyline per
// (replication, window), with the alert threshold as a dashed rule.
func writeBurnTimeline(b *strings.Builder, slo *SLOResult) {
	b.WriteString("<h2>SLO burn rate</h2>\n")
	fmt.Fprintf(b, "<p class=\"sub\">objective: wait ≤ %s for %.1f%% of admissions · alert at %.1fx budget burn in every window</p>\n",
		secs(slo.Config.Objective), 100*slo.Config.Target, slo.Config.AlertBurn)
	if len(slo.Samples) == 0 {
		b.WriteString("<p class=\"sub\">no admissions recorded.</p>\n")
		return
	}
	const width, height, pad = 720.0, 160.0, 24.0
	var maxAt sim.Time
	maxBurn := slo.Config.AlertBurn
	for _, s := range slo.Samples {
		if s.At > maxAt {
			maxAt = s.At
		}
		for _, v := range s.Burn {
			if v > maxBurn {
				maxBurn = v
			}
		}
	}
	if maxAt == 0 {
		maxAt = 1
	}
	x := func(at sim.Time) float64 { return pad + (width-2*pad)*float64(at)/float64(maxAt) }
	y := func(v float64) float64 { return height - pad - (height-2*pad)*v/maxBurn }
	fmt.Fprintf(b, "<svg width=\"%.0f\" height=\"%.0f\" role=\"img\" aria-label=\"burn-rate timeline\">\n", width, height)
	fmt.Fprintf(b, "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#b22\" stroke-dasharray=\"4 3\"/>\n",
		pad, y(slo.Config.AlertBurn), width-pad, y(slo.Config.AlertBurn))
	colors := []string{"#4a90d9", "#7b4ad9", "#2e8b57", "#d9844a"}
	reps := map[int]bool{}
	for _, s := range slo.Samples {
		reps[s.Rep] = true
	}
	repList := make([]int, 0, len(reps))
	for r := range reps {
		repList = append(repList, r)
	}
	sort.Ints(repList)
	for wi := range slo.Config.Windows {
		for _, rep := range repList {
			var pts []string
			for _, s := range slo.Samples {
				if s.Rep != rep || wi >= len(s.Burn) {
					continue
				}
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(s.At), y(s.Burn[wi])))
			}
			if len(pts) > 0 {
				fmt.Fprintf(b, "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-opacity=\"0.8\"/>\n",
					strings.Join(pts, " "), colors[wi%len(colors)])
			}
		}
	}
	fmt.Fprintf(b, "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" fill=\"#b22\">alert %.1fx</text>\n",
		width-pad-60, y(slo.Config.AlertBurn)-4, slo.Config.AlertBurn)
	b.WriteString("</svg>\n<p class=\"sub\">")
	for wi, w := range slo.Config.Windows {
		if wi > 0 {
			b.WriteString(" · ")
		}
		fmt.Fprintf(b, "<span style=\"color:%s\">—</span> window %s", colors[wi%len(colors)], secs(w))
	}
	b.WriteString("</p>\n")
}
