package blame

import (
	"fmt"

	"rdasched/internal/core"
	"rdasched/internal/sim"
	"rdasched/internal/telemetry"
	"rdasched/internal/telemetry/trace"
)

// SLO layer: an admission-latency objective evaluated over the virtual
// clock with multi-window burn-rate alerting (the SRE-workbook shape:
// alert when the error budget burns faster than AlertBurn in *every*
// window, so short spikes and long smolders both must agree before an
// alert fires). Deterministic like everything else here — windows
// slide on virtual time, no wall clock anywhere.

// SLOConfig defines an admission-latency objective.
type SLOConfig struct {
	// Objective is the latency bound: an admission is good when the
	// period waited at most this long before running.
	Objective sim.Duration
	// Target is the objective's target good fraction (e.g. 0.95: 95% of
	// admissions within Objective). The error budget is 1 - Target.
	Target float64
	// Windows are the burn-rate evaluation windows (virtual time),
	// shortest first by convention.
	Windows []sim.Duration
	// AlertBurn is the burn-rate threshold: an alert fires when every
	// window's burn rate reaches it.
	AlertBurn float64
}

// DefaultSLOConfig targets 95% of admissions within 50 virtual
// milliseconds, alerting at 2x budget burn over 1s and 5s windows.
func DefaultSLOConfig() SLOConfig {
	return SLOConfig{
		Objective: 50 * sim.Millisecond,
		Target:    0.95,
		Windows:   []sim.Duration{1 * sim.Second, 5 * sim.Second},
		AlertBurn: 2,
	}
}

// Validate rejects configurations the monitor cannot evaluate.
func (c SLOConfig) Validate() error {
	if c.Objective < 0 {
		return fmt.Errorf("blame: negative SLO objective %v", c.Objective)
	}
	if c.Target <= 0 || c.Target >= 1 {
		return fmt.Errorf("blame: SLO target %v outside (0, 1)", c.Target)
	}
	if len(c.Windows) == 0 {
		return fmt.Errorf("blame: SLO needs at least one burn window")
	}
	for _, w := range c.Windows {
		if w <= 0 {
			return fmt.Errorf("blame: non-positive SLO window %v", w)
		}
	}
	if c.AlertBurn <= 0 {
		return fmt.Errorf("blame: non-positive SLO alert burn %v", c.AlertBurn)
	}
	return nil
}

// BurnSample is the burn rate per window right after one admission.
type BurnSample struct {
	Rep  int       `json:"rep"`
	At   sim.Time  `json:"at_ps"`
	Burn []float64 `json:"burn"`
}

// SLOResult is the monitor's aggregated output.
type SLOResult struct {
	Config SLOConfig `json:"config"`
	// Admissions counts periods that reached running (admit, wake, or
	// fallback); Breaches those whose wait exceeded the objective.
	Admissions uint64 `json:"admissions"`
	Breaches   uint64 `json:"breaches"`
	// Alerts counts edge-triggered multi-window alert firings.
	Alerts uint64 `json:"alerts"`
	// MaxBurn is the highest burn rate seen per window.
	MaxBurn []float64 `json:"max_burn"`
	// Samples is the burn-rate timeline, one sample per admission,
	// ordered by (Rep, At).
	Samples []BurnSample `json:"samples"`
}

// Merge folds other into r in repetition order: counts add, per-window
// maxima take the max, timelines concatenate.
func (r *SLOResult) Merge(other *SLOResult) {
	if other == nil {
		return
	}
	if len(r.MaxBurn) == 0 {
		r.Config = other.Config
		r.MaxBurn = make([]float64, len(other.MaxBurn))
	}
	r.Admissions += other.Admissions
	r.Breaches += other.Breaches
	r.Alerts += other.Alerts
	for i, b := range other.MaxBurn {
		if i < len(r.MaxBurn) && b > r.MaxBurn[i] {
			r.MaxBurn[i] = b
		}
	}
	r.Samples = append(r.Samples, other.Samples...)
}

// Metric family names published by SLOResult.Publish. The per-window
// burn gauges are max-burn readings, which is exactly the "high-water"
// semantic Registry.Merge gives gauges.
const (
	MetricSLOAdmissions = "rda_slo_admissions_total"
	MetricSLOBreaches   = "rda_slo_breaches_total"
	MetricSLOAlerts     = "rda_slo_alerts_total"
	// MetricSLOBurnPrefix + window index names each gauge, e.g.
	// rda_slo_max_burn_w0.
	MetricSLOBurnPrefix = "rda_slo_max_burn_w"
)

// Publish writes the result's aggregates into a telemetry registry.
func (r *SLOResult) Publish(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Counter(MetricSLOAdmissions).Add(r.Admissions)
	reg.Counter(MetricSLOBreaches).Add(r.Breaches)
	reg.Counter(MetricSLOAlerts).Add(r.Alerts)
	for i, b := range r.MaxBurn {
		g := reg.Gauge(fmt.Sprintf("%s%d", MetricSLOBurnPrefix, i))
		if b > g.Value() {
			g.Set(b)
		}
	}
}

// sloSample is one admission in the sliding windows.
type sloSample struct {
	at  sim.Time
	bad bool
}

// SLOMonitor consumes the decision stream and evaluates the objective.
// It implements core.EventSink; subscribe it with AddSink.
type SLOMonitor struct {
	cfg     SLOConfig
	samples []sloSample
	// head[i] indexes the oldest sample still inside window i; heads
	// only advance, so the whole run costs O(samples × windows).
	head     []int
	burn     []float64
	bad      []uint64 // bad samples currently inside window i
	res      SLOResult
	alerting bool
}

// NewSLOMonitor returns a monitor for the given (validated) config.
func NewSLOMonitor(cfg SLOConfig) (*SLOMonitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &SLOMonitor{
		cfg:  cfg,
		head: make([]int, len(cfg.Windows)),
		burn: make([]float64, len(cfg.Windows)),
		bad:  make([]uint64, len(cfg.Windows)),
		res:  SLOResult{Config: cfg, MaxBurn: make([]float64, len(cfg.Windows))},
	}, nil
}

// Record implements core.EventSink: every decision that starts a period
// running — immediate admit, wake, or fallback — is one SLI sample
// with the period's wait (zero for immediate admits) judged against
// the objective.
func (m *SLOMonitor) Record(e core.Event) {
	switch e.Kind {
	case core.EventAdmit, core.EventWake, core.EventFallback:
	default:
		return
	}
	bad := e.Wait > m.cfg.Objective
	m.samples = append(m.samples, sloSample{at: e.At, bad: bad})
	m.res.Admissions++
	if bad {
		m.res.Breaches++
		for i := range m.bad {
			m.bad[i]++
		}
	}
	alert := true
	for i, w := range m.cfg.Windows {
		cutoff := e.At.DurationSince(sim.Time(0)) - w
		for m.head[i] < len(m.samples)-1 &&
			m.samples[m.head[i]].at.DurationSince(sim.Time(0)) < cutoff {
			if m.samples[m.head[i]].bad {
				m.bad[i]--
			}
			m.head[i]++
		}
		n := len(m.samples) - m.head[i]
		badFrac := float64(m.bad[i]) / float64(n)
		m.burn[i] = badFrac / (1 - m.cfg.Target)
		if m.burn[i] > m.res.MaxBurn[i] {
			m.res.MaxBurn[i] = m.burn[i]
		}
		if m.burn[i] < m.cfg.AlertBurn {
			alert = false
		}
	}
	if alert && !m.alerting {
		m.res.Alerts++
	}
	m.alerting = alert
	m.res.Samples = append(m.res.Samples, BurnSample{
		At: e.At, Burn: append([]float64(nil), m.burn...),
	})
}

// Result returns the monitor's output so far.
func (m *SLOMonitor) Result() *SLOResult {
	out := m.res
	out.MaxBurn = append([]float64(nil), m.res.MaxBurn...)
	out.Samples = append([]BurnSample(nil), m.res.Samples...)
	return &out
}

// TraceCounters renders the burn-rate timeline as Perfetto counter
// tracks, one track per window, grouped with the replication's span
// process group (rep*1000, matching the trace package's pid scheme).
func (r *SLOResult) TraceCounters() []trace.Counter {
	out := make([]trace.Counter, 0, len(r.Samples)*len(r.Config.Windows))
	for _, s := range r.Samples {
		for i, b := range s.Burn {
			out = append(out, trace.Counter{
				Name: fmt.Sprintf("slo_burn_w%d", i),
				At:   s.At, Value: b, Pid: s.Rep * 1000,
			})
		}
	}
	return out
}
