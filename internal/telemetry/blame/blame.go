// Package blame turns the scheduler's decision stream into causal
// answers: who made each period wait, for how long, and what the wait
// cost the whole run. The paper's effect (Figs 5–8) flows through one
// mechanism — Algorithm 1 waitlisting a period because *other* periods
// hold LLC load — and the raw stream only counts those decisions. The
// Collector here consumes the stream plus the core's blocker snapshots
// (core.BlameSink) and reconstructs, for every EventDeny →
// EventWake/EventFallback interval, the residents that held load at
// denial time, attributing the wait fractionally to each by demand
// share.
//
// Everything is exact on the virtual clock: attribution uses 128-bit
// integer multiply/divide (never floats), the sub-picosecond remainder
// is handed out one picosecond at a time in blocker-ID order, and the
// conservation invariant
//
//	Σ blamed shares + unattributed = total wait
//
// holds for every period by construction (and is fuzzed). All outputs
// are sorted deterministically, so reports are byte-identical across
// -jobs N.
package blame

import (
	"fmt"
	"math/bits"
	"sort"

	"rdasched/internal/core"
	"rdasched/internal/pp"
	"rdasched/internal/sim"
	"rdasched/internal/telemetry"
)

// Share is one blocker's slice of a waiting period's wait time.
type Share struct {
	// BlockerID is the blocking period's admission ID; BlockerProc its
	// owning process.
	BlockerID   pp.ID `json:"blocker_id"`
	BlockerProc int   `json:"blocker_proc"`
	// Demand is the blocker's LLC demand at denial time — the weight
	// the split used.
	Demand pp.Bytes `json:"demand_bytes"`
	// Blamed is the wait time attributed to this blocker (virtual
	// picoseconds).
	Blamed sim.Duration `json:"blamed_ps"`
}

// PeriodBlame is the attribution record for one waitlisted period: the
// blame timeline entry.
type PeriodBlame struct {
	// Rep is the replication the record came from; stamped on merge.
	Rep int `json:"rep"`
	// ID, Proc, Phase locate the waiting period.
	ID    pp.ID `json:"id"`
	Proc  int   `json:"proc"`
	Phase int   `json:"phase"`
	// DenyAt and ClosedAt bound the wait interval; Outcome records how
	// it closed ("wake", "fallback", or "unfinished" at Finish).
	DenyAt   sim.Time `json:"deny_at_ps"`
	ClosedAt sim.Time `json:"closed_at_ps"`
	Outcome  string   `json:"outcome"`
	// Wait = ClosedAt - DenyAt.
	Wait sim.Duration `json:"wait_ps"`
	// Shares splits Wait across the denial-time blockers by demand
	// share, in blocker-ID order. Unattributed is the remainder that no
	// blocker explains (the whole wait when the resident set was empty
	// at denial — e.g. a demand larger than clean capacity).
	Shares       []Share      `json:"shares,omitempty"`
	Unattributed sim.Duration `json:"unattributed_ps"`
}

// Blamed returns the total wait this record attributes to blockers.
func (p PeriodBlame) Blamed() sim.Duration {
	var t sim.Duration
	for _, s := range p.Shares {
		t += s.Blamed
	}
	return t
}

// MatrixCell is one interference-matrix entry: how much wait time
// periods of BlockerProc inflicted on periods of WaiterProc.
type MatrixCell struct {
	BlockerProc int          `json:"blocker_proc"`
	WaiterProc  int          `json:"waiter_proc"`
	Blamed      sim.Duration `json:"blamed_ps"`
}

// Path is the critical-path decomposition of the makespan. Every
// instant of [0, Makespan] falls in exactly one class, judged by the
// scheduler's state at that instant: Run while at least one tracked
// period holds load; otherwise WaitBlamed while some waiter's
// denial-time blocker set was non-empty (the wait is explained);
// otherwise WaitUnattributed while waiters exist but none has a
// blocker to point at; Idle otherwise. Run + WaitBlamed +
// WaitUnattributed + Idle = Makespan exactly.
type Path struct {
	Run              sim.Duration `json:"run_ps"`
	WaitBlamed       sim.Duration `json:"wait_blamed_ps"`
	WaitUnattributed sim.Duration `json:"wait_unattributed_ps"`
	Idle             sim.Duration `json:"idle_ps"`
	Makespan         sim.Duration `json:"makespan_ps"`
}

// Report is the Collector's aggregated output.
type Report struct {
	// Periods is the blame timeline, ordered by (Rep, DenyAt, ID).
	Periods []PeriodBlame `json:"periods"`
	// Matrix is the per-process interference matrix, ordered by
	// (BlockerProc, WaiterProc); zero cells are omitted.
	Matrix []MatrixCell `json:"matrix"`
	// Path decomposes the makespan (summed across merged repetitions).
	Path Path `json:"path"`
	// Denies counts deny decisions seen (= len(Periods) per run: every
	// deny opens exactly one wait interval).
	Denies uint64 `json:"denies"`
	// TotalWait/TotalBlamed/TotalUnattributed sum the per-period
	// records; TotalWait = TotalBlamed + TotalUnattributed always.
	TotalWait         sim.Duration `json:"total_wait_ps"`
	TotalBlamed       sim.Duration `json:"total_blamed_ps"`
	TotalUnattributed sim.Duration `json:"total_unattributed_ps"`
}

// Merge folds other into r in repetition order: timelines concatenate,
// matrix cells and path segments add, totals sum.
func (r *Report) Merge(other *Report) {
	if other == nil {
		return
	}
	r.Periods = append(r.Periods, other.Periods...)
	cells := make(map[[2]int]sim.Duration, len(r.Matrix))
	for _, c := range r.Matrix {
		cells[[2]int{c.BlockerProc, c.WaiterProc}] += c.Blamed
	}
	for _, c := range other.Matrix {
		cells[[2]int{c.BlockerProc, c.WaiterProc}] += c.Blamed
	}
	r.Matrix = sortMatrix(cells)
	r.Path.Run += other.Path.Run
	r.Path.WaitBlamed += other.Path.WaitBlamed
	r.Path.WaitUnattributed += other.Path.WaitUnattributed
	r.Path.Idle += other.Path.Idle
	r.Path.Makespan += other.Path.Makespan
	r.Denies += other.Denies
	r.TotalWait += other.TotalWait
	r.TotalBlamed += other.TotalBlamed
	r.TotalUnattributed += other.TotalUnattributed
}

// Check verifies the conservation invariant on every period and on the
// totals, returning the first violation. Exact equality, no epsilon:
// the virtual clock has none.
func (r *Report) Check() error {
	var wait, blamed, unattr sim.Duration
	for _, p := range r.Periods {
		if p.Blamed()+p.Unattributed != p.Wait {
			return fmt.Errorf("blame: period %d (proc %d): shares %v + unattributed %v != wait %v",
				p.ID, p.Proc, p.Blamed(), p.Unattributed, p.Wait)
		}
		if p.Wait < 0 || p.Unattributed < 0 {
			return fmt.Errorf("blame: period %d: negative wait %v / unattributed %v", p.ID, p.Wait, p.Unattributed)
		}
		for _, s := range p.Shares {
			if s.Blamed < 0 {
				return fmt.Errorf("blame: period %d: negative share %v for blocker %d", p.ID, s.Blamed, s.BlockerID)
			}
		}
		wait += p.Wait
		blamed += p.Blamed()
		unattr += p.Unattributed
	}
	if wait != r.TotalWait || blamed != r.TotalBlamed || unattr != r.TotalUnattributed {
		return fmt.Errorf("blame: totals drifted: wait %v/%v blamed %v/%v unattributed %v/%v",
			wait, r.TotalWait, blamed, r.TotalBlamed, unattr, r.TotalUnattributed)
	}
	if r.TotalBlamed+r.TotalUnattributed != r.TotalWait {
		return fmt.Errorf("blame: blamed %v + unattributed %v != wait %v",
			r.TotalBlamed, r.TotalUnattributed, r.TotalWait)
	}
	var mat sim.Duration
	for _, c := range r.Matrix {
		mat += c.Blamed
	}
	if mat != r.TotalBlamed {
		return fmt.Errorf("blame: matrix sum %v != total blamed %v", mat, r.TotalBlamed)
	}
	if got := r.Path.Run + r.Path.WaitBlamed + r.Path.WaitUnattributed + r.Path.Idle; got != r.Path.Makespan {
		return fmt.Errorf("blame: path classes sum %v != makespan %v", got, r.Path.Makespan)
	}
	return nil
}

// Metric family names published by Report.Publish. Counters and
// histograms only — both add under Registry.Merge, so per-repetition
// publishes aggregate the same way every other family does.
const (
	MetricBlamePeriods      = "rda_blame_periods_total"
	MetricBlameDenies       = "rda_blame_denies_total"
	MetricBlameBlocked      = "rda_blame_blocked_seconds"
	MetricBlameUnattributed = "rda_blame_unattributed_seconds"
)

// Publish writes the report's aggregates into a telemetry registry.
func (r *Report) Publish(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Counter(MetricBlamePeriods).Add(uint64(len(r.Periods)))
	reg.Counter(MetricBlameDenies).Add(r.Denies)
	blocked := reg.Histogram(MetricBlameBlocked)
	unattr := reg.Histogram(MetricBlameUnattributed)
	for _, p := range r.Periods {
		blocked.Observe(p.Blamed().Seconds())
		unattr.Observe(p.Unattributed.Seconds())
	}
}

// resident is one tracked admitted period, keyed by admission ID in
// Collector.residents.
type resident struct {
	proc   int
	demand pp.Bytes
}

// waiter is one open deny→close interval.
type waiter struct {
	id          pp.ID
	proc, phase int
	denyAt      sim.Time
	// blockers is the denial-time resident snapshot (copied — the
	// scheduler owns the slice it hands RecordDeny).
	blockers []core.Blocker
}

// Collector consumes the decision stream and blocker snapshots and
// builds a Report. It implements core.BlameSink; subscribe it with
// AddSink on a Scheduler or DomainSet. Single-goroutine, like every
// sink: events arrive synchronously in virtual-time order.
type Collector struct {
	residents map[pp.ID]resident
	waiters   map[pp.ID]*waiter
	// nBlamed counts open waiters whose blocker snapshot is non-empty,
	// so segment classification is O(1).
	nBlamed  int
	segAt    sim.Time
	closed   []PeriodBlame
	matrix   map[[2]int]sim.Duration
	path     Path
	denies   uint64
	finished bool
}

// NewCollector returns an empty blame collector.
func NewCollector() *Collector {
	return &Collector{
		residents: make(map[pp.ID]resident),
		waiters:   make(map[pp.ID]*waiter),
		matrix:    make(map[[2]int]sim.Duration),
	}
}

// Record implements core.EventSink. Every event first seals the
// current path segment (the state classified is the one that held
// since the previous event), then updates the resident/waiter sets.
func (c *Collector) Record(e core.Event) {
	c.seal(e.At)
	switch e.Kind {
	case core.EventAdmit:
		c.residents[e.ID] = resident{proc: e.Proc, demand: e.Demand.WorkingSet}
	case core.EventWake, core.EventFallback:
		if e.Kind == core.EventWake {
			// Wakes (including post-steal and post-evacuation re-admissions)
			// make the period a resident again.
			c.residents[e.ID] = resident{proc: e.Proc, demand: e.Demand.WorkingSet}
		}
		if w := c.waiters[e.ID]; w != nil {
			outcome := "wake"
			if e.Kind == core.EventFallback {
				outcome = "fallback"
			}
			c.close(w, e.At, outcome)
		}
	case core.EventEnd, core.EventReclaim:
		delete(c.residents, e.ID)
	case core.EventEvacuate:
		// The period left its shard; if the destination admitted it, the
		// EventWake that follows (same instant) restores residency. If it
		// landed on the destination's waitlist it holds no load and is
		// correctly dropped here; its eventual wake closes no waiter
		// (there was no deny) and simply re-adds it.
		delete(c.residents, e.ID)
	}
}

// RecordDeny implements core.BlameSink: open a wait interval carrying
// the denial-time blocker snapshot.
func (c *Collector) RecordDeny(e core.Event, blockers []core.Blocker) {
	c.seal(e.At)
	c.denies++
	w := &waiter{id: e.ID, proc: e.Proc, phase: e.Phase, denyAt: e.At}
	if len(blockers) > 0 {
		w.blockers = append([]core.Blocker(nil), blockers...)
		c.nBlamed++
	}
	c.waiters[e.ID] = w
}

// seal closes the path segment [segAt, at) under the current state.
func (c *Collector) seal(at sim.Time) {
	seg := at.DurationSince(c.segAt)
	if seg <= 0 {
		return
	}
	switch {
	case len(c.residents) > 0:
		c.path.Run += seg
	case c.nBlamed > 0:
		c.path.WaitBlamed += seg
	case len(c.waiters) > 0:
		c.path.WaitUnattributed += seg
	default:
		c.path.Idle += seg
	}
	c.segAt = at
}

// close seals waiter w's interval at time at and attributes its wait.
func (c *Collector) close(w *waiter, at sim.Time, outcome string) {
	delete(c.waiters, w.id)
	if len(w.blockers) > 0 {
		c.nBlamed--
	}
	wait := at.DurationSince(w.denyAt)
	pb := PeriodBlame{
		ID: w.id, Proc: w.proc, Phase: w.phase,
		DenyAt: w.denyAt, ClosedAt: at, Outcome: outcome, Wait: wait,
	}
	var totalDemand uint64
	for _, b := range w.blockers {
		totalDemand += uint64(b.Demand)
	}
	if totalDemand == 0 || wait <= 0 {
		pb.Unattributed = wait
	} else {
		// Exact fractional split: share_i = ⌊wait·d_i/D⌋ via 128-bit
		// intermediate (the quotient fits in 64 bits because d_i ≤ D),
		// then the remainder — strictly less than len(blockers)
		// picoseconds — goes one picosecond apiece to the lowest
		// admission IDs. Blockers arrive ID-sorted from the core.
		pb.Shares = make([]Share, len(w.blockers))
		var given sim.Duration
		for i, b := range w.blockers {
			hi, lo := bits.Mul64(uint64(wait), uint64(b.Demand))
			q, _ := bits.Div64(hi, lo, totalDemand)
			s := sim.Duration(q)
			pb.Shares[i] = Share{
				BlockerID: b.ID, BlockerProc: b.Proc,
				Demand: b.Demand, Blamed: s,
			}
			given += s
		}
		for i := 0; given < wait; i++ {
			pb.Shares[i].Blamed++
			given++
		}
		for _, s := range pb.Shares {
			c.matrix[[2]int{s.BlockerProc, w.proc}] += s.Blamed
		}
	}
	c.closed = append(c.closed, pb)
}

// Finish seals the run at time at: the final path segment closes, and
// waiters still open (still waitlisted at quiesce) close with outcome
// "unfinished", their wait measured to at. Call once, after the run.
func (c *Collector) Finish(at sim.Time) {
	if c.finished {
		return
	}
	c.finished = true
	c.seal(at)
	open := make([]*waiter, 0, len(c.waiters))
	for _, w := range c.waiters {
		open = append(open, w)
	}
	sort.Slice(open, func(i, j int) bool { return open[i].id < open[j].id })
	for _, w := range open {
		c.close(w, at, "unfinished")
	}
	c.path.Makespan = at.DurationSince(sim.Time(0))
}

// Report returns the collected attribution. The timeline is ordered by
// (DenyAt, ID) and the matrix by (BlockerProc, WaiterProc) — both total
// orders, so the report is deterministic for a deterministic run.
func (c *Collector) Report() *Report {
	r := &Report{
		Periods: append([]PeriodBlame(nil), c.closed...),
		Matrix:  sortMatrix(c.matrix),
		Path:    c.path,
		Denies:  c.denies,
	}
	sort.Slice(r.Periods, func(i, j int) bool {
		if r.Periods[i].DenyAt != r.Periods[j].DenyAt {
			return r.Periods[i].DenyAt < r.Periods[j].DenyAt
		}
		return r.Periods[i].ID < r.Periods[j].ID
	})
	for _, p := range r.Periods {
		r.TotalWait += p.Wait
		r.TotalBlamed += p.Blamed()
		r.TotalUnattributed += p.Unattributed
	}
	return r
}

func sortMatrix(cells map[[2]int]sim.Duration) []MatrixCell {
	out := make([]MatrixCell, 0, len(cells))
	for k, v := range cells {
		if v == 0 {
			continue
		}
		out = append(out, MatrixCell{BlockerProc: k[0], WaiterProc: k[1], Blamed: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].BlockerProc != out[j].BlockerProc {
			return out[i].BlockerProc < out[j].BlockerProc
		}
		return out[i].WaiterProc < out[j].WaiterProc
	})
	return out
}
