package blame

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"rdasched/internal/core"
	"rdasched/internal/machine"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
	"rdasched/internal/sim"
)

func ev(kind core.EventKind, at sim.Time, id pp.ID, prc int, ws pp.Bytes) core.Event {
	return core.Event{At: at, Kind: kind, ID: id, Proc: prc, Demand: pp.Demand{WorkingSet: ws}}
}

// TestAttributionExact pins the fractional split: wait 10 ps over three
// equal-demand blockers is 4+3+3 — floor shares plus the remainder one
// picosecond at a time to the lowest admission IDs.
func TestAttributionExact(t *testing.T) {
	c := NewCollector()
	blockers := []core.Blocker{
		{ID: 1, Proc: 0, Demand: pp.MiB},
		{ID: 2, Proc: 1, Demand: pp.MiB},
		{ID: 3, Proc: 2, Demand: pp.MiB},
	}
	c.Record(ev(core.EventAdmit, 0, 1, 0, pp.MiB))
	c.RecordDeny(ev(core.EventDeny, 5, 9, 7, pp.MiB), blockers)
	c.Record(ev(core.EventWake, 15, 9, 7, pp.MiB))
	c.Finish(20)
	r := c.Report()
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	if len(r.Periods) != 1 {
		t.Fatalf("got %d periods, want 1", len(r.Periods))
	}
	p := r.Periods[0]
	if p.Wait != 10 || p.Unattributed != 0 {
		t.Fatalf("wait %v unattributed %v, want 10/0", p.Wait, p.Unattributed)
	}
	want := []sim.Duration{4, 3, 3}
	for i, s := range p.Shares {
		if s.Blamed != want[i] {
			t.Errorf("share %d = %v, want %v", i, s.Blamed, want[i])
		}
	}
}

// TestAttributionDemandWeighted pins proportionality: a blocker with
// 3x the demand takes 3x the blame.
func TestAttributionDemandWeighted(t *testing.T) {
	c := NewCollector()
	blockers := []core.Blocker{
		{ID: 1, Proc: 0, Demand: 3 * pp.MiB},
		{ID: 2, Proc: 1, Demand: pp.MiB},
	}
	c.RecordDeny(ev(core.EventDeny, 0, 5, 4, pp.MiB), blockers)
	c.Record(ev(core.EventWake, 400, 5, 4, pp.MiB))
	c.Finish(400)
	p := c.Report().Periods[0]
	if p.Shares[0].Blamed != 300 || p.Shares[1].Blamed != 100 {
		t.Fatalf("shares %v/%v, want 300/100", p.Shares[0].Blamed, p.Shares[1].Blamed)
	}
}

// TestNoBlockersUnattributed: a deny with an empty resident set (demand
// bigger than clean capacity) leaves the whole wait unattributed.
func TestNoBlockersUnattributed(t *testing.T) {
	c := NewCollector()
	c.RecordDeny(ev(core.EventDeny, 0, 1, 0, 99*pp.MiB), nil)
	c.Record(ev(core.EventFallback, 70, 1, 0, 99*pp.MiB))
	c.Finish(100)
	r := c.Report()
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	p := r.Periods[0]
	if p.Unattributed != 70 || len(p.Shares) != 0 || p.Outcome != "fallback" {
		t.Fatalf("unattributed %v shares %d outcome %q", p.Unattributed, len(p.Shares), p.Outcome)
	}
	if r.Path.WaitUnattributed != 70 || r.Path.Idle != 30 {
		t.Fatalf("path %+v, want 70 unattributed + 30 idle", r.Path)
	}
}

// TestUnfinishedWaiterClosesAtFinish: waiters still open at Finish
// close with their wait measured to the finish instant.
func TestUnfinishedWaiterClosesAtFinish(t *testing.T) {
	c := NewCollector()
	c.Record(ev(core.EventAdmit, 0, 1, 0, 2*pp.MiB))
	c.RecordDeny(ev(core.EventDeny, 10, 2, 1, pp.MiB),
		[]core.Blocker{{ID: 1, Proc: 0, Demand: 2 * pp.MiB}})
	c.Finish(110)
	r := c.Report()
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	p := r.Periods[0]
	if p.Outcome != "unfinished" || p.Wait != 100 || p.Blamed() != 100 {
		t.Fatalf("got %+v, want unfinished wait=100 fully blamed", p)
	}
	// Blocker 1 never ended: the whole makespan is Run.
	if r.Path.Run != 110 || r.Path.Makespan != 110 {
		t.Fatalf("path %+v, want run=makespan=110", r.Path)
	}
}

// TestPathDecomposition walks all four segment classes.
func TestPathDecomposition(t *testing.T) {
	c := NewCollector()
	// [0,10) idle; [10,40) run (30); [40,70) wait-blamed; [70,90)
	// wait-unattributed (the blamed waiter woke and ended, an unblamed
	// one remains); [90,100) idle again.
	c.Record(ev(core.EventAdmit, 10, 1, 0, pp.MiB))
	c.RecordDeny(ev(core.EventDeny, 20, 2, 1, pp.MiB),
		[]core.Blocker{{ID: 1, Proc: 0, Demand: pp.MiB}})
	c.RecordDeny(ev(core.EventDeny, 30, 3, 2, 99*pp.MiB), nil)
	c.Record(ev(core.EventEnd, 40, 1, 0, pp.MiB))
	c.Record(ev(core.EventWake, 70, 2, 1, pp.MiB))
	c.Record(ev(core.EventEnd, 70, 2, 1, pp.MiB))
	c.Record(ev(core.EventFallback, 90, 3, 2, 99*pp.MiB))
	c.Finish(100)
	r := c.Report()
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	want := Path{Run: 30, WaitBlamed: 30, WaitUnattributed: 20, Idle: 20, Makespan: 100}
	if r.Path != want {
		t.Fatalf("path %+v, want %+v", r.Path, want)
	}
}

// TestMerge folds two reports and re-checks conservation and matrix
// aggregation.
func TestMerge(t *testing.T) {
	mk := func(blockerProc int) *Report {
		c := NewCollector()
		c.Record(ev(core.EventAdmit, 0, 1, blockerProc, pp.MiB))
		c.RecordDeny(ev(core.EventDeny, 0, 2, 9, pp.MiB),
			[]core.Blocker{{ID: 1, Proc: blockerProc, Demand: pp.MiB}})
		c.Record(ev(core.EventWake, 50, 2, 9, pp.MiB))
		c.Finish(50)
		return c.Report()
	}
	var agg Report
	agg.Merge(mk(0))
	agg.Merge(mk(0))
	agg.Merge(mk(3))
	if err := agg.Check(); err != nil {
		t.Fatal(err)
	}
	if agg.TotalWait != 150 || len(agg.Matrix) != 2 {
		t.Fatalf("total %v matrix %v", agg.TotalWait, agg.Matrix)
	}
	if agg.Matrix[0].Blamed != 100 || agg.Matrix[1].Blamed != 50 {
		t.Fatalf("matrix %v, want 100 from proc0 and 50 from proc3", agg.Matrix)
	}
	if agg.Path.Makespan != 150 {
		t.Fatalf("merged makespan %v, want 150", agg.Path.Makespan)
	}
}

// contendedWorkload puts two 9 MiB hogs and two small processes on the
// 15 MiB LLC so strict admission must waitlist somebody.
func contendedWorkload() proc.Workload {
	hog := proc.Phase{
		Name: "hog", Instr: 4e6, WSS: 9 * pp.MiB, Reuse: pp.ReuseHigh,
		AccessesPerInstr: 0.3, PrivateHitFrac: 0.6, Declared: true,
	}
	small := proc.Phase{
		Name: "small", Instr: 2e6, WSS: 2 * pp.MiB, Reuse: pp.ReuseMed,
		AccessesPerInstr: 0.3, PrivateHitFrac: 0.7, Declared: true,
	}
	w := proc.Workload{Name: "contended"}
	for i := 0; i < 2; i++ {
		w.Procs = append(w.Procs, proc.Spec{Name: "hog", Threads: 2, Program: proc.Program{hog}})
	}
	for i := 0; i < 2; i++ {
		w.Procs = append(w.Procs, proc.Spec{Name: "small", Threads: 1, Program: proc.Program{small}})
	}
	return w
}

// runCollector drives a workload through the real scheduler with a
// Collector attached and returns the checked report.
func runCollector(t *testing.T, w proc.Workload) *Report {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.MaxSimTime = 600 * sim.Second
	s := core.New(core.StrictPolicy{}, cfg.LLCCapacity)
	m := machine.New(cfg, s)
	s.SetWaker(m)
	s.SetClock(m.Now)
	c := NewCollector()
	s.AddSink(c)
	if err := m.AddWorkload(w); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	s.Quiesce()
	c.Finish(m.Now())
	r := c.Report()
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestCollectorOnScheduler is the end-to-end smoke: real contention,
// real decision stream, exact conservation, non-trivial matrix.
func TestCollectorOnScheduler(t *testing.T) {
	r := runCollector(t, contendedWorkload())
	if r.Denies == 0 || len(r.Periods) == 0 {
		t.Fatalf("contended workload produced no denies (report %+v)", r)
	}
	if r.TotalBlamed == 0 {
		t.Fatal("contention produced no blamed wait")
	}
	if len(r.Matrix) == 0 {
		t.Fatal("empty interference matrix under contention")
	}
	if r.Path.Makespan == 0 || r.Path.Run == 0 {
		t.Fatalf("degenerate path %+v", r.Path)
	}
}

// TestCollectorDeterminism: two identical runs produce deeply equal
// reports — the property that makes e8.golden byte-stable.
func TestCollectorDeterminism(t *testing.T) {
	a := runCollector(t, contendedWorkload())
	b := runCollector(t, contendedWorkload())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reruns diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// randomWorkload mirrors the core fuzz generator: arbitrary-but-valid
// mixes of declared/undeclared phases, barriers, and task pools.
func randomWorkload(seed uint64, maxProcs int) proc.Workload {
	rng := sim.NewRNG(seed)
	n := 1 + rng.Intn(maxProcs)
	w := proc.Workload{Name: "fuzz"}
	for p := 0; p < n; p++ {
		threads := 1 + rng.Intn(4)
		phases := 1 + rng.Intn(4)
		var prog proc.Program
		for q := 0; q < phases; q++ {
			ph := proc.Phase{
				Name:             "ph",
				Instr:            float64(1+rng.Intn(20)) * 1e5,
				WSS:              pp.Bytes(1+rng.Intn(30)) * pp.MiB,
				Reuse:            pp.Reuse(rng.Intn(3)),
				AccessesPerInstr: 0.1 + 0.4*rng.Float64(),
				PrivateHitFrac:   0.5 + 0.4*rng.Float64(),
				StreamFrac:       rng.Float64(),
				FlopsPerInstr:    rng.Float64(),
				Declared:         rng.Intn(3) != 0,
				BarrierAfter:     rng.Intn(4) == 0,
			}
			if rng.Intn(8) == 0 {
				ph.CachePartition = pp.Bytes(1+rng.Intn(4)) * pp.MiB
			}
			prog = append(prog, ph)
		}
		w.Procs = append(w.Procs, proc.Spec{
			Name:     "fz",
			Threads:  threads,
			Program:  prog,
			TaskPool: rng.Intn(4) == 0,
		})
	}
	return w
}

// checkBlameInvariants drives one random workload through the full
// stack with a blame collector attached and verifies, for any input:
//
//  1. the run completes;
//  2. conservation: Σ shares + unattributed = wait, per period and in
//     total, matrix sum = total blamed, path classes sum to makespan;
//  3. the report is identical across a rerun (determinism).
//
// Shared by the quick.Check sweep and FuzzBlameInvariants.
func checkBlameInvariants(seed uint64, polIdx uint8) error {
	policies := []core.Policy{core.StrictPolicy{}, core.NewCompromise(), core.AlwaysPolicy{}}
	pol := policies[int(polIdx)%len(policies)]
	run := func() (*Report, error) {
		w := randomWorkload(seed, 8)
		cfg := machine.DefaultConfig()
		cfg.MaxSimTime = 600 * sim.Second
		s := core.New(pol, cfg.LLCCapacity)
		m := machine.New(cfg, s)
		s.SetWaker(m)
		s.SetClock(m.Now)
		c := NewCollector()
		s.AddSink(c)
		if err := m.AddWorkload(w); err != nil {
			return nil, fmt.Errorf("seed %d: invalid workload: %v", seed, err)
		}
		if _, err := m.Run(); err != nil {
			return nil, fmt.Errorf("seed %d policy %s: %v", seed, pol.Name(), err)
		}
		s.Quiesce()
		c.Finish(m.Now())
		return c.Report(), nil
	}
	a, err := run()
	if err != nil {
		return err
	}
	if err := a.Check(); err != nil {
		return fmt.Errorf("seed %d policy %s: %v", seed, pol.Name(), err)
	}
	b, err := run()
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(a, b) {
		return fmt.Errorf("seed %d policy %s: blame reports diverged across reruns", seed, pol.Name())
	}
	return nil
}

// TestFuzzBlameInvariants is the quick.Check sweep; FuzzBlameInvariants
// explores further from the committed corpus under `make fuzz`.
func TestFuzzBlameInvariants(t *testing.T) {
	f := func(seed uint64, polIdx uint8) bool {
		if err := checkBlameInvariants(seed, polIdx); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// FuzzBlameInvariants is the native fuzz entry point for conservation
// and determinism of the attribution engine.
func FuzzBlameInvariants(f *testing.F) {
	for _, c := range [][2]uint64{
		{0, 0}, {1, 1}, {2, 2}, {1337, 0}, {^uint64(0), 1},
	} {
		f.Add(c[0], uint8(c[1]))
	}
	f.Fuzz(func(t *testing.T, seed uint64, polIdx uint8) {
		if err := checkBlameInvariants(seed, polIdx); err != nil {
			t.Error(err)
		}
	})
}
