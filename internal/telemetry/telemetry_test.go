package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if got := r.Counter("x_total").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth")
	g.Set(3)
	g.Add(-1)
	if got := r.Gauge("depth").Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram()
	// 100 observations: 1..100. p50 falls in (32,64], p99 in (64,128].
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 || h.Sum() != 5050 {
		t.Fatalf("count/sum = %d/%v, want 100/5050", h.Count(), h.Sum())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v, want 1/100", h.Min(), h.Max())
	}
	if got := h.Quantile(0.50); got != 64 {
		t.Fatalf("p50 = %v, want 64 (bucket upper bound)", got)
	}
	// p99's bucket is (64,128], but the bound is clamped to the max.
	if got := h.Quantile(0.99); got != 100 {
		t.Fatalf("p99 = %v, want 100 (clamped to max)", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("p100 = %v, want 100", got)
	}
}

func TestHistogramZeroAndPowerOfTwoEdges(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(-3)
	h.Observe(1)   // frexp exponent 1: bucket [1, 2)
	h.Observe(2)   // bucket [2, 4)
	h.Observe(0.5) // bucket [0.5, 1)
	// Bucket.UpperBound is exclusive: value v lands in the bucket whose
	// bound is the smallest power of two strictly greater than v.
	bs := h.Buckets()
	want := []Bucket{{0, 2}, {1, 1}, {2, 1}, {4, 1}}
	if len(bs) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", bs, want)
	}
	for i, w := range want {
		if bs[i] != w {
			t.Fatalf("bucket[%d] = %+v, want %+v", i, bs[i], w)
		}
	}
	if got := h.Quantile(0.2); got != 0 {
		t.Fatalf("p20 = %v, want 0 (zero bucket)", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 10; i++ {
		a.Observe(1)
		b.Observe(100)
	}
	a.Merge(b)
	if a.Count() != 20 || a.Sum() != 1010 {
		t.Fatalf("merged count/sum = %d/%v", a.Count(), a.Sum())
	}
	if a.Min() != 1 || a.Max() != 100 {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	// Quantiles are bucket upper bounds: the ten 1s fill bucket [1,2).
	if got := a.Quantile(0.5); got != 2 {
		t.Fatalf("merged p50 = %v, want 2", got)
	}
}

func TestRegistryMergeDeterminism(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("a_total").Add(2)
		r.Gauge("g").Set(1.5)
		r.Histogram("h_seconds").Observe(0.01)
		return r
	}
	m1, m2 := NewRegistry(), NewRegistry()
	for i := 0; i < 3; i++ {
		m1.Merge(build())
		m2.Merge(build())
	}
	var b1, b2 bytes.Buffer
	if err := m1.WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := m2.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("merged expositions differ:\n%s\n---\n%s", b1.String(), b2.String())
	}
	if m1.Counter("a_total").Value() != 6 {
		t.Fatalf("merged counter = %d, want 6", m1.Counter("a_total").Value())
	}
	if m1.Histogram("h_seconds").Count() != 3 {
		t.Fatalf("merged hist count = %d, want 3", m1.Histogram("h_seconds").Count())
	}
	// Gauges merge by max.
	if m1.Gauge("g").Value() != 1.5 {
		t.Fatalf("merged gauge = %v, want 1.5", m1.Gauge("g").Value())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("rda_periods_admitted_total").Add(3)
	r.Gauge("rda_active_periods").Set(2)
	h := r.Histogram("rda_wait_seconds")
	h.Observe(0)
	h.Observe(0.75)
	h.Observe(3)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE rda_periods_admitted_total counter
rda_periods_admitted_total 3
# TYPE rda_active_periods gauge
rda_active_periods 2
# TYPE rda_wait_seconds histogram
rda_wait_seconds_bucket{le="0"} 1
rda_wait_seconds_bucket{le="1"} 2
rda_wait_seconds_bucket{le="4"} 3
rda_wait_seconds_bucket{le="+Inf"} 3
rda_wait_seconds_sum 3.75
rda_wait_seconds_count 3
`
	if b.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestWriteJSONValidAndDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Inc()
	r.Gauge("g").Set(math.Pi)
	for i := 1; i <= 8; i++ {
		r.Histogram("h").Observe(float64(i))
	}
	var b1, b2 bytes.Buffer
	if err := r.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("JSON exposition is not deterministic")
	}
	var decoded map[string]any
	if err := json.Unmarshal(b1.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b1.String())
	}
	for _, key := range []string{"counters", "gauges", "histograms"} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("missing %q in %s", key, b1.String())
		}
	}
	if !strings.Contains(b1.String(), `"p95"`) {
		t.Fatalf("missing quantiles in %s", b1.String())
	}
}

func TestEmptyRegistryExposition(t *testing.T) {
	r := NewRegistry()
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty registry exposition = %q, want empty", b.String())
	}
	b.Reset()
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(b.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
}
