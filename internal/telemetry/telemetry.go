// Package telemetry is the scheduler observability substrate: a
// stdlib-only metrics registry (counters, gauges, log-bucketed
// histograms) with Prometheus text-exposition and JSON encoders, plus
// the trace subpackage's streaming decision spans.
//
// The registry is built for deterministic simulation, not for a live
// multi-threaded server: instruments are plain fields with no atomics
// or locks, every value derives from virtual-clock quantities, and
// exposition iterates names in sorted order, so two runs that make the
// same decisions render byte-identical expositions. Parallel experiment
// replications (internal/runner) each own a private Registry; the
// harness merges them with Merge in job-index order, which keeps the
// aggregate a pure function of the job list exactly like every other
// experiment output.
package telemetry

import (
	"sort"
)

// Counter is a monotonically increasing uint64 instrument.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is an instantaneous float64 instrument (last value wins).
type Gauge struct {
	v float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add offsets the value.
func (g *Gauge) Add(v float64) { g.v += v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Registry holds named instruments. Names follow Prometheus
// conventions (snake_case, unit-suffixed, counters end in _total).
// Lookups are get-or-create; hot paths should resolve instruments once
// and keep the pointers.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named log-bucketed histogram, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	h := r.hists[name]
	if h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Merge folds other into r: counters and histograms add, gauges take
// the maximum (the only order-free combination for instantaneous
// values; the gauges here — waitlist depth, active periods — are
// "high-water" readings where max is also the useful aggregate).
// Callers merging per-job registries must do so in job-index order so
// that even float rounding is deterministic.
func (r *Registry) Merge(other *Registry) {
	if other == nil {
		return
	}
	for name, c := range other.counters {
		r.Counter(name).Add(c.v)
	}
	for name, g := range other.gauges {
		rg := r.Gauge(name)
		if g.v > rg.v {
			rg.v = g.v
		}
	}
	for name, h := range other.hists {
		r.Histogram(name).Merge(h)
	}
}

// counterNames, gaugeNames, histNames return sorted name lists — the
// iteration order every encoder uses.
func (r *Registry) counterNames() []string { return sortedKeys(r.counters) }
func (r *Registry) gaugeNames() []string   { return sortedKeys(r.gauges) }
func (r *Registry) histNames() []string    { return sortedKeys(r.hists) }

func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
