// Package telemetry is the scheduler observability substrate: a
// stdlib-only metrics registry (counters, gauges, log-bucketed
// histograms) with Prometheus text-exposition and JSON encoders, plus
// the trace subpackage's streaming decision spans.
//
// The registry is built for deterministic simulation first: every value
// derives from virtual-clock quantities and exposition iterates names
// in sorted order, so two runs that make the same decisions render
// byte-identical expositions. Parallel experiment replications
// (internal/runner) each own a private Registry; the harness merges
// them with Merge in job-index order, which keeps the aggregate a pure
// function of the job list exactly like every other experiment output.
//
// Writer contract: instruments are SINGLE-WRITER — exactly one
// goroutine (the simulation driving the scheduler) mutates a given
// registry's instruments, so written values stay a deterministic
// function of the decision stream. Reads, however, may come from
// anywhere at any time: the live introspection server (internal/obsrv)
// scrapes /metrics mid-run from an HTTP goroutine. Counter and Gauge
// are atomics, Histogram carries a mutex, and the instrument maps are
// guarded by the registry mutex, so a concurrent Snapshot (and the
// encoders, which render from one) observes a consistent, race-free
// image without ever blocking the writer for more than an instrument
// copy.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 instrument. Writes are
// single-writer (see the package comment); loads may race with them and
// are atomic.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous float64 instrument (last value wins),
// stored as atomic bits so a concurrent scrape never reads a torn
// float.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add offsets the value. Single-writer: the load-op-store pair is not
// atomic against other writers, only against readers.
func (g *Gauge) Add(v float64) { g.Set(g.Value() + v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry holds named instruments. Names follow Prometheus
// conventions (snake_case, unit-suffixed, counters end in _total).
// Lookups are get-or-create; hot paths should resolve instruments once
// and keep the pointers.
type Registry struct {
	mu       sync.Mutex // guards the maps (registration and iteration)
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named log-bucketed histogram, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot returns a deep copy of the registry: fresh instruments
// holding the values observed at the call, with no aliasing back into
// r. It is safe to call from any goroutine while the writer keeps
// emitting — this is the path a mid-run /metrics scrape takes — and the
// copy is a plain single-owner registry the encoders can render without
// further synchronization.
func (r *Registry) Snapshot() *Registry {
	// Copy the instrument pointer maps under the registry lock (cheap),
	// then read each instrument outside it (counters and gauges are
	// atomic; histograms lock themselves), so the writer is never stalled
	// behind an exposition render.
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()

	out := NewRegistry()
	for n, c := range counters {
		cc := &Counter{}
		cc.v.Store(c.Value())
		out.counters[n] = cc
	}
	for n, g := range gauges {
		gg := &Gauge{}
		gg.Set(g.Value())
		out.gauges[n] = gg
	}
	for n, h := range hists {
		out.hists[n] = h.clone()
	}
	return out
}

// Merge folds other into r: counters and histograms add, gauges take
// the maximum (the only order-free combination for instantaneous
// values; the gauges here — waitlist depth, active periods — are
// "high-water" readings where max is also the useful aggregate).
// Callers merging per-job registries must do so in job-index order so
// that even float rounding is deterministic. Merge reads other through
// a snapshot, so it tolerates other still being written.
func (r *Registry) Merge(other *Registry) {
	if other == nil {
		return
	}
	snap := other.Snapshot()
	for name, c := range snap.counters {
		r.Counter(name).Add(c.Value())
	}
	for name, g := range snap.gauges {
		rg := r.Gauge(name)
		if v := g.Value(); v > rg.Value() {
			rg.Set(v)
		}
	}
	for name, h := range snap.hists {
		r.Histogram(name).Merge(h)
	}
}

// counterNames, gaugeNames, histNames return sorted name lists — the
// iteration order every encoder uses.
func (r *Registry) counterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeys(r.counters)
}

func (r *Registry) gaugeNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeys(r.gauges)
}

func (r *Registry) histNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeys(r.hists)
}

func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
