package telemetry

import (
	"math"
	"sort"
	"sync"
)

// Histogram is a log-bucketed distribution: every positive observation
// lands in the power-of-two bucket [2^(e-1), 2^e) selected with
// math.Frexp, so bucketing costs one exponent extraction — no libm
// calls whose rounding could differ across platforms — and ~60 buckets
// cover the full float64 range. Non-positive observations land in a
// dedicated zero bucket. The histogram keeps exact count, sum, min,
// and max alongside the buckets; quantiles are read from the bucket
// boundaries (an upper bound, so reported tails never understate).
//
// A histogram updates several fields per observation, so unlike
// Counter/Gauge it synchronizes with a mutex: Observe and Merge are
// single-writer like every instrument, and the mutex exists so a
// concurrent Snapshot (a mid-run scrape) reads a consistent image.
type Histogram struct {
	mu      sync.Mutex
	buckets map[int]uint64 // frexp exponent → count, values in [2^(e-1), 2^e)
	zero    uint64         // observations <= 0
	count   uint64
	sum     float64
	min     float64
	max     float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make(map[int]uint64)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if v <= 0 {
		h.zero++
		return
	}
	_, e := math.Frexp(v)
	h.buckets[e]++
}

// clone returns a private deep copy, consistent at one instant.
func (h *Histogram) clone() *Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := &Histogram{
		buckets: make(map[int]uint64, len(h.buckets)),
		zero:    h.zero, count: h.count, sum: h.sum, min: h.min, max: h.max,
	}
	for e, n := range h.buckets {
		out.buckets[e] = n
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Min and Max return the extreme observations (0 when empty).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Merge adds other's observations into h. It reads other through a
// consistent copy, so merging a histogram that is still being written
// is safe (the copy is whatever the writer had published at the call).
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	o := other.clone()
	if o.count == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	h.zero += o.zero
	for e, n := range o.buckets {
		h.buckets[e] += n
	}
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// upper boundary of the bucket holding the ceil(q*count)-th smallest
// observation, clamped to the observed maximum. Returns 0 for an empty
// histogram.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	if rank <= h.zero {
		return 0
	}
	cum := h.zero
	for _, e := range h.exponentsLocked() {
		cum += h.buckets[e]
		if cum >= rank {
			ub := math.Ldexp(1, e)
			if ub > h.max {
				return h.max
			}
			return ub
		}
	}
	return h.max
}

// exponentsLocked returns the populated bucket exponents in ascending
// order; the caller holds h.mu.
func (h *Histogram) exponentsLocked() []int {
	es := make([]int, 0, len(h.buckets))
	for e := range h.buckets {
		es = append(es, e)
	}
	sort.Ints(es)
	return es
}

// Bucket is one populated histogram bucket in the exposition encoders:
// Count observations with values < UpperBound (the zero bucket reports
// UpperBound 0 and holds values <= 0).
type Bucket struct {
	UpperBound float64
	Count      uint64
}

// Buckets returns the populated buckets in ascending boundary order,
// with non-cumulative counts.
func (h *Histogram) Buckets() []Bucket {
	h.mu.Lock()
	defer h.mu.Unlock()
	var bs []Bucket
	if h.zero > 0 {
		bs = append(bs, Bucket{UpperBound: 0, Count: h.zero})
	}
	for _, e := range h.exponentsLocked() {
		bs = append(bs, Bucket{UpperBound: math.Ldexp(1, e), Count: h.buckets[e]})
	}
	return bs
}
