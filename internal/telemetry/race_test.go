package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestScrapeDuringWrite is the live-scrape contract under the race
// detector: one goroutine hammers every instrument kind (the
// single-writer engine goroutine) while others concurrently render both
// expositions, snapshot, lint, and merge — the /metrics handler's read
// paths. Run with -race; the test also checks the reads return
// well-formed output, not just that they survive.
func TestScrapeDuringWrite(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	var wg sync.WaitGroup

	go func() {
		defer close(writerDone)
		c := r.Counter("rda_test_events_total")
		g := r.Gauge("rda_test_load_bytes")
		h := r.Histogram("rda_test_wait_seconds")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Inc()
			g.Set(float64(i % 1024))
			h.Observe(float64(i%100) / 10)
			if i%256 == 0 {
				// Exercise get-or-create under contention too.
				r.Counter("rda_test_late_total").Inc()
			}
		}
	}()

	readers := []func() error{
		func() error {
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				return err
			}
			if buf.Len() > 0 && !strings.Contains(buf.String(), "# TYPE") {
				t.Error("prometheus exposition missing TYPE lines")
			}
			return nil
		},
		func() error {
			var buf bytes.Buffer
			return r.WriteJSON(&buf)
		},
		func() error {
			snap := r.Snapshot()
			var buf bytes.Buffer
			return snap.WritePrometheus(&buf)
		},
		func() error {
			for _, err := range r.Lint() {
				t.Errorf("lint: %v", err)
			}
			return nil
		},
		func() error {
			agg := NewRegistry()
			agg.Merge(r)
			return nil
		},
	}
	for _, read := range readers {
		read := read
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := read(); err != nil {
					t.Errorf("concurrent read: %v", err)
					return
				}
			}
		}()
	}

	// The writer loops until told to stop; stop it once every reader has
	// finished its 50 iterations, so writes overlap reads the whole time.
	wg.Wait()
	close(stop)
	<-writerDone
}

// TestSnapshotIsConsistentCopy pins Snapshot semantics: the copy holds
// the values at the call, and later writes to the live registry do not
// leak into it.
func TestSnapshotIsConsistentCopy(t *testing.T) {
	r := NewRegistry()
	r.Counter("rda_a_total").Add(3)
	r.Gauge("rda_b").Set(1.5)
	r.Histogram("rda_c").Observe(2)

	snap := r.Snapshot()

	r.Counter("rda_a_total").Add(10)
	r.Gauge("rda_b").Set(9)
	r.Histogram("rda_c").Observe(64)
	r.Counter("rda_new_total").Inc()

	if got := snap.Counter("rda_a_total").Value(); got != 3 {
		t.Fatalf("snapshot counter = %d, want 3 (live writes leaked in)", got)
	}
	if got := snap.Gauge("rda_b").Value(); got != 1.5 {
		t.Fatalf("snapshot gauge = %g, want 1.5", got)
	}
	if got := snap.Histogram("rda_c").Count(); got != 1 {
		t.Fatalf("snapshot histogram count = %d, want 1", got)
	}
	var live, frozen bytes.Buffer
	if err := r.WritePrometheus(&live); err != nil {
		t.Fatal(err)
	}
	if err := snap.WritePrometheus(&frozen); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(frozen.String(), "rda_new_total") {
		t.Fatal("snapshot grew an instrument created after the snapshot")
	}
	if !strings.Contains(live.String(), "rda_new_total") {
		t.Fatal("live registry lost an instrument")
	}
}

// TestSnapshotExpositionMatchesQuiescent: rendering through the public
// encoders (which snapshot internally) must be byte-identical to
// rendering the registry when nothing is writing — snapshotting is a
// concurrency mechanism, never a format change.
func TestSnapshotExpositionMatchesQuiescent(t *testing.T) {
	r := NewRegistry()
	r.Counter("rda_x_total").Add(7)
	r.Gauge("rda_y").Set(3.25)
	h := r.Histogram("rda_z_seconds")
	for _, v := range []float64{0.1, 0.5, 2, 2, 8, 0} {
		h.Observe(v)
	}
	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("snapshot exposition differs from live:\nlive:\n%s\nsnapshot:\n%s", a.String(), b.String())
	}
}
