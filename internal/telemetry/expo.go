package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Exposition encoders. Both render from a Snapshot — a private,
// consistent copy of the registry — so scraping a registry mid-run
// (the live /metrics endpoint) is race-free, and both iterate
// instruments in sorted-name order and format numbers with strconv's
// shortest round-trip representation, so a registry's exposition is a
// deterministic function of its contents — expositions can be diffed,
// golden-pinned, and compared across worker counts.

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). Histograms render cumulative
// le-buckets plus _sum and _count, like a native Prometheus histogram.
// Safe to call while the writer goroutine is still emitting.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().writePrometheus(w)
}

// writePrometheus renders a snapshot the caller owns exclusively.
func (r *Registry) writePrometheus(w io.Writer) error {
	for _, name := range r.counterNames() {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n",
			name, name, r.counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range r.gaugeNames() {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n",
			name, name, fnum(r.gauges[name].Value())); err != nil {
			return err
		}
	}
	for _, name := range r.histNames() {
		h := r.hists[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum uint64
		for _, b := range h.Buckets() {
			cum += b.Count
			// The overflow bucket (frexp exponent past the float64 range)
			// has an infinite upper bound; its count belongs to the
			// mandatory +Inf line below, and emitting it here would
			// duplicate that series.
			if math.IsInf(b.UpperBound, 1) {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
				name, labelEscaper.Replace(fnum(b.UpperBound)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			name, h.count, name, fnum(h.sum), name, h.count); err != nil {
			return err
		}
	}
	return nil
}

// fnum formats a float with the shortest representation that
// round-trips, matching Prometheus client conventions.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// labelEscaper escapes a label value exactly as the text exposition
// format (version 0.0.4) specifies: backslash, double quote, and
// newline, nothing else. Go's %q verb escapes a superset (tabs,
// non-printables, non-ASCII) in Go syntax, which a strict Prometheus
// parser is not required to accept; for the numeric le values emitted
// today the two agree byte for byte, so swapping the escaper changed no
// exposition output.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// jsonHistogram is the JSON shape of one histogram.
type jsonHistogram struct {
	Count   uint64       `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	P50     float64      `json:"p50"`
	P95     float64      `json:"p95"`
	P99     float64      `json:"p99"`
	Buckets []jsonBucket `json:"buckets,omitempty"`
}

type jsonBucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// WriteJSON renders the registry as a single JSON object with
// "counters", "gauges", and "histograms" members. encoding/json sorts
// map keys, so the output is deterministic. Safe to call while the
// writer goroutine is still emitting (renders from a Snapshot).
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.Snapshot().writeJSON(w)
}

// writeJSON renders a snapshot the caller owns exclusively.
func (r *Registry) writeJSON(w io.Writer) error {
	counters := make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]jsonHistogram, len(r.hists))
	for name, h := range r.hists {
		jh := jsonHistogram{
			Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
		}
		for _, b := range h.Buckets() {
			le := b.UpperBound
			// JSON has no +Inf literal (encoding/json rejects it), so the
			// overflow bucket's boundary is clamped to the largest finite
			// float — still an upper bound for everything in the bucket.
			if math.IsInf(le, 1) {
				le = math.MaxFloat64
			}
			jh.Buckets = append(jh.Buckets, jsonBucket{LE: le, Count: b.Count})
		}
		hists[name] = jh
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Counters   map[string]uint64        `json:"counters"`
		Gauges     map[string]float64       `json:"gauges"`
		Histograms map[string]jsonHistogram `json:"histograms"`
	}{counters, gauges, hists})
}
