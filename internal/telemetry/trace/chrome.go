package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"rdasched/internal/sim"
)

// Chrome trace-event export. The format is the JSON object form of the
// Trace Event Format (the chrome://tracing and Perfetto legacy-JSON
// loader): a "traceEvents" array of complete ("X") and instant ("i")
// events with microsecond timestamps. Mapping:
//
//   - pid = rep*1000 + proc, so each replication renders as its own
//     process group and each simulated process as a track group;
//   - tid = phase index, so a process's phases stack as rows and one
//     (proc, phase) never overlaps itself;
//   - a waitlisted period renders as a "wait" slice (Begin→Admit)
//     followed by a "period" slice (Admit→End); an immediately admitted
//     period renders as the "period" slice alone;
//   - rejects and late ends render as instant events.
//
// Marshaling goes through encoding/json structs — field order is
// declaration order, floats use strconv's shortest round-trip form —
// so a trace is byte-for-byte deterministic in its spans.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// usec converts virtual picoseconds to trace microseconds.
func usec[T ~int64](v T) float64 { return float64(v) / 1e6 }

// chromeEvents converts spans to trace events in span order.
func chromeEvents(spans []Span) []chromeEvent {
	events := make([]chromeEvent, 0, len(spans))
	for _, sp := range spans {
		pid := sp.Rep*1000 + sp.Proc
		name := fmt.Sprintf("proc%d/phase%d", sp.Proc, sp.Phase)
		if sp.Proc < 0 {
			// Governor ladder transitions: period-less marks with the
			// level in Phase; render them on their own track.
			name = "governor"
		}
		if sp.Close == "instant" {
			args := map[string]any{"demand_bytes": int64(sp.Demand)}
			if sp.Outcome == "place" || sp.Outcome == "steal" {
				// Domain decisions carry their target; other marks keep
				// their historical shape byte for byte.
				args["domain"] = sp.Domain
			}
			events = append(events, chromeEvent{
				Name: name + " " + sp.Outcome, Cat: "mark", Ph: "i",
				Ts: usec(sp.Begin), Pid: pid, Tid: sp.Phase, S: "t",
				Args: args,
			})
			continue
		}
		if w := sp.Wait(); w > 0 {
			events = append(events, chromeEvent{
				Name: name + " wait", Cat: "wait", Ph: "X",
				Ts: usec(sp.Begin), Dur: usec(w), Pid: pid, Tid: sp.Phase,
				Args: map[string]any{
					"demand_bytes": int64(sp.Demand),
					"outcome":      sp.Outcome,
				},
			})
		}
		if sp.Outcome == "unfinished" {
			continue
		}
		events = append(events, chromeEvent{
			Name: name, Cat: "period", Ph: "X",
			Ts: usec(sp.Admit), Dur: usec(sp.Run()), Pid: pid, Tid: sp.Phase,
			Args: map[string]any{
				"id":           int64(sp.ID),
				"demand_bytes": int64(sp.Demand),
				"outcome":      sp.Outcome,
				"close":        sp.Close,
				"wait_us":      usec(sp.Wait()),
				"load_bytes":   int64(sp.Load),
			},
		})
	}
	return events
}

// Counter is one sample on a Perfetto counter track (a ph:"C" event).
// The SLO burn-rate timeline exports this way so burn renders as a
// graph above the decision spans.
type Counter struct {
	// Name is the track name; samples sharing a (Pid, Name) pair form
	// one track.
	Name string
	// At is the sample's virtual timestamp.
	At sim.Time
	// Value is the sampled value.
	Value float64
	// Pid groups the track with a span process group (rep*1000 + proc
	// convention; 0 for run-global tracks).
	Pid int
}

// WriteChromeWithCounters writes spans plus counter tracks as one
// Chrome trace-event JSON object. WriteChrome's encoding is pinned by
// goldens, so counters extend the document through this separate entry
// point: with no counters the output is byte-identical to WriteChrome.
func WriteChromeWithCounters(w io.Writer, spans []Span, counters []Counter) error {
	events := chromeEvents(spans)
	for _, c := range counters {
		events = append(events, chromeEvent{
			Name: c.Name, Cat: "counter", Ph: "C",
			Ts: usec(c.At), Pid: c.Pid,
			Args: map[string]any{"value": c.Value},
		})
	}
	return writeChromeDoc(w, events)
}

// WriteChrome writes the spans as a Chrome trace-event JSON object. The
// encoded bytes are round-trip checked through json.Unmarshal before
// anything is written, so a non-nil return guarantees w received either
// nothing or a complete, valid document.
func WriteChrome(w io.Writer, spans []Span) error {
	return writeChromeDoc(w, chromeEvents(spans))
}

func writeChromeDoc(w io.Writer, events []chromeEvent) error {
	doc := chromeTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
	}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []chromeEvent{}
	}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	data = append(data, '\n')
	var check struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &check); err != nil {
		return fmt.Errorf("trace: encoded document does not re-parse: %w", err)
	}
	if len(check.TraceEvents) != len(doc.TraceEvents) {
		return fmt.Errorf("trace: round-trip lost events: %d != %d",
			len(check.TraceEvents), len(doc.TraceEvents))
	}
	_, err = w.Write(data)
	return err
}
