// Package trace turns the scheduler's streaming decision events into
// per-period spans and exports them as Chrome trace-event JSON, the
// format chrome://tracing, Perfetto, and speedscope all load. A span is
// one progress period's lifecycle — begin → (admit | deny → wake |
// fallback) → end/reclaim — with its wait and run durations split out,
// which is exactly the picture aggregate counters and end-of-run
// averages cannot show: where the waitlist backs up, which demands
// wait longest, how occupancy interleaves.
//
// Everything is driven by virtual-clock timestamps, so a trace is a
// deterministic function of the run: the same workload, seed, and
// policy produce a byte-identical file no matter how many runner
// workers executed sibling replications.
package trace

import (
	"sort"

	"rdasched/internal/core"
	"rdasched/internal/pp"
	"rdasched/internal/sim"
)

// Span is one progress period's lifecycle. For instantaneous marks
// (rejects, late ends) Close is "instant" and the times collapse onto
// Begin.
type Span struct {
	// Rep is the replication index the span came from; stamped by the
	// harness when per-repetition collections are merged.
	Rep int
	// ID is the scheduler's admission ID (0 for marks with no
	// registered period).
	ID pp.ID
	// Proc and Phase locate the period.
	Proc, Phase int
	// Begin is the pp_begin arrival; Admit is when the period started
	// running (equal to Begin for immediate admissions); End is the
	// pp_end, reclamation, or end-of-run close.
	Begin, Admit, End sim.Time
	// Outcome records how the period got to run: "admit" (immediately),
	// "wake" (after a release), "fallback" (admission deadline),
	// "reject" (invalid demand, ran untracked), or "unfinished" (still
	// waitlisted when the run ended). Marks use "reject" / "late-end".
	Outcome string
	// Close records how the span closed: "end", "reclaim", "open" (still
	// registered at Finish), or "instant" (a mark).
	Close string
	// Demand is the period's primary (LLC) demand.
	Demand pp.Bytes
	// Load is the LLC load after the closing decision.
	Load pp.Bytes
	// Domain is the LLC domain the period ran on (the stealing domain
	// after a migration); always 0 outside multi-domain runs. Placement
	// and steal decisions surface as instant marks ("place"/"steal")
	// carrying the chosen domain.
	Domain int
}

// Wait is the time the period spent on the waitlist before running
// (for "unfinished" spans, the whole lifetime was waiting).
func (s Span) Wait() sim.Duration {
	if s.Outcome == "unfinished" {
		return s.End.DurationSince(s.Begin)
	}
	if s.Admit < s.Begin {
		return 0
	}
	return s.Admit.DurationSince(s.Begin)
}

// Run is the time the period spent admitted.
func (s Span) Run() sim.Duration {
	if s.Outcome == "unfinished" || s.End < s.Admit {
		return 0
	}
	return s.End.DurationSince(s.Admit)
}

// Collector assembles spans from a scheduler's decision stream. It
// implements core.EventSink; subscribe it with Scheduler.AddSink. A
// collector belongs to one run on one goroutine, like the scheduler it
// observes.
type Collector struct {
	open  map[pp.ID]*Span
	spans []Span
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{open: make(map[pp.ID]*Span)}
}

// Record implements core.EventSink.
func (c *Collector) Record(e core.Event) {
	switch e.Kind {
	case core.EventBegin:
		c.open[e.ID] = &Span{
			ID: e.ID, Proc: e.Proc, Phase: e.Phase,
			Begin: e.At, Demand: e.Demand.WorkingSet,
			Domain: e.Domain,
		}
	case core.EventAdmit, core.EventWake, core.EventFallback:
		if sp := c.open[e.ID]; sp != nil {
			sp.Admit = e.At
			sp.Outcome = e.Kind.String()
			sp.Domain = e.Domain
		}
	case core.EventDeny:
		// The wait is implicit: Begin marks the enqueue, the eventual
		// wake/fallback sets Admit.
	case core.EventEnd, core.EventReclaim:
		if sp := c.open[e.ID]; sp != nil {
			sp.End = e.At
			sp.Close = "end"
			if e.Kind == core.EventReclaim {
				sp.Close = "reclaim"
			}
			sp.Load = e.Load
			c.spans = append(c.spans, *sp)
			delete(c.open, e.ID)
		}
	case core.EventReject:
		if sp := c.open[e.ID]; sp != nil && sp.Outcome == "" {
			// Invalid demand: the period runs, untracked.
			sp.Admit = e.At
			sp.Outcome = "reject"
			return
		}
		c.mark(e, "reject")
	case core.EventLateEnd:
		c.mark(e, "late-end")
	case core.EventGovernorQuarantine:
		// The period runs untracked for the probation window; record the
		// quarantine as its outcome (like a reject, the span stays open
		// until its end).
		if sp := c.open[e.ID]; sp != nil && sp.Outcome == "" {
			sp.Admit = e.At
			sp.Outcome = "gov-quarantine"
			return
		}
		c.mark(e, "gov-quarantine")
	case core.EventGovernorDegrade, core.EventGovernorRecover,
		core.EventGovernorRestore, core.EventGovernorReserve:
		// Governor transitions are instantaneous marks: ladder steps
		// carry Proc -1 and the new level in Phase; restore/reserve
		// carry the affected period's coordinates.
		c.mark(e, e.Kind.String())
	case core.EventPlace, core.EventSteal, core.EventEvacuate:
		// Domain decisions are instant marks carrying the chosen domain;
		// a steal or evacuation also re-homes the open span so its period
		// slice lands on the domain it actually ran on.
		if e.Kind == core.EventSteal || e.Kind == core.EventEvacuate {
			if sp := c.open[e.ID]; sp != nil {
				sp.Domain = e.Domain
			}
		}
		c.mark(e, e.Kind.String())
	case core.EventDomainFail, core.EventRecover, core.EventAudit:
		// Shard-level fault/recovery transitions: instant marks with
		// Proc -1, the fault discriminator in Phase, and the magnitude
		// (capacity lost/restored, ledger drift) in Demand.
		c.mark(e, e.Kind.String())
	}
}

func (c *Collector) mark(e core.Event, outcome string) {
	c.spans = append(c.spans, Span{
		ID: e.ID, Proc: e.Proc, Phase: e.Phase,
		Begin: e.At, Admit: e.At, End: e.At,
		Outcome: outcome, Close: "instant",
		Demand: e.Demand.WorkingSet, Load: e.Load,
		Domain: e.Domain,
	})
}

// Finish closes every span still open at the end of a run — periods
// whose threads were waitlisted (or registered) when the simulation
// stopped — stamping them with the final time. Open spans are appended
// in admission-ID order so the result is deterministic.
func (c *Collector) Finish(at sim.Time) {
	if len(c.open) == 0 {
		return
	}
	ids := make([]pp.ID, 0, len(c.open))
	for id := range c.open {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		sp := c.open[id]
		sp.End = at
		sp.Close = "open"
		if sp.Outcome == "" {
			sp.Outcome = "unfinished"
		}
		c.spans = append(c.spans, *sp)
		delete(c.open, id)
	}
}

// Spans returns the collected spans in close order (the order their
// final event arrived, which is virtual-time order).
func (c *Collector) Spans() []Span { return c.spans }
