package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rdasched/internal/core"
	"rdasched/internal/pp"
	"rdasched/internal/sim"
)

func demand(mb float64) pp.Demand {
	return pp.Demand{Resource: pp.ResourceLLC, WorkingSet: pp.MB(mb), Reuse: pp.ReuseHigh}
}

func at(ms int) sim.Time { return sim.Time(ms) * sim.Time(sim.Millisecond) }

// TestCollectorSpanAssembly feeds a synthetic decision stream covering
// every lifecycle shape and checks the resulting spans.
func TestCollectorSpanAssembly(t *testing.T) {
	c := NewCollector()
	d := demand(4)

	// Period 1: immediate admit, clean end.
	c.Record(core.Event{At: at(0), Kind: core.EventBegin, ID: 1, Proc: 0, Phase: 0, Demand: d})
	c.Record(core.Event{At: at(0), Kind: core.EventAdmit, ID: 1, Proc: 0, Phase: 0, Demand: d})
	// Period 2: denied, woken later, then reclaimed.
	c.Record(core.Event{At: at(1), Kind: core.EventBegin, ID: 2, Proc: 1, Phase: 0, Demand: d})
	c.Record(core.Event{At: at(1), Kind: core.EventDeny, ID: 2, Proc: 1, Phase: 0, Demand: d})
	c.Record(core.Event{At: at(10), Kind: core.EventEnd, ID: 1, Proc: 0, Phase: 0, Demand: d})
	c.Record(core.Event{At: at(10), Kind: core.EventWake, ID: 2, Proc: 1, Phase: 0, Demand: d, Wait: 9 * sim.Millisecond})
	c.Record(core.Event{At: at(30), Kind: core.EventReclaim, ID: 2, Proc: 1, Phase: 0, Demand: d})
	// A late end for the reclaimed period: instant mark.
	c.Record(core.Event{At: at(31), Kind: core.EventLateEnd, Proc: 1, Phase: 0, Demand: d})
	// Period 3: still waiting when the run ends.
	c.Record(core.Event{At: at(5), Kind: core.EventBegin, ID: 3, Proc: 2, Phase: 1, Demand: d})
	c.Record(core.Event{At: at(5), Kind: core.EventDeny, ID: 3, Proc: 2, Phase: 1, Demand: d})
	c.Finish(at(40))

	spans := c.Spans()
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4:\n%+v", len(spans), spans)
	}

	s1 := spans[0]
	if s1.ID != 1 || s1.Outcome != "admit" || s1.Close != "end" {
		t.Fatalf("span 1 = %+v", s1)
	}
	if s1.Wait() != 0 || s1.Run() != 10*sim.Millisecond {
		t.Fatalf("span 1 wait/run = %v/%v", s1.Wait(), s1.Run())
	}

	s2 := spans[1]
	if s2.ID != 2 || s2.Outcome != "wake" || s2.Close != "reclaim" {
		t.Fatalf("span 2 = %+v", s2)
	}
	if s2.Wait() != 9*sim.Millisecond || s2.Run() != 20*sim.Millisecond {
		t.Fatalf("span 2 wait/run = %v/%v", s2.Wait(), s2.Run())
	}

	mark := spans[2]
	if mark.Outcome != "late-end" || mark.Close != "instant" {
		t.Fatalf("mark = %+v", mark)
	}

	s3 := spans[3]
	if s3.ID != 3 || s3.Outcome != "unfinished" || s3.Close != "open" {
		t.Fatalf("span 3 = %+v", s3)
	}
	if s3.Wait() != 35*sim.Millisecond || s3.Run() != 0 {
		t.Fatalf("span 3 wait/run = %v/%v", s3.Wait(), s3.Run())
	}
}

// TestCollectorRejectMarksUntracked checks the invalid-demand path: a
// begin followed by a reject marks the span's outcome and it still
// closes on its end event.
func TestCollectorRejectMarksUntracked(t *testing.T) {
	c := NewCollector()
	d := demand(0)
	c.Record(core.Event{At: at(0), Kind: core.EventBegin, ID: 7, Proc: 3, Phase: 2, Demand: d})
	c.Record(core.Event{At: at(0), Kind: core.EventReject, ID: 7, Proc: 3, Phase: 2, Demand: d})
	c.Record(core.Event{At: at(4), Kind: core.EventEnd, ID: 7, Proc: 3, Phase: 2, Demand: d})
	spans := c.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	if spans[0].Outcome != "reject" || spans[0].Close != "end" {
		t.Fatalf("span = %+v", spans[0])
	}
	// A second reject on an already-classified period is a mark.
	c.Record(core.Event{At: at(5), Kind: core.EventReject, ID: 0, Proc: 3, Phase: 2, Demand: d})
	if got := c.Spans(); len(got) != 2 || got[1].Close != "instant" {
		t.Fatalf("expected instant mark, got %+v", got)
	}
}

// TestWriteChromeValidAndDeterministic renders a span set twice and
// parses the result as the Chrome trace-event object form.
func TestWriteChromeValidAndDeterministic(t *testing.T) {
	spans := []Span{
		{Rep: 0, ID: 1, Proc: 0, Phase: 0, Begin: at(0), Admit: at(0), End: at(10),
			Outcome: "admit", Close: "end", Demand: pp.MB(4), Load: pp.MB(4)},
		{Rep: 1, ID: 2, Proc: 1, Phase: 0, Begin: at(1), Admit: at(10), End: at(30),
			Outcome: "wake", Close: "end", Demand: pp.MB(6), Load: 0},
		{Rep: 0, Proc: 2, Phase: 1, Begin: at(2), Admit: at(2), End: at(2),
			Outcome: "late-end", Close: "instant", Demand: pp.MB(1)},
	}
	var b1, b2 bytes.Buffer
	if err := WriteChrome(&b1, spans); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b2, spans); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("trace output is not deterministic")
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b1.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// Span 2 waited: wait slice + period slice. Span 1: period slice.
	// Span 3: instant. Total 4 events.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4:\n%s", len(doc.TraceEvents), b1.String())
	}
	// The waiting span renders in rep 1's pid namespace.
	var sawWait, sawInstant bool
	for _, e := range doc.TraceEvents {
		switch {
		case strings.HasSuffix(e.Name, " wait"):
			sawWait = true
			if e.Pid != 1001 {
				t.Fatalf("wait slice pid = %d, want 1001 (rep 1, proc 1)", e.Pid)
			}
			if e.Dur != 9000 { // 9 ms in µs
				t.Fatalf("wait dur = %v µs, want 9000", e.Dur)
			}
		case e.Ph == "i":
			sawInstant = true
		}
	}
	if !sawWait || !sawInstant {
		t.Fatalf("missing wait or instant event:\n%s", b1.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
}

// TestWriteChromeEmpty writes an empty but valid document.
func TestWriteChromeEmpty(t *testing.T) {
	var b bytes.Buffer
	if err := WriteChrome(&b, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatalf("missing traceEvents: %s", b.String())
	}
}
