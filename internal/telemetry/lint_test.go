package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestLintClean(t *testing.T) {
	r := NewRegistry()
	r.Counter("rda_periods_begun_total")
	r.Gauge("rda_active_periods")
	r.Histogram("rda_wait_seconds")
	if errs := r.Lint(); len(errs) != 0 {
		t.Fatalf("clean registry lints dirty: %v", errs)
	}
}

func TestLintViolations(t *testing.T) {
	r := NewRegistry()
	r.Counter("9bad_total")         // invalid first character
	r.Counter("rda_denied")         // counter without _total
	r.Gauge("rda_load_total")       // _total on a non-counter
	r.Histogram("rda_hist_total")   // _total on a non-counter
	r.Histogram("rda_hist_bucket")  // reserved derived suffix
	r.Counter("rda_dual_total")     // same name twice, two kinds
	r.Gauge("rda_dual_total")       //
	r.Histogram("rda_wait_seconds") // clean histogram...
	r.Gauge("rda_wait_seconds_sum") // ...whose derived series this shadows
	wantFragments := []string{
		`"9bad_total": invalid metric name`,
		`counter "rda_denied": missing the conventional _total suffix`,
		`gauge "rda_load_total": the _total suffix is reserved`,
		`histogram "rda_hist_total": the _total suffix is reserved`,
		`histogram "rda_hist_bucket": the _bucket suffix is reserved`,
		`"rda_dual_total": registered as counter and gauge`,
		`"rda_wait_seconds_sum": collides with histogram "rda_wait_seconds"`,
	}
	errs := r.Lint()
	all := make([]string, len(errs))
	for i, e := range errs {
		all[i] = e.Error()
	}
	joined := strings.Join(all, "\n")
	for _, frag := range wantFragments {
		if !strings.Contains(joined, frag) {
			t.Errorf("missing violation %q in:\n%s", frag, joined)
		}
	}
}

// TestLintErrorsSorted: the violation list is deterministic regardless
// of map iteration order.
func TestLintErrorsSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_missing")
	r.Counter("a_missing")
	r.Gauge("m_total")
	for i := 0; i < 10; i++ {
		errs := r.Lint()
		if len(errs) != 3 {
			t.Fatalf("got %d violations, want 3: %v", len(errs), errs)
		}
		for j := 1; j < len(errs); j++ {
			if errs[j-1].Error() > errs[j].Error() {
				t.Fatalf("violations unsorted: %v", errs)
			}
		}
	}
}

// --- Histogram and merge edge cases ---

// TestRegistryMergeEmpty: merging an empty (or nil) registry is a
// no-op, and merging into an empty registry reproduces the source —
// including histograms, whose Merge short-circuits on zero counts.
func TestRegistryMergeEmpty(t *testing.T) {
	src := NewRegistry()
	src.Counter("c_total").Add(3)
	src.Gauge("g").Set(1.5)
	src.Histogram("h_seconds").Observe(0.25)

	var before strings.Builder
	if err := src.WritePrometheus(&before); err != nil {
		t.Fatal(err)
	}
	src.Merge(NewRegistry())
	src.Merge(nil)
	var after strings.Builder
	if err := src.WritePrometheus(&after); err != nil {
		t.Fatal(err)
	}
	if before.String() != after.String() {
		t.Fatalf("merging an empty registry changed the exposition:\n%s\nvs\n%s",
			before.String(), after.String())
	}

	dst := NewRegistry()
	dst.Merge(src)
	var copied strings.Builder
	if err := dst.WritePrometheus(&copied); err != nil {
		t.Fatal(err)
	}
	if copied.String() != before.String() {
		t.Fatalf("merge into empty registry diverges:\n%s\nvs\n%s",
			copied.String(), before.String())
	}
}

// TestHistogramOverflowBucket: the largest finite float lands in the
// bucket whose upper boundary is +Inf. Quantiles clamp to the observed
// max, the Prometheus exposition emits exactly one le="+Inf" series,
// and the JSON encoding stays finite (encoding/json rejects +Inf).
func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram()
	h.Observe(math.MaxFloat64)
	bs := h.Buckets()
	if len(bs) != 1 || !math.IsInf(bs[0].UpperBound, 1) {
		t.Fatalf("buckets = %v, want one +Inf-bounded bucket", bs)
	}
	if got := h.Quantile(0.99); got != math.MaxFloat64 {
		t.Fatalf("p99 = %g, want clamp to max %g", got, math.MaxFloat64)
	}

	r := NewRegistry()
	r.Histogram("h_seconds").Observe(math.MaxFloat64)
	r.Histogram("h_seconds").Observe(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	expo := b.String()
	if got := strings.Count(expo, `le="+Inf"`); got != 1 {
		t.Fatalf("%d le=\"+Inf\" series, want exactly 1:\n%s", got, expo)
	}
	if !strings.Contains(expo, "h_seconds_bucket{le=\"+Inf\"} 2") {
		t.Fatalf("+Inf bucket does not count the overflow observation:\n%s", expo)
	}
	var j strings.Builder
	if err := r.WriteJSON(&j); err != nil {
		t.Fatalf("JSON encoding with an overflow bucket: %v", err)
	}
	if strings.Contains(j.String(), "Inf") {
		t.Fatalf("non-finite value leaked into JSON:\n%s", j.String())
	}
}

// TestMergeRegistrationOrderDeterminism: two registries holding the
// same instruments registered in opposite orders merge into
// byte-identical expositions — iteration is by sorted name, never by
// registration or map order.
func TestMergeRegistrationOrderDeterminism(t *testing.T) {
	build := func(names []string) *Registry {
		r := NewRegistry()
		for i, n := range names {
			r.Counter(n + "_total").Add(uint64(i + 1))
			r.Gauge(n + "_gauge").Set(float64(i))
			h := r.Histogram(n + "_seconds")
			h.Observe(float64(i) + 0.5)
			h.Observe(float64(i) * 2)
		}
		return r
	}
	names := []string{"alpha", "beta", "gamma", "delta"}
	reversed := []string{"delta", "gamma", "beta", "alpha"}

	m1 := NewRegistry()
	m1.Merge(build(names))
	m1.Merge(build(reversed))
	m2 := NewRegistry()
	m2.Merge(build(reversed))
	m2.Merge(build(names))

	var b1, b2 strings.Builder
	if err := m1.WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := m2.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("registration order leaked into the merged exposition:\n%s\nvs\n%s",
			b1.String(), b2.String())
	}
}
