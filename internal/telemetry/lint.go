package telemetry

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Lint audits the registry against the Prometheus text-exposition
// conventions the encoders assume, so a malformed family name fails a
// test instead of surfacing as an unscrapable exposition:
//
//   - every instrument name matches the metric-name grammar
//     [a-zA-Z_:][a-zA-Z0-9_:]*
//   - counters end in _total; gauges and histograms do not (the suffix
//     is reserved for counters by convention)
//   - no name is registered as more than one instrument kind
//   - no instrument collides with a histogram's derived _bucket, _sum,
//     or _count series, and no histogram name itself ends in one of
//     those reserved suffixes
//
// The returned slice is sorted by message and empty for a clean
// registry.
func (r *Registry) Lint() []error {
	var errs []error
	lintNames := func(kind string, names []string) {
		for _, name := range names {
			if !metricNameRE.MatchString(name) {
				errs = append(errs, fmt.Errorf("%s %q: invalid metric name", kind, name))
			}
			if kind == "counter" && !strings.HasSuffix(name, "_total") {
				errs = append(errs, fmt.Errorf("counter %q: missing the conventional _total suffix", name))
			}
			if kind != "counter" && strings.HasSuffix(name, "_total") {
				errs = append(errs, fmt.Errorf("%s %q: the _total suffix is reserved for counters", kind, name))
			}
		}
	}
	lintNames("counter", r.counterNames())
	lintNames("gauge", r.gaugeNames())
	lintNames("histogram", r.histNames())

	kinds := map[string][]string{}
	for _, name := range r.counterNames() {
		kinds[name] = append(kinds[name], "counter")
	}
	for _, name := range r.gaugeNames() {
		kinds[name] = append(kinds[name], "gauge")
	}
	for _, name := range r.histNames() {
		kinds[name] = append(kinds[name], "histogram")
	}
	for name, ks := range kinds {
		if len(ks) > 1 {
			errs = append(errs, fmt.Errorf("%q: registered as %s", name, strings.Join(ks, " and ")))
		}
	}
	for _, name := range r.histNames() {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				errs = append(errs, fmt.Errorf("histogram %q: the %s suffix is reserved for derived series", name, suffix))
			}
			if _, ok := kinds[name+suffix]; ok {
				errs = append(errs, fmt.Errorf("%q: collides with histogram %q's derived %s series", name+suffix, name, suffix))
			}
		}
	}
	sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
	return errs
}

// metricNameRE is the Prometheus metric-name grammar.
var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
