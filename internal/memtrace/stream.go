package memtrace

import (
	"rdasched/internal/pp"
	"rdasched/internal/sim"
)

// FuncStream adapts a generator function to the Stream interface: next()
// returns the next reference, or ok=false at end of trace. It lets
// multi-gigabyte traces be profiled without materializing them.
type FuncStream struct {
	next func() (Ref, bool)
}

// NewFuncStream wraps next.
func NewFuncStream(next func() (Ref, bool)) *FuncStream {
	return &FuncStream{next: next}
}

// Next implements Stream.
func (f *FuncStream) Next() (Ref, bool) { return f.next() }

// PhaseSpec describes one phase of a lazily generated trace: `Instr`
// instructions during which memory references touch a hot region
// uniformly, a cold region sequentially, and a JMP at `Site` retires
// every JumpEvery instructions.
type PhaseSpec struct {
	Name string
	// Instr is the phase length in instructions.
	Instr uint64
	// RefsPerInstr is the memory-reference density (0..1].
	RefsPerInstr float64
	// HotBytes is the size of the phase's hot working set.
	HotBytes pp.Bytes
	// ColdBytes is a streamed region causing footprint > WSS (0 = none).
	ColdBytes pp.Bytes
	// HotFrac is the fraction of references aimed at the hot set.
	HotFrac float64
	// Site is the static JMP site retired during this phase (loop
	// back-edge); < 0 emits no jumps.
	Site int
	// JumpEvery is the instruction period of JMP retirement (default 8192).
	JumpEvery uint64
	// ColdStride is the byte step of the cold stream (default 512). Keep
	// it at or above the profiler's entry granularity so streamed data
	// reads as footprint, not working set — each cold entry is touched
	// only once per pass.
	ColdStride uint64
}

// PhasedStream lazily generates the concatenation of phases. Each phase
// gets its own base address region so working sets do not alias.
type PhasedStream struct {
	phases []PhaseSpec
	rng    *sim.RNG

	phase    int
	instr    uint64 // global instruction counter
	phInstr  uint64 // instructions into current phase
	coldPos  uint64
	nextJump uint64
	base     uint64
	carry    float64 // fractional references owed
}

// NewPhasedStream builds the stream; the seed fixes the reference
// pattern.
func NewPhasedStream(seed uint64, phases ...PhaseSpec) *PhasedStream {
	return &PhasedStream{phases: phases, rng: sim.NewRNG(seed), base: 1 << 30}
}

// Next implements Stream. It emits one Ref per memory reference or jump;
// pure-compute instructions advance the counters silently.
func (s *PhasedStream) Next() (Ref, bool) {
	for {
		if s.phase >= len(s.phases) {
			return Ref{}, false
		}
		ph := &s.phases[s.phase]
		if s.phInstr >= ph.Instr {
			s.phase++
			s.phInstr = 0
			s.coldPos = 0
			s.nextJump = 0
			s.base += 1 << 30 // fresh address region per phase
			continue
		}
		je := ph.JumpEvery
		if je == 0 {
			je = 8192
		}
		if ph.Site >= 0 && s.phInstr >= s.nextJump {
			s.nextJump += je
			r := Ref{Instr: s.instr, IsJump: true, JumpSite: ph.Site}
			s.instr++
			s.phInstr++
			return r, true
		}
		s.carry += ph.RefsPerInstr
		s.instr++
		s.phInstr++
		if s.carry < 1 {
			continue
		}
		s.carry--
		var addr uint64
		if ph.HotBytes > 0 && (ph.ColdBytes == 0 || s.rng.Float64() < ph.HotFrac) {
			addr = s.base + (s.rng.Uint64n(uint64(ph.HotBytes)) &^ 7)
		} else {
			cold := uint64(ph.ColdBytes)
			if cold == 0 {
				cold = 64
			}
			stride := ph.ColdStride
			if stride == 0 {
				stride = 512
			}
			addr = s.base + uint64(ph.HotBytes) + (s.coldPos % cold)
			s.coldPos += stride
		}
		return Ref{Instr: s.instr - 1, Addr: addr}, true
	}
}

// TotalInstr returns the stream's total instruction length.
func (s *PhasedStream) TotalInstr() uint64 {
	var n uint64
	for _, ph := range s.phases {
		n += ph.Instr
	}
	return n
}
