package memtrace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"rdasched/internal/pp"
)

func TestTraceRoundTrip(t *testing.T) {
	refs := []Ref{
		{Instr: 0, Addr: 0x1000},
		{Instr: 5, Addr: 0x2008, Store: true},
		{Instr: 9, IsJump: true, JumpSite: 42},
		{Instr: 12, IsJump: true, JumpSite: -1},
		{Instr: 1 << 60, Addr: 1<<63 - 64},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, refs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(refs) {
		t.Fatalf("len = %d, want %d", len(got), len(refs))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], refs[i])
		}
	}
}

func TestTraceRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		g := NewGen(seed)
		g.RandomInSet(0, 64*pp.KiB, int(n), 2)
		g.Jump(int(seed % 100))
		refs := g.Refs()

		var buf bytes.Buffer
		if err := WriteTrace(&buf, refs); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil || len(got) != len(refs) {
			return false
		}
		for i := range refs {
			if got[i] != refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceEmptyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty trace: %v, %d records", err, len(got))
	}
}

func TestTraceBadMagic(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("NOPE\x01\x00"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTraceBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // version
	if _, err := ReadTrace(bytes.NewReader(b)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestTraceTruncated(t *testing.T) {
	refs := []Ref{{Addr: 1}, {Addr: 2}, {Addr: 3}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, refs); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadTrace(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestTraceCorruptCountNoOOM(t *testing.T) {
	// A header claiming 2^60 records must fail cleanly, not allocate.
	var buf bytes.Buffer
	if err := WriteTrace(&buf, []Ref{{Addr: 1}}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for i := 6; i < 14; i++ {
		b[i] = 0xff
	}
	if _, err := ReadTrace(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupt count accepted")
	}
}

func TestFileStream(t *testing.T) {
	g := NewGen(3)
	g.Stream(0, 4*pp.KiB, 8, 1)
	refs := g.Refs()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, refs); err != nil {
		t.Fatal(err)
	}
	fs, err := NewFileStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Len() != uint64(len(refs)) {
		t.Fatalf("Len = %d, want %d", fs.Len(), len(refs))
	}
	got := Collect(fs, 0)
	if len(got) != len(refs) {
		t.Fatalf("streamed %d records, want %d", len(got), len(refs))
	}
	if fs.Err() != nil {
		t.Fatalf("unexpected stream error: %v", fs.Err())
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestFileStreamTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, []Ref{{Addr: 1}, {Addr: 2}}); err != nil {
		t.Fatal(err)
	}
	cut := bytes.NewReader(buf.Bytes()[:buf.Len()-3])
	fs, err := NewFileStream(cut)
	if err != nil {
		t.Fatal(err)
	}
	n := len(Collect(fs, 0))
	if fs.Err() == nil {
		t.Fatalf("truncation not reported (read %d records)", n)
	}
}

func TestWriteStreamToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.rdat")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	src := NewPhasedStream(1, PhaseSpec{
		Name: "p", Instr: 10_000, RefsPerInstr: 0.5,
		HotBytes: 8 * pp.KiB, HotFrac: 1, Site: 3, JumpEvery: 1000,
	})
	n, err := WriteStream(f, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no records written")
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	fs, err := NewFileStream(rf)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Len() != n {
		t.Fatalf("header count %d, wrote %d", fs.Len(), n)
	}
	got := Collect(fs, 0)
	if uint64(len(got)) != n || fs.Err() != nil {
		t.Fatalf("read %d of %d: %v", len(got), n, fs.Err())
	}
	// The round-tripped trace must profile identically to the original:
	// same footprint.
	src2 := NewPhasedStream(1, PhaseSpec{
		Name: "p", Instr: 10_000, RefsPerInstr: 0.5,
		HotBytes: 8 * pp.KiB, HotFrac: 1, Site: 3, JumpEvery: 1000,
	})
	orig := Collect(src2, 0)
	if Footprint(got) != Footprint(orig) {
		t.Fatal("round-tripped trace has different footprint")
	}
}
