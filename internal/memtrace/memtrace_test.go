package memtrace

import (
	"testing"
	"testing/quick"

	"rdasched/internal/pp"
)

func TestSliceStream(t *testing.T) {
	refs := []Ref{{Addr: 1}, {Addr: 2}, {Addr: 3}}
	s := NewSliceStream(refs)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	var got []uint64
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, r.Addr)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
	s.Reset()
	if r, ok := s.Next(); !ok || r.Addr != 1 {
		t.Fatal("Reset did not rewind")
	}
}

func TestCollectMax(t *testing.T) {
	s := NewSliceStream(make([]Ref, 100))
	if got := Collect(s, 10); len(got) != 10 {
		t.Fatalf("Collect(max=10) returned %d", len(got))
	}
	s.Reset()
	if got := Collect(s, 0); len(got) != 100 {
		t.Fatalf("Collect(max=0) returned %d", len(got))
	}
}

func TestStreamFootprintMatchesRegion(t *testing.T) {
	g := NewGen(1)
	g.Stream(0, 64*pp.KiB, 8, 0)
	fp := FootprintBytes(g.Refs())
	if fp != 64*pp.KiB {
		t.Fatalf("footprint = %s, want 64KiB", fp)
	}
	// One ref per 8 bytes.
	if got := len(g.Refs()); got != 64*1024/8 {
		t.Fatalf("refs = %d", got)
	}
}

func TestStreamDefaultStride(t *testing.T) {
	g := NewGen(1)
	g.Stream(0, 1024, 0, 0) // stride <= 0 falls back to 8
	if len(g.Refs()) != 128 {
		t.Fatalf("refs = %d, want 128", len(g.Refs()))
	}
}

func TestComputeAdvancesInstructions(t *testing.T) {
	g := NewGen(1)
	g.Compute(100)
	g.Stream(0, 64, 8, 2)
	// 100 filler + 8 refs + 8*2 gaps = 124.
	if g.Instructions() != 124 {
		t.Fatalf("instructions = %d, want 124", g.Instructions())
	}
}

func TestRandomInSetBounded(t *testing.T) {
	f := func(seed uint64) bool {
		g := NewGen(seed)
		const size = 4 * pp.KiB
		g.RandomInSet(1<<20, size, 500, 0)
		for _, r := range g.Refs() {
			if r.Addr < 1<<20 || r.Addr >= 1<<20+uint64(size) {
				return false
			}
			if r.Addr%8 != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomInSetReuseGrowsWithCount(t *testing.T) {
	g := NewGen(7)
	g.RandomInSet(0, 1*pp.KiB, 10000, 0)
	fp := Footprint(g.Refs())
	// 1 KiB = 16 lines; 10000 touches must revisit heavily.
	if fp > 16 {
		t.Fatalf("footprint %d lines exceeds region", fp)
	}
	reuse := float64(len(g.Refs())) / float64(fp)
	if reuse < 100 {
		t.Fatalf("reuse ratio %v too low for hot-set pattern", reuse)
	}
}

func TestSweepRepeat(t *testing.T) {
	g := NewGen(1)
	g.SweepRepeat(0, 1*pp.KiB, 8, 5, 0)
	if fp := FootprintBytes(g.Refs()); fp != 1*pp.KiB {
		t.Fatalf("footprint = %s, want 1KiB", fp)
	}
	if got, want := len(g.Refs()), 5*128; got != want {
		t.Fatalf("refs = %d, want %d", got, want)
	}
}

func TestBlockedMatMulFootprint(t *testing.T) {
	g := NewGen(1)
	const n = 32
	g.BlockedMatMul(0, 1<<20, 2<<20, n, 8, 1)
	// Footprint ≈ 3 matrices of n*n*8 bytes = 24 KiB (line-granular, so
	// allow rounding up).
	fp := FootprintBytes(g.Refs())
	want := pp.Bytes(3 * n * n * 8)
	if fp < want || fp > want+3*64 {
		t.Fatalf("footprint = %s, want ~%s", fp, want)
	}
}

func TestBlockedMatMulReuseHigherThanStream(t *testing.T) {
	g := NewGen(1)
	g.BlockedMatMul(0, 1<<20, 2<<20, 32, 8, 1)
	mm := g.Refs()
	reuseMM := float64(len(mm)) / float64(Footprint(mm))

	g2 := NewGen(1)
	g2.Stream(0, FootprintBytes(mm), 8, 0)
	st := g2.Refs()
	reuseST := float64(len(st)) / float64(Footprint(st))
	if reuseMM < 4*reuseST {
		t.Fatalf("matmul reuse %.1f not ≫ stream reuse %.1f", reuseMM, reuseST)
	}
}

func TestBlockedMatMulSampling(t *testing.T) {
	full := NewGen(1)
	full.BlockedMatMul(0, 1<<20, 2<<20, 16, 4, 1)
	sampled := NewGen(1)
	sampled.BlockedMatMul(0, 1<<20, 2<<20, 16, 4, 4)
	if len(sampled.Refs()) >= len(full.Refs()) {
		t.Fatal("sampling did not reduce trace size")
	}
	// Instruction counts stay comparable (same logical work).
	ratio := float64(sampled.Instructions()) / float64(full.Instructions())
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("instruction count ratio %v too far from 1", ratio)
	}
}

func TestBlockedMatMulEmitsJumps(t *testing.T) {
	g := NewGen(1)
	g.BlockedMatMul(0, 1<<20, 2<<20, 16, 8, 1)
	jumps := 0
	for _, r := range g.Refs() {
		if r.IsJump {
			jumps++
		}
	}
	if jumps == 0 {
		t.Fatal("no JMP markers in matmul trace")
	}
}

func TestBlockedMatMulDegenerate(t *testing.T) {
	g := NewGen(1)
	g.BlockedMatMul(0, 0, 0, 0, 0, 1) // no-ops, must not panic
	g.BlockedMatMul(0, 0, 0, 8, 0, 1)
	if len(g.Refs()) != 0 {
		t.Fatal("degenerate matmul emitted refs")
	}
}

func TestPhasedRegionHotColdSplit(t *testing.T) {
	g := NewGen(3)
	hot := 8 * pp.KiB
	g.PhasedRegion(0, hot, 1*pp.MiB, 0.9, 20000, 0)
	inHot := 0
	for _, r := range g.Refs() {
		if r.Addr < uint64(hot) {
			inHot++
		}
	}
	frac := float64(inHot) / float64(len(g.Refs()))
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot fraction = %v, want ~0.9", frac)
	}
}

func TestPhasedRegionZeroCold(t *testing.T) {
	g := NewGen(3)
	g.PhasedRegion(0, 4*pp.KiB, 0, 0.5, 1000, 0)
	for _, r := range g.Refs() {
		if r.Addr >= uint64(4*pp.KiB) {
			t.Fatal("ref outside hot region with no cold region")
		}
	}
}

func TestJumpSites(t *testing.T) {
	g := NewGen(1)
	g.Jump(42)
	refs := g.Refs()
	if len(refs) != 1 || !refs[0].IsJump || refs[0].JumpSite != 42 {
		t.Fatalf("jump ref = %+v", refs[0])
	}
}

func TestFootprintIgnoresJumps(t *testing.T) {
	refs := []Ref{{Addr: 0}, {IsJump: true, Addr: 999999}, {Addr: 64}}
	if Footprint(refs) != 2 {
		t.Fatalf("Footprint = %d, want 2", Footprint(refs))
	}
}

func TestSummary(t *testing.T) {
	g := NewGen(1)
	g.Stream(0, 128, 8, 0)
	g.Jump(0)
	s := Summary(g.Refs())
	if s == "" {
		t.Fatal("empty summary")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, b := NewGen(99), NewGen(99)
	a.RandomInSet(0, 64*pp.KiB, 1000, 1)
	b.RandomInSet(0, 64*pp.KiB, 1000, 1)
	ra, rb := a.Refs(), b.Refs()
	if len(ra) != len(rb) {
		t.Fatal("lengths differ")
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("ref %d differs: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}

func BenchmarkGenBlockedMatMul(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := NewGen(1)
		g.BlockedMatMul(0, 1<<20, 2<<20, 64, 16, 8)
	}
}

func TestGenTraceStream(t *testing.T) {
	g := NewGen(1)
	g.Stream(0, 1*pp.KiB, 8, 0)
	s := g.Trace()
	if s.Len() != 128 {
		t.Fatalf("trace len = %d", s.Len())
	}
	if got := len(Collect(s, 0)); got != 128 {
		t.Fatalf("collected %d", got)
	}
}

func TestFuncStream(t *testing.T) {
	n := 0
	fs := NewFuncStream(func() (Ref, bool) {
		if n >= 3 {
			return Ref{}, false
		}
		n++
		return Ref{Addr: uint64(n)}, true
	})
	got := Collect(fs, 0)
	if len(got) != 3 || got[2].Addr != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestPhasedStreamTotalInstr(t *testing.T) {
	s := NewPhasedStream(1,
		PhaseSpec{Name: "a", Instr: 100, RefsPerInstr: 0.5, HotBytes: 1024, HotFrac: 1},
		PhaseSpec{Name: "b", Instr: 200, RefsPerInstr: 0.5, HotBytes: 1024, HotFrac: 1},
	)
	if s.TotalInstr() != 300 {
		t.Fatalf("TotalInstr = %d", s.TotalInstr())
	}
}
