package memtrace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format — the artifact a PIN-style instrumentation run
// would leave on disk, so traces can be captured once and profiled many
// times (cmd/ppprof's -dump/-load flags).
//
// Layout (little endian):
//
//	magic   [4]byte  "RDAT"
//	version uint16   (1)
//	count   uint64   number of records
//	records: instr uint64, addr uint64, flags uint8, site int32
//	         (flags bit0 = store, bit1 = jump; site only meaningful for
//	          jumps but always present — fixed 21-byte records keep the
//	          reader trivially seekable)
const (
	traceMagic   = "RDAT"
	traceVersion = 1
	recordBytes  = 8 + 8 + 1 + 4
)

const (
	flagStore = 1 << 0
	flagJump  = 1 << 1
)

// WriteTrace serializes refs to w.
func WriteTrace(w io.Writer, refs []Ref) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(traceVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(refs))); err != nil {
		return err
	}
	var rec [recordBytes]byte
	for _, r := range refs {
		binary.LittleEndian.PutUint64(rec[0:], r.Instr)
		binary.LittleEndian.PutUint64(rec[8:], r.Addr)
		var flags byte
		if r.Store {
			flags |= flagStore
		}
		if r.IsJump {
			flags |= flagJump
		}
		rec[16] = flags
		binary.LittleEndian.PutUint32(rec[17:], uint32(int32(r.JumpSite)))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteStream drains a Stream to w without materializing it; it returns
// the number of records written. Because the header carries a count, the
// stream is first drained in chunks to a buffered writer and the count
// back-patched — which requires an io.WriteSeeker.
func WriteStream(w io.WriteSeeker, s Stream) (uint64, error) {
	if _, err := io.WriteString(w, traceMagic); err != nil {
		return 0, err
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(traceVersion)); err != nil {
		return 0, err
	}
	countPos, err := w.Seek(0, io.SeekCurrent)
	if err != nil {
		return 0, err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(0)); err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(w)
	var rec [recordBytes]byte
	var n uint64
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		binary.LittleEndian.PutUint64(rec[0:], r.Instr)
		binary.LittleEndian.PutUint64(rec[8:], r.Addr)
		var flags byte
		if r.Store {
			flags |= flagStore
		}
		if r.IsJump {
			flags |= flagJump
		}
		rec[16] = flags
		binary.LittleEndian.PutUint32(rec[17:], uint32(int32(r.JumpSite)))
		if _, err := bw.Write(rec[:]); err != nil {
			return 0, err
		}
		n++
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	if _, err := w.Seek(countPos, io.SeekStart); err != nil {
		return 0, err
	}
	if err := binary.Write(w, binary.LittleEndian, n); err != nil {
		return 0, err
	}
	_, err = w.Seek(0, io.SeekEnd)
	return n, err
}

// readHeader consumes and validates the header, returning the record
// count.
func readHeader(r io.Reader) (uint64, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return 0, fmt.Errorf("memtrace: reading magic: %w", err)
	}
	if string(magic[:]) != traceMagic {
		return 0, fmt.Errorf("memtrace: bad magic %q", magic)
	}
	var version uint16
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return 0, fmt.Errorf("memtrace: reading version: %w", err)
	}
	if version != traceVersion {
		return 0, fmt.Errorf("memtrace: unsupported trace version %d", version)
	}
	var count uint64
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return 0, fmt.Errorf("memtrace: reading count: %w", err)
	}
	return count, nil
}

// ReadTrace deserializes a full trace.
func ReadTrace(r io.Reader) ([]Ref, error) {
	count, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	const maxPrealloc = 1 << 20 // defend against corrupt counts
	cap := count
	if cap > maxPrealloc {
		cap = maxPrealloc
	}
	refs := make([]Ref, 0, cap)
	br := bufio.NewReader(r)
	var rec [recordBytes]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("memtrace: record %d of %d: %w", i, count, err)
		}
		refs = append(refs, decodeRecord(rec))
	}
	return refs, nil
}

func decodeRecord(rec [recordBytes]byte) Ref {
	return Ref{
		Instr:    binary.LittleEndian.Uint64(rec[0:]),
		Addr:     binary.LittleEndian.Uint64(rec[8:]),
		Store:    rec[16]&flagStore != 0,
		IsJump:   rec[16]&flagJump != 0,
		JumpSite: int(int32(binary.LittleEndian.Uint32(rec[17:]))),
	}
}

// FileStream reads a serialized trace incrementally, implementing Stream
// without materializing the records.
type FileStream struct {
	br    *bufio.Reader
	left  uint64
	fail  error
	total uint64
}

// NewFileStream validates the header and returns a streaming reader.
func NewFileStream(r io.Reader) (*FileStream, error) {
	count, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	return &FileStream{br: bufio.NewReaderSize(r, 1<<16), left: count, total: count}, nil
}

// Len returns the total record count declared in the header.
func (f *FileStream) Len() uint64 { return f.total }

// Err returns the first decode error encountered (io problems surface as
// an early end of stream plus a non-nil Err).
func (f *FileStream) Err() error { return f.fail }

// Next implements Stream.
func (f *FileStream) Next() (Ref, bool) {
	if f.left == 0 || f.fail != nil {
		return Ref{}, false
	}
	var rec [recordBytes]byte
	if _, err := io.ReadFull(f.br, rec[:]); err != nil {
		f.fail = fmt.Errorf("memtrace: truncated trace (%d records short): %w", f.left, err)
		return Ref{}, false
	}
	f.left--
	return decodeRecord(rec), true
}
