// Package memtrace generates and represents load/store address streams.
// It substitutes for Intel PIN in the paper's toolchain: where the authors
// instrumented binaries to dump the virtual address of every memory
// operation, we synthesize streams whose footprint, working-set size, and
// reuse behaviour match the workloads in Table 2. The profiler
// (internal/profiler) consumes these streams exactly as the paper's
// profiler consumed PIN output: in fixed-size instruction windows.
package memtrace

import (
	"fmt"

	"rdasched/internal/pp"
	"rdasched/internal/sim"
)

// Ref is one memory reference: the retiring instruction index (within the
// trace), the virtual address, and whether it is a store. IsJump marks
// retired JMP instructions, which the profiler samples to correlate
// windows with loop structure (the paper uses Dyninst ParseAPI for this).
type Ref struct {
	Instr  uint64
	Addr   uint64
	Store  bool
	IsJump bool
	// JumpSite identifies the static branch location for IsJump refs
	// (meaningless otherwise); the profiler maps sites to loops.
	JumpSite int
}

// Stream produces references one at a time. Next returns false when the
// stream is exhausted.
type Stream interface {
	Next() (Ref, bool)
}

// SliceStream replays a pre-materialized trace.
type SliceStream struct {
	refs []Ref
	pos  int
}

// NewSliceStream wraps refs.
func NewSliceStream(refs []Ref) *SliceStream { return &SliceStream{refs: refs} }

// Next implements Stream.
func (s *SliceStream) Next() (Ref, bool) {
	if s.pos >= len(s.refs) {
		return Ref{}, false
	}
	r := s.refs[s.pos]
	s.pos++
	return r, true
}

// Reset rewinds the stream.
func (s *SliceStream) Reset() { s.pos = 0 }

// Len returns the total number of references.
func (s *SliceStream) Len() int { return len(s.refs) }

// Collect drains a stream into a slice (testing/profiling convenience).
func Collect(s Stream, max int) []Ref {
	var out []Ref
	for {
		r, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, r)
		if max > 0 && len(out) >= max {
			return out
		}
	}
}

// Gen is a synthetic reference generator: a base address region plus an
// access pattern. Generators are deterministic given their RNG seed.
type Gen struct {
	rng *sim.RNG
	// instr counts instructions emitted so far across all patterns,
	// including non-memory filler instructions.
	instr uint64
	out   []Ref
}

// NewGen returns a generator with a seeded RNG.
func NewGen(seed uint64) *Gen {
	return &Gen{rng: sim.NewRNG(seed)}
}

// Instructions returns the number of instructions the generated trace
// represents so far (memory and non-memory).
func (g *Gen) Instructions() uint64 { return g.instr }

// Trace returns the accumulated references as a replayable stream.
func (g *Gen) Trace() *SliceStream { return NewSliceStream(g.out) }

// Refs returns the raw accumulated references.
func (g *Gen) Refs() []Ref { return g.out }

func (g *Gen) emit(addr uint64, store bool) {
	g.out = append(g.out, Ref{Instr: g.instr, Addr: addr, Store: store})
	g.instr++
}

// Compute advances the instruction counter by n without touching memory
// (models register-only arithmetic between references).
func (g *Gen) Compute(n uint64) { g.instr += n }

// Jump emits a retired JMP at the given static site.
func (g *Gen) Jump(site int) {
	g.out = append(g.out, Ref{Instr: g.instr, IsJump: true, JumpSite: site})
	g.instr++
}

// Stream sweeps a region of size bytes once, sequentially, with `stride`
// bytes between references and computeGap filler instructions after each
// reference. This is the BLAS-1 / streaming pattern: footprint == bytes
// touched, reuse ≈ 1.
func (g *Gen) Stream(base uint64, size pp.Bytes, stride int, computeGap uint64) {
	if stride <= 0 {
		stride = 8
	}
	for off := uint64(0); off < uint64(size); off += uint64(stride) {
		g.emit(base+off, false)
		g.Compute(computeGap)
	}
}

// RandomInSet touches count random addresses uniformly inside a region of
// the given size. Repeated passes reuse the same region, so reuse grows
// with count/size. This is the "hot working set" pattern of the paper's
// high-reuse periods.
func (g *Gen) RandomInSet(base uint64, size pp.Bytes, count int, computeGap uint64) {
	if size <= 0 {
		return
	}
	for i := 0; i < count; i++ {
		off := g.rng.Uint64n(uint64(size)) &^ 7 // 8-byte aligned
		g.emit(base+off, false)
		g.Compute(computeGap)
	}
}

// SweepRepeat performs `passes` sequential sweeps over the region: the
// cyclic-reuse pattern (BLAS-2-like: vector reused across matrix rows).
func (g *Gen) SweepRepeat(base uint64, size pp.Bytes, stride, passes int, computeGap uint64) {
	for p := 0; p < passes; p++ {
		g.Stream(base, size, stride, computeGap)
	}
}

// BlockedMatMul emits the access pattern of a blocked n×n×n matrix
// multiply with block size b over three matrices at bases a, bb, c
// (8-byte elements). It is a faithful (if reduced-rate) image of the
// dgemm kernel's locality: within a block triple, the same b×b panels are
// re-touched b times.
//
// To keep traces tractable, `sample` emits only every sample-th innermost
// reference while still advancing the instruction counter for skipped
// ones; footprint and reuse ratios are preserved in expectation.
func (g *Gen) BlockedMatMul(a, bb, c uint64, n, b, sample int) {
	if b <= 0 || n <= 0 {
		return
	}
	if sample <= 0 {
		sample = 1
	}
	elem := uint64(8)
	idx := func(base uint64, row, col int) uint64 {
		return base + (uint64(row)*uint64(n)+uint64(col))*elem
	}
	emitted := 0
	for i0 := 0; i0 < n; i0 += b {
		for j0 := 0; j0 < n; j0 += b {
			for k0 := 0; k0 < n; k0 += b {
				g.Jump(0) // block-loop back-edge
				for i := i0; i < min(i0+b, n); i++ {
					for j := j0; j < min(j0+b, n); j++ {
						for k := k0; k < min(k0+b, n); k++ {
							emitted++
							if emitted%sample == 0 {
								g.emit(idx(a, i, k), false)
								g.emit(idx(bb, k, j), false)
								g.emit(idx(c, i, j), true)
								g.Compute(2) // fused multiply-add + index math
							} else {
								g.instr += 5
							}
						}
					}
				}
			}
		}
	}
}

// PhasedRegion models one progress period of a SPLASH-2-like application:
// `touches` references spread over a region whose *hot* subset has the
// given size; a fraction `hotFrac` of references go to the hot subset and
// the rest stream through a cold region (sampling noise, exactly what
// makes WSS < footprint in the paper's profiler).
func (g *Gen) PhasedRegion(base uint64, hot pp.Bytes, cold pp.Bytes, hotFrac float64, touches int, computeGap uint64) {
	if hot <= 0 {
		hot = 64
	}
	coldPos := uint64(0)
	for i := 0; i < touches; i++ {
		if g.rng.Float64() < hotFrac {
			off := g.rng.Uint64n(uint64(hot)) &^ 7
			g.emit(base+off, false)
		} else if cold > 0 {
			g.emit(base+uint64(hot)+coldPos%uint64(cold), false)
			coldPos += 64
		} else {
			off := g.rng.Uint64n(uint64(hot)) &^ 7
			g.emit(base+off, false)
		}
		g.Compute(computeGap)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Footprint returns the number of distinct 64-byte lines touched by refs —
// the "memory footprint" statistic of the paper's profiler (§2.4).
func Footprint(refs []Ref) int {
	seen := make(map[uint64]struct{})
	for _, r := range refs {
		if r.IsJump {
			continue
		}
		seen[r.Addr>>6] = struct{}{}
	}
	return len(seen)
}

// FootprintBytes returns Footprint scaled to bytes.
func FootprintBytes(refs []Ref) pp.Bytes { return pp.Bytes(Footprint(refs)) * 64 }

// String renders a short trace summary.
func Summary(refs []Ref) string {
	mem := 0
	for _, r := range refs {
		if !r.IsJump {
			mem++
		}
	}
	return fmt.Sprintf("%d refs (%d mem, %d jumps), footprint %s",
		len(refs), mem, len(refs)-mem, FootprintBytes(refs))
}
