package proc

import (
	"strings"
	"testing"

	"rdasched/internal/pp"
)

func validPhase() Phase {
	return Phase{
		Name:             "k",
		Instr:            1e6,
		WSS:              pp.MB(1),
		Reuse:            pp.ReuseHigh,
		AccessesPerInstr: 0.3,
		PrivateHitFrac:   0.8,
		FlopsPerInstr:    0.5,
		Declared:         true,
	}
}

func TestPhaseValidate(t *testing.T) {
	good := validPhase()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid phase rejected: %v", err)
	}
	mut := []func(*Phase){
		func(p *Phase) { p.Instr = 0 },
		func(p *Phase) { p.WSS = -1 },
		func(p *Phase) { p.AccessesPerInstr = 1.5 },
		func(p *Phase) { p.AccessesPerInstr = -0.1 },
		func(p *Phase) { p.PrivateHitFrac = 2 },
		func(p *Phase) { p.FlopsPerInstr = -1 },
		func(p *Phase) { p.Reuse = pp.Reuse(9) },
	}
	for i, m := range mut {
		p := validPhase()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPhaseDemand(t *testing.T) {
	p := validPhase()
	d := p.Demand()
	if d.Resource != pp.ResourceLLC || d.WorkingSet != p.WSS || d.Reuse != p.Reuse {
		t.Fatalf("Demand = %+v", d)
	}
}

func TestProgramTotals(t *testing.T) {
	prog := Program{
		{Name: "a", Instr: 100, FlopsPerInstr: 0.5, Reuse: pp.ReuseLow},
		{Name: "b", Instr: 300, FlopsPerInstr: 1.0, Reuse: pp.ReuseLow, Declared: true},
	}
	if got := prog.TotalInstr(); got != 400 {
		t.Fatalf("TotalInstr = %v", got)
	}
	if got := prog.TotalFlops(); got != 350 {
		t.Fatalf("TotalFlops = %v", got)
	}
	if got := prog.DeclaredCount(); got != 1 {
		t.Fatalf("DeclaredCount = %v", got)
	}
}

func TestProgramValidate(t *testing.T) {
	if err := (Program{}).Validate(); err == nil {
		t.Fatal("empty program accepted")
	}
	bad := Program{validPhase(), {Name: "broken", Instr: -5}}
	err := bad.Validate()
	if err == nil {
		t.Fatal("bad program accepted")
	}
	if !strings.Contains(err.Error(), "phase 1") {
		t.Fatalf("error does not locate phase: %v", err)
	}
}

func TestSpecValidate(t *testing.T) {
	s := Spec{Name: "p", Threads: 2, Program: Program{validPhase()}}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	s.Threads = 0
	if err := s.Validate(); err == nil {
		t.Fatal("zero-thread spec accepted")
	}
}

func TestWorkloadValidateAndTotals(t *testing.T) {
	w := Workload{
		Name: "mix",
		Procs: []Spec{
			{Name: "a", Threads: 2, Program: Program{validPhase()}},
			{Name: "b", Threads: 3, Program: Program{validPhase()}},
		},
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	if got := w.TotalThreads(); got != 5 {
		t.Fatalf("TotalThreads = %d", got)
	}
	wantFlops := 5 * 1e6 * 0.5
	if got := w.TotalFlops(); got != wantFlops {
		t.Fatalf("TotalFlops = %v, want %v", got, wantFlops)
	}
	if err := (Workload{Name: "empty"}).Validate(); err == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestReplicate(t *testing.T) {
	base := Spec{Name: "daxpy", Threads: 1, Program: Program{validPhase()}}
	specs := Replicate(base, 96)
	if len(specs) != 96 {
		t.Fatalf("replicated %d", len(specs))
	}
	if specs[0].Name != "daxpy-0" || specs[95].Name != "daxpy-95" {
		t.Fatalf("names: %q, %q", specs[0].Name, specs[95].Name)
	}
	// Copies must be independent.
	specs[0].Threads = 99
	if specs[1].Threads != 1 {
		t.Fatal("replicas share state")
	}
}

func TestDemandsMultiResource(t *testing.T) {
	ph := validPhase()
	ds := ph.Demands()
	if len(ds) != 1 || ds[0].Resource != pp.ResourceLLC {
		t.Fatalf("demands = %v, want single LLC demand", ds)
	}
	ph.BWDemand = 5e9
	ds = ph.Demands()
	if len(ds) != 2 {
		t.Fatalf("demands = %v, want LLC + bandwidth", ds)
	}
	if ds[1].Resource != pp.ResourceMemBW || ds[1].WorkingSet != pp.Bytes(5e9) {
		t.Fatalf("bandwidth demand = %v", ds[1])
	}
	for _, d := range ds {
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPhaseValidateExtensions(t *testing.T) {
	p := validPhase()
	p.CachePartition = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative partition accepted")
	}
	p = validPhase()
	p.BWDemand = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative bandwidth demand accepted")
	}
}

func TestOccupancyBytesCases(t *testing.T) {
	p := validPhase() // WSS = 1 MB
	if p.OccupancyBytes() != p.WSS {
		t.Fatal("unpartitioned occupancy != WSS")
	}
	p.CachePartition = pp.KB(256)
	if p.OccupancyBytes() != pp.KB(256) {
		t.Fatal("partition did not cap occupancy")
	}
	p.CachePartition = pp.MB(10)
	if p.OccupancyBytes() != p.WSS {
		t.Fatal("oversized partition did not fall back to WSS")
	}
}

func TestEffectiveWeight(t *testing.T) {
	s := Spec{Name: "w", Threads: 1, Program: Program{validPhase()}}
	if s.EffectiveWeight() != 1 {
		t.Fatalf("default weight = %v", s.EffectiveWeight())
	}
	s.Weight = 2.5
	if s.EffectiveWeight() != 2.5 {
		t.Fatalf("weight = %v", s.EffectiveWeight())
	}
	s.Weight = -1
	if err := s.Validate(); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestScaleInstr(t *testing.T) {
	w := Workload{Name: "w", Procs: Replicate(Spec{Name: "p", Threads: 2, Program: Program{validPhase()}}, 3)}
	s := ScaleInstr(w, 0.5)
	if len(s.Procs) != 3 {
		t.Fatal("process count changed")
	}
	if s.Procs[0].Program[0].Instr != w.Procs[0].Program[0].Instr/2 {
		t.Fatal("instructions not halved")
	}
	// Original untouched (deep copy).
	if w.Procs[0].Program[0].Instr != 1e6 {
		t.Fatal("ScaleInstr mutated its input")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := Spec{Name: "p", Threads: 1, Program: Program{validPhase()}}
	c := s.Clone()
	c.Program[0].Instr = 42
	if s.Program[0].Instr == 42 {
		t.Fatal("Clone shares program storage")
	}
}
