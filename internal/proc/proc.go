// Package proc defines the static description of simulated programs: a
// process is a set of threads, each executing a sequence of phases. A
// phase is the unit at which resource behaviour is constant — exactly the
// granularity the paper's progress periods capture. Phases carry the
// physical truth (working set, reuse, compute intensity); whether a phase
// is *declared* to the scheduler as a progress period is a separate bit,
// which is what lets the same workload run under the default scheduler
// (no declarations honoured) and under RDA.
package proc

import (
	"fmt"

	"rdasched/internal/pp"
)

// Phase is a duration of execution with constant resource behaviour.
type Phase struct {
	// Name labels the phase in reports ("dgemm", "slave2-pp1", ...).
	Name string
	// Instr is the phase length in dynamic instructions.
	Instr float64
	// WSS is the phase's working-set size (physical truth; the declared
	// demand equals this for declared phases, matching the paper's
	// profiler-derived annotations).
	WSS pp.Bytes
	// Reuse is the temporal-locality level of the working set.
	Reuse pp.Reuse
	// AccessesPerInstr is the fraction of instructions that reference
	// memory (loads+stores per instruction).
	AccessesPerInstr float64
	// PrivateHitFrac is the fraction of memory accesses absorbed by the
	// private L1/L2 (they never reach the shared LLC).
	PrivateHitFrac float64
	// StreamFrac is the fraction of LLC-reaching accesses that stream
	// through data *outside* the resident working set and therefore miss
	// regardless of residency (e.g. the matrix operand of dgemv: the
	// reused vector is the working set, the matrix is streamed). Residency
	// only helps the remaining (1-StreamFrac) accesses.
	StreamFrac float64
	// FlopsPerInstr is floating-point operations per instruction.
	FlopsPerInstr float64
	// Declared marks the phase as a progress period: the thread calls
	// pp_begin/pp_end around it. Undeclared phases run under the default
	// OS policy (the scheduler "ignores processes that have not provided
	// progress period information").
	Declared bool
	// BarrierAfter makes all threads of the process rendezvous when this
	// phase completes before any starts the next phase (SPLASH-2-style
	// barrier between computation steps; the paper requires barriers to
	// sit *outside* progress periods, which this field expresses).
	BarrierAfter bool
	// CachePartition, when positive, confines the phase to a cache
	// partition of that many bytes — the first extension in the paper's
	// future work (§6): a streaming application whose working set exceeds
	// the LLC "would fetch most data from main memory regardless", so it
	// is fenced into a small partition. The scheduler charges only the
	// partition against the load table, and the machine model keeps at
	// most that much of the phase's data resident.
	CachePartition pp.Bytes
	// BWDemand, when positive, additionally declares a memory-bandwidth
	// demand of that many bytes per second for the period — the paper's
	// "configurable to allow multiple hardware resources to be targeted".
	// The scheduling predicate then gates on the ResourceMemBW load table
	// as well, which keeps the co-scheduled set under the DRAM roofline
	// instead of wasting core power past bandwidth saturation.
	BWDemand float64
	// DeclaredWSS, when positive, is the working-set size the phase
	// *declares* to pp_begin instead of its physical WSS — a misbehaving
	// or badly profiled application lying to the admission layer
	// (internal/faults injects these). The machine model always uses the
	// physical WSS; only the scheduler sees the lie.
	DeclaredWSS pp.Bytes
	// LeakEnd marks a declared phase whose pp_end call is never made: the
	// period's demand stays registered with the resource monitor until a
	// lease reclaims it. Fault injection only.
	LeakEnd bool
	// CrashFrac, when in (0, 1], makes every thread of the process die
	// after executing that fraction of this phase's instructions — inside
	// the progress period, without a pp_end and without reaching later
	// phases or barriers. Fault injection only.
	CrashFrac float64
}

// OccupancyBytes returns how much LLC the phase can actually occupy: its
// working set, capped by its cache partition when one is assigned.
func (ph *Phase) OccupancyBytes() pp.Bytes {
	if ph.CachePartition > 0 && ph.CachePartition < ph.WSS {
		return ph.CachePartition
	}
	return ph.WSS
}

// Demand returns the pp.Demand the thread declares for this phase: the
// occupancy it will hold in the LLC (partition-capped), or the DeclaredWSS
// lie when fault injection planted one.
func (ph *Phase) Demand() pp.Demand {
	ws := ph.OccupancyBytes()
	if ph.DeclaredWSS > 0 {
		ws = ph.DeclaredWSS
	}
	return pp.Demand{Resource: pp.ResourceLLC, WorkingSet: ws, Reuse: ph.Reuse}
}

// Demands returns every resource demand the phase declares: the LLC
// occupancy always, plus a memory-bandwidth demand when BWDemand is set.
func (ph *Phase) Demands() []pp.Demand {
	ds := []pp.Demand{ph.Demand()}
	if ph.BWDemand > 0 {
		ds = append(ds, pp.Demand{
			Resource:   pp.ResourceMemBW,
			WorkingSet: pp.Bytes(ph.BWDemand),
			Reuse:      ph.Reuse,
		})
	}
	return ds
}

// Validate checks a phase is physically sensible.
func (ph *Phase) Validate() error {
	switch {
	case ph.Instr <= 0:
		return fmt.Errorf("proc: phase %q has non-positive length %v", ph.Name, ph.Instr)
	case ph.WSS < 0:
		return fmt.Errorf("proc: phase %q has negative working set", ph.Name)
	case ph.AccessesPerInstr < 0 || ph.AccessesPerInstr > 1:
		return fmt.Errorf("proc: phase %q accesses/instr %v outside [0,1]", ph.Name, ph.AccessesPerInstr)
	case ph.PrivateHitFrac < 0 || ph.PrivateHitFrac > 1:
		return fmt.Errorf("proc: phase %q private hit fraction %v outside [0,1]", ph.Name, ph.PrivateHitFrac)
	case ph.StreamFrac < 0 || ph.StreamFrac > 1:
		return fmt.Errorf("proc: phase %q stream fraction %v outside [0,1]", ph.Name, ph.StreamFrac)
	case ph.FlopsPerInstr < 0:
		return fmt.Errorf("proc: phase %q negative flops/instr", ph.Name)
	case !ph.Reuse.Valid():
		return fmt.Errorf("proc: phase %q invalid reuse", ph.Name)
	case ph.CachePartition < 0:
		return fmt.Errorf("proc: phase %q negative cache partition", ph.Name)
	case ph.BWDemand < 0:
		return fmt.Errorf("proc: phase %q negative bandwidth demand", ph.Name)
	case ph.DeclaredWSS < 0:
		return fmt.Errorf("proc: phase %q negative declared working set", ph.Name)
	case ph.CrashFrac < 0 || ph.CrashFrac > 1:
		return fmt.Errorf("proc: phase %q crash fraction %v outside [0,1]", ph.Name, ph.CrashFrac)
	}
	return nil
}

// Program is the phase sequence one thread executes.
type Program []Phase

// Validate checks every phase.
func (p Program) Validate() error {
	if len(p) == 0 {
		return fmt.Errorf("proc: empty program")
	}
	for i := range p {
		if err := p[i].Validate(); err != nil {
			return fmt.Errorf("phase %d: %w", i, err)
		}
	}
	return nil
}

// TotalInstr sums instruction counts across phases.
func (p Program) TotalInstr() float64 {
	var sum float64
	for i := range p {
		sum += p[i].Instr
	}
	return sum
}

// TotalFlops sums flop counts across phases.
func (p Program) TotalFlops() float64 {
	var sum float64
	for i := range p {
		sum += p[i].Instr * p[i].FlopsPerInstr
	}
	return sum
}

// DeclaredCount returns the number of declared (progress period) phases.
func (p Program) DeclaredCount() int {
	n := 0
	for i := range p {
		if p[i].Declared {
			n++
		}
	}
	return n
}

// Spec describes one process: how many threads and what each runs. All
// threads run the same program (the SPMD shape of every workload in the
// paper); per-thread variation comes from the machine's execution, not
// the spec.
type Spec struct {
	// Name labels the process in reports.
	Name string
	// Threads is the thread count (Table 2's "# Threads / Proc").
	Threads int
	// Program is the per-thread phase sequence.
	Program Program
	// TaskPool marks the process as using a task-pool programming model:
	// per §3.4 the scheduler pauses the whole pool when one member cannot
	// run, by admitting the pool's aggregate demand atomically.
	TaskPool bool
	// Weight is the CFS load weight of each of the process's threads
	// relative to the default (1.0 = nice 0): a weight-2 thread receives
	// twice the core share of a weight-1 thread under contention. 0 means
	// the default weight.
	Weight float64
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Threads <= 0 {
		return fmt.Errorf("proc: spec %q has %d threads", s.Name, s.Threads)
	}
	if s.Weight < 0 {
		return fmt.Errorf("proc: spec %q has negative weight %v", s.Name, s.Weight)
	}
	if err := s.Program.Validate(); err != nil {
		return fmt.Errorf("proc: spec %q: %w", s.Name, err)
	}
	return nil
}

// EffectiveWeight returns the spec's scheduling weight with the default
// applied.
func (s Spec) EffectiveWeight() float64 {
	if s.Weight <= 0 {
		return 1
	}
	return s.Weight
}

// Workload is a named multiprogrammed mix: a list of process specs,
// each possibly instantiated multiple times.
type Workload struct {
	Name  string
	Procs []Spec
}

// Validate checks every spec.
func (w Workload) Validate() error {
	if len(w.Procs) == 0 {
		return fmt.Errorf("proc: workload %q has no processes", w.Name)
	}
	for _, s := range w.Procs {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("workload %q: %w", w.Name, err)
		}
	}
	return nil
}

// TotalThreads counts threads across all processes.
func (w Workload) TotalThreads() int {
	n := 0
	for _, s := range w.Procs {
		n += s.Threads
	}
	return n
}

// TotalFlops sums expected flops across all threads.
func (w Workload) TotalFlops() float64 {
	var sum float64
	for _, s := range w.Procs {
		sum += float64(s.Threads) * s.Program.TotalFlops()
	}
	return sum
}

// Clone returns a deep copy of the spec (the program slice is not
// shared), so callers can mutate phases without affecting siblings.
func (s Spec) Clone() Spec {
	c := s
	c.Program = make(Program, len(s.Program))
	copy(c.Program, s.Program)
	return c
}

// Replicate returns n independent copies of spec with -%d name suffixes,
// the way the paper launches 96 instances of a BLAS kernel. Each copy
// owns its program: mutating one replica's phases never affects another.
func Replicate(spec Spec, n int) []Spec {
	out := make([]Spec, 0, n)
	for i := 0; i < n; i++ {
		c := spec.Clone()
		c.Name = fmt.Sprintf("%s-%d", spec.Name, i)
		out = append(out, c)
	}
	return out
}

// ScaleInstr returns a copy of the workload with every phase's
// instruction count multiplied by f — shorter runs with identical
// contention structure (process counts, threads, working sets).
func ScaleInstr(w Workload, f float64) Workload {
	out := Workload{Name: w.Name, Procs: make([]Spec, 0, len(w.Procs))}
	for _, s := range w.Procs {
		c := s.Clone()
		for j := range c.Program {
			c.Program[j].Instr *= f
		}
		out.Procs = append(out.Procs, c)
	}
	return out
}
