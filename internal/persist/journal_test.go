package persist

import (
	"encoding/binary"
	"encoding/json"
	"strings"
	"testing"

	"rdasched/internal/core"
	"rdasched/internal/pp"
	"rdasched/internal/sim"
)

// sampleRecords builds n distinguishable records.
func sampleRecords(n int) []core.ReplayRecord {
	recs := make([]core.ReplayRecord, n)
	for i := range recs {
		st := core.Stats{Admitted: uint64(i)}
		recs[i] = core.ReplayRecord{
			At:      sim.Time(0).Add(sim.Duration(i+1) * sim.FromSeconds(0.001)),
			Kind:    core.RecAdmit,
			Domain:  0,
			Usage:   []pp.Bytes{pp.KB(float64(64 * (i + 1))), 0},
			WaitSeq: uint64(i),
			NextID:  pp.ID(i + 1),
			Stats:   &st,
			Src:     -1,
		}
	}
	return recs
}

// encodeRecords frames records with sequence numbers 1..n.
func encodeRecords(tb testing.TB, recs []core.ReplayRecord) []byte {
	tb.Helper()
	var buf []byte
	for i := range recs {
		p, err := json.Marshal(&recs[i])
		if err != nil {
			tb.Fatalf("marshal: %v", err)
		}
		buf = appendFrame(buf, uint64(i+1), p)
	}
	return buf
}

// wantPrefix asserts the decode result is exactly the first n of want,
// comparing records through their JSON encodings.
func wantPrefix(t *testing.T, seqs []uint64, recs []core.ReplayRecord, want []core.ReplayRecord, n int) {
	t.Helper()
	if len(seqs) != len(recs) {
		t.Fatalf("decode returned %d seqs but %d records", len(seqs), len(recs))
	}
	if len(recs) != n {
		t.Fatalf("decoded %d records, want %d", len(recs), n)
	}
	for i := range recs {
		if seqs[i] != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want %d", i, seqs[i], i+1)
		}
		got, _ := json.Marshal(&recs[i])
		exp, _ := json.Marshal(&want[i])
		if string(got) != string(exp) {
			t.Fatalf("record %d decoded as %s, want %s", i, got, exp)
		}
	}
}

func TestDecodeJournalClean(t *testing.T) {
	want := sampleRecords(3)
	data := encodeRecords(t, want)
	seqs, recs, truncated, reason := DecodeJournal(data)
	if truncated {
		t.Fatalf("clean journal reported truncation: %s", reason)
	}
	wantPrefix(t, seqs, recs, want, 3)
}

func TestDecodeJournalEmpty(t *testing.T) {
	seqs, recs, truncated, _ := DecodeJournal(nil)
	if truncated || len(seqs) != 0 || len(recs) != 0 {
		t.Fatalf("empty journal: seqs=%d recs=%d truncated=%v", len(seqs), len(recs), truncated)
	}
}

func TestDecodeJournalTornTail(t *testing.T) {
	want := sampleRecords(3)
	data := encodeRecords(t, want)
	for cut := 1; cut < 16; cut++ {
		seqs, recs, truncated, reason := DecodeJournal(data[:len(data)-cut])
		if !truncated {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
		if reason == "" {
			t.Fatalf("cut %d: truncated without a reason", cut)
		}
		wantPrefix(t, seqs, recs, want, 2)
	}
}

func TestDecodeJournalBadCRC(t *testing.T) {
	want := sampleRecords(3)
	data := encodeRecords(t, want)
	// Flip the last byte: the CRC tail of the final frame.
	data[len(data)-1] ^= 0xff
	seqs, recs, truncated, reason := DecodeJournal(data)
	if !truncated || !strings.Contains(reason, "checksum") {
		t.Fatalf("flipped CRC: truncated=%v reason=%q", truncated, reason)
	}
	wantPrefix(t, seqs, recs, want, 2)
}

func TestDecodeJournalNonMonotoneSeq(t *testing.T) {
	recs := sampleRecords(2)
	p0, _ := json.Marshal(&recs[0])
	p1, _ := json.Marshal(&recs[1])
	var data []byte
	data = appendFrame(data, 5, p0)
	data = appendFrame(data, 5, p1) // not above 5: spliced or rewound
	seqs, _, truncated, reason := DecodeJournal(data)
	if !truncated || !strings.Contains(reason, "sequence") {
		t.Fatalf("repeated seq: truncated=%v reason=%q", truncated, reason)
	}
	if len(seqs) != 1 || seqs[0] != 5 {
		t.Fatalf("decoded seqs %v, want [5]", seqs)
	}
}

func TestDecodeJournalOversizeLength(t *testing.T) {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], maxFrame+1)
	binary.LittleEndian.PutUint64(hdr[4:12], 1)
	_, recs, truncated, reason := DecodeJournal(hdr[:])
	if !truncated || !strings.Contains(reason, "exceeds") {
		t.Fatalf("oversize length: truncated=%v reason=%q", truncated, reason)
	}
	if len(recs) != 0 {
		t.Fatalf("decoded %d records from a poisoned header", len(recs))
	}
}

func TestDecodeJournalUndecodableRecord(t *testing.T) {
	want := sampleRecords(1)
	data := encodeRecords(t, want)
	// A frame whose payload passes the checksum but is not a record.
	data = appendFrame(data, 2, []byte("{"))
	seqs, recs, truncated, reason := DecodeJournal(data)
	if !truncated || !strings.Contains(reason, "undecodable") {
		t.Fatalf("bad payload: truncated=%v reason=%q", truncated, reason)
	}
	wantPrefix(t, seqs, recs, want, 1)
}

// TestDecodeJournalSingleByteFlips pins the fail-closed property the
// checksums exist for: flipping any single byte of a valid journal must
// yield a strict prefix of the original records — never a record with
// different content, never more records.
func TestDecodeJournalSingleByteFlips(t *testing.T) {
	want := sampleRecords(3)
	orig := encodeRecords(t, want)
	for pos := range orig {
		data := append([]byte(nil), orig...)
		data[pos] ^= 0xff
		seqs, recs, _, _ := DecodeJournal(data)
		if len(seqs) != len(recs) {
			t.Fatalf("pos %d: %d seqs vs %d records", pos, len(seqs), len(recs))
		}
		if len(recs) > len(want) {
			t.Fatalf("pos %d: decoded %d records from a 3-record journal", pos, len(recs))
		}
		for i := range recs {
			// A flipped sequence byte can only skip forward (monotone
			// check), never alias another record's payload (the CRC
			// covers the sequence); content must match by position in
			// the surviving prefix.
			got, _ := json.Marshal(&recs[i])
			exp, _ := json.Marshal(&want[i])
			if seqs[i] == uint64(i+1) && string(got) != string(exp) {
				t.Fatalf("pos %d: record %d content changed under a byte flip", pos, i)
			}
		}
	}
}

func TestDecodeJournalLargeRecord(t *testing.T) {
	// One record with a bulky payload (a deep parked list) still frames
	// and decodes in one piece.
	rec := core.ReplayRecord{Kind: core.RecDeny, Domain: 0, Src: -1}
	for i := 0; i < 10000; i++ {
		rec.ParkedAdd = append(rec.ParkedAdd, i)
	}
	data := encodeRecords(t, []core.ReplayRecord{rec})
	seqs, recs, truncated, reason := DecodeJournal(data)
	if truncated {
		t.Fatalf("valid frame truncated: %s", reason)
	}
	if len(seqs) != 1 || len(recs[0].ParkedAdd) != 10000 {
		t.Fatalf("large record did not round-trip")
	}
}
