package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"rdasched/internal/core"
	"rdasched/internal/sim"
)

// Config sizes a checkpointed run.
type Config struct {
	// Dir is the checkpoint directory: meta.json, journal.log, and the
	// snap-*.json snapshots live there. Created if missing.
	Dir string
	// Every is the snapshot cadence on the virtual clock: a snapshot is
	// cut when a journal record's timestamp crosses the next multiple of
	// Every — no extra engine events, so a checkpointed run schedules
	// byte-identically to an unchecked one. Zero journals without
	// periodic snapshots (the attach-time snapshot still anchors the
	// journal); negative is rejected.
	Every sim.Duration
}

// Validate reports whether the configuration can attach a checkpointer.
func (c Config) Validate() error {
	if c.Dir == "" {
		return fmt.Errorf("persist: checkpoint directory not set")
	}
	if c.Every < 0 {
		return fmt.Errorf("persist: negative snapshot cadence %v", c.Every)
	}
	return nil
}

// StateExporter is the gate-side surface the checkpointer snapshots;
// core.Scheduler and core.DomainSet both satisfy it.
type StateExporter interface {
	ExportState() core.State
}

// meta is the run descriptor persisted alongside the journal.
type meta struct {
	Version int
	KillAt  sim.Duration
}

// Stats counts checkpointer activity for the rda_persist_* family.
type Stats struct {
	Records       uint64 // journal records written
	JournalBytes  uint64 // framed bytes appended to the journal
	Snapshots     uint64 // snapshots cut (including the attach-time one)
	SnapshotBytes uint64 // snapshot bytes written
}

// Checkpointer is a core.ReplaySink that journals every admission
// record and cuts periodic state snapshots. It is single-goroutine,
// like the scheduler feeding it. I/O errors are sticky: the first one
// stops all further writes and surfaces from Close, so a run never
// trusts a checkpoint directory a failed write left behind.
type Checkpointer struct {
	cfg   Config
	gate  StateExporter
	jw    *journalWriter
	seq   uint64
	next  sim.Time // next snapshot cut point (zero = periodic snapshots off)
	buf   []byte
	err   error
	stats Stats
}

// Attach creates the checkpoint directory, writes meta.json, opens the
// journal, and cuts the initial snapshot (sequence 0: the gate before
// any record). killAt records the armed process-death time so the
// revival run can re-execute the same prefix.
func Attach(cfg Config, gate StateExporter, killAt sim.Duration) (*Checkpointer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if gate == nil {
		return nil, fmt.Errorf("persist: nil gate")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: create checkpoint dir: %w", err)
	}
	mb, err := json.Marshal(meta{Version: FormatVersion, KillAt: killAt})
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(cfg.Dir, "meta.json"), mb, 0o644); err != nil {
		return nil, fmt.Errorf("persist: write meta: %w", err)
	}
	jw, err := openJournal(filepath.Join(cfg.Dir, "journal.log"))
	if err != nil {
		return nil, fmt.Errorf("persist: open journal: %w", err)
	}
	cp := &Checkpointer{cfg: cfg, gate: gate, jw: jw}
	if cfg.Every > 0 {
		cp.next = sim.Time(0).Add(cfg.Every)
	}
	if err := cp.snapshot(); err != nil {
		jw.close()
		return nil, err
	}
	return cp, nil
}

// Replay implements core.ReplaySink: append one framed record, then cut
// a snapshot if the record's timestamp crossed the cadence boundary.
func (cp *Checkpointer) Replay(r core.ReplayRecord) {
	if cp.err != nil {
		return
	}
	payload, err := json.Marshal(&r)
	if err != nil {
		cp.err = fmt.Errorf("persist: encode record: %w", err)
		return
	}
	cp.seq++
	n, err := cp.jw.append(cp.seq, payload)
	if err != nil {
		cp.err = fmt.Errorf("persist: append record %d: %w", cp.seq, err)
		return
	}
	cp.stats.Records++
	cp.stats.JournalBytes += uint64(n)
	if cp.next > 0 && r.At >= cp.next {
		if err := cp.snapshot(); err != nil {
			cp.err = err
			return
		}
		for cp.next <= r.At {
			cp.next = cp.next.Add(cp.cfg.Every)
		}
	}
}

// snapshotFile wraps a snapshot with its journal anchor: the state
// reflects every record with sequence <= Seq (and possibly parts of an
// in-progress cascade beyond it — record application is idempotent, so
// replaying from Seq+1 converges regardless).
type snapshotFile struct {
	Seq   uint64
	State core.State
}

func (cp *Checkpointer) snapshot() error {
	st := cp.gate.ExportState()
	b, err := json.Marshal(snapshotFile{Seq: cp.seq, State: st})
	if err != nil {
		return fmt.Errorf("persist: encode snapshot: %w", err)
	}
	path := filepath.Join(cp.cfg.Dir, fmt.Sprintf("snap-%016d.json", cp.seq))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("persist: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("persist: commit snapshot: %w", err)
	}
	cp.stats.Snapshots++
	cp.stats.SnapshotBytes += uint64(len(b))
	return nil
}

// Err returns the sticky I/O error, if any.
func (cp *Checkpointer) Err() error { return cp.err }

// Stats returns a copy of the activity counters.
func (cp *Checkpointer) Stats() Stats { return cp.stats }

// Seq returns the sequence number of the last record written.
func (cp *Checkpointer) Seq() uint64 { return cp.seq }

// Close syncs and closes the journal, returning the sticky error if one
// occurred during the run.
func (cp *Checkpointer) Close() error {
	cerr := cp.jw.close()
	if cp.err != nil {
		return cp.err
	}
	return cerr
}
