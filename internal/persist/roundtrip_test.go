package persist_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rdasched/internal/core"
	"rdasched/internal/faults"
	"rdasched/internal/machine"
	"rdasched/internal/perf"
	"rdasched/internal/persist"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
	"rdasched/internal/sim"
)

// reviveWorkload is a compact crash-restart mix: twelve single-thread
// processes each declaring a quarter of the Table 1 LLC, so admission
// bounds concurrency (at four under Strict, eight under Compromise) and
// the rest sit on the waitlist — the kill lands while tickets, waiters,
// and leases are all live. Job lengths are staggered so ends, wakes,
// and the journal records they cut spread across the whole run instead
// of clustering in waves.
func reviveWorkload() proc.Workload {
	w := proc.Workload{Name: "revive-mix"}
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("job-%d", i)
		instr := 2e7 * (1 + 0.15*float64(i))
		w.Procs = append(w.Procs, proc.Spec{
			Name: name, Threads: 1,
			Program: proc.Program{
				{Name: name + "-init", Instr: 2e5, WSS: pp.KB(3840), Reuse: pp.ReuseLow,
					AccessesPerInstr: 0.4, PrivateHitFrac: 0.9, StreamFrac: 1.0},
				{Name: name, Instr: instr, WSS: pp.KB(3840), Reuse: pp.ReuseHigh,
					AccessesPerInstr: 1.0, PrivateHitFrac: 0.5, FlopsPerInstr: 0.1,
					Declared: true},
				{Name: name + "-fini", Instr: 1e5, WSS: pp.KB(64), Reuse: pp.ReuseLow,
					AccessesPerInstr: 0.2, PrivateHitFrac: 0.95, StreamFrac: 1.0},
			},
		})
	}
	return w
}

// reviveConfig mirrors the chaos harness timeouts: generous enough that
// a clean run shows no reclaims or fallbacks, so the restored schedule
// must reproduce the baseline's exact lease and deadline bookkeeping.
func reviveConfig(policy core.Policy, domains int) perf.RunConfig {
	ideal := 2e7 * (1 + 0.15*11) / 1.9e9 // longest declared phase at 1 IPC
	return perf.RunConfig{
		Machine:       machine.DefaultConfig(),
		Policy:        policy,
		Lease:         sim.FromSeconds(ideal * 96),
		AdmitDeadline: sim.FromSeconds(ideal * 64),
		Domains:       domains,
	}
}

// killRestore runs the full protocol: baseline, killed run with a
// checkpoint, restore from disk, revival run; it returns baseline and
// revived metrics plus the checkpoint provenance.
func killRestore(t *testing.T, rc perf.RunConfig, frac float64, mutate func(dir string)) (base, revived perf.Metrics, res *persist.Restored) {
	t.Helper()
	w := reviveWorkload()
	base, err := perf.Sample(w, rc, 0)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if base.MaxWaitSec == 0 {
		t.Fatal("workload forms no waitlist; the round trip would not exercise restore")
	}
	killAt := sim.FromSeconds(base.ElapsedSec * frac)
	dir := t.TempDir()

	krc := rc
	krc.Faults = &faults.Plan{KillAt: killAt}
	krc.Checkpoint = &persist.Config{Dir: dir, Every: killAt / 3}
	if _, err := perf.Sample(w, krc, 0); !errors.Is(err, machine.ErrHalted) {
		t.Fatalf("killed run returned %v, want machine.ErrHalted", err)
	}
	if mutate != nil {
		mutate(dir)
	}

	res, err = persist.Restore(dir)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if res.KillAt != killAt {
		t.Fatalf("restored KillAt %v, want %v", res.KillAt, killAt)
	}

	rrc := rc
	rrc.Restore = res
	revived, err = perf.Sample(w, rrc, 0)
	if err != nil {
		t.Fatalf("revival run: %v", err)
	}
	return base, revived, res
}

// assertSameMetrics compares two runs through the JSON encoding of
// their metrics — the same representation the E9 verdict and goldens
// pin.
func assertSameMetrics(t *testing.T, want, got perf.Metrics) {
	t.Helper()
	wb, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb, gb) {
		t.Fatalf("revived run diverged from the unkilled baseline:\nbaseline %s\nrevived  %s", wb, gb)
	}
}

// TestKillRestoreRoundTrip is the tentpole invariant: kill the process
// mid-schedule, restore from the checkpoint directory, and the revived
// run's final metrics are byte-identical to an uninterrupted run's —
// across sharding and policy.
func TestKillRestoreRoundTrip(t *testing.T) {
	cases := []struct {
		name    string
		policy  core.Policy
		domains int
	}{
		{"strict", core.StrictPolicy{}, 0},
		{"strict-4dom", core.StrictPolicy{}, 4},
		{"compromise", core.NewCompromise(), 0},
		{"compromise-4dom", core.NewCompromise(), 4},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rc := reviveConfig(tc.policy, tc.domains)
			base, revived, res := killRestore(t, rc, 0.4, nil)
			if res.Truncated {
				t.Fatalf("clean kill reported a torn journal: %s", res.TruncReason)
			}
			if res.Seq == 0 {
				t.Fatal("nothing journaled before the kill")
			}
			if res.SnapshotSeq == 0 {
				t.Fatal("no periodic snapshot was cut before the kill")
			}
			assertSameMetrics(t, base, revived)
		})
	}
}

// TestKillRestoreEarlyAndLate moves the kill point: early (during the
// admission pile-up) and late (most periods already drained).
func TestKillRestoreEarlyAndLate(t *testing.T) {
	for _, frac := range []float64{0.1, 0.75} {
		frac := frac
		t.Run(fmt.Sprintf("frac-%.2f", frac), func(t *testing.T) {
			rc := reviveConfig(core.StrictPolicy{}, 0)
			base, revived, _ := killRestore(t, rc, frac, nil)
			assertSameMetrics(t, base, revived)
		})
	}
}

// TestRestoreFromTornJournal tears bytes off the journal tail after the
// kill — the on-disk shape an actual mid-write death leaves — and pins
// that the revival still converges: the reader truncates at the torn
// frame and the deterministic prefix re-execution regenerates the lost
// suffix.
func TestRestoreFromTornJournal(t *testing.T) {
	for _, cut := range []int{5, 400} {
		cut := cut
		t.Run(fmt.Sprintf("cut-%d", cut), func(t *testing.T) {
			rc := reviveConfig(core.StrictPolicy{}, 4)
			base, revived, res := killRestore(t, rc, 0.4, func(dir string) {
				jp := filepath.Join(dir, "journal.log")
				b, err := os.ReadFile(jp)
				if err != nil {
					t.Fatal(err)
				}
				if len(b) <= cut {
					t.Fatalf("journal only %d bytes, cannot cut %d", len(b), cut)
				}
				if err := os.WriteFile(jp, b[:len(b)-cut], 0o644); err != nil {
					t.Fatal(err)
				}
			})
			if !res.Truncated {
				t.Fatal("torn journal not reported as truncated")
			}
			assertSameMetrics(t, base, revived)
		})
	}
}

// TestRestoreSkipsCorruptSnapshot poisons the newest snapshot file;
// restore must fall back to the previous one and the revival must still
// match the baseline.
func TestRestoreSkipsCorruptSnapshot(t *testing.T) {
	rc := reviveConfig(core.StrictPolicy{}, 0)
	base, revived, _ := killRestore(t, rc, 0.4, func(dir string) {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var snaps []string
		for _, e := range ents {
			n := e.Name()
			if len(n) > 5 && n[:5] == "snap-" {
				snaps = append(snaps, n)
			}
		}
		if len(snaps) < 2 {
			t.Fatalf("need at least 2 snapshots to poison the newest, have %d", len(snaps))
		}
		newest := snaps[len(snaps)-1]
		if err := os.WriteFile(filepath.Join(dir, newest), []byte("not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	})
	assertSameMetrics(t, base, revived)
}

// TestRestoreErrors pins the loader's failure modes.
func TestRestoreErrors(t *testing.T) {
	t.Run("missing-dir", func(t *testing.T) {
		if _, err := persist.Restore(filepath.Join(t.TempDir(), "nope")); err == nil {
			t.Fatal("restore of a missing directory succeeded")
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "meta.json"), []byte(`{"Version":99,"KillAt":1}`), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := persist.Restore(dir); err == nil {
			t.Fatal("restore accepted an unknown format version")
		}
	})
	t.Run("no-snapshot", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "meta.json"), []byte(`{"Version":1,"KillAt":1}`), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := persist.Restore(dir); err == nil {
			t.Fatal("restore without any snapshot succeeded")
		}
	})
}

// TestValidatePersistRejections pins the perf-layer scope guards.
func TestValidatePersistRejections(t *testing.T) {
	w := reviveWorkload()
	dir := t.TempDir()
	t.Run("checkpoint-without-policy", func(t *testing.T) {
		rc := perf.RunConfig{Machine: machine.DefaultConfig(),
			Checkpoint: &persist.Config{Dir: dir}}
		if _, err := perf.Sample(w, rc, 0); err == nil {
			t.Fatal("baseline checkpoint accepted")
		}
	})
	t.Run("restore-multi-rep", func(t *testing.T) {
		rc := reviveConfig(core.StrictPolicy{}, 0)
		rc.Repetitions = 2
		rc.Restore = &persist.Restored{KillAt: sim.FromSeconds(1)}
		if _, err := perf.Sample(w, rc, 0); err == nil {
			t.Fatal("multi-repetition restore accepted")
		}
	})
	t.Run("restore-without-kill", func(t *testing.T) {
		rc := reviveConfig(core.StrictPolicy{}, 0)
		rc.Restore = &persist.Restored{}
		if _, err := perf.Sample(w, rc, 0); err == nil {
			t.Fatal("restore without a kill time accepted")
		}
	})
	t.Run("checkpoint-and-restore", func(t *testing.T) {
		rc := reviveConfig(core.StrictPolicy{}, 0)
		rc.Checkpoint = &persist.Config{Dir: dir}
		rc.Restore = &persist.Restored{KillAt: sim.FromSeconds(1)}
		if _, err := perf.Sample(w, rc, 0); err == nil {
			t.Fatal("checkpoint+restore accepted")
		}
	})
}
