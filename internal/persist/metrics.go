package persist

import "rdasched/internal/telemetry"

// The rda_persist_* metric family: checkpoint write activity on the
// producing side, replay provenance on the restoring side.
const (
	MetricRecords       = "rda_persist_records_total"        // journal records written
	MetricJournalBytes  = "rda_persist_journal_bytes_total"  // framed journal bytes
	MetricSnapshots     = "rda_persist_snapshots_total"      // snapshots cut
	MetricSnapshotBytes = "rda_persist_snapshot_bytes_total" // snapshot bytes written
	MetricReplayed      = "rda_persist_replayed_total"       // records replayed on restore
	MetricTruncations   = "rda_persist_truncations_total"    // journals truncated at a torn frame
	MetricRestoreSeq    = "rda_persist_restore_seq"          // last record sequence restored
)

// Publish writes the checkpointer's counters into reg.
func (cp *Checkpointer) Publish(reg *telemetry.Registry) {
	reg.Counter(MetricRecords).Add(cp.stats.Records)
	reg.Counter(MetricJournalBytes).Add(cp.stats.JournalBytes)
	reg.Counter(MetricSnapshots).Add(cp.stats.Snapshots)
	reg.Counter(MetricSnapshotBytes).Add(cp.stats.SnapshotBytes)
}

// Publish writes the restore provenance into reg.
func (r *Restored) Publish(reg *telemetry.Registry) {
	reg.Counter(MetricReplayed).Add(uint64(r.Replayed))
	if r.Truncated {
		reg.Counter(MetricTruncations).Inc()
	}
	reg.Gauge(MetricRestoreSeq).Set(float64(r.Seq))
}
