// Package persist makes the scheduler stack crash-safe on the virtual
// clock: an append-only admission journal (every admission-relevant
// decision as a length-prefixed, CRC-32C-checksummed record), periodic
// full-state snapshots, and a restore path that loads the last valid
// snapshot, replays the journal suffix, and reconstructs the exact gate
// a killed run had at its last completed engine event.
//
// Durability model: the journal is appended one frame per record, so a
// process death tears at most the final frame; the reader truncates at
// the first frame that is short, oversized, fails its checksum, or
// regresses the sequence number. Snapshots are written to a temp file
// and renamed into place, so a snapshot either exists wholly or not at
// all. Everything downstream of the truncation point is re-derived by
// re-executing the run up to the kill point (the simulation is
// deterministic), so restore needs no fsync-per-record guarantees —
// a valid prefix is sufficient, and CRC-32C decides validity.
package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"rdasched/internal/core"
)

// FormatVersion identifies the on-disk layout (meta.json, journal
// framing, snapshot encoding). Restore refuses other versions.
const FormatVersion = 1

// maxFrame bounds a single journal payload; a length prefix beyond it
// is treated as corruption (truncate), not as an allocation request.
const maxFrame = 16 << 20

// Journal file framing:
//
//	uint32 LE payload length | uint64 LE sequence | payload (JSON) |
//	uint32 LE CRC-32C over (sequence bytes || payload)
//
// Sequence numbers start at 1 and are strictly increasing; the CRC
// covers the sequence so a frame spliced from another position (or
// another journal) fails closed.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame encodes one frame into buf and returns the extended
// slice.
func appendFrame(buf []byte, seq uint64, payload []byte) []byte {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[4:12], seq)
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	crc := crc32.Update(0, crcTable, hdr[4:12])
	crc = crc32.Update(crc, crcTable, payload)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	return append(buf, tail[:]...)
}

// frameReader iterates a journal stream, truncating (not erroring) at
// the first invalid frame.
type frameReader struct {
	r       *bufio.Reader
	lastSeq uint64

	// Truncation report: set once reading stops early.
	Truncated bool
	Reason    string
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: bufio.NewReader(r)}
}

// next returns the next valid frame's sequence and payload; ok=false at
// clean EOF or at the truncation point (check Truncated to tell apart).
func (fr *frameReader) next() (seq uint64, payload []byte, ok bool) {
	var hdr [12]byte
	if _, err := io.ReadFull(fr.r, hdr[:1]); err == io.EOF {
		return 0, nil, false // clean end
	} else if err != nil {
		fr.trunc(fmt.Sprintf("short header: %v", err))
		return 0, nil, false
	}
	if _, err := io.ReadFull(fr.r, hdr[1:]); err != nil {
		fr.trunc(fmt.Sprintf("short header: %v", err))
		return 0, nil, false
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	seq = binary.LittleEndian.Uint64(hdr[4:12])
	if n > maxFrame {
		fr.trunc(fmt.Sprintf("frame length %d exceeds limit", n))
		return 0, nil, false
	}
	if seq <= fr.lastSeq {
		fr.trunc(fmt.Sprintf("sequence %d not above %d", seq, fr.lastSeq))
		return 0, nil, false
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		fr.trunc(fmt.Sprintf("short payload: %v", err))
		return 0, nil, false
	}
	var tail [4]byte
	if _, err := io.ReadFull(fr.r, tail[:]); err != nil {
		fr.trunc(fmt.Sprintf("short checksum: %v", err))
		return 0, nil, false
	}
	crc := crc32.Update(0, crcTable, hdr[4:12])
	crc = crc32.Update(crc, crcTable, payload)
	if crc != binary.LittleEndian.Uint32(tail[:]) {
		fr.trunc(fmt.Sprintf("checksum mismatch on frame %d", seq))
		return 0, nil, false
	}
	fr.lastSeq = seq
	return seq, payload, true
}

func (fr *frameReader) trunc(reason string) {
	fr.Truncated = true
	fr.Reason = reason
}

// DecodeJournal reads every valid frame from data and returns the
// decoded records with their sequence numbers, plus the truncation
// report. Frames whose payload is valid framing but not a decodable
// record count as corruption at that point (truncate there). It never
// panics on arbitrary input — the FuzzJournalDecode target pins that.
func DecodeJournal(data []byte) (seqs []uint64, recs []core.ReplayRecord, truncated bool, reason string) {
	fr := newFrameReader(bytes.NewReader(data))
	for {
		seq, payload, ok := fr.next()
		if !ok {
			return seqs, recs, fr.Truncated, fr.Reason
		}
		var rec core.ReplayRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return seqs, recs, true, fmt.Sprintf("undecodable record %d: %v", seq, err)
		}
		seqs = append(seqs, seq)
		recs = append(recs, rec)
	}
}

// journalWriter appends frames to a file, one write per record.
type journalWriter struct {
	f   *os.File
	buf []byte
}

func openJournal(path string) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &journalWriter{f: f}, nil
}

// append frames and writes one record; it returns the frame size.
func (w *journalWriter) append(seq uint64, payload []byte) (int, error) {
	w.buf = appendFrame(w.buf[:0], seq, payload)
	if _, err := w.f.Write(w.buf); err != nil {
		return 0, err
	}
	return len(w.buf), nil
}

func (w *journalWriter) close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
