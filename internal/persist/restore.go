package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rdasched/internal/core"
	"rdasched/internal/sim"
)

// Restored is the result of loading a checkpoint directory: the exact
// gate state at the last journaled record, plus the provenance the
// harness reports (rda_persist_* metrics, the E9 report).
type Restored struct {
	State       core.State
	KillAt      sim.Duration // process-death time the killed run had armed
	Seq         uint64       // sequence of the last record applied (snapshot seq if none)
	SnapshotSeq uint64       // journal anchor of the snapshot used
	Replayed    int          // journal records applied on top of the snapshot
	Truncated   bool         // journal ended at a torn or corrupt frame
	TruncReason string       // why, when Truncated
}

// Restore loads the last valid snapshot under dir and replays the
// journal suffix onto it. The journal is truncated — silently, but
// reported — at the first torn or corrupt frame; a record that passes
// its checksum but cannot be applied is a hard error (the journal is
// internally inconsistent, not merely torn).
func Restore(dir string) (*Restored, error) {
	mb, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, fmt.Errorf("persist: read meta: %w", err)
	}
	var m meta
	if err := json.Unmarshal(mb, &m); err != nil {
		return nil, fmt.Errorf("persist: decode meta: %w", err)
	}
	if m.Version != FormatVersion {
		return nil, fmt.Errorf("persist: checkpoint format version %d, want %d", m.Version, FormatVersion)
	}

	snap, err := loadLatestSnapshot(dir)
	if err != nil {
		return nil, err
	}

	out := &Restored{
		State:       snap.State,
		KillAt:      m.KillAt,
		Seq:         snap.Seq,
		SnapshotSeq: snap.Seq,
	}
	data, err := os.ReadFile(filepath.Join(dir, "journal.log"))
	if err != nil {
		return nil, fmt.Errorf("persist: read journal: %w", err)
	}
	seqs, recs, truncated, reason := DecodeJournal(data)
	out.Truncated = truncated
	out.TruncReason = reason
	for i, rec := range recs {
		if seqs[i] <= snap.Seq {
			continue // already reflected in the snapshot
		}
		if err := out.State.Apply(rec); err != nil {
			return nil, fmt.Errorf("persist: apply record %d: %w", seqs[i], err)
		}
		out.Seq = seqs[i]
		out.Replayed++
	}
	return out, nil
}

// loadLatestSnapshot returns the highest-sequence snapshot that decodes
// cleanly, skipping corrupt ones (a crash can only tear the temp file,
// but restore stays defensive about the directory it is handed).
func loadLatestSnapshot(dir string) (*snapshotFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: read checkpoint dir: %w", err)
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if strings.HasPrefix(n, "snap-") && strings.HasSuffix(n, ".json") {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("persist: no snapshots in %s", dir)
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names))) // zero-padded seq: lexicographic = numeric
	var lastErr error
	for _, n := range names {
		b, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			lastErr = err
			continue
		}
		var sf snapshotFile
		if err := json.Unmarshal(b, &sf); err != nil {
			lastErr = fmt.Errorf("persist: decode %s: %w", n, err)
			continue
		}
		return &sf, nil
	}
	return nil, fmt.Errorf("persist: no usable snapshot in %s: %v", dir, lastErr)
}
