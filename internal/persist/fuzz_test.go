package persist

import (
	"bytes"
	"encoding/json"
	"testing"

	"rdasched/internal/core"
	"rdasched/internal/pp"
	"rdasched/internal/sim"
)

// fuzzSeedState is a populated state exercising every State branch:
// sharded domains, waitlisted and admitted periods, a governor, armed
// timers, and set-level placement.
func fuzzSeedState() core.State {
	gov := core.GovState{
		Level:      core.GovDegraded,
		Pressured:  true,
		WaitCounts: make([]uint32, 64),
		Breakers:   []core.BreakerSnap{{Proc: 3, State: core.BreakerOpen, Strikes: 2}},
		NextTickAt: sim.Time(0).Add(sim.FromSeconds(0.5)),
	}
	return core.State{
		At: sim.Time(0).Add(sim.FromSeconds(0.25)),
		Domains: []core.DomainState{
			{
				NextID:   7,
				Capacity: []pp.Bytes{pp.KB(3840), 0},
				Usage:    []pp.Bytes{pp.KB(3840), 0},
				Peak:     []pp.Bytes{pp.KB(3840), 0},
				Periods: []core.PeriodState{
					{ID: 2, Proc: 0, Phase: 1, Admitted: true, Refs: 1,
						LeaseAt: sim.Time(0).Add(sim.FromSeconds(1))},
					{ID: 5, Proc: 4, Phase: 1, Ticket: 3, Waiters: []int{4},
						EnqueuedAt: sim.Time(0).Add(sim.FromSeconds(0.1)),
						DeadlineAt: sim.Time(0).Add(sim.FromSeconds(0.7))},
				},
				WaitSeq: 3,
				Parked:  []int{4},
				Inside:  []core.InsideEntry{{Thread: 0, Proc: 0, Phase: 1}},
				Gov:     &gov,
			},
			{Capacity: []pp.Bytes{pp.KB(3840), 0}, Usage: []pp.Bytes{0, 0}, Peak: []pp.Bytes{0, 0}},
		},
		Set: &core.SetState{
			NextID:      7,
			DomainOf:    []core.PlacementEntry{{Proc: 0, Phase: 1, Domain: 0}, {Proc: 4, Phase: 1, Domain: 0}},
			Placements:  2,
			StealTickAt: sim.Time(0).Add(sim.FromSeconds(0.3)),
		},
	}
}

// FuzzJournalDecode pins the reader's safety contract on arbitrary
// bytes: it never panics, never returns mismatched seq/record slices,
// keeps sequence numbers strictly increasing, and always explains a
// truncation.
func FuzzJournalDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	clean := encodeRecords(f, sampleRecords(3))
	f.Add(clean)
	torn := append([]byte(nil), clean[:len(clean)-3]...)
	f.Add(torn)
	crc := append([]byte(nil), clean...)
	crc[len(crc)-1] ^= 0xff
	f.Add(crc)
	f.Fuzz(func(t *testing.T, data []byte) {
		seqs, recs, truncated, reason := DecodeJournal(data)
		if len(seqs) != len(recs) {
			t.Fatalf("%d seqs vs %d records", len(seqs), len(recs))
		}
		for i := 1; i < len(seqs); i++ {
			if seqs[i] <= seqs[i-1] {
				t.Fatalf("sequence not strictly increasing: %d after %d", seqs[i], seqs[i-1])
			}
		}
		if truncated && reason == "" {
			t.Fatal("truncated without a reason")
		}
		if !truncated && reason != "" {
			t.Fatalf("reason %q without truncation", reason)
		}
	})
}

// FuzzSnapshotRoundTrip pins that the canonical snapshot encoding is a
// fixed point: any state that decodes from a snapshot re-encodes,
// re-decodes, and re-encodes to identical bytes. The restore
// consistency check compares canonical encodings, so a non-idempotent
// encoding would make honest restores diverge.
func FuzzSnapshotRoundTrip(f *testing.F) {
	seed, err := json.Marshal(snapshotFile{Seq: 12, State: fuzzSeedState()})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"Seq":0,"State":{"At":0,"Domains":null,"Set":null}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var sf snapshotFile
		if err := json.Unmarshal(data, &sf); err != nil {
			t.Skip()
		}
		b1, err := sf.State.Canonical()
		if err != nil {
			t.Skip() // unmarshalable floats etc. cannot come from a real snapshot
		}
		var st core.State
		if err := json.Unmarshal(b1, &st); err != nil {
			t.Fatalf("canonical encoding does not decode: %v", err)
		}
		b2, err := st.Canonical()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("canonical encoding is not a fixed point:\n%s\nvs\n%s", b1, b2)
		}
	})
}
