package workloads

import (
	"rdasched/internal/memtrace"
	"rdasched/internal/pp"
	"rdasched/internal/profiler"
)

// Trace generation for the §4.4 profiling experiments (Figure 12). These
// streams stand in for PIN instrumentation of the real water_nsquared
// and ocean_cp binaries: each application alternates initialization /
// synchronization filler with its top-two progress periods, whose hot
// working sets follow the input-scaled WSS curves in scaling.go. The
// profiler must *measure* those sizes back out of the raw address
// stream.

// Fig12ProfilerConfig returns the profiler granularity used for the
// Figure 12 runs: 2M-instruction windows, 256-byte entries, entries
// touched ≥3 times count toward the working set, periods span ≥3
// windows.
func Fig12ProfilerConfig() profiler.Config {
	return profiler.Config{
		WindowInstr:    2_000_000,
		MinPeriodInstr: 6_000_000,
		EntryBytes:     256,
		MinTouches:     3,
		SimilarityTol:  0.3,
		ReuseTolFactor: 4,
	}
}

const fig12Window = 2_000_000

// traceSites: JMP site numbering convention for the synthetic binaries.
const (
	siteInit = 1
	siteSync = 2
	sitePP1  = 11
	sitePP2  = 12
	// Inner-loop sites: the dominant JMPs actually retired inside each
	// period (the profiler must map them to the outermost loops).
	sitePP1Inner = 21
	sitePP2Inner = 22
)

// appTrace builds the phase list shared by both applications: init, PP1,
// sync, PP2, sync, with per-period hot sets and reference densities.
func appTrace(seed uint64, wss1, wss2 pp.Bytes, refs1, refs2 float64) *memtrace.PhasedStream {
	// Cold regions are sized so one window's cold sweep never wraps:
	// wrapped sweeps would re-touch streamed entries past the profiler's
	// MinTouches threshold and masquerade as working set.
	filler := func(name string, site int) memtrace.PhaseSpec {
		return memtrace.PhaseSpec{
			Name: name, Instr: fig12Window, RefsPerInstr: 0.1,
			HotBytes: 64 * pp.KiB, ColdBytes: 256 * pp.MiB, HotFrac: 0.2,
			Site: site, JumpEvery: 4096,
		}
	}
	period := func(name string, wss pp.Bytes, refs float64, site int) memtrace.PhaseSpec {
		return memtrace.PhaseSpec{
			Name: name, Instr: 5 * fig12Window, RefsPerInstr: refs,
			HotBytes: wss, ColdBytes: 256 * pp.MiB, HotFrac: 0.99,
			Site: site, JumpEvery: 2048,
		}
	}
	return memtrace.NewPhasedStream(seed,
		filler("init", siteInit),
		period("pp1", wss1, refs1, sitePP1Inner),
		filler("sync1", siteSync),
		period("pp2", wss2, refs2, sitePP2Inner),
		filler("sync2", siteSync),
	)
}

// WaterNsqTrace returns the PIN-style trace of water_nsquared at a
// molecule count, plus the parsed loop structure of its binary. Both
// periods have high reuse (dense re-touching of the molecule arrays).
func WaterNsqTrace(molecules int, seed uint64) (*memtrace.PhasedStream, *profiler.Binary) {
	s := appTrace(seed,
		WaterNsqPPWSS(1, molecules), WaterNsqPPWSS(2, molecules),
		0.45, 0.45)
	bin, err := NewWaterNsqBinary()
	if err != nil {
		panic(err) // static table; cannot fail
	}
	return s, bin
}

// NewWaterNsqBinary returns the loop-nest structure of the
// water_nsquared binary: the two hot periods live in the INTERF and
// POTENG outer loops.
func NewWaterNsqBinary() (*profiler.Binary, error) {
	return profiler.NewBinary([]profiler.Loop{
		{ID: 0, Parent: -1, Name: "main-loop", Sites: []int{siteInit, siteSync}},
		{ID: 1, Parent: -1, Name: "interf", Sites: []int{sitePP1}},
		{ID: 2, Parent: 1, Name: "interf-pair", Sites: []int{sitePP1Inner}},
		{ID: 3, Parent: -1, Name: "poteng", Sites: []int{sitePP2}},
		{ID: 4, Parent: 3, Name: "poteng-pair", Sites: []int{sitePP2Inner}},
	})
}

// OceanTrace returns the trace of ocean_cp at a grid size plus its
// binary structure. PP1 (the slave2 stencil) has high reuse; PP2 (the
// relax sweep) has medium reuse — lower reference density over a smaller
// hot set.
func OceanTrace(cells int, seed uint64) (*memtrace.PhasedStream, *profiler.Binary) {
	s := appTrace(seed,
		OceanPPWSS(1, cells), OceanPPWSS(2, cells),
		0.45, 0.04)
	bin, err := NewOceanBinary()
	if err != nil {
		panic(err)
	}
	return s, bin
}

// NewOceanBinary returns ocean_cp's loop structure: the paper's §6
// example — slave2 contains multiple periods, relax is one uniform
// period.
func NewOceanBinary() (*profiler.Binary, error) {
	return profiler.NewBinary([]profiler.Loop{
		{ID: 0, Parent: -1, Name: "main-loop", Sites: []int{siteInit, siteSync}},
		{ID: 1, Parent: -1, Name: "slave2", Sites: []int{sitePP1}},
		{ID: 2, Parent: 1, Name: "slave2-stencil", Sites: []int{sitePP1Inner}},
		{ID: 3, Parent: -1, Name: "relax", Sites: []int{sitePP2}},
		{ID: 4, Parent: 3, Name: "relax-row", Sites: []int{sitePP2Inner}},
	})
}
