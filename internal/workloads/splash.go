package workloads

import (
	"fmt"

	"rdasched/internal/pp"
	"rdasched/internal/proc"
)

// splashApp describes one SPLASH-2 application's Table 2 shape: process
// and thread counts, and its sequence of progress periods (working set +
// reuse each). Between consecutive periods sits an undeclared
// synchronization phase ending in a barrier — the paper requires blocking
// synchronization to stay *outside* progress periods (§3.4), so each
// computational step is [declared period][undeclared sync + barrier].
type splashApp struct {
	name    string
	procs   int
	threads int
	periods []splashPeriod
	// perf parameters shared by the app's periods.
	accessesPerInstr float64
	privateHitFrac   float64
	streamFrac       float64
	flopsPerInstr    float64
	// periodInstr is the per-thread instruction count of each period.
	periodInstr float64
	// taskPool marks apps whose parallel runtime uses a task pool (§3.4
	// handling applies: deny one → park the pool).
	taskPool bool
}

type splashPeriod struct {
	wss   pp.Bytes
	reuse pp.Reuse
}

// splashApps returns the five Table 2 applications.
//
// Working-set sizes and reuse levels are Table 2 verbatim. Streaming
// fractions follow each code's structure: water_spatial sweeps its cell
// grid with little temporal reuse (the paper groups it with the low-reuse
// workloads that RDA should *not* help); water_nsquared's O(n²) molecule
// interactions re-touch the molecule array heavily; ocean's stencil
// phases mix streamed grids with reused boundary data; raytrace and
// volrend re-traverse scene/volume structures intensively.
func splashApps() []splashApp {
	return []splashApp{
		{
			name: "water_sp", procs: 12, threads: 2,
			periods: []splashPeriod{
				{pp.MB(1.6), pp.ReuseLow}, {pp.MB(1.3), pp.ReuseLow},
				{pp.MB(1.3), pp.ReuseLow}, {pp.MB(1.6), pp.ReuseLow},
			},
			accessesPerInstr: 0.35, privateHitFrac: 0.85, streamFrac: 0.8,
			flopsPerInstr: 0.3, periodInstr: 8e7,
		},
		{
			name: "water_nsq", procs: 12, threads: 2,
			periods: []splashPeriod{
				{pp.MB(3.6), pp.ReuseHigh}, {pp.MB(3.6), pp.ReuseHigh}, {pp.MB(3.7), pp.ReuseHigh},
			},
			accessesPerInstr: 0.35, privateHitFrac: 0.75, streamFrac: 0.1,
			flopsPerInstr: 0.35, periodInstr: 1.2e8,
		},
		{
			name: "ocean_cp", procs: 48, threads: 2,
			periods: []splashPeriod{
				{pp.MB(2.1), pp.ReuseHigh}, {pp.MB(0.76), pp.ReuseMed},
				{pp.MB(1.5), pp.ReuseHigh}, {pp.MB(0.59), pp.ReuseMed},
			},
			accessesPerInstr: 0.35, privateHitFrac: 0.8, streamFrac: 0.3,
			flopsPerInstr: 0.3, periodInstr: 5e7,
		},
		{
			name: "raytrace", procs: 48, threads: 4,
			periods: []splashPeriod{
				{pp.MB(5.1), pp.ReuseHigh}, {pp.MB(5.2), pp.ReuseHigh},
			},
			accessesPerInstr: 0.3, privateHitFrac: 0.78, streamFrac: 0.1,
			flopsPerInstr: 0.25, periodInstr: 6e7, taskPool: true,
		},
		{
			name: "volrend", procs: 48, threads: 4,
			periods: []splashPeriod{
				{pp.MB(1.8), pp.ReuseHigh}, {pp.MB(1.7), pp.ReuseHigh},
			},
			accessesPerInstr: 0.3, privateHitFrac: 0.8, streamFrac: 0.15,
			flopsPerInstr: 0.25, periodInstr: 6e7, taskPool: true,
		},
	}
}

// spec builds the per-thread program of one application instance.
func (a splashApp) spec() proc.Spec {
	prog := proc.Program{{
		Name: a.name + "-init", Instr: a.periodInstr * 0.02, WSS: pp.MB(0.5),
		Reuse: pp.ReuseLow, AccessesPerInstr: 0.4, PrivateHitFrac: 0.9,
		StreamFrac: 1, FlopsPerInstr: 0, BarrierAfter: true,
	}}
	for i, per := range a.periods {
		prog = append(prog, proc.Phase{
			Name: fmt.Sprintf("%s-pp%d", a.name, i+1), Instr: a.periodInstr,
			WSS: per.wss, Reuse: per.reuse,
			AccessesPerInstr: a.accessesPerInstr, PrivateHitFrac: a.privateHitFrac,
			StreamFrac: a.streamFrac, FlopsPerInstr: a.flopsPerInstr,
			Declared: true,
		})
		prog = append(prog, proc.Phase{
			Name: fmt.Sprintf("%s-sync%d", a.name, i+1), Instr: a.periodInstr * 0.03,
			WSS: pp.KB(256), Reuse: pp.ReuseLow, AccessesPerInstr: 0.3,
			PrivateHitFrac: 0.9, StreamFrac: 1, FlopsPerInstr: 0,
			BarrierAfter: true,
		})
	}
	return proc.Spec{Name: a.name, Threads: a.threads, Program: prog, TaskPool: a.taskPool}
}

// workload instantiates the application's Table 2 process count.
func (a splashApp) workload() proc.Workload {
	return proc.Workload{Name: a.name, Procs: proc.Replicate(a.spec(), a.procs)}
}

func splashByName(name string) (splashApp, bool) {
	for _, a := range splashApps() {
		if a.name == name {
			return a, true
		}
	}
	return splashApp{}, false
}

// WaterSp is the water_spatial workload (12 procs × 2 threads, low reuse).
func WaterSp() proc.Workload { a, _ := splashByName("water_sp"); return a.workload() }

// WaterNsq is the water_nsquared workload (12 × 2, high reuse).
func WaterNsq() proc.Workload { a, _ := splashByName("water_nsq"); return a.workload() }

// OceanCp is the ocean_contiguous-partitions workload (48 × 2, mixed reuse).
func OceanCp() proc.Workload { a, _ := splashByName("ocean_cp"); return a.workload() }

// Raytrace is the raytrace workload (48 × 4, high reuse, task pool).
func Raytrace() proc.Workload { a, _ := splashByName("raytrace"); return a.workload() }

// Volrend is the volrend workload (48 × 4, high reuse, task pool).
func Volrend() proc.Workload { a, _ := splashByName("volrend"); return a.workload() }
