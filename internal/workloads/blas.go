// Package workloads defines the eight workloads of Table 2 — three BLAS
// kernel groups and five SPLASH-2 applications — as proc.Workload phase
// descriptions, plus the input-scaled variants used by Figures 12 and 13.
//
// Phase parameters are derived from the kernels themselves (see
// internal/blas for the actual implementations): instruction counts from
// flop counts and per-element instruction estimates, working-set sizes
// and reuse levels straight from Table 2, and streaming fractions from
// each kernel's operand structure (a dgemv streams its matrix and reuses
// its vector; a blocked dgemm reuses nearly everything it touches).
package workloads

import (
	"fmt"

	"rdasched/internal/blas"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
)

// Table2ProcCount is the process count of every BLAS workload in Table 2.
const Table2ProcCount = 96

// blasKernel describes one BLAS kernel's workload-model parameters.
type blasKernel struct {
	name  string
	level int
	// wss is the Table 2 working-set size.
	wss pp.Bytes
	// reuse is the Table 2 reuse level of the working set.
	reuse pp.Reuse
	// instr is the dynamic instruction count of one kernel run (a single
	// progress period: "each BLAS kernel as a whole is considered as a
	// single progress period").
	instr float64
	// flopsPerInstr, accessesPerInstr, privateHitFrac, streamFrac are the
	// phase performance parameters.
	flopsPerInstr    float64
	accessesPerInstr float64
	privateHitFrac   float64
	streamFrac       float64
}

// blasKernels returns the twelve kernels with derived parameters.
//
// Derivations (per element of the innermost loop):
//
//   - level 1 (daxpy-like): 2 loads + 1 store + ~2 flops + ~3 loop/index
//     instructions → ~6 instr/elem, api ≈ 0.5, flops/instr ≈ 0.33. The
//     sweep is pure streaming (StreamFrac 1): spatial locality gives a
//     high private-hit fraction (7 of 8 consecutive doubles share a
//     64-byte line) but no temporal reuse at LLC level. The 0.6 MB
//     vectors are swept repeatedly, so the kernel still *occupies* its
//     working set (Table 2 lists 0.6 MB) without profiting from it much.
//   - level 2 (dgemv-like): the n-element vector (0.6 MB → n = 78643…
//     here the vector is the declared working set) is reused across all
//     matrix rows, while the n×n matrix streams from memory once per
//     sweep; ~85% of LLC-reaching accesses are matrix stream.
//   - level 3 (blocked dgemm-like): panels are blocked to fit in cache;
//     almost all LLC-reaching accesses hit resident panel data
//     (StreamFrac 0.05), flops/instr ≈ 0.5 with fused multiply-adds.
//
// Instruction counts target the paper's kernel scale (dgemm at n = 512:
// 2n³ = 268 Mflop → ~537 M instructions at 0.5 flops/instr; level-1/2
// kernels are repeated to run long enough to schedule meaningfully).
func blasKernels() []blasKernel {
	const (
		l1Elems  = 78643 // 0.6 MB of float64
		l1Sweeps = 200
		l2N      = 1100 // streamed matrix ~9.7 MB, vector 8.8 KB…0.6 MB panel
		l2Sweeps = 24
		l3N      = 512
	)
	l1Instr := 6.0 * l1Elems * l1Sweeps
	l2Instr := 5.0 * l2N * l2N * l2Sweeps
	mk3 := func(name string, wssMB float64) blasKernel {
		return blasKernel{
			name: name, level: 3, wss: pp.MB(wssMB), reuse: pp.ReuseHigh,
			instr:         2 * blas.Level3Flops("dgemm", l3N), // ~0.5 flops/instr
			flopsPerInstr: 0.5, accessesPerInstr: 0.3, privateHitFrac: 0.85, streamFrac: 0.05,
		}
	}
	return []blasKernel{
		{name: "daxpy", level: 1, wss: pp.MB(0.6), reuse: pp.ReuseLow, instr: l1Instr,
			flopsPerInstr: 0.33, accessesPerInstr: 0.5, privateHitFrac: 0.875, streamFrac: 1.0},
		{name: "dcopy", level: 1, wss: pp.MB(0.6), reuse: pp.ReuseLow, instr: l1Instr,
			flopsPerInstr: 0, accessesPerInstr: 0.55, privateHitFrac: 0.875, streamFrac: 1.0},
		{name: "dscal", level: 1, wss: pp.MB(0.6), reuse: pp.ReuseLow, instr: l1Instr,
			flopsPerInstr: 0.2, accessesPerInstr: 0.45, privateHitFrac: 0.875, streamFrac: 1.0},
		{name: "dswap", level: 1, wss: pp.MB(0.6), reuse: pp.ReuseLow, instr: l1Instr,
			flopsPerInstr: 0, accessesPerInstr: 0.6, privateHitFrac: 0.875, streamFrac: 1.0},

		{name: "dgemvN", level: 2, wss: pp.MB(0.6), reuse: pp.ReuseMed, instr: l2Instr,
			flopsPerInstr: 0.4, accessesPerInstr: 0.4, privateHitFrac: 0.8, streamFrac: 0.85},
		{name: "dgemvT", level: 2, wss: pp.MB(0.6), reuse: pp.ReuseMed, instr: l2Instr,
			flopsPerInstr: 0.4, accessesPerInstr: 0.42, privateHitFrac: 0.8, streamFrac: 0.85},
		{name: "dtrmv", level: 2, wss: pp.MB(0.6), reuse: pp.ReuseMed, instr: l2Instr / 2,
			flopsPerInstr: 0.4, accessesPerInstr: 0.4, privateHitFrac: 0.8, streamFrac: 0.85},
		{name: "dtrsv", level: 2, wss: pp.MB(0.6), reuse: pp.ReuseMed, instr: l2Instr / 2,
			flopsPerInstr: 0.35, accessesPerInstr: 0.4, privateHitFrac: 0.8, streamFrac: 0.85},

		mk3("dgemm", 1.6),
		func() blasKernel { k := mk3("dsyrk", 2.4); k.instr = 2 * blas.Level3Flops("dsyrk", l3N); return k }(),
		func() blasKernel { k := mk3("dtrmm(ru)", 2.4); k.instr = 2 * blas.Level3Flops("dtrmm", l3N); return k }(),
		func() blasKernel { k := mk3("dtrsm(ru)", 3.2); k.instr = 2 * blas.Level3Flops("dtrsm", l3N); return k }(),
	}
}

// kernelSpec converts one kernel into a single-threaded process with one
// declared progress period, bracketed by tiny undeclared setup/teardown
// phases (initializeMatrices / displayResult in the paper's Figure 4).
func kernelSpec(k blasKernel) proc.Spec {
	setup := proc.Phase{
		Name: k.name + "-init", Instr: k.instr * 0.01, WSS: k.wss, Reuse: pp.ReuseLow,
		AccessesPerInstr: 0.4, PrivateHitFrac: 0.9, StreamFrac: 1.0, FlopsPerInstr: 0,
	}
	kernel := proc.Phase{
		Name: k.name, Instr: k.instr, WSS: k.wss, Reuse: k.reuse,
		AccessesPerInstr: k.accessesPerInstr, PrivateHitFrac: k.privateHitFrac,
		StreamFrac: k.streamFrac, FlopsPerInstr: k.flopsPerInstr,
		Declared: true,
	}
	teardown := proc.Phase{
		Name: k.name + "-fini", Instr: k.instr * 0.005, WSS: pp.KB(64), Reuse: pp.ReuseLow,
		AccessesPerInstr: 0.2, PrivateHitFrac: 0.95, StreamFrac: 1.0, FlopsPerInstr: 0,
	}
	return proc.Spec{Name: k.name, Threads: 1, Program: proc.Program{setup, kernel, teardown}}
}

// blasGroup builds one of the three BLAS workloads: Table2ProcCount
// processes split evenly over the group's four kernels.
func blasGroup(level int, name string) proc.Workload {
	var kernels []blasKernel
	for _, k := range blasKernels() {
		if k.level == level {
			kernels = append(kernels, k)
		}
	}
	perKernel := Table2ProcCount / len(kernels)
	w := proc.Workload{Name: name}
	for _, k := range kernels {
		w.Procs = append(w.Procs, proc.Replicate(kernelSpec(k), perKernel)...)
	}
	return w
}

// BLAS1 is the level-1 workload: 96 single-threaded processes running
// daxpy, dcopy, dscal, dswap (24 each); 0.6 MB working sets, low reuse.
func BLAS1() proc.Workload { return blasGroup(1, "BLAS-1") }

// BLAS2 is the level-2 workload: dgemvN, dgemvT, dtrmv, dtrsv; 0.6 MB
// working sets, medium reuse.
func BLAS2() proc.Workload { return blasGroup(2, "BLAS-2") }

// BLAS3 is the level-3 workload: dgemm, dsyrk, dtrmm(ru), dtrsm(ru);
// 1.6–3.2 MB working sets, high reuse.
func BLAS3() proc.Workload { return blasGroup(3, "BLAS-3") }

// DgemmGranularity builds the Figure 11 experiment: a single dgemm
// process whose computation is split into the given number of
// equal-sized progress periods (1 = outermost loop, 512 = middle loop,
// 512² = innermost loop), or zero periods (no progress tracking at all).
func DgemmGranularity(periods int) (proc.Workload, error) {
	var k blasKernel
	for _, c := range blasKernels() {
		if c.name == "dgemm" {
			k = c
		}
	}
	if periods < 0 {
		return proc.Workload{}, fmt.Errorf("workloads: negative period count %d", periods)
	}
	var prog proc.Program
	if periods == 0 {
		ph := kernelSpec(k).Program[1]
		ph.Declared = false
		prog = proc.Program{ph}
	} else {
		per := k.instr / float64(periods)
		ph := proc.Phase{
			Name: "dgemm-slice", Instr: per, WSS: k.wss, Reuse: k.reuse,
			AccessesPerInstr: k.accessesPerInstr, PrivateHitFrac: k.privateHitFrac,
			StreamFrac: k.streamFrac, FlopsPerInstr: k.flopsPerInstr, Declared: true,
		}
		prog = make(proc.Program, periods)
		for i := range prog {
			prog[i] = ph
			prog[i].Name = fmt.Sprintf("dgemm-slice-%d", i)
		}
	}
	return proc.Workload{
		Name:  fmt.Sprintf("dgemm-granularity-%d", periods),
		Procs: []proc.Spec{{Name: "dgemm", Threads: 1, Program: prog}},
	}, nil
}
