package workloads

import (
	"math"
	"strings"
	"testing"

	"rdasched/internal/pp"
	"rdasched/internal/proc"
)

func TestTable2Inventory(t *testing.T) {
	ws := Table2()
	if len(ws) != 8 {
		t.Fatalf("Table2 has %d workloads, want 8", len(ws))
	}
	wantNames := []string{"BLAS-1", "BLAS-2", "BLAS-3", "water_sp", "water_nsq", "ocean_cp", "raytrace", "volrend"}
	for i, w := range ws {
		if w.Name != wantNames[i] {
			t.Errorf("workload %d = %q, want %q", i, w.Name, wantNames[i])
		}
		if err := w.Validate(); err != nil {
			t.Errorf("workload %q invalid: %v", w.Name, err)
		}
	}
}

func TestTable2Shapes(t *testing.T) {
	// Process/thread counts straight from Table 2.
	shapes := map[string]struct{ procs, threads int }{
		"BLAS-1":    {96, 1},
		"BLAS-2":    {96, 1},
		"BLAS-3":    {96, 1},
		"water_sp":  {12, 2},
		"water_nsq": {12, 2},
		"ocean_cp":  {48, 2},
		"raytrace":  {48, 4},
		"volrend":   {48, 4},
	}
	for _, w := range Table2() {
		want := shapes[w.Name]
		if len(w.Procs) != want.procs {
			t.Errorf("%s: %d procs, want %d", w.Name, len(w.Procs), want.procs)
		}
		for _, s := range w.Procs {
			if s.Threads != want.threads {
				t.Errorf("%s: %d threads/proc, want %d", w.Name, s.Threads, want.threads)
			}
		}
	}
}

func TestBLASWorkingSetSizes(t *testing.T) {
	// Table 2: BLAS-3 working sets are 1.6, 2.4, 2.4, 3.2 MB; level 1/2
	// all 0.6 MB. Every declared phase's WSS must match and fit the LLC.
	llc := pp.Bytes(15360 * pp.KiB)
	checkWSS := func(w proc.Workload, wants []pp.Bytes) {
		seen := map[pp.Bytes]bool{}
		for _, s := range w.Procs {
			for _, ph := range s.Program {
				if !ph.Declared {
					continue
				}
				seen[ph.WSS] = true
				if ph.WSS > llc {
					t.Errorf("%s/%s working set %v exceeds LLC", w.Name, ph.Name, ph.WSS)
				}
			}
		}
		for _, want := range wants {
			if !seen[want] {
				t.Errorf("%s missing declared working set %v (saw %v)", w.Name, want, seen)
			}
		}
	}
	checkWSS(BLAS1(), []pp.Bytes{pp.MB(0.6)})
	checkWSS(BLAS2(), []pp.Bytes{pp.MB(0.6)})
	checkWSS(BLAS3(), []pp.Bytes{pp.MB(1.6), pp.MB(2.4), pp.MB(3.2)})
}

func TestBLASReuseLevels(t *testing.T) {
	reuseOf := func(w proc.Workload) pp.Reuse {
		for _, s := range w.Procs {
			for _, ph := range s.Program {
				if ph.Declared {
					return ph.Reuse
				}
			}
		}
		t.Fatalf("%s has no declared phase", w.Name)
		return 0
	}
	if reuseOf(BLAS1()) != pp.ReuseLow {
		t.Error("BLAS-1 reuse should be low")
	}
	if reuseOf(BLAS2()) != pp.ReuseMed {
		t.Error("BLAS-2 reuse should be med")
	}
	if reuseOf(BLAS3()) != pp.ReuseHigh {
		t.Error("BLAS-3 reuse should be high")
	}
}

func TestSplashPeriodCounts(t *testing.T) {
	counts := map[string]int{
		"water_sp": 4, "water_nsq": 3, "ocean_cp": 4, "raytrace": 2, "volrend": 2,
	}
	for _, w := range Table2()[3:] {
		want := counts[w.Name]
		got := w.Procs[0].Program.DeclaredCount()
		if got != want {
			t.Errorf("%s: %d declared periods, want %d (Table 2)", w.Name, got, want)
		}
	}
}

func TestSplashBarriersOutsidePeriods(t *testing.T) {
	// §3.4: no blocking synchronization inside progress periods — barriers
	// must only sit on undeclared phases.
	for _, w := range Table2()[3:] {
		for _, ph := range w.Procs[0].Program {
			if ph.Declared && ph.BarrierAfter {
				t.Errorf("%s/%s: barrier inside a declared period", w.Name, ph.Name)
			}
		}
	}
}

func TestTaskPoolFlags(t *testing.T) {
	for _, w := range Table2() {
		want := w.Name == "raytrace" || w.Name == "volrend"
		if got := w.Procs[0].TaskPool; got != want {
			t.Errorf("%s: TaskPool = %v, want %v", w.Name, got, want)
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("water_nsq")
	if err != nil || w.Name != "water_nsq" {
		t.Fatalf("ByName: %v, %v", w.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	} else if !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("unhelpful error: %v", err)
	}
	if len(Names()) != 8 {
		t.Fatal("Names() wrong length")
	}
}

func TestDgemmGranularity(t *testing.T) {
	for _, n := range []int{0, 1, 512} {
		w, err := DgemmGranularity(n)
		if err != nil {
			t.Fatalf("DgemmGranularity(%d): %v", n, err)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("granularity %d invalid: %v", n, err)
		}
		prog := w.Procs[0].Program
		declared := prog.DeclaredCount()
		wantDeclared := n
		if got := declared; got != wantDeclared {
			t.Fatalf("granularity %d: %d declared phases", n, got)
		}
		// Total kernel instructions constant across granularities.
		if n > 0 {
			w1, _ := DgemmGranularity(1)
			if math.Abs(prog.TotalInstr()-w1.Procs[0].Program.TotalInstr())/w1.Procs[0].Program.TotalInstr() > 1e-9 {
				t.Fatalf("granularity %d changed total work", n)
			}
		}
	}
	if _, err := DgemmGranularity(-1); err == nil {
		t.Fatal("negative granularity accepted")
	}
}

func TestWSSGrowthLogarithmic(t *testing.T) {
	// The WSS curves must be monotonically increasing but sublinear:
	// doubling the input must grow WSS by far less than 2x.
	for _, ppIdx := range []int{1, 2} {
		prev := pp.Bytes(0)
		for _, m := range WaterNsqInputs {
			w := WaterNsqPPWSS(ppIdx, m)
			if w <= prev {
				t.Fatalf("wnsq PP%d WSS not increasing at %d molecules", ppIdx, m)
			}
			prev = w
		}
		growth := float64(WaterNsqPPWSS(ppIdx, 64000)) / float64(WaterNsqPPWSS(ppIdx, 8000))
		if growth >= 4.5 {
			t.Fatalf("wnsq PP%d grows %vx over an 8x input — not sublinear", ppIdx, growth)
		}
		prev = 0
		for _, c := range OceanInputs {
			w := OceanPPWSS(ppIdx, c)
			if w <= prev {
				t.Fatalf("ocean PP%d WSS not increasing at %d cells", ppIdx, c)
			}
			prev = w
		}
	}
}

func TestWSSMatchesTable2Scale(t *testing.T) {
	// Ocean PP1 at the default 514-cell input should be near Table 2's
	// 2.1 MB entry.
	got := OceanPPWSS(1, 514).MiBf()
	if got < 1.8 || got > 2.6 {
		t.Fatalf("ocean PP1 at 1x = %.2f MB, want ~2.1", got)
	}
	got = OceanPPWSS(2, 514).MiBf()
	if got < 0.6 || got > 1.0 {
		t.Fatalf("ocean PP2 at 1x = %.2f MB, want ~0.76", got)
	}
}

func TestFig13Premise(t *testing.T) {
	// At 8000 molecules: 6 instances fit the 15 MB LLC, 12 do not.
	llc := pp.Bytes(15360 * pp.KiB)
	w := WaterNsqPPWSS(1, 8000)
	if 6*w > llc {
		t.Fatalf("6 × PP1(8000) = %v exceeds LLC — Figure 13 premise broken", 6*w)
	}
	if 12*w <= llc {
		t.Fatalf("12 × PP1(8000) = %v fits LLC — Figure 13 premise broken", 12*w)
	}
	// At 32768 molecules even 6 oversubscribe.
	w = WaterNsqPPWSS(1, 32768)
	if 6*w <= llc {
		t.Fatalf("6 × PP1(32768) = %v fits LLC — expected memory-bound regime", 6*w)
	}
}

func TestWaterNsqLargestPP(t *testing.T) {
	w, err := WaterNsqLargestPP(8000, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.Procs) != 6 {
		t.Fatalf("instances = %d", len(w.Procs))
	}
	// Work scales quadratically with molecules.
	w2, _ := WaterNsqLargestPP(16000, 6)
	r := w2.Procs[0].Program.TotalInstr() / w.Procs[0].Program.TotalInstr()
	if math.Abs(r-4) > 1e-9 {
		t.Fatalf("instruction scaling = %v, want 4 (quadratic)", r)
	}
	if _, err := WaterNsqLargestPP(0, 1); err == nil {
		t.Fatal("zero molecules accepted")
	}
	if _, err := WaterNsqLargestPP(100, 0); err == nil {
		t.Fatal("zero instances accepted")
	}
}

func TestWSSPanicsOnBadIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	WaterNsqPPWSS(3, 8000)
}

func TestBLASGroupKernelSplit(t *testing.T) {
	w := BLAS1()
	kinds := map[string]int{}
	for _, s := range w.Procs {
		// Names look like "daxpy-17".
		base := s.Name[:strings.LastIndex(s.Name, "-")]
		kinds[base]++
	}
	if len(kinds) != 4 {
		t.Fatalf("BLAS-1 has %d kernel kinds, want 4 (%v)", len(kinds), kinds)
	}
	for k, n := range kinds {
		if n != 24 {
			t.Fatalf("kernel %s has %d instances, want 24", k, n)
		}
	}
}

func TestStreamingMixShape(t *testing.T) {
	for _, partition := range []pp.Bytes{0, pp.MB(0.5)} {
		w := StreamingMix(partition)
		if err := w.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(w.Procs) != 22 {
			t.Fatalf("procs = %d, want 6 streamers + 16 dgemms", len(w.Procs))
		}
		streamers := 0
		for _, s := range w.Procs {
			ph := s.Program[0]
			if ph.WSS == pp.MB(24) {
				streamers++
				if ph.CachePartition != partition {
					t.Fatalf("streamer partition = %v, want %v", ph.CachePartition, partition)
				}
				if !ph.Declared {
					t.Fatal("streamer phase not declared")
				}
			}
		}
		if streamers != 6 {
			t.Fatalf("streamers = %d", streamers)
		}
	}
}

func TestUnmanagedMixShape(t *testing.T) {
	w := UnmanagedMix()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	hogs, managed := 0, 0
	for _, s := range w.Procs {
		if s.Program.DeclaredCount() == 0 {
			hogs++
		} else {
			managed++
		}
	}
	if hogs != 2 || managed != 24 {
		t.Fatalf("hogs=%d managed=%d, want 2/24", hogs, managed)
	}
}
