package workloads

import (
	"rdasched/internal/pp"
	"rdasched/internal/proc"
)

// Workloads for the paper's §6 future-work extensions, evaluated in
// internal/experiments (extension experiments E1 and E2).

// StreamingMix builds E1's scenario: six streaming processes whose
// working sets exceed the LLC (24 MB each — "e.g., streaming
// applications") co-scheduled with sixteen blocked dgemm processes
// (2.4 MB, high reuse). partition, when positive, fences each streamer
// into a cache partition of that size; zero reproduces the unpartitioned
// baseline, where a 24 MB demand can only ever be admitted by the
// empty-load safeguard and then starves every other period.
func StreamingMix(partition pp.Bytes) proc.Workload {
	stream := proc.Spec{
		Name:    "streamer",
		Threads: 1,
		Program: proc.Program{{
			Name: "stream", Instr: 2e8, WSS: pp.MB(24), Reuse: pp.ReuseLow,
			AccessesPerInstr: 0.4, PrivateHitFrac: 0.875, StreamFrac: 1.0,
			FlopsPerInstr: 0.2, Declared: true, CachePartition: partition,
		}},
	}
	dgemm := proc.Spec{
		Name:    "dgemm",
		Threads: 1,
		Program: proc.Program{{
			Name: "dgemm", Instr: 2e8, WSS: pp.MB(2.4), Reuse: pp.ReuseHigh,
			AccessesPerInstr: 0.3, PrivateHitFrac: 0.85, StreamFrac: 0.05,
			FlopsPerInstr: 0.5, Declared: true,
		}},
	}
	w := proc.Workload{Name: "streaming-mix"}
	w.Procs = append(w.Procs, proc.Replicate(stream, 6)...)
	w.Procs = append(w.Procs, proc.Replicate(dgemm, 16)...)
	return w
}

// UnmanagedMix builds E2's scenario: twenty-four instrumented dgemm
// processes alongside two LLC-intensive processes that declare no
// progress periods at all — the resource monitor never sees their
// footprint ("the resource monitor would be unaware of the behavior").
func UnmanagedMix() proc.Workload {
	dgemm := proc.Spec{
		Name:    "dgemm",
		Threads: 1,
		Program: proc.Program{{
			Name: "dgemm", Instr: 2e8, WSS: pp.MB(2.4), Reuse: pp.ReuseHigh,
			AccessesPerInstr: 0.3, PrivateHitFrac: 0.85, StreamFrac: 0.05,
			FlopsPerInstr: 0.5, Declared: true,
		}},
	}
	hog := proc.Spec{
		Name:    "hog",
		Threads: 1,
		Program: proc.Program{{
			// LLC-intensive but uninstrumented: Declared is false.
			Name: "hog", Instr: 6e8, WSS: pp.MB(7.5), Reuse: pp.ReuseHigh,
			AccessesPerInstr: 0.35, PrivateHitFrac: 0.8, StreamFrac: 0.2,
			FlopsPerInstr: 0.1,
		}},
	}
	w := proc.Workload{Name: "unmanaged-mix"}
	w.Procs = append(w.Procs, proc.Replicate(dgemm, 24)...)
	w.Procs = append(w.Procs, proc.Replicate(hog, 2)...)
	return w
}

// BandwidthMix builds E3's scenario: twenty-four pure-streaming processes
// (BLAS-1-like: no temporal reuse, heavy DRAM traffic). With declareBW,
// each period additionally declares its ~1.6 GB/s streaming rate as a
// ResourceMemBW demand, so the predicate stops admitting streamers once
// the DRAM roofline is spoken for — instead of burning core power on
// threads that can only wait for memory.
func BandwidthMix(declareBW bool) proc.Workload {
	// One streamer sustains ~1.49 GB/s alone (CPI ≈ 10.2 at h = 0 with
	// these parameters, times 0.125 LLC-reaching accesses per instruction
	// and 64-byte lines). Declaring the true rate lets admission fill the
	// 14 GB/s roofline with nine streamers instead of wasting cores.
	const perThreadBW = 1.49e9
	ph := proc.Phase{
		Name: "stream", Instr: 2e8, WSS: pp.MB(0.6), Reuse: pp.ReuseLow,
		AccessesPerInstr: 0.5, PrivateHitFrac: 0.75, StreamFrac: 1.0,
		FlopsPerInstr: 0.3, Declared: true,
	}
	if declareBW {
		ph.BWDemand = perThreadBW
	}
	spec := proc.Spec{Name: "streamer", Threads: 1, Program: proc.Program{ph}}
	name := "bandwidth-mix"
	if declareBW {
		name += "-declared"
	}
	return proc.Workload{Name: name, Procs: proc.Replicate(spec, 24)}
}
