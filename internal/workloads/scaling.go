package workloads

import (
	"fmt"
	"math"

	"rdasched/internal/pp"
	"rdasched/internal/proc"
)

// Input scaling (Figures 12 and 13).
//
// The paper profiles water_nsquared at 8000/15625/32768/64000 molecules
// and ocean_cp at 514/1026/2050/4098 cells, observing that working-set
// sizes grow "in the shape of a logarithmic curve" with input size. The
// true WSS functions below are c₁·ln(1 + c₂·input) plus a small
// square-root component (neighbour lists, boundary cells). Over the
// profiled input range c₂·input sits in the transition region of the
// log, where the curve is convex in ln(input) — so the paper's pure
// y = A + B·ln(x) regression systematically underpredicts the held-out
// fourth point, landing in the 80–95% accuracy band it reports rather
// than being exact.

// WaterNsqInputs are the four profiled molecule counts (1x, 2x, 4x, 8x).
var WaterNsqInputs = []int{8000, 15625, 32768, 64000}

// OceanInputs are the four profiled grid sizes (1x, 2x, 4x, 8x).
var OceanInputs = []int{514, 1026, 2050, 4098}

// WaterNsqPPWSS returns the true working-set size of water_nsquared's
// top-two progress periods (ppIdx 1 or 2) at a molecule count.
func WaterNsqPPWSS(ppIdx, molecules int) pp.Bytes {
	m := float64(molecules)
	var mb float64
	switch ppIdx {
	// Calibrated to the Figure 13 premises: PP1(8000) ≈ 2.5 MB (six
	// instances fit the 15 MB LLC at the 8000-molecule input, twelve do
	// not), PP1(3375) ≈ 1.25 MB (twelve instances still fit — the paper
	// sees 3375 "scale fairly well"), PP1(32768) ≈ 6 MB (even six
	// oversubscribe — memory-bound regime). Table 2 lists 3.6 MB for the
	// workload's aggregate periods; the figure's single-period set is
	// smaller — the paper's own §4.4 numbers imply PP1 ∈ (1.28, 2.56] MB.
	case 1:
		mb = 4.0*math.Log(1+0.0001*m) + 0.0015*math.Sqrt(m)
	case 2:
		mb = 3.6*math.Log(1+0.0001*m) + 0.0015*math.Sqrt(m)
	default:
		panic(fmt.Sprintf("workloads: water_nsq has top periods 1 and 2, not %d", ppIdx))
	}
	return pp.MB(mb)
}

// OceanPPWSS returns the true working-set size of ocean_cp's top-two
// progress periods at a grid size (cells per side).
func OceanPPWSS(ppIdx, cells int) pp.Bytes {
	c := float64(cells)
	var mb float64
	switch ppIdx {
	case 1:
		mb = 2.85*math.Log(1+0.002*c) + 0.004*math.Sqrt(c)
	case 2:
		mb = 1.0*math.Log(1+0.002*c) + 0.0022*math.Sqrt(c)
	default:
		panic(fmt.Sprintf("workloads: ocean_cp has top periods 1 and 2, not %d", ppIdx))
	}
	return pp.MB(mb)
}

// WaterNsqLargestPP builds the Figure 13 experiment: `instances`
// concurrent single-threaded processes each running only water_nsquared's
// longest progress period at the given molecule count. The paper runs
// this under the strict policy with 1, 6, and 12 instances and inputs
// 512, 3375, 8000, and 32768.
func WaterNsqLargestPP(molecules, instances int) (proc.Workload, error) {
	if molecules <= 0 || instances <= 0 {
		return proc.Workload{}, fmt.Errorf("workloads: invalid fig13 parameters (%d molecules, %d instances)", molecules, instances)
	}
	a, _ := splashByName("water_nsq")
	// Period length scales with the O(n²) interaction count, normalized
	// to the Table 2 period length at the default 8000-molecule input.
	scale := float64(molecules) * float64(molecules) / (8000.0 * 8000.0)
	ph := proc.Phase{
		Name:             fmt.Sprintf("wnsq-pp1-%dmol", molecules),
		Instr:            a.periodInstr * scale,
		WSS:              WaterNsqPPWSS(1, molecules),
		Reuse:            pp.ReuseHigh,
		AccessesPerInstr: a.accessesPerInstr, PrivateHitFrac: a.privateHitFrac,
		StreamFrac: a.streamFrac, FlopsPerInstr: a.flopsPerInstr,
		Declared: true,
	}
	spec := proc.Spec{Name: "wnsq-pp1", Threads: 1, Program: proc.Program{ph}}
	return proc.Workload{
		Name:  fmt.Sprintf("wnsq-pp1-%dx%d", molecules, instances),
		Procs: proc.Replicate(spec, instances),
	}, nil
}

// Fig13Inputs are the molecule counts of Figure 13.
var Fig13Inputs = []int{512, 3375, 8000, 32768}

// Fig13Instances are the concurrency levels of Figure 13.
var Fig13Instances = []int{1, 6, 12}
