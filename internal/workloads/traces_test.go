package workloads

import (
	"math"
	"testing"

	"rdasched/internal/pp"
	"rdasched/internal/profiler"
)

// profileApp runs the Fig 12 pipeline on one trace and returns the
// periods sorted as produced (PP1 then PP2).
func profileApp(t *testing.T, app string, input int) []profiler.Period {
	t.Helper()
	var periods []profiler.Period
	var err error
	switch app {
	case "wnsq":
		s, bin := WaterNsqTrace(input, 42)
		periods, err = profiler.Profile(s, Fig12ProfilerConfig(), bin)
	case "ocean":
		s, bin := OceanTrace(input, 42)
		periods, err = profiler.Profile(s, Fig12ProfilerConfig(), bin)
	default:
		t.Fatalf("unknown app %q", app)
	}
	if err != nil {
		t.Fatal(err)
	}
	return periods
}

// topTwo filters the detected periods down to the two largest by WSS,
// preserving order.
func topTwo(periods []profiler.Period) []profiler.Period {
	var out []profiler.Period
	for _, p := range periods {
		if p.WSS >= pp.MB(0.3) {
			out = append(out, p)
		}
	}
	return out
}

func TestWaterNsqTraceProfilesToTwoPeriods(t *testing.T) {
	periods := topTwo(profileApp(t, "wnsq", 8000))
	if len(periods) != 2 {
		t.Fatalf("top periods = %d, want 2", len(periods))
	}
	for i, p := range periods {
		want := WaterNsqPPWSS(i+1, 8000)
		acc := 1 - math.Abs(float64(p.WSS-want))/float64(want)
		if acc < 0.85 {
			t.Errorf("PP%d measured WSS %v vs true %v (accuracy %.2f)", i+1, p.WSS, want, acc)
		}
		if p.Reuse != pp.ReuseHigh {
			t.Errorf("PP%d reuse = %v (ratio %.1f), want high", i+1, p.Reuse, p.ReuseRatio)
		}
	}
}

func TestWaterNsqLoopAttribution(t *testing.T) {
	bin, err := NewWaterNsqBinary()
	if err != nil {
		t.Fatal(err)
	}
	periods := topTwo(profileApp(t, "wnsq", 8000))
	if len(periods) != 2 {
		t.Fatalf("periods = %d", len(periods))
	}
	if got := bin.Name(periods[0].LoopID); got != "interf" {
		t.Errorf("PP1 attributed to %q, want interf (outermost loop)", got)
	}
	if got := bin.Name(periods[1].LoopID); got != "poteng" {
		t.Errorf("PP2 attributed to %q, want poteng", got)
	}
}

func TestOceanTraceReuseLevels(t *testing.T) {
	periods := topTwo(profileApp(t, "ocean", 514))
	if len(periods) != 2 {
		t.Fatalf("top periods = %d, want 2", len(periods))
	}
	if periods[0].Reuse != pp.ReuseHigh {
		t.Errorf("ocean PP1 reuse = %v (ratio %.1f), want high", periods[0].Reuse, periods[0].ReuseRatio)
	}
	if periods[1].Reuse != pp.ReuseMed {
		t.Errorf("ocean PP2 reuse = %v (ratio %.1f), want med", periods[1].Reuse, periods[1].ReuseRatio)
	}
}

func TestMeasuredWSSGrowsWithInput(t *testing.T) {
	var prev pp.Bytes
	for _, m := range []int{8000, 32768} {
		periods := topTwo(profileApp(t, "wnsq", m))
		if len(periods) != 2 {
			t.Fatalf("periods at %d molecules = %d", m, len(periods))
		}
		if periods[0].WSS <= prev {
			t.Fatalf("PP1 WSS did not grow with input: %v after %v", periods[0].WSS, prev)
		}
		prev = periods[0].WSS
	}
}

func TestOceanMeasurementAccuracy(t *testing.T) {
	for _, c := range []int{514, 2050} {
		periods := topTwo(profileApp(t, "ocean", c))
		if len(periods) != 2 {
			t.Fatalf("periods at %d cells = %d", c, len(periods))
		}
		for i, p := range periods {
			want := OceanPPWSS(i+1, c)
			acc := 1 - math.Abs(float64(p.WSS-want))/float64(want)
			if acc < 0.8 {
				t.Errorf("cells=%d PP%d measured %v vs true %v (accuracy %.2f)",
					c, i+1, p.WSS, want, acc)
			}
		}
	}
}
