package workloads

import (
	"fmt"

	"rdasched/internal/proc"
)

// Table2 returns the eight workloads in the paper's Table 2 order.
func Table2() []proc.Workload {
	return []proc.Workload{
		BLAS1(), BLAS2(), BLAS3(),
		WaterSp(), WaterNsq(), OceanCp(), Raytrace(), Volrend(),
	}
}

// Names returns the Table 2 workload names in order.
func Names() []string {
	ws := Table2()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}

// ByName looks a workload up by its Table 2 name.
func ByName(name string) (proc.Workload, error) {
	for _, w := range Table2() {
		if w.Name == name {
			return w, nil
		}
	}
	return proc.Workload{}, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
}
