package energy

import (
	"math"
	"testing"
	"testing/quick"

	"rdasched/internal/sim"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestValidateRejectsNegative(t *testing.T) {
	m := Default()
	m.DRAMAccessJoules = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative constant accepted")
	}
}

func TestNewMeterPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid model")
		}
	}()
	m := Default()
	m.StaticPkgWatts = -5
	NewMeter(m)
}

func TestTimeIntegration(t *testing.T) {
	m := Model{StaticPkgWatts: 10, ActiveCoreWatts: 2, DRAMBackgroundWatts: 4}
	mt := NewMeter(m)
	mt.AdvanceTime(2*sim.Second, 3) // 2s with 3 busy cores
	wantPkg := (10.0 + 2.0*3) * 2
	if math.Abs(mt.PackageJoules()-wantPkg) > 1e-9 {
		t.Fatalf("pkg = %v, want %v", mt.PackageJoules(), wantPkg)
	}
	if math.Abs(mt.DRAMJoules()-8) > 1e-9 {
		t.Fatalf("dram = %v, want 8", mt.DRAMJoules())
	}
	if mt.Elapsed() != 2*sim.Second {
		t.Fatalf("elapsed = %v", mt.Elapsed())
	}
	if got := mt.AvgBusyCores(); math.Abs(got-3) > 1e-9 {
		t.Fatalf("avg busy cores = %v, want 3", got)
	}
}

func TestEventCounting(t *testing.T) {
	mt := NewMeter(Model{LLCAccessJoules: 2e-9, DRAMAccessJoules: 10e-9})
	mt.CountLLC(1e6)
	mt.CountDRAM(1e5)
	if math.Abs(mt.PackageJoules()-2e-3) > 1e-12 {
		t.Fatalf("pkg = %v, want 2e-3", mt.PackageJoules())
	}
	if math.Abs(mt.DRAMJoules()-1e-3) > 1e-12 {
		t.Fatalf("dram = %v, want 1e-3", mt.DRAMJoules())
	}
	if mt.LLCAccesses() != 1e6 || mt.DRAMAccesses() != 1e5 {
		t.Fatal("access counters wrong")
	}
}

func TestSystemIsSumOfDomains(t *testing.T) {
	f := func(llc, dram uint32, ms uint16, cores uint8) bool {
		mt := NewMeter(Default())
		mt.AdvanceTime(sim.Duration(ms)*sim.Millisecond, float64(cores%13))
		mt.CountLLC(uint64(llc))
		mt.CountDRAM(uint64(dram))
		return math.Abs(mt.SystemJoules()-(mt.PackageJoules()+mt.DRAMJoules())) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyMonotone(t *testing.T) {
	// Property: energy never decreases as time/events accumulate.
	mt := NewMeter(Default())
	prev := 0.0
	for i := 0; i < 100; i++ {
		mt.AdvanceTime(sim.Millisecond, float64(i%12))
		mt.CountLLC(uint64(i * 100))
		mt.CountDRAM(uint64(i * 10))
		if mt.SystemJoules() < prev {
			t.Fatal("energy decreased")
		}
		prev = mt.SystemJoules()
	}
}

func TestAvgWatts(t *testing.T) {
	mt := NewMeter(Model{StaticPkgWatts: 50, DRAMBackgroundWatts: 10})
	if mt.AvgSystemWatts() != 0 {
		t.Fatal("avg watts nonzero before any time")
	}
	mt.AdvanceTime(4*sim.Second, 0)
	if math.Abs(mt.AvgSystemWatts()-60) > 1e-9 {
		t.Fatalf("avg = %v, want 60", mt.AvgSystemWatts())
	}
}

func TestNegativeIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative interval")
		}
	}()
	NewMeter(Default()).AdvanceTime(-1, 1)
}

func TestNegativeBusyCoresClamped(t *testing.T) {
	mt := NewMeter(Model{StaticPkgWatts: 10, ActiveCoreWatts: 100})
	mt.AdvanceTime(sim.Second, -5)
	if math.Abs(mt.PackageJoules()-10) > 1e-9 {
		t.Fatalf("pkg = %v, want 10 (busy cores clamped to 0)", mt.PackageJoules())
	}
}

func TestMeterString(t *testing.T) {
	mt := NewMeter(Default())
	mt.AdvanceTime(sim.Second, 6)
	if mt.String() == "" {
		t.Fatal("empty string")
	}
}

func TestDRAMDominanceUnderThrashing(t *testing.T) {
	// Sanity link to the paper's mechanism: for a fixed runtime, a run
	// with 10x the DRAM accesses must show strictly more DRAM energy.
	calm := NewMeter(Default())
	thrash := NewMeter(Default())
	calm.AdvanceTime(sim.Second, 12)
	thrash.AdvanceTime(sim.Second, 12)
	calm.CountDRAM(1e7)
	thrash.CountDRAM(1e8)
	if thrash.DRAMJoules() <= calm.DRAMJoules() {
		t.Fatal("more DRAM traffic did not cost more DRAM energy")
	}
}
