// Package energy models system power and accumulates energy the way
// Intel's RAPL (Running Average Power Limit) interface meters it: as two
// domains, package (cores + caches) and DRAM. The paper reads RAPL via
// perf; we integrate the same physical terms over simulated time:
//
//	package = static power + per-active-core dynamic power
//	          + per-LLC-access energy
//	DRAM    = background power + per-DRAM-access energy
//
// "System" energy in the paper's Figure 7 is package + DRAM; Figure 8 is
// the DRAM domain alone. Constants are calibrated to an E5-2420-class
// part (95 W TDP Sandy Bridge-EN with DDR3) — absolute Joules are
// model-dependent, but the *relative* effects the paper measures (fewer
// DRAM accesses and shorter runtimes → less energy) follow directly from
// this structure.
package energy

import (
	"fmt"

	"rdasched/internal/sim"
)

// Model holds the power/energy constants.
type Model struct {
	// StaticPkgWatts is package power drawn regardless of activity
	// (uncore, clocks, leakage).
	StaticPkgWatts float64
	// ActiveCoreWatts is the additional power of one busy core.
	ActiveCoreWatts float64
	// LLCAccessJoules is the energy of one LLC lookup (hit or miss).
	LLCAccessJoules float64
	// DRAMAccessJoules is the energy of one 64-byte DRAM transfer.
	DRAMAccessJoules float64
	// DRAMBackgroundWatts is refresh/standby power of the DIMMs.
	DRAMBackgroundWatts float64
}

// Default returns constants for the Table 1 machine. Sources for the
// orders of magnitude: Sandy Bridge EP uncore ≈ 25–30 W; one active core
// ≈ 4–6 W at 1.9 GHz; LLC access ≈ 1–2 nJ; a 64 B DDR3 transfer ≈ 15–25
// nJ end to end; 4 DDR3 DIMMs ≈ 8 W background.
func Default() Model {
	return Model{
		StaticPkgWatts:      28.0,
		ActiveCoreWatts:     4.5,
		LLCAccessJoules:     1.5e-9,
		DRAMAccessJoules:    20e-9,
		DRAMBackgroundWatts: 8.0,
	}
}

// Validate rejects non-physical constants.
func (m Model) Validate() error {
	for name, v := range map[string]float64{
		"StaticPkgWatts":      m.StaticPkgWatts,
		"ActiveCoreWatts":     m.ActiveCoreWatts,
		"LLCAccessJoules":     m.LLCAccessJoules,
		"DRAMAccessJoules":    m.DRAMAccessJoules,
		"DRAMBackgroundWatts": m.DRAMBackgroundWatts,
	} {
		if v < 0 {
			return fmt.Errorf("energy: negative %s (%v)", name, v)
		}
	}
	return nil
}

// Meter accumulates Joules over a run, RAPL style. Time-proportional terms
// are integrated by AdvanceTime (with the number of busy cores during the
// interval); event-proportional terms are added by CountLLC/CountDRAM.
type Meter struct {
	model Model

	pkgJoules  float64
	dramJoules float64

	llcAccesses  uint64
	dramAccesses uint64
	busyCoreSecs float64 // ∫ busy-cores dt, for reporting average power
	elapsed      sim.Duration
}

// NewMeter returns a meter over the given model; it panics on invalid
// constants (construction-time programming error).
func NewMeter(m Model) *Meter {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return &Meter{model: m}
}

// Model returns the meter's constants.
func (mt *Meter) Model() Model { return mt.model }

// AdvanceTime integrates the time-proportional power terms over an
// interval during which busyCores cores were executing (may be fractional
// under processor sharing).
func (mt *Meter) AdvanceTime(d sim.Duration, busyCores float64) {
	if d < 0 {
		panic("energy: negative interval")
	}
	if busyCores < 0 {
		busyCores = 0
	}
	secs := d.Seconds()
	mt.pkgJoules += (mt.model.StaticPkgWatts + mt.model.ActiveCoreWatts*busyCores) * secs
	mt.dramJoules += mt.model.DRAMBackgroundWatts * secs
	mt.busyCoreSecs += busyCores * secs
	mt.elapsed += d
}

// CountLLC adds n LLC accesses.
func (mt *Meter) CountLLC(n uint64) {
	mt.llcAccesses += n
	mt.pkgJoules += float64(n) * mt.model.LLCAccessJoules
}

// CountDRAM adds n DRAM accesses (LLC misses).
func (mt *Meter) CountDRAM(n uint64) {
	mt.dramAccesses += n
	mt.dramJoules += float64(n) * mt.model.DRAMAccessJoules
}

// PackageJoules returns energy in the package domain so far.
func (mt *Meter) PackageJoules() float64 { return mt.pkgJoules }

// DRAMJoules returns energy in the DRAM domain so far.
func (mt *Meter) DRAMJoules() float64 { return mt.dramJoules }

// SystemJoules returns package + DRAM (the paper's "CPU + cache + DRAM").
func (mt *Meter) SystemJoules() float64 { return mt.pkgJoules + mt.dramJoules }

// Elapsed returns the integrated wall time.
func (mt *Meter) Elapsed() sim.Duration { return mt.elapsed }

// LLCAccesses returns the counted LLC accesses.
func (mt *Meter) LLCAccesses() uint64 { return mt.llcAccesses }

// DRAMAccesses returns the counted DRAM accesses.
func (mt *Meter) DRAMAccesses() uint64 { return mt.dramAccesses }

// AvgSystemWatts returns mean system power over the elapsed interval
// (0 for an empty interval).
func (mt *Meter) AvgSystemWatts() float64 {
	secs := mt.elapsed.Seconds()
	if secs == 0 {
		return 0
	}
	return mt.SystemJoules() / secs
}

// AvgBusyCores returns the time-averaged number of busy cores.
func (mt *Meter) AvgBusyCores() float64 {
	secs := mt.elapsed.Seconds()
	if secs == 0 {
		return 0
	}
	return mt.busyCoreSecs / secs
}

func (mt *Meter) String() string {
	return fmt.Sprintf("pkg %.1fJ + dram %.1fJ = %.1fJ over %v (%.1f W avg)",
		mt.pkgJoules, mt.dramJoules, mt.SystemJoules(), mt.elapsed.Seconds(), mt.AvgSystemWatts())
}
