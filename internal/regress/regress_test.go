package regress

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 3 + 2x
	l, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.A-3) > 1e-9 || math.Abs(l.B-2) > 1e-9 {
		t.Fatalf("fit = %+v, want A=3 B=2", l)
	}
	if math.Abs(l.R2-1) > 1e-12 {
		t.Fatalf("R² = %v, want 1", l.R2)
	}
	if got := l.Predict(10); math.Abs(got-23) > 1e-9 {
		t.Fatalf("Predict(10) = %v", got)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("degenerate x accepted")
	}
}

func TestFitLogRecoversCoefficients(t *testing.T) {
	// Property: fitting y = a + b·ln(x) on exact data recovers (a, b).
	f := func(a8, b8 int8) bool {
		a := float64(a8) / 4
		b := float64(b8) / 4
		xs := []float64{1, 2, 5, 10, 100}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a + b*math.Log(x)
		}
		l, err := FitLog(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(l.A-a) < 1e-6 && math.Abs(l.B-b) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFitLogRejectsNonPositive(t *testing.T) {
	if _, err := FitLog([]float64{0, 1, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("x=0 accepted")
	}
	if _, err := FitLog([]float64{-1, 1, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("x<0 accepted")
	}
}

func TestLogString(t *testing.T) {
	l := Log{A: 1, B: 2, R2: 0.99}
	if l.String() == "" {
		t.Fatal("empty string")
	}
}

func TestAccuracy(t *testing.T) {
	cases := []struct {
		pred, actual, want float64
	}{
		{100, 100, 1},
		{92, 100, 0.92},
		{108, 100, 0.92},
		{0, 100, 0},
		{300, 100, 0}, // clamped
		{0, 0, 1},
		{5, 0, 0},
	}
	for _, c := range cases {
		if got := Accuracy(c.pred, c.actual); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Accuracy(%v, %v) = %v, want %v", c.pred, c.actual, got, c.want)
		}
	}
}

func TestAccuracyBounds(t *testing.T) {
	f := func(p, a float64) bool {
		if math.IsNaN(p) || math.IsNaN(a) || math.IsInf(p, 0) || math.IsInf(a, 0) {
			return true
		}
		acc := Accuracy(p, a)
		return acc >= 0 && acc <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("mean = %v", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty input not zero")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("geomean = %v, want 2", got)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Fatal("non-positive input not rejected")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty input not zero")
	}
}

func TestLogFitPredictsHeldOutPoint(t *testing.T) {
	// The Figure 12 procedure in miniature: fit on three points of a
	// log curve plus mild contamination, predict the fourth, and land in
	// the paper's 80–95% accuracy band.
	wss := func(m float64) float64 { return 0.75*math.Log(1+0.002*m) + 0.003*math.Sqrt(m) }
	xs := []float64{8000, 15625, 32768}
	ys := []float64{wss(8000), wss(15625), wss(32768)}
	fit, err := FitLog(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(fit.Predict(64000), wss(64000))
	if acc < 0.75 || acc > 0.99 {
		t.Fatalf("held-out accuracy %v outside the paper's band", acc)
	}
}
