// Package regress provides the small regression toolkit behind §4.4: the
// paper fits a logarithmic curve to the working-set sizes measured at the
// first three input scales and predicts the fourth, reporting 80–95%
// accuracy. Linear least squares is included both as the engine under the
// log fit (which is linear in ln x) and as a baseline comparator.
package regress

import (
	"fmt"
	"math"
)

// Linear holds y = A + B·x.
type Linear struct {
	A, B float64
	// R2 is the coefficient of determination on the fitted data.
	R2 float64
}

// FitLinear least-squares fits y = A + B·x. It needs at least two points
// with distinct x.
func FitLinear(xs, ys []float64) (Linear, error) {
	if len(xs) != len(ys) {
		return Linear{}, fmt.Errorf("regress: %d xs vs %d ys", len(xs), len(ys))
	}
	n := float64(len(xs))
	if n < 2 {
		return Linear{}, fmt.Errorf("regress: need ≥2 points, got %d", len(xs))
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Linear{}, fmt.Errorf("regress: degenerate x values")
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n

	// R².
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := a + b*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Linear{A: a, B: b, R2: r2}, nil
}

// Predict evaluates the line at x.
func (l Linear) Predict(x float64) float64 { return l.A + l.B*x }

// Log holds y = A + B·ln(x) — the paper's working-set growth model.
type Log struct {
	A, B float64
	R2   float64
}

// FitLog least-squares fits y = A + B·ln(x). All x must be positive.
func FitLog(xs, ys []float64) (Log, error) {
	lx := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return Log{}, fmt.Errorf("regress: log fit needs positive x, got %v", x)
		}
		lx[i] = math.Log(x)
	}
	lin, err := FitLinear(lx, ys)
	if err != nil {
		return Log{}, err
	}
	return Log{A: lin.A, B: lin.B, R2: lin.R2}, nil
}

// Predict evaluates the curve at x (> 0).
func (l Log) Predict(x float64) float64 { return l.A + l.B*math.Log(x) }

func (l Log) String() string {
	return fmt.Sprintf("y = %.4f + %.4f·ln(x) (R²=%.4f)", l.A, l.B, l.R2)
}

// Accuracy returns the paper's prediction-accuracy measure for a
// predicted vs actual value: 1 - |pred-actual|/actual, clamped to [0,1].
// ("For PP1 and PP2 in water_nsquared, the prediction accuracy is 92% and
// 80%.")
func Accuracy(predicted, actual float64) float64 {
	if actual == 0 {
		if predicted == 0 {
			return 1
		}
		return 0
	}
	acc := 1 - math.Abs(predicted-actual)/math.Abs(actual)
	if acc < 0 {
		return 0
	}
	return acc
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// GeoMean returns the geometric mean of positive values (0 if any value
// is non-positive or the input is empty) — used for the "average speedup"
// style summaries in EXPERIMENTS.md.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
