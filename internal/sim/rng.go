package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (xorshift128+). The standard library's math/rand would also work, but a
// local implementation pins the sequence across Go releases so recorded
// experiment outputs stay reproducible.
type RNG struct {
	s0, s1 uint64
}

// NewRNG seeds a generator. Seed 0 is remapped so the state is never
// all-zero (which would be a fixed point of xorshift).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	r := &RNG{}
	// SplitMix64 to spread the seed over both words.
	z := seed
	for i := 0; i < 2; i++ {
		z += 0x9e3779b97f4a7c15
		x := z
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
		if i == 0 {
			r.s0 = x
		} else {
			r.s1 = x
		}
	}
	return r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard-normal variate (Box–Muller; one value per
// call, the twin is discarded for simplicity).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork derives an independent generator; child streams do not overlap the
// parent's in practice because the derivation re-mixes through SplitMix64.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}
