package sim

import "container/heap"

// Event is a callback scheduled to fire at a virtual time. Events with the
// same time fire in the order they were scheduled (FIFO tie-break), which
// keeps runs deterministic regardless of heap internals.
type Event struct {
	at     Time
	seq    uint64
	index  int // heap index; -1 once removed
	fire   func()
	cancel bool
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancel }

// When returns the virtual time the event is scheduled for.
func (e *Event) When() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation driver: a clock plus a pending
// event queue. It is not safe for concurrent use; a simulation run is a
// single logical thread of control (determinism by construction).
type Engine struct {
	now    Time
	queue  eventHeap
	seq    uint64
	rng    *RNG
	fired  uint64
	halted bool
	hook   func(Time)
}

// NewEngine returns an engine at time zero with a deterministic RNG
// derived from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *RNG { return e.rng }

// Fired returns the number of events fired so far (useful in tests and as
// a progress/runaway indicator).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past (or at
// the present) fires at the current time, never rewinds the clock.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, fire: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancel || ev.index < 0 {
		if ev != nil {
			ev.cancel = true
		}
		return
	}
	ev.cancel = true
	heap.Remove(&e.queue, ev.index)
}

// SetStepHook installs fn, invoked after every fired event with the
// engine's current time (nil clears it). The hook is the bridge between
// the virtual clock and the wall clock: the live introspection layer
// uses it to pace event firing against real time, publish state
// snapshots, and request a halt from outside the simulation goroutine.
// The hook must not schedule, cancel, or fire events (Halt is the one
// sanctioned mutation); everything it observes is read-only.
func (e *Engine) SetStepHook(fn func(Time)) { e.hook = fn }

// Step fires the next pending event, advancing the clock to its time.
// It returns false when the queue is empty or the engine has been halted.
func (e *Engine) Step() bool {
	if e.halted || len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	e.fired++
	ev.fire()
	if e.hook != nil {
		e.hook(e.now)
	}
	return true
}

// Run fires events until the queue drains or Halt is called. It returns
// the final virtual time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with time ≤ deadline; events beyond the deadline
// stay queued and the clock is left at min(deadline, last fired event).
func (e *Engine) RunUntil(deadline Time) Time {
	for !e.halted && len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline && !e.halted {
		e.now = deadline
	}
	return e.now
}

// Halt stops Run/RunUntil after the current event returns.
func (e *Engine) Halt() { e.halted = true }

// Resume clears a Halt so Run/Step can continue draining the queue. The
// clock and pending events are untouched: a halted engine that is resumed
// behaves exactly as if Halt had never been called, which is what the
// crash-restart machinery relies on when it swaps a restored scheduler in
// under a live machine.
func (e *Engine) Resume() { e.halted = false }

// Halted reports whether Halt has been called.
func (e *Engine) Halted() bool { return e.halted }
