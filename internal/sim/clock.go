// Package sim provides the discrete-event simulation substrate used by the
// machine, scheduler, and workload models: a monotonic virtual clock, an
// event queue with stable ordering, and a deterministic random number
// generator. Everything in this repository that "takes time" is driven by
// one Engine instance, which makes whole-system runs reproducible from a
// single seed.
package sim

import "fmt"

// Time is a point in virtual time, measured in integer picoseconds.
// Picosecond granularity lets the machine model convert cycle counts at
// multi-GHz clock rates to times without accumulating rounding error:
// one cycle at 1.9 GHz is 526.3 ps, and the model tracks cycles as
// float64 before converting, so sub-picosecond drift is negligible over
// simulated hours.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration int64

// Common duration units.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time; used as "never".
const MaxTime = Time(1<<63 - 1)

// Seconds converts a duration to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Seconds converts an absolute time to floating-point seconds since t=0.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add returns the time offset by d. It saturates at MaxTime instead of
// wrapping, so that "never + anything" stays "never".
func (t Time) Add(d Duration) Time {
	if t > MaxTime-Time(d) {
		return MaxTime
	}
	return t + Time(d)
}

// DurationSince returns t - earlier.
func (t Time) DurationSince(earlier Time) Duration { return Duration(t - earlier) }

func (t Time) String() string {
	return fmt.Sprintf("%.9fs", t.Seconds())
}

// FromSeconds converts floating-point seconds to a Duration.
func FromSeconds(s float64) Duration { return Duration(s * float64(Second)) }
