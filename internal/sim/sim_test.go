package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestClockUnits(t *testing.T) {
	if Second != 1e12*Picosecond {
		t.Fatalf("Second = %d ps, want 1e12", int64(Second))
	}
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %d, want %d", got, 1500*Millisecond)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("Seconds() = %v, want 2", got)
	}
}

func TestTimeAddSaturates(t *testing.T) {
	if got := MaxTime.Add(Duration(5)); got != MaxTime {
		t.Fatalf("MaxTime.Add = %v, want MaxTime", got)
	}
	if got := Time(10).Add(Duration(5)); got != 15 {
		t.Fatalf("Add = %v, want 15", got)
	}
}

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %v, want 30", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-time events fired out of scheduling order: %v", order)
	}
}

func TestEngineAfterAndNesting(t *testing.T) {
	e := NewEngine(1)
	var hits []Time
	e.After(5, func() {
		hits = append(hits, e.Now())
		e.After(7, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 5 || hits[1] != 12 {
		t.Fatalf("hits = %v, want [5 12]", hits)
	}
}

func TestEnginePastSchedulingClamps(t *testing.T) {
	e := NewEngine(1)
	e.At(100, func() {
		e.At(50, func() {
			if e.Now() != 100 {
				t.Errorf("past event fired at %v, want clock held at 100", e.Now())
			}
		})
	})
	e.Run()
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double-cancel is a no-op
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event does not report cancelled")
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine(1)
	var got []int
	var evs []*Event
	for i := 0; i < 10; i++ {
		i := i
		evs = append(evs, e.At(Time(i*10), func() { got = append(got, i) }))
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.Run()
	for _, v := range got {
		if v == 4 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if len(got) != 8 {
		t.Fatalf("fired %d events, want 8", len(got))
	}
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 0; i < 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("fired %d events after halt, want 3", count)
	}
	if !e.Halted() {
		t.Fatal("engine does not report halted")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2 (≤ deadline)", len(fired))
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %v, want advanced to deadline 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

// Property: however events are scheduled, they fire in non-decreasing time
// order and the clock never rewinds.
func TestEventOrderProperty(t *testing.T) {
	f := func(times []uint16, seed uint64) bool {
		e := NewEngine(seed)
		var fired []Time
		for _, raw := range times {
			at := Time(raw)
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced diverging streams")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 identical draws", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntnUniformish(t *testing.T) {
	r := NewRNG(9)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		// Expected 10000 per bucket; allow ±10%.
		if c < 9000 || c > 11000 {
			t.Fatalf("bucket %d has %d draws, expected ~10000", i, c)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if variance < 0.95 || variance > 1.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Duration(i%97), func() {})
		e.Step()
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func TestAccessors(t *testing.T) {
	e := NewEngine(5)
	if e.RNG() == nil {
		t.Fatal("nil RNG")
	}
	ev := e.At(42, func() {})
	if ev.When() != 42 {
		t.Fatalf("When = %v", ev.When())
	}
	e.Run()
	if e.Fired() != 1 {
		t.Fatalf("Fired = %d", e.Fired())
	}
	if got := Time(3 * Second).String(); got != "3.000000000s" {
		t.Fatalf("String = %q", got)
	}
	if got := Time(5 * Second).DurationSince(Time(2 * Second)); got != 3*Second {
		t.Fatalf("DurationSince = %v", got)
	}
	if (2 * Second).Seconds() != 2 {
		t.Fatal("Duration.Seconds wrong")
	}
}

func TestAfterNegativeClamps(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.After(-5, func() { fired = true })
	e.Run()
	if !fired || e.Now() != 0 {
		t.Fatalf("negative After: fired=%v now=%v", fired, e.Now())
	}
}

func TestUint64nAndFork(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(7); v >= 7 {
			t.Fatalf("Uint64n out of range: %d", v)
		}
	}
	child := r.Fork()
	if child.Uint64() == r.Uint64() {
		// One collision is astronomically unlikely; a match means Fork
		// returned an aliased stream.
		t.Fatal("forked stream aliases parent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	r.Uint64n(0)
}
