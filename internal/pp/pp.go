// Package pp defines the progress-period model from §2 of the paper: the
// vocabulary a process uses to describe a duration of its execution whose
// resource demand stays roughly constant. A progress period is bounded by
// explicit begin/end points in the program and carries (1) the hardware
// resource it targets, (2) a working-set size, and (3) a relative temporal
// data-reuse level.
//
// The user-facing API of the paper is two calls:
//
//	id := pp_begin(RESOURCE_LLC, MB(6.3), REUSE_HIGH)
//	... kernel ...
//	pp_end(id)
//
// In this reproduction those calls are methods on the scheduler extension
// (internal/core); this package holds only the shared value types so that
// workloads, the profiler, and the scheduler agree on them.
package pp

import "fmt"

// Resource identifies a hardware resource a progress period targets. The
// paper's prototype tracks the shared last-level cache; the enum leaves room
// for the extensions discussed in its future work (memory bandwidth, cache
// partitions).
type Resource int

const (
	// ResourceLLC is the shared last-level cache (the paper's target).
	ResourceLLC Resource = iota
	// ResourceMemBW is memory bandwidth (future-work extension; supported
	// by the resource monitor but not exercised by the paper's workloads).
	ResourceMemBW
	numResources
)

// NumResources is the count of defined resource kinds.
const NumResources = int(numResources)

func (r Resource) String() string {
	switch r {
	case ResourceLLC:
		return "LLC"
	case ResourceMemBW:
		return "MemBW"
	default:
		return fmt.Sprintf("Resource(%d)", int(r))
	}
}

// Valid reports whether r names a defined resource.
func (r Resource) Valid() bool { return r >= 0 && r < numResources }

// Reuse is the relative temporal-locality factor of a progress period: how
// heavily the working set is re-referenced while the period runs. The paper
// categorizes profiler-measured reuse ratios into three levels (Table 2).
type Reuse int

const (
	ReuseLow Reuse = iota
	ReuseMed
	ReuseHigh
)

func (l Reuse) String() string {
	switch l {
	case ReuseLow:
		return "low"
	case ReuseMed:
		return "med"
	case ReuseHigh:
		return "high"
	default:
		return fmt.Sprintf("Reuse(%d)", int(l))
	}
}

// Valid reports whether l is one of the three defined levels.
func (l Reuse) Valid() bool { return l >= ReuseLow && l <= ReuseHigh }

// ClassifyReuse maps a raw profiler reuse ratio (mean accesses per resident
// working-set entry within a window) onto the three paper levels. The
// thresholds correspond to the ones used when Table 2 was assembled:
// streaming kernels re-touch each datum only a handful of times, level-2
// BLAS re-touches the vector O(n) times across the matrix sweep, level-3
// BLAS re-touches panel data hundreds of times.
func ClassifyReuse(ratio float64) Reuse {
	switch {
	case ratio < 4:
		return ReuseLow
	case ratio < 32:
		return ReuseMed
	default:
		return ReuseHigh
	}
}

// Bytes is a memory size in bytes.
type Bytes int64

// Size helpers mirroring the paper's MB(6.3) API literal.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
)

// MB converts (possibly fractional) binary megabytes to Bytes, mirroring
// the MB(6.3) literal in the paper's Figure 4.
func MB(v float64) Bytes { return Bytes(v * float64(MiB)) }

// KB converts binary kilobytes to Bytes.
func KB(v float64) Bytes { return Bytes(v * float64(KiB)) }

func (b Bytes) String() string {
	switch {
	case b >= GiB:
		return fmt.Sprintf("%.2fGiB", float64(b)/float64(GiB))
	case b >= MiB:
		return fmt.Sprintf("%.2fMiB", float64(b)/float64(MiB))
	case b >= KiB:
		return fmt.Sprintf("%.2fKiB", float64(b)/float64(KiB))
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// MiBf returns the size in floating-point binary megabytes.
func (b Bytes) MiBf() float64 { return float64(b) / float64(MiB) }

// Demand is the quantified resource usage a progress period declares: the
// triple passed to pp_begin.
type Demand struct {
	Resource Resource
	// WorkingSet is the total amount of the resource the period needs
	// resident to run at full speed (bytes for ResourceLLC).
	WorkingSet Bytes
	// Reuse is the relative temporal-locality factor.
	Reuse Reuse
}

// Validate checks the demand is well-formed.
func (d Demand) Validate() error {
	if !d.Resource.Valid() {
		return fmt.Errorf("pp: invalid resource %d", int(d.Resource))
	}
	if d.WorkingSet < 0 {
		return fmt.Errorf("pp: negative working set %d", d.WorkingSet)
	}
	if !d.Reuse.Valid() {
		return fmt.Errorf("pp: invalid reuse level %d", int(d.Reuse))
	}
	return nil
}

func (d Demand) String() string {
	return fmt.Sprintf("%s %s reuse=%s", d.Resource, d.WorkingSet, d.Reuse)
}

// ID uniquely identifies an active progress period; it is the value
// pp_begin returns and pp_end consumes. IDs are never reused within a run.
type ID uint64

// None is the zero ID, returned on rejected or invalid begins.
const None ID = 0
