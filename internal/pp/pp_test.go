package pp

import (
	"testing"
	"testing/quick"
)

func TestResourceString(t *testing.T) {
	cases := map[Resource]string{
		ResourceLLC:   "LLC",
		ResourceMemBW: "MemBW",
		Resource(99):  "Resource(99)",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(r), got, want)
		}
	}
}

func TestResourceValid(t *testing.T) {
	if !ResourceLLC.Valid() || !ResourceMemBW.Valid() {
		t.Fatal("defined resources report invalid")
	}
	if Resource(-1).Valid() || Resource(NumResources).Valid() {
		t.Fatal("out-of-range resources report valid")
	}
}

func TestReuseStringAndValid(t *testing.T) {
	if ReuseLow.String() != "low" || ReuseMed.String() != "med" || ReuseHigh.String() != "high" {
		t.Fatal("reuse level strings wrong")
	}
	if Reuse(5).Valid() {
		t.Fatal("Reuse(5) reports valid")
	}
}

func TestClassifyReuse(t *testing.T) {
	cases := []struct {
		ratio float64
		want  Reuse
	}{
		{0, ReuseLow}, {1, ReuseLow}, {3.9, ReuseLow},
		{4, ReuseMed}, {10, ReuseMed}, {31.9, ReuseMed},
		{32, ReuseHigh}, {500, ReuseHigh},
	}
	for _, c := range cases {
		if got := ClassifyReuse(c.ratio); got != c.want {
			t.Errorf("ClassifyReuse(%v) = %v, want %v", c.ratio, got, c.want)
		}
	}
}

func TestClassifyReuseMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		if a < 0 || b < 0 || a > 1e6 || b > 1e6 {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return ClassifyReuse(a) <= ClassifyReuse(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesHelpers(t *testing.T) {
	if MB(1) != MiB {
		t.Fatalf("MB(1) = %d, want %d", MB(1), MiB)
	}
	v := 6.3
	if want := Bytes(v * float64(MiB)); MB(6.3) != want {
		t.Fatalf("MB(6.3) = %d, want %d", MB(6.3), want)
	}
	if KB(32) != 32*KiB {
		t.Fatalf("KB(32) = %d", KB(32))
	}
	if got := MB(6.3).MiBf(); got < 6.29 || got > 6.31 {
		t.Fatalf("MiBf = %v, want ~6.3", got)
	}
}

func TestBytesString(t *testing.T) {
	cases := map[Bytes]string{
		512:       "512B",
		2 * KiB:   "2.00KiB",
		3 * MiB:   "3.00MiB",
		5 * GiB:   "5.00GiB",
		MB(1.5):   "1.50MiB",
		KB(100.5): "100.50KiB",
	}
	for b, want := range cases {
		if got := b.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(b), got, want)
		}
	}
}

func TestDemandValidate(t *testing.T) {
	good := Demand{ResourceLLC, MB(6.3), ReuseHigh}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid demand rejected: %v", err)
	}
	bads := []Demand{
		{Resource(42), MB(1), ReuseLow},
		{ResourceLLC, -1, ReuseLow},
		{ResourceLLC, MB(1), Reuse(7)},
	}
	for i, d := range bads {
		if err := d.Validate(); err == nil {
			t.Errorf("bad demand %d accepted", i)
		}
	}
}

func TestDemandString(t *testing.T) {
	d := Demand{ResourceLLC, MB(6.3), ReuseHigh}
	want := "LLC 6.30MiB reuse=high"
	if got := d.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
