package profutil

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartWritesProfiles: both profile files exist and are non-empty
// after a profiled stretch of work — the smoke the CLI flags rely on.
func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Allocate and spin briefly so both profiles have something to say.
	sink := 0
	buf := make([]byte, 1<<20)
	for i := range buf {
		sink += int(buf[i]) + i
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestStartCPUOnly and TestStartMemOnly: each path is optional.
func TestStartCPUOnly(t *testing.T) {
	cpu := filepath.Join(t.TempDir(), "cpu.pprof")
	stop, err := Start(cpu, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(cpu); err != nil || st.Size() == 0 {
		t.Fatalf("cpu profile missing or empty: %v", err)
	}
}

func TestStartMemOnly(t *testing.T) {
	mem := filepath.Join(t.TempDir(), "mem.pprof")
	stop, err := Start("", mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(mem); err != nil || st.Size() == 0 {
		t.Fatalf("heap profile missing or empty: %v", err)
	}
}

// TestStartNothing: empty paths are a no-op pair.
func TestStartNothing(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// TestStartBadPath: an uncreatable CPU path fails cleanly, leaving no
// profile running (a second Start must succeed).
func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu"), ""); err == nil {
		t.Fatal("Start with uncreatable path succeeded")
	}
	stop, err := Start(filepath.Join(t.TempDir(), "cpu.pprof"), "")
	if err != nil {
		t.Fatalf("Start after failed Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
