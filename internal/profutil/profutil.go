// Package profutil wires runtime/pprof CPU and heap profiling into the
// CLIs: one Start call after flag parsing, one Stop before exit. It
// profiles the simulator itself (the Go process), not the simulated
// machine — use it to find hot spots in the scheduler, the event
// engine, or the blame attribution path.
package profutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges a heap profile at
// memPath; either may be empty to skip that profile. The returned stop
// function finishes both and must be called exactly once (defer it
// right after a successful Start). On error nothing is left running
// and partial files are removed.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profutil: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			os.Remove(cpuPath)
			return nil, fmt.Errorf("profutil: %w", err)
		}
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				first = fmt.Errorf("profutil: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("profutil: %w", err)
				}
				return first
			}
			// Up-to-date allocation stats, like net/http/pprof does
			// before writing the heap profile.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("profutil: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("profutil: %w", err)
			}
		}
		return first
	}, nil
}
