package core

import (
	"errors"
	"testing"
	"testing/quick"

	"rdasched/internal/pp"
)

func TestStrictPolicy(t *testing.T) {
	p := StrictPolicy{}
	if p.Name() != "strict" {
		t.Fatalf("name = %q", p.Name())
	}
	if !p.Allows(0, pp.MB(15)) {
		t.Fatal("exact fit denied")
	}
	if !p.Allows(pp.MB(1), pp.MB(15)) {
		t.Fatal("fitting demand denied")
	}
	if p.Allows(-1, pp.MB(15)) {
		t.Fatal("oversubscription allowed")
	}
}

func TestCompromisePolicy(t *testing.T) {
	p := NewCompromise()
	if p.Name() != "compromise" {
		t.Fatalf("name = %q", p.Name())
	}
	if p.Factor != 2 {
		t.Fatalf("factor = %v, want the paper's 2", p.Factor)
	}
	cap := pp.MB(15)
	// Usage may reach 2x capacity: outcome ≥ -capacity.
	if !p.Allows(-cap, cap) {
		t.Fatal("2x oversubscription denied")
	}
	if p.Allows(-cap-1, cap) {
		t.Fatal("beyond 2x allowed")
	}
	if !p.Allows(0, cap) || !p.Allows(cap, cap) {
		t.Fatal("fitting demand denied")
	}
}

func TestCompromiseFactorBelowOneClamped(t *testing.T) {
	p := CompromisePolicy{Factor: 0.5}
	cap := pp.MB(10)
	if p.Allows(-1, cap) {
		t.Fatal("factor < 1 should behave like strict")
	}
	if !p.Allows(0, cap) {
		t.Fatal("exact fit denied")
	}
}

func TestAlwaysPolicy(t *testing.T) {
	p := AlwaysPolicy{}
	if p.Name() != "default" {
		t.Fatalf("name = %q", p.Name())
	}
	if !p.Allows(-pp.GiB, pp.MB(1)) {
		t.Fatal("always policy denied something")
	}
}

func TestPolicyNesting(t *testing.T) {
	// Property: anything strict allows, compromise allows; anything
	// compromise allows, always allows.
	f := func(outcomeMB int16, capMB uint8) bool {
		if capMB == 0 {
			capMB = 1
		}
		outcome := pp.MB(float64(outcomeMB))
		capacity := pp.MB(float64(capMB))
		s := StrictPolicy{}.Allows(outcome, capacity)
		c := NewCompromise().Allows(outcome, capacity)
		a := AlwaysPolicy{}.Allows(outcome, capacity)
		if s && !c {
			return false
		}
		if c && !a {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyByName(t *testing.T) {
	for name, want := range map[string]string{
		"strict":     "strict",
		"compromise": "compromise",
		"default":    "default",
		"always":     "default",
	} {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Fatalf("PolicyByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := PolicyByName("bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestResourceMonitorAccounting(t *testing.T) {
	rm := NewResourceMonitor(pp.MB(15))
	if rm.Capacity(pp.ResourceLLC) != pp.MB(15) {
		t.Fatal("capacity wrong")
	}
	d := pp.Demand{Resource: pp.ResourceLLC, WorkingSet: pp.MB(6), Reuse: pp.ReuseHigh}
	rm.Increment(d)
	rm.Increment(d)
	if rm.Usage(pp.ResourceLLC) != pp.MB(12) {
		t.Fatalf("usage = %v", rm.Usage(pp.ResourceLLC))
	}
	if rm.Remaining(pp.ResourceLLC) != pp.MB(3) {
		t.Fatalf("remaining = %v", rm.Remaining(pp.ResourceLLC))
	}
	rm.Decrement(d)
	if rm.Usage(pp.ResourceLLC) != pp.MB(6) {
		t.Fatalf("usage after decrement = %v", rm.Usage(pp.ResourceLLC))
	}
	if rm.Peak(pp.ResourceLLC) != pp.MB(12) {
		t.Fatalf("peak = %v", rm.Peak(pp.ResourceLLC))
	}
}

func TestResourceMonitorUnderflowError(t *testing.T) {
	// Underflow on the external API is a sentinel error, not a panic —
	// untrusted trace replay must be able to survive an End without a
	// Begin. The table is left untouched.
	rm := NewResourceMonitor(pp.MB(15))
	err := rm.Decrement(pp.Demand{Resource: pp.ResourceLLC, WorkingSet: pp.MB(1), Reuse: pp.ReuseLow})
	if !errors.Is(err, ErrLoadUnderflow) {
		t.Fatalf("underflow error = %v, want ErrLoadUnderflow", err)
	}
	if rm.Usage(pp.ResourceLLC) != 0 {
		t.Fatalf("usage mutated by failed decrement: %v", rm.Usage(pp.ResourceLLC))
	}
}

func TestResourceMonitorInvalidDemandError(t *testing.T) {
	rm := NewResourceMonitor(pp.MB(15))
	bad := pp.Demand{Resource: pp.Resource(99), WorkingSet: 1}
	if err := rm.Increment(bad); !errors.Is(err, ErrInvalidDemand) {
		t.Fatalf("Increment error = %v, want ErrInvalidDemand", err)
	}
	if err := rm.Decrement(bad); !errors.Is(err, ErrInvalidDemand) {
		t.Fatalf("Decrement error = %v, want ErrInvalidDemand", err)
	}
	if rm.Usage(pp.ResourceLLC) != 0 {
		t.Fatal("usage mutated by invalid demand")
	}
}

// TestSchedulerInternalUnderflowPanics pins the dividing line: the same
// underflow reached through the scheduler's *internal* accounting is a
// bug in this package and still panics.
func TestSchedulerInternalUnderflowPanics(t *testing.T) {
	s := New(StrictPolicy{}, pp.MB(15))
	defer func() {
		if recover() == nil {
			t.Fatal("internal underflow did not panic")
		}
	}()
	s.mustDecrement(pp.Demand{Resource: pp.ResourceLLC, WorkingSet: pp.MB(1), Reuse: pp.ReuseLow})
}

func TestResourceMonitorSetCapacity(t *testing.T) {
	rm := NewResourceMonitor(pp.MB(15))
	rm.SetCapacity(pp.ResourceMemBW, pp.MB(100))
	if rm.Capacity(pp.ResourceMemBW) != pp.MB(100) {
		t.Fatal("SetCapacity did not stick")
	}
}

func TestResourceMonitorConservation(t *testing.T) {
	// Property: after any valid sequence of increments and matching
	// decrements, usage equals the sum of outstanding demands.
	f := func(sizesKB []uint16) bool {
		rm := NewResourceMonitor(pp.GiB)
		var outstanding []pp.Demand
		var want pp.Bytes
		for i, kb := range sizesKB {
			d := pp.Demand{Resource: pp.ResourceLLC, WorkingSet: pp.Bytes(kb) * pp.KiB, Reuse: pp.ReuseLow}
			if i%3 == 2 && len(outstanding) > 0 {
				last := outstanding[len(outstanding)-1]
				outstanding = outstanding[:len(outstanding)-1]
				rm.Decrement(last)
				want -= last.WorkingSet
			} else {
				rm.Increment(d)
				outstanding = append(outstanding, d)
				want += d.WorkingSet
			}
		}
		return rm.Usage(pp.ResourceLLC) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceMonitorString(t *testing.T) {
	rm := NewResourceMonitor(pp.MB(15))
	if rm.String() == "" {
		t.Fatal("empty string")
	}
}
