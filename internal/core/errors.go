package core

import "errors"

// Sentinel errors for the public admission path. The kernel prototype
// cannot afford to oops because an application passed a garbage demand to
// pp_begin or dropped a pp_end; likewise this extension returns (or
// counts) errors for every externally triggerable misuse and reserves
// panics for internal accounting invariants — a load-table underflow
// reached through the scheduler's own bookkeeping is a bug in this
// package, never a legitimate runtime state.
var (
	// ErrInvalidDemand marks a malformed external demand: unknown
	// resource, negative or zero working set, or invalid reuse level.
	// The scheduler refuses to track such periods and lets them run under
	// the stock scheduler (counted in Stats.Rejected).
	ErrInvalidDemand = errors.New("core: invalid demand")
	// ErrOversizedDemand marks a demand that can never be admitted
	// alongside any other load under the configured policy (working set
	// above the policy limit). Such periods still run eventually — via
	// the empty-load safeguard or fallback admission — but callers
	// validating ahead of time get a definite answer.
	ErrOversizedDemand = errors.New("core: demand exceeds policy capacity limit")
	// ErrLoadUnderflow reports a Decrement below zero load. On the
	// scheduler's internal paths this is converted back into a panic
	// (accounting bug); external callers of ResourceMonitor get the
	// error.
	ErrLoadUnderflow = errors.New("core: resource load underflow")
	// ErrInvalidDomainConfig marks a DomainConfig NewDomainSet refuses to
	// build: a non-positive domain count or a negative steal age (use
	// DisableSteal to turn the steal pass off).
	ErrInvalidDomainConfig = errors.New("core: invalid domain config")
	// ErrInvalidDomain marks a domain index outside the set, or a
	// recovery operation on a set that cannot perform it (fault injection
	// without EnableRecovery, or on a single-domain set with no surviving
	// shard to evacuate to).
	ErrInvalidDomain = errors.New("core: invalid domain")
	// ErrInvalidRecoveryConfig marks a RecoveryConfig EnableRecovery
	// refuses: an unknown mode, a negative retry budget or interval, or a
	// retry budget with no backoff base.
	ErrInvalidRecoveryConfig = errors.New("core: invalid recovery config")
)
