package core

import (
	"fmt"
	"sort"

	"rdasched/internal/pp"
	"rdasched/internal/sim"
)

// Domain fault tolerance. PR 6 made the admission budget shardable;
// this layer makes the shards failure units. Three injectable faults —
// partial capacity loss, full shard crash, ledger corruption — and
// three recovery behaviors around them:
//
//   - Quarantine. A crashed shard goes offline: its predicate denies
//     everything (including the empty-load safeguard), the placer and
//     steal pass skip it, and its capacity drops to zero so no decision
//     anywhere still counts on it.
//
//   - Evacuation (RecoverEvacuate). The crashed shard's registered
//     periods migrate wholesale to the best-fit surviving shard through
//     the same move machinery the steal pass uses — same admission ID,
//     same enqueue timestamp, wait clock intact. Actives carry their
//     charges and re-arm their lease with the *remaining* budget;
//     waiters that fit nowhere transfer to the least-loaded survivor's
//     waitlist and a bounded exponential-backoff retry (through the
//     Timer) keeps re-probing them. When the retry budget runs out the
//     stranded waiters are handed to the governor's degraded-admission
//     ladder — aging, reservations, and the fallback deadline already
//     bound their wait. The survivors also absorb the failed shard's
//     capacity share until reintegration.
//
//   - Audit. An interval tick recomputes every shard's load table from
//     its active-period set, repairs any drift in place (emitting
//     EventAudit with the magnitude), and re-runs the wake scan against
//     the corrected ledger. This is what heals injected ledger
//     corruption — and, at Quiesce, what guarantees the end-of-run
//     ledger is exact.
//
// RecoverStall and RecoverDrop are the E7 baselines: stall quarantines
// the shard and does nothing else (its backlog waits out the fallback
// deadline), drop degrades every registered period on the shard to
// untracked admission, abandoning their demand tracking entirely.
//
// Everything runs on the virtual clock through the same Timer the
// leases use, so fault-injected runs stay deterministic under -jobs N.

// RecoveryMode selects what a DomainSet does with a crashed shard's
// registered periods.
type RecoveryMode int

const (
	// RecoverEvacuate migrates the shard's periods to survivors (the
	// subsystem's reason to exist; the default).
	RecoverEvacuate RecoveryMode = iota
	// RecoverStall leaves them in place: actives keep their charges on
	// the dead shard, waiters sit until the fallback deadline. Baseline.
	RecoverStall
	// RecoverDrop degrades every registered period on the shard to
	// untracked admission and releases its charges. Baseline.
	RecoverDrop
)

func (m RecoveryMode) String() string {
	switch m {
	case RecoverEvacuate:
		return "evacuate"
	case RecoverStall:
		return "stall"
	case RecoverDrop:
		return "drop"
	default:
		return fmt.Sprintf("RecoveryMode(%d)", int(m))
	}
}

// Fault discriminators carried in a shard-level recovery event's Phase
// field (EventDomainFail, EventRecover, EventAudit).
const (
	DomainFaultCapacity = 0 // partial LLC capacity loss
	DomainFaultCrash    = 1 // full shard crash
	DomainFaultLedger   = 2 // load-table corruption / drift
)

// RecoveryConfig sizes the recovery subsystem.
type RecoveryConfig struct {
	// Mode is the crashed-shard strategy (default RecoverEvacuate).
	Mode RecoveryMode
	// MaxRetries bounds the evacuation backoff: how many retry ticks may
	// fire for waiters that fit no survivor before they are handed to
	// the admission ladder. 0 hands them over immediately.
	MaxRetries int
	// RetryBase is the first retry delay; each subsequent tick doubles
	// it. Required positive when MaxRetries > 0.
	RetryBase sim.Duration
	// AuditInterval is the invariant auditor's period; <= 0 disables the
	// periodic tick (the Quiesce-time audit still runs).
	AuditInterval sim.Duration
}

// DefaultRecoveryConfig returns the evacuating configuration the E7
// harness uses: four retries from a 1ms base, 5ms audit cadence.
func DefaultRecoveryConfig() RecoveryConfig {
	return RecoveryConfig{
		Mode:          RecoverEvacuate,
		MaxRetries:    4,
		RetryBase:     sim.Millisecond,
		AuditInterval: 5 * sim.Millisecond,
	}
}

// Validate reports whether the configuration is usable; every violation
// wraps ErrInvalidRecoveryConfig.
func (c RecoveryConfig) Validate() error {
	switch c.Mode {
	case RecoverEvacuate, RecoverStall, RecoverDrop:
	default:
		return fmt.Errorf("%w: unknown mode %d", ErrInvalidRecoveryConfig, int(c.Mode))
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("%w: negative MaxRetries %d", ErrInvalidRecoveryConfig, c.MaxRetries)
	}
	if c.MaxRetries > 0 && c.RetryBase <= 0 {
		return fmt.Errorf("%w: MaxRetries %d with no positive RetryBase", ErrInvalidRecoveryConfig, c.MaxRetries)
	}
	return nil
}

// RecoveryStats counts the recovery subsystem's activity.
type RecoveryStats struct {
	Failures        uint64 // shard crashes injected
	Corruptions     uint64 // ledger-corruption events injected
	Evacuations     uint64 // periods moved off failed shards (admitted or transferred)
	EvacRetries     uint64 // backoff ticks fired for stranded waiters
	ForcedMoves     uint64 // tracked actives moved to a survivor that could not fit them
	LadderFallbacks uint64 // stranded waiters handed to the admission ladder
	Dropped         uint64 // periods degraded to untracked by RecoverDrop
	AuditRuns       uint64 // auditor passes over the shard set
	AuditRepairs    uint64 // per-resource ledger drifts repaired
	Reintegrations  uint64 // shards brought back by RecoverDomain
}

// recovery is the DomainSet's fault/recovery state (nil until
// EnableRecovery).
type recovery struct {
	cfg      RecoveryConfig
	base     []pp.Bytes   // LLC capacity split at EnableRecovery time
	lossFrac []float64    // injected partial capacity loss per shard
	failedAt []sim.Time   // crash time per shard, for the recovery histogram
	stats    RecoveryStats

	retryAttempt int        // backoff ticks armed since the last crash
	retryEv      *sim.Event // pending retry tick
	auditEv      *sim.Event // pending audit tick
}

// EnableRecovery attaches the fault/recovery subsystem. It must run on
// a multi-domain set (a single-domain set has no survivor to evacuate
// to) after capacities are configured — the current LLC split becomes
// the baseline the re-split restores on reintegration. Shards switch
// their decrement path to drift-tolerant mode: injected ledger
// corruption may legally pull usage below the outstanding charges, and
// the auditor (not a panic) is the repair mechanism.
func (d *DomainSet) EnableRecovery(cfg RecoveryConfig) error {
	if d.single {
		return fmt.Errorf("%w: recovery requires two or more domains", ErrInvalidDomain)
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	r := &recovery{
		cfg:      cfg,
		lossFrac: make([]float64, len(d.shards)),
		failedAt: make([]sim.Time, len(d.shards)),
	}
	for _, s := range d.shards {
		r.base = append(r.base, s.rm.Capacity(pp.ResourceLLC))
		s.tolerateDrift = true
	}
	d.rec = r
	d.armAuditTick()
	return nil
}

// RecoveryStats returns a copy of the recovery counters (zero value
// when recovery was never enabled).
func (d *DomainSet) RecoveryStats() RecoveryStats {
	if d.rec == nil {
		return RecoveryStats{}
	}
	return d.rec.stats
}

// Quarantined reports whether domain i is currently offline (false for
// out-of-range indices).
func (d *DomainSet) Quarantined(i int) bool {
	return i >= 0 && i < len(d.shards) && d.shards[i].offline
}

// recTarget validates a fault-injection target.
func (d *DomainSet) recTarget(i int) error {
	if d.rec == nil {
		return fmt.Errorf("%w: recovery not enabled", ErrInvalidDomain)
	}
	if i < 0 || i >= len(d.shards) {
		return fmt.Errorf("%w: index %d of %d domains", ErrInvalidDomain, i, len(d.shards))
	}
	return nil
}

func (d *DomainSet) now() sim.Time {
	if d.clock == nil {
		return 0
	}
	return d.clock()
}

// InjectCapacityLoss degrades domain i's LLC share by frac (0..1) of
// its baseline split at time now; frac >= 1 is a full crash. The shard
// stays online — admission continues against the reduced budget — and
// RecoverDomain restores the baseline.
func (d *DomainSet) InjectCapacityLoss(i int, frac float64) error {
	if err := d.recTarget(i); err != nil {
		return err
	}
	if frac < 0 {
		return fmt.Errorf("%w: negative capacity loss %v", ErrInvalidDomain, frac)
	}
	if frac >= 1 {
		return d.InjectCrash(i)
	}
	s := d.shards[i]
	before := s.rm.Capacity(pp.ResourceLLC)
	d.rec.lossFrac[i] = frac
	d.resplit()
	lost := before - s.rm.Capacity(pp.ResourceLLC)
	d.emitRecovery(EventDomainFail, i, DomainFaultCapacity, lost)
	return nil
}

// InjectCrash takes domain i offline at time now: capacity zero,
// admission fenced (including the empty-load safeguard), placement and
// stealing skip it. What happens to its registered periods depends on
// the configured RecoveryMode. Idempotent on an already-crashed shard.
func (d *DomainSet) InjectCrash(i int) error {
	if err := d.recTarget(i); err != nil {
		return err
	}
	s := d.shards[i]
	if s.offline {
		return nil
	}
	lost := s.rm.Capacity(pp.ResourceLLC)
	s.offline = true
	d.rec.failedAt[i] = d.now()
	d.rec.stats.Failures++
	d.resplit()
	d.emitRecovery(EventDomainFail, i, DomainFaultCrash, lost)
	switch d.rec.cfg.Mode {
	case RecoverEvacuate:
		d.evacuateShard(i)
	case RecoverDrop:
		d.dropShard(i)
	case RecoverStall:
		// Leave everything in place: the backlog waits out the fallback
		// deadline, actives drain on their own ends and leases.
	}
	return nil
}

// InjectLedgerCorruption skews domain i's LLC load table by skew bytes
// (either sign; clamped at zero). The corruption is deliberately left
// in place — discovering and repairing it is the auditor's job.
func (d *DomainSet) InjectLedgerCorruption(i int, skew pp.Bytes) error {
	if err := d.recTarget(i); err != nil {
		return err
	}
	s := d.shards[i]
	u := s.rm.usage[pp.ResourceLLC] + skew
	if u < 0 {
		u = 0
	}
	s.rm.usage[pp.ResourceLLC] = u
	if u > s.rm.peak[pp.ResourceLLC] {
		s.rm.peak[pp.ResourceLLC] = u
	}
	d.rec.stats.Corruptions++
	mag := skew
	if mag < 0 {
		mag = -mag
	}
	d.emitRecovery(EventDomainFail, i, DomainFaultLedger, mag)
	return nil
}

// RecoverDomain reintegrates domain i: back online, capacity split
// restored to baseline (survivors hand back what they absorbed), its
// waitlist re-scanned, and the steal pass re-run so backlog rebalances
// onto the recovered capacity. Time-to-recover lands in the
// rda_recovery_time_seconds histogram when a registry is bound.
func (d *DomainSet) RecoverDomain(i int) error {
	if err := d.recTarget(i); err != nil {
		return err
	}
	s := d.shards[i]
	wasOffline := s.offline
	if !wasOffline && d.rec.lossFrac[i] == 0 {
		return nil // nothing to reintegrate
	}
	fault := DomainFaultCapacity
	if wasOffline {
		fault = DomainFaultCrash
	}
	s.offline = false
	d.rec.lossFrac[i] = 0
	d.resplit()
	d.rec.stats.Reintegrations++
	if wasOffline && d.reg != nil {
		d.reg.Histogram(MetricRecoverySeconds).
			Observe(d.now().DurationSince(d.rec.failedAt[i]).Seconds())
	}
	d.emitRecovery(EventRecover, i, fault, s.rm.Capacity(pp.ResourceLLC))
	s.wakeWaitlist()
	d.stealScan()
	return nil
}

// resplit recomputes every shard's LLC capacity from the baseline
// split: offline shards hold zero, online shards hold their baseline
// minus any injected partial loss, and — under RecoverEvacuate only —
// the first online shard absorbs the offline shards' baseline shares
// whole (the self-healing half of evacuation: the budget follows the
// work). The absorbed share is deliberately NOT spread across all
// survivors: splitting it n-1 ways fragments it below the granularity
// of the periods it used to admit — three 1/12-LLC slivers admit
// nothing, one intact 1/4-LLC share re-admits the evacuated backlog.
// The stall and drop baselines simply lose the crashed capacity.
func (d *DomainSet) resplit() {
	var lostTotal pp.Bytes
	online := 0
	for i, s := range d.shards {
		if s.offline {
			lostTotal += d.rec.base[i]
		} else {
			online++
		}
	}
	redistribute := d.rec.cfg.Mode == RecoverEvacuate && online > 0
	rank := 0
	for i, s := range d.shards {
		if s.offline {
			s.rm.SetCapacity(pp.ResourceLLC, 0)
			continue
		}
		c := d.rec.base[i]
		if f := d.rec.lossFrac[i]; f > 0 {
			c = pp.Bytes(float64(c) * (1 - f))
		}
		if redistribute && rank == 0 {
			c += lostTotal
		}
		rank++
		s.rm.SetCapacity(pp.ResourceLLC, c)
	}
}

// leastLoadedOnline picks the least-loaded online shard other than
// exclude (ties toward the lower index); -1 when no shard qualifies.
func (d *DomainSet) leastLoadedOnline(exclude int) int {
	least := -1
	for i := range d.shards {
		if i == exclude || d.shards[i].offline {
			continue
		}
		if least == -1 || d.loadFrac(i) < d.loadFrac(least) {
			least = i
		}
	}
	return least
}

// evacuateShard moves every period registered on crashed shard si to a
// survivor. Actives go first, in admission-ID order, charges and lease
// budget intact: they are running threads that cannot be paused (the
// gate only intercepts period boundaries), so they claim survivor
// headroom before anyone new is admitted into it — admitting waiters
// ahead of them would force the displaced actives into oversubscription
// and recreate exactly the thrash evacuation exists to avoid. Waiters
// follow in ticket (FIFO) order: one that fits a survivor's remaining
// headroom — and whose owner's breaker is not open on si — is migrated
// and admitted there; the rest transfer to the least-loaded survivor's
// waitlist (wait clocks and deadlines intact) and the backoff retry
// takes over. The steal guard is held for the duration so a
// mid-evacuation wake cascade cannot re-enter the move machinery.
func (d *DomainSet) evacuateShard(si int) {
	if d.leastLoadedOnline(si) < 0 {
		return // no survivor anywhere; leave the shard's state in place
	}
	src := d.shards[si]
	wasStealing := d.stealing
	d.stealing = true
	defer func() { d.stealing = wasStealing }()

	var acts []*period
	for _, per := range src.active {
		if per.admitted {
			acts = append(acts, per)
		}
	}
	sort.Slice(acts, func(i, j int) bool { return acts[i].id < acts[j].id })
	for _, per := range acts {
		d.moveActive(per, si)
	}

	var waiters []*period
	src.waitlist.Each(func(per *period, _ uint64) {
		waiters = append(waiters, per)
	})
	sort.Slice(waiters, func(i, j int) bool { return waiters[i].ticket < waiters[j].ticket })
	stranded := false
	for _, per := range waiters {
		if !src.breakerBlocked(per.key.procID) {
			if di, ok := d.fitTarget(per, si); ok {
				d.migrate(per, si, di, EventEvacuate)
				continue
			}
		}
		d.transferWaiter(per, si)
		stranded = true
	}

	if stranded {
		d.rec.retryAttempt = 0
		d.armEvacRetry()
	}
}

// transferWaiter moves a waiter that fits no survivor onto the least-
// loaded survivor's waitlist. The enqueue timestamp survives (the wait
// clock never resets) and the pending fallback deadline is re-armed
// with the budget it had left, so evacuation neither extends nor
// shortens the bounded wait. The evacuated flag queues the period for
// the backoff retry.
func (d *DomainSet) transferWaiter(per *period, si int) {
	di := d.leastLoadedOnline(si)
	if di < 0 {
		return
	}
	src, dst := d.shards[si], d.shards[di]
	if !src.waitlist.Remove(per.ticket) {
		panic(fmt.Sprintf("core: evacuation of period %d not on domain %d waitlist", per.id, si))
	}
	delete(src.active, per.key)
	delete(src.byID, per.id)
	delete(src.parked, per.key.procID)
	src.cancelDeadline(per)
	dst.active[per.key] = per
	dst.byID[per.id] = per
	d.domainOf[per.key] = di
	per.ticket = dst.waitlist.Enqueue(per)
	if per.taskPool {
		dst.parked[per.key.procID] = true
	}
	if dst.deadline > 0 {
		dst.scheduleDeadlineIn(per, dst.deadline-d.now().DurationSince(per.enqueuedAt))
	}
	per.evacuated = true
	d.rec.stats.Evacuations++
	d.emitDomain(EventEvacuate, di, per.key, per.demands[0])
}

// moveActive migrates an admitted period off crashed shard si: best-fit
// survivor when one admits its demands, least-loaded survivor otherwise
// (a forced move — the destination runs oversubscribed until the period
// ends, which its policy simply denies around; counted). Charges move
// with the period, thread residency follows, and the lease re-arms with
// the remaining budget so a leaked period is still reclaimed on the
// original schedule.
func (d *DomainSet) moveActive(per *period, si int) {
	src := d.shards[si]
	di, ok := d.fitTarget(per, si)
	forced := false
	if !ok {
		di = d.leastLoadedOnline(si)
		if di < 0 {
			return
		}
		forced = !per.untracked
	}
	dst := d.shards[di]
	src.unregister(per) // drops registry entries, cancels the lease
	if !per.untracked {
		for _, dm := range per.demands {
			src.mustDecrement(dm)
		}
	}
	var tids []int
	for tid, key := range src.inside {
		if key == per.key {
			tids = append(tids, tid)
		}
	}
	for _, tid := range tids {
		delete(src.inside, tid)
		dst.inside[tid] = per.key
	}
	dst.active[per.key] = per
	dst.byID[per.id] = per
	d.domainOf[per.key] = di
	if !per.untracked {
		for _, dm := range per.demands {
			dst.mustIncrement(dm)
		}
	}
	if lease := dst.govLease(); lease > 0 {
		rem := lease - d.now().DurationSince(per.admittedAt)
		if rem < 1 {
			rem = 1
		}
		dst.scheduleLeaseFor(per, rem)
	}
	if forced {
		d.rec.stats.ForcedMoves++
	}
	d.rec.stats.Evacuations++
	d.emitDomain(EventEvacuate, di, per.key, per.demands[0])
}

// dropShard is the RecoverDrop baseline: every waiter on the crashed
// shard is degraded to untracked fallback admission on the spot, every
// tracked active releases its charges and runs on untracked. Periods
// stay registered on the shard so their ends still close them.
func (d *DomainSet) dropShard(si int) {
	src := d.shards[si]
	var waiters []*period
	src.waitlist.Each(func(per *period, _ uint64) {
		waiters = append(waiters, per)
	})
	sort.Slice(waiters, func(i, j int) bool { return waiters[i].ticket < waiters[j].ticket })
	for _, per := range waiters {
		src.cancelDeadline(per)
		src.fallbackAdmit(per)
		d.rec.stats.Dropped++
	}
	var acts []*period
	for _, per := range src.active {
		if per.admitted && !per.untracked {
			acts = append(acts, per)
		}
	}
	sort.Slice(acts, func(i, j int) bool { return acts[i].id < acts[j].id })
	for _, per := range acts {
		for _, dm := range per.demands {
			src.mustDecrement(dm)
		}
		per.untracked = true
		d.rec.stats.Dropped++
	}
}

// armEvacRetry schedules the next backoff tick (RetryBase doubling per
// attempt); at most one is pending.
func (d *DomainSet) armEvacRetry() {
	if d.timer == nil || d.rec.retryEv != nil {
		return
	}
	shift := d.rec.retryAttempt
	if shift > 16 {
		shift = 16
	}
	delay := d.rec.cfg.RetryBase << shift
	if delay < 1 {
		delay = 1
	}
	d.rec.retryAttempt++
	d.rec.retryEv = d.timer.After(delay, func() {
		d.rec.retryEv = nil
		d.evacRetryTick()
	})
}

// evacRetryTick re-probes every stranded (evacuated-flagged) waiter,
// oldest first, migrating those a survivor now admits. Waiters still
// stranded after the retry budget are handed to the admission ladder —
// governor aging, reservations, and the fallback deadline bound their
// wait from here.
func (d *DomainSet) evacRetryTick() {
	d.rec.stats.EvacRetries++
	var pend []stealCandidate
	for si, s := range d.shards {
		si := si
		s.waitlist.Each(func(per *period, _ uint64) {
			if per.evacuated {
				pend = append(pend, stealCandidate{per: per, src: si})
			}
		})
	}
	sort.SliceStable(pend, func(i, j int) bool {
		a, b := pend[i], pend[j]
		if a.per.enqueuedAt != b.per.enqueuedAt {
			return a.per.enqueuedAt < b.per.enqueuedAt
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.per.ticket < b.per.ticket
	})
	remaining := false
	for _, c := range pend {
		if c.per.admitted {
			c.per.evacuated = false // admitted by a wake since the snapshot
			continue
		}
		if di, ok := d.fitTarget(c.per, c.src); ok {
			c.per.evacuated = false
			d.migrate(c.per, c.src, di, EventEvacuate)
			continue
		}
		remaining = true
	}
	if !remaining {
		return
	}
	if d.rec.retryAttempt <= d.rec.cfg.MaxRetries {
		d.armEvacRetry()
		return
	}
	for _, s := range d.shards {
		s.waitlist.Each(func(per *period, _ uint64) {
			if per.evacuated {
				per.evacuated = false
				d.rec.stats.LadderFallbacks++
			}
		})
	}
}

// armAuditTick schedules the next periodic audit pass; at most one is
// pending. Re-armed from its own callback and from SetTimer, so the
// wiring order of EnableRecovery and SetTimer does not matter.
func (d *DomainSet) armAuditTick() {
	if d.timer == nil || d.rec == nil || d.rec.cfg.AuditInterval <= 0 || d.rec.auditEv != nil {
		return
	}
	d.rec.auditEv = d.timer.After(d.rec.cfg.AuditInterval, func() {
		d.rec.auditEv = nil
		d.runAudit(true)
		d.armAuditTick()
	})
}

// runAudit is the invariant auditor: for each shard in index order it
// recomputes what the load table *should* read — the sum of demands of
// admitted, tracked periods — and repairs any drift in place, emitting
// EventAudit with the total magnitude. With wake set, a repaired online
// shard re-runs its wake scan against the corrected ledger (suppressed
// at Quiesce, where the run is over).
func (d *DomainSet) runAudit(wake bool) {
	d.rec.stats.AuditRuns++
	for si, s := range d.shards {
		var want [pp.NumResources]pp.Bytes
		for _, per := range s.active {
			if !per.admitted || per.untracked {
				continue
			}
			for _, dm := range per.demands {
				want[dm.Resource] += dm.WorkingSet
			}
		}
		var drift pp.Bytes
		for r := 0; r < pp.NumResources; r++ {
			res := pp.Resource(r)
			got := s.rm.usage[res]
			if got == want[res] {
				continue
			}
			delta := got - want[res]
			if delta < 0 {
				delta = -delta
			}
			drift += delta
			s.rm.usage[res] = want[res]
			if want[res] > s.rm.peak[res] {
				s.rm.peak[res] = want[res]
			}
			d.rec.stats.AuditRepairs++
		}
		if drift == 0 {
			continue
		}
		d.emitRecovery(EventAudit, si, DomainFaultLedger, drift)
		if wake && !s.offline {
			s.wakeWaitlist()
		}
	}
}

// emitRecovery publishes a shard-level fault/recovery event: Proc -1,
// Phase the fault discriminator, Demand.WorkingSet the magnitude, Load
// the shard's LLC load at emission.
func (d *DomainSet) emitRecovery(kind EventKind, di, fault int, magnitude pp.Bytes) {
	if len(d.sinks) == 0 {
		return
	}
	s := d.shards[di]
	e := Event{
		At: d.now(), Kind: kind, Proc: -1, Phase: fault,
		Demand: pp.Demand{Resource: pp.ResourceLLC, WorkingSet: magnitude},
		Load:   s.rm.Usage(pp.ResourceLLC), Domain: di,
	}
	for _, sink := range d.sinks {
		sink.Record(e)
	}
}
