package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"rdasched/internal/machine"
	"rdasched/internal/pp"
	"rdasched/internal/sim"
)

// Recovery invariants, fuzzed. A DomainSet with the fault/recovery
// subsystem enabled must uphold, for every workload, domain count, and
// recovery mode, under a seeded schedule of capacity loss + ledger
// corruption + shard crash (and sometimes a heal):
//
//  1. a period is registered in exactly one domain at any instant —
//     evacuation re-homes it, never duplicates it;
//  2. wait clocks never reset: a wake's or fallback's Wait spans back to
//     the period's begin, through any number of evacuations;
//  3. the run completes: begins == ends + reclaims — a crash may strand
//     work temporarily, never permanently (the retry ladder, admission
//     deadline, and leases bound every wait);
//  4. the end-of-run ledger is exact: after Quiesce every shard reads
//     zero usage with drained registries and no stale routing entries,
//     no matter what corruption was injected — and every injected
//     corruption was repaired by the auditor (AuditRepairs >= 1).
//
// Unlike the domain fuzz sink, the per-event check deliberately does NOT
// reconcile shard load against the admitted charges: between an injected
// ledger corruption and the audit that repairs it, that invariant is
// *supposed* to be broken. The auditor is the repair mechanism, and the
// end-of-run assertions prove it ran to completion.

// recoveryInvariantSink checks invariants 1–2 synchronously at every
// decision.
type recoveryInvariantSink struct {
	d       *DomainSet
	beginAt map[pp.ID]sim.Time
	err     error
}

func (k *recoveryInvariantSink) fail(format string, args ...any) {
	if k.err == nil {
		k.err = fmt.Errorf(format, args...)
	}
}

func (k *recoveryInvariantSink) Record(e Event) {
	if k.err != nil {
		return
	}
	seen := make(map[periodKey]int, len(k.d.domainOf))
	for i, s := range k.d.shards {
		for key := range s.active {
			if prev, dup := seen[key]; dup {
				k.fail("proc %d phase %d registered in domains %d and %d at %v",
					key.procID, key.phaseIdx, prev, i, e.At)
				return
			}
			seen[key] = i
		}
	}
	switch e.Kind {
	case EventBegin:
		k.beginAt[e.ID] = e.At
	case EventWake, EventFallback:
		if begin, ok := k.beginAt[e.ID]; ok {
			if want := e.At.DurationSince(begin); e.Wait != want {
				k.fail("period %d %v Wait %v != %v since its begin — wait clock reset",
					e.ID, e.Kind, e.Wait, want)
			}
		}
	}
}

// checkRecoveryInvariants drives one random workload through a fault-
// injected DomainSet of 2–4 domains and returns the first violated
// invariant.
func checkRecoveryInvariants(seed uint64, domains, modeIdx uint8) error {
	n := 2 + int(domains)%3
	mode := RecoveryMode(int(modeIdx) % 3)
	w := randomWorkload(seed, 8)

	cfg := machine.DefaultConfig()
	cfg.MaxSimTime = 600 * sim.Second
	d, err := NewDomainSet(StrictPolicy{}, cfg.LLCCapacity, DomainConfig{Domains: n, StealAge: sim.Millisecond})
	if err != nil {
		return fmt.Errorf("seed %d domains %d: NewDomainSet: %v", seed, n, err)
	}
	m := machine.New(cfg, d)
	d.SetWaker(m)
	d.SetClock(m.Now)
	d.SetTimer(m.Engine())
	// The admission deadline is the stall baseline's only way out for a
	// dead shard's waiters; the lease (half the seeds) exercises reclaim
	// across evacuated actives.
	d.SetAdmissionDeadline(30 * sim.Millisecond)
	if seed&1 == 0 {
		d.SetLease(50 * sim.Millisecond)
	}
	if err := d.EnableRecovery(RecoveryConfig{
		Mode:          mode,
		MaxRetries:    3,
		RetryBase:     500 * sim.Microsecond,
		AuditInterval: 2 * sim.Millisecond,
	}); err != nil {
		return fmt.Errorf("seed %d: EnableRecovery: %v", seed, err)
	}

	// The seeded fault schedule: a positive ledger skew, sometimes a
	// partial capacity loss, then a crash of another shard — healed for a
	// third of the seeds. Positive skew only: a negative skew clamps at
	// zero and can coincidentally re-align as the shard drains, making
	// "every corruption is repaired" unassertable.
	crashTarget := int(seed % uint64(n))
	skewTarget := (crashTarget + 1) % n
	crashAt := sim.Duration(1+seed%10) * 500 * sim.Microsecond
	skew := pp.Bytes(1+(seed>>4)%8) * pp.MiB
	m.Engine().After(crashAt/2, func() {
		if err := d.InjectLedgerCorruption(skewTarget, skew); err != nil {
			panic(err)
		}
	})
	if (seed>>2)&1 == 1 {
		m.Engine().After(crashAt/4+1, func() {
			if err := d.InjectCapacityLoss(skewTarget, 0.3); err != nil {
				panic(err)
			}
		})
	}
	m.Engine().After(crashAt, func() {
		if err := d.InjectCrash(crashTarget); err != nil {
			panic(err)
		}
	})
	if seed%3 == 0 {
		m.Engine().After(2*crashAt, func() {
			if err := d.RecoverDomain(crashTarget); err != nil {
				panic(err)
			}
		})
	}

	sink := &recoveryInvariantSink{d: d, beginAt: make(map[pp.ID]sim.Time)}
	d.AddSink(sink)
	if err := m.AddWorkload(w); err != nil {
		return fmt.Errorf("seed %d: invalid workload: %v", seed, err)
	}
	if _, err := m.Run(); err != nil {
		return fmt.Errorf("seed %d domains %d mode %s: %v", seed, n, mode, err)
	}
	if sink.err != nil {
		return fmt.Errorf("seed %d domains %d mode %s: %v", seed, n, mode, sink.err)
	}
	st := d.Stats()
	if st.Begins != st.Ends+st.Reclaimed {
		return fmt.Errorf("seed %d domains %d mode %s: %d begins vs %d ends + %d reclaims",
			seed, n, mode, st.Begins, st.Ends, st.Reclaimed)
	}
	if d.Quiesce() != 0 {
		return fmt.Errorf("seed %d mode %s: Quiesce found registered periods after a drained run", seed, mode)
	}
	rst := d.RecoveryStats()
	if rst.Corruptions > 0 && rst.AuditRepairs == 0 {
		return fmt.Errorf("seed %d mode %s: %d corruptions injected, none repaired",
			seed, mode, rst.Corruptions)
	}
	for i := 0; i < d.NumDomains(); i++ {
		s := d.Shard(i)
		if u := s.Resources().Usage(pp.ResourceLLC); u != 0 {
			return fmt.Errorf("seed %d mode %s domain %d: leftover load %v", seed, mode, i, u)
		}
		if s.Waitlisted() != 0 || s.ActivePeriods() != 0 {
			return fmt.Errorf("seed %d mode %s domain %d: registry not drained", seed, mode, i)
		}
	}
	if len(d.domainOf) != 0 {
		return fmt.Errorf("seed %d mode %s: %d stale routing entries after drain",
			seed, mode, len(d.domainOf))
	}
	return nil
}

// TestFuzzRecoveryInvariants is the quick.Check sweep;
// FuzzRecoveryInvariants explores further from the committed corpus
// under `make fuzz` / CI.
func TestFuzzRecoveryInvariants(t *testing.T) {
	f := func(seed uint64, domains, modeIdx uint8) bool {
		if err := checkRecoveryInvariants(seed, domains, modeIdx); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// FuzzRecoveryInvariants is the native fuzz entry point; the committed
// corpus seeds every recovery mode × domain count pairing plus boundary
// seeds.
func FuzzRecoveryInvariants(f *testing.F) {
	for _, c := range [][3]uint64{
		{0, 0, 0}, {1, 1, 1}, {2, 2, 2}, {3, 0, 1},
		{256, 1, 2}, {512, 2, 0}, {768, 0, 2}, {1337, 1, 0}, {^uint64(0), 2, 1},
	} {
		f.Add(c[0], uint8(c[1]), uint8(c[2]))
	}
	f.Fuzz(func(t *testing.T, seed uint64, domains, modeIdx uint8) {
		if err := checkRecoveryInvariants(seed, domains, modeIdx); err != nil {
			t.Error(err)
		}
	})
}
