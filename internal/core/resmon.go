package core

import (
	"fmt"

	"rdasched/internal/pp"
)

// ResourceMonitor is the resource monitor of §3.2: it "maintains a
// real-time estimation by saving the resource demands of all active
// progress periods" in a table with one entry per tracked resource, kept
// current as periods begin and end.
type ResourceMonitor struct {
	capacity [pp.NumResources]pp.Bytes
	usage    [pp.NumResources]pp.Bytes
	peak     [pp.NumResources]pp.Bytes
}

// NewResourceMonitor returns a monitor with the given LLC capacity and
// unlimited other resources (a zero capacity entry is treated as
// untracked).
func NewResourceMonitor(llc pp.Bytes) *ResourceMonitor {
	rm := &ResourceMonitor{}
	rm.capacity[pp.ResourceLLC] = llc
	return rm
}

// SetCapacity configures a resource's maximum.
func (rm *ResourceMonitor) SetCapacity(r pp.Resource, c pp.Bytes) {
	if !r.Valid() {
		panic(fmt.Sprintf("core: set capacity of invalid resource %d", int(r)))
	}
	rm.capacity[r] = c
}

// Capacity returns a resource's maximum.
func (rm *ResourceMonitor) Capacity(r pp.Resource) pp.Bytes { return rm.capacity[r] }

// Usage returns the current load estimation for a resource.
func (rm *ResourceMonitor) Usage(r pp.Resource) pp.Bytes { return rm.usage[r] }

// Peak returns the maximum load ever recorded for a resource.
func (rm *ResourceMonitor) Peak(r pp.Resource) pp.Bytes { return rm.peak[r] }

// Remaining returns capacity - usage (may be negative when a policy
// allowed oversubscription).
func (rm *ResourceMonitor) Remaining(r pp.Resource) pp.Bytes {
	return rm.capacity[r] - rm.usage[r]
}

// Increment adds a period's demand to the load table.
func (rm *ResourceMonitor) Increment(d pp.Demand) {
	if err := d.Validate(); err != nil {
		panic(err)
	}
	rm.usage[d.Resource] += d.WorkingSet
	if rm.usage[d.Resource] > rm.peak[d.Resource] {
		rm.peak[d.Resource] = rm.usage[d.Resource]
	}
}

// Decrement removes a completed period's demand. It panics if the load
// would go negative — that always indicates an accounting bug (an End
// without a Begin), never a legitimate runtime state.
func (rm *ResourceMonitor) Decrement(d pp.Demand) {
	if err := d.Validate(); err != nil {
		panic(err)
	}
	if rm.usage[d.Resource] < d.WorkingSet {
		panic(fmt.Sprintf("core: load underflow on %s: %s - %s",
			d.Resource, rm.usage[d.Resource], d.WorkingSet))
	}
	rm.usage[d.Resource] -= d.WorkingSet
}

func (rm *ResourceMonitor) String() string {
	return fmt.Sprintf("LLC %s/%s", rm.usage[pp.ResourceLLC], rm.capacity[pp.ResourceLLC])
}
