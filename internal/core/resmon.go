package core

import (
	"fmt"

	"rdasched/internal/pp"
)

// ResourceMonitor is the resource monitor of §3.2: it "maintains a
// real-time estimation by saving the resource demands of all active
// progress periods" in a table with one entry per tracked resource, kept
// current as periods begin and end.
type ResourceMonitor struct {
	capacity [pp.NumResources]pp.Bytes
	usage    [pp.NumResources]pp.Bytes
	peak     [pp.NumResources]pp.Bytes
}

// NewResourceMonitor returns a monitor with the given LLC capacity and
// unlimited other resources (a zero capacity entry is treated as
// untracked).
func NewResourceMonitor(llc pp.Bytes) *ResourceMonitor {
	rm := &ResourceMonitor{}
	rm.capacity[pp.ResourceLLC] = llc
	return rm
}

// SetCapacity configures a resource's maximum.
func (rm *ResourceMonitor) SetCapacity(r pp.Resource, c pp.Bytes) {
	if !r.Valid() {
		panic(fmt.Sprintf("core: set capacity of invalid resource %d", int(r)))
	}
	rm.capacity[r] = c
}

// Capacity returns a resource's maximum.
func (rm *ResourceMonitor) Capacity(r pp.Resource) pp.Bytes { return rm.capacity[r] }

// Usage returns the current load estimation for a resource.
func (rm *ResourceMonitor) Usage(r pp.Resource) pp.Bytes { return rm.usage[r] }

// Peak returns the maximum load ever recorded for a resource.
func (rm *ResourceMonitor) Peak(r pp.Resource) pp.Bytes { return rm.peak[r] }

// Remaining returns capacity - usage (may be negative when a policy
// allowed oversubscription).
func (rm *ResourceMonitor) Remaining(r pp.Resource) pp.Bytes {
	return rm.capacity[r] - rm.usage[r]
}

// Increment adds a period's demand to the load table. A malformed demand
// returns ErrInvalidDemand and leaves the table untouched: demands arrive
// from applications, so rejecting them is admission policy, not a crash.
func (rm *ResourceMonitor) Increment(d pp.Demand) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidDemand, err)
	}
	rm.usage[d.Resource] += d.WorkingSet
	if rm.usage[d.Resource] > rm.peak[d.Resource] {
		rm.peak[d.Resource] = rm.usage[d.Resource]
	}
	return nil
}

// Decrement removes a completed period's demand. A decrement below zero
// load returns ErrLoadUnderflow with the table untouched; the scheduler's
// internal call sites turn that into a panic (an End without a Begin on
// the scheduler's own paths is an accounting bug), while external callers
// replaying untrusted traces can handle it.
func (rm *ResourceMonitor) Decrement(d pp.Demand) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidDemand, err)
	}
	if rm.usage[d.Resource] < d.WorkingSet {
		return fmt.Errorf("%w: %s: %s - %s", ErrLoadUnderflow,
			d.Resource, rm.usage[d.Resource], d.WorkingSet)
	}
	rm.usage[d.Resource] -= d.WorkingSet
	return nil
}

func (rm *ResourceMonitor) String() string {
	return fmt.Sprintf("LLC %s/%s", rm.usage[pp.ResourceLLC], rm.capacity[pp.ResourceLLC])
}
