package core

import (
	"testing"

	"rdasched/internal/pp"
	"rdasched/internal/sim"
	"rdasched/internal/telemetry"
)

func mkEvent(i int) Event {
	return Event{
		At: sim.Time(i) * sim.Time(sim.Millisecond), Kind: EventAdmit,
		ID: pp.ID(i), Proc: i, Phase: 0,
		Demand: pp.Demand{Resource: pp.ResourceLLC, WorkingSet: pp.MB(1), Reuse: pp.ReuseHigh},
	}
}

// TestEventRingWraparound drives the ring sink through fill, wrap, and
// drain, asserting oldest-first order and the drop count.
func TestEventRingWraparound(t *testing.T) {
	r := NewEventRing(4)
	for i := 0; i < 10; i++ {
		r.Record(mkEvent(i))
	}
	if got := r.Drops(); got != 6 {
		t.Fatalf("drops = %d, want 6", got)
	}
	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("len = %d, want 4", len(events))
	}
	for i, e := range events {
		if want := pp.ID(6 + i); e.ID != want {
			t.Fatalf("events[%d].ID = %d, want %d (oldest first)", i, e.ID, want)
		}
	}
	// A partially filled ring returns only what it holds, in order.
	r2 := NewEventRing(8)
	for i := 0; i < 3; i++ {
		r2.Record(mkEvent(i))
	}
	if got := len(r2.Events()); got != 3 {
		t.Fatalf("partial ring len = %d, want 3", got)
	}
	if r2.Drops() != 0 {
		t.Fatalf("partial ring drops = %d, want 0", r2.Drops())
	}
}

// TestEnableLogReEnableResets is the regression test for the stale-ring
// bug: re-enabling after a wrapped ring must start from a clean ring —
// no rotated events, no inherited drop count, position zero.
func TestEnableLogReEnableResets(t *testing.T) {
	s := New(StrictPolicy{}, pp.MB(15))
	s.EnableLog(4)
	for i := 0; i < 9; i++ {
		s.emit(EventBegin, nil, periodKey{procID: i}, pp.Demand{
			Resource: pp.ResourceLLC, WorkingSet: pp.MB(1), Reuse: pp.ReuseHigh})
	}
	if _, dropped := s.Events(); dropped != 5 {
		t.Fatalf("precondition: dropped = %d, want 5 (wrapped ring)", dropped)
	}

	s.EnableLog(4) // re-enable: must reset position and drop count
	events, dropped := s.Events()
	if len(events) != 0 || dropped != 0 {
		t.Fatalf("after re-enable: %d events, %d dropped; want 0, 0", len(events), dropped)
	}
	for i := 0; i < 3; i++ {
		s.emit(EventBegin, nil, periodKey{procID: 100 + i}, pp.Demand{
			Resource: pp.ResourceLLC, WorkingSet: pp.MB(1), Reuse: pp.ReuseHigh})
	}
	events, dropped = s.Events()
	if len(events) != 3 || dropped != 0 {
		t.Fatalf("after re-enable + 3 events: %d events, %d dropped; want 3, 0", len(events), dropped)
	}
	for i, e := range events {
		if e.Proc != 100+i {
			t.Fatalf("events[%d].Proc = %d, want %d (stale ring rotation leaked)", i, e.Proc, 100+i)
		}
	}

	// Disable resets everything too: a later Events sees nothing.
	s.EnableLog(0)
	if events, dropped := s.Events(); len(events) != 0 || dropped != 0 {
		t.Fatalf("after disable: %d events, %d dropped; want 0, 0", len(events), dropped)
	}
}

// recordingSink collects every event it is handed.
type recordingSink struct {
	events []Event
}

func (r *recordingSink) Record(e Event) { r.events = append(r.events, e) }

// TestSinkFanOut subscribes an external sink alongside the ring and
// checks both see the same stream.
func TestSinkFanOut(t *testing.T) {
	s, m := build(t, StrictPolicy{})
	s.SetClock(m.Now)
	s.EnableLog(1024)
	var rec recordingSink
	s.AddSink(&rec)
	for i := 0; i < 4; i++ {
		if _, err := m.AddProcess(declaredProc("p", pp.MB(4), 1e7)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	ringEvents, dropped := s.Events()
	if dropped != 0 {
		t.Fatalf("dropped %d with a roomy ring", dropped)
	}
	if len(rec.events) == 0 || len(rec.events) != len(ringEvents) {
		t.Fatalf("sink saw %d events, ring %d", len(rec.events), len(ringEvents))
	}
	for i := range rec.events {
		if rec.events[i] != ringEvents[i] {
			t.Fatalf("event %d diverges between sinks:\n%v\n%v", i, rec.events[i], ringEvents[i])
		}
	}
	// Every period-opening event carries a nonzero admission ID.
	for _, e := range rec.events {
		if e.Kind == EventBegin && e.ID == 0 {
			t.Fatalf("begin event without period ID: %v", e)
		}
	}
}

// TestDisabledEmitZeroAllocs pins the disabled-path cost: with no sinks
// and no metrics registry, publishing a decision must allocate nothing.
func TestDisabledEmitZeroAllocs(t *testing.T) {
	s := New(StrictPolicy{}, pp.MB(15))
	key := periodKey{procID: 1, phaseIdx: 0}
	d := pp.Demand{Resource: pp.ResourceLLC, WorkingSet: pp.MB(1), Reuse: pp.ReuseHigh}
	allocs := testing.AllocsPerRun(1000, func() {
		s.emit(EventBegin, nil, key, d)
	})
	if allocs != 0 {
		t.Fatalf("disabled emit allocates %.1f per event, want 0", allocs)
	}
}

// TestSchedulerMetrics runs a contended mix with a registry bound and
// checks the sampled histograms and published counters line up with
// Stats.
func TestSchedulerMetrics(t *testing.T) {
	s, m := build(t, StrictPolicy{})
	s.SetClock(m.Now)
	reg := telemetry.NewRegistry()
	s.SetMetrics(reg)
	for i := 0; i < 6; i++ {
		if _, err := m.AddProcess(declaredProc("p", pp.MB(4), 1e7)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	s.PublishStats(reg)

	st := s.Stats()
	if got := reg.Counter(MetricBegins).Value(); got != st.Begins {
		t.Fatalf("%s = %d, want %d", MetricBegins, got, st.Begins)
	}
	if got := reg.Counter(MetricAdmitted).Value(); got != st.Admitted {
		t.Fatalf("%s = %d, want %d", MetricAdmitted, got, st.Admitted)
	}
	if got := reg.Counter(MetricDenied).Value(); got != st.Denied {
		t.Fatalf("%s = %d, want %d", MetricDenied, got, st.Denied)
	}

	waits := reg.Histogram(MetricWaitSeconds)
	if waits.Count() != st.Admitted {
		t.Fatalf("wait histogram count = %d, want one observation per admission (%d)",
			waits.Count(), st.Admitted)
	}
	if st.Denied > 0 && waits.Max() <= 0 {
		t.Fatal("denied periods waited, but wait histogram max is 0")
	}
	if waits.Max() > st.MaxWait.Seconds()+1e-12 {
		t.Fatalf("wait histogram max %v exceeds Stats.MaxWait %v", waits.Max(), st.MaxWait.Seconds())
	}
	periods := reg.Histogram(MetricPeriodSeconds)
	if periods.Count() != st.Ends {
		t.Fatalf("period histogram count = %d, want one per end (%d)", periods.Count(), st.Ends)
	}
	if periods.Min() <= 0 {
		t.Fatal("period length histogram has non-positive minimum")
	}
	occ := reg.Histogram(MetricOccupancyBytes)
	depth := reg.Histogram(MetricWaitlistDepth)
	if occ.Count() == 0 || occ.Count() != depth.Count() {
		t.Fatalf("occupancy/depth sampled %d/%d times", occ.Count(), depth.Count())
	}
	if st.Denied > 0 && depth.Max() == 0 {
		t.Fatal("waitlist depth never observed above zero despite denials")
	}
}
