// Package core implements the paper's contribution: the resource demand
// aware (RDA) scheduling extension of §3. It sits on top of the default
// scheduler (internal/machine's fluid fair-sharing model, standing in for
// Linux 4.6.0 CFS) and decides, at every progress-period boundary, whether
// the entering thread may run or must pause on a wait queue until other
// periods release enough of the shared last-level cache.
//
// The three components of Figure 2 map onto this package as follows:
//
//   - progress monitor  → Scheduler's period registry + waitlist
//   - resource monitor  → ResourceMonitor (per-resource load table)
//   - scheduling predicate → Policy + Scheduler.TrySchedule (Algorithm 1)
package core

import (
	"fmt"

	"rdasched/internal/pp"
)

// Policy is the reconfigurable scheduling policy of §3.3: it judges
// whether a progress period may start, given the space that would remain
// free after admitting it. outcome = remaining - demand, so a negative
// outcome means the resource would be oversubscribed by that many bytes.
type Policy interface {
	// Name identifies the policy in reports ("default", "strict",
	// "compromise").
	Name() string
	// Allows reports whether a period may run when admitting it leaves
	// `outcome` bytes free (negative = oversubscription) on a resource of
	// the given capacity.
	Allows(outcome, capacity pp.Bytes) bool
}

// StrictPolicy is RDA:Strict — "denies any process from running if the
// additional resource demand will put a hardware resource above maximum
// capacity". It maximizes resource efficiency at the cost of concurrency.
type StrictPolicy struct{}

// Name implements Policy.
func (StrictPolicy) Name() string { return "strict" }

// Allows implements Policy: the demand must fit entirely.
func (StrictPolicy) Allows(outcome, capacity pp.Bytes) bool { return outcome >= 0 }

// CompromisePolicy is RDA:Compromise — it admits a period as long as the
// resulting usage stays within Factor times the capacity, trading some
// cache efficiency for concurrency. The paper configures Factor = 2.
type CompromisePolicy struct {
	// Factor is the oversubscription factor x: usage may reach
	// x·capacity.
	Factor float64
}

// DefaultCompromiseFactor is the paper's configured oversubscription
// factor ("we have configured the oversubscription factor to be 2").
const DefaultCompromiseFactor = 2.0

// NewCompromise returns the policy with the paper's factor.
func NewCompromise() CompromisePolicy {
	return CompromisePolicy{Factor: DefaultCompromiseFactor}
}

// Name implements Policy.
func (p CompromisePolicy) Name() string { return "compromise" }

// Allows implements Policy: usage after admission (capacity - outcome)
// must not exceed Factor·capacity, i.e. outcome ≥ -(Factor-1)·capacity.
func (p CompromisePolicy) Allows(outcome, capacity pp.Bytes) bool {
	f := p.Factor
	if f < 1 {
		f = 1
	}
	slack := pp.Bytes(float64(capacity) * (f - 1))
	return outcome >= -slack
}

// AlwaysPolicy admits everything — it reduces RDA to the underlying
// default scheduler and serves as the baseline configuration in the
// experiments (and as an explicit opt-out for specific resources).
type AlwaysPolicy struct{}

// Name implements Policy.
func (AlwaysPolicy) Name() string { return "default" }

// Allows implements Policy.
func (AlwaysPolicy) Allows(outcome, capacity pp.Bytes) bool { return true }

// PolicyByName resolves the command-line names used by cmd/rdasched and
// cmd/experiments.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "strict":
		return StrictPolicy{}, nil
	case "compromise":
		return NewCompromise(), nil
	case "default", "always":
		return AlwaysPolicy{}, nil
	default:
		return nil, fmt.Errorf("core: unknown policy %q (want strict, compromise, or default)", name)
	}
}
