package core

import (
	"sort"

	"rdasched/internal/pp"
)

// Blocker snapshot: the causal half of the decision stream. An
// EventDeny says a period was waitlisted; it does not say *why*. The
// why is the set of periods holding load at denial time — Algorithm 1
// denied because their admitted working sets left too little space.
// Sinks that want to attribute wait time to those periods (the blame
// engine, internal/telemetry/blame) implement BlameSink; the scheduler
// hands them the resident set alongside every deny.
//
// The snapshot is taken from the registry, not reconstructed from the
// event stream, so it is exact even across paths the stream renders
// ambiguously (untracked fallback admissions, evacuations, steals).
// When no blame sink is subscribed the decision path pays one length
// check and allocates nothing; with one attached, the snapshot reuses
// a scratch buffer that only grows to the high-water resident count.

// Blocker is one resident period holding load at a denial: the period's
// admission ID, its owning process and phase, and its primary (LLC)
// demand — the weight fractional blame is split by.
type Blocker struct {
	ID     pp.ID
	Proc   int
	Phase  int
	Demand pp.Bytes
}

// BlameSink is an EventSink that additionally receives the blocker
// snapshot for every deny. RecordDeny is called synchronously right
// after the deny's Record, with the same Event; the blockers slice is
// owned by the scheduler and valid only during the call — sinks must
// copy what they keep. Blockers arrive sorted by admission ID.
type BlameSink interface {
	EventSink
	RecordDeny(e Event, blockers []Blocker)
}

// snapshotBlockers builds the sorted resident set — admitted, tracked
// periods, the ones whose load the denied period was judged against —
// and delivers it to every blame sink. Called from emit only when a
// blame sink is subscribed.
func (s *Scheduler) snapshotBlockers(e Event) {
	buf := s.blameBuf[:0]
	for _, per := range s.active {
		if !per.admitted || per.untracked {
			continue
		}
		buf = append(buf, Blocker{
			ID:     per.id,
			Proc:   per.key.procID,
			Phase:  per.key.phaseIdx,
			Demand: per.demands[0].WorkingSet,
		})
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i].ID < buf[j].ID })
	s.blameBuf = buf
	for _, bs := range s.blameSinks {
		bs.RecordDeny(e, buf)
	}
}
