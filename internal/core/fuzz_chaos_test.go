package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"rdasched/internal/faults"
	"rdasched/internal/machine"
	"rdasched/internal/pp"
	"rdasched/internal/sim"
)

// Chaos fuzzing: the graceful-degradation guarantees must hold for ANY
// workload mutated by ANY fault plan, not just the curated chaos
// experiment. A random workload is perturbed through internal/faults
// (misdeclared and oversized demands, leaked pp_ends, crashed threads,
// arrival bursts) and driven through the full machine+scheduler stack
// with the lease watchdog and bounded waiting enabled.

const (
	chaosLease    = 50 * sim.Millisecond
	chaosDeadline = 20 * sim.Millisecond
)

// checkChaosInvariants asserts the degradation contract for one faulted
// random workload:
//
//  1. the run terminates — no fault mix may stall the machine;
//  2. no period waits past the admission deadline;
//  3. every opened period is accounted for: begins = ends + reclaims
//     (after end-of-run Quiesce);
//  4. the resource monitor returns to zero load after reclamation, with
//     the registry and waitlist drained;
//  5. crashed threads only ever shrink the executed instruction count.
func checkChaosInvariants(seed uint64, polIdx, rateByte uint8) error {
	policies := []Policy{StrictPolicy{}, NewCompromise(), AlwaysPolicy{}}
	pol := policies[int(polIdx)%len(policies)]
	rate := float64(rateByte) / 255 // any rate in [0, 1]

	cfg := machine.DefaultConfig()
	cfg.MaxSimTime = 600 * sim.Second
	w := randomWorkload(seed, 6)
	plan := faults.Uniform(rate, cfg.LLCCapacity)
	w = plan.Apply(w, seed)

	s := New(pol, cfg.LLCCapacity)
	m := machine.New(cfg, s)
	s.SetWaker(m)
	s.SetClock(m.Now)
	s.SetTimer(m.Engine())
	s.SetLease(chaosLease)
	s.SetAdmissionDeadline(chaosDeadline)
	if err := m.AddWorkload(w); err != nil {
		return fmt.Errorf("seed %d rate %.2f: invalid faulted workload: %v", seed, rate, err)
	}
	res, err := m.Run()
	if err != nil {
		return fmt.Errorf("seed %d rate %.2f policy %s: %v", seed, rate, pol.Name(), err)
	}
	s.Quiesce()
	st := s.Stats()
	if st.MaxWait > chaosDeadline {
		return fmt.Errorf("seed %d rate %.2f: max wait %v exceeds the %v deadline", seed, rate, st.MaxWait, chaosDeadline)
	}
	if st.Begins != st.Ends+st.Reclaimed {
		return fmt.Errorf("seed %d rate %.2f: %d begins vs %d ends + %d reclaims",
			seed, rate, st.Begins, st.Ends, st.Reclaimed)
	}
	for r := 0; r < pp.NumResources; r++ {
		if u := s.Resources().Usage(pp.Resource(r)); u != 0 {
			return fmt.Errorf("seed %d rate %.2f: leftover %v load %v after Quiesce", seed, rate, pp.Resource(r), u)
		}
	}
	if s.Waitlisted() != 0 || s.ActivePeriods() != 0 {
		return fmt.Errorf("seed %d rate %.2f: registry not drained", seed, rate)
	}
	var want float64
	for _, spec := range w.Procs {
		want += float64(spec.Threads) * spec.Program.TotalInstr()
	}
	if res.Counters.Instructions > want+1 {
		return fmt.Errorf("seed %d rate %.2f: executed %v instructions, program total is %v",
			seed, rate, res.Counters.Instructions, want)
	}
	if res.Counters.Crashes == 0 && res.Counters.Instructions < want-1 {
		return fmt.Errorf("seed %d rate %.2f: executed %v of %v instructions with no crashes",
			seed, rate, res.Counters.Instructions, want)
	}
	return nil
}

// TestFuzzChaosInvariants is the quick.Check sweep; FuzzChaosInvariants
// explores further from the committed corpus under `make fuzz` / CI.
func TestFuzzChaosInvariants(t *testing.T) {
	f := func(seed uint64, polIdx, rate uint8) bool {
		if err := checkChaosInvariants(seed, polIdx, rate); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// FuzzChaosInvariants is the native fuzz entry point. The corpus seeds
// cover each policy at a low, medium, and full fault rate plus the
// boundary seeds.
func FuzzChaosInvariants(f *testing.F) {
	for _, c := range []struct {
		seed      uint64
		pol, rate uint8
	}{
		{0, 0, 0}, {1, 0, 13}, {2, 1, 77}, {3, 2, 38},
		{1337, 0, 255}, {^uint64(0), 1, 128},
	} {
		f.Add(c.seed, c.pol, c.rate)
	}
	f.Fuzz(func(t *testing.T, seed uint64, polIdx, rate uint8) {
		if err := checkChaosInvariants(seed, polIdx, rate); err != nil {
			t.Error(err)
		}
	})
}
