package core

import (
	"rdasched/internal/pp"
	"rdasched/internal/telemetry"
)

// Metrics integration: the scheduler can sample a telemetry.Registry on
// its decision path (SetMetrics) and publish its end-of-run counters
// into one (PublishStats). The two are deliberately split:
//
//   - Live sampling fills the distributions aggregates cannot recover —
//     wait-time, period-length, LLC-occupancy, and waitlist-depth
//     histograms, one observation per decision. It costs a few
//     histogram updates per decision and nothing when no registry is
//     bound.
//
//   - PublishStats copies the Stats counters (begins, admissions,
//     denials, reclaims, fallbacks, rejections, …) into a registry
//     once, at the end of a run. Counters keep Stats as their single
//     source of truth — the decision path never double-counts — while
//     still reaching the Prometheus/JSON expositions.
//
// Registries are single-goroutine; parallel replications each bind
// their own and the harness merges them in job-index order.

// Metric names exported by the scheduler.
const (
	// Histograms, sampled on the decision path (SetMetrics).
	MetricWaitSeconds    = "rda_wait_seconds"           // waitlist time per admission (0 for immediate admits)
	MetricPeriodSeconds  = "rda_period_seconds"         // admitted lifetime per ended/reclaimed period
	MetricOccupancyBytes = "rda_llc_occupancy_bytes"    // LLC load after each decision
	MetricWaitlistDepth  = "rda_waitlist_depth_periods" // waitlist length after each decision

	// Counters and gauges, published from Stats (PublishStats).
	MetricBegins         = "rda_periods_begun_total"
	MetricEnds           = "rda_periods_ended_total"
	MetricAdmitted       = "rda_periods_admitted_total"
	MetricDenied         = "rda_periods_denied_total"
	MetricWoken          = "rda_threads_woken_total"
	MetricSafeguards     = "rda_safeguard_admissions_total"
	MetricReclaimed      = "rda_leases_reclaimed_total"
	MetricReclaimedBytes = "rda_reclaimed_bytes_total"
	MetricFallbacks      = "rda_fallback_admissions_total"
	MetricRejected       = "rda_demands_rejected_total"
	MetricLateEnds       = "rda_late_ends_total"
	MetricMaxWaitSeconds = "rda_max_wait_seconds"
	MetricActivePeriods  = "rda_active_periods"
	MetricLLCLoadBytes   = "rda_llc_load_bytes"

	// Governor counters and gauges, published from GovernorStats when a
	// governor is attached (PublishStats).
	MetricGovernorLevel             = "rda_governor_level"                    // ladder position at publish time (0=normal 1=degraded 2=shedding)
	MetricGovernorDegradations      = "rda_governor_degradations_total"       // ladder steps toward shedding
	MetricGovernorRecoveries        = "rda_governor_recoveries_total"         // ladder steps back toward the base policy
	MetricGovernorStrikes           = "rda_governor_strikes_total"            // misdeclarations recorded against closed breakers
	MetricGovernorQuarantines       = "rda_governor_quarantines_total"        // breaker trips
	MetricGovernorQuarantinedAdmits = "rda_governor_quarantined_admits_total" // periods admitted as undeclared baseline
	MetricGovernorProbes            = "rda_governor_probes_total"             // half-open probes evaluated
	MetricGovernorRestores          = "rda_governor_restores_total"           // breakers closed after a clean probe
	MetricGovernorReservations      = "rda_governor_reservations_total"       // cascades blocked for an aged waiter
	MetricGovernorAgedWakes         = "rda_governor_aged_wakes_total"         // aged waiters admitted through their reservation
	MetricGovernorTightened         = "rda_governor_lease_tighten_total"      // outstanding leases re-armed to the tightened horizon

	// Domain counters and gauges, published by DomainSet.PublishStats
	// when two or more domains are configured (a single-domain set
	// publishes exactly what the unsharded scheduler does). The per-
	// domain gauges carry a "_<index>" suffix — the registry uses flat
	// Prometheus-style names, so the domain index is part of the name.
	MetricDomainPlacements = "rda_domain_placements_total"   // periods assigned by the demand-aware placer
	MetricDomainSteals     = "rda_domain_steals_total"       // aged waiters migrated cross-domain
	MetricDomainLoadBytes  = "rda_domain_load_bytes"       // + "_<idx>": end-of-run LLC load per domain
	MetricDomainPeakBytes  = "rda_domain_peak_bytes"       // + "_<idx>": peak LLC load per domain
	MetricDomainWaitlist   = "rda_domain_waitlist_periods" // + "_<idx>": end-of-run waitlist depth per domain
	MetricDomainAdmitted   = "rda_domain_admitted"         // + "_<idx>_total": periods admitted per domain (the index precedes _total so the counter keeps its conventional suffix)

	// Recovery counters and the time-to-recover histogram, published by
	// DomainSet.PublishStats when EnableRecovery was called
	// (domain_recovery.go).
	MetricRecoveryFailures       = "rda_recovery_domain_failures_total" // injected shard crashes
	MetricRecoveryCorruptions    = "rda_recovery_corruptions_total"     // injected ledger-corruption events
	MetricRecoveryEvacuations    = "rda_recovery_evacuations_total"     // periods moved off failed shards
	MetricRecoveryRetries        = "rda_recovery_retries_total"         // evacuation backoff ticks fired
	MetricRecoveryForcedMoves    = "rda_recovery_forced_moves_total"    // actives moved to a shard that could not fit them
	MetricRecoveryLadderFalls    = "rda_recovery_ladder_fallbacks_total" // stranded waiters handed to the admission ladder
	MetricRecoveryDropped        = "rda_recovery_dropped_total"          // periods degraded to untracked by RecoverDrop
	MetricRecoveryAuditRuns      = "rda_recovery_audit_runs_total"       // auditor passes over the shard set
	MetricRecoveryAuditRepairs   = "rda_recovery_audit_repairs_total"    // per-resource ledger drifts repaired
	MetricRecoveryReintegrations = "rda_recovery_reintegrations_total"   // shards reintegrated by RecoverDomain
	MetricRecoverySeconds        = "rda_recovery_time_seconds"           // crash-to-reintegration latency histogram
)

// schedMetrics holds pre-resolved instrument handles so the decision
// path never does a map lookup.
type schedMetrics struct {
	waitSeconds    *telemetry.Histogram
	periodSeconds  *telemetry.Histogram
	occupancyBytes *telemetry.Histogram
	waitlistDepth  *telemetry.Histogram
}

// SetMetrics binds a registry sampled on every scheduling decision;
// nil detaches it. Wait and period-length histograms need a bound
// Clock (SetClock) to be meaningful — without one every duration reads
// zero.
func (s *Scheduler) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		s.met = nil
		return
	}
	s.met = &schedMetrics{
		waitSeconds:    reg.Histogram(MetricWaitSeconds),
		periodSeconds:  reg.Histogram(MetricPeriodSeconds),
		occupancyBytes: reg.Histogram(MetricOccupancyBytes),
		waitlistDepth:  reg.Histogram(MetricWaitlistDepth),
	}
}

// observeMetrics samples the bound registry for one decision. Called
// only from emit, after the nil check.
func (s *Scheduler) observeMetrics(per *period, e Event) {
	m := s.met
	m.occupancyBytes.Observe(float64(e.Load))
	m.waitlistDepth.Observe(float64(s.waitlist.Len()))
	switch e.Kind {
	case EventAdmit, EventWake, EventFallback:
		m.waitSeconds.Observe(e.Wait.Seconds())
	case EventEnd, EventReclaim:
		if per != nil && s.clock != nil {
			m.periodSeconds.Observe(e.At.DurationSince(per.admittedAt).Seconds())
		}
	}
}

// PublishStats copies the activity counters and end-state gauges into
// reg. Call it once per run, after the run (and any Quiesce) finished;
// each call adds the full counter values, so publishing the same
// scheduler into the same registry twice double-counts.
func (s *Scheduler) PublishStats(reg *telemetry.Registry) {
	publishSchedStats(reg, s.stats, s.ActivePeriods(), s.rm.Usage(pp.ResourceLLC))
	if s.gov != nil {
		publishGovernorStats(reg, s.gov.stats, s.gov.level)
	}
}

// publishSchedStats writes the Stats counters and end-state gauges; it
// is shared by the unsharded scheduler and the DomainSet aggregate so
// both publish the same metric family the same way.
func publishSchedStats(reg *telemetry.Registry, st Stats, active int, load pp.Bytes) {
	reg.Counter(MetricBegins).Add(st.Begins)
	reg.Counter(MetricEnds).Add(st.Ends)
	reg.Counter(MetricAdmitted).Add(st.Admitted)
	reg.Counter(MetricDenied).Add(st.Denied)
	reg.Counter(MetricWoken).Add(st.Woken)
	reg.Counter(MetricSafeguards).Add(st.Safegrds)
	reg.Counter(MetricReclaimed).Add(st.Reclaimed)
	reg.Counter(MetricReclaimedBytes).Add(uint64(st.ReclaimedBytes))
	reg.Counter(MetricFallbacks).Add(st.Fallbacks)
	reg.Counter(MetricRejected).Add(st.Rejected)
	reg.Counter(MetricLateEnds).Add(st.LateEnds)
	reg.Gauge(MetricMaxWaitSeconds).Set(st.MaxWait.Seconds())
	reg.Gauge(MetricActivePeriods).Set(float64(active))
	reg.Gauge(MetricLLCLoadBytes).Set(float64(load))
}

// publishRecoveryStats writes the recovery counter family (the
// time-to-recover histogram is sampled live at each RecoverDomain).
func publishRecoveryStats(reg *telemetry.Registry, rs RecoveryStats) {
	reg.Counter(MetricRecoveryFailures).Add(rs.Failures)
	reg.Counter(MetricRecoveryCorruptions).Add(rs.Corruptions)
	reg.Counter(MetricRecoveryEvacuations).Add(rs.Evacuations)
	reg.Counter(MetricRecoveryRetries).Add(rs.EvacRetries)
	reg.Counter(MetricRecoveryForcedMoves).Add(rs.ForcedMoves)
	reg.Counter(MetricRecoveryLadderFalls).Add(rs.LadderFallbacks)
	reg.Counter(MetricRecoveryDropped).Add(rs.Dropped)
	reg.Counter(MetricRecoveryAuditRuns).Add(rs.AuditRuns)
	reg.Counter(MetricRecoveryAuditRepairs).Add(rs.AuditRepairs)
	reg.Counter(MetricRecoveryReintegrations).Add(rs.Reintegrations)
}

// publishGovernorStats writes the governor counter family; level is the
// ladder position gauge (the deepest shard's level for a DomainSet).
func publishGovernorStats(reg *telemetry.Registry, gs GovernorStats, level GovernorLevel) {
	reg.Gauge(MetricGovernorLevel).Set(float64(level))
	reg.Counter(MetricGovernorDegradations).Add(gs.Degradations)
	reg.Counter(MetricGovernorRecoveries).Add(gs.Recoveries)
	reg.Counter(MetricGovernorStrikes).Add(gs.Strikes)
	reg.Counter(MetricGovernorQuarantines).Add(gs.Quarantines)
	reg.Counter(MetricGovernorQuarantinedAdmits).Add(gs.QuarantinedAdmits)
	reg.Counter(MetricGovernorProbes).Add(gs.Probes)
	reg.Counter(MetricGovernorRestores).Add(gs.Restores)
	reg.Counter(MetricGovernorReservations).Add(gs.Reservations)
	reg.Counter(MetricGovernorAgedWakes).Add(gs.AgedWakes)
	reg.Counter(MetricGovernorTightened).Add(gs.Tightened)
}
