package core

import (
	"errors"
	"testing"

	"rdasched/internal/machine"
	"rdasched/internal/pp"
	"rdasched/internal/sim"
)

// These tests pin the export→import contract at the core layer, without
// the persist/perf machinery on top: halt a governed run mid-schedule,
// move the scheduler's exported state into a freshly built scheduler on
// the same machine, resume, and require the outcome byte-for-byte equal
// to a run that was never interrupted. The two scenarios are the ones
// with the most derived runtime state to lose: a breaker mid-probation
// (open window, pending probe) and a waitlist whose order rests on
// tickets preserved across re-denials (EnqueueAs).

// handOff halts the machine at killAt, exports the live scheduler's
// state, detaches it, and imports the state into a fresh scheduler
// configured by mk — the core-layer miniature of the perf revival
// protocol. It returns the replacement scheduler after the resumed run
// completes.
func handOff(t *testing.T, m *machine.Machine, s *Scheduler, killAt sim.Duration, atKill func(*Scheduler), mk func() *Scheduler) *Scheduler {
	t.Helper()
	eng := m.Engine()
	eng.After(killAt, eng.Halt)
	if _, err := m.Run(); !errors.Is(err, machine.ErrHalted) {
		t.Fatalf("halted run returned %v, want machine.ErrHalted", err)
	}
	atKill(s) // prove the kill landed mid-scenario, not after it resolved
	st := s.ExportState()
	s.Detach()
	s2 := mk()
	if err := s2.ImportState(st, m.ThreadByID); err != nil {
		t.Fatalf("import: %v", err)
	}
	m.SetGate(s2)
	eng.Resume()
	if _, err := m.Resume(); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	return s2
}

// wakeOrder extracts the EventWake process IDs from a decision log.
func wakeOrder(s *Scheduler) []int {
	events, _ := s.Events()
	var ids []int
	for _, e := range events {
		if e.Kind == EventWake {
			ids = append(ids, e.Proc)
		}
	}
	return ids
}

// TestStateHandoffMidProbationBreaker interrupts the quarantine
// lifecycle while the breaker is open and the probation window is still
// running: the imported scheduler must carry the open breaker, run the
// remaining probation phase quarantined, fire the half-open probe at the
// same phase, and end with the same cumulative governor ledger as the
// uninterrupted run.
func TestStateHandoffMidProbationBreaker(t *testing.T) {
	d := phaseDuration(t)
	lies := []bool{true, true, true, false, false, false}
	setup := func(t *testing.T) (*Scheduler, *machine.Machine, GovernorConfig) {
		t.Helper()
		s, m := buildRobust(t, StrictPolicy{}, 0, 0)
		cfg := quietGovernor()
		cfg.Strikes = 2
		cfg.Probation = d + d/2
		s.EnableGovernor(cfg)
		s.EnableLog(64)
		if _, err := m.AddProcess(multiPhaseProc("liar", lies)); err != nil {
			t.Fatal(err)
		}
		return s, m, cfg
	}

	sb, mb, _ := setup(t)
	if _, err := mb.Run(); err != nil {
		t.Fatal(err)
	}
	wantGov, wantStats := sb.GovernorStats(), sb.Stats()
	// Calibrate the kill from the baseline's own log: half a probation
	// window past the trip is strictly inside it, whatever the phase
	// timing works out to.
	events, _ := sb.Events()
	var tripAt sim.Duration = -1
	for _, e := range events {
		if e.Kind == EventGovernorQuarantine {
			tripAt = e.At.DurationSince(0)
			break
		}
	}
	if tripAt < 0 {
		t.Fatal("baseline never tripped the breaker")
	}

	s, m, cfg := setup(t)
	s2 := handOff(t, m, s, tripAt+cfg.Probation/2, func(live *Scheduler) {
		if bs := live.BreakerState(0, m.Now()); bs != BreakerOpen {
			t.Fatalf("breaker %v at the kill, want open mid-probation", bs)
		}
		if gs := live.GovernorStats(); gs.Probes != 0 {
			t.Fatalf("probe already fired before the kill (%+v)", gs)
		}
	}, func() *Scheduler {
		n := New(StrictPolicy{}, m.Config().LLCCapacity)
		n.SetWaker(m)
		n.SetTimer(m.Engine())
		n.SetClock(m.Now)
		n.EnableGovernor(cfg)
		n.EnableLog(64)
		return n
	})
	if gs := s2.GovernorStats(); gs != wantGov {
		t.Errorf("governor stats after handoff = %+v, want %+v", gs, wantGov)
	}
	if st := s2.Stats(); st != wantStats {
		t.Errorf("stats after handoff = %+v, want %+v", st, wantStats)
	}
	if bs := s2.BreakerState(0, m.Now()); bs != BreakerClosed {
		t.Errorf("breaker %v after the probe, want closed", bs)
	}
}

// TestStateHandoffPreservesWaitTicketOrder interrupts the waitlist-aging
// scenario between its two reservation probes: the aged 10 MB waiter has
// already been probed, re-denied, and re-enqueued under its original
// ticket (EnqueueAs), with a reservation pinning the queue. The imported
// scheduler must reproduce the uninterrupted run's wake order — the aged
// waiter strictly before the younger one that would otherwise fit — and
// its full wait clock.
func TestStateHandoffPreservesWaitTicketOrder(t *testing.T) {
	setup := func(t *testing.T) (*Scheduler, *machine.Machine, GovernorConfig) {
		t.Helper()
		s, m := buildRobust(t, StrictPolicy{}, 0, 0)
		cfg := quietGovernor()
		cfg.AgeThreshold = 1e-9
		s.EnableGovernor(cfg)
		s.EnableLog(64)
		for _, spec := range []struct {
			name  string
			wss   pp.Bytes
			instr float64
		}{
			{"hog", pp.MB(8), 1e8},
			{"big", pp.MB(10), 1e6},
			{"smallA", pp.MB(3), 4e7},
			{"smallB", pp.MB(3), 6e7},
			{"late", pp.MB(3), 1e6},
		} {
			if _, err := m.AddProcess(declaredProc(spec.name, spec.wss, spec.instr)); err != nil {
				t.Fatal(err)
			}
		}
		return s, m, cfg
	}

	sb, mb, _ := setup(t)
	if _, err := mb.Run(); err != nil {
		t.Fatal(err)
	}
	wantWakes, wantStats, wantGov := wakeOrder(sb), sb.Stats(), sb.GovernorStats()
	if len(wantWakes) != 2 {
		t.Fatalf("baseline woke %v, want big then late", wantWakes)
	}
	// Calibrate the kill between the two reservation probes: smallA's end
	// has probed and re-denied big (back on the queue under its t=0
	// ticket, reservation held), smallB's end has not yet.
	events, _ := sb.Events()
	var resAt []sim.Duration
	for _, e := range events {
		if e.Kind == EventGovernorReserve {
			resAt = append(resAt, e.At.DurationSince(0))
		}
	}
	if len(resAt) != 2 {
		t.Fatalf("baseline took %d reservations, want 2", len(resAt))
	}

	s, m, cfg := setup(t)
	s2 := handOff(t, m, s, (resAt[0]+resAt[1])/2, func(live *Scheduler) {
		if gs := live.GovernorStats(); gs.Reservations != 1 {
			t.Fatalf("reservations at the kill = %d, want exactly the first probe taken", gs.Reservations)
		}
		if n := live.Waitlisted(); n != 2 {
			t.Fatalf("%d waitlisted at the kill, want big (re-enqueued) and late", n)
		}
	}, func() *Scheduler {
		n := New(StrictPolicy{}, m.Config().LLCCapacity)
		n.SetWaker(m)
		n.SetTimer(m.Engine())
		n.SetClock(m.Now)
		n.EnableGovernor(cfg)
		n.EnableLog(64)
		return n
	})
	// The decision log spans both schedulers: wakes before the handoff
	// live in the detached one, the rest in the import.
	gotWakes := append(wakeOrder(s), wakeOrder(s2)...)
	if len(gotWakes) != len(wantWakes) {
		t.Fatalf("handoff run woke %v, baseline woke %v", gotWakes, wantWakes)
	}
	for i := range wantWakes {
		if gotWakes[i] != wantWakes[i] {
			t.Fatalf("wake order after handoff %v, want %v", gotWakes, wantWakes)
		}
	}
	if st := s2.Stats(); st != wantStats {
		t.Errorf("stats after handoff = %+v, want %+v", st, wantStats)
	}
	if gs := s2.GovernorStats(); gs != wantGov {
		t.Errorf("governor stats after handoff = %+v, want %+v", gs, wantGov)
	}
}
