package core

import (
	"errors"
	"testing"

	"rdasched/internal/machine"
	"rdasched/internal/pp"
	"rdasched/internal/sim"
)

// buildDomains wires a DomainSet and machine together like build does
// for the unsharded scheduler, with the full clock/timer binding the
// steal pass needs.
func buildDomains(t *testing.T, policy Policy, dcfg DomainConfig) (*DomainSet, *machine.Machine) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.WakeLatency = 0
	cfg.OverheadAPIInstr = 0
	cfg.OverheadKernelInstr = 0
	d := mustDomainSet(t, policy, cfg.LLCCapacity, dcfg)
	m := machine.New(cfg, d)
	d.SetWaker(m)
	d.SetClock(m.Now)
	d.SetTimer(m.Engine())
	return d, m
}

func mustDomainSet(t *testing.T, policy Policy, llc pp.Bytes, dcfg DomainConfig) *DomainSet {
	t.Helper()
	d, err := NewDomainSet(policy, llc, dcfg)
	if err != nil {
		t.Fatalf("NewDomainSet: %v", err)
	}
	return d
}

func TestSplitShare(t *testing.T) {
	for _, tc := range []struct {
		total pp.Bytes
		n     int
		want  []pp.Bytes
	}{
		{10, 2, []pp.Bytes{5, 5}},
		{11, 2, []pp.Bytes{6, 5}},
		{10, 3, []pp.Bytes{4, 3, 3}},
		{2, 4, []pp.Bytes{1, 1, 0, 0}},
	} {
		var sum pp.Bytes
		for i, want := range tc.want {
			got := splitShare(tc.total, i, tc.n)
			if got != want {
				t.Errorf("splitShare(%d, %d, %d) = %d, want %d", tc.total, i, tc.n, got, want)
			}
			sum += got
		}
		if sum != tc.total {
			t.Errorf("splitShare(%d, ·, %d) sums to %d", tc.total, tc.n, sum)
		}
	}
}

// TestDomainSingleMatchesUnsharded locks the Domains=1 aggregation
// values to the unsharded scheduler's: identical Stats (including
// MaxWait), zero placements and steals, and matching end-state gauges.
func TestDomainSingleMatchesUnsharded(t *testing.T) {
	s, ms := build(t, StrictPolicy{})
	s.SetClock(ms.Now) // buildDomains binds a clock; match it so MaxWait compares
	s.SetTimer(ms.Engine())
	d, md := buildDomains(t, StrictPolicy{}, DefaultDomainConfig(1))
	for i := 0; i < 10; i++ {
		if _, err := ms.AddProcess(declaredProc("p", pp.MB(4), 1e7)); err != nil {
			t.Fatal(err)
		}
		if _, err := md.AddProcess(declaredProc("p", pp.MB(4), 1e7)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ms.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := md.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := d.Stats(), s.Stats(); got != want {
		t.Errorf("single-domain stats %+v != unsharded %+v", got, want)
	}
	if got, want := d.Waitlisted(), s.Waitlisted(); got != want {
		t.Errorf("Waitlisted() = %d, want %d", got, want)
	}
	if got, want := d.ActivePeriods(), s.ActivePeriods(); got != want {
		t.Errorf("ActivePeriods() = %d, want %d", got, want)
	}
	ds := d.DomainStats()
	if ds.Placements != 0 || ds.Steals != 0 {
		t.Errorf("single-domain set made decisions: placements %d steals %d", ds.Placements, ds.Steals)
	}
	if ds.Domains != 1 || len(ds.PerDomain) != 1 {
		t.Fatalf("DomainStats shape: %+v", ds)
	}
	if ds.PerDomain[0].Capacity != ms.Config().LLCCapacity {
		t.Errorf("single domain capacity %v, want the whole LLC %v",
			ds.PerDomain[0].Capacity, ms.Config().LLCCapacity)
	}
}

// TestDomainAggregatesSumShards locks the multi-domain aggregation: the
// set-wide Stats/Waitlisted/ActivePeriods are the shard sums (MaxWait
// the shard max), and every counter the run produced is accounted to
// exactly one domain.
func TestDomainAggregatesSumShards(t *testing.T) {
	d, m := buildDomains(t, StrictPolicy{}, DefaultDomainConfig(3))
	for i := 0; i < 12; i++ {
		if _, err := m.AddProcess(declaredProc("p", pp.MB(3), 1e7)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	var want Stats
	for i := 0; i < d.NumDomains(); i++ {
		st := d.Shard(i).Stats()
		want.Begins += st.Begins
		want.Ends += st.Ends
		want.Admitted += st.Admitted
		want.Denied += st.Denied
		want.Woken += st.Woken
		want.Safegrds += st.Safegrds
		want.Reclaimed += st.Reclaimed
		want.ReclaimedBytes += st.ReclaimedBytes
		want.Fallbacks += st.Fallbacks
		want.Rejected += st.Rejected
		want.LateEnds += st.LateEnds
		if st.MaxWait > want.MaxWait {
			want.MaxWait = st.MaxWait
		}
	}
	if got := d.Stats(); got != want {
		t.Errorf("aggregate stats %+v != shard sum %+v", got, want)
	}
	st := d.Stats()
	if st.Begins != 12 || st.Ends != 12 {
		t.Fatalf("begins/ends = %d/%d, want 12/12", st.Begins, st.Ends)
	}
	if d.Waitlisted() != 0 || d.ActivePeriods() != 0 {
		t.Fatal("registry not empty after run")
	}
	for i := 0; i < d.NumDomains(); i++ {
		if u := d.Shard(i).Resources().Usage(pp.ResourceLLC); u != 0 {
			t.Errorf("domain %d load %v after drain, want 0", i, u)
		}
	}
	if len(d.domainOf) != 0 {
		t.Errorf("%d stale routing entries after run", len(d.domainOf))
	}
	if ds := d.DomainStats(); ds.Placements != 12 {
		t.Errorf("placements = %d, want 12 (every period placed once)", ds.Placements)
	}
}

// TestPlaceBestFit drives the placer directly: pack-tight among
// admitting domains, least-loaded fallback, lower index on ties.
func TestPlaceBestFit(t *testing.T) {
	d := mustDomainSet(t, StrictPolicy{}, pp.MB(16), DefaultDomainConfig(2)) // 8 MB per domain
	dm := func(mb float64) []pp.Demand {
		return []pp.Demand{{Resource: pp.ResourceLLC, WorkingSet: pp.MB(mb), Reuse: pp.ReuseHigh}}
	}
	occupy := func(i int, mb float64) {
		d.Shard(i).Resources().Increment(dm(mb)[0])
	}
	if got := d.place(dm(2)); got != 0 {
		t.Errorf("empty set: place(2MB) = %d, want 0 (tie breaks low)", got)
	}
	occupy(0, 5)
	if got := d.place(dm(2)); got != 0 {
		t.Errorf("place(2MB) = %d, want 0 (best fit packs the busier domain)", got)
	}
	if got := d.place(dm(4)); got != 1 {
		t.Errorf("place(4MB) = %d, want 1 (does not fit domain 0)", got)
	}
	occupy(1, 7)
	// 2 MB fits neither (5+2 ok... domain 0 admits), so first check a
	// demand nowhere admits: least-loaded fallback picks domain 0
	// (5/8 < 7/8).
	if got := d.place(dm(6)); got != 0 {
		t.Errorf("place(6MB) = %d, want 0 (least-loaded fallback)", got)
	}
}

// stealWatch records the begin/steal/wake trail of one proc's period.
type stealWatch struct {
	proc    int
	beginAt sim.Time
	steals  []Event
	wakes   []Event
}

func (w *stealWatch) Record(e Event) {
	if e.Proc != w.proc {
		return
	}
	switch e.Kind {
	case EventBegin:
		w.beginAt = e.At
	case EventSteal:
		w.steals = append(w.steals, e)
	case EventWake:
		w.wakes = append(w.wakes, e)
	}
}

// TestStealMigratesAgedWaiter builds the canonical steal scenario: both
// domains full, a waiter parked on one; the other domain drains first
// and the post-wake scan migrates the waiter to it. The migration must
// preserve the wait clock — the wake's Wait spans back to the original
// pp_begin, not to the steal.
func TestStealMigratesAgedWaiter(t *testing.T) {
	d, m := buildDomains(t, StrictPolicy{},
		DomainConfig{Domains: 2, StealAge: 1}) // age bar: one picosecond
	// 15 MB LLC → 7.5 MB per domain. Two 6 MB hogs fill one domain
	// each; the 6 MB waiter fits nowhere until a hog ends.
	if _, err := m.AddProcess(declaredProc("hog-long", pp.MB(6), 4e8)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(declaredProc("hog-short", pp.MB(6), 1e7)); err != nil {
		t.Fatal(err)
	}
	waiter, err := m.AddProcess(declaredProc("waiter", pp.MB(6), 1e7))
	if err != nil {
		t.Fatal(err)
	}
	watch := &stealWatch{proc: waiter.ID()}
	d.AddSink(watch)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	ds := d.DomainStats()
	if ds.Steals != 1 {
		t.Fatalf("steals = %d, want 1 (waiter migrated when the short hog drained)", ds.Steals)
	}
	if len(watch.steals) != 1 || len(watch.wakes) != 1 {
		t.Fatalf("event trail: %d steals, %d wakes, want 1 each", len(watch.steals), len(watch.wakes))
	}
	st, wk := watch.steals[0], watch.wakes[0]
	if st.Domain == 0 && wk.Domain == 0 {
		t.Error("steal landed on domain 0 — expected a cross-domain move to be visible")
	}
	if st.Domain != wk.Domain {
		t.Errorf("steal domain %d != wake domain %d", st.Domain, wk.Domain)
	}
	// The wait clock never resets: the wake's Wait measures from the
	// original begin, through the migration.
	if want := wk.At.DurationSince(watch.beginAt); wk.Wait != want {
		t.Errorf("wake Wait = %v, want full wait %v since begin", wk.Wait, want)
	}
	if got := d.Stats().MaxWait; got != wk.Wait {
		t.Errorf("MaxWait = %v, want the waiter's full wait %v", got, wk.Wait)
	}
	if d.Waitlisted() != 0 || d.ActivePeriods() != 0 {
		t.Fatal("registry not empty after run")
	}
}

// TestStealDisabled pins the DisableSteal escape hatch: the same
// scenario moves nothing, and the waiter is woken by its own domain
// when the long hog finally ends.
func TestStealDisabled(t *testing.T) {
	d, m := buildDomains(t, StrictPolicy{},
		DomainConfig{Domains: 2, DisableSteal: true})
	for _, spec := range []struct {
		name  string
		instr float64
	}{{"hog-long", 4e8}, {"hog-short", 1e7}, {"waiter", 1e7}} {
		if _, err := m.AddProcess(declaredProc(spec.name, pp.MB(6), spec.instr)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if ds := d.DomainStats(); ds.Steals != 0 {
		t.Fatalf("steals = %d with stealing disabled, want 0", ds.Steals)
	}
	if st := d.Stats(); st.Begins != 3 || st.Ends != 3 {
		t.Fatalf("begins/ends = %d/%d, want 3/3", st.Begins, st.Ends)
	}
}

// TestDomainConfigValidation pins the constructor contract: bad
// configurations return ErrInvalidDomainConfig instead of deferring a
// panic to some later admission path.
func TestDomainConfigValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  DomainConfig
		ok   bool
	}{
		{"zero domains", DomainConfig{Domains: 0}, false},
		{"negative domains", DomainConfig{Domains: -3}, false},
		{"negative steal age", DomainConfig{Domains: 2, StealAge: -1}, false},
		{"one domain", DomainConfig{Domains: 1}, true},
		{"disable steal", DomainConfig{Domains: 2, DisableSteal: true}, true},
		{"explicit age", DomainConfig{Domains: 4, StealAge: sim.Millisecond}, true},
	} {
		d, err := NewDomainSet(StrictPolicy{}, pp.MB(15), tc.cfg)
		if tc.ok {
			if err != nil || d == nil {
				t.Errorf("%s: NewDomainSet failed: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: NewDomainSet accepted %+v", tc.name, tc.cfg)
			continue
		}
		if !errors.Is(err, ErrInvalidDomainConfig) {
			t.Errorf("%s: error %v does not wrap ErrInvalidDomainConfig", tc.name, err)
		}
	}
}

// TestDomainBoundsChecks pins the introspection accessors on empty and
// out-of-range inputs: nil, never a panic.
func TestDomainBoundsChecks(t *testing.T) {
	d := mustDomainSet(t, StrictPolicy{}, pp.MB(15), DefaultDomainConfig(2))
	if got := d.Shard(-1); got != nil {
		t.Errorf("Shard(-1) = %v, want nil", got)
	}
	if got := d.Shard(2); got != nil {
		t.Errorf("Shard(2) = %v, want nil", got)
	}
	if got := d.Shard(1); got == nil {
		t.Error("Shard(1) = nil for an in-range index")
	}
	if got := d.Policy(); got == nil {
		t.Error("Policy() = nil on a built set")
	}
	var empty DomainSet
	if got := empty.Policy(); got != nil {
		t.Errorf("zero-value Policy() = %v, want nil", got)
	}
	if got := empty.Shard(0); got != nil {
		t.Errorf("zero-value Shard(0) = %v, want nil", got)
	}
	if empty.Quarantined(0) {
		t.Error("zero-value Quarantined(0) = true")
	}
}

// TestStealSkipsOpenBreaker pins the governor-quarantine × steal
// interplay: a waitlisted period whose owner process has an open
// misdeclaration breaker on its shard must not be stolen into admission
// on another shard — the quarantine would be laundered through the
// migration.
func TestStealSkipsOpenBreaker(t *testing.T) {
	d, m := buildDomains(t, StrictPolicy{},
		DomainConfig{Domains: 2, StealAge: 1})
	d.EnableGovernor(DefaultGovernorConfig())
	if _, err := m.AddProcess(declaredProc("hog-long", pp.MB(6), 4e8)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(declaredProc("hog-short", pp.MB(6), 1e7)); err != nil {
		t.Fatal(err)
	}
	waiter, err := m.AddProcess(declaredProc("waiter", pp.MB(6), 1e7))
	if err != nil {
		t.Fatal(err)
	}
	// Trip the waiter's breaker on every shard after it is waitlisted
	// (t=0) but before the short hog drains (~5 ms): by the time the
	// steal pass runs, the owner is quarantined and the otherwise-certain
	// steal must not happen. (Tripping it before the run would
	// quarantine-admit the waiter at pp_begin and never exercise the
	// steal path at all.)
	m.Engine().After(sim.Millisecond, func() {
		for i := 0; i < d.NumDomains(); i++ {
			s := d.Shard(i)
			s.gov.breakers[waiter.ID()] = &breaker{state: BreakerOpen, openedAt: m.Now()}
		}
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if ds := d.DomainStats(); ds.Steals != 0 {
		t.Fatalf("steals = %d for a circuit-broken owner, want 0", ds.Steals)
	}
	if st := d.Stats(); st.Ends != 3 {
		t.Fatalf("ends = %d, want 3 (the waiter still finishes, on its own shard)", st.Ends)
	}
}

// TestDomainQuiesce checks end-of-run reclamation across shards: every
// registered period is reclaimed in domain order and the set reports
// zero residue afterwards.
func TestDomainQuiesce(t *testing.T) {
	d := mustDomainSet(t, StrictPolicy{}, pp.MB(16), DefaultDomainConfig(2))
	dm := pp.Demand{Resource: pp.ResourceLLC, WorkingSet: pp.MB(3), Reuse: pp.ReuseHigh}
	for i := 0; i < 4; i++ {
		key := periodKey{procID: i, phaseIdx: 0}
		di := d.place([]pp.Demand{dm})
		s := d.Shard(di)
		per := &period{key: key, demands: []pp.Demand{dm}}
		per.id = s.allocID()
		s.active[key] = per
		s.byID[per.id] = per
		d.domainOf[key] = di
		s.admit(per)
	}
	if got := d.ActivePeriods(); got != 4 {
		t.Fatalf("active = %d, want 4", got)
	}
	if got := d.Quiesce(); got != 4 {
		t.Fatalf("Quiesce reclaimed %d, want 4", got)
	}
	for i := 0; i < 2; i++ {
		if u := d.Shard(i).Resources().Usage(pp.ResourceLLC); u != 0 {
			t.Errorf("domain %d load %v after Quiesce, want 0", i, u)
		}
	}
}
