package core

import (
	"errors"
	"strings"
	"testing"

	"rdasched/internal/machine"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
	"rdasched/internal/sim"
)

// buildRobust wires scheduler and machine with the degradation layer
// bound: timer + clock from the machine, lease and deadline as given
// (zero disables either).
func buildRobust(t *testing.T, policy Policy, lease, deadline sim.Duration) (*Scheduler, *machine.Machine) {
	t.Helper()
	s, m := build(t, policy)
	s.SetTimer(m.Engine())
	s.SetClock(m.Now)
	s.SetLease(lease)
	s.SetAdmissionDeadline(deadline)
	return s, m
}

// leakyProc declares a phase whose pp_end never arrives.
func leakyProc(name string, wss pp.Bytes, instr float64) proc.Spec {
	p := declaredProc(name, wss, instr)
	p.Program[0].LeakEnd = true
	return p
}

func TestLeakedPeriodStallsWithoutLease(t *testing.T) {
	// The failure mode the lease exists for: a leaked 14 MB period pins
	// the LLC forever, so a second 14 MB period waits forever and the
	// machine stalls.
	_, m := buildRobust(t, StrictPolicy{}, 0, 0)
	if _, err := m.AddProcess(leakyProc("leaky", pp.MB(14), 1e6)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(declaredProc("victim", pp.MB(14), 1e6)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("run with a leaked period and no lease completed — expected a stall")
	}
}

func TestLeaseReclaimsLeakedPeriod(t *testing.T) {
	// Lease far longer than a legitimate period, so only the leak is
	// reclaimed: the victim waits until the watchdog fires.
	s, m := buildRobust(t, StrictPolicy{}, 50*sim.Millisecond, 0)
	if _, err := m.AddProcess(leakyProc("leaky", pp.MB(14), 1e6)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(declaredProc("victim", pp.MB(14), 1e6)); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("lease did not rescue the leaked period: %v", err)
	}
	if res.Counters.LeakedEnds != 1 {
		t.Fatalf("leaked ends = %d, want 1", res.Counters.LeakedEnds)
	}
	st := s.Stats()
	if st.Reclaimed != 1 {
		t.Fatalf("reclaimed = %d, want 1", st.Reclaimed)
	}
	if st.ReclaimedBytes != pp.MB(14) {
		t.Fatalf("reclaimed bytes = %v, want 14 MB", st.ReclaimedBytes)
	}
	if st.Begins != st.Ends+st.Reclaimed {
		t.Fatalf("begins %d != ends %d + reclaimed %d", st.Begins, st.Ends, st.Reclaimed)
	}
	if u := s.Resources().Usage(pp.ResourceLLC); u != 0 {
		t.Fatalf("load %v after run, want 0", u)
	}
	if s.Waitlisted() != 0 || s.ActivePeriods() != 0 {
		t.Fatal("registry not drained")
	}
}

func TestLeaseLateEndDropped(t *testing.T) {
	// A lease shorter than a legitimate period: the watchdog reclaims a
	// *live* period; its eventual pp_end must be recognized and dropped,
	// not double-decremented.
	s, m := buildRobust(t, StrictPolicy{}, 1*sim.Millisecond, 0)
	if _, err := m.AddProcess(declaredProc("slow", pp.MB(10), 2e7)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Reclaimed != 1 {
		t.Fatalf("reclaimed = %d, want 1 (lease shorter than the period)", st.Reclaimed)
	}
	if st.LateEnds != 1 {
		t.Fatalf("late ends = %d, want the live period's end recognized as late", st.LateEnds)
	}
	if st.Ends != 0 {
		t.Fatalf("ends = %d, want 0 (the only period was reclaimed)", st.Ends)
	}
	if u := s.Resources().Usage(pp.ResourceLLC); u != 0 {
		t.Fatalf("load %v after run, want 0", u)
	}
}

func TestLeaseReclaimsCrashedProcess(t *testing.T) {
	// A process whose threads die mid-period never calls pp_end; the
	// lease returns its load so a waiting period proceeds.
	s, m := buildRobust(t, StrictPolicy{}, 50*sim.Millisecond, 0)
	crasher := declaredProc("crasher", pp.MB(14), 1e6)
	crasher.Program[0].CrashFrac = 0.5
	crasher.Threads = 2
	if _, err := m.AddProcess(crasher); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(declaredProc("victim", pp.MB(14), 1e6)); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("lease did not rescue the crashed period: %v", err)
	}
	if res.Counters.Crashes != 2 {
		t.Fatalf("crashes = %d, want both threads", res.Counters.Crashes)
	}
	st := s.Stats()
	if st.Reclaimed != 1 {
		t.Fatalf("reclaimed = %d, want 1", st.Reclaimed)
	}
	if u := s.Resources().Usage(pp.ResourceLLC); u != 0 {
		t.Fatalf("load %v after run, want 0", u)
	}
}

// TestFallbackAdmissionOversized is the regression for unsatisfiable
// demands: a period whose declared working set no policy limit can ever
// admit alongside real load must still terminate, by degrading to
// stock-scheduler admission at the deadline, and the decision log must
// record the degradation.
func TestFallbackAdmissionOversized(t *testing.T) {
	cases := []struct {
		name     string
		policy   Policy
		declared pp.Bytes
	}{
		// > capacity under strict, > 2x capacity under compromise.
		{"strict", StrictPolicy{}, pp.MB(20)},
		{"compromise", NewCompromise(), pp.MB(35)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, m := buildRobust(t, tc.policy, 0, 2*sim.Millisecond)
			s.EnableLog(64)
			// The occupant leaks, so capacity never frees and the safeguard
			// can never fire: only fallback admission lets the victim run.
			if _, err := m.AddProcess(leakyProc("occupant", pp.MB(14), 1e6)); err != nil {
				t.Fatal(err)
			}
			big := declaredProc("big", pp.MB(4), 1e6)
			big.Program[0].DeclaredWSS = tc.declared
			if err := s.CheckDemand(big.Program[0].Demand()); err == nil {
				t.Fatalf("CheckDemand admitted an unsatisfiable %v demand", tc.declared)
			}
			if _, err := m.AddProcess(big); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				t.Fatalf("oversized demand starved: %v", err)
			}
			st := s.Stats()
			if st.Fallbacks != 1 {
				t.Fatalf("fallbacks = %d, want 1", st.Fallbacks)
			}
			if st.MaxWait < 2*sim.Millisecond {
				t.Fatalf("max wait %v shorter than the deadline", st.MaxWait)
			}
			// Only the leaked occupant's load remains (no lease in this
			// test): the fallback period must not have charged anything.
			if u := s.Resources().Usage(pp.ResourceLLC); u != pp.MB(14) {
				t.Fatalf("load %v after run, want the occupant's 14 MB only", u)
			}
			s.Quiesce()
			if u := s.Resources().Usage(pp.ResourceLLC); u != 0 {
				t.Fatalf("load %v after Quiesce, want 0", u)
			}
			events, _ := s.Events()
			var seen []string
			fallback := false
			for _, e := range events {
				seen = append(seen, e.String())
				if e.Kind == EventFallback && e.Proc == 1 {
					fallback = true
				}
			}
			if !fallback {
				t.Fatalf("decision log missing the fallback event:\n%s", strings.Join(seen, "\n"))
			}
		})
	}
}

func TestDeadlineCanceledOnNormalWake(t *testing.T) {
	// A waitlisted period admitted normally before the deadline must not
	// fall back later.
	s, m := buildRobust(t, StrictPolicy{}, 0, 50*sim.Millisecond)
	if _, err := m.AddProcess(declaredProc("big", pp.MB(14), 1e6)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(declaredProc("small", pp.MB(10), 1e6)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Fallbacks != 0 {
		t.Fatalf("fallbacks = %d after a normal wake", st.Fallbacks)
	}
	if st.Denied != 1 || st.Woken != 1 {
		t.Fatalf("denied/woken = %d/%d, want 1/1", st.Denied, st.Woken)
	}
	if st.MaxWait <= 0 {
		t.Fatal("max wait not recorded for the woken period")
	}
}

func TestQuiesceRestoresZeroLoad(t *testing.T) {
	// A leaked period with nobody waiting: the run completes with load
	// still registered; Quiesce is the end-of-run reclamation.
	s, m := buildRobust(t, StrictPolicy{}, 0, 0)
	if _, err := m.AddProcess(leakyProc("leaky", pp.MB(5), 1e6)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if u := s.Resources().Usage(pp.ResourceLLC); u != pp.MB(5) {
		t.Fatalf("pre-Quiesce load = %v, want the leaked 5 MB", u)
	}
	if n := s.Quiesce(); n != 1 {
		t.Fatalf("Quiesce reclaimed %d periods, want 1", n)
	}
	if u := s.Resources().Usage(pp.ResourceLLC); u != 0 {
		t.Fatalf("post-Quiesce load = %v, want 0", u)
	}
	st := s.Stats()
	if st.Begins != st.Ends+st.Reclaimed {
		t.Fatalf("begins %d != ends %d + reclaimed %d", st.Begins, st.Ends, st.Reclaimed)
	}
	if s.Quiesce() != 0 {
		t.Fatal("second Quiesce found periods")
	}
}

func TestDoubleBeginRejected(t *testing.T) {
	// Direct API misuse: the same thread opening the same period twice.
	s, m := build(t, StrictPolicy{})
	if _, err := m.AddProcess(declaredProc("p", pp.MB(1), 1e6)); err != nil {
		t.Fatal(err)
	}
	// Drive EnterPhase by hand through the machine's threads before Run:
	// not possible; instead exercise the path with a synthetic thread via
	// a tiny run plus a manual re-entry check on stats. The cheap proxy:
	// after a normal run, Rejected stays 0.
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Rejected != 0 {
		t.Fatalf("rejected = %d on a well-behaved run", st.Rejected)
	}
}

func TestInvalidDemandRunsUntracked(t *testing.T) {
	// A declared phase with a zero working set is an invalid demand: the
	// period must run untracked (stock scheduler) instead of panicking,
	// and its end must release nothing.
	s, m := build(t, StrictPolicy{})
	bad := declaredProc("bad", 0, 1e6)
	if _, err := m.AddProcess(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(declaredProc("good", pp.MB(4), 1e6)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	if st.Begins != 2 || st.Ends != 2 {
		t.Fatalf("begins/ends = %d/%d, want 2/2 (untracked period still begins and ends)", st.Begins, st.Ends)
	}
	if u := s.Resources().Usage(pp.ResourceLLC); u != 0 {
		t.Fatalf("load %v after run, want 0", u)
	}
	if pk := s.Resources().Peak(pp.ResourceLLC); pk != pp.MB(4) {
		t.Fatalf("peak %v, want only the valid period's 4 MB charged", pk)
	}
}

func TestCheckDemandSentinels(t *testing.T) {
	s := New(StrictPolicy{}, pp.MB(15))
	if err := s.CheckDemand(pp.Demand{Resource: pp.ResourceLLC, WorkingSet: pp.MB(1), Reuse: pp.ReuseLow}); err != nil {
		t.Fatalf("valid demand refused: %v", err)
	}
	err := s.CheckDemand(pp.Demand{Resource: pp.ResourceLLC, WorkingSet: 0, Reuse: pp.ReuseLow})
	if !errors.Is(err, ErrInvalidDemand) {
		t.Fatalf("zero working set: %v, want ErrInvalidDemand", err)
	}
	err = s.CheckDemand(pp.Demand{Resource: pp.ResourceLLC, WorkingSet: pp.MB(16), Reuse: pp.ReuseLow})
	if !errors.Is(err, ErrOversizedDemand) {
		t.Fatalf("16 MB on 15 MB strict: %v, want ErrOversizedDemand", err)
	}
	// Compromise tolerates up to 2x.
	c := New(NewCompromise(), pp.MB(15))
	if err := c.CheckDemand(pp.Demand{Resource: pp.ResourceLLC, WorkingSet: pp.MB(16), Reuse: pp.ReuseLow}); err != nil {
		t.Fatalf("compromise refused a 16 MB demand: %v", err)
	}
	err = c.CheckDemand(pp.Demand{Resource: pp.ResourceLLC, WorkingSet: pp.MB(31), Reuse: pp.ReuseLow})
	if !errors.Is(err, ErrOversizedDemand) {
		t.Fatalf("31 MB on 15 MB compromise: %v, want ErrOversizedDemand", err)
	}
}
