package core

import (
	"testing"

	"rdasched/internal/pp"
	"rdasched/internal/proc"
)

func TestSetReserveAffectsAdmission(t *testing.T) {
	s := New(StrictPolicy{}, pp.MB(15))
	d := pp.Demand{Resource: pp.ResourceLLC, WorkingSet: pp.MB(12), Reuse: pp.ReuseHigh}
	if run, _ := s.TrySchedule(d); !run {
		t.Fatal("12 MB denied on empty 15 MB cache")
	}
	s.SetReserve(pp.MB(5))
	if s.Reserve() != pp.MB(5) {
		t.Fatal("reserve not recorded")
	}
	// Now only 10 MB is schedulable... but the empty-load safeguard still
	// admits a lone oversized period.
	run, safeguard := s.TrySchedule(d)
	if !run || !safeguard {
		t.Fatalf("12 MB against 10 MB effective on idle cache: run=%v safeguard=%v, want safeguard admit", run, safeguard)
	}
	// With any load present, the reserve bites.
	s.rm.Increment(pp.Demand{Resource: pp.ResourceLLC, WorkingSet: pp.MB(1), Reuse: pp.ReuseLow})
	if run, _ := s.TrySchedule(d); run {
		t.Fatal("12 MB admitted past a 5 MB reserve with load present")
	}
	small := pp.Demand{Resource: pp.ResourceLLC, WorkingSet: pp.MB(8), Reuse: pp.ReuseHigh}
	if run, _ := s.TrySchedule(small); !run {
		t.Fatal("8 MB denied though 9 MB effective space remains")
	}
}

func TestSetReservePanicsOutOfRange(t *testing.T) {
	s := New(StrictPolicy{}, pp.MB(15))
	for _, b := range []pp.Bytes{-1, pp.MB(16)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("reserve %v accepted", b)
				}
			}()
			s.SetReserve(b)
		}()
	}
}

func TestPartitionedDemandCharged(t *testing.T) {
	// A phase with a partition declares only the partition to the
	// resource monitor, so over-LLC streamers no longer need the
	// safeguard and no longer starve the waitlist.
	s, m := build(t, StrictPolicy{})
	streamPh := proc.Phase{
		Name: "stream", Instr: 1e7, WSS: pp.MB(24), Reuse: pp.ReuseLow,
		AccessesPerInstr: 0.4, PrivateHitFrac: 0.875, StreamFrac: 1,
		FlopsPerInstr: 0.2, Declared: true, CachePartition: pp.MB(0.5),
	}
	for i := 0; i < 4; i++ {
		if _, err := m.AddProcess(proc.Spec{Name: "s", Threads: 1, Program: proc.Program{streamPh}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Denied != 0 {
		t.Fatalf("partitioned streamers denied: %+v", st)
	}
	if st.Safegrds != 0 {
		t.Fatalf("safeguard used despite partitions: %+v", st)
	}
	if peak := s.Resources().Peak(pp.ResourceLLC); peak != pp.MB(2) {
		t.Fatalf("peak load = %v, want 4 × 0.5 MB partitions", peak)
	}
}

func TestMultiResourceAdmission(t *testing.T) {
	// Periods declaring both LLC and bandwidth demands are gated on both
	// resources: with 14 GB/s of bandwidth capacity and 5 GB/s demands,
	// only two fit despite trivial LLC demands.
	s, m := build(t, StrictPolicy{})
	s.Resources().SetCapacity(pp.ResourceMemBW, pp.Bytes(14e9))
	ph := proc.Phase{
		Name: "stream", Instr: 1e7, WSS: pp.MB(0.5), Reuse: pp.ReuseLow,
		AccessesPerInstr: 0.5, PrivateHitFrac: 0.75, StreamFrac: 1,
		FlopsPerInstr: 0.3, Declared: true, BWDemand: 5e9,
	}
	for i := 0; i < 6; i++ {
		if _, err := m.AddProcess(proc.Spec{Name: "s", Threads: 1, Program: proc.Program{ph}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Denied == 0 {
		t.Fatal("bandwidth demands never denied anything")
	}
	if peak := s.Resources().Peak(pp.ResourceMemBW); peak > pp.Bytes(14e9) {
		t.Fatalf("bandwidth peak %v over capacity", peak)
	}
	if peak := s.Resources().Peak(pp.ResourceMemBW); peak != pp.Bytes(10e9) {
		t.Fatalf("bandwidth peak %v, want 2 × 5 GB/s", peak)
	}
	if s.Resources().Usage(pp.ResourceMemBW) != 0 {
		t.Fatal("bandwidth load not released")
	}
}

func TestDecisionLog(t *testing.T) {
	s, m := build(t, StrictPolicy{})
	s.SetClock(m.Now)
	s.EnableLog(1024)
	for i := 0; i < 6; i++ {
		if _, err := m.AddProcess(declaredProc("p", pp.MB(4), 1e7)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	events, dropped := s.Events()
	if dropped != 0 {
		t.Fatalf("dropped %d events with roomy ring", dropped)
	}
	counts := map[EventKind]int{}
	for _, e := range events {
		counts[e.Kind]++
		if e.Load < 0 {
			t.Fatal("negative load in event")
		}
		if e.String() == "" {
			t.Fatal("empty event string")
		}
	}
	if counts[EventBegin] != 6 || counts[EventEnd] != 6 {
		t.Fatalf("begin/end = %d/%d, want 6/6", counts[EventBegin], counts[EventEnd])
	}
	if counts[EventDeny] == 0 || counts[EventWake] == 0 {
		t.Fatalf("no deny/wake events for an over-capacity mix: %v", counts)
	}
	if counts[EventAdmit]+counts[EventWake] != 6 {
		t.Fatalf("admissions %d + wakes %d != 6 periods", counts[EventAdmit], counts[EventWake])
	}
	// Timestamps are monotone.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("event timestamps not monotone")
		}
	}
}

func TestDecisionLogRing(t *testing.T) {
	s, m := build(t, StrictPolicy{})
	s.EnableLog(4) // tiny ring: must drop and keep the most recent
	for i := 0; i < 8; i++ {
		if _, err := m.AddProcess(declaredProc("p", pp.MB(1), 1e6)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	events, dropped := s.Events()
	if len(events) != 4 {
		t.Fatalf("ring holds %d, want 4", len(events))
	}
	if dropped == 0 {
		t.Fatal("no drops despite overflow")
	}
	// The retained events are the last ones: all should be ends (the run
	// finishes with a burst of period completions).
	last := events[len(events)-1]
	if last.Kind != EventEnd {
		t.Fatalf("last event = %v, want end", last.Kind)
	}
}

func TestDecisionLogDisabled(t *testing.T) {
	s, m := build(t, StrictPolicy{})
	if _, err := m.AddProcess(declaredProc("p", pp.MB(1), 1e6)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if events, _ := s.Events(); len(events) != 0 {
		t.Fatal("events recorded while disabled")
	}
	s.EnableLog(8)
	s.EnableLog(0) // disable again
	if events, _ := s.Events(); len(events) != 0 {
		t.Fatal("disable did not clear")
	}
}
