package core

import (
	"fmt"

	"rdasched/internal/pp"
	"rdasched/internal/sim"
)

// Decision stream: every admission decision the scheduler makes is
// published as an Event to a set of subscribed sinks (the kernel
// prototype's equivalent would be a tracepoint). The bounded ring that
// backs EnableLog/Events is one such sink; the telemetry layer
// (internal/telemetry/trace) subscribes span collectors the same way.
// With no sinks attached and no metrics registry bound, the decision
// path costs one branch and allocates nothing.

// EventKind classifies a logged scheduling decision.
type EventKind int

const (
	// EventBegin: a period was opened (first thread arrived).
	EventBegin EventKind = iota
	// EventAdmit: the predicate admitted the period.
	EventAdmit
	// EventDeny: the predicate waitlisted the period.
	EventDeny
	// EventWake: a waitlisted period was admitted after a release.
	EventWake
	// EventEnd: the period completed and released its demands.
	EventEnd
	// EventReclaim: the lease watchdog reclaimed a leaked period's load.
	EventReclaim
	// EventFallback: a waitlisted period hit the admission deadline and
	// was degraded to stock-scheduler admission.
	EventFallback
	// EventReject: an invalid external demand (or double pp_begin) was
	// refused; the period runs untracked.
	EventReject
	// EventLateEnd: a pp_end arrived for a reclaimed or unknown period
	// and was dropped.
	EventLateEnd

	// Governor decisions (governor.go). Degrade/Recover are period-less
	// ladder transitions: Proc is -1 and Phase carries the level after
	// the step.
	//
	// EventGovernorDegrade: sustained pressure stepped the effective
	// policy one level toward shedding.
	EventGovernorDegrade
	// EventGovernorRecover: sustained calm stepped it one level back.
	EventGovernorRecover
	// EventGovernorQuarantine: a period from a process with an open
	// misdeclaration breaker was admitted as undeclared baseline.
	EventGovernorQuarantine
	// EventGovernorRestore: a clean half-open probe closed the breaker.
	EventGovernorRestore
	// EventGovernorReserve: an aged waiter still did not fit and took a
	// capacity reservation, blocking younger admissions this cascade.
	EventGovernorReserve

	// Domain decisions (domain.go), emitted only by a DomainSet with two
	// or more domains; Event.Domain carries the domain index.
	//
	// EventPlace: the demand-aware placer assigned a new period to a
	// domain (emitted before the period's begin, so ID is 0).
	EventPlace
	// EventSteal: an aged waitlisted period was migrated cross-domain
	// and admitted on the stealing domain.
	EventSteal

	// Domain fault and recovery decisions (domain_recovery.go). Shard-
	// level events carry Proc -1; Event.Domain is the shard the event is
	// about and Event.Demand.WorkingSet the magnitude (capacity lost,
	// ledger drift, capacity restored).
	//
	// EventDomainFail: an injected shard fault was applied; Phase carries
	// the fault discriminator (DomainFaultCapacity, DomainFaultCrash,
	// DomainFaultLedger).
	EventDomainFail
	// EventEvacuate: a period was migrated off a failed shard — admitted
	// on the destination when capacity allowed, or transferred to its
	// waitlist otherwise. Per-period: ID/Proc/Phase are the period's,
	// Domain is the destination shard.
	EventEvacuate
	// EventRecover: a quarantined or degraded shard was reintegrated and
	// the capacity split restored.
	EventRecover
	// EventAudit: the invariant auditor found a shard's ledger drifted
	// from the sum of its admitted periods' charges and repaired it.
	EventAudit
)

func (k EventKind) String() string {
	switch k {
	case EventBegin:
		return "begin"
	case EventAdmit:
		return "admit"
	case EventDeny:
		return "deny"
	case EventWake:
		return "wake"
	case EventEnd:
		return "end"
	case EventReclaim:
		return "reclaim"
	case EventFallback:
		return "fallback"
	case EventReject:
		return "reject"
	case EventLateEnd:
		return "late-end"
	case EventGovernorDegrade:
		return "gov-degrade"
	case EventGovernorRecover:
		return "gov-recover"
	case EventGovernorQuarantine:
		return "gov-quarantine"
	case EventGovernorRestore:
		return "gov-restore"
	case EventGovernorReserve:
		return "gov-reserve"
	case EventPlace:
		return "place"
	case EventSteal:
		return "steal"
	case EventDomainFail:
		return "domain-fail"
	case EventEvacuate:
		return "evacuate"
	case EventRecover:
		return "recover"
	case EventAudit:
		return "audit"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one published decision.
type Event struct {
	At   sim.Time
	Kind EventKind
	// ID is the period's admission ID (0 when the decision has no
	// registered period, e.g. a late end).
	ID    pp.ID
	Proc  int
	Phase int
	// Demand is the period's primary (LLC) demand.
	Demand pp.Demand
	// Load is the LLC load *after* the decision took effect.
	Load pp.Bytes
	// Wait is how long the period sat on the waitlist before this
	// decision; nonzero only on EventWake, EventFallback, and
	// EventGovernorReserve (and only with a bound Clock).
	Wait sim.Duration
	// Domain is the index of the LLC domain the decision happened on;
	// always 0 outside a multi-domain DomainSet.
	Domain int
}

func (e Event) String() string {
	return fmt.Sprintf("%v %-5s proc=%d phase=%d demand=%v load=%v",
		e.At, e.Kind, e.Proc, e.Phase, e.Demand.WorkingSet, e.Load)
}

// EventSink receives the scheduler's decision stream. Record is called
// synchronously on the decision path in virtual-time order; sinks must
// not call back into the scheduler.
type EventSink interface {
	Record(Event)
}

// Clock supplies timestamps for the decision log; machine.Machine's Now
// method satisfies it. Without a clock, events are stamped zero.
type Clock func() sim.Time

// SetClock binds the timestamp source (typically machine.Now).
func (s *Scheduler) SetClock(c Clock) { s.clock = c }

// AddSink subscribes a sink to the decision stream. Sinks that also
// implement BlameSink (blame.go) additionally receive the blocker
// snapshot on every deny.
func (s *Scheduler) AddSink(sink EventSink) {
	if sink == nil {
		return
	}
	s.sinks = append(s.sinks, sink)
	if bs, ok := sink.(BlameSink); ok {
		s.blameSinks = append(s.blameSinks, bs)
	}
}

// EventRing is a bounded ring sink keeping the most recent events. It
// backs the scheduler's EnableLog/Events debugging surface and doubles
// as the reference EventSink implementation.
type EventRing struct {
	buf   []Event
	start int
	drops uint64
}

// NewEventRing returns a ring keeping the last n events (n must be
// positive).
func NewEventRing(n int) *EventRing {
	if n <= 0 {
		panic(fmt.Sprintf("core: non-positive ring capacity %d", n))
	}
	return &EventRing{buf: make([]Event, 0, n)}
}

// Record implements EventSink: once the ring is full, each new event
// overwrites the oldest and counts as a drop.
func (r *EventRing) Record(e Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.start] = e
	r.start = (r.start + 1) % len(r.buf)
	r.drops++
}

// Events returns the recorded events oldest-first.
func (r *EventRing) Events() []Event {
	out := make([]Event, len(r.buf))
	n := copy(out, r.buf[r.start:])
	copy(out[n:], r.buf[:r.start])
	return out
}

// Drops returns how many events were overwritten after the ring filled.
func (r *EventRing) Drops() uint64 { return r.drops }

// EnableLog starts recording decisions into a fresh ring of the given
// capacity; n <= 0 disables the ring. Each call replaces the previous
// ring entirely — position and drop count start from zero, so events
// recorded before a re-enable can never leak into the new ring.
func (s *Scheduler) EnableLog(n int) {
	if s.ring != nil {
		for i, sink := range s.sinks {
			if sink == EventSink(s.ring) {
				s.sinks = append(s.sinks[:i], s.sinks[i+1:]...)
				break
			}
		}
		s.ring = nil
	}
	if n <= 0 {
		return
	}
	s.ring = NewEventRing(n)
	s.sinks = append(s.sinks, s.ring)
}

// Events returns the ring-recorded decisions in order (oldest first)
// and the number of events dropped once the ring filled. Without
// EnableLog it returns nothing.
func (s *Scheduler) Events() ([]Event, uint64) {
	if s.ring == nil {
		return nil, 0
	}
	return s.ring.Events(), s.ring.Drops()
}

// emit publishes one decision to every sink and samples the metrics
// registry. per is the decision's period when one is registered (nil
// for late ends). The early return keeps the disabled path free: no
// Event is built, nothing allocates.
func (s *Scheduler) emit(kind EventKind, per *period, key periodKey, d pp.Demand) {
	if len(s.sinks) == 0 && s.met == nil {
		return
	}
	var at sim.Time
	if s.clock != nil {
		at = s.clock()
	}
	e := Event{
		At: at, Kind: kind, Proc: key.procID, Phase: key.phaseIdx,
		Demand: d, Load: s.rm.Usage(pp.ResourceLLC),
		Domain: s.domainIdx,
	}
	if per != nil {
		e.ID = per.id
		if (kind == EventWake || kind == EventFallback || kind == EventGovernorReserve) && s.clock != nil {
			e.Wait = at.DurationSince(per.enqueuedAt)
		}
	}
	for _, sink := range s.sinks {
		sink.Record(e)
	}
	if kind == EventDeny && len(s.blameSinks) > 0 {
		s.snapshotBlockers(e)
	}
	if s.met != nil {
		s.observeMetrics(per, e)
	}
}
