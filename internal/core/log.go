package core

import (
	"fmt"

	"rdasched/internal/pp"
	"rdasched/internal/sim"
)

// Decision log: an optional bounded trace of every admission decision the
// scheduler makes, for debugging schedules and for the observability a
// production scheduler extension would expose (the kernel prototype's
// equivalent would be a tracepoint). Disabled by default; EnableLog turns
// it on with a fixed capacity ring.

// EventKind classifies a logged scheduling decision.
type EventKind int

const (
	// EventBegin: a period was opened (first thread arrived).
	EventBegin EventKind = iota
	// EventAdmit: the predicate admitted the period.
	EventAdmit
	// EventDeny: the predicate waitlisted the period.
	EventDeny
	// EventWake: a waitlisted period was admitted after a release.
	EventWake
	// EventEnd: the period completed and released its demands.
	EventEnd
	// EventReclaim: the lease watchdog reclaimed a leaked period's load.
	EventReclaim
	// EventFallback: a waitlisted period hit the admission deadline and
	// was degraded to stock-scheduler admission.
	EventFallback
	// EventReject: an invalid external demand (or double pp_begin) was
	// refused; the period runs untracked.
	EventReject
	// EventLateEnd: a pp_end arrived for a reclaimed or unknown period
	// and was dropped.
	EventLateEnd
)

func (k EventKind) String() string {
	switch k {
	case EventBegin:
		return "begin"
	case EventAdmit:
		return "admit"
	case EventDeny:
		return "deny"
	case EventWake:
		return "wake"
	case EventEnd:
		return "end"
	case EventReclaim:
		return "reclaim"
	case EventFallback:
		return "fallback"
	case EventReject:
		return "reject"
	case EventLateEnd:
		return "late-end"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one logged decision.
type Event struct {
	At    sim.Time
	Kind  EventKind
	Proc  int
	Phase int
	// Demand is the period's primary (LLC) demand.
	Demand pp.Demand
	// Load is the LLC load *after* the decision took effect.
	Load pp.Bytes
}

func (e Event) String() string {
	return fmt.Sprintf("%v %-5s proc=%d phase=%d demand=%v load=%v",
		e.At, e.Kind, e.Proc, e.Phase, e.Demand.WorkingSet, e.Load)
}

// Clock supplies timestamps for the decision log; machine.Machine's Now
// method satisfies it. Without a clock, events are stamped zero.
type Clock func() sim.Time

// SetClock binds the timestamp source (typically machine.Now).
func (s *Scheduler) SetClock(c Clock) { s.clock = c }

// EnableLog starts recording decisions into a ring of the given capacity;
// n <= 0 disables logging.
func (s *Scheduler) EnableLog(n int) {
	if n <= 0 {
		s.log = nil
		s.logCap = 0
		return
	}
	s.log = make([]Event, 0, n)
	s.logCap = n
	s.logDrop = 0
}

// Events returns the recorded decisions in order (oldest first) and the
// number of events dropped once the ring filled.
func (s *Scheduler) Events() ([]Event, uint64) {
	out := make([]Event, len(s.log))
	if s.logStart == 0 {
		copy(out, s.log)
	} else {
		n := copy(out, s.log[s.logStart:])
		copy(out[n:], s.log[:s.logStart])
	}
	return out, s.logDrop
}

func (s *Scheduler) logEvent(kind EventKind, key periodKey, d pp.Demand) {
	if s.logCap == 0 {
		return
	}
	var at sim.Time
	if s.clock != nil {
		at = s.clock()
	}
	e := Event{
		At: at, Kind: kind, Proc: key.procID, Phase: key.phaseIdx,
		Demand: d, Load: s.rm.Usage(pp.ResourceLLC),
	}
	if len(s.log) < s.logCap {
		s.log = append(s.log, e)
		return
	}
	// Ring: overwrite the oldest.
	s.log[s.logStart] = e
	s.logStart = (s.logStart + 1) % s.logCap
	s.logDrop++
}
