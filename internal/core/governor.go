package core

import (
	"fmt"
	"math"
	"sort"

	"rdasched/internal/pp"
	"rdasched/internal/proc"
	"rdasched/internal/sim"
)

// The adaptive admission governor closes the loop from observed behavior
// back to admission decisions. Algorithm 1 picks one fixed policy and
// trusts every declared demand; under misdeclared demands and arrival
// bursts a static predicate either over-admits (thrashing) or parks
// periods until the fallback deadline fires. The governor wraps the
// scheduling predicate with three cooperating mechanisms:
//
//   - Overload-aware policy degradation. The governor watches pressure
//     signals already sampled on the decision path — waitlist depth, a
//     windowed wait-time histogram (same Frexp log-bucketing as
//     rda_wait_seconds), and fallback/reclaim rates — and steps the
//     effective policy Normal (the configured base, e.g. Strict) →
//     Degraded (Compromise, x=2) → Shedding (best-effort: admission
//     control shed entirely) as sustained pressure crosses thresholds.
//     Hysteresis windows on the virtual clock (DegradeHold / RecoverHold)
//     keep it from flapping, and recovery steps back one level at a time.
//     Leaving Normal also tightens the lease watchdog (LeaseTighten):
//     leaked registrations are the dominant cause of sustained admission
//     pressure, and waiting a full lease to discover them starves the
//     queue behind them, so while degraded the governor trades admission
//     accuracy (an early reclaim of a live period is safe — its late
//     pp_end is dropped) for liveness.
//
//   - Per-process misdeclaration quarantine. A circuit breaker compares
//     each process's declared demand against the occupancy the machine
//     model actually charges it (the simulation image of post-hoc
//     occupancy measurement: machine.contention charges the physical
//     working set, so the gate can read the truth at period entry).
//     Declarations off by MisdeclareFactor× in either direction count as
//     strikes; after Strikes strikes the breaker trips and the offender
//     is admitted as undeclared baseline — its declarations ignored, no
//     load charged — for a Probation window. The breaker then half-opens:
//     the next period is a probe, evaluated normally; a clean declaration
//     closes the breaker, another lie re-trips it.
//
//   - Starvation-free waitlist aging. Each waitlisted period accumulates
//     a demand-weighted aging priority (wait seconds × demand/capacity).
//     Once a period's priority crosses AgeThreshold, the wake scan probes
//     it first; if it still does not fit, it takes a capacity
//     reservation — no younger waiter is admitted in that cascade, so
//     freed capacity accumulates for the aged period instead of being
//     nibbled away by small late arrivals. Strict's perpetual bypass of
//     large demands becomes a graceful, bounded-unfairness guarantee
//     (and the fallback deadline still bounds the absolute wait).
//
// Everything is driven by the virtual clock and the scheduler's own
// decision path, so governed runs remain deterministic: the same
// workload, seed, and configuration produce identical transitions on any
// worker count.

// GovernorLevel is the degradation ladder position.
type GovernorLevel int

const (
	// GovNormal: the configured base policy is in force.
	GovNormal GovernorLevel = iota
	// GovDegraded: the predicate is relaxed to RDA:Compromise (x=2), or
	// the base policy when it is already at least that permissive.
	GovDegraded
	// GovShedding: admission control is shed entirely — every period is
	// admitted, as under the stock scheduler — until pressure drains.
	GovShedding
)

func (l GovernorLevel) String() string {
	switch l {
	case GovNormal:
		return "normal"
	case GovDegraded:
		return "degraded"
	case GovShedding:
		return "shedding"
	default:
		return fmt.Sprintf("GovernorLevel(%d)", int(l))
	}
}

// BreakerState is a misdeclaration circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: declarations are trusted; strikes accumulate.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the process is quarantined — admitted as undeclared
	// baseline until the probation window elapses.
	BreakerOpen
	// BreakerHalfOpen: probation elapsed; the next period is a probe.
	BreakerHalfOpen
)

func (b BreakerState) String() string {
	switch b {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(b))
	}
}

// GovernorConfig tunes the governor. The zero value is invalid; start
// from DefaultGovernorConfig. All windows are virtual-clock durations.
type GovernorConfig struct {
	// Enabled turns the governor on (RunConfig.Governor passes the whole
	// struct; a nil/disabled config leaves the static predicate alone).
	Enabled bool

	// DegradeDepth is the waitlist depth that counts as sustained
	// pressure toward Degraded; ShedDepth escalates toward Shedding.
	DegradeDepth int
	ShedDepth    int
	// WaitHigh is the p95 waitlist time that counts as pressure even at
	// modest depth (read from the governor's windowed wait histogram).
	WaitHigh sim.Duration
	// HotEvents is the number of fallback+reclaim events within one
	// Window that counts as pressure (the robustness layer working hard
	// is itself an overload signal).
	HotEvents int
	// Window bounds how long the windowed signals (wait histogram,
	// fallback/reclaim counts) accumulate before they reset.
	Window sim.Duration
	// DegradeHold is how long pressure must persist before the governor
	// steps down one level; RecoverHold is how long calm must persist
	// before it steps back up. The asymmetry is the hysteresis.
	DegradeHold sim.Duration
	RecoverHold sim.Duration
	// LeaseTighten divides the period lease while the ladder is below
	// Normal: the moment the governor degrades, every outstanding lease
	// is re-armed to lease/LeaseTighten and new admissions lease at the
	// tightened horizon, so leaked registrations are reclaimed while the
	// pressure they cause is still live. Values <= 1 (or a disabled
	// lease) leave the watchdog alone.
	LeaseTighten float64

	// Strikes is the breaker trip count K; MisdeclareFactor is the
	// declared/actual ratio (either direction) that counts as a strike.
	Strikes          int
	MisdeclareFactor float64
	// Probation is how long a tripped breaker stays open before it
	// half-opens for a probe.
	Probation sim.Duration

	// AgeThreshold is the demand-weighted aging priority (wait seconds ×
	// demand/capacity) at which a waitlisted period earns reservation
	// treatment in the wake scan. <= 0 disables aging.
	AgeThreshold float64
}

// DefaultGovernorConfig returns thresholds sized for the Table 1 machine
// and the paper's workload scale (runs of virtual seconds). Harnesses
// that shrink workloads scale the windows alongside (see
// experiments.RunOverload).
func DefaultGovernorConfig() GovernorConfig {
	return GovernorConfig{
		Enabled:          true,
		DegradeDepth:     8,
		ShedDepth:        24,
		WaitHigh:         20 * sim.Millisecond,
		HotEvents:        12,
		Window:           250 * sim.Millisecond,
		DegradeHold:      50 * sim.Millisecond,
		RecoverHold:      200 * sim.Millisecond,
		LeaseTighten:     4,
		Strikes:          3,
		MisdeclareFactor: 2,
		Probation:        500 * sim.Millisecond,
		AgeThreshold:     0.05,
	}
}

func (c GovernorConfig) validate() error {
	switch {
	case c.DegradeDepth <= 0 || c.ShedDepth < c.DegradeDepth:
		return fmt.Errorf("core: governor depths %d/%d (want 0 < degrade <= shed)", c.DegradeDepth, c.ShedDepth)
	case c.Strikes <= 0:
		return fmt.Errorf("core: governor strikes %d (want > 0)", c.Strikes)
	case c.MisdeclareFactor <= 1:
		return fmt.Errorf("core: governor misdeclare factor %v (want > 1)", c.MisdeclareFactor)
	case c.Window <= 0 || c.DegradeHold < 0 || c.RecoverHold < 0 || c.Probation < 0:
		return fmt.Errorf("core: governor windows must be positive (window %v)", c.Window)
	case c.LeaseTighten != 0 && c.LeaseTighten < 1:
		return fmt.Errorf("core: governor lease tighten %v (want 0, or >= 1)", c.LeaseTighten)
	}
	return nil
}

// GovernorStats counts governor activity for reports and tests.
type GovernorStats struct {
	Degradations      uint64 // level steps toward shedding
	Recoveries        uint64 // level steps back toward the base policy
	Strikes           uint64 // misdeclarations recorded against closed breakers
	Quarantines       uint64 // breaker trips (including half-open re-trips)
	QuarantinedAdmits uint64 // periods admitted as undeclared baseline
	Probes            uint64 // half-open probes evaluated
	Restores          uint64 // breakers closed after a clean probe
	Reservations      uint64 // cascades blocked for an aged waiter
	AgedWakes         uint64 // aged waiters admitted through their reservation
	Tightened         uint64 // outstanding leases re-armed to the tightened horizon
}

// waitBuckets is the governor's windowed wait histogram: Frexp exponent
// buckets like telemetry's rda_wait_seconds, but a fixed array so the
// decision path allocates nothing. Exponents are clamped into
// [-waitExpBias, waitExpCap-waitExpBias).
const (
	waitExpBias = 32
	waitExpCap  = 64
)

type waitBuckets struct {
	counts [waitExpCap]uint32
	total  uint32
}

func (w *waitBuckets) observe(seconds float64) {
	w.total++
	if seconds <= 0 {
		w.counts[0]++
		return
	}
	_, e := math.Frexp(seconds)
	e += waitExpBias
	if e < 1 {
		e = 1
	}
	if e >= waitExpCap {
		e = waitExpCap - 1
	}
	w.counts[e]++
}

// p95AtLeast reports whether the windowed p95 wait reaches the bound
// (bucket upper bounds, so the tail is never understated).
func (w *waitBuckets) p95AtLeast(bound float64) bool {
	if w.total == 0 || bound <= 0 {
		return false
	}
	rank := uint32(math.Ceil(0.95 * float64(w.total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint32
	for e := 0; e < waitExpCap; e++ {
		cum += w.counts[e]
		if cum >= rank {
			if e == 0 {
				return false
			}
			return math.Ldexp(1, e-waitExpBias) >= bound
		}
	}
	return false
}

func (w *waitBuckets) reset() { *w = waitBuckets{} }

// breaker is one process's misdeclaration circuit breaker.
type breaker struct {
	state    BreakerState
	strikes  int
	openedAt sim.Time
}

// governor is the scheduler-internal state. It belongs to one scheduler
// on one goroutine, like everything else on the decision path.
type governor struct {
	cfg   GovernorConfig
	level GovernorLevel

	// Hysteresis bookkeeping: since when the pressure (or calm) signal
	// has been continuously asserted.
	pressured     bool
	pressureSince sim.Time
	calm          bool
	calmSince     sim.Time

	// Windowed signals.
	windowStart  sim.Time
	winFallbacks int
	winReclaims  int
	waits        waitBuckets

	breakers map[int]*breaker // process ID → breaker

	// tickEv is the governor's self-evaluation timer: the decision path
	// only evaluates pressure when events flow, but a fully stalled
	// system (every admitted period leaked, everyone else blocked) goes
	// silent — the tick keeps the hysteresis clock running through the
	// stall so degradation fires before the fallback deadlines do.
	tickEv *sim.Event

	stats GovernorStats
}

// EnableGovernor attaches an adaptive admission governor configured by
// cfg; a zero-value or Enabled=false config detaches it. The governor
// needs the clock (SetClock) for its hysteresis and aging windows —
// without one every duration reads zero and transitions are immediate —
// and uses the timer (SetTimer), when bound, to re-run the wake scan
// after a degradation step frees admission headroom.
func (s *Scheduler) EnableGovernor(cfg GovernorConfig) {
	if !cfg.Enabled {
		s.gov = nil
		return
	}
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	s.gov = &governor{cfg: cfg, breakers: make(map[int]*breaker)}
}

// Governor reports whether a governor is attached and its current level.
func (s *Scheduler) Governor() (GovernorLevel, bool) {
	if s.gov == nil {
		return GovNormal, false
	}
	return s.gov.level, true
}

// GovernorStats returns a copy of the governor counters (zero when no
// governor is attached).
func (s *Scheduler) GovernorStats() GovernorStats {
	if s.gov == nil {
		return GovernorStats{}
	}
	return s.gov.stats
}

// BreakerState returns the quarantine breaker state for a process at the
// given time, applying the lazy open→half-open transition so an open
// breaker is never reported past its probation window.
func (s *Scheduler) BreakerState(procID int, now sim.Time) BreakerState {
	if s.gov == nil {
		return BreakerClosed
	}
	b, ok := s.gov.breakers[procID]
	if !ok {
		return BreakerClosed
	}
	if b.state == BreakerOpen && now.DurationSince(b.openedAt) >= s.gov.cfg.Probation {
		return BreakerHalfOpen
	}
	return b.state
}

// effectivePolicy is the predicate the admission path consults: the base
// policy at GovNormal, and the more permissive of the base policy and
// the ladder step when degraded.
func (s *Scheduler) effectivePolicy() Policy {
	if s.gov == nil {
		return s.policy
	}
	switch s.gov.level {
	case GovDegraded:
		if _, ok := s.policy.(AlwaysPolicy); ok {
			return s.policy // already more permissive than the ladder step
		}
		if c, ok := s.policy.(CompromisePolicy); ok && c.Factor >= DefaultCompromiseFactor {
			return s.policy
		}
		return NewCompromise()
	case GovShedding:
		return AlwaysPolicy{}
	default:
		return s.policy
	}
}

// now reads the bound clock (zero without one; the governor then
// degenerates to instant transitions, still deterministically).
func (s *Scheduler) now() sim.Time {
	if s.clock == nil {
		return 0
	}
	return s.clock()
}

// govObserve feeds one decision into the governor's windowed signals and
// re-evaluates the degradation level. Called on the deny, wake, end,
// fallback, and reclaim paths; it allocates nothing.
func (s *Scheduler) govObserve(kind EventKind, wait sim.Duration) {
	g := s.gov
	if g == nil {
		return
	}
	now := s.now()
	if now.DurationSince(g.windowStart) >= g.cfg.Window {
		g.winFallbacks, g.winReclaims = 0, 0
		g.waits.reset()
		g.windowStart = now
	}
	switch kind {
	case EventFallback:
		g.winFallbacks++
		g.waits.observe(wait.Seconds())
	case EventReclaim:
		g.winReclaims++
	case EventWake:
		g.waits.observe(wait.Seconds())
	}
	s.govEvaluate(now)
	s.govScheduleTick()
}

// govScheduleTick arms the self-evaluation timer when there is pressure
// to watch (a nonempty waitlist, or a degraded level that needs the
// calm clock to keep running so it can recover). At most one tick is
// pending; each fires after the shorter hold window and re-arms itself
// while still needed, so a silent stall cannot outlast the hysteresis.
func (s *Scheduler) govScheduleTick() {
	g := s.gov
	if g == nil || s.timer == nil || g.tickEv != nil {
		return
	}
	if s.waitlist.Len() == 0 && g.level == GovNormal {
		return
	}
	d := g.cfg.DegradeHold
	if g.level > GovNormal && (d <= 0 || g.cfg.RecoverHold < d) && g.cfg.RecoverHold > 0 {
		d = g.cfg.RecoverHold
	}
	if d <= 0 {
		d = g.cfg.Window / 4
	}
	if d <= 0 {
		return
	}
	g.tickEv = s.timer.After(d, s.govTick)
}

// govTick is the armed self-evaluation callback. It journals itself
// (RecGovTick) so the restored governor carries the post-tick ladder
// state and the re-armed tick time — a restore never has to normalize
// an expired-but-unfired tick, because every firing is a record.
func (s *Scheduler) govTick() {
	if s.detached {
		return
	}
	g := s.gov
	g.tickEv = nil
	s.govEvaluate(s.now())
	s.govScheduleTick()
	s.rrec(RecGovTick, nil, nil)
}

// govEvaluate applies the hysteresis state machine: the level steps one
// rung toward the target only after the signal has been continuously
// asserted for the hold window.
func (s *Scheduler) govEvaluate(now sim.Time) {
	g := s.gov
	// The age of the oldest waiter is the stall signal: a deep waitlist
	// that drains is healthy (Strict working as designed), one whose head
	// does not move is overload.
	var headAge sim.Duration
	if per, ok := s.waitlist.Peek(); ok {
		headAge = now.DurationSince(per.enqueuedAt)
	}
	target := g.targetLevel(s.waitlist.Len(), headAge)
	switch {
	case target > g.level:
		g.calm = false
		if !g.pressured {
			g.pressured = true
			g.pressureSince = now
		}
		if now.DurationSince(g.pressureSince) >= g.cfg.DegradeHold {
			g.level++
			g.pressured = false
			g.stats.Degradations++
			s.emitGovernor(EventGovernorDegrade)
			if g.level == GovDegraded {
				s.govTightenLeases(now)
			}
			// The ladder just got more permissive: waiting periods may
			// now fit, so re-run the wake scan (deferred when we are
			// inside one, or inside EnterPhase's deny path where the
			// denied thread is not yet parked).
			s.requestRescan()
		}
	case target < g.level:
		g.pressured = false
		if !g.calm {
			g.calm = true
			g.calmSince = now
		}
		if now.DurationSince(g.calmSince) >= g.cfg.RecoverHold {
			g.level--
			g.calm = false
			g.stats.Recoveries++
			s.emitGovernor(EventGovernorRecover)
		}
	default:
		g.pressured = false
		g.calm = false
	}
}

// targetLevel maps the instantaneous pressure signals to the level the
// governor is drifting toward. hotTail — the head of the waitlist is
// stalled past WaitHigh, or the windowed p95 wait reaches it — is the
// primary signal; waitlist depth escalates a stall to shedding but
// never trips the ladder by itself below ShedDepth, because a deep
// queue that drains is a strict predicate working as designed, not
// overload.
func (g *governor) targetLevel(depth int, headAge sim.Duration) GovernorLevel {
	hotTail := (g.cfg.WaitHigh > 0 && headAge >= g.cfg.WaitHigh) ||
		g.waits.p95AtLeast(g.cfg.WaitHigh.Seconds())
	hotFaults := g.cfg.HotEvents > 0 && g.winFallbacks+g.winReclaims >= g.cfg.HotEvents
	switch {
	case depth >= g.cfg.ShedDepth || (depth >= g.cfg.DegradeDepth && hotTail):
		return GovShedding
	case hotTail || hotFaults:
		return GovDegraded
	default:
		return GovNormal
	}
}

// govLease is the lease horizon for a new admission: the configured
// lease at Normal, lease/LeaseTighten while degraded.
func (s *Scheduler) govLease() sim.Duration {
	g := s.gov
	if g == nil || g.level == GovNormal || g.cfg.LeaseTighten <= 1 {
		return s.lease
	}
	return sim.Duration(float64(s.lease) / g.cfg.LeaseTighten)
}

// govTightenLeases re-arms every outstanding lease to the tightened
// horizon, in admission order, as the ladder leaves Normal. The horizon
// is measured from each period's admission, so a leaked period admitted
// long before the overload — exactly the load the waitlist is stuck
// behind — is reclaimed on the next engine step rather than holding its
// registration for the rest of the original lease.
func (s *Scheduler) govTightenLeases(now sim.Time) {
	g := s.gov
	if g.cfg.LeaseTighten <= 1 || s.timer == nil || s.lease <= 0 {
		return
	}
	tight := sim.Duration(float64(s.lease) / g.cfg.LeaseTighten)
	if tight <= 0 {
		return
	}
	pers := make([]*period, 0, len(s.active))
	for _, per := range s.active {
		if per.admitted && per.leaseEv != nil {
			pers = append(pers, per)
		}
	}
	sort.Slice(pers, func(i, j int) bool { return pers[i].id < pers[j].id })
	for _, per := range pers {
		d := tight
		if s.clock != nil {
			if rem := tight - now.DurationSince(per.admittedAt); rem < d {
				d = rem
			}
		}
		if d < 1 {
			d = 1 // next engine step, never this instant
		}
		s.timer.Cancel(per.leaseEv)
		per.leaseEv = nil
		s.scheduleLeaseFor(per, d)
		if s.rsink != nil {
			// Journal the re-arm; the patches ride the next record cut on
			// this shard (tightening always runs inside a decision or tick
			// that emits one).
			s.pendingLease = append(s.pendingLease, LeasePatch{ID: per.id, LeaseAt: per.leaseEv.When()})
		}
		g.stats.Tightened++
	}
}

// emitGovernor publishes a period-less governor transition: Proc is -1
// and Phase carries the level after the step, so sinks can reconstruct
// the ladder walk.
func (s *Scheduler) emitGovernor(kind EventKind) {
	s.emit(kind, nil, periodKey{procID: -1, phaseIdx: int(s.gov.level)}, pp.Demand{})
}

// requestRescan re-runs the wake scan as soon as it is safe: immediately
// flagged when a scan is already in progress, otherwise deferred one
// virtual picosecond through the timer so a thread currently being
// denied inside EnterPhase is parked before it can be woken. Without a
// timer the next release re-scans anyway.
func (s *Scheduler) requestRescan() {
	if s.inWake {
		s.rescan = true
		return
	}
	if s.timer != nil {
		s.timer.After(1, s.wakeWaitlist)
	}
}

// govAdmission classifies a period entry against the process's breaker.
type govAdmission int

const (
	govAdmitNormal govAdmission = iota
	govAdmitQuarantined
)

// govAdmit runs the quarantine state machine for one arriving period.
// The declared demand is compared against the occupancy the machine
// model will actually charge (ph.OccupancyBytes; see package comment).
func (s *Scheduler) govAdmit(procID int, ph *proc.Phase) govAdmission {
	g := s.gov
	if g == nil {
		return govAdmitNormal
	}
	now := s.now()
	b := g.breakers[procID]
	if b == nil {
		b = &breaker{}
		g.breakers[procID] = b
	}
	if b.state == BreakerOpen {
		if now.DurationSince(b.openedAt) < g.cfg.Probation {
			g.stats.QuarantinedAdmits++
			return govAdmitQuarantined
		}
		b.state = BreakerHalfOpen
	}
	lied := g.misdeclared(ph)
	switch b.state {
	case BreakerHalfOpen:
		g.stats.Probes++
		if lied {
			b.state = BreakerOpen
			b.openedAt = now
			g.stats.Quarantines++
			g.stats.QuarantinedAdmits++
			return govAdmitQuarantined
		}
		b.state = BreakerClosed
		b.strikes = 0
		g.stats.Restores++
		s.emit(EventGovernorRestore, nil, periodKey{procID: procID}, ph.Demand())
		return govAdmitNormal
	default: // BreakerClosed
		if !lied {
			return govAdmitNormal
		}
		b.strikes++
		g.stats.Strikes++
		if b.strikes < g.cfg.Strikes {
			return govAdmitNormal
		}
		b.state = BreakerOpen
		b.openedAt = now
		g.stats.Quarantines++
		g.stats.QuarantinedAdmits++
		return govAdmitQuarantined
	}
}

// misdeclared reports whether a phase's declared primary demand is off
// by at least MisdeclareFactor in either direction from the occupancy
// the machine charges. Zero-occupancy phases are never strikes: there is
// no truth to compare against.
func (g *governor) misdeclared(ph *proc.Phase) bool {
	actual := float64(ph.OccupancyBytes())
	declared := float64(ph.Demand().WorkingSet)
	if actual <= 0 || declared <= 0 {
		return false
	}
	f := g.cfg.MisdeclareFactor
	return declared >= f*actual || actual >= f*declared
}

// agePriority is the demand-aware aging priority of a waitlisted period:
// wait seconds weighted by the primary demand's share of LLC capacity,
// so the large demands Strict perpetually bypasses age fastest.
func (s *Scheduler) agePriority(per *period, now sim.Time) float64 {
	capacity := s.rm.Capacity(pp.ResourceLLC)
	if capacity <= 0 {
		return 0
	}
	weight := float64(per.demands[0].WorkingSet) / float64(capacity)
	return now.DurationSince(per.enqueuedAt).Seconds() * weight
}

// wakeAged runs the aging pass of a wake cascade: the highest-priority
// aged waiter is dequeued and probed first; admitted ones are appended
// to woken, and the first aged waiter that still does not fit is
// re-enqueued under its original ticket (its wait clock and deadline
// keep running — no reset) and takes a capacity reservation, reported by
// blocking every younger admission in this cascade.
func (s *Scheduler) wakeAged(woken []*period) (_ []*period, reserved bool) {
	g := s.gov
	if g == nil || g.cfg.AgeThreshold <= 0 || s.clock == nil {
		return woken, false
	}
	now := s.clock()
	for {
		per, ticket, ok := s.waitlist.AgedFirst(g.cfg.AgeThreshold, func(p *period) float64 {
			return s.agePriority(p, now)
		})
		if !ok {
			return woken, false
		}
		s.waitlist.Remove(ticket)
		runnable, safeguard := s.tryScheduleAll(per.demands)
		if !runnable {
			// Woken for the probe and re-denied in the same cascade:
			// back to its original position, original ticket.
			s.waitlist.EnqueueAs(per, ticket)
			g.stats.Reservations++
			s.emit(EventGovernorReserve, per, per.key, per.demands[0])
			s.rrec(RecReserve, per, nil)
			return woken, true
		}
		if safeguard {
			s.stats.Safegrds++
		}
		s.admit(per)
		g.stats.AgedWakes++
		s.emit(EventWake, per, per.key, per.demands[0])
		woken = append(woken, per)
	}
}
