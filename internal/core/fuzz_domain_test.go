package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"rdasched/internal/machine"
	"rdasched/internal/pp"
	"rdasched/internal/sim"
)

// Domain invariants, fuzzed. The sharded scheduler must uphold, for
// every workload, domain count, policy, and steal-age setting:
//
//  1. a period is registered in exactly one domain at any instant —
//     placement routes it, a steal re-homes it, never duplicates it;
//  2. every shard's LLC usage reconciles exactly with the sum of its
//     admitted, tracked periods' charges — migrations move the charge
//     with the period, never double-charge or leak it (per-domain loads
//     always sum to the true global load);
//  3. wait clocks never reset: a wake's or fallback's Wait spans back
//     to the period's begin, no matter how many domains it crossed;
//  4. the run completes with begins == ends and every domain drained to
//     zero usage, zero waitlist, zero active periods, and no stale
//     routing entries.
//
// checkDomainInvariants is shared by the quick.Check sweep and the
// native fuzz target, like the scheduler and chaos fuzz suites.

// domainInvariantSink checks invariants 1–3 synchronously at every
// decision, where a violation is still attributable.
type domainInvariantSink struct {
	d       *DomainSet
	beginAt map[pp.ID]sim.Time
	err     error
}

func (k *domainInvariantSink) fail(format string, args ...any) {
	if k.err == nil {
		k.err = fmt.Errorf(format, args...)
	}
}

func (k *domainInvariantSink) Record(e Event) {
	if k.err != nil {
		return
	}
	seen := make(map[periodKey]int, len(k.d.domainOf))
	for i, s := range k.d.shards {
		for key := range s.active {
			if prev, dup := seen[key]; dup {
				k.fail("proc %d phase %d registered in domains %d and %d at %v",
					key.procID, key.phaseIdx, prev, i, e.At)
				return
			}
			seen[key] = i
		}
		var want pp.Bytes
		for _, per := range s.active {
			if per.admitted && !per.untracked {
				want += per.demands[0].WorkingSet
			}
		}
		if got := s.rm.Usage(pp.ResourceLLC); got != want {
			k.fail("domain %d load %v != %v charged by its admitted periods (after %v %v)",
				i, got, want, e.Kind, e.At)
			return
		}
	}
	switch e.Kind {
	case EventBegin:
		k.beginAt[e.ID] = e.At
	case EventWake, EventFallback:
		if begin, ok := k.beginAt[e.ID]; ok {
			if want := e.At.DurationSince(begin); e.Wait != want {
				k.fail("period %d %v Wait %v != %v since its begin — wait clock reset",
					e.ID, e.Kind, e.Wait, want)
			}
		}
	}
}

// checkDomainInvariants drives one random workload through a DomainSet
// of 1–4 domains and returns the first violated invariant.
func checkDomainInvariants(seed uint64, domains, polIdx uint8) error {
	policies := []Policy{StrictPolicy{}, NewCompromise(), AlwaysPolicy{}}
	pol := policies[int(polIdx)%len(policies)]
	n := 1 + int(domains)%4
	// Sweep the steal knob from hyper-aggressive through default to
	// disabled; the invariants may not depend on it.
	dcfg := DomainConfig{Domains: n}
	switch (seed >> 8) % 4 {
	case 0:
		dcfg.StealAge = 1
	case 1:
		dcfg.StealAge = 10 * sim.Microsecond
	case 2:
		// default age
	case 3:
		dcfg.DisableSteal = true
	}
	w := randomWorkload(seed, 8)

	cfg := machine.DefaultConfig()
	cfg.MaxSimTime = 600 * sim.Second
	d, err := NewDomainSet(pol, cfg.LLCCapacity, dcfg)
	if err != nil {
		return fmt.Errorf("seed %d domains %d: NewDomainSet: %v", seed, n, err)
	}
	m := machine.New(cfg, d)
	d.SetWaker(m)
	d.SetClock(m.Now)
	d.SetTimer(m.Engine())
	if seed&1 == 0 {
		// Half the runs exercise the robustness layer across shards.
		d.SetLease(50 * sim.Millisecond)
		d.SetAdmissionDeadline(30 * sim.Millisecond)
	}
	sink := &domainInvariantSink{d: d, beginAt: make(map[pp.ID]sim.Time)}
	d.AddSink(sink)
	if err := m.AddWorkload(w); err != nil {
		return fmt.Errorf("seed %d: invalid workload: %v", seed, err)
	}
	if _, err := m.Run(); err != nil {
		return fmt.Errorf("seed %d domains %d policy %s: %v", seed, n, pol.Name(), err)
	}
	if sink.err != nil {
		return fmt.Errorf("seed %d domains %d policy %s: %v", seed, n, pol.Name(), sink.err)
	}
	st := d.Stats()
	if st.Begins != st.Ends+st.Reclaimed {
		return fmt.Errorf("seed %d domains %d: %d begins vs %d ends + %d reclaims",
			seed, n, st.Begins, st.Ends, st.Reclaimed)
	}
	for i := 0; i < d.NumDomains(); i++ {
		s := d.Shard(i)
		if u := s.Resources().Usage(pp.ResourceLLC); u != 0 {
			return fmt.Errorf("seed %d domain %d: leftover load %v", seed, i, u)
		}
		if s.Waitlisted() != 0 || s.ActivePeriods() != 0 {
			return fmt.Errorf("seed %d domain %d: registry not drained", seed, i)
		}
	}
	if len(d.domainOf) != 0 {
		return fmt.Errorf("seed %d: %d stale routing entries after drain", seed, len(d.domainOf))
	}
	if residue := d.Quiesce(); residue != 0 {
		return fmt.Errorf("seed %d: Quiesce reclaimed %d periods after a drained run", seed, residue)
	}
	return nil
}

// TestFuzzDomainInvariants is the quick.Check sweep;
// FuzzDomainInvariants explores further from the committed corpus under
// `make fuzz` / CI.
func TestFuzzDomainInvariants(t *testing.T) {
	f := func(seed uint64, domains, polIdx uint8) bool {
		if err := checkDomainInvariants(seed, domains, polIdx); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// FuzzDomainInvariants is the native fuzz entry point; the committed
// corpus seeds every domain count × policy pairing plus boundary seeds.
func FuzzDomainInvariants(f *testing.F) {
	for _, c := range [][3]uint64{
		{0, 0, 0}, {1, 1, 0}, {2, 2, 1}, {3, 3, 2},
		{256, 1, 0}, {512, 2, 0}, {768, 3, 1}, {1337, 1, 0}, {^uint64(0), 3, 2},
	} {
		f.Add(c[0], uint8(c[1]), uint8(c[2]))
	}
	f.Fuzz(func(t *testing.T, seed uint64, domains, polIdx uint8) {
		if err := checkDomainInvariants(seed, domains, polIdx); err != nil {
			t.Error(err)
		}
	})
}
