package core

import (
	"errors"
	"testing"

	"rdasched/internal/machine"
	"rdasched/internal/pp"
	"rdasched/internal/sim"
	"rdasched/internal/telemetry"
)

// kindSink tallies decision-stream events by kind.
type kindSink struct{ counts map[EventKind]int }

func newKindSink() *kindSink { return &kindSink{counts: make(map[EventKind]int)} }

func (k *kindSink) Record(e Event) { k.counts[e.Kind]++ }

func TestRecoveryConfigValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  RecoveryConfig
		ok   bool
	}{
		{"default", DefaultRecoveryConfig(), true},
		{"zero value", RecoveryConfig{}, true},
		{"stall", RecoveryConfig{Mode: RecoverStall}, true},
		{"drop", RecoveryConfig{Mode: RecoverDrop}, true},
		{"unknown mode", RecoveryConfig{Mode: RecoveryMode(9)}, false},
		{"negative retries", RecoveryConfig{MaxRetries: -1}, false},
		{"retries without base", RecoveryConfig{MaxRetries: 2}, false},
	} {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: Validate accepted %+v", tc.name, tc.cfg)
			} else if !errors.Is(err, ErrInvalidRecoveryConfig) {
				t.Errorf("%s: error %v does not wrap ErrInvalidRecoveryConfig", tc.name, err)
			}
		}
	}
	if RecoverEvacuate.String() != "evacuate" || RecoverStall.String() != "stall" ||
		RecoverDrop.String() != "drop" {
		t.Error("RecoveryMode strings changed")
	}
}

func TestEnableRecoveryErrors(t *testing.T) {
	single := mustDomainSet(t, StrictPolicy{}, pp.MB(15), DefaultDomainConfig(1))
	if err := single.EnableRecovery(DefaultRecoveryConfig()); !errors.Is(err, ErrInvalidDomain) {
		t.Errorf("single-domain EnableRecovery: %v, want ErrInvalidDomain", err)
	}

	d := mustDomainSet(t, StrictPolicy{}, pp.MB(16), DefaultDomainConfig(2))
	if err := d.EnableRecovery(RecoveryConfig{MaxRetries: -1}); !errors.Is(err, ErrInvalidRecoveryConfig) {
		t.Errorf("bad config: %v, want ErrInvalidRecoveryConfig", err)
	}
	// Injection before EnableRecovery must refuse rather than touch state.
	if err := d.InjectCrash(0); !errors.Is(err, ErrInvalidDomain) {
		t.Errorf("InjectCrash without recovery: %v, want ErrInvalidDomain", err)
	}
	if err := d.EnableRecovery(DefaultRecoveryConfig()); err != nil {
		t.Fatal(err)
	}
	if err := d.InjectCrash(5); !errors.Is(err, ErrInvalidDomain) {
		t.Errorf("out-of-range crash: %v, want ErrInvalidDomain", err)
	}
	if err := d.InjectCapacityLoss(0, -0.5); !errors.Is(err, ErrInvalidDomain) {
		t.Errorf("negative loss: %v, want ErrInvalidDomain", err)
	}
	if err := d.InjectLedgerCorruption(-1, pp.MB(1)); !errors.Is(err, ErrInvalidDomain) {
		t.Errorf("out-of-range corruption: %v, want ErrInvalidDomain", err)
	}
}

// TestCapacityLossAndResplit drives the capacity ledger directly:
// partial loss shrinks only the target shard, a crash zeroes it and (in
// evacuate mode) hands its share to the survivor, reintegration restores
// the baseline split exactly.
func TestCapacityLossAndResplit(t *testing.T) {
	d := mustDomainSet(t, StrictPolicy{}, pp.MB(16), DefaultDomainConfig(2))
	if err := d.EnableRecovery(DefaultRecoveryConfig()); err != nil {
		t.Fatal(err)
	}
	capOf := func(i int) pp.Bytes { return d.Shard(i).Resources().Capacity(pp.ResourceLLC) }

	if err := d.InjectCapacityLoss(0, 0.5); err != nil {
		t.Fatal(err)
	}
	if capOf(0) != pp.MB(4) || capOf(1) != pp.MB(8) {
		t.Fatalf("after 50%% loss: caps %v/%v, want 4MB/8MB", capOf(0), capOf(1))
	}
	if d.Quarantined(0) {
		t.Error("partial loss must not quarantine the shard")
	}
	if err := d.RecoverDomain(0); err != nil {
		t.Fatal(err)
	}
	if capOf(0) != pp.MB(8) || capOf(1) != pp.MB(8) {
		t.Fatalf("after restore: caps %v/%v, want 8MB/8MB", capOf(0), capOf(1))
	}

	// frac >= 1 is a crash: offline, zero capacity, survivor absorbs the
	// lost share under the evacuating mode.
	if err := d.InjectCapacityLoss(0, 1.5); err != nil {
		t.Fatal(err)
	}
	if !d.Quarantined(0) {
		t.Fatal("full loss must quarantine the shard")
	}
	if capOf(0) != 0 || capOf(1) != pp.MB(16) {
		t.Fatalf("after crash: caps %v/%v, want 0/16MB", capOf(0), capOf(1))
	}
	// Crash is idempotent.
	if err := d.InjectCrash(0); err != nil {
		t.Fatal(err)
	}
	if got := d.RecoveryStats().Failures; got != 1 {
		t.Fatalf("failures = %d after a repeated crash, want 1", got)
	}
	if err := d.RecoverDomain(0); err != nil {
		t.Fatal(err)
	}
	if d.Quarantined(0) || capOf(0) != pp.MB(8) || capOf(1) != pp.MB(8) {
		t.Fatalf("after reintegration: quarantined=%v caps %v/%v, want online 8MB/8MB",
			d.Quarantined(0), capOf(0), capOf(1))
	}
	if got := d.RecoveryStats().Reintegrations; got != 2 {
		t.Fatalf("reintegrations = %d, want 2", got)
	}
	// Healing a healthy shard is a no-op.
	if err := d.RecoverDomain(0); err != nil {
		t.Fatal(err)
	}
	if got := d.RecoveryStats().Reintegrations; got != 2 {
		t.Fatalf("no-op recover bumped reintegrations to %d", got)
	}
}

// TestCrashEvacuatesPeriods is the canonical evacuation scenario: the
// crashed shard's active migrates first onto the survivor (the absorbed
// capacity makes room — no forced oversubscription), the waiter strands
// onto the survivor's waitlist, and the run completes with every period
// ending on the survivor.
func TestCrashEvacuatesPeriods(t *testing.T) {
	d, m := buildDomains(t, StrictPolicy{}, DomainConfig{Domains: 2, DisableSteal: true})
	if err := d.EnableRecovery(DefaultRecoveryConfig()); err != nil {
		t.Fatal(err)
	}
	sink := newKindSink()
	d.AddSink(sink)
	// hog-long fills shard 0, hog-short fills shard 1, the waiter parks
	// on shard 0's waitlist (least-loaded tie breaks low).
	if _, err := m.AddProcess(declaredProc("hog-long", pp.MB(6), 4e8)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(declaredProc("hog-short", pp.MB(6), 1e7)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(declaredProc("waiter", pp.MB(6), 1e7)); err != nil {
		t.Fatal(err)
	}
	m.Engine().After(sim.Millisecond, func() {
		if err := d.InjectCrash(0); err != nil {
			t.Error(err)
		}
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	rst := d.RecoveryStats()
	if rst.Failures != 1 {
		t.Fatalf("failures = %d, want 1", rst.Failures)
	}
	// hog-long moves first and fits (the survivor holds the whole LLC
	// after the re-split: 6+6 MB); the waiter then finds no headroom
	// (6+6+6 MB) and transfers to the survivor's waitlist, waking there
	// when hog-short drains. No move is forced.
	if rst.Evacuations != 2 || rst.ForcedMoves != 0 {
		t.Fatalf("evacuations/forced = %d/%d, want 2/0", rst.Evacuations, rst.ForcedMoves)
	}
	if !d.Quarantined(0) {
		t.Error("shard 0 should still be quarantined (never healed)")
	}
	if st := d.Stats(); st.Begins != 3 || st.Ends != 3 {
		t.Fatalf("begins/ends = %d/%d, want 3/3", st.Begins, st.Ends)
	}
	if got := d.Shard(1).Stats().Ends; got != 3 {
		t.Fatalf("survivor ends = %d, want 3 (every period ended there)", got)
	}
	if sink.counts[EventDomainFail] != 1 || sink.counts[EventEvacuate] != 2 {
		t.Fatalf("events: %d domain-fail, %d evacuate, want 1 and 2",
			sink.counts[EventDomainFail], sink.counts[EventEvacuate])
	}
	if d.Waitlisted() != 0 || d.ActivePeriods() != 0 || len(d.domainOf) != 0 {
		t.Fatal("registries not drained after the run")
	}
	for i := 0; i < 2; i++ {
		if u := d.Shard(i).Resources().Usage(pp.ResourceLLC); u != 0 {
			t.Errorf("shard %d load %v after drain, want 0", i, u)
		}
	}
}

// TestEvacuationRetryBackoff strands a waiter (no survivor admits it at
// crash time) and checks the backoff retry migrates it once a survivor
// drains. Stealing is disabled so only the retry path can move it.
func TestEvacuationRetryBackoff(t *testing.T) {
	d, m := buildDomains(t, StrictPolicy{}, DomainConfig{Domains: 3, DisableSteal: true})
	if err := d.EnableRecovery(DefaultRecoveryConfig()); err != nil {
		t.Fatal(err)
	}
	sink := newKindSink()
	d.AddSink(sink)
	// 15 MB LLC → 5 MB per shard. hog-a lands on shard 0 with the 4 MB
	// waiter queued behind it; hog-b (long) on shard 1, hog-c (~3 ms) on
	// shard 2. After the crash shard 1 absorbs shard 0's share (10 MB):
	// hog-a migrates there next to hog-b (4+4 ≤ 10), the waiter fits
	// neither survivor (8+4 > 10, 4+4 > 5) and strands onto shard 1's
	// waitlist — the least-loaded tie breaks low, and nothing there
	// drains for ~200 ms — so only a retry tick can notice shard 2
	// emptying when hog-c ends and migrate the waiter across (4 ≤ 5).
	if _, err := m.AddProcess(declaredProc("hog-a", pp.MB(4), 4e8)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(declaredProc("hog-b", pp.MB(4), 4e8)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(declaredProc("hog-c", pp.MB(4), 6e6)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(declaredProc("waiter", pp.MB(4), 1e7)); err != nil {
		t.Fatal(err)
	}
	m.Engine().After(sim.Millisecond, func() {
		if err := d.InjectCrash(0); err != nil {
			t.Error(err)
		}
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	rst := d.RecoveryStats()
	if rst.EvacRetries == 0 {
		t.Fatal("no retry ticks fired for the stranded waiter")
	}
	if rst.LadderFallbacks != 0 {
		t.Fatalf("ladder fallbacks = %d, want 0 (the retry found a fit)", rst.LadderFallbacks)
	}
	// Transfer to a survivor waitlist + forced active move + the retry's
	// eventual migration.
	if rst.Evacuations < 3 {
		t.Fatalf("evacuations = %d, want >= 3", rst.Evacuations)
	}
	if st := d.Stats(); st.Ends != 4 {
		t.Fatalf("ends = %d, want 4", st.Ends)
	}
	if st := d.Stats(); st.Fallbacks != 0 {
		t.Fatalf("fallbacks = %d, want 0 (the waiter was admitted, not abandoned)", st.Fallbacks)
	}
	if d.Waitlisted() != 0 || d.ActivePeriods() != 0 {
		t.Fatal("registries not drained after the run")
	}
}

// TestRetryExhaustionFallsToLadder pins the bounded half of the backoff:
// when every survivor stays full past MaxRetries, the stranded waiter is
// handed to the admission ladder and the fallback deadline bounds its
// wait.
func TestRetryExhaustionFallsToLadder(t *testing.T) {
	d, m := buildDomains(t, StrictPolicy{}, DomainConfig{Domains: 3, DisableSteal: true})
	if err := d.EnableRecovery(RecoveryConfig{
		Mode: RecoverEvacuate, MaxRetries: 1, RetryBase: sim.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	d.SetAdmissionDeadline(30 * sim.Millisecond)
	// Every hog runs long: the survivors never drain before the retry
	// budget (two ticks, ~2 ms + 4 ms) is gone.
	for _, name := range []string{"hog-a", "hog-b", "hog-c"} {
		if _, err := m.AddProcess(declaredProc(name, pp.MB(4), 4e8)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.AddProcess(declaredProc("waiter", pp.MB(4), 1e7)); err != nil {
		t.Fatal(err)
	}
	m.Engine().After(sim.Millisecond, func() {
		if err := d.InjectCrash(0); err != nil {
			t.Error(err)
		}
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	rst := d.RecoveryStats()
	if rst.LadderFallbacks != 1 {
		t.Fatalf("ladder fallbacks = %d, want 1", rst.LadderFallbacks)
	}
	st := d.Stats()
	if st.Fallbacks < 1 {
		t.Fatalf("fallback admissions = %d, want >= 1 (the deadline caught the waiter)", st.Fallbacks)
	}
	if st.Ends != 4 {
		t.Fatalf("ends = %d, want 4", st.Ends)
	}
	// The deadline was re-armed with the waiter's *remaining* budget at
	// transfer time, so the fallback fires at its original 30 ms bound.
	if st.MaxWait > 31*sim.Millisecond {
		t.Errorf("max wait %v exceeds the fallback deadline bound", st.MaxWait)
	}
}

// TestDropMode pins the RecoverDrop baseline: every period registered on
// the crashed shard is degraded to untracked admission on the spot and
// the shard's ledger empties immediately.
func TestDropMode(t *testing.T) {
	d, m := buildDomains(t, StrictPolicy{}, DomainConfig{Domains: 2, DisableSteal: true})
	if err := d.EnableRecovery(RecoveryConfig{Mode: RecoverDrop}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(declaredProc("hog-long", pp.MB(6), 4e8)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(declaredProc("hog-short", pp.MB(6), 1e7)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(declaredProc("waiter", pp.MB(6), 1e7)); err != nil {
		t.Fatal(err)
	}
	m.Engine().After(sim.Millisecond, func() {
		if err := d.InjectCrash(0); err != nil {
			t.Error(err)
		}
		if u := d.Shard(0).Resources().Usage(pp.ResourceLLC); u != 0 {
			t.Errorf("shard 0 load %v right after drop, want 0", u)
		}
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	rst := d.RecoveryStats()
	if rst.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2 (the active and the waiter)", rst.Dropped)
	}
	if rst.Evacuations != 0 {
		t.Fatalf("evacuations = %d under RecoverDrop, want 0", rst.Evacuations)
	}
	st := d.Stats()
	if st.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1 (the waiter was fallback-admitted)", st.Fallbacks)
	}
	if st.Ends != 3 {
		t.Fatalf("ends = %d, want 3", st.Ends)
	}
}

// TestStallMode pins the RecoverStall baseline: nothing moves, the
// crashed shard's active drains on its own end and the waiter waits out
// the fallback deadline.
func TestStallMode(t *testing.T) {
	d, m := buildDomains(t, StrictPolicy{}, DomainConfig{Domains: 2, DisableSteal: true})
	if err := d.EnableRecovery(RecoveryConfig{Mode: RecoverStall}); err != nil {
		t.Fatal(err)
	}
	d.SetAdmissionDeadline(20 * sim.Millisecond)
	if _, err := m.AddProcess(declaredProc("hog-long", pp.MB(6), 4e8)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(declaredProc("hog-short", pp.MB(6), 1e7)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(declaredProc("waiter", pp.MB(6), 1e7)); err != nil {
		t.Fatal(err)
	}
	m.Engine().After(sim.Millisecond, func() {
		if err := d.InjectCrash(0); err != nil {
			t.Error(err)
		}
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	rst := d.RecoveryStats()
	if rst.Evacuations != 0 || rst.Dropped != 0 {
		t.Fatalf("stall moved/dropped %d/%d periods, want 0/0", rst.Evacuations, rst.Dropped)
	}
	st := d.Stats()
	if st.Fallbacks < 1 {
		t.Fatalf("fallbacks = %d, want >= 1 (only the deadline can free the stalled waiter)", st.Fallbacks)
	}
	if st.Ends != 3 {
		t.Fatalf("ends = %d, want 3", st.Ends)
	}
	if !d.Quarantined(0) {
		t.Error("stalled shard should remain quarantined")
	}
}

// TestAuditRepairsLedger drives the auditor directly: injected skew in
// either direction is repaired back to the exact sum of admitted
// tracked charges, and Quiesce stays exact through a corruption.
func TestAuditRepairsLedger(t *testing.T) {
	d := mustDomainSet(t, StrictPolicy{}, pp.MB(16), DefaultDomainConfig(2))
	if err := d.EnableRecovery(DefaultRecoveryConfig()); err != nil {
		t.Fatal(err)
	}
	sink := newKindSink()
	d.AddSink(sink)
	dm := pp.Demand{Resource: pp.ResourceLLC, WorkingSet: pp.MB(3), Reuse: pp.ReuseHigh}
	for i := 0; i < 4; i++ {
		key := periodKey{procID: i, phaseIdx: 0}
		di := d.place([]pp.Demand{dm})
		s := d.Shard(di)
		per := &period{key: key, demands: []pp.Demand{dm}}
		per.id = s.allocID()
		s.active[key] = per
		s.byID[per.id] = per
		d.domainOf[key] = di
		s.admit(per)
	}
	usage := func(i int) pp.Bytes { return d.Shard(i).Resources().Usage(pp.ResourceLLC) }
	want0, want1 := usage(0), usage(1)

	if err := d.InjectLedgerCorruption(0, pp.MB(2)); err != nil {
		t.Fatal(err)
	}
	if usage(0) != want0+pp.MB(2) {
		t.Fatalf("skew not applied: usage %v", usage(0))
	}
	if err := d.InjectLedgerCorruption(1, -pp.MB(100)); err != nil {
		t.Fatal(err)
	}
	if usage(1) != 0 {
		t.Fatalf("negative skew not clamped: usage %v", usage(1))
	}
	d.runAudit(false)
	if usage(0) != want0 || usage(1) != want1 {
		t.Fatalf("audit left usage %v/%v, want %v/%v", usage(0), usage(1), want0, want1)
	}
	rst := d.RecoveryStats()
	if rst.Corruptions != 2 || rst.AuditRuns != 1 || rst.AuditRepairs != 2 {
		t.Fatalf("corruptions/runs/repairs = %d/%d/%d, want 2/1/2",
			rst.Corruptions, rst.AuditRuns, rst.AuditRepairs)
	}
	if sink.counts[EventAudit] != 2 {
		t.Fatalf("audit events = %d, want 2 (one per drifted shard)", sink.counts[EventAudit])
	}
	// A second pass over the clean ledger repairs nothing.
	d.runAudit(false)
	if got := d.RecoveryStats().AuditRepairs; got != 2 {
		t.Fatalf("clean audit repaired (%d total repairs)", got)
	}

	// Quiesce through a fresh corruption: the pre-reclaim audit keeps the
	// zero-residue check exact.
	if err := d.InjectLedgerCorruption(0, pp.MB(5)); err != nil {
		t.Fatal(err)
	}
	if got := d.Quiesce(); got != 4 {
		t.Fatalf("Quiesce reclaimed %d, want 4", got)
	}
	if usage(0) != 0 || usage(1) != 0 {
		t.Fatalf("usage %v/%v after Quiesce, want 0/0", usage(0), usage(1))
	}
}

// TestAuditTickRepairsMidRun checks the periodic tick end to end: a
// mid-run corruption is discovered and repaired on the next interval
// without disturbing the workload.
func TestAuditTickRepairsMidRun(t *testing.T) {
	d, m := buildDomains(t, StrictPolicy{}, DomainConfig{Domains: 2, DisableSteal: true})
	if err := d.EnableRecovery(RecoveryConfig{
		Mode: RecoverEvacuate, AuditInterval: 2 * sim.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	sink := newKindSink()
	d.AddSink(sink)
	if _, err := m.AddProcess(declaredProc("worker", pp.MB(6), 1e7)); err != nil {
		t.Fatal(err)
	}
	m.Engine().After(sim.Millisecond, func() {
		if err := d.InjectLedgerCorruption(0, pp.MB(3)); err != nil {
			t.Error(err)
		}
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	rst := d.RecoveryStats()
	if rst.Corruptions != 1 || rst.AuditRepairs < 1 {
		t.Fatalf("corruptions/repairs = %d/%d, want 1/>=1", rst.Corruptions, rst.AuditRepairs)
	}
	if rst.AuditRuns < 2 {
		t.Fatalf("audit runs = %d, want >= 2 (the tick re-arms)", rst.AuditRuns)
	}
	if sink.counts[EventAudit] < 1 {
		t.Fatal("no audit event emitted for the repair")
	}
	if st := d.Stats(); st.Ends != 1 {
		t.Fatalf("ends = %d, want 1", st.Ends)
	}
	if u := d.Shard(0).Resources().Usage(pp.ResourceLLC); u != 0 {
		t.Fatalf("shard 0 load %v after drain, want 0", u)
	}
}

// TestRecoverDomainMidRun heals a crashed shard mid-run: the shard comes
// back online at the baseline split and the time-to-recover lands in the
// recovery histogram.
func TestRecoverDomainMidRun(t *testing.T) {
	d, m := buildDomains(t, StrictPolicy{}, DomainConfig{Domains: 2, DisableSteal: true})
	if err := d.EnableRecovery(DefaultRecoveryConfig()); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	d.SetMetrics(reg)
	sink := newKindSink()
	d.AddSink(sink)
	if _, err := m.AddProcess(declaredProc("hog-long", pp.MB(6), 4e8)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(declaredProc("hog-short", pp.MB(6), 1e7)); err != nil {
		t.Fatal(err)
	}
	m.Engine().After(sim.Millisecond, func() {
		if err := d.InjectCrash(0); err != nil {
			t.Error(err)
		}
	})
	m.Engine().After(3*sim.Millisecond, func() {
		if err := d.RecoverDomain(0); err != nil {
			t.Error(err)
		}
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Quarantined(0) {
		t.Error("shard 0 still quarantined after RecoverDomain")
	}
	half := machine.DefaultConfig().LLCCapacity / 2
	for i := 0; i < 2; i++ {
		if c := d.Shard(i).Resources().Capacity(pp.ResourceLLC); c != half {
			t.Errorf("shard %d capacity %v after heal, want baseline %v", i, c, half)
		}
	}
	rst := d.RecoveryStats()
	if rst.Failures != 1 || rst.Reintegrations != 1 {
		t.Fatalf("failures/reintegrations = %d/%d, want 1/1", rst.Failures, rst.Reintegrations)
	}
	if sink.counts[EventRecover] != 1 {
		t.Fatalf("recover events = %d, want 1", sink.counts[EventRecover])
	}
	h := reg.Histogram(MetricRecoverySeconds)
	if h.Count() != 1 {
		t.Fatalf("recovery histogram count = %d, want 1", h.Count())
	}
	if got, want := h.Sum(), (2 * sim.Millisecond).Seconds(); got < want*0.9 || got > want*1.1 {
		t.Errorf("time-to-recover %v s, want ~%v s", got, want)
	}
	if st := d.Stats(); st.Ends != 2 {
		t.Fatalf("ends = %d, want 2", st.Ends)
	}
}
