package core

import (
	"fmt"
	"sort"

	"rdasched/internal/machine"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
	"rdasched/internal/sim"
	"rdasched/internal/telemetry"
)

// Multi-domain scheduling. The paper's admission control guards one
// shared LLC budget; production machines split cores into several LLC
// domains (sockets, CCXs), each with its own capacity to fill and its
// own waitlist to drain. A DomainSet shards the scheduler accordingly:
// N per-domain Schedulers — each with its own ResourceMonitor, waitlist,
// lease table, and governor ladder — behind a single machine.Gate, plus
// two cross-domain mechanisms:
//
//   - Demand-aware placement. A new period is assigned to a domain at
//     its first pp_begin: best fit by the remaining outcome Algorithm 1
//     would leave (pack tight, keep the big holes open for big demands),
//     falling back to the least-loaded domain when nowhere admits right
//     now. The decision reads only per-shard monitor state — itself a
//     deterministic function of the virtual-clock history — so placement
//     is reproducible across runs and worker counts.
//
//   - Cross-domain steal. After every wake cascade, waitlisted periods
//     that have aged past StealAge are migrated, oldest first across the
//     whole set, to any other domain that can admit them immediately.
//     The period object moves wholesale — same admission ID, same
//     ticket, same enqueue timestamp — so its wait clock never resets
//     and MaxWait measures the true wait. One hot domain therefore
//     cannot starve its backlog while its peers idle.
//
// A single-domain set installs neither mechanism and delegates every
// call to its one shard, which makes Domains=1 structurally identical
// to the unsharded scheduler (the differential suite in internal/perf
// pins this byte for byte).
//
// The domains shard the *admission* budget; the machine model's
// contention stays global (one physical LLC in the simulated Table 1
// machine). That is the conservative direction: any makespan a sharded
// configuration wins in E6, it wins despite paying full global
// contention for the extra parallelism it admits.

// DefaultStealAge is the steal pass's age bar when DomainConfig leaves
// StealAge zero: sized for the paper's workload timescale (runs of
// virtual seconds); harnesses that shrink workloads scale it alongside
// (see experiments.RunDomains).
const DefaultStealAge = 10 * sim.Millisecond

// DomainConfig sizes a DomainSet.
type DomainConfig struct {
	// Domains is the number of LLC domains; NewDomainSet rejects values
	// <= 0 (use 1 for the unsharded scheduler behind a facade).
	Domains int
	// StealAge is how long a waitlisted period must have aged on the
	// virtual clock before the steal pass may migrate it cross-domain.
	// 0 selects DefaultStealAge; negative values are rejected — set
	// DisableSteal to turn the pass off.
	StealAge sim.Duration
	// DisableSteal turns the cross-domain steal pass off entirely.
	DisableSteal bool
}

// DefaultDomainConfig returns the default configuration for n domains
// (stealing enabled at DefaultStealAge).
func DefaultDomainConfig(n int) DomainConfig { return DomainConfig{Domains: n} }

// Validate reports whether the configuration can build a DomainSet;
// every violation wraps ErrInvalidDomainConfig.
func (c DomainConfig) Validate() error {
	if c.Domains <= 0 {
		return fmt.Errorf("%w: Domains %d (want >= 1)", ErrInvalidDomainConfig, c.Domains)
	}
	if c.StealAge < 0 {
		return fmt.Errorf("%w: negative StealAge %v (set DisableSteal to disable stealing)",
			ErrInvalidDomainConfig, c.StealAge)
	}
	return nil
}

// stealAge resolves the configured age bar (0 = disabled).
func (c DomainConfig) stealAge() sim.Duration {
	switch {
	case c.DisableSteal:
		return 0
	case c.StealAge == 0:
		return DefaultStealAge
	default:
		return c.StealAge
	}
}

// DomainStat is one domain's end-of-run snapshot.
type DomainStat struct {
	Domain     int
	Capacity   pp.Bytes
	Load       pp.Bytes
	Peak       pp.Bytes
	Active     int
	Waitlisted int
	Stats      Stats
}

// DomainStats summarizes a DomainSet's cross-domain activity.
type DomainStats struct {
	Domains    int
	Placements uint64 // periods assigned by the placer (zero at Domains=1: no decision to make)
	Steals     uint64 // aged waiters migrated cross-domain
	PerDomain  []DomainStat
}

// DomainSet is N per-domain schedulers behind one machine.Gate. It is
// single-goroutine like the Scheduler it shards.
type DomainSet struct {
	cfg    DomainConfig
	shards []*Scheduler
	single bool // one domain: pure delegation, placer and steal disengaged

	nextID   pp.ID
	domainOf map[periodKey]int // period → owning domain, while registered

	placements uint64
	steals     uint64

	timer    Timer
	clock    Clock
	sinks    []EventSink
	reg      *telemetry.Registry // bound by SetMetrics; recovery histogram source
	stealing bool                // reentry guard for the steal scan (and Quiesce suppression)
	stealEv  *sim.Event          // pending not-yet-aged re-scan tick
	rsink    ReplaySink          // admission journal (replay.go); nil when detached or absent

	// Fault and recovery state; nil until EnableRecovery
	// (domain_recovery.go).
	rec *recovery
}

// NewDomainSet partitions an LLC budget into cfg.Domains equal shards
// (remainder bytes go to the low-index domains) and builds one
// Scheduler per domain under the shared policy. Bind the machine with
// SetWaker/SetClock/SetTimer exactly as for a Scheduler. An invalid
// configuration returns ErrInvalidDomainConfig instead of deferring the
// failure to some later admission path.
func NewDomainSet(policy Policy, llcCapacity pp.Bytes, cfg DomainConfig) (*DomainSet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &DomainSet{
		cfg:      cfg,
		single:   cfg.Domains == 1,
		domainOf: make(map[periodKey]int),
	}
	for i := 0; i < cfg.Domains; i++ {
		s := New(policy, splitShare(llcCapacity, i, cfg.Domains))
		if !d.single {
			s.idSrc = d.allocID
			s.domainIdx = i
			s.postWake = d.stealScan
		}
		d.shards = append(d.shards, s)
	}
	return d, nil
}

// splitShare is the deterministic n-way byte split: floor(total/n) per
// domain, with the remainder going one byte each to the low indices.
// It is monotone in total, so any reserve <= total splits into
// per-domain reserves <= per-domain capacities.
func splitShare(total pp.Bytes, i, n int) pp.Bytes {
	share := total / pp.Bytes(n)
	if pp.Bytes(i) < total-share*pp.Bytes(n) {
		share++
	}
	return share
}

func (d *DomainSet) allocID() pp.ID {
	d.nextID++
	return d.nextID
}

// NumDomains returns the number of domains.
func (d *DomainSet) NumDomains() int { return len(d.shards) }

// Shard returns domain i's scheduler (introspection for tests and
// benchmarks; treat it as read-only), or nil when i is out of range.
func (d *DomainSet) Shard(i int) *Scheduler {
	if i < 0 || i >= len(d.shards) {
		return nil
	}
	return d.shards[i]
}

// Policy returns the shared admission policy, or nil on an empty shard
// set (a zero-value DomainSet that never went through NewDomainSet).
func (d *DomainSet) Policy() Policy {
	if len(d.shards) == 0 {
		return nil
	}
	return d.shards[0].Policy()
}

// SetWaker binds the machine used to resume paused threads.
func (d *DomainSet) SetWaker(w Waker) {
	for _, s := range d.shards {
		s.SetWaker(w)
	}
}

// SetClock binds the timestamp source for every shard and for the
// steal pass's age computation.
func (d *DomainSet) SetClock(c Clock) {
	d.clock = c
	for _, s := range d.shards {
		s.SetClock(c)
	}
}

// SetTimer binds the event engine for leases, admission deadlines, the
// steal pass's aging tick, and (when recovery is enabled) the audit and
// evacuation-retry ticks.
func (d *DomainSet) SetTimer(t Timer) {
	d.timer = t
	for _, s := range d.shards {
		s.SetTimer(t)
	}
	d.armAuditTick()
}

// SetLease configures the period lease on every shard.
func (d *DomainSet) SetLease(v sim.Duration) {
	for _, s := range d.shards {
		s.SetLease(v)
	}
}

// SetAdmissionDeadline configures fallback admission on every shard.
func (d *DomainSet) SetAdmissionDeadline(v sim.Duration) {
	for _, s := range d.shards {
		s.SetAdmissionDeadline(v)
	}
}

// SetReserve splits an unmanaged-workload reservation across the
// domains the same way the capacity was split.
func (d *DomainSet) SetReserve(b pp.Bytes) {
	for i, s := range d.shards {
		s.SetReserve(splitShare(b, i, len(d.shards)))
	}
}

// SetResourceCapacity splits a secondary resource budget (memory
// bandwidth) across the domains, mirroring the LLC partition.
func (d *DomainSet) SetResourceCapacity(r pp.Resource, total pp.Bytes) {
	for i, s := range d.shards {
		s.Resources().SetCapacity(r, splitShare(total, i, len(d.shards)))
	}
}

// EnableGovernor attaches an independent governor ladder to every shard
// (each domain degrades and recovers on its own pressure).
func (d *DomainSet) EnableGovernor(cfg GovernorConfig) {
	for _, s := range d.shards {
		s.EnableGovernor(cfg)
	}
}

// SetMetrics binds one registry to every shard: histograms are shared
// instruments, so each decision lands in the same distribution. The
// set keeps the handle for the recovery layer's time-to-recover
// histogram.
func (d *DomainSet) SetMetrics(reg *telemetry.Registry) {
	d.reg = reg
	for _, s := range d.shards {
		s.SetMetrics(reg)
	}
}

// AddSink subscribes a sink to every shard's decision stream and to the
// set's own placement/steal events. Events arrive in virtual-time order
// because every shard emits synchronously on the same goroutine.
func (d *DomainSet) AddSink(sink EventSink) {
	if sink == nil {
		return
	}
	d.sinks = append(d.sinks, sink)
	for _, s := range d.shards {
		s.AddSink(sink)
	}
}

// EnterPhase implements machine.Gate: route to the period's domain,
// placing it first if this is its opening pp_begin.
func (d *DomainSet) EnterPhase(t *machine.Thread, phaseIdx int, ph *proc.Phase) bool {
	if d.single {
		return d.shards[0].EnterPhase(t, phaseIdx, ph)
	}
	key := periodKey{t.Process().ID(), phaseIdx}
	di, ok := d.domainOf[key]
	if !ok {
		di = d.place(ph.Demands())
		d.domainOf[key] = di
		d.placements++
		d.emitDomain(EventPlace, di, key, ph.Demand())
		d.rrecSet(RecPlace, func(r *ReplayRecord) {
			r.Set.MapAdd = []PlacementEntry{{Proc: key.procID, Phase: key.phaseIdx, Domain: di}}
		})
	}
	return d.shards[di].EnterPhase(t, phaseIdx, ph)
}

// ExitPhase implements machine.Gate: route to the owning domain and
// drop the routing entry once the shard no longer has the period
// registered. An end with no routing entry (long after a reclaim
// already dropped it) goes to the first domain remembering the key as
// reclaimed, so it is counted as a late end rather than a new one.
func (d *DomainSet) ExitPhase(t *machine.Thread, phaseIdx int, ph *proc.Phase) {
	if d.single {
		d.shards[0].ExitPhase(t, phaseIdx, ph)
		return
	}
	key := periodKey{t.Process().ID(), phaseIdx}
	di, ok := d.domainOf[key]
	if !ok {
		di = d.lateDomain(key)
	}
	s := d.shards[di]
	s.ExitPhase(t, phaseIdx, ph)
	if ok && s.active[key] == nil {
		delete(d.domainOf, key)
		d.rrecSet(RecUnmap, func(r *ReplayRecord) {
			r.Set.MapDel = []ProcPhase{{Proc: key.procID, Phase: key.phaseIdx}}
		})
	}
}

func (d *DomainSet) lateDomain(key periodKey) int {
	for i, s := range d.shards {
		if s.reclaimed[key] {
			return i
		}
	}
	return 0
}

// place chooses the domain for a new period: among domains whose
// predicate admits the demands right now, the best fit — the smallest
// remaining outcome, so small periods pack into busy domains and large
// holes stay open for large demands. When nowhere admits, the period
// waitlists on the least-loaded domain (by LLC usage fraction), where
// capacity frees soonest. Ties break toward the lower index; every
// input is per-shard monitor state, so the choice is deterministic.
func (d *DomainSet) place(ds []pp.Demand) int {
	best, bestOut := -1, pp.Bytes(0)
	for i, s := range d.shards {
		if run, _ := s.tryScheduleAll(ds); !run {
			continue
		}
		out := s.remainingAfter(ds[0])
		if best == -1 || out < bestOut {
			best, bestOut = i, out
		}
	}
	if best >= 0 {
		return best
	}
	// Nowhere admits right now: waitlist on the least-loaded surviving
	// domain. Quarantined shards are skipped — their zero capacity would
	// otherwise make them read as empty; with every shard offline the
	// period parks on shard 0 and waits out the quarantine there.
	least := -1
	for i := range d.shards {
		if d.shards[i].offline {
			continue
		}
		if least == -1 || d.loadFrac(i) < d.loadFrac(least) {
			least = i
		}
	}
	if least < 0 {
		least = 0
	}
	return least
}

// remainingAfter is the outcome Algorithm 1 computes for demand dm on
// this shard: capacity minus reserve minus load minus the demand.
func (s *Scheduler) remainingAfter(dm pp.Demand) pp.Bytes {
	capacity := s.rm.Capacity(dm.Resource)
	if dm.Resource == pp.ResourceLLC {
		capacity -= s.reserve
	}
	return capacity - s.rm.Usage(dm.Resource) - dm.WorkingSet
}

func (d *DomainSet) loadFrac(i int) float64 {
	s := d.shards[i]
	c := s.rm.Capacity(pp.ResourceLLC)
	if c <= 0 {
		return 0
	}
	return float64(s.rm.Usage(pp.ResourceLLC)) / float64(c)
}

// stealCandidate pairs an aged waiter with its source domain.
type stealCandidate struct {
	per *period
	src int
}

// stealScan is the cross-domain steal pass, run (as each shard's
// postWake hook) after every wake cascade: waitlisted periods aged past
// StealAge are migrated, oldest enqueue first across the whole set, to
// a domain that can admit them immediately. Each migration changes two
// monitors, so the candidate list is rebuilt after every move until a
// full pass moves nothing. When candidates exist but none has aged
// yet, a timer tick re-runs the scan the moment the youngest crosses
// the bar — covering the stall where a domain sits idle, a neighbor's
// waiter ages, and no further event would otherwise trigger a scan.
func (d *DomainSet) stealScan() {
	age := d.cfg.stealAge()
	if d.single || d.stealing || d.clock == nil || age <= 0 {
		return
	}
	d.stealing = true
	defer func() { d.stealing = false }()
	for {
		now := d.clock()
		var cands []stealCandidate
		wait := sim.Duration(-1) // deficit until the next candidate ages
		for si, s := range d.shards {
			si, s := si, s
			if s.offline {
				// A quarantined shard's backlog belongs to the recovery
				// path (evacuation / retry), not the steal pass.
				continue
			}
			s.waitlist.Each(func(per *period, _ uint64) {
				if s.breakerBlocked(per.key.procID) {
					// The owner's misdeclaration breaker is open: stealing
					// would admit the period on a shard that never saw the
					// strikes, re-entering admission around the quarantine.
					return
				}
				w := now.DurationSince(per.enqueuedAt)
				if w >= age {
					cands = append(cands, stealCandidate{per: per, src: si})
				} else if deficit := age - w; wait < 0 || deficit < wait {
					wait = deficit
				}
			})
		}
		sort.SliceStable(cands, func(i, j int) bool {
			a, b := cands[i], cands[j]
			if a.per.enqueuedAt != b.per.enqueuedAt {
				return a.per.enqueuedAt < b.per.enqueuedAt
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.per.ticket < b.per.ticket
		})
		moved := false
		for _, c := range cands {
			if di, ok := d.fitTarget(c.per, c.src); ok {
				d.migrate(c.per, c.src, di, EventSteal)
				moved = true
				break
			}
		}
		if moved {
			continue
		}
		if wait >= 0 {
			d.armStealTick(wait)
		}
		return
	}
}

// fitTarget picks a migration destination for a period leaving shard
// src: best fit by remaining outcome among the *other* online domains
// that admit it right now and have not quarantined its owner process
// (src's own wake scan already had its chance). Shared by the steal
// pass and the evacuation path.
func (d *DomainSet) fitTarget(per *period, src int) (int, bool) {
	best, bestOut := -1, pp.Bytes(0)
	for i, s := range d.shards {
		if i == src || s.offline || s.breakerBlocked(per.key.procID) {
			continue
		}
		if run, _ := s.tryScheduleAll(per.demands); !run {
			continue
		}
		out := s.remainingAfter(per.demands[0])
		if best == -1 || out < bestOut {
			best, bestOut = i, out
		}
	}
	return best, best >= 0
}

// breakerBlocked reports whether a process's misdeclaration breaker is
// open on this shard (false without a governor): such a process must
// not re-enter tracked admission through a cross-shard migration.
func (s *Scheduler) breakerBlocked(procID int) bool {
	if s.gov == nil {
		return false
	}
	return s.BreakerState(procID, s.now()) == BreakerOpen
}

// armStealTick schedules a re-scan for when the youngest waiter will
// have aged; at most one tick is pending.
func (d *DomainSet) armStealTick(in sim.Duration) {
	if d.timer == nil || d.stealEv != nil {
		return
	}
	if in < 1 {
		in = 1 // next engine step, never this instant
	}
	d.stealEv = d.timer.After(in, d.stealTick)
	d.rrecSet(RecStealTick, nil)
}

// stealTick is the armed re-scan callback. Both the arm and the fire
// are journaled so a restore reconstructs the pending tick exactly: the
// fire record clears the persisted StealTickAt (the event is gone), and
// any re-arm inside stealScan journals the new one.
func (d *DomainSet) stealTick() {
	d.stealEv = nil
	d.rrecSet(RecStealTick, nil)
	d.stealScan()
}

// migrate moves a waiter from domain si to di and admits it there;
// kind records the reason (EventSteal for the aging pass, EventEvacuate
// for the recovery path). The period object moves wholesale: its
// admission ID, ticket, and enqueue timestamp are untouched, so the
// wait clock (MaxWait, the wake event's Wait, the governor's pressure
// window) measures the full wait — a migration never resets how long
// the period already waited. The pending admission deadline is
// cancelled exactly as a wake would: the migration *is* the admission.
func (d *DomainSet) migrate(per *period, si, di int, kind EventKind) {
	src, dst := d.shards[si], d.shards[di]
	if !src.waitlist.Remove(per.ticket) {
		panic(fmt.Sprintf("core: migration of period %d not on domain %d waitlist", per.id, si))
	}
	delete(src.active, per.key)
	delete(src.byID, per.id)
	delete(src.parked, per.key.procID)
	src.cancelDeadline(per)
	dst.active[per.key] = per
	dst.byID[per.id] = per
	d.domainOf[per.key] = di
	if kind == EventEvacuate {
		d.rec.stats.Evacuations++
	} else {
		d.steals++
	}
	d.emitDomain(kind, di, per.key, per.demands[0])
	runnable, safeguard := dst.tryScheduleAll(per.demands)
	if !runnable {
		panic(fmt.Sprintf("core: migration destination %d cannot admit period %d", di, per.id))
	}
	if safeguard {
		dst.stats.Safegrds++
	}
	dst.admit(per)
	dst.emit(EventWake, per, per.key, per.demands[0])
	dst.noteWait(per)
	dst.govWake(per)
	ws := per.waiters
	dst.release(per)
	dst.rrec(RecSteal, per, func(r *ReplayRecord) {
		r.Src = si
		r.SrcParkedDel = []int{per.key.procID}
		for _, t := range ws {
			r.InsideAdd = append(r.InsideAdd, insideEntry(t.ID(), per.key))
		}
		if r.Set != nil {
			r.Set.MapAdd = append(r.Set.MapAdd, PlacementEntry{Proc: per.key.procID, Phase: per.key.phaseIdx, Domain: di})
		}
	})
}

// emitDomain publishes a placement or steal decision to the set's
// sinks. Load is the destination domain's LLC load at emission (before
// the admission for both kinds); ID is 0 for placements — the period
// does not exist until the shard's EnterPhase opens it.
func (d *DomainSet) emitDomain(kind EventKind, di int, key periodKey, dm pp.Demand) {
	if len(d.sinks) == 0 {
		return
	}
	var at sim.Time
	if d.clock != nil {
		at = d.clock()
	}
	s := d.shards[di]
	e := Event{
		At: at, Kind: kind, Proc: key.procID, Phase: key.phaseIdx,
		Demand: dm, Load: s.rm.Usage(pp.ResourceLLC), Domain: di,
	}
	if per := s.active[key]; per != nil {
		e.ID = per.id
	}
	for _, sink := range d.sinks {
		sink.Record(e)
	}
}

// Stats returns the global activity totals: counters sum across
// domains, MaxWait is the maximum.
func (d *DomainSet) Stats() Stats {
	var out Stats
	for _, s := range d.shards {
		st := s.stats
		out.Begins += st.Begins
		out.Ends += st.Ends
		out.Admitted += st.Admitted
		out.Denied += st.Denied
		out.Woken += st.Woken
		out.Safegrds += st.Safegrds
		out.Reclaimed += st.Reclaimed
		out.ReclaimedBytes += st.ReclaimedBytes
		out.Fallbacks += st.Fallbacks
		out.Rejected += st.Rejected
		out.LateEnds += st.LateEnds
		if st.MaxWait > out.MaxWait {
			out.MaxWait = st.MaxWait
		}
	}
	return out
}

// GovernorStats returns the governor counters summed across domains.
func (d *DomainSet) GovernorStats() GovernorStats {
	var out GovernorStats
	for _, s := range d.shards {
		gs := s.GovernorStats()
		out.Degradations += gs.Degradations
		out.Recoveries += gs.Recoveries
		out.Strikes += gs.Strikes
		out.Quarantines += gs.Quarantines
		out.QuarantinedAdmits += gs.QuarantinedAdmits
		out.Probes += gs.Probes
		out.Restores += gs.Restores
		out.Reservations += gs.Reservations
		out.AgedWakes += gs.AgedWakes
		out.Tightened += gs.Tightened
	}
	return out
}

// Waitlisted returns the number of periods waiting across all domains.
func (d *DomainSet) Waitlisted() int {
	n := 0
	for _, s := range d.shards {
		n += s.Waitlisted()
	}
	return n
}

// ActivePeriods returns the number of admitted periods across all
// domains.
func (d *DomainSet) ActivePeriods() int {
	n := 0
	for _, s := range d.shards {
		n += s.ActivePeriods()
	}
	return n
}

// DomainStats returns the set-wide summary plus one snapshot per
// domain.
func (d *DomainSet) DomainStats() DomainStats {
	out := DomainStats{
		Domains:    len(d.shards),
		Placements: d.placements,
		Steals:     d.steals,
	}
	for i, s := range d.shards {
		out.PerDomain = append(out.PerDomain, DomainStat{
			Domain:     i,
			Capacity:   s.rm.Capacity(pp.ResourceLLC),
			Load:       s.rm.Usage(pp.ResourceLLC),
			Peak:       s.rm.Peak(pp.ResourceLLC),
			Active:     s.ActivePeriods(),
			Waitlisted: s.Waitlisted(),
			Stats:      s.Stats(),
		})
	}
	return out
}

// Quiesce force-reclaims every registered period, domain by domain in
// index order (admission-ID order within each). The steal pass is
// suppressed for the duration: the run is over, and migrating a waiter
// into a domain whose reclamation already ran would leave load behind
// the zero-residue check.
func (d *DomainSet) Quiesce() int {
	if d.single {
		return d.shards[0].Quiesce()
	}
	d.stealing = true
	defer func() { d.stealing = false }()
	if d.rec != nil {
		// Repair any outstanding ledger drift first: Quiesce's zero-
		// residue check asserts the *exact* ledger, and an uncorrected
		// corruption skew would trip it (or hide a real leak).
		d.runAudit(false)
	}
	n := 0
	for _, s := range d.shards {
		n += s.Quiesce()
	}
	return n
}

// PublishStats writes the global aggregate under the same rda_* names
// the unsharded scheduler publishes, then (at two or more domains) the
// rda_domain_* family: placement/steal totals and per-domain
// load/peak/waitlist/admitted instruments. A single-domain set
// delegates to its shard, producing byte-identical expositions to the
// unsharded scheduler.
func (d *DomainSet) PublishStats(reg *telemetry.Registry) {
	if d.single {
		d.shards[0].PublishStats(reg)
		return
	}
	var load pp.Bytes
	for _, s := range d.shards {
		load += s.rm.Usage(pp.ResourceLLC)
	}
	publishSchedStats(reg, d.Stats(), d.ActivePeriods(), load)
	if d.shards[0].gov != nil {
		level := GovNormal
		for _, s := range d.shards {
			if l, ok := s.Governor(); ok && l > level {
				level = l
			}
		}
		publishGovernorStats(reg, d.GovernorStats(), level)
	}
	reg.Counter(MetricDomainPlacements).Add(d.placements)
	reg.Counter(MetricDomainSteals).Add(d.steals)
	for i, s := range d.shards {
		suffix := fmt.Sprintf("_%d", i)
		reg.Gauge(MetricDomainLoadBytes+suffix).Set(float64(s.rm.Usage(pp.ResourceLLC)))
		reg.Gauge(MetricDomainPeakBytes+suffix).Set(float64(s.rm.Peak(pp.ResourceLLC)))
		reg.Gauge(MetricDomainWaitlist+suffix).Set(float64(s.Waitlisted()))
		reg.Counter(MetricDomainAdmitted+suffix+"_total").Add(s.stats.Admitted)
	}
	if d.rec != nil {
		publishRecoveryStats(reg, d.rec.stats)
	}
}
