package core

import (
	"fmt"

	"rdasched/internal/machine"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
	"rdasched/internal/sched"
)

// Waker resumes threads the scheduler paused. internal/machine's Machine
// satisfies it.
type Waker interface {
	Unblock(*machine.Thread)
}

// Stats counts scheduler activity for reports and tests.
type Stats struct {
	Begins   uint64 // periods opened (first thread in)
	Ends     uint64 // periods closed (last thread out)
	Admitted uint64 // periods admitted immediately
	Denied   uint64 // periods waitlisted at least once
	Woken    uint64 // threads resumed from the waitlist
	Safegrds uint64 // periods admitted by the empty-load safeguard
}

// periodKey identifies a progress period instance: one process entering
// one declared phase. Threads of the process share the period (they share
// the phase's working set), which is how the paper's multi-threaded
// SPLASH-2 applications register one demand per program phase.
type periodKey struct {
	procID   int
	phaseIdx int
}

// period is a registry entry: an active or pending progress period.
type period struct {
	id       pp.ID
	key      periodKey
	demands  []pp.Demand // LLC occupancy, plus optional extra resources
	taskPool bool
	admitted bool
	refs     int // threads currently executing inside the period
	waiters  []*machine.Thread
}

// Scheduler is the RDA scheduling extension. It implements machine.Gate:
// the machine consults it whenever a thread enters or exits a declared
// phase, which is the simulation image of the pp_begin/pp_end API calls.
//
// Processes that never declare phases bypass it entirely ("our system
// ignores processes that have not provided progress period information").
type Scheduler struct {
	policy Policy
	rm     *ResourceMonitor
	waker  Waker

	nextID   pp.ID
	active   map[periodKey]*period
	byID     map[pp.ID]*period
	waitlist sched.WaitQueue[*period]
	parked   map[int]bool // task-pool processes currently disabled (§3.4)
	reserve  pp.Bytes     // §6 extension: capacity withheld from admission
	stats    Stats

	// Decision log (see log.go).
	clock    Clock
	log      []Event
	logCap   int
	logStart int
	logDrop  uint64
}

// New builds a scheduler over the given policy and LLC capacity. The
// waker is bound later (SetWaker) because the machine is constructed with
// the gate as an argument.
func New(policy Policy, llcCapacity pp.Bytes) *Scheduler {
	if policy == nil {
		policy = AlwaysPolicy{}
	}
	return &Scheduler{
		policy: policy,
		rm:     NewResourceMonitor(llcCapacity),
		active: make(map[periodKey]*period),
		byID:   make(map[pp.ID]*period),
		parked: make(map[int]bool),
	}
}

// SetWaker binds the machine (or any Waker) used to resume paused
// threads.
func (s *Scheduler) SetWaker(w Waker) { s.waker = w }

// SetReserve withholds part of the LLC from admission decisions — the
// second extension in the paper's future work (§6): when LLC-intensive
// programs that declare no progress periods run alongside instrumented
// ones, the resource monitor cannot see their footprint, so a reservation
// leaves them headroom instead of letting admitted periods plan on cache
// they will not actually get. It panics on negative or over-capacity
// reservations (configuration error).
func (s *Scheduler) SetReserve(b pp.Bytes) {
	if b < 0 || b > s.rm.Capacity(pp.ResourceLLC) {
		panic(fmt.Sprintf("core: reserve %v outside [0, capacity]", b))
	}
	s.reserve = b
}

// Reserve returns the configured unmanaged-workload reservation.
func (s *Scheduler) Reserve() pp.Bytes { return s.reserve }

// Policy returns the configured policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// Resources returns the resource monitor (read access for reports).
func (s *Scheduler) Resources() *ResourceMonitor { return s.rm }

// Stats returns a copy of the activity counters.
func (s *Scheduler) Stats() Stats { return s.stats }

// Waitlisted returns the number of periods currently waiting.
func (s *Scheduler) Waitlisted() int { return s.waitlist.Len() }

// ActivePeriods returns the number of admitted periods.
func (s *Scheduler) ActivePeriods() int {
	n := 0
	for _, p := range s.active {
		if p.admitted {
			n++
		}
	}
	return n
}

// TrySchedule is Algorithm 1: given the demand of a period about to
// start, compute the space that would remain and ask the policy. The
// load-zero safeguard admits a period whose demand alone exceeds the
// policy limit when nothing else is running — without it such a period
// would wait forever (a deviation documented in DESIGN.md; the paper's
// workloads keep every working set under the LLC capacity, so it never
// fires there).
func (s *Scheduler) TrySchedule(d pp.Demand) (runnable, safeguard bool) {
	r := d.Resource
	capacity := s.rm.Capacity(r)
	if r == pp.ResourceLLC {
		capacity -= s.reserve
	}
	remaining := capacity - s.rm.Usage(r)
	outcome := remaining - d.WorkingSet
	if s.policy.Allows(outcome, capacity) {
		return true, false
	}
	if s.rm.Usage(r) == 0 {
		return true, true
	}
	return false, false
}

// tryScheduleAll runs Algorithm 1 for every demand a period declares: the
// period runs only when all targeted resources admit it. The safeguard
// applies per resource (an idle resource never blocks a lone period).
func (s *Scheduler) tryScheduleAll(ds []pp.Demand) (runnable, safeguard bool) {
	for _, d := range ds {
		run, sg := s.TrySchedule(d)
		if !run {
			return false, false
		}
		safeguard = safeguard || sg
	}
	return true, safeguard
}

// EnterPhase implements machine.Gate for a declared phase: the simulation
// image of pp_begin. The first thread of a process to arrive opens the
// period and runs Algorithm 1; siblings join an already-admitted period
// for free (the demand is per process-phase, counted once).
func (s *Scheduler) EnterPhase(t *machine.Thread, phaseIdx int, ph *proc.Phase) bool {
	key := periodKey{t.Process().ID(), phaseIdx}
	per := s.active[key]
	if per == nil {
		per = &period{
			key:      key,
			demands:  ph.Demands(),
			taskPool: t.Process().Spec().TaskPool,
		}
		s.nextID++
		per.id = s.nextID
		s.active[key] = per
		s.byID[per.id] = per
		s.stats.Begins++
		s.logEvent(EventBegin, key, per.demands[0])

		if s.parked[key.procID] {
			// §3.4: the whole pool is disabled until resources free up.
			s.deny(per, t)
			return false
		}
		runnable, safeguard := s.tryScheduleAll(per.demands)
		if !runnable {
			s.deny(per, t)
			return false
		}
		if safeguard {
			s.stats.Safegrds++
		}
		s.admit(per)
		s.logEvent(EventAdmit, key, per.demands[0])
		per.refs = 1
		return true
	}
	if per.admitted {
		per.refs++
		return true
	}
	per.waiters = append(per.waiters, t)
	return false
}

// ExitPhase implements machine.Gate: the simulation image of pp_end. The
// last thread out closes the period, releases its demand, and rescans the
// waitlist — "processes that are paused ... may be rescheduled later when
// another progress period completes and releases sufficient resources".
func (s *Scheduler) ExitPhase(t *machine.Thread, phaseIdx int, ph *proc.Phase) {
	key := periodKey{t.Process().ID(), phaseIdx}
	per := s.active[key]
	if per == nil || !per.admitted {
		panic(fmt.Sprintf("core: ExitPhase without active period (proc %d phase %d)", key.procID, phaseIdx))
	}
	per.refs--
	if per.refs > 0 {
		return
	}
	delete(s.active, key)
	delete(s.byID, per.id)
	for _, d := range per.demands {
		s.rm.Decrement(d)
	}
	s.stats.Ends++
	s.logEvent(EventEnd, key, per.demands[0])
	s.wakeWaitlist()
}

// wakeWaitlist admits pending periods in FIFO order while the policy
// allows, waking their blocked threads. Admission (the load increment)
// happens inside the scan so that each candidate is judged against the
// load *including* the periods just admitted before it.
func (s *Scheduler) wakeWaitlist() {
	woken := s.waitlist.WakeAll(func(per *period) bool {
		runnable, safeguard := s.tryScheduleAll(per.demands)
		if !runnable {
			return false
		}
		if safeguard {
			s.stats.Safegrds++
		}
		s.admit(per)
		s.logEvent(EventWake, per.key, per.demands[0])
		return true
	})
	for _, per := range woken {
		delete(s.parked, per.key.procID)
		per.refs = len(per.waiters)
		ws := per.waiters
		per.waiters = nil
		for _, t := range ws {
			s.stats.Woken++
			s.waker.Unblock(t)
		}
	}
}

func (s *Scheduler) admit(per *period) {
	for _, d := range per.demands {
		s.rm.Increment(d)
	}
	per.admitted = true
	s.stats.Admitted++
}

func (s *Scheduler) deny(per *period, t *machine.Thread) {
	per.waiters = append(per.waiters, t)
	s.waitlist.Enqueue(per)
	s.stats.Denied++
	s.logEvent(EventDeny, per.key, per.demands[0])
	if per.taskPool {
		s.parked[per.key.procID] = true
	}
}

// Lookup returns the primary (LLC) demand registered under a period ID
// (introspection for tests and the profiler round-trip).
func (s *Scheduler) Lookup(id pp.ID) (pp.Demand, bool) {
	per, ok := s.byID[id]
	if !ok {
		return pp.Demand{}, false
	}
	return per.demands[0], true
}
