package core

import (
	"errors"
	"fmt"

	"rdasched/internal/machine"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
	"rdasched/internal/sched"
	"rdasched/internal/sim"
)

// Waker resumes threads the scheduler paused. internal/machine's Machine
// satisfies it.
type Waker interface {
	Unblock(*machine.Thread)
}

// Stats counts scheduler activity for reports and tests.
type Stats struct {
	Begins   uint64 // periods opened (first thread in)
	Ends     uint64 // periods closed (last thread out)
	Admitted uint64 // periods admitted by the predicate (incl. wakes)
	Denied   uint64 // periods waitlisted at least once
	Woken    uint64 // threads resumed from the waitlist
	Safegrds uint64 // periods admitted by the empty-load safeguard

	// Robustness counters (the graceful-degradation layer).
	Reclaimed      uint64   // periods reclaimed by the lease watchdog or Quiesce
	ReclaimedBytes pp.Bytes // LLC load returned to the monitor by reclamations
	Fallbacks      uint64   // waitlisted periods degraded to stock admission at the deadline
	Rejected       uint64   // invalid external demands refused (period ran untracked)
	LateEnds       uint64   // pp_ends after reclamation, or with no matching begin

	// MaxWait is the longest any period sat on the waitlist before being
	// admitted (by release or fallback). Zero unless a Clock is bound.
	MaxWait sim.Duration
}

// periodKey identifies a progress period instance: one process entering
// one declared phase. Threads of the process share the period (they share
// the phase's working set), which is how the paper's multi-threaded
// SPLASH-2 applications register one demand per program phase.
type periodKey struct {
	procID   int
	phaseIdx int
}

// period is a registry entry: an active or pending progress period.
type period struct {
	id       pp.ID
	key      periodKey
	demands  []pp.Demand // LLC occupancy, plus optional extra resources
	taskPool bool
	admitted bool
	// untracked periods run without load charged to the monitor: either
	// their demand was invalid (rejected) or they were admitted by
	// fallback after the admission deadline. Their end decrements nothing.
	untracked bool
	refs      int // threads currently executing inside the period
	waiters   []*machine.Thread

	// Waitlist bookkeeping for bounded waiting.
	ticket     uint64
	enqueuedAt sim.Time
	admittedAt sim.Time
	deadlineEv *sim.Event
	leaseEv    *sim.Event

	// evacuated marks a waiter displaced off a failed shard that found no
	// surviving shard with room; the recovery retry loop re-probes these
	// until its backoff budget runs out (domain_recovery.go).
	evacuated bool
}

// Scheduler is the RDA scheduling extension. It implements machine.Gate:
// the machine consults it whenever a thread enters or exits a declared
// phase, which is the simulation image of the pp_begin/pp_end API calls.
//
// Processes that never declare phases bypass it entirely ("our system
// ignores processes that have not provided progress period information").
type Scheduler struct {
	policy Policy
	rm     *ResourceMonitor
	waker  Waker

	nextID   pp.ID
	active   map[periodKey]*period
	byID     map[pp.ID]*period
	waitlist sched.WaitQueue[*period]
	parked   map[int]bool // task-pool processes currently disabled (§3.4)
	reserve  pp.Bytes     // §6 extension: capacity withheld from admission
	stats    Stats

	// Graceful degradation (see lease.go): period leases, bounded
	// waiting, and the registry of reclaimed periods so a late pp_end is
	// recognized instead of corrupting the load table.
	timer     Timer
	lease     sim.Duration
	deadline  sim.Duration
	reclaimed map[periodKey]bool
	inside    map[int]periodKey // thread ID → period it is executing in

	// Adaptive admission governor (governor.go): nil when disabled.
	// inWake/rescan serialize wake cascades so a governor transition (or
	// any reentrant trigger) re-runs the scan instead of nesting it.
	gov    *governor
	inWake bool
	rescan bool

	// Decision stream (log.go) and metrics sampling (metrics.go).
	clock Clock
	sinks []EventSink
	ring  *EventRing
	met   *schedMetrics

	// Blame sinks (blame.go): the subset of sinks that also take the
	// blocker snapshot on every deny. blameBuf is the reused snapshot
	// scratch so an attached blame sink costs one sort per deny, not an
	// allocation; empty blameSinks keeps the deny path allocation-free.
	blameSinks []BlameSink
	blameBuf   []Blocker

	// Sharding hooks (domain.go). A DomainSet runs several shard
	// schedulers behind one gate: idSrc, when set, allocates admission
	// IDs from a set-wide counter so IDs stay unique across shards
	// (shared sinks key spans by ID); domainIdx stamps this shard's
	// index into its events; postWake runs after the outermost wake
	// cascade finishes — the set's cross-domain steal scan. All three
	// are zero on a standalone scheduler, leaving the seed path intact.
	idSrc     func() pp.ID
	domainIdx int
	postWake  func()

	// Checkpoint hooks (replay.go / state.go). rsink receives the
	// admission journal stream; setStamp, set by a sharded DomainSet,
	// stamps set-level post-state onto every shard record; pendingLease
	// accumulates governor lease re-arms between records; detached marks
	// a scheduler abandoned by the restore path — its timers are
	// cancelled and any stray callback must become a no-op.
	rsink        ReplaySink
	setStamp     func(*ReplayRecord)
	pendingLease []LeasePatch
	detached     bool

	// Recovery hooks (domain_recovery.go). offline quarantines the shard:
	// the predicate denies everything, including the empty-load safeguard,
	// so a crashed shard never admits even once drained. tolerateDrift
	// turns a load-table underflow on the decrement path into a clamp to
	// zero instead of a panic — required once injected ledger corruption
	// can legally skew usage below the sum of outstanding charges; the
	// invariant auditor repairs the ledger exactly afterwards.
	offline       bool
	tolerateDrift bool
}

// New builds a scheduler over the given policy and LLC capacity. The
// waker is bound later (SetWaker) because the machine is constructed with
// the gate as an argument.
func New(policy Policy, llcCapacity pp.Bytes) *Scheduler {
	if policy == nil {
		policy = AlwaysPolicy{}
	}
	return &Scheduler{
		policy:    policy,
		rm:        NewResourceMonitor(llcCapacity),
		active:    make(map[periodKey]*period),
		byID:      make(map[pp.ID]*period),
		parked:    make(map[int]bool),
		reclaimed: make(map[periodKey]bool),
		inside:    make(map[int]periodKey),
	}
}

// SetWaker binds the machine (or any Waker) used to resume paused
// threads.
func (s *Scheduler) SetWaker(w Waker) { s.waker = w }

// SetReserve withholds part of the LLC from admission decisions — the
// second extension in the paper's future work (§6): when LLC-intensive
// programs that declare no progress periods run alongside instrumented
// ones, the resource monitor cannot see their footprint, so a reservation
// leaves them headroom instead of letting admitted periods plan on cache
// they will not actually get. It panics on negative or over-capacity
// reservations (configuration error).
func (s *Scheduler) SetReserve(b pp.Bytes) {
	if b < 0 || b > s.rm.Capacity(pp.ResourceLLC) {
		panic(fmt.Sprintf("core: reserve %v outside [0, capacity]", b))
	}
	s.reserve = b
}

// Reserve returns the configured unmanaged-workload reservation.
func (s *Scheduler) Reserve() pp.Bytes { return s.reserve }

// Policy returns the configured policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// Resources returns the resource monitor (read access for reports).
func (s *Scheduler) Resources() *ResourceMonitor { return s.rm }

// Stats returns a copy of the activity counters.
func (s *Scheduler) Stats() Stats { return s.stats }

// Waitlisted returns the number of periods currently waiting.
func (s *Scheduler) Waitlisted() int { return s.waitlist.Len() }

// ActivePeriods returns the number of admitted periods.
func (s *Scheduler) ActivePeriods() int {
	n := 0
	for _, p := range s.active {
		if p.admitted {
			n++
		}
	}
	return n
}

// CheckDemand validates one demand for the public admission path. It
// returns ErrInvalidDemand for malformed or empty demands and
// ErrOversizedDemand for demands the configured policy could never admit
// alongside any other load (such a period still runs eventually, through
// the empty-load safeguard or fallback admission, but a caller validating
// ahead of pp_begin gets a definite answer).
func (s *Scheduler) CheckDemand(d pp.Demand) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidDemand, err)
	}
	if d.WorkingSet == 0 {
		return fmt.Errorf("%w: zero working set", ErrInvalidDemand)
	}
	capacity := s.rm.Capacity(d.Resource)
	if d.Resource == pp.ResourceLLC {
		capacity -= s.reserve
	}
	if capacity > 0 && !s.policy.Allows(capacity-d.WorkingSet, capacity) {
		return fmt.Errorf("%w: %v against %v", ErrOversizedDemand, d.WorkingSet, capacity)
	}
	return nil
}

// TrySchedule is Algorithm 1: given the demand of a period about to
// start, compute the space that would remain and ask the policy (the
// governor's effective policy when one is attached, the configured one
// otherwise). The load-zero safeguard admits a period whose demand alone
// exceeds the policy limit when nothing else is running — without it
// such a period would wait forever (a deviation documented in DESIGN.md;
// the paper's workloads keep every working set under the LLC capacity,
// so it never fires there).
func (s *Scheduler) TrySchedule(d pp.Demand) (runnable, safeguard bool) {
	r := d.Resource
	capacity := s.rm.Capacity(r)
	if r == pp.ResourceLLC {
		capacity -= s.reserve
	}
	remaining := capacity - s.rm.Usage(r)
	outcome := remaining - d.WorkingSet
	if s.effectivePolicy().Allows(outcome, capacity) {
		return true, false
	}
	if s.rm.Usage(r) == 0 {
		return true, true
	}
	return false, false
}

// tryScheduleAll runs Algorithm 1 for every demand a period declares: the
// period runs only when all targeted resources admit it. The safeguard
// applies per resource (an idle resource never blocks a lone period).
func (s *Scheduler) tryScheduleAll(ds []pp.Demand) (runnable, safeguard bool) {
	if s.offline {
		// Quarantined shard: nothing is admitted, not even by the
		// empty-load safeguard — a crashed shard with zero usage must not
		// resurrect itself by admitting the next arrival.
		return false, false
	}
	for _, d := range ds {
		run, sg := s.TrySchedule(d)
		if !run {
			return false, false
		}
		safeguard = safeguard || sg
	}
	return true, safeguard
}

// EnterPhase implements machine.Gate for a declared phase: the simulation
// image of pp_begin. The first thread of a process to arrive opens the
// period and runs Algorithm 1; siblings join an already-admitted period
// for free (the demand is per process-phase, counted once).
//
// Client misbehavior degrades instead of crashing: a double pp_begin from
// a thread already inside the period is counted and ignored, and a period
// declaring an invalid demand runs untracked under the stock scheduler
// (Stats.Rejected) rather than corrupting the load table.
func (s *Scheduler) EnterPhase(t *machine.Thread, phaseIdx int, ph *proc.Phase) bool {
	key := periodKey{t.Process().ID(), phaseIdx}
	if in, ok := s.inside[t.ID()]; ok && in == key {
		s.stats.Rejected++
		s.emit(EventReject, s.active[key], key, ph.Demand())
		s.rrec(RecReject, s.active[key], nil)
		return true
	}
	per := s.active[key]
	if per == nil {
		per = &period{
			key:      key,
			demands:  ph.Demands(),
			taskPool: t.Process().Spec().TaskPool,
		}
		per.id = s.allocID()
		s.active[key] = per
		s.byID[per.id] = per
		s.stats.Begins++
		s.emit(EventBegin, per, key, per.demands[0])
		s.rrec(RecBegin, per, nil)

		if err := s.checkDemands(per.demands); errors.Is(err, ErrInvalidDemand) {
			// Refuse to track the period; the thread runs under the stock
			// scheduler and its end releases nothing.
			per.untracked = true
			per.admitted = true
			if s.clock != nil {
				per.admittedAt = s.clock()
			}
			per.refs = 1
			s.inside[t.ID()] = key
			s.stats.Rejected++
			s.emit(EventReject, per, key, per.demands[0])
			s.rrec(RecReject, per, func(r *ReplayRecord) {
				r.InsideAdd = []InsideEntry{insideEntry(t.ID(), key)}
			})
			return true
		}
		if s.govAdmit(key.procID, ph) == govAdmitQuarantined {
			// The misdeclaration breaker is open: the offender runs as
			// undeclared baseline — admitted untracked, declarations
			// ignored, no load charged — for the probation window. The
			// lease still applies so the registry stays bounded.
			per.untracked = true
			per.admitted = true
			if s.clock != nil {
				per.admittedAt = s.clock()
			}
			per.refs = 1
			s.inside[t.ID()] = key
			s.emit(EventGovernorQuarantine, per, key, per.demands[0])
			s.scheduleLease(per)
			s.rrec(RecQuarantine, per, func(r *ReplayRecord) {
				r.InsideAdd = []InsideEntry{insideEntry(t.ID(), key)}
			})
			return true
		}
		if s.parked[key.procID] {
			// §3.4: the whole pool is disabled until resources free up.
			s.deny(per, t)
			return false
		}
		runnable, safeguard := s.tryScheduleAll(per.demands)
		if !runnable {
			s.deny(per, t)
			return false
		}
		if safeguard {
			s.stats.Safegrds++
		}
		s.admit(per)
		s.emit(EventAdmit, per, key, per.demands[0])
		per.refs = 1
		s.inside[t.ID()] = key
		s.rrec(RecAdmit, per, func(r *ReplayRecord) {
			r.InsideAdd = []InsideEntry{insideEntry(t.ID(), key)}
		})
		return true
	}
	if per.admitted {
		per.refs++
		s.inside[t.ID()] = key
		s.rrec(RecJoin, per, func(r *ReplayRecord) {
			r.InsideAdd = []InsideEntry{insideEntry(t.ID(), key)}
		})
		return true
	}
	per.waiters = append(per.waiters, t)
	s.rrec(RecWaitJoin, per, nil)
	return false
}

// allocID issues the next admission ID: from the set-wide counter when
// this scheduler is a DomainSet shard, from the private one otherwise.
func (s *Scheduler) allocID() pp.ID {
	if s.idSrc != nil {
		return s.idSrc()
	}
	s.nextID++
	return s.nextID
}

// checkDemands returns the first validation error among a period's
// demands, ignoring oversize (oversized periods go through the normal
// deny path, where the safeguard or fallback admission bounds their
// wait).
func (s *Scheduler) checkDemands(ds []pp.Demand) error {
	for _, d := range ds {
		if err := s.CheckDemand(d); errors.Is(err, ErrInvalidDemand) {
			return err
		}
	}
	return nil
}

// ExitPhase implements machine.Gate: the simulation image of pp_end. The
// last thread out closes the period, releases its demand, and rescans the
// waitlist — "processes that are paused ... may be rescheduled later when
// another progress period completes and releases sufficient resources".
//
// A pp_end whose period was already reclaimed by the lease watchdog — or
// that never had a begin — is counted (Stats.LateEnds) and dropped; the
// load it would release was either reclaimed already or never charged.
func (s *Scheduler) ExitPhase(t *machine.Thread, phaseIdx int, ph *proc.Phase) {
	key := periodKey{t.Process().ID(), phaseIdx}
	var insideDel []int
	if in, ok := s.inside[t.ID()]; ok && in == key {
		delete(s.inside, t.ID())
		if s.rsink != nil {
			insideDel = []int{t.ID()}
		}
	}
	per := s.active[key]
	if per == nil {
		s.stats.LateEnds++
		s.emit(EventLateEnd, nil, key, ph.Demand())
		s.rrec(RecLateEnd, nil, func(r *ReplayRecord) { r.InsideDel = insideDel })
		return
	}
	if !per.admitted {
		// A thread cannot be running inside a period the predicate never
		// admitted: internal invariant, not client misbehavior.
		panic(fmt.Sprintf("core: ExitPhase on unadmitted period (proc %d phase %d)", key.procID, phaseIdx))
	}
	per.refs--
	if per.refs > 0 {
		s.rrec(RecLeave, per, func(r *ReplayRecord) { r.InsideDel = insideDel })
		return
	}
	s.unregister(per)
	if !per.untracked {
		for _, d := range per.demands {
			s.mustDecrement(d)
		}
	}
	s.stats.Ends++
	s.emit(EventEnd, per, key, per.demands[0])
	s.govObserve(EventEnd, 0)
	s.rrec(RecEnd, nil, func(r *ReplayRecord) {
		r.RemoveID = per.id
		r.InsideDel = insideDel
	})
	s.wakeWaitlist()
}

// unregister drops a period from the registry and cancels its pending
// lease timer.
func (s *Scheduler) unregister(per *period) {
	delete(s.active, per.key)
	delete(s.byID, per.id)
	if per.leaseEv != nil && s.timer != nil {
		s.timer.Cancel(per.leaseEv)
		per.leaseEv = nil
	}
}

// wakeWaitlist admits pending periods in FIFO order while the policy
// allows, waking their blocked threads. Admission (the load increment)
// happens inside the scan so that each candidate is judged against the
// load *including* the periods just admitted before it.
//
// With a governor attached, an aging pass runs first: waiters whose
// demand-weighted priority crossed the threshold are probed before the
// FIFO scan, and an aged waiter that still does not fit takes a capacity
// reservation — the FIFO scan is skipped for this cascade so freed
// capacity accumulates for it. The inWake/rescan pair serializes
// cascades: a trigger arriving mid-scan (a governor degradation, a
// reentrant release) re-runs the scan instead of nesting it.
func (s *Scheduler) wakeWaitlist() {
	if s.detached {
		// A stray rescan tick firing after the restore path abandoned
		// this scheduler; the restored replacement owns the state now.
		return
	}
	if s.inWake {
		s.rescan = true
		return
	}
	s.inWake = true
	defer func() { s.inWake = false }()
	for {
		s.rescan = false
		s.scanWaitlist()
		if !s.rescan {
			break
		}
	}
	if s.postWake != nil {
		// The cascade is complete and this shard's scan state is clear;
		// let the domain set run its cross-domain steal pass. The hook
		// guards its own reentry, so a steal that triggers further wakes
		// re-runs this cascade rather than nesting the scan.
		s.inWake = false
		s.postWake()
	}
}

// scanWaitlist is one pass of the wake cascade: the aging probe, then
// (unless an aged waiter took a reservation) the FIFO admission scan,
// then the release of everything admitted this pass.
func (s *Scheduler) scanWaitlist() {
	woken, reserved := s.wakeAged(nil)
	if !reserved {
		woken = append(woken, s.waitlist.WakeAll(func(per *period) bool {
			runnable, safeguard := s.tryScheduleAll(per.demands)
			if !runnable {
				return false
			}
			if safeguard {
				s.stats.Safegrds++
			}
			s.admit(per)
			s.emit(EventWake, per, per.key, per.demands[0])
			return true
		})...)
	}
	for _, per := range woken {
		per := per
		delete(s.parked, per.key.procID)
		s.cancelDeadline(per)
		s.noteWait(per)
		s.govWake(per)
		ws := per.waiters
		s.release(per)
		s.rrec(RecWake, per, func(r *ReplayRecord) {
			for _, t := range ws {
				r.InsideAdd = append(r.InsideAdd, insideEntry(t.ID(), per.key))
			}
			r.ParkedDel = []int{per.key.procID}
		})
	}
}

// govWake feeds one admission's wait time into the governor's pressure
// window (no-op without a governor or clock).
func (s *Scheduler) govWake(per *period) {
	if s.gov == nil || s.clock == nil {
		return
	}
	s.govObserve(EventWake, s.clock().DurationSince(per.enqueuedAt))
}

// release hands an admitted period's blocked threads back to the default
// scheduler.
func (s *Scheduler) release(per *period) {
	per.refs = len(per.waiters)
	ws := per.waiters
	per.waiters = nil
	for _, t := range ws {
		s.stats.Woken++
		s.inside[t.ID()] = per.key
		s.waker.Unblock(t)
	}
}

func (s *Scheduler) admit(per *period) {
	for _, d := range per.demands {
		s.mustIncrement(d)
	}
	per.admitted = true
	if s.clock != nil {
		per.admittedAt = s.clock()
	}
	s.stats.Admitted++
	s.scheduleLease(per)
}

func (s *Scheduler) deny(per *period, t *machine.Thread) {
	per.waiters = append(per.waiters, t)
	if per.ticket != 0 {
		// Woken (dequeued for an admission probe) and re-denied in the
		// same release cascade: restore the original position under the
		// original ticket. The wait clock (enqueuedAt) and the pending
		// admission deadline keep running — re-denial must not reset how
		// long the period has already waited.
		s.waitlist.EnqueueAs(per, per.ticket)
	} else {
		per.ticket = s.waitlist.Enqueue(per)
		if s.clock != nil {
			per.enqueuedAt = s.clock()
		}
		s.scheduleDeadline(per)
	}
	s.stats.Denied++
	s.emit(EventDeny, per, per.key, per.demands[0])
	s.govObserve(EventDeny, 0)
	if per.taskPool {
		s.parked[per.key.procID] = true
	}
	s.rrec(RecDeny, per, func(r *ReplayRecord) {
		if per.taskPool {
			r.ParkedAdd = []int{per.key.procID}
		}
	})
}

// mustIncrement and mustDecrement are the scheduler's internal load-table
// accessors: demands on these paths were validated at EnterPhase and
// every decrement matches a prior increment, so an error here is an
// accounting bug and panics.
func (s *Scheduler) mustIncrement(d pp.Demand) {
	if err := s.rm.Increment(d); err != nil {
		panic(err)
	}
}

func (s *Scheduler) mustDecrement(d pp.Demand) {
	if err := s.rm.Decrement(d); err != nil {
		if s.tolerateDrift && errors.Is(err, ErrLoadUnderflow) {
			// Injected ledger corruption can pull usage below the sum of
			// outstanding charges; clamp instead of panicking and let the
			// auditor restore the exact ledger.
			s.rm.usage[d.Resource] = 0
			return
		}
		panic(err)
	}
}

// Lookup returns the primary (LLC) demand registered under a period ID
// (introspection for tests and the profiler round-trip).
func (s *Scheduler) Lookup(id pp.ID) (pp.Demand, bool) {
	per, ok := s.byID[id]
	if !ok {
		return pp.Demand{}, false
	}
	return per.demands[0], true
}
