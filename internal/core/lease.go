package core

import (
	"fmt"
	"sort"

	"rdasched/internal/pp"
	"rdasched/internal/sim"
)

// Graceful degradation for misbehaving workloads. Algorithm 1 assumes
// cooperative applications: every pp_begin is honest and paired with a
// pp_end. A production admission service gets clients that lie, leak,
// and crash, so the scheduler adds two bounded-failure mechanisms:
//
//   - Period leases: every admitted period carries a lease. If it has
//     not ended when the lease expires — the owner crashed, or dropped
//     its pp_end — the watchdog reclaims its demand from the resource
//     monitor, restores the load table to a consistent state, and
//     re-runs the wait queue so threads blocked on the leaked capacity
//     make progress. A pp_end arriving after reclamation is recognized
//     (Stats.LateEnds) and dropped.
//
//   - Bounded waiting / fallback admission: a waitlisted period that is
//     still waiting when the admission deadline expires is degraded to
//     stock-scheduler admission — it runs untracked, exactly like an
//     application that declared nothing. RDA:Strict can therefore never
//     starve a thread forever on an unsatisfiable demand; the event is
//     logged (EventFallback) and counted (Stats.Fallbacks).
//
// Both are driven by the simulation's own event engine through the Timer
// interface, so fault-injected runs remain deterministic.

// Timer schedules scheduler-internal timeouts (period leases, admission
// deadlines). *sim.Engine satisfies it; machine callers pass
// Machine.Engine().
type Timer interface {
	After(sim.Duration, func()) *sim.Event
	Cancel(*sim.Event)
}

// SetTimer binds the event engine used for leases and admission
// deadlines. Without a timer both mechanisms are disabled.
func (s *Scheduler) SetTimer(t Timer) { s.timer = t }

// SetLease configures the period lease: an admitted period that has not
// ended after d is presumed leaked (dropped pp_end or crashed owner) and
// its load is reclaimed. d <= 0 disables the watchdog. The lease must be
// configured longer than any legitimate period; a too-short lease
// reclaims live periods, which is safe (their late pp_end is dropped)
// but degrades admission accuracy.
func (s *Scheduler) SetLease(d sim.Duration) {
	if d < 0 {
		d = 0
	}
	s.lease = d
}

// Lease returns the configured period lease (0 = disabled).
func (s *Scheduler) Lease() sim.Duration { return s.lease }

// SetAdmissionDeadline bounds how long a denied period may wait before it
// is degraded to stock-scheduler admission. d <= 0 disables fallback
// admission (the paper's behavior: unbounded waiting).
func (s *Scheduler) SetAdmissionDeadline(d sim.Duration) {
	if d < 0 {
		d = 0
	}
	s.deadline = d
}

// AdmissionDeadline returns the configured bound (0 = disabled).
func (s *Scheduler) AdmissionDeadline() sim.Duration { return s.deadline }

func (s *Scheduler) scheduleLease(per *period) {
	s.scheduleLeaseFor(per, s.govLease())
}

func (s *Scheduler) scheduleLeaseFor(per *period, d sim.Duration) {
	if d <= 0 || s.timer == nil {
		return
	}
	per.leaseEv = s.timer.After(d, func() {
		per.leaseEv = nil
		s.reclaim(per)
	})
}

func (s *Scheduler) scheduleDeadline(per *period) {
	if s.deadline <= 0 || s.timer == nil {
		return
	}
	per.deadlineEv = s.timer.After(s.deadline, func() {
		per.deadlineEv = nil
		s.fallbackAdmit(per)
	})
}

// scheduleDeadlineIn arms the fallback-admission deadline with an
// explicit remaining budget — used when a waiter is transferred between
// shards during evacuation, where the clock on its original deadline
// must keep running rather than restart.
func (s *Scheduler) scheduleDeadlineIn(per *period, d sim.Duration) {
	if s.deadline <= 0 || s.timer == nil {
		return
	}
	if d < 1 {
		d = 1
	}
	per.deadlineEv = s.timer.After(d, func() {
		per.deadlineEv = nil
		s.fallbackAdmit(per)
	})
}

func (s *Scheduler) cancelDeadline(per *period) {
	if per.deadlineEv != nil && s.timer != nil {
		s.timer.Cancel(per.deadlineEv)
		per.deadlineEv = nil
	}
}

// noteWait records how long a period sat on the waitlist (needs a bound
// Clock; see SetClock).
func (s *Scheduler) noteWait(per *period) {
	if s.clock == nil {
		return
	}
	if w := s.clock().DurationSince(per.enqueuedAt); w > s.stats.MaxWait {
		s.stats.MaxWait = w
	}
}

// reclaim is the lease watchdog: it evicts a still-registered period,
// returns its demand to the resource monitor, remembers the key so a
// late pp_end is recognized, and re-runs the wait queue against the
// recovered capacity.
func (s *Scheduler) reclaim(per *period) {
	if s.detached {
		return
	}
	if s.active[per.key] != per || !per.admitted {
		return // ended (or was never admitted) in the meantime
	}
	s.unregister(per)
	if !per.untracked {
		for _, d := range per.demands {
			s.mustDecrement(d)
			if d.Resource == pp.ResourceLLC {
				s.stats.ReclaimedBytes += d.WorkingSet
			}
		}
	}
	s.reclaimed[per.key] = true
	s.stats.Reclaimed++
	s.emit(EventReclaim, per, per.key, per.demands[0])
	s.govObserve(EventReclaim, 0)
	s.rrec(RecReclaim, nil, func(r *ReplayRecord) {
		r.RemoveID = per.id
		r.ReclaimedAdd = []ProcPhase{{Proc: per.key.procID, Phase: per.key.phaseIdx}}
	})
	s.wakeWaitlist()
}

// fallbackAdmit fires at the admission deadline: the period has waited
// long enough. It leaves the waitlist and runs as if undeclared — no
// load is charged, the stock scheduler takes over — so an unsatisfiable
// demand degrades to the paper's baseline instead of starving.
func (s *Scheduler) fallbackAdmit(per *period) {
	if s.detached {
		return
	}
	if per.admitted || s.active[per.key] != per {
		return // admitted or reclaimed in the meantime
	}
	s.waitlist.Remove(per.ticket)
	per.admitted = true
	per.untracked = true
	if s.clock != nil {
		per.admittedAt = s.clock()
	}
	delete(s.parked, per.key.procID)
	s.stats.Fallbacks++
	s.noteWait(per)
	s.emit(EventFallback, per, per.key, per.demands[0])
	if s.clock != nil {
		s.govObserve(EventFallback, s.clock().DurationSince(per.enqueuedAt))
	} else {
		s.govObserve(EventFallback, 0)
	}
	s.scheduleLease(per)
	ws := per.waiters
	s.release(per)
	s.rrec(RecFallback, per, func(r *ReplayRecord) {
		for _, t := range ws {
			r.InsideAdd = append(r.InsideAdd, insideEntry(t.ID(), per.key))
		}
		r.ParkedDel = []int{per.key.procID}
	})
}

// Quiesce force-reclaims every period still registered, in admission-ID
// order, and reports how many there were. It is the end-of-run image of
// lease expiry: when a run completes with periods still open, their
// owners are gone (leaked ends, crashed threads), so the monitor is
// restored to zero load before its counters are read. The resource
// monitor must report zero load afterwards; a nonzero residue is an
// accounting bug and panics.
func (s *Scheduler) Quiesce() int {
	pers := make([]*period, 0, len(s.active))
	for _, per := range s.active {
		pers = append(pers, per)
	}
	sort.Slice(pers, func(i, j int) bool { return pers[i].id < pers[j].id })
	n := 0
	for _, per := range pers {
		if !per.admitted {
			continue // still waitlisted; its threads are alive and blocked
		}
		s.reclaim(per)
		n++
	}
	for r := 0; r < pp.NumResources; r++ {
		if u := s.rm.Usage(pp.Resource(r)); u != 0 && len(s.active) == 0 {
			panic(fmt.Sprintf("core: %v load %v outstanding after Quiesce with empty registry", pp.Resource(r), u))
		}
	}
	return n
}
