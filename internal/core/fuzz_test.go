package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"rdasched/internal/machine"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
	"rdasched/internal/sim"
)

// randomWorkload derives an arbitrary-but-valid workload from fuzz input:
// up to maxProcs processes with 1–4 threads, 1–4 phases each, working
// sets up to ~2x the LLC, mixed declared/undeclared phases, occasional
// barriers and task pools.
func randomWorkload(seed uint64, maxProcs int) proc.Workload {
	rng := sim.NewRNG(seed)
	n := 1 + rng.Intn(maxProcs)
	w := proc.Workload{Name: "fuzz"}
	for p := 0; p < n; p++ {
		threads := 1 + rng.Intn(4)
		phases := 1 + rng.Intn(4)
		var prog proc.Program
		for q := 0; q < phases; q++ {
			ph := proc.Phase{
				Name:             "ph",
				Instr:            float64(1+rng.Intn(20)) * 1e5,
				WSS:              pp.Bytes(1+rng.Intn(30)) * pp.MiB,
				Reuse:            pp.Reuse(rng.Intn(3)),
				AccessesPerInstr: 0.1 + 0.4*rng.Float64(),
				PrivateHitFrac:   0.5 + 0.4*rng.Float64(),
				StreamFrac:       rng.Float64(),
				FlopsPerInstr:    rng.Float64(),
				Declared:         rng.Intn(3) != 0,
				BarrierAfter:     rng.Intn(4) == 0,
			}
			if rng.Intn(8) == 0 {
				ph.CachePartition = pp.Bytes(1+rng.Intn(4)) * pp.MiB
			}
			prog = append(prog, ph)
		}
		w.Procs = append(w.Procs, proc.Spec{
			Name:     "fz",
			Threads:  threads,
			Program:  prog,
			TaskPool: rng.Intn(4) == 0,
		})
	}
	return w
}

// checkSchedulerInvariants drives one random workload through the full
// machine+scheduler stack and returns an error describing the first
// violated invariant. The invariants must hold regardless of input:
//
//  1. the run completes (no starvation, no stall, no panic);
//  2. every opened period closes, and the load table returns to zero;
//  3. the registry and waitlist drain;
//  4. under strict, peak load never exceeds capacity except through the
//     documented empty-load safeguard;
//  5. instruction totals equal the workload's intrinsic work.
//
// It is shared by the quick.Check regression test and the native fuzz
// target, so CI fuzzing and `go test` exercise the same predicate.
func checkSchedulerInvariants(seed uint64, polIdx uint8) error {
	policies := []Policy{StrictPolicy{}, NewCompromise(), AlwaysPolicy{}}
	pol := policies[int(polIdx)%len(policies)]
	w := randomWorkload(seed, 8)

	cfg := machine.DefaultConfig()
	cfg.MaxSimTime = 600 * sim.Second
	s := New(pol, cfg.LLCCapacity)
	m := machine.New(cfg, s)
	s.SetWaker(m)
	if err := m.AddWorkload(w); err != nil {
		return fmt.Errorf("seed %d: invalid workload: %v", seed, err)
	}
	res, err := m.Run()
	if err != nil {
		return fmt.Errorf("seed %d policy %s: %v", seed, pol.Name(), err)
	}
	st := s.Stats()
	if st.Begins != st.Ends {
		return fmt.Errorf("seed %d: %d begins vs %d ends", seed, st.Begins, st.Ends)
	}
	if s.Resources().Usage(pp.ResourceLLC) != 0 {
		return fmt.Errorf("seed %d: leftover load %v", seed, s.Resources().Usage(pp.ResourceLLC))
	}
	if s.Waitlisted() != 0 || s.ActivePeriods() != 0 {
		return fmt.Errorf("seed %d: registry not drained", seed)
	}
	if _, ok := pol.(StrictPolicy); ok && st.Safegrds == 0 {
		if peak := s.Resources().Peak(pp.ResourceLLC); peak > cfg.LLCCapacity {
			return fmt.Errorf("seed %d: strict peak %v over capacity without safeguard", seed, peak)
		}
	}
	// Work conservation: executed instructions equal the program sums
	// (the boundary overhead is stall, not instructions).
	var want float64
	for _, spec := range w.Procs {
		want += float64(spec.Threads) * spec.Program.TotalInstr()
	}
	if diff := res.Counters.Instructions - want; diff < -1 || diff > 1 {
		return fmt.Errorf("seed %d: executed %v instructions, want %v", seed, res.Counters.Instructions, want)
	}
	return nil
}

// checkDeterminism re-runs one random workload and demands bit-identical
// counters.
func checkDeterminism(seed uint64) error {
	run := func() (machine.Counters, error) {
		w := randomWorkload(seed, 6)
		cfg := machine.DefaultConfig()
		cfg.MaxSimTime = 600 * sim.Second
		s := New(StrictPolicy{}, cfg.LLCCapacity)
		m := machine.New(cfg, s)
		s.SetWaker(m)
		if err := m.AddWorkload(w); err != nil {
			return machine.Counters{}, err
		}
		res, err := m.Run()
		if err != nil {
			return machine.Counters{}, err
		}
		return res.Counters, nil
	}
	a, err := run()
	if err != nil {
		return fmt.Errorf("seed %d: %v", seed, err)
	}
	b, err := run()
	if err != nil {
		return fmt.Errorf("seed %d: %v", seed, err)
	}
	if a != b {
		return fmt.Errorf("seed %d: reruns diverged: %+v vs %+v", seed, a, b)
	}
	return nil
}

// TestFuzzSchedulerInvariants is the quick.Check sweep over random
// seeds; FuzzSchedulerInvariants explores further from the committed
// corpus under `make fuzz` / CI.
func TestFuzzSchedulerInvariants(t *testing.T) {
	f := func(seed uint64, polIdx uint8) bool {
		if err := checkSchedulerInvariants(seed, polIdx); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzDeterminism re-runs random workloads and demands bit-identical
// results.
func TestFuzzDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		if err := checkDeterminism(seed); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// FuzzSchedulerInvariants is the native fuzz entry point; the committed
// corpus under testdata/fuzz seeds it with one input per policy plus
// boundary seeds (0 and MaxUint64).
func FuzzSchedulerInvariants(f *testing.F) {
	for _, c := range [][2]uint64{
		{0, 0}, {1, 1}, {2, 2}, {1337, 0}, {^uint64(0), 1},
	} {
		f.Add(c[0], uint8(c[1]))
	}
	f.Fuzz(func(t *testing.T, seed uint64, polIdx uint8) {
		if err := checkSchedulerInvariants(seed, polIdx); err != nil {
			t.Error(err)
		}
	})
}

// FuzzDeterminism is the native fuzz entry point for the bit-identical
// rerun property.
func FuzzDeterminism(f *testing.F) {
	for _, seed := range []uint64{0, 1, 42, 1337, ^uint64(0)} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if err := checkDeterminism(seed); err != nil {
			t.Error(err)
		}
	})
}
