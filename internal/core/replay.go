package core

import (
	"fmt"
	"sort"

	"rdasched/internal/pp"
	"rdasched/internal/sim"
)

// Admission journal records. When a ReplaySink is attached (the
// crash-restart checkpointer in internal/persist), every mutation of
// admission state publishes one ReplayRecord carrying the *post-state*
// of everything the decision touched: the affected period's full image,
// the domain's load ledger and counters, the governor after its
// observation, and set-level placement/steal state. Replay is therefore
// pure patching — State.Apply never re-runs scheduler logic — and it is
// idempotent: re-applying a record whose effects a snapshot already
// reflects converges to the same state, because every patch is either a
// wholesale post-value or a keyed upsert/delete. That idempotence is
// what makes mid-cascade snapshot cut points safe (the snapshot may be
// "ahead" of the record that triggered it by the rest of the current
// wake cascade; the replayed suffix catches the state up exactly).
//
// Records are only ever cut at engine-event boundaries — the process-
// death fault is itself an engine event — so a valid journal suffix
// always ends in a consistent state; torn trailing bytes are the
// journal reader's problem (internal/persist truncates at the first
// corrupt frame).

// RecKind classifies a journal record. String-valued for a stable,
// self-describing on-disk format.
type RecKind string

const (
	RecBegin      RecKind = "begin"      // period opened (registry insert, NextID bump)
	RecAdmit      RecKind = "admit"      // predicate admitted the opening period
	RecDeny       RecKind = "deny"       // period waitlisted (ticket issued or restored)
	RecWake       RecKind = "wake"       // waitlisted period admitted by a release cascade
	RecJoin       RecKind = "join"       // sibling thread joined an admitted period
	RecWaitJoin   RecKind = "wait-join"  // sibling thread parked on a pending period
	RecLeave      RecKind = "leave"      // thread left a period that stays open (refs > 0)
	RecEnd        RecKind = "end"        // last thread out: registry delete, load release
	RecReclaim    RecKind = "reclaim"    // lease watchdog evicted a leaked period
	RecFallback   RecKind = "fallback"   // admission deadline degraded a waiter to untracked
	RecReject     RecKind = "reject"     // invalid demand or double begin (untracked admit)
	RecLateEnd    RecKind = "late-end"   // pp_end after reclaim / without begin, dropped
	RecQuarantine RecKind = "quarantine" // open breaker admitted the period as baseline
	RecReserve    RecKind = "reserve"    // aged waiter took a capacity reservation
	RecGovTick    RecKind = "gov-tick"   // governor self-evaluation tick fired
	RecPlace      RecKind = "place"      // demand-aware placer assigned a new period
	RecUnmap      RecKind = "unmap"      // placement entry dropped after the period ended
	RecSteal      RecKind = "steal"      // aged waiter migrated cross-domain and admitted
	RecStealTick  RecKind = "steal-tick" // steal re-scan tick armed or fired
)

// LeasePatch re-arms one period's lease expiry (governor tightening).
type LeasePatch struct {
	ID      pp.ID
	LeaseAt sim.Time
}

// SetPatch is the DomainSet-level post-state carried by records of a
// sharded run: the scalar counters wholesale, plus placement-map deltas
// on the records that change it.
type SetPatch struct {
	NextID      pp.ID
	Placements  uint64
	Steals      uint64
	StealTickAt sim.Time
	MapAdd      []PlacementEntry
	MapDel      []ProcPhase
}

// ReplayRecord is one journal entry: the post-state of a single
// admission decision. Domain is the shard the decision happened on, or
// -1 for set-level records (place/unmap/steal-tick) that carry no shard
// patch. Src (>= 0 only on cross-domain migrations) names the shard the
// period left; the record removes it there and upserts it on Domain.
type ReplayRecord struct {
	At     sim.Time
	Kind   RecKind
	Domain int

	// Shard post-state (Domain >= 0).
	Period       *PeriodState // full post-image of the affected period
	RemoveID     pp.ID        // period deleted from the registry (end/reclaim)
	Usage        []pp.Bytes   // load ledger after the decision
	Peak         []pp.Bytes
	WaitSeq      uint64
	NextID       pp.ID
	Stats        *Stats
	Gov          *GovState
	InsideAdd    []InsideEntry
	InsideDel    []int // thread IDs
	ParkedAdd    []int // process IDs
	ParkedDel    []int
	ReclaimedAdd []ProcPhase
	Leases       []LeasePatch // governor lease tightening, same shard

	// Cross-domain migration source patch.
	Src          int // -1 when unused
	SrcParkedDel []int

	// Set-level post-state (sharded runs only).
	Set *SetPatch
}

// ReplaySink receives the admission journal stream. Replay is called
// synchronously on the decision path, after the mutation it describes;
// sinks must not call back into the scheduler.
type ReplaySink interface {
	Replay(ReplayRecord)
}

// SetReplaySink attaches the admission journal stream; nil detaches it.
// With no sink the decision path pays one branch and allocates nothing.
func (s *Scheduler) SetReplaySink(k ReplaySink) { s.rsink = k }

// SetReplaySink attaches the journal stream to every shard and the set:
// shard records are stamped with the set-level post-state so one linear
// journal captures the whole gate.
func (d *DomainSet) SetReplaySink(k ReplaySink) {
	d.rsink = k
	for _, s := range d.shards {
		s.rsink = k
		if k != nil && !d.single {
			s.setStamp = d.stampSet
		} else {
			s.setStamp = nil
		}
	}
}

// rrec publishes one post-state journal record for this shard. mut runs
// last, so it may extend both the record and the stamped set patch.
func (s *Scheduler) rrec(kind RecKind, per *period, mut func(*ReplayRecord)) {
	if s.rsink == nil {
		return
	}
	r := ReplayRecord{
		At:      s.now(),
		Kind:    kind,
		Domain:  s.domainIdx,
		Usage:   append([]pp.Bytes(nil), s.rm.usage[:]...),
		Peak:    append([]pp.Bytes(nil), s.rm.peak[:]...),
		WaitSeq: s.waitlist.Seq(),
		NextID:  s.nextID,
		Src:     -1,
	}
	st := s.stats
	r.Stats = &st
	if per != nil {
		ps := exportPeriod(per)
		r.Period = &ps
	}
	if s.gov != nil {
		g := exportGov(s.gov)
		r.Gov = &g
	}
	if len(s.pendingLease) > 0 {
		r.Leases = s.pendingLease
		s.pendingLease = nil
	}
	if s.setStamp != nil {
		s.setStamp(&r)
	}
	if mut != nil {
		mut(&r)
	}
	s.rsink.Replay(r)
}

// insideEntry builds the InsideAdd delta for one thread entering a
// period.
func insideEntry(tid int, key periodKey) InsideEntry {
	return InsideEntry{Thread: tid, Proc: key.procID, Phase: key.phaseIdx}
}

// rrecSet publishes one set-level record (no shard patch).
func (d *DomainSet) rrecSet(kind RecKind, mut func(*ReplayRecord)) {
	if d.rsink == nil {
		return
	}
	var at sim.Time
	if d.clock != nil {
		at = d.clock()
	}
	r := ReplayRecord{At: at, Kind: kind, Domain: -1, Src: -1}
	d.stampSet(&r)
	if mut != nil {
		mut(&r)
	}
	d.rsink.Replay(r)
}

// stampSet writes the set-level scalar post-state onto a record.
func (d *DomainSet) stampSet(r *ReplayRecord) {
	sp := &SetPatch{
		NextID:     d.nextID,
		Placements: d.placements,
		Steals:     d.steals,
	}
	if d.stealEv != nil && !d.stealEv.Cancelled() {
		sp.StealTickAt = d.stealEv.When()
	}
	r.Set = sp
}

// Apply patches st with one journal record. It returns an error on a
// record that references state the journal prefix never built — an
// internally inconsistent journal, which restore treats as a hard
// failure rather than a truncation (the frame passed its checksum, so
// the producer and consumer disagree about the format, not the bytes).
func (st *State) Apply(r ReplayRecord) error {
	if r.Domain >= 0 {
		if r.Domain >= len(st.Domains) {
			return fmt.Errorf("core: record for domain %d of %d", r.Domain, len(st.Domains))
		}
		d := &st.Domains[r.Domain]
		if len(r.Usage) == pp.NumResources {
			d.Usage = append(d.Usage[:0], r.Usage...)
		}
		if len(r.Peak) == pp.NumResources {
			d.Peak = append(d.Peak[:0], r.Peak...)
		}
		d.WaitSeq = r.WaitSeq
		d.NextID = r.NextID
		if r.Stats != nil {
			d.Stats = *r.Stats
		}
		if r.Gov != nil {
			g := *r.Gov
			d.Gov = &g
		}
		if r.Period != nil {
			upsertPeriod(d, *r.Period)
		}
		if r.RemoveID != 0 {
			removePeriod(d, r.RemoveID)
		}
		for _, e := range r.InsideAdd {
			upsertInside(d, e)
		}
		for _, tid := range r.InsideDel {
			removeInside(d, tid)
		}
		for _, p := range r.ParkedAdd {
			d.Parked = addSortedInt(d.Parked, p)
		}
		for _, p := range r.ParkedDel {
			d.Parked = delSortedInt(d.Parked, p)
		}
		for _, k := range r.ReclaimedAdd {
			addReclaimed(d, k)
		}
		for _, lp := range r.Leases {
			if !setLeaseAt(d, lp) {
				return fmt.Errorf("core: lease patch for unknown period %d", lp.ID)
			}
		}
		if r.Src >= 0 && r.Period != nil {
			if r.Src >= len(st.Domains) {
				return fmt.Errorf("core: migration source domain %d of %d", r.Src, len(st.Domains))
			}
			src := &st.Domains[r.Src]
			removePeriod(src, r.Period.ID)
			for _, p := range r.SrcParkedDel {
				src.Parked = delSortedInt(src.Parked, p)
			}
		}
	}
	if r.Set != nil {
		if st.Set == nil {
			st.Set = &SetState{}
		}
		st.Set.NextID = r.Set.NextID
		st.Set.Placements = r.Set.Placements
		st.Set.Steals = r.Set.Steals
		st.Set.StealTickAt = r.Set.StealTickAt
		for _, e := range r.Set.MapAdd {
			upsertPlacement(st.Set, e)
		}
		for _, k := range r.Set.MapDel {
			removePlacement(st.Set, k)
		}
	}
	if r.At > st.At {
		st.At = r.At
	}
	return nil
}

func upsertPeriod(d *DomainState, ps PeriodState) {
	i := sort.Search(len(d.Periods), func(i int) bool { return d.Periods[i].ID >= ps.ID })
	if i < len(d.Periods) && d.Periods[i].ID == ps.ID {
		d.Periods[i] = ps
		return
	}
	d.Periods = append(d.Periods, PeriodState{})
	copy(d.Periods[i+1:], d.Periods[i:])
	d.Periods[i] = ps
}

func removePeriod(d *DomainState, id pp.ID) {
	i := sort.Search(len(d.Periods), func(i int) bool { return d.Periods[i].ID >= id })
	if i < len(d.Periods) && d.Periods[i].ID == id {
		d.Periods = append(d.Periods[:i], d.Periods[i+1:]...)
	}
}

func setLeaseAt(d *DomainState, lp LeasePatch) bool {
	i := sort.Search(len(d.Periods), func(i int) bool { return d.Periods[i].ID >= lp.ID })
	if i < len(d.Periods) && d.Periods[i].ID == lp.ID {
		d.Periods[i].LeaseAt = lp.LeaseAt
		return true
	}
	return false
}

func upsertInside(d *DomainState, e InsideEntry) {
	i := sort.Search(len(d.Inside), func(i int) bool { return d.Inside[i].Thread >= e.Thread })
	if i < len(d.Inside) && d.Inside[i].Thread == e.Thread {
		d.Inside[i] = e
		return
	}
	d.Inside = append(d.Inside, InsideEntry{})
	copy(d.Inside[i+1:], d.Inside[i:])
	d.Inside[i] = e
}

func removeInside(d *DomainState, tid int) {
	i := sort.Search(len(d.Inside), func(i int) bool { return d.Inside[i].Thread >= tid })
	if i < len(d.Inside) && d.Inside[i].Thread == tid {
		d.Inside = append(d.Inside[:i], d.Inside[i+1:]...)
	}
}

func addSortedInt(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	if i < len(xs) && xs[i] == v {
		return xs
	}
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}

func delSortedInt(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	if i < len(xs) && xs[i] == v {
		return append(xs[:i], xs[i+1:]...)
	}
	return xs
}

func addReclaimed(d *DomainState, k ProcPhase) {
	i := sort.Search(len(d.Reclaimed), func(i int) bool {
		r := d.Reclaimed[i]
		return r.Proc > k.Proc || (r.Proc == k.Proc && r.Phase >= k.Phase)
	})
	if i < len(d.Reclaimed) && d.Reclaimed[i] == k {
		return
	}
	d.Reclaimed = append(d.Reclaimed, ProcPhase{})
	copy(d.Reclaimed[i+1:], d.Reclaimed[i:])
	d.Reclaimed[i] = k
}

func upsertPlacement(ss *SetState, e PlacementEntry) {
	i := sort.Search(len(ss.DomainOf), func(i int) bool {
		p := ss.DomainOf[i]
		return p.Proc > e.Proc || (p.Proc == e.Proc && p.Phase >= e.Phase)
	})
	if i < len(ss.DomainOf) && ss.DomainOf[i].Proc == e.Proc && ss.DomainOf[i].Phase == e.Phase {
		ss.DomainOf[i] = e
		return
	}
	ss.DomainOf = append(ss.DomainOf, PlacementEntry{})
	copy(ss.DomainOf[i+1:], ss.DomainOf[i:])
	ss.DomainOf[i] = e
}

func removePlacement(ss *SetState, k ProcPhase) {
	i := sort.Search(len(ss.DomainOf), func(i int) bool {
		p := ss.DomainOf[i]
		return p.Proc > k.Proc || (p.Proc == k.Proc && p.Phase >= k.Phase)
	})
	if i < len(ss.DomainOf) && ss.DomainOf[i].Proc == k.Proc && ss.DomainOf[i].Phase == k.Phase {
		ss.DomainOf = append(ss.DomainOf[:i], ss.DomainOf[i+1:]...)
	}
}
