package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"rdasched/internal/machine"
	"rdasched/internal/pp"
	"rdasched/internal/sim"
)

// Checkpointable scheduler state. The crash-restart machinery
// (internal/persist) snapshots the full admission gate — load ledger,
// registry, waitlists with tickets and enqueue times, lease and deadline
// expiries, governor ladder/breaker/probation state, per-domain shards —
// as a pure-data State value, and restores it into a freshly built
// scheduler bound to the surviving machine. Everything is plain exported
// structs with deterministically ordered slices (no maps), so the JSON
// encoding is canonical: two States describing the same gate marshal to
// identical bytes, which is what the restore consistency check and the
// snapshot round-trip fuzz target compare.
//
// Timer state is stored as absolute virtual-clock expiries (zero =
// unarmed). Import re-arms each timer at its original expiry, in
// period-ID order within a domain and domain-index order across shards,
// so the revived run schedules engine events in a deterministic order.
// The re-armed events necessarily carry fresh engine sequence numbers;
// an exact-picosecond tie between a re-armed timer and a pre-existing
// event could therefore order differently than in an uninterrupted run
// (measure-zero in practice; the E9 golden would catch it).

// ProcPhase is the exported image of a period key: one process entering
// one declared phase.
type ProcPhase struct {
	Proc  int
	Phase int
}

// InsideEntry records one thread currently executing inside a period.
type InsideEntry struct {
	Thread int
	Proc   int
	Phase  int
}

// PeriodState is the exported image of one registry entry. Timer fields
// are absolute expiries on the virtual clock; zero means unarmed.
type PeriodState struct {
	ID         pp.ID
	Proc       int
	Phase      int
	Demands    []pp.Demand
	TaskPool   bool
	Admitted   bool
	Untracked  bool
	Evacuated  bool
	Refs       int
	Waiters    []int // blocked thread IDs in arrival order
	Ticket     uint64
	EnqueuedAt sim.Time
	AdmittedAt sim.Time
	LeaseAt    sim.Time
	DeadlineAt sim.Time
}

// waitlisted reports whether this period is on its domain's waitlist:
// it holds a ticket and has not been admitted. The waitlist itself is
// derived state — membership and order follow entirely from the
// registry — so State stores no separate queue.
func (ps *PeriodState) waitlisted() bool { return ps.Ticket != 0 && !ps.Admitted }

// BreakerSnap is one process's misdeclaration breaker.
type BreakerSnap struct {
	Proc     int
	State    BreakerState
	Strikes  int
	OpenedAt sim.Time
}

// GovState is the exported image of an attached governor: the ladder
// position, both hysteresis clocks, the windowed signals (including the
// full wait histogram), every breaker, the pending self-evaluation tick
// (absolute; zero = unarmed), and the counters.
type GovState struct {
	Level         GovernorLevel
	Pressured     bool
	PressureSince sim.Time
	Calm          bool
	CalmSince     sim.Time
	WindowStart   sim.Time
	WinFallbacks  int
	WinReclaims   int
	WaitCounts    []uint32
	WaitTotal     uint32
	Breakers      []BreakerSnap
	NextTickAt    sim.Time
	Stats         GovernorStats
}

// DomainState is the exported image of one Scheduler (an unsharded
// scheduler, or one shard of a DomainSet).
type DomainState struct {
	NextID    pp.ID // private counter; zero on DomainSet shards (set-wide counter)
	Capacity  []pp.Bytes
	Usage     []pp.Bytes
	Peak      []pp.Bytes
	Reserve   pp.Bytes
	Periods   []PeriodState // sorted by ID
	WaitSeq   uint64
	Parked    []int       // sorted
	Reclaimed []ProcPhase // sorted
	Inside    []InsideEntry
	Stats     Stats
	Gov       *GovState
	Offline   bool
}

// PlacementEntry maps one period key to its owning domain.
type PlacementEntry struct {
	Proc   int
	Phase  int
	Domain int
}

// SetState is the DomainSet-level state above the shards.
type SetState struct {
	NextID      pp.ID
	DomainOf    []PlacementEntry // sorted by (Proc, Phase)
	Placements  uint64
	Steals      uint64
	StealTickAt sim.Time // pending steal re-scan tick; zero = unarmed
}

// State is the full checkpointable image of an admission gate at one
// virtual time: one domain for an unsharded Scheduler, N plus the set
// state for a DomainSet.
type State struct {
	At      sim.Time
	Domains []DomainState
	Set     *SetState
}

// Canonical returns the canonical JSON encoding of the state. Slices
// are kept deterministically ordered by the export/apply paths and the
// structs contain no maps, so equal states produce identical bytes.
func (st *State) Canonical() ([]byte, error) { return json.Marshal(st) }

// ThreadResolver re-links persisted thread IDs to live machine threads
// on import; machine.Machine's ThreadByID satisfies it.
type ThreadResolver func(id int) *machine.Thread

func exportPeriod(per *period) PeriodState {
	ps := PeriodState{
		ID:         per.id,
		Proc:       per.key.procID,
		Phase:      per.key.phaseIdx,
		Demands:    append([]pp.Demand(nil), per.demands...),
		TaskPool:   per.taskPool,
		Admitted:   per.admitted,
		Untracked:  per.untracked,
		Evacuated:  per.evacuated,
		Refs:       per.refs,
		Ticket:     per.ticket,
		EnqueuedAt: per.enqueuedAt,
		AdmittedAt: per.admittedAt,
	}
	for _, t := range per.waiters {
		ps.Waiters = append(ps.Waiters, t.ID())
	}
	if per.leaseEv != nil && !per.leaseEv.Cancelled() {
		ps.LeaseAt = per.leaseEv.When()
	}
	if per.deadlineEv != nil && !per.deadlineEv.Cancelled() {
		ps.DeadlineAt = per.deadlineEv.When()
	}
	return ps
}

func exportGov(g *governor) GovState {
	gs := GovState{
		Level:         g.level,
		Pressured:     g.pressured,
		PressureSince: g.pressureSince,
		Calm:          g.calm,
		CalmSince:     g.calmSince,
		WindowStart:   g.windowStart,
		WinFallbacks:  g.winFallbacks,
		WinReclaims:   g.winReclaims,
		WaitCounts:    append([]uint32(nil), g.waits.counts[:]...),
		WaitTotal:     g.waits.total,
		Stats:         g.stats,
	}
	procs := make([]int, 0, len(g.breakers))
	for p := range g.breakers {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	for _, p := range procs {
		b := g.breakers[p]
		gs.Breakers = append(gs.Breakers, BreakerSnap{Proc: p, State: b.state, Strikes: b.strikes, OpenedAt: b.openedAt})
	}
	if g.tickEv != nil && !g.tickEv.Cancelled() {
		gs.NextTickAt = g.tickEv.When()
	}
	return gs
}

// exportDomain captures this scheduler's full state as pure data.
func (s *Scheduler) exportDomain() DomainState {
	d := DomainState{
		NextID:   s.nextID,
		Capacity: append([]pp.Bytes(nil), s.rm.capacity[:]...),
		Usage:    append([]pp.Bytes(nil), s.rm.usage[:]...),
		Peak:     append([]pp.Bytes(nil), s.rm.peak[:]...),
		Reserve:  s.reserve,
		WaitSeq:  s.waitlist.Seq(),
		Stats:    s.stats,
		Offline:  s.offline,
	}
	for _, per := range s.active {
		d.Periods = append(d.Periods, exportPeriod(per))
	}
	sort.Slice(d.Periods, func(i, j int) bool { return d.Periods[i].ID < d.Periods[j].ID })
	for p := range s.parked {
		d.Parked = append(d.Parked, p)
	}
	sort.Ints(d.Parked)
	for k := range s.reclaimed {
		d.Reclaimed = append(d.Reclaimed, ProcPhase{Proc: k.procID, Phase: k.phaseIdx})
	}
	sortProcPhases(d.Reclaimed)
	for tid, k := range s.inside {
		d.Inside = append(d.Inside, InsideEntry{Thread: tid, Proc: k.procID, Phase: k.phaseIdx})
	}
	sort.Slice(d.Inside, func(i, j int) bool { return d.Inside[i].Thread < d.Inside[j].Thread })
	if s.gov != nil {
		g := exportGov(s.gov)
		d.Gov = &g
	}
	return d
}

func sortProcPhases(ks []ProcPhase) {
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].Proc != ks[j].Proc {
			return ks[i].Proc < ks[j].Proc
		}
		return ks[i].Phase < ks[j].Phase
	})
}

// ExportState captures the scheduler's state at the current virtual
// time (single unsharded domain).
func (s *Scheduler) ExportState() State {
	return State{At: s.now(), Domains: []DomainState{s.exportDomain()}}
}

// ExportState captures the full set state: every shard plus the
// placement map, cross-domain counters, and the pending steal tick.
func (d *DomainSet) ExportState() State {
	var at sim.Time
	if d.clock != nil {
		at = d.clock()
	}
	st := State{At: at, Set: &SetState{
		NextID:     d.nextID,
		Placements: d.placements,
		Steals:     d.steals,
	}}
	for _, s := range d.shards {
		st.Domains = append(st.Domains, s.exportDomain())
	}
	for k, di := range d.domainOf {
		st.Set.DomainOf = append(st.Set.DomainOf, PlacementEntry{Proc: k.procID, Phase: k.phaseIdx, Domain: di})
	}
	sort.Slice(st.Set.DomainOf, func(i, j int) bool {
		a, b := st.Set.DomainOf[i], st.Set.DomainOf[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.Phase < b.Phase
	})
	if d.stealEv != nil && !d.stealEv.Cancelled() {
		st.Set.StealTickAt = d.stealEv.When()
	}
	return st
}

// ImportState restores a single-domain State into this scheduler, which
// must be freshly built with the same policy, capacity, and bindings
// (waker, clock, timer, lease, deadline, governor config) as the one
// that exported it. Waiter thread IDs are re-linked through resolve,
// and every persisted lease/deadline/tick expiry is re-armed on the
// bound timer at its original absolute time.
func (s *Scheduler) ImportState(st State, resolve ThreadResolver) error {
	if len(st.Domains) != 1 || st.Set != nil {
		return fmt.Errorf("core: import of %d-domain state (set=%v) into unsharded scheduler", len(st.Domains), st.Set != nil)
	}
	return s.importDomain(st.Domains[0], resolve)
}

func (s *Scheduler) importDomain(d DomainState, resolve ThreadResolver) error {
	if len(s.active) != 0 || s.waitlist.Len() != 0 || s.stats != (Stats{}) {
		return fmt.Errorf("core: ImportState into a scheduler that already ran")
	}
	if len(d.Capacity) != pp.NumResources || len(d.Usage) != pp.NumResources || len(d.Peak) != pp.NumResources {
		return fmt.Errorf("core: state has %d/%d/%d resource entries, want %d",
			len(d.Capacity), len(d.Usage), len(d.Peak), pp.NumResources)
	}
	copy(s.rm.capacity[:], d.Capacity)
	copy(s.rm.usage[:], d.Usage)
	copy(s.rm.peak[:], d.Peak)
	s.reserve = d.Reserve
	s.nextID = d.NextID
	s.stats = d.Stats
	s.offline = d.Offline
	for _, p := range d.Parked {
		s.parked[p] = true
	}
	for _, k := range d.Reclaimed {
		s.reclaimed[periodKey{procID: k.Proc, phaseIdx: k.Phase}] = true
	}
	for _, e := range d.Inside {
		s.inside[e.Thread] = periodKey{procID: e.Proc, phaseIdx: e.Phase}
	}

	now := s.now()
	s.waitlist.Reset(d.WaitSeq)
	var queued []*period
	for i := range d.Periods {
		ps := &d.Periods[i]
		per := &period{
			id:         ps.ID,
			key:        periodKey{procID: ps.Proc, phaseIdx: ps.Phase},
			demands:    append([]pp.Demand(nil), ps.Demands...),
			taskPool:   ps.TaskPool,
			admitted:   ps.Admitted,
			untracked:  ps.Untracked,
			evacuated:  ps.Evacuated,
			refs:       ps.Refs,
			ticket:     ps.Ticket,
			enqueuedAt: ps.EnqueuedAt,
			admittedAt: ps.AdmittedAt,
		}
		for _, tid := range ps.Waiters {
			t := resolve(tid)
			if t == nil {
				return fmt.Errorf("core: state references unknown thread %d", tid)
			}
			per.waiters = append(per.waiters, t)
		}
		s.active[per.key] = per
		s.byID[per.id] = per
		if ps.waitlisted() {
			// The ticket bound only constrains periods re-entering the
			// queue: an admitted period stolen cross-domain keeps its
			// source shard's ticket, which says nothing about this
			// shard's counter.
			if ps.Ticket > d.WaitSeq {
				return fmt.Errorf("core: period %d ticket %d exceeds waitlist seq %d", ps.ID, ps.Ticket, d.WaitSeq)
			}
			queued = append(queued, per)
		}
		if ps.LeaseAt > 0 {
			if s.timer == nil {
				return fmt.Errorf("core: state has an armed lease but no timer is bound")
			}
			per := per
			per.leaseEv = s.timer.After(ps.LeaseAt.DurationSince(now), func() {
				per.leaseEv = nil
				s.reclaim(per)
			})
		}
		if ps.DeadlineAt > 0 {
			if s.timer == nil {
				return fmt.Errorf("core: state has an armed deadline but no timer is bound")
			}
			per := per
			per.deadlineEv = s.timer.After(ps.DeadlineAt.DurationSince(now), func() {
				per.deadlineEv = nil
				s.fallbackAdmit(per)
			})
		}
	}
	// Rebuild the waitlist under the original tickets: membership and
	// order derive from the registry (ticket held, not admitted).
	sort.Slice(queued, func(i, j int) bool { return queued[i].ticket < queued[j].ticket })
	for _, per := range queued {
		s.waitlist.EnqueueAs(per, per.ticket)
	}

	if (d.Gov != nil) != (s.gov != nil) {
		return fmt.Errorf("core: state governor presence %v does not match scheduler %v", d.Gov != nil, s.gov != nil)
	}
	if d.Gov != nil {
		if err := s.importGov(*d.Gov); err != nil {
			return err
		}
	}
	return nil
}

func (s *Scheduler) importGov(gs GovState) error {
	if len(gs.WaitCounts) != waitExpCap {
		return fmt.Errorf("core: governor state has %d wait buckets, want %d", len(gs.WaitCounts), waitExpCap)
	}
	g := s.gov
	g.level = gs.Level
	g.pressured = gs.Pressured
	g.pressureSince = gs.PressureSince
	g.calm = gs.Calm
	g.calmSince = gs.CalmSince
	g.windowStart = gs.WindowStart
	g.winFallbacks = gs.WinFallbacks
	g.winReclaims = gs.WinReclaims
	copy(g.waits.counts[:], gs.WaitCounts)
	g.waits.total = gs.WaitTotal
	g.stats = gs.Stats
	for _, b := range gs.Breakers {
		g.breakers[b.Proc] = &breaker{state: b.State, strikes: b.Strikes, openedAt: b.OpenedAt}
	}
	if gs.NextTickAt > 0 {
		if s.timer == nil {
			return fmt.Errorf("core: governor state has an armed tick but no timer is bound")
		}
		g.tickEv = s.timer.After(gs.NextTickAt.DurationSince(s.now()), s.govTick)
	}
	return nil
}

// ImportState restores a full set State into this DomainSet, which must
// be freshly built with the same policy, capacity split, and bindings
// as the one that exported it.
func (d *DomainSet) ImportState(st State, resolve ThreadResolver) error {
	if len(st.Domains) != len(d.shards) {
		return fmt.Errorf("core: import of %d-domain state into %d-domain set", len(st.Domains), len(d.shards))
	}
	if st.Set == nil {
		return fmt.Errorf("core: set state missing from imported state")
	}
	for i, s := range d.shards {
		if err := s.importDomain(st.Domains[i], resolve); err != nil {
			return fmt.Errorf("domain %d: %w", i, err)
		}
	}
	d.nextID = st.Set.NextID
	d.placements = st.Set.Placements
	d.steals = st.Set.Steals
	for _, e := range st.Set.DomainOf {
		if e.Domain < 0 || e.Domain >= len(d.shards) {
			return fmt.Errorf("core: placement of proc %d phase %d on unknown domain %d", e.Proc, e.Phase, e.Domain)
		}
		d.domainOf[periodKey{procID: e.Proc, phaseIdx: e.Phase}] = e.Domain
	}
	if st.Set.StealTickAt > 0 {
		if d.timer == nil {
			return fmt.Errorf("core: set state has an armed steal tick but no timer is bound")
		}
		var now sim.Time
		if d.clock != nil {
			now = d.clock()
		}
		d.stealEv = d.timer.After(st.Set.StealTickAt.DurationSince(now), d.stealTick)
	}
	return nil
}

// Detach permanently disconnects this scheduler from the simulation:
// every pending lease, deadline, and governor tick is cancelled, the
// replay sink is dropped, and any event already queued against it (a
// 1-picosecond rescan, a timer racing the detach) becomes a no-op. The
// restore path detaches the scheduler that re-executed the pre-crash
// prefix before handing the machine to the one built from disk.
func (s *Scheduler) Detach() {
	s.detached = true
	s.rsink = nil
	for _, per := range s.active {
		if per.leaseEv != nil && s.timer != nil {
			s.timer.Cancel(per.leaseEv)
			per.leaseEv = nil
		}
		s.cancelDeadline(per)
	}
	if s.gov != nil && s.gov.tickEv != nil && s.timer != nil {
		s.timer.Cancel(s.gov.tickEv)
		s.gov.tickEv = nil
	}
}

// Detach disconnects the whole set: every shard, plus the set's pending
// steal tick; the steal scan is suppressed permanently.
func (d *DomainSet) Detach() {
	for _, s := range d.shards {
		s.Detach()
	}
	if d.stealEv != nil && d.timer != nil {
		d.timer.Cancel(d.stealEv)
		d.stealEv = nil
	}
	d.stealing = true
	d.rsink = nil
}
