package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"rdasched/internal/faults"
	"rdasched/internal/machine"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
	"rdasched/internal/sim"
)

// quietGovernor returns a config with every mechanism disabled, so a
// test can switch on exactly the one under study: the ladder needs
// WaitHigh/HotEvents/depths, the breaker needs Strikes to be reachable,
// aging needs AgeThreshold.
func quietGovernor() GovernorConfig {
	return GovernorConfig{
		Enabled:          true,
		DegradeDepth:     1 << 20,
		ShedDepth:        1 << 20,
		WaitHigh:         0, // disables the stalled-head signal
		HotEvents:        0, // disables the fault-rate signal
		Window:           10 * sim.Millisecond,
		DegradeHold:      2 * sim.Millisecond,
		RecoverHold:      5 * sim.Millisecond,
		LeaseTighten:     0,
		Strikes:          1 << 20, // breaker never trips
		MisdeclareFactor: 2,
		Probation:        10 * sim.Millisecond,
		AgeThreshold:     0, // aging off
	}
}

// multiPhaseProc builds a sequential program of identical 2 MB declared
// phases; phases flagged in lies declare 8 MB instead (a 4x
// misdeclaration, a strike at MisdeclareFactor 2). All phases have the
// same instruction count, so each takes the same virtual time whether
// tracked, quarantined, or lying — the breaker's clock can be derived
// from a calibration run.
func multiPhaseProc(name string, lies []bool) proc.Spec {
	var prog proc.Program
	for i, lie := range lies {
		ph := proc.Phase{
			Name: fmt.Sprintf("pp%d", i), Instr: 1e7, WSS: pp.MB(2),
			Reuse: pp.ReuseHigh, AccessesPerInstr: 0.3, PrivateHitFrac: 0.8,
			FlopsPerInstr: 0.5, Declared: true,
		}
		if lie {
			ph.DeclaredWSS = pp.MB(8)
		}
		prog = append(prog, ph)
	}
	return proc.Spec{Name: name, Threads: 1, Program: prog}
}

// phaseDuration measures one truthful phase's virtual duration by
// calibration: the simulator is deterministic, so a 6-phase truthful run
// of the same program takes exactly 6 equal phases.
func phaseDuration(t *testing.T) sim.Duration {
	t.Helper()
	_, m := build(t, StrictPolicy{})
	if _, err := m.AddProcess(multiPhaseProc("cal", make([]bool, 6))); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Elapsed / 6
}

// TestQuarantineLifecycle walks the breaker through its full state
// machine on a six-phase process: two lying phases trip it at K=2 (the
// tripping period itself runs quarantined), the next phase runs as
// undeclared baseline during probation, and the first phase after the
// probation window is a half-open probe — a truthful one closes the
// breaker, a lying one re-trips it.
func TestQuarantineLifecycle(t *testing.T) {
	d := phaseDuration(t)
	run := func(t *testing.T, lies []bool) (*Scheduler, *machine.Machine, *machine.Process) {
		t.Helper()
		s, m := buildRobust(t, StrictPolicy{}, 0, 0)
		cfg := quietGovernor()
		cfg.Strikes = 2
		cfg.Probation = d + d/2 // between one and two phases after the trip
		s.EnableGovernor(cfg)
		s.EnableLog(64)
		p, err := m.AddProcess(multiPhaseProc("liar", lies))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return s, m, p
	}
	countEvents := func(s *Scheduler, kind EventKind) int {
		events, _ := s.Events()
		n := 0
		for _, e := range events {
			if e.Kind == kind {
				n++
			}
		}
		return n
	}

	t.Run("trip-probation-restore", func(t *testing.T) {
		// ph0 lie: strike 1. ph1 lie: strike 2, trip — quarantined.
		// ph2: inside probation — quarantined. ph3 truthful: probation
		// elapsed, half-open probe — clean, restored. ph4, ph5: normal.
		s, m, p := run(t, []bool{true, true, true, false, false, false})
		gs := s.GovernorStats()
		if gs.Strikes != 2 || gs.Quarantines != 1 {
			t.Errorf("strikes/quarantines = %d/%d, want 2/1", gs.Strikes, gs.Quarantines)
		}
		if gs.QuarantinedAdmits != 2 {
			t.Errorf("quarantined admits = %d, want 2 (the tripping period and the probation one)", gs.QuarantinedAdmits)
		}
		if gs.Probes != 1 || gs.Restores != 1 {
			t.Errorf("probes/restores = %d/%d, want 1/1", gs.Probes, gs.Restores)
		}
		if st := s.BreakerState(p.ID(), m.Now()); st != BreakerClosed {
			t.Errorf("breaker %v after a clean probe, want closed", st)
		}
		if n := countEvents(s, EventGovernorQuarantine); n != 2 {
			t.Errorf("quarantine events = %d, want 2", n)
		}
		if n := countEvents(s, EventGovernorRestore); n != 1 {
			t.Errorf("restore events = %d, want 1", n)
		}
		st := s.Stats()
		if st.Begins != 6 || st.Ends != 6 {
			t.Errorf("begins/ends = %d/%d, want 6/6", st.Begins, st.Ends)
		}
		// Quarantined periods are admitted untracked: only ph0's lying 8 MB
		// declaration (admitted normally, strike 1) was ever charged.
		if pk := s.Resources().Peak(pp.ResourceLLC); pk != pp.MB(8) {
			t.Errorf("peak load %v, want only ph0's declared 8 MB charged", pk)
		}
		if u := s.Resources().Usage(pp.ResourceLLC); u != 0 {
			t.Errorf("load %v after run, want 0", u)
		}
	})

	t.Run("lying-probe-retrips", func(t *testing.T) {
		// ph3's probe lies: the breaker re-trips for a second probation;
		// ph5 is the second probe and restores.
		s, m, p := run(t, []bool{true, true, true, true, true, false})
		gs := s.GovernorStats()
		if gs.Quarantines != 2 {
			t.Errorf("quarantines = %d, want 2 (trip + half-open re-trip)", gs.Quarantines)
		}
		if gs.Probes != 2 || gs.Restores != 1 {
			t.Errorf("probes/restores = %d/%d, want 2/1", gs.Probes, gs.Restores)
		}
		if gs.QuarantinedAdmits != 4 {
			t.Errorf("quarantined admits = %d, want 4", gs.QuarantinedAdmits)
		}
		if st := s.BreakerState(p.ID(), m.Now()); st != BreakerClosed {
			t.Errorf("breaker %v after the second probe, want closed", st)
		}
	})
}

// TestGovernorHysteresisDegradeRecover pins the ladder's timing: a
// stalled waitlist head must persist for DegradeHold before the policy
// degrades (no instant flapping), the degraded predicate then admits the
// stalled period, and sustained calm for RecoverHold steps the ladder
// back to the base policy.
func TestGovernorHysteresisDegradeRecover(t *testing.T) {
	s, m := buildRobust(t, StrictPolicy{}, 0, 0)
	cfg := quietGovernor()
	cfg.WaitHigh = 1 * sim.Millisecond
	cfg.DegradeHold = 2 * sim.Millisecond
	cfg.RecoverHold = 5 * sim.Millisecond
	cfg.Window = 3 * sim.Millisecond
	s.EnableGovernor(cfg)
	s.EnableLog(64)
	// The occupant leaks its 14 MB registration (no lease here), so the
	// victim can never be admitted under Strict — only the ladder's step
	// to Compromise (14+14+1 = 29 <= 30) unblocks it. The background
	// process keeps the engine alive after the victim finishes so the
	// recovery tick has a chance to fire.
	if _, err := m.AddProcess(leakyProc("occupant", pp.MB(14), 1e6)); err != nil {
		t.Fatal(err)
	}
	bg := declaredProc("background", pp.MB(1), 1e8)
	if _, err := m.AddProcess(bg); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(declaredProc("victim", pp.MB(14), 3e7)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("governed run stalled: %v", err)
	}
	gs := s.GovernorStats()
	if gs.Degradations != 1 {
		t.Fatalf("degradations = %d, want exactly 1", gs.Degradations)
	}
	if gs.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1 (calm after the victim finished)", gs.Recoveries)
	}
	if lvl, ok := s.Governor(); !ok || lvl != GovNormal {
		t.Fatalf("final level %v (attached=%v), want normal", lvl, ok)
	}
	if gs.Tightened != 0 {
		t.Fatalf("tightened = %d leases with the watchdog disabled, want 0", gs.Tightened)
	}
	st := s.Stats()
	if st.Woken != 1 || st.Fallbacks != 0 {
		t.Fatalf("woken/fallbacks = %d/%d, want 1/0 (the ladder, not the deadline, admitted the victim)", st.Woken, st.Fallbacks)
	}
	// The hysteresis floor: the victim cannot have been admitted before
	// the head stall crossed WaitHigh and then persisted for DegradeHold.
	if min := cfg.WaitHigh + cfg.DegradeHold; st.MaxWait < min {
		t.Fatalf("max wait %v shorter than the %v hysteresis floor — the ladder stepped instantly", st.MaxWait, min)
	}
	if st.MaxWait > 20*sim.Millisecond {
		t.Fatalf("max wait %v: the ladder never admitted the victim", st.MaxWait)
	}
	events, _ := s.Events()
	var degrade, recover bool
	for _, e := range events {
		switch e.Kind {
		case EventGovernorDegrade:
			degrade = true
			if e.Proc != -1 || e.Phase != int(GovDegraded) {
				t.Errorf("degrade event proc/phase = %d/%d, want -1/%d", e.Proc, e.Phase, int(GovDegraded))
			}
		case EventGovernorRecover:
			recover = true
			if e.Proc != -1 || e.Phase != int(GovNormal) {
				t.Errorf("recover event proc/phase = %d/%d, want -1/%d", e.Proc, e.Phase, int(GovNormal))
			}
		}
	}
	if !degrade || !recover {
		t.Fatalf("decision log missing ladder transitions (degrade=%v recover=%v)", degrade, recover)
	}
	s.Quiesce()
	if u := s.Resources().Usage(pp.ResourceLLC); u != 0 {
		t.Fatalf("load %v after Quiesce, want 0", u)
	}
	if st := s.Stats(); st.Begins != st.Ends+st.Reclaimed {
		t.Fatalf("begins %d != ends %d + reclaimed %d", st.Begins, st.Ends, st.Reclaimed)
	}
}

// TestGovernorLeaseTightening pins the degrade-time watchdog: when the
// ladder leaves Normal, every outstanding lease is re-armed to
// lease/LeaseTighten measured from its admission, so a registration
// leaked long before the overload is reclaimed almost immediately
// instead of after the full lease.
func TestGovernorLeaseTightening(t *testing.T) {
	const lease = 48 * sim.Millisecond
	s, m := buildRobust(t, StrictPolicy{}, lease, 0)
	cfg := quietGovernor()
	cfg.WaitHigh = 1 * sim.Millisecond
	cfg.DegradeHold = 2 * sim.Millisecond
	cfg.Window = 3 * sim.Millisecond
	cfg.LeaseTighten = 8 // 48 ms / 8 = 6 ms tightened horizon
	s.EnableGovernor(cfg)
	s.EnableLog(64)
	if _, err := m.AddProcess(leakyProc("occupant", pp.MB(14), 1e6)); err != nil {
		t.Fatal(err)
	}
	// The background period is live when the tighten pass runs: its lease
	// is re-armed too and expires mid-run — the documented trade (early
	// reclaim of a live period is safe; its late end is dropped).
	if _, err := m.AddProcess(declaredProc("background", pp.MB(1), 1e8)); err != nil {
		t.Fatal(err)
	}
	// Small working set: the victim's post-wake cache refill must finish
	// inside its own tightened lease, so it ends normally.
	if _, err := m.AddProcess(declaredProc("victim", pp.MB(2), 1e6)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("governed run stalled: %v", err)
	}
	gs := s.GovernorStats()
	if gs.Degradations == 0 {
		t.Fatal("ladder never degraded")
	}
	if gs.Tightened != 2 {
		t.Fatalf("tightened = %d, want 2 (occupant + background were outstanding at the degrade)", gs.Tightened)
	}
	st := s.Stats()
	if st.Reclaimed != 2 {
		t.Fatalf("reclaimed = %d, want 2", st.Reclaimed)
	}
	if st.LateEnds != 1 {
		t.Fatalf("late ends = %d, want the live background period's end dropped", st.LateEnds)
	}
	if st.Woken != 1 || st.Fallbacks != 0 {
		t.Fatalf("woken/fallbacks = %d/%d, want 1/0", st.Woken, st.Fallbacks)
	}
	// The point of the mechanism: both reclaims fire at the tightened
	// horizon, a small fraction of the 48 ms lease.
	events, _ := s.Events()
	reclaims := 0
	for _, e := range events {
		if e.Kind != EventReclaim {
			continue
		}
		reclaims++
		if at := e.At.DurationSince(0); at > lease/4 {
			t.Errorf("reclaim at %v, want well before the untightened %v lease", at, lease)
		}
	}
	if reclaims != 2 {
		t.Fatalf("reclaim events = %d, want 2", reclaims)
	}
	if u := s.Resources().Usage(pp.ResourceLLC); u != 0 {
		t.Fatalf("load %v after run, want 0", u)
	}
	if st.Begins != st.Ends+st.Reclaimed {
		t.Fatalf("begins %d != ends %d + reclaimed %d", st.Begins, st.Ends, st.Reclaimed)
	}
}

// TestGovernorReservationPreservesTicket is the monotone-Wait regression
// for waitlist aging: an aged waiter probed and re-denied returns to the
// queue under its original ticket, so its wait clock never resets, its
// reservation blocks younger admissions, and its eventual wake reports
// the full wait. Two small releases probe (and re-deny) the aged 10 MB
// waiter long before the hog frees the cache; if re-denial reset the
// ticket or enqueue time, the recorded waits would restart near zero at
// each probe.
func TestGovernorReservationPreservesTicket(t *testing.T) {
	s, m := buildRobust(t, StrictPolicy{}, 0, 0)
	cfg := quietGovernor()
	cfg.AgeThreshold = 1e-9 // any waiter ages immediately
	s.EnableGovernor(cfg)
	s.EnableLog(64)
	// hog(8 MB) runs ~52 ms. big(10 MB) is denied at t=0 and can only run
	// once the hog ends. smallA/smallB are admitted at t=0 (8+3+3 = 14)
	// and end at ~21 ms and ~32 ms — each end probes the aged big waiter
	// and re-denies it (8+10 > 15), taking a reservation. late(3 MB) is
	// denied at t=0 (14+3 > 15) and would fit at either probe (11+3,
	// 8+3); the reservation must keep it parked until big is admitted.
	if _, err := m.AddProcess(declaredProc("hog", pp.MB(8), 1e8)); err != nil {
		t.Fatal(err)
	}
	big, err := m.AddProcess(declaredProc("big", pp.MB(10), 1e6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(declaredProc("smallA", pp.MB(3), 4e7)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(declaredProc("smallB", pp.MB(3), 6e7)); err != nil {
		t.Fatal(err)
	}
	late, err := m.AddProcess(declaredProc("late", pp.MB(3), 1e6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("governed run stalled: %v", err)
	}
	gs := s.GovernorStats()
	if gs.Reservations != 2 {
		t.Fatalf("reservations = %d, want 2 (one per small release)", gs.Reservations)
	}
	if gs.AgedWakes != 2 {
		t.Fatalf("aged wakes = %d, want big and late admitted through the aging pass", gs.AgedWakes)
	}
	st := s.Stats()
	if st.Denied != 2 || st.Woken != 2 || st.Fallbacks != 0 {
		t.Fatalf("denied/woken/fallbacks = %d/%d/%d, want 2/2/0", st.Denied, st.Woken, st.Fallbacks)
	}
	// big waited from t=0 until the hog ended (>= 45 ms): a reset wait
	// clock would report only the time since the last probe (~20 ms).
	if st.MaxWait < 45*sim.Millisecond {
		t.Fatalf("max wait %v, want the full wait since t=0 preserved across re-denials", st.MaxWait)
	}
	events, _ := s.Events()
	var bigWaits []sim.Duration // reserve, reserve, wake — must be strictly increasing
	bigWake, lateWake := -1, -1
	for i, e := range events {
		switch {
		case e.Proc == big.ID() && (e.Kind == EventGovernorReserve || e.Kind == EventWake):
			bigWaits = append(bigWaits, e.Wait)
			if e.Kind == EventWake {
				bigWake = i
			}
		case e.Proc == late.ID() && e.Kind == EventWake:
			lateWake = i
		}
	}
	if len(bigWaits) != 3 {
		t.Fatalf("big's reserve/wake events = %d, want 2 reservations + 1 wake", len(bigWaits))
	}
	for i := 1; i < len(bigWaits); i++ {
		if bigWaits[i] <= bigWaits[i-1] {
			t.Fatalf("big's recorded waits not monotone: %v", bigWaits)
		}
	}
	if bigWake == -1 || lateWake == -1 || bigWake > lateWake {
		t.Fatalf("wake order: big at %d, late at %d — the reservation must admit the aged waiter first", bigWake, lateWake)
	}
}

// TestEffectivePolicyLadder pins the predicate substitution at each
// ladder level for each base policy.
func TestEffectivePolicyLadder(t *testing.T) {
	cases := []struct {
		base Policy
		lvl  GovernorLevel
		want string
	}{
		{StrictPolicy{}, GovNormal, "strict"},
		{StrictPolicy{}, GovDegraded, "compromise"},
		{StrictPolicy{}, GovShedding, "default"},
		{NewCompromise(), GovDegraded, "compromise"}, // already at the ladder step
		{AlwaysPolicy{}, GovDegraded, "default"},     // never made stricter
		{AlwaysPolicy{}, GovShedding, "default"},
	}
	for _, tc := range cases {
		s := New(tc.base, pp.MB(15))
		s.EnableGovernor(quietGovernor())
		s.gov.level = tc.lvl
		if got := s.effectivePolicy().Name(); got != tc.want {
			t.Errorf("%s at %v: effective policy %q, want %q", tc.base.Name(), tc.lvl, got, tc.want)
		}
	}
	// Without a governor the base policy is untouched.
	s := New(StrictPolicy{}, pp.MB(15))
	if got := s.effectivePolicy().Name(); got != "strict" {
		t.Errorf("ungoverned effective policy %q, want strict", got)
	}
}

// TestGovernorConfigValidate pins the rejected configurations.
func TestGovernorConfigValidate(t *testing.T) {
	mustPanic := func(name string, mutate func(*GovernorConfig)) {
		t.Helper()
		cfg := DefaultGovernorConfig()
		mutate(&cfg)
		defer func() {
			if recover() == nil {
				t.Errorf("%s: EnableGovernor accepted an invalid config", name)
			}
		}()
		New(StrictPolicy{}, pp.MB(15)).EnableGovernor(cfg)
	}
	mustPanic("zero strikes", func(c *GovernorConfig) { c.Strikes = 0 })
	mustPanic("factor 1", func(c *GovernorConfig) { c.MisdeclareFactor = 1 })
	mustPanic("shed below degrade", func(c *GovernorConfig) { c.ShedDepth = c.DegradeDepth - 1 })
	mustPanic("zero window", func(c *GovernorConfig) { c.Window = 0 })
	mustPanic("fractional tighten", func(c *GovernorConfig) { c.LeaseTighten = 0.5 })
	// Disabled config detaches rather than validating.
	s := New(StrictPolicy{}, pp.MB(15))
	s.EnableGovernor(GovernorConfig{})
	if _, ok := s.Governor(); ok {
		t.Error("disabled config left a governor attached")
	}
}

// governorFuzzConfig derives an arbitrary-but-valid governor from one
// fuzz byte, overlapping bit fields so small byte mutations move several
// knobs: depths low enough to reach shedding, every LeaseTighten and
// AgeThreshold regime, strike counts 1-4.
func governorFuzzConfig(govByte uint8) GovernorConfig {
	return GovernorConfig{
		Enabled:          true,
		DegradeDepth:     1 + int(govByte&7),
		ShedDepth:        1 + int(govByte&7) + int((govByte>>3)&7),
		WaitHigh:         chaosDeadline / 4,
		HotEvents:        int(govByte >> 5), // 0 disables
		Window:           chaosDeadline,
		DegradeHold:      chaosDeadline / 8,
		RecoverHold:      chaosDeadline / 4,
		LeaseTighten:     []float64{0, 1, 4, 16}[(govByte>>1)&3],
		Strikes:          1 + int(govByte&3),
		MisdeclareFactor: 2,
		Probation:        chaosDeadline / 2,
		AgeThreshold:     []float64{0, 1e-9, 0.001, 1}[(govByte>>4)&3],
	}
}

// checkGovernorInvariants asserts the governed degradation contract for
// one faulted random workload under an arbitrary governor:
//
//  1. the run terminates — the governor may never deadlock the waitlist
//     (a reservation that wedges the queue shows up as a stall here);
//  2. no period waits past the admission deadline — degradation,
//     quarantine, and aging must not defeat bounded waiting;
//  3. every opened period is accounted for after Quiesce, the load
//     table drains, and the registry and waitlist empty;
//  4. no breaker is reported open past its probation window;
//  5. the breaker counters stay consistent (restores never exceed
//     probes, every trip was admitted quarantined);
//  6. crashed threads only ever shrink the executed instruction count.
func checkGovernorInvariants(seed uint64, polIdx, rateByte, govByte uint8) error {
	policies := []Policy{StrictPolicy{}, NewCompromise(), AlwaysPolicy{}}
	pol := policies[int(polIdx)%len(policies)]
	rate := float64(rateByte) / 255
	gcfg := governorFuzzConfig(govByte)

	cfg := machine.DefaultConfig()
	cfg.MaxSimTime = 600 * sim.Second
	w := randomWorkload(seed, 6)
	plan := faults.Uniform(rate, cfg.LLCCapacity)
	w = plan.Apply(w, seed)

	s := New(pol, cfg.LLCCapacity)
	m := machine.New(cfg, s)
	s.SetWaker(m)
	s.SetClock(m.Now)
	s.SetTimer(m.Engine())
	s.SetLease(chaosLease)
	s.SetAdmissionDeadline(chaosDeadline)
	s.EnableGovernor(gcfg)
	if err := m.AddWorkload(w); err != nil {
		return fmt.Errorf("seed %d rate %.2f: invalid faulted workload: %v", seed, rate, err)
	}
	res, err := m.Run()
	if err != nil {
		return fmt.Errorf("seed %d rate %.2f policy %s gov %#x: %v", seed, rate, pol.Name(), govByte, err)
	}
	end := m.Now()
	s.Quiesce()
	st := s.Stats()
	if st.MaxWait > chaosDeadline {
		return fmt.Errorf("seed %d rate %.2f gov %#x: max wait %v exceeds the %v deadline", seed, rate, govByte, st.MaxWait, chaosDeadline)
	}
	if st.Begins != st.Ends+st.Reclaimed {
		return fmt.Errorf("seed %d rate %.2f gov %#x: %d begins vs %d ends + %d reclaims",
			seed, rate, govByte, st.Begins, st.Ends, st.Reclaimed)
	}
	for r := 0; r < pp.NumResources; r++ {
		if u := s.Resources().Usage(pp.Resource(r)); u != 0 {
			return fmt.Errorf("seed %d rate %.2f gov %#x: leftover %v load %v after Quiesce", seed, rate, govByte, pp.Resource(r), u)
		}
	}
	if s.Waitlisted() != 0 || s.ActivePeriods() != 0 {
		return fmt.Errorf("seed %d rate %.2f gov %#x: registry not drained", seed, rate, govByte)
	}
	for id := range w.Procs {
		if bs := s.BreakerState(id, end.Add(gcfg.Probation)); bs == BreakerOpen {
			return fmt.Errorf("seed %d rate %.2f gov %#x: proc %d breaker stuck open past probation", seed, rate, govByte, id)
		}
	}
	gs := s.GovernorStats()
	if gs.Restores > gs.Probes {
		return fmt.Errorf("seed %d gov %#x: %d restores from %d probes", seed, govByte, gs.Restores, gs.Probes)
	}
	if gs.QuarantinedAdmits < gs.Quarantines {
		return fmt.Errorf("seed %d gov %#x: %d trips but only %d quarantined admits", seed, govByte, gs.Quarantines, gs.QuarantinedAdmits)
	}
	var want float64
	for _, spec := range w.Procs {
		want += float64(spec.Threads) * spec.Program.TotalInstr()
	}
	if res.Counters.Instructions > want+1 {
		return fmt.Errorf("seed %d rate %.2f gov %#x: executed %v instructions, program total is %v",
			seed, rate, govByte, res.Counters.Instructions, want)
	}
	if res.Counters.Crashes == 0 && res.Counters.Instructions < want-1 {
		return fmt.Errorf("seed %d rate %.2f gov %#x: executed %v of %v instructions with no crashes",
			seed, rate, govByte, res.Counters.Instructions, want)
	}
	return nil
}

// TestFuzzGovernorInvariants is the quick.Check sweep;
// FuzzGovernorInvariants explores further from the committed corpus
// under `make fuzz` / CI.
func TestFuzzGovernorInvariants(t *testing.T) {
	f := func(seed uint64, polIdx, rate, gov uint8) bool {
		if err := checkGovernorInvariants(seed, polIdx, rate, gov); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// FuzzGovernorInvariants is the native fuzz entry point. The corpus
// seeds cover each policy across fault rates and governor shapes:
// ladder-only, breaker-heavy, aging-heavy, everything-on, and the
// boundary seeds.
func FuzzGovernorInvariants(f *testing.F) {
	for _, c := range []struct {
		seed           uint64
		pol, rate, gov uint8
	}{
		{0, 0, 0, 0}, {1, 0, 13, 0x07}, {2, 1, 77, 0x16},
		{3, 2, 38, 0x30}, {5, 0, 200, 0xff}, {1337, 0, 255, 0x6d},
		{^uint64(0), 1, 128, 0x81},
	} {
		f.Add(c.seed, c.pol, c.rate, c.gov)
	}
	f.Fuzz(func(t *testing.T, seed uint64, polIdx, rate, gov uint8) {
		if err := checkGovernorInvariants(seed, polIdx, rate, gov); err != nil {
			t.Error(err)
		}
	})
}
