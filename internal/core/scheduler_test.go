package core

import (
	"math"
	"testing"

	"rdasched/internal/machine"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
)

// build wires a scheduler and machine together under the given policy.
func build(t *testing.T, policy Policy) (*Scheduler, *machine.Machine) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.WakeLatency = 0
	cfg.OverheadAPIInstr = 0
	cfg.OverheadKernelInstr = 0
	s := New(policy, cfg.LLCCapacity)
	m := machine.New(cfg, s)
	s.SetWaker(m)
	return s, m
}

func declaredProc(name string, wss pp.Bytes, instr float64) proc.Spec {
	return proc.Spec{
		Name:    name,
		Threads: 1,
		Program: proc.Program{{
			Name:             "pp",
			Instr:            instr,
			WSS:              wss,
			Reuse:            pp.ReuseHigh,
			AccessesPerInstr: 0.3,
			PrivateHitFrac:   0.8,
			FlopsPerInstr:    0.5,
			Declared:         true,
		}},
	}
}

func TestTryScheduleAlgorithm1(t *testing.T) {
	s := New(StrictPolicy{}, pp.MB(15))
	d := pp.Demand{Resource: pp.ResourceLLC, WorkingSet: pp.MB(10), Reuse: pp.ReuseHigh}
	run, sg := s.TrySchedule(d)
	if !run || sg {
		t.Fatalf("fresh demand: run=%v safeguard=%v", run, sg)
	}
	s.rm.Increment(d)
	run, _ = s.TrySchedule(d) // 10 + 10 > 15
	if run {
		t.Fatal("strict admitted oversubscription")
	}
}

func TestTryScheduleSafeguard(t *testing.T) {
	s := New(StrictPolicy{}, pp.MB(15))
	huge := pp.Demand{Resource: pp.ResourceLLC, WorkingSet: pp.MB(100), Reuse: pp.ReuseHigh}
	run, sg := s.TrySchedule(huge)
	if !run || !sg {
		t.Fatalf("oversized demand on idle resource: run=%v safeguard=%v, want true,true", run, sg)
	}
	s.rm.Increment(pp.Demand{Resource: pp.ResourceLLC, WorkingSet: pp.MB(1), Reuse: pp.ReuseLow})
	run, _ = s.TrySchedule(huge)
	if run {
		t.Fatal("oversized demand admitted on busy resource")
	}
}

func TestStrictNeverExceedsCapacity(t *testing.T) {
	s, m := build(t, StrictPolicy{})
	// 10 processes of 4 MB each against a 15 MB LLC: at most 3 at a time.
	for i := 0; i < 10; i++ {
		if _, err := m.AddProcess(declaredProc("p", pp.MB(4), 1e7)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if peak := s.Resources().Peak(pp.ResourceLLC); peak > m.Config().LLCCapacity {
		t.Fatalf("strict peak load %v exceeds capacity %v", peak, m.Config().LLCCapacity)
	}
	st := s.Stats()
	if st.Begins != 10 || st.Ends != 10 {
		t.Fatalf("begins/ends = %d/%d, want 10/10", st.Begins, st.Ends)
	}
	if st.Denied == 0 {
		t.Fatal("no denials despite 40 MB of demand on 15 MB")
	}
	if s.Resources().Usage(pp.ResourceLLC) != 0 {
		t.Fatal("load not zero after all periods ended")
	}
	if s.Waitlisted() != 0 || s.ActivePeriods() != 0 {
		t.Fatal("registry not empty after run")
	}
}

func TestCompromiseAllowsBoundedOversubscription(t *testing.T) {
	s, m := build(t, NewCompromise())
	for i := 0; i < 10; i++ {
		if _, err := m.AddProcess(declaredProc("p", pp.MB(4), 1e7)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	peak := s.Resources().Peak(pp.ResourceLLC)
	capn := m.Config().LLCCapacity
	if peak <= capn {
		t.Fatalf("compromise peak %v never exceeded capacity — factor not applied", peak)
	}
	if float64(peak) > 2*float64(capn) {
		t.Fatalf("compromise peak %v exceeds 2x capacity %v", peak, capn)
	}
}

func TestDefaultPolicyAdmitsEverything(t *testing.T) {
	s, m := build(t, AlwaysPolicy{})
	for i := 0; i < 10; i++ {
		if _, err := m.AddProcess(declaredProc("p", pp.MB(4), 1e7)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().Denied != 0 {
		t.Fatal("default policy denied a period")
	}
	if res.Counters.PPBlocks != 0 {
		t.Fatal("machine saw blocks under default policy")
	}
}

func TestStrictSerializesConflictingPeriods(t *testing.T) {
	// Two 10 MB periods cannot share a 15 MB LLC under strict: the run
	// must serialize them, taking ~2x one period's time, but each runs at
	// full residency.
	_, m := build(t, StrictPolicy{})
	for i := 0; i < 2; i++ {
		if _, err := m.AddProcess(declaredProc("p", pp.MB(10), 1e8)); err != nil {
			t.Fatal(err)
		}
	}
	resStrict, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}

	_, md := build(t, AlwaysPolicy{})
	for i := 0; i < 2; i++ {
		if _, err := md.AddProcess(declaredProc("p", pp.MB(10), 1e8)); err != nil {
			t.Fatal(err)
		}
	}
	resDefault, err := md.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Strict: serial but cache-efficient. Default: parallel but thrashing
	// (20 MB on 15 MB). Strict must move far less data to DRAM. (Total
	// DRAM *Joules* can still favor default here because 10 of 12 cores
	// idle under strict and background DIMM power integrates over the
	// longer serial runtime — the saturated-machine ordering is asserted
	// in TestSchedulerEndToEndEnergyOrdering.)
	if resStrict.Counters.DRAMAccesses >= resDefault.Counters.DRAMAccesses/4 {
		t.Fatalf("strict DRAM traffic %v not ≪ default %v",
			resStrict.Counters.DRAMAccesses, resDefault.Counters.DRAMAccesses)
	}
	// Serialization shows up as longer wall time under strict.
	if resStrict.Elapsed <= resDefault.Elapsed {
		t.Fatal("strict did not serialize the conflicting periods")
	}
}

func TestMultiThreadedPeriodSharedDemand(t *testing.T) {
	// A 4-thread process declaring a 10 MB phase registers 10 MB once,
	// not 40 MB: under strict it must be admitted (10 < 15).
	s, m := build(t, StrictPolicy{})
	spec := declaredProc("mt", pp.MB(10), 1e7)
	spec.Threads = 4
	if _, err := m.AddProcess(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Denied != 0 {
		t.Fatalf("shared demand denied (counted per thread?): %+v", st)
	}
	if st.Begins != 1 || st.Ends != 1 {
		t.Fatalf("period refcounting wrong: begins=%d ends=%d", st.Begins, st.Ends)
	}
	if peak := s.Resources().Peak(pp.ResourceLLC); peak != pp.MB(10) {
		t.Fatalf("peak = %v, want 10 MB counted once", peak)
	}
}

func TestWaitlistFIFOAdmission(t *testing.T) {
	// Saturate the LLC with one long period, then queue several small
	// ones; they must be admitted in arrival order when space frees.
	s, m := build(t, StrictPolicy{})
	if _, err := m.AddProcess(declaredProc("big", pp.MB(14), 5e7)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := m.AddProcess(declaredProc("small", pp.MB(3), 1e6)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Denied != 5 {
		t.Fatalf("denied = %d, want all 5 small periods waitlisted", st.Denied)
	}
	if st.Woken != 5 {
		t.Fatalf("woken = %d, want 5", st.Woken)
	}
	// The small periods were queued in process order; after the big one
	// ends, all 5 fit (15 MB against... 3*5=15 ≤ 15) and finish together,
	// so the overall finish order in the result follows process order.
	if len(res.Procs) != 6 {
		t.Fatal("missing process results")
	}
}

func TestTaskPoolParking(t *testing.T) {
	// A task-pool process denied once must have later periods parked even
	// if they would individually fit.
	s, m := build(t, StrictPolicy{})
	// Big occupies the LLC for a long time.
	if _, err := m.AddProcess(declaredProc("big", pp.MB(14), 1e8)); err != nil {
		t.Fatal(err)
	}
	pool := proc.Spec{
		Name:     "pool",
		Threads:  2,
		TaskPool: true,
		Program: proc.Program{
			{Name: "pp1", Instr: 1e6, WSS: pp.MB(4), Reuse: pp.ReuseHigh,
				AccessesPerInstr: 0.3, PrivateHitFrac: 0.8, FlopsPerInstr: 0.5, Declared: true},
			{Name: "pp2", Instr: 1e6, WSS: pp.KB(64), Reuse: pp.ReuseHigh,
				AccessesPerInstr: 0.3, PrivateHitFrac: 0.8, FlopsPerInstr: 0.5, Declared: true},
		},
	}
	if _, err := m.AddProcess(pool); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Denied == 0 {
		t.Fatal("pool period not denied")
	}
	if st.Ends != 3 {
		t.Fatalf("ends = %d, want 3 (big + 2 pool phases)", st.Ends)
	}
}

func TestLookup(t *testing.T) {
	s, m := build(t, StrictPolicy{})
	// Pause the world with a long process; inspect registry mid-run is
	// not possible from outside Run, so check Lookup on a fresh scheduler
	// via direct EnterPhase. Build a tiny machine manually instead.
	if _, err := m.AddProcess(declaredProc("p", pp.MB(1), 1e6)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Lookup(pp.ID(999)); ok {
		t.Fatal("lookup of dead id succeeded")
	}
}

func TestNilPolicyDefaults(t *testing.T) {
	s := New(nil, pp.MB(15))
	if s.Policy().Name() != "default" {
		t.Fatalf("nil policy resolved to %q", s.Policy().Name())
	}
}

func TestSchedulerEndToEndEnergyOrdering(t *testing.T) {
	// The headline claim at unit scale, on a core-saturating mix: 24
	// high-reuse processes of 1.25 MB against 15 MB. Strict admits 12 at
	// a time (cores stay busy), default runs all 24 with the LLC
	// oversubscribed 2x. Strict must win DRAM energy, system energy, and
	// wall time — the Figure 7/8/9 mechanism end to end.
	run := func(p Policy) *machine.Result {
		_, m := build(t, p)
		for i := 0; i < 24; i++ {
			if _, err := m.AddProcess(declaredProc("p", pp.MB(1.25), 2e7)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	st := run(StrictPolicy{})
	co := run(NewCompromise())
	de := run(AlwaysPolicy{})
	if !(st.DRAMJ < de.DRAMJ) {
		t.Fatalf("strict DRAM %v !< default %v", st.DRAMJ, de.DRAMJ)
	}
	if !(st.SystemJ < de.SystemJ) {
		t.Fatalf("strict system %v !< default %v", st.SystemJ, de.SystemJ)
	}
	if !(st.Elapsed < de.Elapsed) {
		t.Fatalf("strict elapsed %v !< default %v", st.Elapsed, de.Elapsed)
	}
	// Compromise sits between the two on DRAM traffic.
	if !(st.Counters.DRAMAccesses <= co.Counters.DRAMAccesses*1.001 &&
		co.Counters.DRAMAccesses <= de.Counters.DRAMAccesses*1.001) {
		t.Fatalf("DRAM access ordering violated: strict %v, compromise %v, default %v",
			st.Counters.DRAMAccesses, co.Counters.DRAMAccesses, de.Counters.DRAMAccesses)
	}
	// And the flop totals agree (same work done).
	if math.Abs(st.Counters.Flops-de.Counters.Flops)/de.Counters.Flops > 1e-6 {
		t.Fatal("policies did different amounts of work")
	}
}
