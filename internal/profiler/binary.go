package profiler

import "fmt"

// Loop is one loop of a program's static loop-nest structure, the
// information the paper extracts with Dyninst ParseAPI. Sites are the
// JMP instruction addresses (here: abstract site IDs) retired by the
// loop's back edges.
type Loop struct {
	ID     int
	Parent int // -1 for a top-level loop
	Name   string
	Sites  []int
}

// Binary is the synthetic stand-in for a parsed executable: its loop
// nest and the mapping from JMP sites to loops.
type Binary struct {
	loops  map[int]Loop
	bySite map[int]int // site → loop ID
}

// NewBinary builds the lookup tables; it returns an error on duplicate
// loop IDs, unknown parents, or sites claimed by two loops.
func NewBinary(loops []Loop) (*Binary, error) {
	b := &Binary{loops: make(map[int]Loop), bySite: make(map[int]int)}
	for _, l := range loops {
		if _, dup := b.loops[l.ID]; dup {
			return nil, fmt.Errorf("profiler: duplicate loop id %d", l.ID)
		}
		b.loops[l.ID] = l
	}
	for _, l := range loops {
		if l.Parent >= 0 {
			if _, ok := b.loops[l.Parent]; !ok {
				return nil, fmt.Errorf("profiler: loop %d has unknown parent %d", l.ID, l.Parent)
			}
		}
		for _, s := range l.Sites {
			if prev, dup := b.bySite[s]; dup {
				return nil, fmt.Errorf("profiler: site %d claimed by loops %d and %d", s, prev, l.ID)
			}
			b.bySite[s] = l.ID
		}
	}
	return b, nil
}

// LoopOf returns the loop directly containing a JMP site (-1 if unknown).
func (b *Binary) LoopOf(site int) int {
	if id, ok := b.bySite[site]; ok {
		return id
	}
	return -1
}

// Outermost walks parents to the top-level loop containing the given
// loop — "the outermost loop that contains the identified progress
// period is then used as the beginning and ending of the period".
func (b *Binary) Outermost(loopID int) int {
	seen := make(map[int]bool)
	cur, ok := b.loops[loopID]
	if !ok {
		return -1
	}
	for cur.Parent >= 0 {
		if seen[cur.ID] {
			return cur.ID // defensive: cycle in loop tree
		}
		seen[cur.ID] = true
		cur = b.loops[cur.Parent]
	}
	return cur.ID
}

// Name returns a loop's name ("" if unknown).
func (b *Binary) Name(loopID int) string { return b.loops[loopID].Name }

// Annotate resolves each period's dominant JMP site to its outermost
// containing loop.
func Annotate(periods []Period, bin *Binary) {
	for i := range periods {
		if periods[i].Site < 0 {
			continue
		}
		if inner := bin.LoopOf(periods[i].Site); inner >= 0 {
			periods[i].LoopID = bin.Outermost(inner)
		}
	}
}
