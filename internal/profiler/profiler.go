// Package profiler reimplements the paper's preliminary profiler (§2.4),
// which the authors built on Intel PIN: it consumes a load/store address
// stream in fixed-size instruction windows, computes each window's memory
// footprint, working-set size, and reuse ratio, detects progress periods
// as maximal runs of behaviourally similar windows, and correlates them
// with the program's loop structure through retired-JMP sampling (the
// paper uses Dyninst ParseAPI for that last step; internal/profiler's
// Binary type is the synthetic stand-in).
package profiler

import (
	"fmt"

	"rdasched/internal/memtrace"
	"rdasched/internal/pp"
)

// Config controls windowing and detection.
type Config struct {
	// WindowInstr is the sampling window size x: runtime statistics are
	// summarized every WindowInstr instructions.
	WindowInstr uint64
	// MinPeriodInstr is y: a repetition must span at least y instructions
	// (y/x consecutive similar windows) to count as a progress period.
	MinPeriodInstr uint64
	// EntryBytes is the address granularity of the footprint table (the
	// paper's array of unique addresses; 64 tracks cache lines).
	EntryBytes pp.Bytes
	// MinTouches is the pre-configured access count an entry needs to be
	// part of the working set (footprint counts every entry; WSS only
	// those touched at least MinTouches times).
	MinTouches int
	// SimilarityTol is the relative difference in working-set size below
	// which two windows count as "sufficiently similar".
	SimilarityTol float64
	// ReuseTolFactor bounds the ratio between two windows' reuse ratios
	// for similarity (e.g. 3 → within 3x of each other).
	ReuseTolFactor float64
}

// DefaultConfig mirrors the granularity the paper reports using: 1M
// instruction windows, periods of at least 4 windows, line-granular
// entries touched at least 4 times.
func DefaultConfig() Config {
	return Config{
		WindowInstr:    1_000_000,
		MinPeriodInstr: 4_000_000,
		EntryBytes:     64,
		MinTouches:     4,
		SimilarityTol:  0.25,
		ReuseTolFactor: 4,
	}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.WindowInstr == 0:
		return fmt.Errorf("profiler: zero window size")
	case c.MinPeriodInstr < c.WindowInstr:
		return fmt.Errorf("profiler: min period %d below window %d", c.MinPeriodInstr, c.WindowInstr)
	case c.EntryBytes <= 0:
		return fmt.Errorf("profiler: entry granularity %d", c.EntryBytes)
	case c.MinTouches <= 0:
		return fmt.Errorf("profiler: min touches %d", c.MinTouches)
	case c.SimilarityTol <= 0 || c.SimilarityTol >= 1:
		return fmt.Errorf("profiler: similarity tolerance %v outside (0,1)", c.SimilarityTol)
	case c.ReuseTolFactor < 1:
		return fmt.Errorf("profiler: reuse tolerance factor %v below 1", c.ReuseTolFactor)
	}
	return nil
}

// WindowStats summarizes one sampling window.
type WindowStats struct {
	Index      int
	StartInstr uint64
	EndInstr   uint64
	// Footprint is the total bytes touched (every entry).
	Footprint pp.Bytes
	// WSS is the working set: bytes in entries touched ≥ MinTouches times.
	WSS pp.Bytes
	// ReuseRatio is the mean touches per entry.
	ReuseRatio float64
	// Refs is the number of memory references in the window.
	Refs uint64
	// TopSite is the most frequently retired JMP site (-1 if none).
	TopSite int
}

// Windows consumes a trace and returns per-window statistics. The entry
// table is reset at each window boundary, exactly as described in §2.4.
func Windows(s memtrace.Stream, cfg Config) ([]WindowStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var out []WindowStats
	touches := make(map[uint64]uint32)
	jumps := make(map[int]uint64)
	var cur WindowStats
	cur.TopSite = -1
	windowEnd := cfg.WindowInstr

	flush := func(end uint64) {
		cur.EndInstr = end
		var fpEntries, wssEntries int
		var total uint64
		for _, n := range touches {
			fpEntries++
			total += uint64(n)
			if int(n) >= cfg.MinTouches {
				wssEntries++
			}
		}
		cur.Footprint = pp.Bytes(fpEntries) * cfg.EntryBytes
		cur.WSS = pp.Bytes(wssEntries) * cfg.EntryBytes
		if fpEntries > 0 {
			cur.ReuseRatio = float64(total) / float64(fpEntries)
		}
		top, topCount := -1, uint64(0)
		for site, n := range jumps {
			if n > topCount || (n == topCount && site < top) {
				top, topCount = site, n
			}
		}
		cur.TopSite = top
		out = append(out, cur)

		cur = WindowStats{Index: cur.Index + 1, StartInstr: end, TopSite: -1}
		clear(touches)
		clear(jumps)
	}

	var lastInstr uint64
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		lastInstr = r.Instr
		for r.Instr >= windowEnd {
			flush(windowEnd)
			windowEnd += cfg.WindowInstr
		}
		if r.IsJump {
			jumps[r.JumpSite]++
			continue
		}
		cur.Refs++
		touches[r.Addr/uint64(cfg.EntryBytes)]++
	}
	if cur.Refs > 0 || len(jumps) > 0 || len(touches) > 0 {
		flush(lastInstr + 1)
	}
	return out, nil
}

// similar reports whether two windows exhibit the same resource access
// behaviour under the config's thresholds.
func similar(a, b *WindowStats, cfg Config) bool {
	// Working-set sizes within relative tolerance.
	hi, lo := a.WSS, b.WSS
	if hi < lo {
		hi, lo = lo, hi
	}
	if hi > 0 && float64(hi-lo) > cfg.SimilarityTol*float64(hi) {
		return false
	}
	// Reuse ratios within a multiplicative band.
	ra, rb := a.ReuseRatio, b.ReuseRatio
	if ra < rb {
		ra, rb = rb, ra
	}
	if rb > 0 && ra/rb > cfg.ReuseTolFactor {
		return false
	}
	if rb == 0 && ra > 0 {
		return false
	}
	return true
}

// Period is a detected progress period: a maximal run of similar windows.
type Period struct {
	// FirstWindow and LastWindow are inclusive window indices.
	FirstWindow, LastWindow int
	// StartInstr and EndInstr bound the period in instructions.
	StartInstr, EndInstr uint64
	// WSS and ReuseRatio average the member windows.
	WSS        pp.Bytes
	ReuseRatio float64
	// Reuse is the categorized level (Table 2's low/med/high).
	Reuse pp.Reuse
	// Site is the dominant JMP site; LoopID the outermost containing
	// loop after Annotate (-1 before, or if unknown).
	Site   int
	LoopID int
}

// Instr returns the period length in instructions.
func (p Period) Instr() uint64 { return p.EndInstr - p.StartInstr }

// Demand converts the period's measurements into the pp_begin demand
// triple the application would declare.
func (p Period) Demand() pp.Demand {
	return pp.Demand{Resource: pp.ResourceLLC, WorkingSet: p.WSS, Reuse: p.Reuse}
}

// DetectPeriods implements the paper's repetition-finding scan: starting
// from each candidate window, if the next y/x windows are sufficiently
// similar they begin a period, which is then extended until a window with
// significantly different behaviour appears. Scanning resumes after the
// period (or one window later when no period starts).
func DetectPeriods(wins []WindowStats, cfg Config) ([]Period, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	need := int(cfg.MinPeriodInstr / cfg.WindowInstr)
	if need < 1 {
		need = 1
	}
	var periods []Period
	i := 0
	for i < len(wins) {
		if i+need > len(wins) {
			break
		}
		ok := true
		for j := i + 1; j < i+need; j++ {
			if !similar(&wins[i], &wins[j], cfg) {
				ok = false
				break
			}
		}
		if !ok {
			i++
			continue
		}
		// Extend.
		j := i + need
		for j < len(wins) && similar(&wins[i], &wins[j], cfg) {
			j++
		}
		periods = append(periods, summarize(wins[i:j]))
		i = j
	}
	return periods, nil
}

func summarize(wins []WindowStats) Period {
	p := Period{
		FirstWindow: wins[0].Index,
		LastWindow:  wins[len(wins)-1].Index,
		StartInstr:  wins[0].StartInstr,
		EndInstr:    wins[len(wins)-1].EndInstr,
		Site:        -1,
		LoopID:      -1,
	}
	var wss, reuse float64
	sites := make(map[int]int)
	for i := range wins {
		wss += float64(wins[i].WSS)
		reuse += wins[i].ReuseRatio
		if wins[i].TopSite >= 0 {
			sites[wins[i].TopSite]++
		}
	}
	n := float64(len(wins))
	p.WSS = pp.Bytes(wss / n)
	p.ReuseRatio = reuse / n
	p.Reuse = pp.ClassifyReuse(p.ReuseRatio)
	best := 0
	for site, cnt := range sites {
		if cnt > best || (cnt == best && (p.Site < 0 || site < p.Site)) {
			p.Site, best = site, cnt
		}
	}
	return p
}

// Profile runs the full §2.4 pipeline: window, detect, annotate against
// the binary's loop structure (bin may be nil).
func Profile(s memtrace.Stream, cfg Config, bin *Binary) ([]Period, error) {
	wins, err := Windows(s, cfg)
	if err != nil {
		return nil, err
	}
	periods, err := DetectPeriods(wins, cfg)
	if err != nil {
		return nil, err
	}
	if bin != nil {
		Annotate(periods, bin)
	}
	return periods, nil
}
