package profiler

import (
	"fmt"

	"rdasched/internal/proc"
)

// Instrument is the automated API-insertion step the paper leaves to "a
// compiler or a binary translator" (§2.4): given an *uninstrumented*
// program and the progress periods a profiling run detected, it returns a
// copy of the program with pp_begin/pp_end brackets (the Declared flag)
// inserted around every phase whose instruction range lies inside a
// detected period, carrying the *measured* demand rather than the
// phase's nominal one.
//
// Matching is positional: the program's phases are laid out end to end
// in instruction space, exactly as they execute single-threaded, and a
// phase is instrumented when at least minOverlap of it falls inside one
// period. Phases containing barriers are never instrumented (§3.4: no
// blocking synchronization inside a period).
func Instrument(prog proc.Program, periods []Period, minOverlap float64) (proc.Program, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if minOverlap <= 0 || minOverlap > 1 {
		return nil, fmt.Errorf("profiler: overlap threshold %v outside (0,1]", minOverlap)
	}
	out := make(proc.Program, len(prog))
	copy(out, prog)

	var offset float64
	for i := range out {
		ph := &out[i]
		start, end := offset, offset+ph.Instr
		offset = end
		if ph.BarrierAfter {
			continue
		}
		for _, p := range periods {
			ovl := overlap(start, end, float64(p.StartInstr), float64(p.EndInstr))
			if ovl/ph.Instr < minOverlap {
				continue
			}
			d := p.Demand()
			ph.Declared = true
			ph.WSS = d.WorkingSet
			ph.Reuse = d.Reuse
			break
		}
	}
	return out, nil
}

func overlap(a0, a1, b0, b1 float64) float64 {
	lo, hi := a0, a1
	if b0 > lo {
		lo = b0
	}
	if b1 < hi {
		hi = b1
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}
