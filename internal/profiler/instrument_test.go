package profiler

import (
	"testing"

	"rdasched/internal/memtrace"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
)

func instrProgram() proc.Program {
	mk := func(name string, instr float64, barrier bool) proc.Phase {
		return proc.Phase{
			Name: name, Instr: instr, WSS: pp.MB(1), Reuse: pp.ReuseLow,
			AccessesPerInstr: 0.3, PrivateHitFrac: 0.8, FlopsPerInstr: 0.5,
			BarrierAfter: barrier,
		}
	}
	return proc.Program{
		mk("init", 1e6, false),
		mk("hot1", 1e7, false),
		mk("sync", 1e6, true),
		mk("hot2", 1e7, false),
	}
}

func TestInstrumentMarksOverlappingPhases(t *testing.T) {
	prog := instrProgram()
	// Periods covering hot1 (1e6..1.1e7) and hot2 (1.2e7..2.2e7), with
	// measured demands differing from the nominal phases.
	periods := []Period{
		{StartInstr: 1e6, EndInstr: 11e6, WSS: pp.MB(3), ReuseRatio: 50, Reuse: pp.ReuseHigh},
		{StartInstr: 12e6, EndInstr: 22e6, WSS: pp.MB(2), ReuseRatio: 10, Reuse: pp.ReuseMed},
	}
	out, err := Instrument(prog, periods, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Declared || out[2].Declared {
		t.Fatal("init/sync phases instrumented")
	}
	if !out[1].Declared || !out[3].Declared {
		t.Fatal("hot phases not instrumented")
	}
	// The measured demand replaces the nominal one.
	if out[1].WSS != pp.MB(3) || out[1].Reuse != pp.ReuseHigh {
		t.Fatalf("hot1 demand = %v/%v, want measured 3MB/high", out[1].WSS, out[1].Reuse)
	}
	if out[3].WSS != pp.MB(2) || out[3].Reuse != pp.ReuseMed {
		t.Fatalf("hot2 demand = %v/%v", out[3].WSS, out[3].Reuse)
	}
	// The input program is untouched.
	if prog[1].Declared {
		t.Fatal("Instrument mutated its input")
	}
}

func TestInstrumentRespectsBarriers(t *testing.T) {
	prog := instrProgram()
	// One period covering the whole run: barrier phases must stay
	// undeclared regardless (§3.4).
	periods := []Period{{StartInstr: 0, EndInstr: 22e6, WSS: pp.MB(1), Reuse: pp.ReuseHigh}}
	out, err := Instrument(prog, periods, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if out[2].Declared {
		t.Fatal("barrier phase instrumented")
	}
	if !out[1].Declared || !out[3].Declared {
		t.Fatal("computation phases not instrumented")
	}
}

func TestInstrumentOverlapThreshold(t *testing.T) {
	prog := instrProgram()
	// A period covering only 30% of hot1.
	periods := []Period{{StartInstr: 1e6, EndInstr: 4e6, WSS: pp.MB(3), Reuse: pp.ReuseHigh}}
	out, err := Instrument(prog, periods, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if out[1].Declared {
		t.Fatal("phase instrumented below overlap threshold")
	}
	out, err = Instrument(prog, periods, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !out[1].Declared {
		t.Fatal("phase not instrumented above overlap threshold")
	}
}

func TestInstrumentValidation(t *testing.T) {
	if _, err := Instrument(proc.Program{}, nil, 0.5); err == nil {
		t.Fatal("empty program accepted")
	}
	if _, err := Instrument(instrProgram(), nil, 0); err == nil {
		t.Fatal("zero threshold accepted")
	}
	if _, err := Instrument(instrProgram(), nil, 1.5); err == nil {
		t.Fatal("threshold >1 accepted")
	}
}

func TestInstrumentNoPeriodsNoChange(t *testing.T) {
	out, err := Instrument(instrProgram(), nil, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range out {
		if ph.Declared {
			t.Fatal("phase declared with no detected periods")
		}
	}
}

func TestOverlapFunction(t *testing.T) {
	cases := []struct{ a0, a1, b0, b1, want float64 }{
		{0, 10, 5, 15, 5},
		{0, 10, 10, 20, 0},
		{0, 10, -5, 25, 10},
		{5, 8, 0, 10, 3},
		{0, 10, 20, 30, 0},
	}
	for _, c := range cases {
		if got := overlap(c.a0, c.a1, c.b0, c.b1); got != c.want {
			t.Errorf("overlap(%v,%v,%v,%v) = %v, want %v", c.a0, c.a1, c.b0, c.b1, got, c.want)
		}
	}
}

// TestInstrumentEndToEnd closes the full automation loop: trace →
// windows → periods → Instrument → a schedulable program whose declared
// phases carry measured demands.
func TestInstrumentEndToEnd(t *testing.T) {
	// Profile a two-hot-loop trace (the same shape the program below has).
	s := memtrace.NewPhasedStream(1,
		hotPhase("pp1", 100_000, 16*pp.KiB, 1),
		hotPhase("pp2", 100_000, 64*pp.KiB, 2),
	)
	periods, err := Profile(s, testCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(periods) == 0 {
		t.Fatal("no periods detected")
	}
	// Build the corresponding uninstrumented program: one phase per
	// trace phase, aligned in instruction space.
	prog := proc.Program{
		{Name: "pp1", Instr: 100_000, WSS: pp.MB(1), Reuse: pp.ReuseLow,
			AccessesPerInstr: 0.3, PrivateHitFrac: 0.8, FlopsPerInstr: 0.5},
		{Name: "pp2", Instr: 100_000, WSS: pp.MB(1), Reuse: pp.ReuseLow,
			AccessesPerInstr: 0.3, PrivateHitFrac: 0.8, FlopsPerInstr: 0.5},
	}
	out, err := Instrument(prog, periods, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	declared := 0
	for _, ph := range out {
		if ph.Declared {
			declared++
			if ph.WSS <= 0 {
				t.Fatal("declared phase without measured WSS")
			}
		}
	}
	if declared == 0 {
		t.Fatal("end-to-end instrumentation declared nothing")
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("instrumented program invalid: %v", err)
	}
}
