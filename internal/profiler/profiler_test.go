package profiler

import (
	"testing"

	"rdasched/internal/memtrace"
	"rdasched/internal/pp"
)

func testCfg() Config {
	return Config{
		WindowInstr:    10_000,
		MinPeriodInstr: 30_000,
		EntryBytes:     64,
		MinTouches:     3,
		SimilarityTol:  0.25,
		ReuseTolFactor: 4,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	muts := []func(*Config){
		func(c *Config) { c.WindowInstr = 0 },
		func(c *Config) { c.MinPeriodInstr = c.WindowInstr - 1 },
		func(c *Config) { c.EntryBytes = 0 },
		func(c *Config) { c.MinTouches = 0 },
		func(c *Config) { c.SimilarityTol = 0 },
		func(c *Config) { c.SimilarityTol = 1 },
		func(c *Config) { c.ReuseTolFactor = 0.5 },
	}
	for i, mu := range muts {
		c := DefaultConfig()
		mu(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// hotPhase builds a PhaseSpec with a dense hot set that the profiler
// should measure as WSS ≈ hot size.
func hotPhase(name string, instr uint64, hot pp.Bytes, site int) memtrace.PhaseSpec {
	return memtrace.PhaseSpec{
		Name: name, Instr: instr, RefsPerInstr: 0.5,
		HotBytes: hot, ColdBytes: 4 * pp.KiB, HotFrac: 0.95,
		Site: site, JumpEvery: 1000,
	}
}

func TestWindowsMeasureWSS(t *testing.T) {
	hot := 32 * pp.KiB
	s := memtrace.NewPhasedStream(1, hotPhase("a", 100_000, hot, 1))
	wins, err := Windows(s, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 10 {
		t.Fatalf("windows = %d, want 10", len(wins))
	}
	for _, w := range wins {
		// 5000 refs over 512 hot lines ≈ 9.3 touches/line: nearly every
		// hot line clears MinTouches=3, so WSS ≈ hot size.
		if w.WSS < hot*3/4 || w.WSS > hot+8*pp.KiB {
			t.Fatalf("window %d WSS = %v, want ≈%v", w.Index, w.WSS, hot)
		}
		if w.Footprint < w.WSS {
			t.Fatalf("footprint %v below WSS %v", w.Footprint, w.WSS)
		}
		if w.ReuseRatio <= 1 {
			t.Fatalf("reuse ratio %v not > 1 for hot set", w.ReuseRatio)
		}
		if w.TopSite != 1 {
			t.Fatalf("top site = %d, want 1", w.TopSite)
		}
	}
}

func TestWindowsStreamingHasLowWSS(t *testing.T) {
	// Pure streaming touches every line once: WSS (≥3 touches) ≈ 0.
	s := memtrace.NewPhasedStream(1, memtrace.PhaseSpec{
		Name: "stream", Instr: 100_000, RefsPerInstr: 0.5,
		HotBytes: 0, ColdBytes: 8 * pp.MiB, HotFrac: 0,
		Site: -1,
	})
	wins, err := Windows(s, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range wins {
		if w.WSS > w.Footprint/4 {
			t.Fatalf("streaming window WSS %v not ≪ footprint %v", w.WSS, w.Footprint)
		}
		if w.TopSite != -1 {
			t.Fatal("jump site detected in jump-free phase")
		}
	}
}

func TestDetectSinglePeriod(t *testing.T) {
	s := memtrace.NewPhasedStream(1, hotPhase("pp1", 200_000, 64*pp.KiB, 7))
	periods, err := Profile(s, testCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(periods) != 1 {
		t.Fatalf("periods = %d, want 1", len(periods))
	}
	p := periods[0]
	if p.Site != 7 {
		t.Fatalf("site = %d", p.Site)
	}
	if p.WSS < 48*pp.KiB || p.WSS > 80*pp.KiB {
		t.Fatalf("period WSS = %v, want ≈64KiB", p.WSS)
	}
	if p.Instr() < 150_000 {
		t.Fatalf("period too short: %d instr", p.Instr())
	}
}

func TestDetectTwoPhasesSplit(t *testing.T) {
	// Two behaviourally distinct phases must become two periods, not one.
	// The second phase's hot set must stay dense enough that 5000
	// refs/window still touch each entry ≥ MinTouches times: 64 KiB is
	// 1024 entries → ~4.9 touches each.
	s := memtrace.NewPhasedStream(1,
		hotPhase("pp1", 100_000, 16*pp.KiB, 1),
		hotPhase("pp2", 100_000, 64*pp.KiB, 2),
	)
	periods, err := Profile(s, testCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(periods) != 2 {
		t.Fatalf("periods = %d, want 2", len(periods))
	}
	if periods[0].Site != 1 || periods[1].Site != 2 {
		t.Fatalf("sites = %d, %d", periods[0].Site, periods[1].Site)
	}
	if periods[1].WSS <= periods[0].WSS*2 {
		t.Fatalf("second period WSS %v not ≫ first %v", periods[1].WSS, periods[0].WSS)
	}
}

func TestShortBlipIsNotAPeriod(t *testing.T) {
	// A 2-window blip (20k instr < MinPeriodInstr 30k) between two real
	// periods must not be reported.
	s := memtrace.NewPhasedStream(1,
		hotPhase("pp1", 100_000, 16*pp.KiB, 1),
		hotPhase("blip", 20_000, 512*pp.KiB, 9),
		hotPhase("pp2", 100_000, 16*pp.KiB, 2),
	)
	periods, err := Profile(s, testCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range periods {
		if p.Site == 9 {
			t.Fatalf("blip reported as period: %+v", p)
		}
	}
	if len(periods) != 2 {
		t.Fatalf("periods = %d, want 2 (blip absorbed as boundary)", len(periods))
	}
}

func TestReuseClassification(t *testing.T) {
	// Dense touches on a small set → high reuse; streaming → low.
	dense := memtrace.NewPhasedStream(1, memtrace.PhaseSpec{
		Name: "dense", Instr: 100_000, RefsPerInstr: 0.9,
		HotBytes: 4 * pp.KiB, HotFrac: 1, Site: 1, JumpEvery: 1000,
	})
	periods, err := Profile(dense, testCfg(), nil)
	if err != nil || len(periods) == 0 {
		t.Fatalf("profile: %v, %d periods", err, len(periods))
	}
	if periods[0].Reuse != pp.ReuseHigh {
		t.Fatalf("dense reuse = %v (ratio %.1f), want high", periods[0].Reuse, periods[0].ReuseRatio)
	}
	d := periods[0].Demand()
	if d.Resource != pp.ResourceLLC || d.Reuse != pp.ReuseHigh {
		t.Fatalf("demand = %v", d)
	}
}

func TestBinaryLoopResolution(t *testing.T) {
	bin, err := NewBinary([]Loop{
		{ID: 0, Parent: -1, Name: "outer", Sites: []int{10}},
		{ID: 1, Parent: 0, Name: "middle", Sites: []int{11}},
		{ID: 2, Parent: 1, Name: "inner", Sites: []int{12}},
		{ID: 3, Parent: -1, Name: "other", Sites: []int{20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := bin.LoopOf(12); got != 2 {
		t.Fatalf("LoopOf(12) = %d", got)
	}
	if got := bin.Outermost(2); got != 0 {
		t.Fatalf("Outermost(inner) = %d, want 0", got)
	}
	if got := bin.Outermost(3); got != 3 {
		t.Fatalf("Outermost(other) = %d, want 3", got)
	}
	if bin.LoopOf(99) != -1 || bin.Outermost(99) != -1 {
		t.Fatal("unknown site/loop not -1")
	}
	if bin.Name(0) != "outer" {
		t.Fatal("Name broken")
	}
}

func TestBinaryValidation(t *testing.T) {
	if _, err := NewBinary([]Loop{{ID: 0}, {ID: 0}}); err == nil {
		t.Fatal("duplicate loop id accepted")
	}
	if _, err := NewBinary([]Loop{{ID: 0, Parent: 5}}); err == nil {
		t.Fatal("unknown parent accepted")
	}
	if _, err := NewBinary([]Loop{{ID: 0, Sites: []int{1}}, {ID: 1, Sites: []int{1}}}); err == nil {
		t.Fatal("shared site accepted")
	}
}

func TestAnnotateMapsToOutermostLoop(t *testing.T) {
	bin, err := NewBinary([]Loop{
		{ID: 0, Parent: -1, Name: "slave2", Sites: []int{100}},
		{ID: 1, Parent: 0, Name: "interf", Sites: []int{101}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A period whose dominant JMP is the *inner* loop must map to the
	// outermost containing loop, per §2.4.
	s := memtrace.NewPhasedStream(1, hotPhase("pp", 100_000, 32*pp.KiB, 101))
	periods, err := Profile(s, testCfg(), bin)
	if err != nil || len(periods) != 1 {
		t.Fatalf("profile: %v, %d periods", err, len(periods))
	}
	if periods[0].LoopID != 0 {
		t.Fatalf("LoopID = %d, want outermost 0", periods[0].LoopID)
	}
	if bin.Name(periods[0].LoopID) != "slave2" {
		t.Fatal("period not attributed to slave2")
	}
}

func TestWindowsEmptyTrace(t *testing.T) {
	wins, err := Windows(memtrace.NewSliceStream(nil), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 0 {
		t.Fatalf("windows on empty trace = %d", len(wins))
	}
	periods, err := DetectPeriods(nil, testCfg())
	if err != nil || len(periods) != 0 {
		t.Fatalf("periods on empty input: %v, %d", err, len(periods))
	}
}

func TestInvalidConfigPropagates(t *testing.T) {
	bad := testCfg()
	bad.WindowInstr = 0
	if _, err := Windows(memtrace.NewSliceStream(nil), bad); err == nil {
		t.Fatal("Windows accepted bad config")
	}
	if _, err := DetectPeriods(nil, bad); err == nil {
		t.Fatal("DetectPeriods accepted bad config")
	}
}

func BenchmarkWindows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := memtrace.NewPhasedStream(1, hotPhase("pp", 1_000_000, 256*pp.KiB, 1))
		if _, err := Windows(s, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
