package perf

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"rdasched/internal/core"
	"rdasched/internal/machine"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
	"rdasched/internal/sim"
	"rdasched/internal/telemetry/trace"
)

var update = flag.Bool("update", false, "rewrite testdata/*.golden files")

func telemetryRC(jobs int) RunConfig {
	return RunConfig{
		Machine: machine.DefaultConfig(), Policy: core.StrictPolicy{},
		Repetitions: 4, JitterFrac: 0.02, Seed: 7,
		Telemetry: true, Trace: true, Jobs: jobs,
	}
}

// TestTelemetryCollection checks that an instrumented run carries a
// merged registry and span set whose totals line up with the metrics.
func TestTelemetryCollection(t *testing.T) {
	mean, _, err := Run(tinyWorkload(8, true), telemetryRC(1))
	if err != nil {
		t.Fatal(err)
	}
	if mean.Telemetry == nil {
		t.Fatal("no registry collected")
	}
	// 8 procs × 1 period × 4 reps.
	if got := mean.Telemetry.Counter(core.MetricBegins).Value(); got != 32 {
		t.Fatalf("begun periods = %d, want 32", got)
	}
	if got := mean.Telemetry.Counter(core.MetricEnds).Value(); got != 32 {
		t.Fatalf("ended periods = %d, want 32", got)
	}
	waits := mean.Telemetry.Histogram(core.MetricWaitSeconds)
	if waits.Count() == 0 {
		t.Fatal("empty wait histogram")
	}
	// 8 × 2 MB > 15 MB LLC: strict admission must make someone wait.
	if waits.Max() <= 0 {
		t.Fatal("no period ever waited under an over-capacity strict mix")
	}
	if got := len(mean.Spans); got != 32 {
		t.Fatalf("spans = %d, want 32", got)
	}
	reps := map[int]int{}
	for _, sp := range mean.Spans {
		reps[sp.Rep]++
		if sp.Close != "end" {
			t.Fatalf("span closed %q, want \"end\" on a clean run: %+v", sp.Close, sp)
		}
	}
	for rep := 0; rep < 4; rep++ {
		if reps[rep] != 8 {
			t.Fatalf("rep %d has %d spans, want 8 (map: %v)", rep, reps[rep], reps)
		}
	}
}

// TestTelemetryDisabledLeavesMetricsBare pins the disabled default:
// no registry, no spans, and — because telemetry only observes — the
// same measurement as an instrumented run.
func TestTelemetryDisabledLeavesMetricsBare(t *testing.T) {
	rcOff := telemetryRC(1)
	rcOff.Telemetry, rcOff.Trace = false, false
	off, _, err := Run(tinyWorkload(8, true), rcOff)
	if err != nil {
		t.Fatal(err)
	}
	if off.Telemetry != nil || off.Spans != nil {
		t.Fatal("telemetry collected while disabled")
	}
	on, _, err := Run(tinyWorkload(8, true), telemetryRC(1))
	if err != nil {
		t.Fatal(err)
	}
	on.Telemetry, on.Spans = nil, nil
	if !bytes.Equal(mustJSON(t, off), mustJSON(t, on)) {
		t.Fatal("enabling telemetry changed the measurement")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTraceGoldenAndJobsDeterminism renders the Chrome trace for the
// same configuration at Jobs=1 and Jobs=4 and requires byte identity —
// the repetition fan-out must never leak into the exported trace — and
// pins the Jobs-independent bytes against a golden file.
func TestTraceGoldenAndJobsDeterminism(t *testing.T) {
	render := func(jobs int) []byte {
		t.Helper()
		mean, _, err := Run(tinyWorkload(4, true), RunConfig{
			Machine: machine.DefaultConfig(), Policy: core.StrictPolicy{},
			Repetitions: 2, JitterFrac: 0.02, Seed: 7,
			Telemetry: true, Trace: true, Jobs: jobs,
		})
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := trace.WriteChrome(&b, mean.Spans); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	serial := render(1)
	parallel := render(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("trace differs between -jobs 1 and -jobs 4:\n%s\n---\n%s", serial, parallel)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(serial, &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	path := filepath.Join("testdata", "trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, serial, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(serial, want) {
		t.Errorf("exported trace drifted from %s (run with -update if intended)", path)
	}
}

// governedWorkload is a three-process mix that forces every governor
// mechanism the expositions must carry: a misdeclaring process (declares
// 8 MB, touches 2 MB) whose first period strikes and trips the
// one-strike breaker, a leaky occupant that grabs most of the LLC and
// never calls pp_end, and a large victim whose stalled wait drives the
// ladder to Degraded — which re-arms the occupant's lease to the
// tightened horizon and reclaims it.
func governedWorkload() proc.Workload {
	base := proc.Phase{
		Instr: 1e7, WSS: pp.MB(2), Reuse: pp.ReuseHigh,
		AccessesPerInstr: 0.3, PrivateHitFrac: 0.8, FlopsPerInstr: 0.5,
		Declared: true,
	}
	lie := base
	lie.Name = "lie"
	lie.DeclaredWSS = pp.MB(8)
	leak := base
	leak.Name = "leak"
	leak.WSS = pp.MB(14)
	leak.Instr = 1e6
	leak.LeakEnd = true
	vic := base
	vic.Name = "vic"
	vic.WSS = pp.MB(14)
	vic.Instr = 3e7
	return proc.Workload{Name: "governed", Procs: []proc.Spec{
		{Name: "liar", Threads: 1, Program: proc.Program{lie, lie}},
		{Name: "leaky", Threads: 1, Program: proc.Program{leak}},
		{Name: "victim", Threads: 1, Program: proc.Program{vic}},
	}}
}

func governedRC(jobs int) RunConfig {
	cfg := core.DefaultGovernorConfig()
	// Depth never trips; the stalled victim at the waitlist head does,
	// after the liar's first period has ended (so its strike lands first)
	// and the leaky occupant is already admitted (so the degrade entry
	// has an outstanding lease to tighten).
	cfg.DegradeDepth, cfg.ShedDepth = 1<<20, 1<<20
	cfg.WaitHigh = 8 * sim.Millisecond
	cfg.HotEvents = 0
	cfg.Window = 24 * sim.Millisecond
	cfg.DegradeHold = 4 * sim.Millisecond
	cfg.RecoverHold = 8 * sim.Millisecond
	cfg.LeaseTighten = 8
	cfg.Strikes = 1
	cfg.Probation = 10 * sim.Millisecond
	cfg.AgeThreshold = 0
	return RunConfig{
		Machine: machine.DefaultConfig(), Policy: core.StrictPolicy{},
		Repetitions: 2, JitterFrac: 0.02, Seed: 7,
		Lease:     48 * sim.Millisecond,
		Governor:  &cfg,
		Telemetry: true, Trace: true, Jobs: jobs,
	}
}

// TestGovernorTelemetryExposition drives a governed run through every
// exposition surface — the Metrics floats, the rda_governor_* counters
// in the registry and its Prometheus rendering, the decision spans, and
// the Chrome trace — and requires all of it byte-identical across -jobs.
func TestGovernorTelemetryExposition(t *testing.T) {
	mean, _, err := Run(governedWorkload(), governedRC(1))
	if err != nil {
		t.Fatal(err)
	}
	if mean.GovernorDegradations == 0 {
		t.Error("governed run recorded no ladder degradations")
	}
	if mean.GovernorQuarantines == 0 {
		t.Error("governed run recorded no breaker trips")
	}
	for _, name := range []string{
		core.MetricGovernorDegradations,
		core.MetricGovernorQuarantines,
		core.MetricGovernorTightened,
	} {
		if v := mean.Telemetry.Counter(name).Value(); v == 0 {
			t.Errorf("registry: %s = 0, want > 0", name)
		}
	}
	var prom bytes.Buffer
	if err := mean.Telemetry.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		core.MetricGovernorDegradations,
		core.MetricGovernorQuarantines,
		core.MetricGovernorTightened,
	} {
		if !bytes.Contains(prom.Bytes(), []byte(name)) {
			t.Errorf("Prometheus exposition missing %s", name)
		}
	}
	outcomes := map[string]bool{}
	for _, sp := range mean.Spans {
		outcomes[sp.Outcome] = true
	}
	var chrome bytes.Buffer
	if err := trace.WriteChrome(&chrome, mean.Spans); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gov-degrade", "gov-quarantine"} {
		if !outcomes[want] {
			t.Errorf("no span with outcome %q (got %v)", want, outcomes)
		}
		if !bytes.Contains(chrome.Bytes(), []byte(want)) {
			t.Errorf("Chrome trace missing %q", want)
		}
	}

	// The governed repetition fan-out must stay bit-identical: same
	// numeric aggregate, same exposition, same trace bytes at any Jobs.
	par, _, err := Run(governedWorkload(), governedRC(4))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, mean), mustJSON(t, par)) {
		t.Fatal("governed mean diverged across jobs")
	}
	var promPar bytes.Buffer
	if err := par.Telemetry.WritePrometheus(&promPar); err != nil {
		t.Fatal(err)
	}
	if prom.String() != promPar.String() {
		t.Fatal("governed exposition diverged across jobs")
	}
	var chromePar bytes.Buffer
	if err := trace.WriteChrome(&chromePar, par.Spans); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chrome.Bytes(), chromePar.Bytes()) {
		t.Fatal("governed trace diverged across jobs")
	}
}

// TestRunParallelMatchesSerial pins the whole Metrics aggregate, not
// just the trace: Jobs must never change a number.
func TestRunParallelMatchesSerial(t *testing.T) {
	s1, sd1, err := Run(tinyWorkload(6, true), telemetryRC(1))
	if err != nil {
		t.Fatal(err)
	}
	s4, sd4, err := Run(tinyWorkload(6, true), telemetryRC(4))
	if err != nil {
		t.Fatal(err)
	}
	// Compare the numeric fields via JSON (telemetry excluded there)
	// and the expositions separately.
	if !bytes.Equal(mustJSON(t, s1), mustJSON(t, s4)) {
		t.Fatalf("mean diverged across jobs:\n%s\n%s", mustJSON(t, s1), mustJSON(t, s4))
	}
	if !bytes.Equal(mustJSON(t, sd1), mustJSON(t, sd4)) {
		t.Fatal("stddev diverged across jobs")
	}
	var e1, e4 bytes.Buffer
	if err := s1.Telemetry.WritePrometheus(&e1); err != nil {
		t.Fatal(err)
	}
	if err := s4.Telemetry.WritePrometheus(&e4); err != nil {
		t.Fatal(err)
	}
	if e1.String() != e4.String() {
		t.Fatalf("registry exposition diverged across jobs:\n%s\n---\n%s", e1.String(), e4.String())
	}
}
