package perf

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"rdasched/internal/core"
	"rdasched/internal/machine"
	"rdasched/internal/telemetry/trace"
)

var update = flag.Bool("update", false, "rewrite testdata/*.golden files")

func telemetryRC(jobs int) RunConfig {
	return RunConfig{
		Machine: machine.DefaultConfig(), Policy: core.StrictPolicy{},
		Repetitions: 4, JitterFrac: 0.02, Seed: 7,
		Telemetry: true, Trace: true, Jobs: jobs,
	}
}

// TestTelemetryCollection checks that an instrumented run carries a
// merged registry and span set whose totals line up with the metrics.
func TestTelemetryCollection(t *testing.T) {
	mean, _, err := Run(tinyWorkload(8, true), telemetryRC(1))
	if err != nil {
		t.Fatal(err)
	}
	if mean.Telemetry == nil {
		t.Fatal("no registry collected")
	}
	// 8 procs × 1 period × 4 reps.
	if got := mean.Telemetry.Counter(core.MetricBegins).Value(); got != 32 {
		t.Fatalf("begun periods = %d, want 32", got)
	}
	if got := mean.Telemetry.Counter(core.MetricEnds).Value(); got != 32 {
		t.Fatalf("ended periods = %d, want 32", got)
	}
	waits := mean.Telemetry.Histogram(core.MetricWaitSeconds)
	if waits.Count() == 0 {
		t.Fatal("empty wait histogram")
	}
	// 8 × 2 MB > 15 MB LLC: strict admission must make someone wait.
	if waits.Max() <= 0 {
		t.Fatal("no period ever waited under an over-capacity strict mix")
	}
	if got := len(mean.Spans); got != 32 {
		t.Fatalf("spans = %d, want 32", got)
	}
	reps := map[int]int{}
	for _, sp := range mean.Spans {
		reps[sp.Rep]++
		if sp.Close != "end" {
			t.Fatalf("span closed %q, want \"end\" on a clean run: %+v", sp.Close, sp)
		}
	}
	for rep := 0; rep < 4; rep++ {
		if reps[rep] != 8 {
			t.Fatalf("rep %d has %d spans, want 8 (map: %v)", rep, reps[rep], reps)
		}
	}
}

// TestTelemetryDisabledLeavesMetricsBare pins the disabled default:
// no registry, no spans, and — because telemetry only observes — the
// same measurement as an instrumented run.
func TestTelemetryDisabledLeavesMetricsBare(t *testing.T) {
	rcOff := telemetryRC(1)
	rcOff.Telemetry, rcOff.Trace = false, false
	off, _, err := Run(tinyWorkload(8, true), rcOff)
	if err != nil {
		t.Fatal(err)
	}
	if off.Telemetry != nil || off.Spans != nil {
		t.Fatal("telemetry collected while disabled")
	}
	on, _, err := Run(tinyWorkload(8, true), telemetryRC(1))
	if err != nil {
		t.Fatal(err)
	}
	on.Telemetry, on.Spans = nil, nil
	if !bytes.Equal(mustJSON(t, off), mustJSON(t, on)) {
		t.Fatal("enabling telemetry changed the measurement")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTraceGoldenAndJobsDeterminism renders the Chrome trace for the
// same configuration at Jobs=1 and Jobs=4 and requires byte identity —
// the repetition fan-out must never leak into the exported trace — and
// pins the Jobs-independent bytes against a golden file.
func TestTraceGoldenAndJobsDeterminism(t *testing.T) {
	render := func(jobs int) []byte {
		t.Helper()
		mean, _, err := Run(tinyWorkload(4, true), RunConfig{
			Machine: machine.DefaultConfig(), Policy: core.StrictPolicy{},
			Repetitions: 2, JitterFrac: 0.02, Seed: 7,
			Telemetry: true, Trace: true, Jobs: jobs,
		})
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := trace.WriteChrome(&b, mean.Spans); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	serial := render(1)
	parallel := render(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("trace differs between -jobs 1 and -jobs 4:\n%s\n---\n%s", serial, parallel)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(serial, &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	path := filepath.Join("testdata", "trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, serial, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(serial, want) {
		t.Errorf("exported trace drifted from %s (run with -update if intended)", path)
	}
}

// TestRunParallelMatchesSerial pins the whole Metrics aggregate, not
// just the trace: Jobs must never change a number.
func TestRunParallelMatchesSerial(t *testing.T) {
	s1, sd1, err := Run(tinyWorkload(6, true), telemetryRC(1))
	if err != nil {
		t.Fatal(err)
	}
	s4, sd4, err := Run(tinyWorkload(6, true), telemetryRC(4))
	if err != nil {
		t.Fatal(err)
	}
	// Compare the numeric fields via JSON (telemetry excluded there)
	// and the expositions separately.
	if !bytes.Equal(mustJSON(t, s1), mustJSON(t, s4)) {
		t.Fatalf("mean diverged across jobs:\n%s\n%s", mustJSON(t, s1), mustJSON(t, s4))
	}
	if !bytes.Equal(mustJSON(t, sd1), mustJSON(t, sd4)) {
		t.Fatal("stddev diverged across jobs")
	}
	var e1, e4 bytes.Buffer
	if err := s1.Telemetry.WritePrometheus(&e1); err != nil {
		t.Fatal(err)
	}
	if err := s4.Telemetry.WritePrometheus(&e4); err != nil {
		t.Fatal(err)
	}
	if e1.String() != e4.String() {
		t.Fatalf("registry exposition diverged across jobs:\n%s\n---\n%s", e1.String(), e4.String())
	}
}
