// Package perf is the measurement harness standing in for the paper's
// use of Linux perf + RAPL: it runs a workload under a scheduling
// configuration, repeats the measurement (the paper averages four runs),
// and reports the metrics of §4.1 — system and DRAM energy in Joules,
// GFLOPS, and GFLOPS per Watt.
package perf

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"path/filepath"

	"rdasched/internal/core"
	"rdasched/internal/faults"
	"rdasched/internal/machine"
	"rdasched/internal/obsrv"
	"rdasched/internal/persist"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
	"rdasched/internal/runner"
	"rdasched/internal/sim"
	"rdasched/internal/telemetry"
	"rdasched/internal/telemetry/blame"
	"rdasched/internal/telemetry/trace"
)

// Metrics are the paper's evaluation metrics for one workload run.
type Metrics struct {
	// SystemJ is energy consumed by CPU + caches + DRAM (Figure 7).
	SystemJ float64
	// DRAMJ is energy consumed by DRAM alone (Figure 8).
	DRAMJ float64
	// PackageJ is the package domain (SystemJ - DRAMJ).
	PackageJ float64
	// GFLOPS is average attained performance (Figure 9).
	GFLOPS float64
	// GFLOPSPerWatt is work per energy (Figure 10).
	GFLOPSPerWatt float64
	// ElapsedSec is the workload makespan in (virtual) seconds.
	ElapsedSec float64
	// DRAMAccesses counts LLC misses reaching memory.
	DRAMAccesses float64
	// AvgBusyCores is the time-averaged core occupancy.
	AvgBusyCores float64
	// Blocks and Wakeups count scheduler pause/resume events.
	Blocks, Wakeups uint64

	// Robustness counters (float64 so Aggregate averages them): lease
	// reclamations (including end-of-run Quiesce), deadline degradations
	// to stock admission, refused invalid demands, and the longest time
	// any period sat on the waitlist.
	ReclaimedLeases    float64
	FallbackAdmissions float64
	RejectedDemands    float64
	MaxWaitSec         float64

	// Governor counters (zero without RunConfig.Governor): policy ladder
	// steps toward shedding and back, breaker trips, clean-probe
	// restores, and aged-waiter capacity reservations.
	GovernorDegradations float64
	GovernorRecoveries   float64
	GovernorQuarantines  float64
	GovernorRestores     float64
	GovernorReservations float64

	// Domain counters (zero unless RunConfig.Domains >= 2): periods
	// assigned by the demand-aware placer and aged waiters migrated
	// cross-domain. A single-domain set makes no placement decisions,
	// so Domains=1 reports zeros exactly like the unsharded scheduler.
	DomainPlacements float64
	DomainSteals     float64

	// Recovery counters (zero unless domain faults were injected):
	// shard crashes, periods moved off failed shards, backoff retry
	// ticks, ledger drifts repaired by the auditor, shards reintegrated,
	// and periods the RecoverDrop baseline degraded to untracked.
	DomainFailures   float64
	Evacuations      float64
	EvacRetries      float64
	AuditRepairs     float64
	DomainRecoveries float64
	DroppedPeriods   float64

	// Telemetry is the run's metrics registry (RunConfig.Telemetry):
	// the scheduler's counters plus wait-time, period-length,
	// occupancy, and waitlist-depth histograms. On an aggregate it is
	// the merge of every repetition's registry in repetition order.
	// Excluded from JSON encodings of Metrics — use its own
	// WriteJSON/WritePrometheus encoders.
	Telemetry *telemetry.Registry `json:"-"`
	// Spans are the run's decision traces (RunConfig.Trace), one span
	// per progress period. On an aggregate they are every repetition's
	// spans concatenated in repetition order, each stamped with its
	// repetition index.
	Spans []trace.Span `json:"-"`
	// Blame is the run's causal wait-attribution report
	// (RunConfig.Blame): interference matrix, per-period blame
	// timeline, and critical-path decomposition. On an aggregate,
	// repetitions merge in repetition order with Rep-stamped timelines.
	Blame *blame.Report `json:"-"`
	// SLO is the admission-latency SLO evaluation (RunConfig.SLO):
	// breach counts and the multi-window burn-rate timeline. Aggregates
	// merge in repetition order like Blame.
	SLO *blame.SLOResult `json:"-"`
}

// RunConfig describes one measured configuration.
type RunConfig struct {
	// Machine is the hardware model (machine.DefaultConfig for Table 1).
	Machine machine.Config
	// Policy selects the scheduling configuration. nil means the Linux
	// default policy: applications run *uninstrumented* — declared flags
	// are stripped, so no progress-period API overhead is charged and no
	// admission control happens.
	Policy core.Policy
	// Reserve withholds LLC capacity from admission (§6 extension; only
	// meaningful with a non-nil Policy).
	Reserve pp.Bytes
	// Repetitions is the number of measured runs to average (the paper
	// uses 4). 0 means 1.
	Repetitions int
	// JitterFrac perturbs per-run phase lengths by a uniform ±fraction,
	// making repetitions differ the way real runs do (the paper reports
	// an average standard deviation of 2%). 0 disables jitter.
	JitterFrac float64
	// Seed drives the jitter; each repetition forks its own stream.
	Seed uint64

	// Faults, when non-nil and enabled, perturbs the workload with seeded
	// misbehavior (misdeclared/oversized demands, leaked pp_ends, crashes,
	// arrival bursts) before the run; each repetition draws its own fault
	// pattern from Seed. See internal/faults.
	Faults *faults.Plan
	// Lease bounds how long an admitted period may stay registered before
	// the watchdog reclaims its load (0 disables; see core.SetLease).
	Lease sim.Duration
	// AdmitDeadline bounds how long a denied period may wait before it is
	// degraded to stock-scheduler admission (0 disables; see
	// core.SetAdmissionDeadline).
	AdmitDeadline sim.Duration
	// Governor, when non-nil and enabled, attaches the adaptive
	// admission governor (overload-aware policy degradation,
	// misdeclaration quarantine, waitlist aging) to each repetition's
	// scheduler. Only meaningful with a non-nil Policy.
	Governor *core.GovernorConfig

	// Domains shards the scheduler into N per-domain admission monitors
	// with demand-aware placement and cross-domain steal of aged
	// waiters (core.DomainSet). 0 runs the unsharded scheduler; 1 runs
	// a single-domain set, bit-identical to 0 (the differential suite
	// pins this). Only meaningful with a non-nil Policy.
	Domains int
	// StealAge tunes the cross-domain steal age bar (0 selects
	// core.DefaultStealAge, negative disables stealing). Only
	// meaningful with Domains >= 2.
	StealAge sim.Duration
	// Recovery configures the domain fault/recovery subsystem; nil with
	// Faults.DomainFaults scheduled selects core.DefaultRecoveryConfig.
	// Only meaningful with Domains >= 2.
	Recovery *core.RecoveryConfig

	// Telemetry attaches a fresh metrics registry to each repetition's
	// scheduler (Metrics.Telemetry). Only meaningful with a non-nil
	// Policy — the baseline has no scheduler to observe.
	Telemetry bool
	// Trace subscribes a span collector to each repetition's decision
	// stream (Metrics.Spans).
	Trace bool
	// Blame subscribes the causal wait-attribution collector
	// (internal/telemetry/blame) to each repetition's decision stream
	// (Metrics.Blame). With Telemetry also set, the rda_blame_* families
	// publish into the repetition's registry. Only meaningful with a
	// non-nil Policy.
	Blame bool
	// SLO, when non-nil, attaches an admission-latency SLO monitor with
	// multi-window burn-rate alerting (Metrics.SLO; rda_slo_* families
	// with Telemetry). Only meaningful with a non-nil Policy.
	SLO *blame.SLOConfig

	// Checkpoint, when non-nil, attaches the crash-safe admission
	// journal and snapshot writer (internal/persist) to each
	// repetition's scheduler. Repetition 0 writes into Checkpoint.Dir
	// directly; repetition i > 0 into Dir/rep<i>. Combined with
	// Faults.KillAt the run dies mid-schedule (machine.ErrHalted),
	// leaving the checkpoint directory as the only survivor.
	// Incompatible with Faults.DomainFaults (the recovery subsystem's
	// injected state is not journaled) and with Restore.
	Checkpoint *persist.Config
	// Restore, when non-nil, resumes a killed run from a loaded
	// checkpoint: the pre-kill prefix is re-executed (the simulation is
	// deterministic), verified byte-for-byte against the restored state,
	// and then a scheduler built purely from the checkpoint takes over
	// the machine for the remainder. Requires Repetitions <= 1.
	Restore *persist.Restored
	// Jobs fans repetitions out across a worker pool (internal/runner);
	// <= 1 runs them serially. Results are bit-identical for every
	// value: each repetition is a pure function of (w, rc, rep), and
	// samples are aggregated in repetition order.
	Jobs int

	// Obsrv, when non-nil, attaches the live introspection server to
	// the run: the decision stream fans out to its /events hub, the
	// telemetry registry (with Telemetry set) becomes scrapeable at
	// /metrics, and the engine step hook publishes /state and /blame
	// snapshots. The server observes through non-blocking copies only,
	// so results are bit-identical to an unobserved run. A stop request
	// (SIGTERM in the CLIs) halts the run with ErrStopped.
	Obsrv *obsrv.Server
	// Pace throttles virtual time to Pace virtual seconds per wall
	// second (1 = real time, 10 = 10x speed); 0 runs unthrottled. The
	// pacer only sleeps between events, never reorders them, so a paced
	// run's results are identical to an unpaced one's.
	Pace float64
}

// ErrStopped reports a run halted by an external stop request
// (obsrv.Server.RequestStop — the CLIs' SIGTERM path). Callers that
// asked for the stop should treat it as a clean, intentional end of
// the run, not a failure.
var ErrStopped = errors.New("run stopped by request")

// Reps returns the effective repetition count (0 means 1).
func (rc RunConfig) Reps() int {
	if rc.Repetitions <= 0 {
		return 1
	}
	return rc.Repetitions
}

// Run measures a workload and returns the mean metrics and their
// standard deviation across repetitions. With rc.Jobs > 1 the
// repetitions run concurrently on a worker pool; the result is
// bit-identical to the serial loop because every repetition is a pure
// function of its index and samples are aggregated in repetition
// order.
func Run(w proc.Workload, rc RunConfig) (mean, stddev Metrics, err error) {
	if rc.Jobs > 1 {
		samples, err := runner.Map(rc.Jobs, rc.Reps(), func(i int) (Metrics, error) {
			return Sample(w, rc, i)
		})
		if err != nil {
			return Metrics{}, Metrics{}, fmt.Errorf("perf: %w", err)
		}
		return Aggregate(samples)
	}
	var samples []Metrics
	for i := 0; i < rc.Reps(); i++ {
		m, err := Sample(w, rc, i)
		if err != nil {
			return Metrics{}, Metrics{}, fmt.Errorf("perf: repetition %d: %w", i, err)
		}
		samples = append(samples, m)
	}
	return Aggregate(samples)
}

// Sample measures repetition rep of the configuration. It is a pure
// function of (w, rc, rep): the jitter stream derives from rc.Seed and
// rep alone, never from a generator shared across repetitions, so
// repetitions may run concurrently — in any order, on any worker — and
// still produce the exact metrics a serial loop would.
func Sample(w proc.Workload, rc RunConfig, rep int) (Metrics, error) {
	if err := w.Validate(); err != nil {
		return Metrics{}, err
	}
	if rc.Faults != nil && rc.Faults.Enabled() {
		w = rc.Faults.Apply(w, runner.Seed(rc.Seed+0xfa17, uint64(rep)))
	}
	if rc.JitterFrac > 0 {
		w = jitter(w, rc.JitterFrac, sim.NewRNG(runner.Seed(rc.Seed+0x5eed, uint64(rep))))
	}
	return runOnce(w, rc, uint64(rep))
}

// admission is the scheduler surface runOnce drives; *core.Scheduler
// and *core.DomainSet both satisfy it, so the measurement path is the
// same whether the run is sharded or not.
type admission interface {
	machine.Gate
	SetWaker(core.Waker)
	SetClock(core.Clock)
	SetTimer(core.Timer)
	SetLease(sim.Duration)
	SetAdmissionDeadline(sim.Duration)
	EnableGovernor(core.GovernorConfig)
	SetMetrics(*telemetry.Registry)
	AddSink(core.EventSink)
	SetReplaySink(core.ReplaySink)
	ExportState() core.State
	ImportState(core.State, core.ThreadResolver) error
	Detach()
	Quiesce() int
	Stats() core.Stats
	GovernorStats() core.GovernorStats
	PublishStats(*telemetry.Registry)
}

// newGate builds the admission gate for one repetition (nil for the
// uninstrumented baseline). Extracted from runOnce so the restore path
// can build a second, identical gate to import the checkpoint into.
func newGate(rc RunConfig, cfg machine.Config) (admission, *core.DomainSet, error) {
	if rc.Policy == nil {
		return nil, nil, nil
	}
	if rc.Domains >= 1 {
		// RunConfig keeps the old "negative StealAge disables stealing"
		// contract; the core config expresses that as DisableSteal.
		dcfg := core.DomainConfig{Domains: rc.Domains, StealAge: rc.StealAge}
		if rc.StealAge < 0 {
			dcfg.StealAge, dcfg.DisableSteal = 0, true
		}
		dset, err := core.NewDomainSet(rc.Policy, cfg.LLCCapacity, dcfg)
		if err != nil {
			return nil, nil, err
		}
		// Track memory bandwidth as a second resource, split across the
		// domains like the LLC budget.
		dset.SetResourceCapacity(pp.ResourceMemBW, pp.Bytes(cfg.MemBandwidth))
		if rc.Reserve > 0 {
			dset.SetReserve(rc.Reserve)
		}
		if rc.Faults != nil && len(rc.Faults.DomainFaults) > 0 {
			rcfg := core.DefaultRecoveryConfig()
			if rc.Recovery != nil {
				rcfg = *rc.Recovery
			}
			if err := dset.EnableRecovery(rcfg); err != nil {
				return nil, nil, err
			}
		}
		return dset, dset, nil
	}
	s := core.New(rc.Policy, cfg.LLCCapacity)
	// Track memory bandwidth as a second resource: periods declaring
	// BWDemand are gated against the machine's DRAM roofline.
	s.Resources().SetCapacity(pp.ResourceMemBW, pp.Bytes(cfg.MemBandwidth))
	if rc.Reserve > 0 {
		s.SetReserve(rc.Reserve)
	}
	return s, nil, nil
}

// runSinks holds the observers shared by a repetition's gates. The
// restore path binds them to two gates in sequence — the one that
// re-executes the pre-kill prefix and the one built from the checkpoint
// — so the resulting trace, metrics, and SLO streams cover the whole
// run exactly once, like an uninterrupted run's would.
type runSinks struct {
	reg  *telemetry.Registry
	col  *trace.Collector
	bcol *blame.Collector
	smon *blame.SLOMonitor
	in   *introspection
}

// introspection is the per-repetition bridge between the engine step
// hook and the live server: stop requests, wall-clock pacing, and
// periodic state/blame publication. It runs entirely on the engine
// goroutine; the gate pointer is re-aimed when the restore path swaps
// gates so /state keeps tracking the live one.
type introspection struct {
	srv   *obsrv.Server
	pacer *obsrv.Pacer
	eng   *sim.Engine
	gate  admission
	sk    *runSinks
}

// step is the sim.Engine hook: honor a pending stop first (so a stuck
// reader or a long pace sleep cannot delay shutdown past one event),
// then pace, then maybe publish snapshots. Halt is the hook's one
// sanctioned engine mutation.
func (in *introspection) step(now sim.Time) {
	if in.srv != nil && in.srv.StopRequested() {
		in.eng.Halt()
		return
	}
	in.pacer.Pace(now)
	if in.srv == nil || in.gate == nil {
		return
	}
	var rpt func() *blame.Report
	if in.sk.bcol != nil {
		rpt = in.sk.bcol.Report
	}
	in.srv.MaybePublish(in.gate.ExportState, rpt)
}

// bind wires one gate to the machine and attaches the (lazily created)
// observers.
func (sk *runSinks) bind(schd admission, m *machine.Machine, rc RunConfig) error {
	schd.SetWaker(m)
	schd.SetClock(m.Now)
	schd.SetTimer(m.Engine())
	schd.SetLease(rc.Lease)
	schd.SetAdmissionDeadline(rc.AdmitDeadline)
	if rc.Governor != nil {
		schd.EnableGovernor(*rc.Governor)
	}
	if rc.Telemetry {
		if sk.reg == nil {
			sk.reg = telemetry.NewRegistry()
		}
		schd.SetMetrics(sk.reg)
	}
	if rc.Trace {
		if sk.col == nil {
			sk.col = trace.NewCollector()
		}
		schd.AddSink(sk.col)
	}
	if rc.Blame {
		if sk.bcol == nil {
			sk.bcol = blame.NewCollector()
		}
		schd.AddSink(sk.bcol)
	}
	if rc.SLO != nil {
		if sk.smon == nil {
			var err error
			sk.smon, err = blame.NewSLOMonitor(*rc.SLO)
			if err != nil {
				return err
			}
		}
		schd.AddSink(sk.smon)
	}
	if rc.Obsrv != nil {
		schd.AddSink(rc.Obsrv.Hub())
		if sk.reg != nil {
			rc.Obsrv.SetRegistry(sk.reg)
		}
	}
	return nil
}

// validatePersist rejects checkpoint/restore configurations the journal
// cannot honor.
func validatePersist(rc RunConfig) error {
	if rc.Checkpoint == nil && rc.Restore == nil {
		return nil
	}
	if rc.Policy == nil {
		return fmt.Errorf("perf: checkpoint/restore requires an admission policy (the baseline has no gate state)")
	}
	if rc.Checkpoint != nil && rc.Restore != nil {
		return fmt.Errorf("perf: checkpointing and restoring in the same run is not supported")
	}
	if rc.Faults != nil && len(rc.Faults.DomainFaults) > 0 {
		return fmt.Errorf("perf: checkpoint/restore is incompatible with domain faults (recovery state is not journaled)")
	}
	if rc.Restore != nil {
		if rc.Reps() > 1 {
			return fmt.Errorf("perf: restore requires Repetitions <= 1 (a checkpoint belongs to one repetition)")
		}
		if rc.Restore.KillAt <= 0 {
			return fmt.Errorf("perf: restored checkpoint has no kill time (was the run actually killed?)")
		}
	}
	return nil
}

// stateTracker is the replay sink a revival run attaches to the gate
// that re-executes the pre-kill prefix: every record the prefix emits is
// folded into the restored state with the same State.Apply the journal
// replay used. For a journal that survived intact this is a no-op —
// records are idempotent post-state patches and the on-disk journal
// already contained every one of them. For a journal torn mid-frame it
// regenerates the lost suffix: the records past the truncation point are
// an exact function of the deterministic re-execution, so the tracked
// state converges on the gate at the kill no matter where the tear
// landed.
type stateTracker struct {
	st  core.State
	err error
}

// newStateTracker deep-copies the restored state (through its canonical
// encoding) so folding prefix records never mutates the caller's
// Restored value.
func newStateTracker(st core.State) (*stateTracker, error) {
	b, err := st.Canonical()
	if err != nil {
		return nil, err
	}
	tr := &stateTracker{}
	if err := json.Unmarshal(b, &tr.st); err != nil {
		return nil, err
	}
	return tr, nil
}

// Replay implements core.ReplaySink. Apply errors are sticky and
// surface when the revival protocol runs.
func (t *stateTracker) Replay(r core.ReplayRecord) {
	if t.err != nil {
		return
	}
	if err := t.st.Apply(r); err != nil {
		t.err = err
	}
}

// checkpointDir is repetition rep's directory under base: rep 0 owns
// base itself (the common single-repetition case restores from the
// directory the user named), later repetitions get subdirectories.
func checkpointDir(base string, rep uint64) string {
	if rep == 0 {
		return base
	}
	return filepath.Join(base, fmt.Sprintf("rep%d", rep))
}

func runOnce(w proc.Workload, rc RunConfig, rep uint64) (Metrics, error) {
	cfg := rc.Machine
	cfg.Seed = rc.Seed*1000 + rep

	if err := validatePersist(rc); err != nil {
		return Metrics{}, err
	}
	if rc.Policy == nil {
		w = Undeclare(w)
	}
	schd, dset, err := newGate(rc, cfg)
	if err != nil {
		return Metrics{}, err
	}
	var gate machine.Gate
	if schd != nil {
		gate = schd
	}
	m := machine.New(cfg, gate)
	sk := &runSinks{}
	if schd != nil {
		if err := sk.bind(schd, m, rc); err != nil {
			return Metrics{}, err
		}
	}
	if rc.Obsrv != nil || rc.Pace > 0 {
		sk.in = &introspection{
			srv:   rc.Obsrv,
			pacer: obsrv.NewPacer(rc.Pace),
			eng:   m.Engine(),
			gate:  schd,
			sk:    sk,
		}
		m.Engine().SetStepHook(sk.in.step)
		if rc.Obsrv != nil {
			rc.Obsrv.SetReady(true)
		}
	}
	// Arm the process-death fault. A revival run re-arms the exact kill
	// its checkpoint recorded, so the pre-kill prefix re-executes
	// identically and halts at the same engine event.
	killAt := sim.Duration(0)
	if rc.Faults != nil && rc.Faults.KillAt > 0 {
		killAt = rc.Faults.KillAt
	}
	if rc.Restore != nil {
		killAt = rc.Restore.KillAt
	}
	if killAt > 0 {
		eng := m.Engine()
		eng.After(killAt, eng.Halt)
	}
	if dset != nil && rc.Faults != nil && len(rc.Faults.DomainFaults) > 0 {
		if err := armDomainFaults(dset, m.Engine(), rc.Faults.DomainFaults); err != nil {
			return Metrics{}, err
		}
	}
	var cp *persist.Checkpointer
	if rc.Checkpoint != nil {
		pcfg := *rc.Checkpoint
		pcfg.Dir = checkpointDir(pcfg.Dir, rep)
		cp, err = persist.Attach(pcfg, schd, killAt)
		if err != nil {
			return Metrics{}, err
		}
		schd.SetReplaySink(cp)
	}
	var tr *stateTracker
	if rc.Restore != nil {
		tr, err = newStateTracker(rc.Restore.State)
		if err != nil {
			return Metrics{}, err
		}
		schd.SetReplaySink(tr)
	}
	if err := m.AddWorkload(w); err != nil {
		return Metrics{}, err
	}
	res, err := m.Run()
	if err != nil {
		if !errors.Is(err, machine.ErrHalted) {
			return Metrics{}, err
		}
		if rc.Obsrv != nil && rc.Obsrv.StopRequested() {
			// An external stop request (SIGTERM), not the injected kill:
			// leave any checkpoint consistent and report the clean-stop
			// sentinel. This is checked before the restore branch — a
			// stop during prefix re-execution must not be mistaken for
			// reaching the checkpointed kill time.
			if cp != nil {
				if cerr := cp.Close(); cerr != nil {
					return Metrics{}, cerr
				}
			}
			return Metrics{}, fmt.Errorf("perf: run stopped at %v: %w", m.Now(), ErrStopped)
		}
		if rc.Restore == nil {
			// The injected process death: everything the run leaves
			// behind is the checkpoint directory.
			if cp != nil {
				if cerr := cp.Close(); cerr != nil {
					return Metrics{}, cerr
				}
			}
			return Metrics{}, fmt.Errorf("perf: process killed at %v: %w", m.Now(), err)
		}
		schd, dset, res, err = resumeRestored(m, rc, cfg, schd, sk, tr)
		if err != nil {
			return Metrics{}, err
		}
	}
	reg, col, bcol, smon := sk.reg, sk.col, sk.bcol, sk.smon
	var rob core.Stats
	var gov core.GovernorStats
	if schd != nil {
		// End-of-run reclamation: periods still registered lost their
		// owners (leaked ends, crashed threads); return their load so the
		// monitor reads zero and the counters include the residue.
		schd.Quiesce()
		rob = schd.Stats()
		gov = schd.GovernorStats()
		if reg != nil {
			schd.PublishStats(reg)
		}
		if col != nil {
			// Quiesce already closed admitted spans via reclaim events;
			// this closes the still-waitlisted ones.
			col.Finish(m.Now())
		}
	}
	var spans []trace.Span
	if col != nil {
		spans = col.Spans()
	}
	var brpt *blame.Report
	if bcol != nil {
		// Finish after Quiesce: the reclaim/wake cascade it triggers is
		// part of the run, and still-open waits close at quiesce time.
		bcol.Finish(m.Now())
		brpt = bcol.Report()
		brpt.Publish(reg)
	}
	var slo *blame.SLOResult
	if smon != nil {
		slo = smon.Result()
		slo.Publish(reg)
	}
	var dst core.DomainStats
	var rst core.RecoveryStats
	if dset != nil {
		dst = dset.DomainStats()
		rst = dset.RecoveryStats()
	}
	if cp != nil {
		// Surface any sticky journal I/O error: a run whose checkpoint
		// silently failed must not report success.
		if err := cp.Close(); err != nil {
			return Metrics{}, err
		}
		if reg != nil {
			cp.Publish(reg)
		}
	}
	if rc.Restore != nil && reg != nil {
		rc.Restore.Publish(reg)
	}
	if rc.Obsrv != nil {
		// Publish the end-of-run snapshots unconditionally so /state and
		// /blame reflect the final (post-Quiesce) picture even for runs
		// shorter than the publication period.
		if schd != nil {
			_ = rc.Obsrv.PublishState(schd.ExportState())
		}
		_ = rc.Obsrv.PublishBlame(brpt)
	}
	return Metrics{
		Telemetry: reg,
		Spans:     spans,
		Blame:     brpt,
		SLO:       slo,

		SystemJ:       res.SystemJ,
		DRAMJ:         res.DRAMJ,
		PackageJ:      res.PackageJ,
		GFLOPS:        res.GFLOPS(),
		GFLOPSPerWatt: res.GFLOPSPerWatt(),
		ElapsedSec:    res.Elapsed.Seconds(),
		DRAMAccesses:  res.Counters.DRAMAccesses,
		AvgBusyCores:  res.AvgBusyCores,
		Blocks:        res.Counters.PPBlocks,
		Wakeups:       res.Counters.Wakeups,

		ReclaimedLeases:    float64(rob.Reclaimed),
		FallbackAdmissions: float64(rob.Fallbacks),
		RejectedDemands:    float64(rob.Rejected),
		MaxWaitSec:         rob.MaxWait.Seconds(),

		GovernorDegradations: float64(gov.Degradations),
		GovernorRecoveries:   float64(gov.Recoveries),
		GovernorQuarantines:  float64(gov.Quarantines),
		GovernorRestores:     float64(gov.Restores),
		GovernorReservations: float64(gov.Reservations),

		DomainPlacements: float64(dst.Placements),
		DomainSteals:     float64(dst.Steals),

		DomainFailures:   float64(rst.Failures),
		Evacuations:      float64(rst.Evacuations),
		EvacRetries:      float64(rst.EvacRetries),
		AuditRepairs:     float64(rst.AuditRepairs),
		DomainRecoveries: float64(rst.Reintegrations),
		DroppedPeriods:   float64(rst.Dropped),
	}, nil
}

// resumeRestored is the revival protocol, entered when the re-executed
// pre-kill prefix halts at the checkpointed kill time:
//
//  1. Verify: the live gate's exported state must match the tracked
//     restored state — the checkpoint plus every record the prefix
//     re-emitted (a no-op for an intact journal, the regenerated suffix
//     for a torn one) — byte-for-byte under canonical JSON. (The
//     tracked state's clock reads the last record, which can trail the
//     kill by a stretch with no admission activity, so the timestamps
//     are aligned before comparing.) A mismatch means the journal and
//     the deterministic re-execution disagree — corruption beyond what
//     the checksums caught, or nondeterminism; either way, refuse.
//  2. Detach the prefix gate: cancel its timers, drop its sinks; any
//     already-queued event against it becomes a no-op.
//  3. Build a fresh gate from the run configuration, import the
//     restored state into it (re-linking waiter threads through the
//     machine, re-arming every lease/deadline/tick at its original
//     expiry), re-attach the observers, and swap it under the machine.
//  4. Clear the halt and drive the run to completion.
//
// The imported state — not the re-executed prefix gate — owns the rest
// of the run, so the persistence layer is load-bearing: any field the
// snapshot or journal misrepresents changes the resumed schedule, and
// the E9 golden (byte-identical final tables vs. the unkilled run)
// catches it.
func resumeRestored(m *machine.Machine, rc RunConfig, cfg machine.Config, old admission, sk *runSinks, tr *stateTracker) (admission, *core.DomainSet, *machine.Result, error) {
	if tr.err != nil {
		return nil, nil, nil, fmt.Errorf("perf: folding re-executed prefix into restored state: %w", tr.err)
	}
	live := old.ExportState()
	want := tr.st
	want.At = live.At
	lb, err := live.Canonical()
	if err != nil {
		return nil, nil, nil, err
	}
	wb, err := want.Canonical()
	if err != nil {
		return nil, nil, nil, err
	}
	if !bytes.Equal(lb, wb) {
		return nil, nil, nil, fmt.Errorf("perf: restored state diverges from re-executed run at %v (%d vs %d canonical bytes)",
			m.Now(), len(wb), len(lb))
	}
	old.Detach()
	schd, dset, err := newGate(rc, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := sk.bind(schd, m, rc); err != nil {
		return nil, nil, nil, err
	}
	if err := schd.ImportState(want, m.ThreadByID); err != nil {
		return nil, nil, nil, err
	}
	if sk.in != nil {
		// The imported gate owns the rest of the run; /state must track
		// it, not the detached prefix gate.
		sk.in.gate = schd
	}
	m.SetGate(schd)
	m.Engine().Resume()
	res, err := m.Resume()
	if err != nil {
		return nil, nil, nil, err
	}
	return schd, dset, res, nil
}

// armDomainFaults schedules a plan's domain-level faults on the run's
// event engine, in plan order. Each fault validates its target index up
// front so a misconfigured sweep fails at arm time, not mid-run; faults
// with a positive Heal arm the matching RecoverDomain alongside.
func armDomainFaults(dset *core.DomainSet, eng *sim.Engine, dfs []faults.DomainFault) error {
	for i, df := range dfs {
		if df.Domain < 0 || df.Domain >= dset.NumDomains() {
			return fmt.Errorf("perf: domain fault %d targets domain %d of %d", i, df.Domain, dset.NumDomains())
		}
		if df.At <= 0 {
			return fmt.Errorf("perf: domain fault %d at non-positive time %v", i, df.At)
		}
		df := df
		eng.After(df.At, func() {
			var err error
			switch df.Kind {
			case faults.DomainCapacityLoss:
				err = dset.InjectCapacityLoss(df.Domain, df.Frac)
			case faults.DomainCrash:
				err = dset.InjectCrash(df.Domain)
			case faults.DomainLedgerSkew:
				err = dset.InjectLedgerCorruption(df.Domain, df.Skew)
			}
			if err != nil {
				panic(fmt.Sprintf("perf: domain fault injection: %v", err))
			}
		})
		if df.Heal > 0 && df.Kind != faults.DomainLedgerSkew {
			eng.After(df.At+df.Heal, func() {
				if err := dset.RecoverDomain(df.Domain); err != nil {
					panic(fmt.Sprintf("perf: domain recovery: %v", err))
				}
			})
		}
	}
	return nil
}

// Undeclare strips every Declared flag: the workload as it runs on the
// stock scheduler, without progress-period instrumentation.
func Undeclare(w proc.Workload) proc.Workload {
	out := proc.Workload{Name: w.Name, Procs: make([]proc.Spec, len(w.Procs))}
	for i, s := range w.Procs {
		cs := s
		cs.Program = make(proc.Program, len(s.Program))
		copy(cs.Program, s.Program)
		for j := range cs.Program {
			cs.Program[j].Declared = false
		}
		out.Procs[i] = cs
	}
	return out
}

// jitter returns a copy of w with each phase's instruction count
// perturbed by a uniform factor in [1-frac, 1+frac].
func jitter(w proc.Workload, frac float64, rng *sim.RNG) proc.Workload {
	out := proc.Workload{Name: w.Name, Procs: make([]proc.Spec, len(w.Procs))}
	for i, s := range w.Procs {
		cs := s
		cs.Program = make(proc.Program, len(s.Program))
		copy(cs.Program, s.Program)
		for j := range cs.Program {
			f := 1 + frac*(2*rng.Float64()-1)
			cs.Program[j].Instr *= f
		}
		out.Procs[i] = cs
	}
	return out
}

// Aggregate computes the element-wise mean and standard deviation of a
// set of repetition samples, in sample order (the order never affects
// the result beyond float rounding, but callers collecting samples from
// a worker pool must still pass them in repetition order so the
// rounding, too, is deterministic).
func Aggregate(samples []Metrics) (mean, stddev Metrics, err error) {
	n := float64(len(samples))
	if n == 0 {
		return Metrics{}, Metrics{}, fmt.Errorf("perf: no samples")
	}
	fields := func(m *Metrics) []*float64 {
		return []*float64{
			&m.SystemJ, &m.DRAMJ, &m.PackageJ, &m.GFLOPS, &m.GFLOPSPerWatt,
			&m.ElapsedSec, &m.DRAMAccesses, &m.AvgBusyCores,
			&m.ReclaimedLeases, &m.FallbackAdmissions, &m.RejectedDemands, &m.MaxWaitSec,
			&m.GovernorDegradations, &m.GovernorRecoveries, &m.GovernorQuarantines,
			&m.GovernorRestores, &m.GovernorReservations,
			&m.DomainPlacements, &m.DomainSteals,
			&m.DomainFailures, &m.Evacuations, &m.EvacRetries,
			&m.AuditRepairs, &m.DomainRecoveries, &m.DroppedPeriods,
		}
	}
	for rep, s := range samples {
		s := s
		for i, f := range fields(&s) {
			*fields(&mean)[i] += *f / n
		}
		mean.Blocks += s.Blocks / uint64(len(samples))
		mean.Wakeups += s.Wakeups / uint64(len(samples))
		// Telemetry folds, it does not average: registries merge in
		// repetition order, spans concatenate stamped with their
		// repetition index.
		if s.Telemetry != nil {
			if mean.Telemetry == nil {
				mean.Telemetry = telemetry.NewRegistry()
			}
			mean.Telemetry.Merge(s.Telemetry)
		}
		for _, sp := range s.Spans {
			sp.Rep = rep
			mean.Spans = append(mean.Spans, sp)
		}
		if s.Blame != nil {
			for i := range s.Blame.Periods {
				s.Blame.Periods[i].Rep = rep
			}
			if mean.Blame == nil {
				mean.Blame = &blame.Report{}
			}
			mean.Blame.Merge(s.Blame)
		}
		if s.SLO != nil {
			for i := range s.SLO.Samples {
				s.SLO.Samples[i].Rep = rep
			}
			if mean.SLO == nil {
				mean.SLO = &blame.SLOResult{}
			}
			mean.SLO.Merge(s.SLO)
		}
	}
	for _, s := range samples {
		s := s
		mf := fields(&mean)
		for i, f := range fields(&s) {
			d := *f - *mf[i]
			*fields(&stddev)[i] += d * d / n
		}
	}
	for _, f := range fields(&stddev) {
		*f = math.Sqrt(*f)
	}
	return mean, stddev, nil
}
