package perf

import (
	"math"
	"reflect"
	"testing"

	"rdasched/internal/core"
	"rdasched/internal/machine"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
)

func tinyWorkload(n int, declared bool) proc.Workload {
	ph := proc.Phase{
		Name: "k", Instr: 1e7, WSS: pp.MB(2), Reuse: pp.ReuseHigh,
		AccessesPerInstr: 0.3, PrivateHitFrac: 0.8, FlopsPerInstr: 0.5,
		Declared: declared,
	}
	spec := proc.Spec{Name: "p", Threads: 1, Program: proc.Program{ph}}
	return proc.Workload{Name: "tiny", Procs: proc.Replicate(spec, n)}
}

func TestRunDefaultPolicy(t *testing.T) {
	m, sd, err := Run(tinyWorkload(4, true), RunConfig{
		Machine: machine.DefaultConfig(), Policy: nil, Repetitions: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.SystemJ <= 0 || m.GFLOPS <= 0 || m.ElapsedSec <= 0 {
		t.Fatalf("degenerate metrics: %+v", m)
	}
	if m.Blocks != 0 {
		t.Fatal("default policy blocked threads (Declared flags not stripped?)")
	}
	if sd.SystemJ != 0 {
		t.Fatal("single repetition has nonzero stddev")
	}
}

func TestRunStrictPolicy(t *testing.T) {
	// 12 × 2 MB = 24 MB on 15 MB: strict must deny some periods.
	m, _, err := Run(tinyWorkload(12, true), RunConfig{
		Machine: machine.DefaultConfig(), Policy: core.StrictPolicy{}, Repetitions: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Blocks == 0 || m.Wakeups == 0 {
		t.Fatalf("strict policy did not gate anything: %+v", m)
	}
}

func TestRepetitionsWithJitter(t *testing.T) {
	m, sd, err := Run(tinyWorkload(6, true), RunConfig{
		Machine: machine.DefaultConfig(), Policy: core.StrictPolicy{},
		Repetitions: 4, JitterFrac: 0.02, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sd.ElapsedSec <= 0 {
		t.Fatal("jittered repetitions produced zero variance")
	}
	// The paper reports ~2% run-to-run deviation; jitter of 2% should
	// keep relative stddev in the same ballpark (well under 10%).
	if sd.ElapsedSec/m.ElapsedSec > 0.1 {
		t.Fatalf("relative stddev %v implausibly high", sd.ElapsedSec/m.ElapsedSec)
	}
}

func TestRunDeterministicAcrossCalls(t *testing.T) {
	rc := RunConfig{Machine: machine.DefaultConfig(), Policy: core.NewCompromise(),
		Repetitions: 2, JitterFrac: 0.02, Seed: 42}
	a, _, err := Run(tinyWorkload(8, true), rc)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run(tinyWorkload(8, true), rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config diverged: %+v vs %+v", a, b)
	}
}

func TestUndeclare(t *testing.T) {
	w := tinyWorkload(2, true)
	u := Undeclare(w)
	for _, s := range u.Procs {
		for _, ph := range s.Program {
			if ph.Declared {
				t.Fatal("Undeclare left a declared phase")
			}
		}
	}
	// Original untouched.
	if !w.Procs[0].Program[0].Declared {
		t.Fatal("Undeclare mutated its input")
	}
}

func TestInstrumentationOverheadVisible(t *testing.T) {
	// Same workload, same admission outcome (all fit): the instrumented
	// run pays API overhead, so it is slightly slower.
	small := tinyWorkload(3, true) // 6 MB < 15 MB: no denials even strict
	base, _, err := Run(small, RunConfig{Machine: machine.DefaultConfig(), Policy: nil})
	if err != nil {
		t.Fatal(err)
	}
	inst, _, err := Run(small, RunConfig{Machine: machine.DefaultConfig(), Policy: core.StrictPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if inst.ElapsedSec <= base.ElapsedSec {
		t.Fatal("instrumented run not slower than uninstrumented")
	}
	if (inst.ElapsedSec-base.ElapsedSec)/base.ElapsedSec > 0.05 {
		t.Fatal("single-period overhead implausibly large")
	}
}

func TestRunRejectsInvalidWorkload(t *testing.T) {
	if _, _, err := Run(proc.Workload{Name: "empty"}, RunConfig{Machine: machine.DefaultConfig()}); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestMetricConsistency(t *testing.T) {
	m, _, err := Run(tinyWorkload(4, true), RunConfig{Machine: machine.DefaultConfig(), Policy: core.StrictPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.SystemJ-(m.PackageJ+m.DRAMJ)) > 1e-9 {
		t.Fatal("system != package + dram")
	}
	wantEff := m.GFLOPS * m.ElapsedSec / m.SystemJ
	if math.Abs(m.GFLOPSPerWatt-wantEff)/wantEff > 1e-9 {
		t.Fatalf("GFLOPS/W inconsistent: %v vs %v", m.GFLOPSPerWatt, wantEff)
	}
}
