package perf

import (
	"bytes"
	"encoding/json"
	"testing"

	"rdasched/internal/core"
	"rdasched/internal/faults"
	"rdasched/internal/machine"
	"rdasched/internal/sim"
	"rdasched/internal/telemetry/trace"
)

// The single-domain contract: Domains=1 builds a core.DomainSet that is
// pure delegation — no placer, no steal scan, no domain events or
// metrics — so a run through it is byte-identical to the unsharded
// scheduler (Domains=0): same Metrics JSON, same telemetry expositions,
// same Chrome trace bytes. This differential suite pins that across the
// feature matrix the experiments exercise: plain admission (E1-style),
// faults + lease + admission deadline (E4-style), and the governor
// (E5-style).

// domainDiffConfigs enumerates the compared feature mixes. Every config
// runs instrumented with two jittered repetitions so the comparison
// covers aggregation, not just a single run.
func domainDiffConfigs() []struct {
	name string
	rc   RunConfig
} {
	base := func() RunConfig {
		return RunConfig{
			Machine: machine.DefaultConfig(), Policy: core.StrictPolicy{},
			Repetitions: 2, JitterFrac: 0.02, Seed: 11,
			Telemetry: true, Trace: true,
		}
	}
	plain := base()

	chaos := base()
	plan := faults.Uniform(0.3, chaos.Machine.LLCCapacity)
	plan.BurstWaves = 2
	chaos.Faults = &plan
	chaos.Lease = sim.FromSeconds(0.004)
	chaos.AdmitDeadline = sim.FromSeconds(0.003)

	governed := base()
	gcfg := core.DefaultGovernorConfig()
	gcfg.Window = sim.FromSeconds(0.001)
	gcfg.DegradeHold = sim.FromSeconds(0.0005)
	gcfg.RecoverHold = sim.FromSeconds(0.0005)
	governed.Governor = &gcfg
	governed.Lease = sim.FromSeconds(0.004)

	compromise := base()
	compromise.Policy = core.NewCompromise()
	compromise.Reserve = chaos.Machine.LLCCapacity / 8

	return []struct {
		name string
		rc   RunConfig
	}{
		{"plain-strict", plain},
		{"faults-lease-deadline", chaos},
		{"governor", governed},
		{"compromise-reserve", compromise},
	}
}

// domainDiffArtifacts runs one config and renders every comparable
// artifact to bytes: the Metrics JSON (mean and stddev), the merged
// registry's JSON and Prometheus expositions, and the Chrome trace.
func domainDiffArtifacts(t *testing.T, rc RunConfig) map[string][]byte {
	t.Helper()
	mean, sd, err := Run(tinyWorkload(10, true), rc)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for name, m := range map[string]Metrics{"mean": mean, "stddev": sd} {
		b, err := json.MarshalIndent(m, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		out[name+".json"] = b
	}
	if mean.Telemetry == nil {
		t.Fatal("no registry collected")
	}
	var tj, tp, tr bytes.Buffer
	if err := mean.Telemetry.WriteJSON(&tj); err != nil {
		t.Fatal(err)
	}
	if err := mean.Telemetry.WritePrometheus(&tp); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteChrome(&tr, mean.Spans); err != nil {
		t.Fatal(err)
	}
	out["telemetry.json"] = tj.Bytes()
	out["telemetry.prom"] = tp.Bytes()
	out["trace.json"] = tr.Bytes()
	return out
}

func TestSingleDomainByteIdentical(t *testing.T) {
	for _, cfg := range domainDiffConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			unsharded := cfg.rc
			unsharded.Domains = 0
			single := cfg.rc
			single.Domains = 1
			want := domainDiffArtifacts(t, unsharded)
			got := domainDiffArtifacts(t, single)
			for name, w := range want {
				g, ok := got[name]
				if !ok {
					t.Fatalf("%s missing from Domains=1 artifacts", name)
				}
				if !bytes.Equal(g, w) {
					t.Errorf("%s differs between Domains=0 and Domains=1:\n--- Domains=0 ---\n%s\n--- Domains=1 ---\n%s",
						name, w, g)
				}
			}
		})
	}
}

// TestMultiDomainDiverges is the differential suite's sanity check: at
// Domains=2 the same config must NOT be a silent no-op — the placer has
// to make decisions (placements > 0) even if the schedule happens to
// coincide.
func TestMultiDomainDiverges(t *testing.T) {
	rc := domainDiffConfigs()[0].rc
	rc.Domains = 2
	mean, _, err := Run(tinyWorkload(10, true), rc)
	if err != nil {
		t.Fatal(err)
	}
	// 10 procs × 1 declared period each, averaged over the repetitions.
	if mean.DomainPlacements != 10 {
		t.Fatalf("placements = %.0f, want 10 (one per declared period)", mean.DomainPlacements)
	}
	if mean.Telemetry.Counter(core.MetricDomainPlacements).Value() == 0 {
		t.Fatal("rda_domain_placements_total not published at Domains=2")
	}
}
