// Integration tests for the introspection server wired to real runs.
// External test package: these drive internal/perf, which itself
// imports obsrv, so an in-package test would be an import cycle.
package obsrv_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"rdasched/internal/core"
	"rdasched/internal/machine"
	"rdasched/internal/obsrv"
	"rdasched/internal/perf"
	"rdasched/internal/proc"
	"rdasched/internal/workloads"
)

// quickRun is a small scheduled configuration that still emits a real
// decision stream: water_nsq at 5% scale under RDA:Strict with
// telemetry and blame attached.
func quickRun(srv *obsrv.Server, pace float64) (proc.Workload, perf.RunConfig) {
	w := proc.ScaleInstr(workloads.WaterNsq(), 0.05)
	return w, perf.RunConfig{
		Machine:   machine.DefaultConfig(),
		Policy:    core.StrictPolicy{},
		Telemetry: true,
		Blame:     true,
		Seed:      1,
		Obsrv:     srv,
		Pace:      pace,
	}
}

func serve(t *testing.T) *obsrv.Server {
	t.Helper()
	srv, err := obsrv.Serve(obsrv.Config{Addr: "127.0.0.1:0", StatePeriod: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestScrapeDuringRun is the tentpole's race-safety claim end to end:
// while a real run executes, concurrent goroutines hammer /metrics,
// /state, and /healthz. Under -race this proves a live scrape never
// races the engine; the assertions prove the responses are real
// expositions, not error pages.
func TestScrapeDuringRun(t *testing.T) {
	srv := serve(t)
	w, rc := quickRun(srv, 0)

	runDone := make(chan error, 1)
	go func() {
		_, _, err := perf.Run(w, rc)
		runDone <- err
	}()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	sawMetrics := make(chan string, 1)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, body := get(t, srv.URL()+"/metrics")
				if code != http.StatusOK {
					t.Errorf("/metrics -> %d", code)
					return
				}
				select {
				case sawMetrics <- body:
				default:
				}
				get(t, srv.URL()+"/state")
				get(t, srv.URL()+"/healthz")
			}
		}()
	}
	if err := <-runDone; err != nil {
		t.Errorf("run: %v", err)
	}
	close(stop)
	wg.Wait()

	body := <-sawMetrics
	for _, want := range []string{"# TYPE", "rda_obsrv_scrapes_total", "rda_obsrv_dropped_events_total"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body[:min(len(body), 400)])
		}
	}

	// After the run, the final state and blame snapshots are published
	// unconditionally and must parse as JSON objects.
	for _, ep := range []string{"/state", "/blame"} {
		code, body := get(t, srv.URL()+ep)
		if code != http.StatusOK {
			t.Fatalf("%s -> %d after run", ep, code)
		}
		var obj map[string]any
		if err := json.Unmarshal([]byte(body), &obj); err != nil {
			t.Fatalf("%s is not a JSON object: %v", ep, err)
		}
	}
	code, body := get(t, srv.URL()+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "rdasched") {
		t.Fatalf("/healthz -> %d %q", code, body)
	}
	if code, _ := get(t, srv.URL()+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz -> %d after run started", code)
	}
}

// TestObservedRunOutputIdentical is the no-observer-effect guarantee:
// a run watched through the server — scraped, streamed to a slow
// /events reader, state-published — reports byte-identical metrics and
// telemetry to the same run with no server attached.
func TestObservedRunOutputIdentical(t *testing.T) {
	w := proc.ScaleInstr(workloads.WaterNsq(), 0.05)
	base := perf.RunConfig{
		Machine:   machine.DefaultConfig(),
		Policy:    core.StrictPolicy{},
		Telemetry: true,
		Blame:     true,
		Seed:      1,
	}
	plainMean, _, err := perf.Run(w, base)
	if err != nil {
		t.Fatal(err)
	}

	srv := serve(t)
	// A deliberately tiny, never-drained subscriber ring: the run must
	// drop events for it rather than change behaviour.
	resp, err := http.Get(srv.URL() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	observed := base
	observed.Obsrv = srv
	obsMean, _, err := perf.Run(w, observed)
	if err != nil {
		t.Fatal(err)
	}

	pj, err := json.Marshal(plainMean)
	if err != nil {
		t.Fatal(err)
	}
	oj, err := json.Marshal(obsMean)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pj, oj) {
		t.Fatalf("observed run metrics differ from unobserved:\nplain: %s\nobserved: %s", pj, oj)
	}
	var pexp, oexp bytes.Buffer
	if err := plainMean.Telemetry.WritePrometheus(&pexp); err != nil {
		t.Fatal(err)
	}
	if err := obsMean.Telemetry.WritePrometheus(&oexp); err != nil {
		t.Fatal(err)
	}
	if pexp.String() != oexp.String() {
		t.Fatal("observed run telemetry exposition differs from unobserved")
	}
}

// TestEventsStream reads the SSE stream during a paced run and checks
// the frames are well-formed (id/event/data triplets carrying the wire
// JSON), and that disconnecting unsubscribes from the hub.
func TestEventsStream(t *testing.T) {
	srv := serve(t)
	w, rc := quickRun(srv, 0)

	// Connect before starting the run so the subscription exists when
	// the decision stream begins; the deadline bounds the whole test if
	// frames never arrive.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL()+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	runDone := make(chan error, 1)
	go func() {
		_, _, err := perf.Run(w, rc)
		runDone <- err
	}()

	sc := bufio.NewScanner(resp.Body)
	frames := 0
	for sc.Scan() && frames < 5 {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var we struct {
			Kind string `json:"kind"`
			AtS  float64 `json:"at_s"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &we); err != nil {
			t.Fatalf("bad SSE data line %q: %v", line, err)
		}
		if we.Kind == "" {
			t.Fatalf("SSE event with empty kind: %q", line)
		}
		frames++
	}
	if frames < 5 {
		t.Fatalf("read %d SSE frames, want 5 (scan err %v)", frames, sc.Err())
	}

	// Disconnect; the handler must unsubscribe promptly.
	cancel()
	deadline := time.After(5 * time.Second)
	for srv.Hub().Subscribers() != 0 {
		select {
		case <-deadline:
			t.Fatalf("subscriber not removed after disconnect (have %d)", srv.Hub().Subscribers())
		case <-time.After(5 * time.Millisecond):
		}
	}
	if err := <-runDone; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestCloseDrainsEventStream: shutting the server down while an SSE
// reader is connected must terminate the stream and return, never
// deadlock on the open handler.
func TestCloseDrainsEventStream(t *testing.T) {
	srv, err := obsrv.Serve(obsrv.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Publish a few events that sit in the subscriber's ring; Close must
	// still flush them to the reader before ending the stream.
	for i := 0; i < 3; i++ {
		srv.Hub().Record(core.Event{Kind: core.EventAdmit, Proc: i})
	}

	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		closed <- srv.Close(ctx)
	}()
	body, readErr := io.ReadAll(resp.Body) // ends when the handler returns
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked on an open SSE stream")
	}
	if readErr == nil && strings.Count(string(body), "data: ") != 3 {
		t.Fatalf("drained stream carried %d events, want 3:\n%s", strings.Count(string(body), "data: "), body)
	}
}

// TestStopRequest: RequestStop mid-run halts the engine at the next
// event and perf reports the clean-stop sentinel, not a generic halt.
func TestStopRequest(t *testing.T) {
	srv := serve(t)
	// Heavy pacing guarantees the run is still in flight when the stop
	// lands (1 virtual second per wall second; the workload runs many
	// virtual seconds).
	w, rc := quickRun(srv, 1)

	runDone := make(chan error, 1)
	go func() {
		_, _, err := perf.Run(w, rc)
		runDone <- err
	}()
	time.Sleep(50 * time.Millisecond)
	srv.RequestStop()
	select {
	case err := <-runDone:
		if !errors.Is(err, perf.ErrStopped) {
			t.Fatalf("stopped run returned %v, want perf.ErrStopped", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not honor the stop request")
	}
	if !srv.StopRequested() {
		t.Fatal("StopRequested not latched")
	}
}

// TestReadyzGate: /readyz is 503 until the run flips it.
func TestReadyzGate(t *testing.T) {
	srv := serve(t)
	if code, _ := get(t, srv.URL()+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before run -> %d, want 503", code)
	}
	if code, _ := get(t, srv.URL()+"/state"); code != http.StatusServiceUnavailable {
		t.Fatalf("/state before any publish -> %d, want 503", code)
	}
	srv.SetReady(true)
	if code, _ := get(t, srv.URL()+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after SetReady -> %d, want 200", code)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
