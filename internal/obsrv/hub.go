package obsrv

import (
	"sync"
	"sync/atomic"

	"rdasched/internal/core"
)

// Hub is the non-blocking fan-out between the scheduler's synchronous
// decision stream and any number of live subscribers (the /events SSE
// handler). It implements core.EventSink: Record is called on the
// simulation goroutine for every decision and must never block — a
// stalled HTTP client must not be able to stall the virtual clock. Each
// subscriber therefore owns a bounded ring (a buffered channel); when a
// ring is full the event is dropped for that subscriber and counted,
// never queued against the engine.
type Hub struct {
	mu       sync.Mutex
	subs     map[*Subscription]struct{}
	recorded atomic.Uint64
	dropped  atomic.Uint64
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{subs: make(map[*Subscription]struct{})}
}

// Subscription is one subscriber's bounded event ring.
type Subscription struct {
	hub     *Hub
	ch      chan core.Event
	dropped atomic.Uint64
	once    sync.Once
}

// Record implements core.EventSink: deliver e to every subscriber ring
// that has room, count a drop for every one that does not. Never blocks.
func (h *Hub) Record(e core.Event) {
	h.recorded.Add(1)
	h.mu.Lock()
	defer h.mu.Unlock()
	for sub := range h.subs {
		select {
		case sub.ch <- e:
		default:
			sub.dropped.Add(1)
			h.dropped.Add(1)
		}
	}
}

// Subscribe registers a new subscriber with a ring of the given
// capacity (minimum 1). The caller must Close the subscription when
// done; an abandoned subscription fills up and drops, it never leaks
// engine progress.
func (h *Hub) Subscribe(buffer int) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	sub := &Subscription{hub: h, ch: make(chan core.Event, buffer)}
	h.mu.Lock()
	h.subs[sub] = struct{}{}
	h.mu.Unlock()
	return sub
}

// Events returns the subscription's delivery channel. It is never
// closed — consumers multiplex it with their own cancellation signal.
func (s *Subscription) Events() <-chan core.Event { return s.ch }

// Dropped returns how many events this subscriber missed because its
// ring was full.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close unregisters the subscription. Idempotent.
func (s *Subscription) Close() {
	s.once.Do(func() {
		s.hub.mu.Lock()
		delete(s.hub.subs, s)
		s.hub.mu.Unlock()
	})
}

// Recorded returns how many events the hub has seen.
func (h *Hub) Recorded() uint64 { return h.recorded.Load() }

// Dropped returns how many subscriber deliveries were dropped because a
// ring was full (one event dropped by two subscribers counts twice).
func (h *Hub) Dropped() uint64 { return h.dropped.Load() }

// Subscribers returns the current subscriber count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}
